// Subscription-style use of the stream registry: a client registers a
// standing k-ary query once, then just performs accesses and polls
// deltas — binding lifecycle events arrive incrementally instead of the
// client re-running the Prop 2.2 instantiation loop after every response.
//
// The scenario is a two-source catalog: Listing(item, seller) behind a
// per-item access method and Vetted(seller) behind a free dump method,
// with the standing question Q(item) :- Listing(item, s) ∧ Vetted(s) —
// "which items verifiably have a vetted seller, and for which is some
// pending access still worth performing?" The driver crawls with the
// stream-driven mediator and then replays the event log.
#include <cstdio>

#include "obs/export.h"
#include "sim/deep_web.h"
#include "stream/registry.h"

int main() {
  using namespace rar;

  std::printf("=== rar stream subscriber demo ===\n\n");

  Schema schema;
  DomainId item = schema.AddDomain("Item");
  DomainId seller = schema.AddDomain("Seller");
  RelationId listing =
      *schema.AddRelation("Listing", {{"item", item}, {"seller", seller}});
  RelationId vetted = *schema.AddRelation("Vetted", {{"seller", seller}});
  AccessMethodSet acs(&schema);
  AccessMethodId by_item =
      *acs.Add("listing_by_item", listing, {0}, /*dependent=*/true);
  AccessMethodId vetted_dump =
      *acs.Add("vetted_dump", vetted, {}, /*dependent=*/true);
  (void)by_item;
  (void)vetted_dump;

  // The hidden marketplace.
  Configuration hidden(&schema);
  (void)hidden.AddFactNamed("Listing", {"lamp", "ada"});
  (void)hidden.AddFactNamed("Listing", {"desk", "bob"});
  (void)hidden.AddFactNamed("Listing", {"sofa", "cy"});
  (void)hidden.AddFactNamed("Vetted", {"ada"});
  (void)hidden.AddFactNamed("Vetted", {"cy"});

  // The mediator starts knowing only the item catalog.
  Configuration initial(&schema);
  for (const char* it : {"lamp", "desk", "sofa"}) {
    initial.AddSeedConstant(schema.InternConstant(it), item);
  }

  ConjunctiveQuery q;
  VarId x = q.AddVar("X", item);
  VarId s = q.AddVar("S", seller);
  q.atoms.push_back(Atom{listing, {Term::MakeVar(x), Term::MakeVar(s)}});
  q.atoms.push_back(Atom{vetted, {Term::MakeVar(s)}});
  q.head = {x};
  UnionQuery uq;
  uq.disjuncts.push_back(q);
  if (!uq.Validate(schema).ok()) return 1;

  std::printf("standing query: %s\n\n", uq.ToString(schema).c_str());

  DeepWebSource source(&schema, &acs, hidden);
  Mediator mediator(schema, acs);
  MediatorOptions mopts;
  mopts.verbose_log = true;
  auto run = mediator.AnswerKAry(uq, initial, &source, mopts);
  if (!run.ok()) {
    std::printf("mediation failed: %s\n", run.status().ToString().c_str());
    return 1;
  }

  std::printf("crawl: %ld access(es), drained=%s\n",
              run->accesses_performed, run->answered ? "yes" : "no");
  for (const std::string& line : run->log) {
    std::printf("  %s\n", line.c_str());
  }
  std::printf("\ncertain answers (%zu):\n", run->certain_answers.size());
  for (const std::vector<Value>& tuple : run->certain_answers) {
    std::printf("  Q(%s)\n", schema.ValueToString(tuple[0]).c_str());
  }
  // The unified exporter replaces hand-rolled stats printing: counters
  // (including the value-gate skip/fallback attribution), per-relation
  // recheck attribution, and the run's latency percentiles — source
  // round-trips, wave durations, decider time — in one JSON document.
  MetricsExport metrics;
  metrics.stats = run->engine;
  metrics.obs = run->obs;
  metrics.schema = &schema;
  std::printf("\nrun metrics:\n%s\n", ExportMetricsJson(metrics).c_str());
  return 0;
}
