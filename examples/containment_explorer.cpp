// Containment explorer: walks the paper's worked examples (2.1, 3.2, 4.2,
// 4.4), contrasting classical containment with containment under access
// limitations and printing concrete witness paths.
#include <cstdio>

#include "containment/access_containment.h"
#include "query/containment_classic.h"
#include "query/parser.h"
#include "relevance/relevance.h"

namespace {

void PrintWitness(const rar::Schema& schema, const rar::AccessMethodSet& acs,
                  const rar::NonContainmentWitness& w) {
  if (w.steps.empty()) {
    std::printf("    witness: the starting configuration itself\n");
    return;
  }
  std::printf("    witness path:\n");
  for (const rar::AccessStep& step : w.steps) {
    std::printf("      %s -> ", step.access.ToString(schema, acs).c_str());
    for (size_t i = 0; i < step.response.size(); ++i) {
      std::printf("%s%s", i ? ", " : "",
                  step.response[i].ToString(schema).c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace rar;
  std::printf("=== rar containment explorer ===\n");

  // ---- Example 3.2: containment under access limitations is weaker than
  // classical containment.
  {
    std::printf("\n[Example 3.2] R, S unary; R has a Boolean dependent "
                "access, S a free one.\n");
    Schema schema;
    DomainId d = schema.AddDomain("D");
    RelationId r = *schema.AddRelation("R", std::vector<DomainId>{d});
    RelationId s = *schema.AddRelation("S", std::vector<DomainId>{d});
    AccessMethodSet acs(&schema);
    (void)*acs.Add("r_bool", r, {0}, /*dependent=*/true);
    (void)*acs.Add("s_free", s, {}, /*dependent=*/true);
    Configuration conf(&schema);

    UnionQuery q1 = *ParseUCQ(schema, "R(X)");
    UnionQuery q2 = *ParseUCQ(schema, "S(X)");
    std::printf("  classically, EXISTS x R(x) contained in EXISTS x S(x)? "
                "%s\n", ClassicallyContained(q1, q2, schema) ? "yes" : "no");
    ContainmentEngine engine(schema, acs);
    auto dec = engine.Contained(q1, q2, conf);
    std::printf("  under access limitations (empty configuration)? %s\n",
                dec.ok() && dec->contained ? "yes" : "no");
    std::printf("  (the only way to learn an R fact is to first pull a "
                "value from S)\n");

    auto rev = engine.Contained(q2, q1, conf);
    if (rev.ok() && !rev->contained && rev->witness.has_value()) {
      std::printf("  the converse fails; e.g.:\n");
      PrintWitness(schema, acs, *rev->witness);
    }
  }

  // ---- Example 2.1: long-term relevance of an access on S for S ⋈ T.
  {
    std::printf("\n[Example 2.1] Q = S(x) & T(x); dependent access on T; "
                "free access on S.\n");
    Schema schema;
    DomainId d = schema.AddDomain("D");
    RelationId s = *schema.AddRelation("S", std::vector<DomainId>{d});
    RelationId t = *schema.AddRelation("T", std::vector<DomainId>{d});
    AccessMethodSet acs(&schema);
    AccessMethodId s_free = *acs.Add("s_free", s, {}, true);
    (void)*acs.Add("t_bool", t, {0}, true);
    Configuration conf(&schema);
    UnionQuery q = *ParseUCQ(schema, "S(X) & T(X)");
    RelevanceAnalyzer analyzer(schema, acs);
    auto ltr = analyzer.LongTerm(conf, Access{s_free, {}}, q);
    std::printf("  S() is long-term relevant before anything is known: %s\n",
                ltr.ok() && *ltr ? "yes" : "no");
    std::printf("  (its outputs can be fed into the T lookup)\n");
  }

  // ---- Example 4.2: relevance depends on the configuration.
  {
    std::printf("\n[Example 4.2] Q = R(x,five) & S2(five,z); access "
                "R(?,five).\n");
    Schema schema;
    DomainId d = schema.AddDomain("D");
    RelationId r = *schema.AddRelation("R", std::vector<DomainId>{d, d});
    (void)*schema.AddRelation("S2", std::vector<DomainId>{d, d});
    AccessMethodSet acs(&schema);
    AccessMethodId r_by1 = *acs.Add("r_by1", r, {1}, /*dependent=*/false);
    (void)*acs.Add("s2_any", schema.FindRelation("S2"), {0}, false);
    UnionQuery q = *ParseUCQ(schema, "R(X, five) & S2(five, Z)");
    Value five = schema.InternConstant("five");
    RelevanceAnalyzer analyzer(schema, acs);

    Configuration with_35(&schema);
    (void)with_35.AddFactNamed("R", {"3", "five"});
    auto a = analyzer.LongTerm(with_35, Access{r_by1, {five}}, q);
    std::printf("  knowing R(3,five):  LTR = %s (any discovered x is "
                "replaceable by 3)\n", a.ok() && *a ? "yes" : "no");

    Configuration with_36(&schema);
    (void)with_36.AddFactNamed("R", {"3", "6"});
    auto b = analyzer.LongTerm(with_36, Access{r_by1, {five}}, q);
    std::printf("  knowing R(3,6):     LTR = %s\n",
                b.ok() && *b ? "yes" : "no");
  }

  // ---- Example 4.4: repeated relations defeat the component test.
  {
    std::printf("\n[Example 4.4] Q = R(x,y) & R(x,five), empty "
                "configuration, access R(?,three).\n");
    Schema schema;
    DomainId d = schema.AddDomain("D");
    RelationId r = *schema.AddRelation("R", std::vector<DomainId>{d, d});
    AccessMethodSet acs(&schema);
    AccessMethodId r_by1 = *acs.Add("r_by1", r, {1}, /*dependent=*/false);
    UnionQuery q = *ParseUCQ(schema, "R(X, Y) & R(X, five)");
    RelevanceAnalyzer analyzer(schema, acs);
    Configuration conf(&schema);
    auto a = analyzer.LongTerm(conf, Access{r_by1,
                               {schema.InternConstant("three")}}, q);
    std::printf("  R(?,three) LTR = %s (Q is equivalent to EXISTS x "
                "R(x,five))\n", a.ok() && *a ? "yes" : "no");
    auto b = analyzer.LongTerm(conf, Access{r_by1,
                               {schema.InternConstant("five")}}, q);
    std::printf("  R(?,five)  LTR = %s\n", b.ok() && *b ? "yes" : "no");
  }

  // ---- A dependent chain with an explicit witness path.
  {
    std::printf("\n[Dependent chain] R(D,D) accessed by first attribute; "
                "conf = {R(a,b)}.\n");
    Schema schema;
    DomainId d = schema.AddDomain("D");
    RelationId r = *schema.AddRelation("R", std::vector<DomainId>{d, d});
    AccessMethodSet acs(&schema);
    (void)*acs.Add("r_by0", r, {0}, /*dependent=*/true);
    Configuration conf(&schema);
    (void)conf.AddFactNamed("R", {"a", "b"});
    UnionQuery q1 = *ParseUCQ(schema, "R(X, Y) & R(Y, Z) & R(Z, W)");
    UnionQuery q2 = *ParseUCQ(schema, "R(X, X)");
    ContainmentEngine engine(schema, acs);
    auto dec = engine.Contained(q1, q2, conf);
    std::printf("  3-chain contained in self-loop? %s\n",
                dec.ok() && dec->contained ? "yes" : "no");
    if (dec.ok() && dec->witness.has_value()) {
      PrintWitness(schema, acs, *dec->witness);
    }
  }

  std::printf("\nDone.\n");
  return 0;
}
