// Deep-Web mediation: dynamic query answering with a relevance filter.
//
// Simulates the bank's four Web forms over a hidden instance and compares
// two strategies for answering the loan-officer query:
//   1. the relevance-guided mediator (performs only IR/LTR accesses), and
//   2. the exhaustive Li-style crawl (performs every well-formed access).
// Both are sound; the guided strategy saves accesses — the practical point
// of computing relevance at runtime.
#include <cstdio>

#include "sim/deep_web.h"
#include "util/rng.h"
#include "workload/bank.h"

int main() {
  using namespace rar;

  std::printf("=== rar deep-Web mediation demo ===\n\n");
  std::printf("%-10s %-12s | %-8s %-9s | %-8s %-9s | %s\n", "employees",
              "satisfiable", "guided", "answered", "crawl", "answered",
              "accesses saved");

  for (int employees : {4, 8, 12, 16}) {
    for (bool satisfiable : {true, false}) {
      Rng rng(1000 + employees);
      BankOptions options;
      options.num_employees = employees;
      options.loan_officer_in_illinois = satisfiable;
      BankScenario bank = MakeBankScenario(&rng, options);
      Mediator mediator(*bank.base.schema, bank.base.acs);
      MediatorOptions mopts;
      mopts.max_rounds = 1024;

      DeepWebSource guided_source(bank.base.schema.get(), &bank.base.acs,
                                  bank.hidden);
      auto guided = mediator.AnswerBoolean(bank.query, bank.base.conf,
                                           &guided_source, mopts);
      DeepWebSource crawl_source(bank.base.schema.get(), &bank.base.acs,
                                 bank.hidden);
      auto crawl = mediator.ExhaustiveCrawl(bank.query, bank.base.conf,
                                            &crawl_source, mopts);
      if (!guided.ok() || !crawl.ok()) {
        std::printf("error: %s / %s\n", guided.status().ToString().c_str(),
                    crawl.status().ToString().c_str());
        return 1;
      }
      long saved = crawl->accesses_performed - guided->accesses_performed;
      std::printf("%-10d %-12s | %-8ld %-9s | %-8ld %-9s | %ld\n", employees,
                  satisfiable ? "yes" : "no", guided->accesses_performed,
                  guided->answered ? "yes" : "no", crawl->accesses_performed,
                  crawl->answered ? "yes" : "no", saved);
    }
  }

  // A verbose trace of one small run, showing the relevance decisions.
  std::printf("\n--- trace of a guided run (6 employees) ---\n");
  Rng rng(77);
  BankOptions options;
  options.num_employees = 6;
  BankScenario bank = MakeBankScenario(&rng, options);
  DeepWebSource source(bank.base.schema.get(), &bank.base.acs, bank.hidden);
  Mediator mediator(*bank.base.schema, bank.base.acs);
  MediatorOptions mopts;
  mopts.max_rounds = 256;
  mopts.verbose_log = true;
  auto outcome =
      mediator.AnswerBoolean(bank.query, bank.base.conf, &source, mopts);
  if (outcome.ok()) {
    for (const std::string& line : outcome->log) {
      std::printf("  %s\n", line.c_str());
    }
    std::printf("answered=%s after %ld accesses (%ld relevance checks)\n",
                outcome->answered ? "yes" : "no",
                outcome->accesses_performed, outcome->relevance_checks);
  }
  return 0;
}
