// Tiling reductions end to end: builds the Theorem 5.1 (NEXPTIME) and
// Prop 6.2 (PSPACE) encodings for small tiling instances, runs the generic
// containment engine on them, and shows the tiling <-> non-containment
// correspondence — the executable content of the paper's hardness proofs.
#include <cstdio>

#include "containment/access_containment.h"
#include "hardness/encode_nexptime.h"
#include "hardness/encode_pspace.h"
#include "hardness/tiling.h"

int main() {
  using namespace rar;
  std::printf("=== rar tiling-reduction demo ===\n");

  // ---- Theorem 5.1: 2^n x 2^n corridor, n = 1.
  std::printf("\n[Theorem 5.1] 2x2 corridor, checkerboard constraints\n");
  {
    TilingInstance inst = tilings::Checkerboard();
    inst.initial_tiles = {0, 1};
    bool tileable = SolveFixedCorridor(inst, 2, 2);
    auto enc = EncodeNexptimeTiling(inst, 1);
    if (!enc.ok()) {
      std::printf("encoding failed: %s\n", enc.status().ToString().c_str());
      return 1;
    }
    std::printf("  %s\n", enc->notes.c_str());
    std::printf("  direct solver: tileable = %s\n", tileable ? "yes" : "no");
    std::printf("  Q1: %s\n",
                enc->contained.disjuncts[0].ToString(*enc->schema).c_str());
    std::printf("  Q2: %d atoms of circuit + 4 Tile atoms\n",
                enc->container.disjuncts[0].num_atoms());

    ContainmentEngine engine(*enc->schema, enc->acs);
    ContainmentOptions opts;
    opts.max_aux_facts = 4;
    auto dec = engine.Contained(enc->contained, enc->container, enc->conf,
                                opts);
    if (!dec.ok()) {
      std::printf("engine failed: %s\n", dec.status().ToString().c_str());
      return 1;
    }
    std::printf("  engine: contained = %s (patterns=%ld aux=%ld "
                "q2checks=%ld)\n", dec->contained ? "yes" : "no",
                dec->stats.patterns_tried, dec->stats.aux_facts_tried,
                dec->stats.q2_checks);
    if (dec->witness.has_value()) {
      std::printf("  the witness chain (a correct tiling!):\n");
      RelationId tile = enc->schema->FindRelation("Tile");
      for (const Fact& f : dec->witness->final_config.FactsOf(tile)) {
        std::printf("    %s\n", f.ToString(*enc->schema).c_str());
      }
    }
  }

  // ---- Theorem 5.1 on an unsolvable instance.
  std::printf("\n[Theorem 5.1] same corridor, vertical constraints removed"
              " (unsolvable)\n");
  {
    TilingInstance inst = tilings::VerticallyBlocked();
    inst.initial_tiles = {0, 1};
    auto enc = EncodeNexptimeTiling(inst, 1);
    if (!enc.ok()) return 1;
    ContainmentEngine engine(*enc->schema, enc->acs);
    ContainmentOptions opts;
    opts.max_aux_facts = 4;
    auto dec = engine.Contained(enc->contained, enc->container, enc->conf,
                                opts);
    if (!dec.ok()) return 1;
    std::printf("  direct solver: tileable = %s\n",
                SolveFixedCorridor(inst, 2, 2) ? "yes" : "no");
    std::printf("  engine: contained = %s (search complete = %s)\n",
                dec->contained ? "yes" : "no",
                dec->stats.complete ? "yes" : "no");
  }

  // ---- Prop 6.2: width-n corridor with binary relations.
  std::printf("\n[Prop 6.2] width-2 corridor, initial row (0,1), final row"
              " (1,0)\n");
  {
    TilingInstance inst = tilings::Checkerboard();
    auto enc = EncodePspaceTiling(inst, {0, 1}, {1, 0});
    if (!enc.ok()) return 1;
    std::printf("  %s\n", enc->notes.c_str());
    bool reachable = SolveCorridorReachability(inst, {0, 1}, {1, 0}, 8);
    std::printf("  direct solver: reachable = %s\n",
                reachable ? "yes" : "no");
    ContainmentEngine engine(*enc->schema, enc->acs);
    ContainmentOptions opts;
    opts.max_aux_facts = 6;
    auto dec = engine.Contained(enc->contained, enc->container, enc->conf,
                                opts);
    if (!dec.ok()) return 1;
    std::printf("  engine: contained = %s\n",
                dec->contained ? "yes" : "no");
    if (dec->witness.has_value()) {
      std::printf("  witness path (the second row being built):\n");
      for (const AccessStep& step : dec->witness->steps) {
        std::printf("    %s\n",
                    step.access.ToString(*enc->schema, enc->acs).c_str());
      }
    }
  }

  std::printf("\nDone.\n");
  return 0;
}
