// The RelevanceEngine as a resident service: one long-lived engine
// absorbing a stream of accesses and answering relevance checks online.
//
// A generated clique workload plays the role of the request stream: at
// each tick the "server" (1) batch-checks every pending candidate access
// for immediate relevance across its worker pool, (2) performs the
// highest-ranked relevant access against a simulated deep-Web source, and
// (3) absorbs the response, which advances the configuration epoch and
// incrementally extends the access frontier. The engine's counters show
// what a per-call architecture would leave on the table: cache hit rate,
// certainty/fixpoint reuse, and decider time actually spent.
#include <unistd.h>

#include <cstdio>
#include <string>

#include "engine/engine.h"
#include "obs/export.h"
#include "persist/durable.h"
#include "sim/deep_web.h"
#include "stream/registry.h"
#include "util/rng.h"
#include "workload/generators.h"

int main() {
  using namespace rar;

  std::printf("=== rar engine server demo ===\n\n");

  Rng rng(2024);
  CliqueFamily family = MakeCliqueFamily(&rng, 3, 12, 0.5);
  const Scenario& s = family.scenario;

  // The engine starts knowing only the node set; edges live behind the
  // simulated source and are revealed by accesses.
  Configuration initial(s.schema.get());
  for (const TypedValue& tv : s.conf.AdomEntries()) {
    initial.AddSeedConstant(tv.value, tv.domain);
  }
  DeepWebSource source(s.schema.get(), &s.acs, s.conf);

  EngineOptions eopts;
  eopts.num_threads = 4;
  // Record every apply/wave/check into the trace ring for the postmortem
  // dump below (production default is 0: sampled off, near-zero cost).
  eopts.obs.trace_sample_period = 1;
  RelevanceEngine engine(*s.schema, s.acs, initial, eopts);
  auto qid = engine.RegisterQuery(family.query);
  if (!qid.ok()) {
    std::printf("register failed: %s\n", qid.status().ToString().c_str());
    return 1;
  }

  std::printf("query: %s\n\n", family.query.ToString(*s.schema).c_str());
  std::printf("%-5s %-6s %-10s %-10s %-9s %-10s %s\n", "tick", "epoch",
              "pending", "batch_ir+", "applied", "hit_rate", "certain");

  int performed = 0;
  for (int tick = 0; tick < 64; ++tick) {
    if (engine.IsCertain(*qid)) break;

    std::vector<Access> candidates = engine.CandidateAccesses(*qid);
    if (candidates.empty()) break;

    // Fan the whole frontier out over the worker pool.
    std::vector<CheckOutcome> verdicts =
        engine.CheckBatch(*qid, CheckKind::kImmediate, candidates);
    int relevant = 0;
    const Access* chosen = nullptr;
    for (size_t i = 0; i < verdicts.size(); ++i) {
      if (verdicts[i].ok() && verdicts[i].relevant) {
        ++relevant;
        if (chosen == nullptr) chosen = &candidates[i];
      }
    }
    if (chosen == nullptr) break;  // nothing immediately relevant: stop

    auto response = source.Execute(engine, *chosen);
    if (!response.ok()) {
      std::printf("source error: %s\n", response.status().ToString().c_str());
      return 1;
    }
    auto added = engine.ApplyResponse(*chosen, *response);
    if (!added.ok()) {
      std::printf("apply error: %s\n", added.status().ToString().c_str());
      return 1;
    }
    ++performed;

    EngineStats st = engine.stats();
    std::printf("%-5d %-6llu %-10llu %-10d %-9d %-10.3f %s\n", tick,
                static_cast<unsigned long long>(engine.epoch()),
                static_cast<unsigned long long>(st.frontier_pending),
                relevant, *added, st.cache_hit_rate(),
                engine.IsCertain(*qid) ? "yes" : "no");
  }

  // --- Standing k-ary stream on the same engine -----------------------
  // Q(X) :- E(X, Y): which nodes verifiably have an outgoing edge, and
  // for which is some pending access still relevant? The registry keeps
  // the per-binding answer resident; each further response recomputes
  // only the bindings it invalidated (here: every E apply hits the
  // footprint, but settled bindings stay skipped).
  RelevanceStreamRegistry registry(&engine);
  {
    const RelationId e = s.schema->FindRelation("E");
    ConjunctiveQuery kq;
    VarId x = kq.AddVar("X", 0);
    VarId y = kq.AddVar("Y", 0);
    kq.atoms.push_back(Atom{e, {Term::MakeVar(x), Term::MakeVar(y)}});
    kq.head = {x};
    UnionQuery kuq;
    kuq.disjuncts.push_back(kq);
    auto sid = registry.Register(kuq, StreamOptions{});
    if (!sid.ok()) {
      std::printf("stream register failed: %s\n",
                  sid.status().ToString().c_str());
      return 1;
    }
    // Absorb a few more responses and drain the delta stream.
    for (int extra = 0; extra < 4; ++extra) {
      std::vector<Access> pending = engine.PendingAccesses();
      const Access* next = nullptr;
      for (const Access& a : pending) {
        if (!engine.WasPerformed(a)) {
          next = &a;
          break;
        }
      }
      if (next == nullptr) break;
      auto response = source.Execute(engine, *next);
      if (!response.ok() ||
          !engine.ApplyResponse(*next, *response).ok()) {
        break;
      }
      StreamDelta delta = registry.Poll(*sid);
      std::printf("stream tick %d: %zu event(s)\n", extra,
                  delta.events.size());
      for (const StreamEvent& ev : delta.events) {
        std::printf("  #%llu %s %s\n",
                    static_cast<unsigned long long>(ev.sequence),
                    ToString(ev.kind),
                    s.schema->ValueToString(ev.binding[0]).c_str());
      }
    }
    StreamSnapshot snap = registry.Snapshot(*sid);
    std::printf(
        "stream snapshot: %zu bindings tracked, %zu certain, %zu still "
        "relevant\n",
        snap.bindings_tracked, snap.certain, snap.relevant);
  }

  // --- Durability: the same pipeline, crash-safe ----------------------
  // A DurableSession wraps engine + stream registry behind a WAL: every
  // apply is fsynced (group commit) before it becomes visible, stream
  // acknowledgements persist the subscriber cursor, and reopening the
  // directory replays the log back to the identical VersionVector. The
  // block below runs a short durable session, flushes it on graceful
  // shutdown, "restarts the server", and resumes the stream exactly where
  // the acknowledged cursor left it.
  {
    std::printf("\n--- durable session demo ---\n");
    const std::string dir =
        "/tmp/rar_engine_server_wal_" + std::to_string(::getpid());

    UnionQuery kuq;
    {
      const RelationId e = s.schema->FindRelation("E");
      ConjunctiveQuery kq;
      VarId x = kq.AddVar("X", 0);
      VarId y = kq.AddVar("Y", 0);
      kq.atoms.push_back(Atom{e, {Term::MakeVar(x), Term::MakeVar(y)}});
      kq.head = {x};
      kuq.disjuncts.push_back(kq);
    }

    VersionVector versions_at_shutdown;
    uint64_t acked = 0;
    int performed_durably = 0;
    {
      auto session = DurableSession::Open(*s.schema, s.acs, initial, dir);
      if (!session.ok()) {
        std::printf("durable open failed: %s\n",
                    session.status().ToString().c_str());
        return 1;
      }
      if (!(*session)->RegisterQuery(family.query).ok()) return 1;
      auto sid = (*session)->RegisterStream(kuq);
      if (!sid.ok()) return 1;

      // Drive real accesses through the durable path: each Apply is on
      // disk before the next line runs.
      for (int i = 0; i < 6; ++i) {
        const Access* next = nullptr;
        std::vector<Access> pending = (*session)->engine().PendingAccesses();
        for (const Access& a : pending) {
          if (!(*session)->engine().WasPerformed(a)) {
            next = &a;
            break;
          }
        }
        if (next == nullptr) break;
        auto response = source.Execute((*session)->engine(), *next);
        if (!response.ok()) break;
        if (!(*session)->Apply(*next, *response).ok()) break;
        ++performed_durably;
      }

      // The subscriber consumes some events and acknowledges them; the
      // cursor is itself a WAL record, so it survives the restart.
      StreamDelta delta = (*session)->Poll(*sid);
      acked = delta.events.empty() ? 0
                                   : delta.events[delta.events.size() / 2]
                                         .sequence;
      if (acked != 0 && !(*session)->Acknowledge(*sid, acked).ok()) return 1;
      std::printf(
          "session: %d durable applies, %zu stream events, acked through "
          "#%llu, wal sequence %llu\n",
          performed_durably, delta.events.size(),
          static_cast<unsigned long long>(acked),
          static_cast<unsigned long long>((*session)->last_sequence()));

      versions_at_shutdown = (*session)->engine().versions();
      // Graceful shutdown: everything logged is already durable; Flush is
      // belt and braces before the destructor detaches the hook.
      if (!(*session)->Flush().ok()) return 1;
    }

    // "Restart": recover the same directory. Replay rebuilds the engine,
    // re-registers the query and the stream, and the persisted cursor
    // resumes the subscriber gap-free.
    auto recovered = DurableSession::Open(*s.schema, s.acs, initial, dir);
    if (!recovered.ok()) {
      std::printf("recovery failed: %s\n",
                  recovered.status().ToString().c_str());
      return 1;
    }
    const RecoveryInfo& info = (*recovered)->recovery();
    const bool parity =
        (*recovered)->engine().versions() == versions_at_shutdown;
    std::printf(
        "recovered: %llu records replayed (%llu facts), snapshot=%s, "
        "version parity=%s\n",
        static_cast<unsigned long long>(info.replayed_records),
        static_cast<unsigned long long>(info.replayed_facts),
        info.from_snapshot ? "yes" : "no", parity ? "yes" : "no");
    if (!parity) return 1;

    StreamDelta resumed = (*recovered)->PollAfter(0, acked);
    std::printf("stream resumed after #%llu: %zu event(s) redelivered\n",
                static_cast<unsigned long long>(acked), resumed.events.size());
    for (const StreamEvent& ev : resumed.events) {
      std::printf("  #%llu %s %s\n",
                  static_cast<unsigned long long>(ev.sequence),
                  ToString(ev.kind),
                  s.schema->ValueToString(ev.binding[0]).c_str());
    }

    // A snapshot seals the history: the next restart restores the image
    // instead of replaying from 1. Cleanup keeps the previous image and
    // the WAL back to it as a fallback against a corrupt newest image.
    if (!(*recovered)->WriteSnapshot().ok()) return 1;
    std::printf("snapshot written at sequence %llu; wal pruned\n",
                static_cast<unsigned long long>((*recovered)->last_sequence()));
  }

  // One exporter renders counters, latency percentiles, per-relation
  // attribution and the recent trace — as canonical JSON and as
  // Prometheus text (serve the latter as text/plain and scrape it).
  MetricsExport metrics;
  metrics.stats = engine.stats();
  metrics.obs = engine.obs().Snapshot();
  metrics.schema = s.schema.get();
  metrics.trace_json = engine.obs().trace().DumpJson(8);
  std::printf("\n--- final metrics after %d accesses (JSON) ---\n%s\n",
              performed, ExportMetricsJson(metrics).c_str());
  std::printf("\n--- the same metrics, Prometheus exposition format ---\n%s",
              ExportMetricsPrometheus(metrics).c_str());
  std::printf("answered=%s\n", engine.IsCertain(*qid) ? "yes" : "no");
  return 0;
}
