// The RelevanceEngine as a network service: a SessionServer (src/server/)
// fronting one engine + stream registry, with clients speaking the
// length-prefixed CRC-framed wire protocol through real TCP sockets
// (falling back to the in-process loopback channel where the sandbox
// forbids sockets — same bytes, same codecs, no port).
//
// The cast:
//   * crawler client    — registers the clique query, performs accesses
//                         against a simulated deep-Web source, and ships
//                         every response through kApply frames;
//   * subscriber client — registers a standing k-ary stream, polls
//                         deltas, acknowledges, then *drops its
//                         connection* and resumes by session token on a
//                         fresh one: sessions are token-bound, not
//                         connection-bound, so nothing is lost;
//   * operator client   — scrapes kMetrics over the wire (JSON and
//                         Prometheus text exposition).
//
// Everything that mutates the engine crosses the wire; only the crawl
// *planning* (which access to do next) reads the engine in-process,
// standing in for the sources a real deployment would consult.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "obs/export.h"
#include "server/client.h"
#include "server/server.h"
#include "server/transport.h"
#include "sim/deep_web.h"
#include "stream/registry.h"
#include "util/rng.h"
#include "workload/generators.h"

int main() {
  using namespace rar;

  std::printf("=== rar session server demo ===\n\n");

  Rng rng(2024);
  CliqueFamily family = MakeCliqueFamily(&rng, 3, 12, 0.5);
  const Scenario& s = family.scenario;

  // The engine starts knowing only the node set; edges live behind the
  // simulated source and are revealed by accesses.
  Configuration initial(s.schema.get());
  for (const TypedValue& tv : s.conf.AdomEntries()) {
    initial.AddSeedConstant(tv.value, tv.domain);
  }
  DeepWebSource source(s.schema.get(), &s.acs, s.conf);

  // ---- server side ---------------------------------------------------
  EngineOptions eopts;
  eopts.num_threads = 2;
  RelevanceEngine engine(*s.schema, s.acs, initial, eopts);
  RelevanceStreamRegistry registry(&engine);

  ServerOptions sopts;
  sopts.max_sessions = 64;           // admission cap (kRetryLater beyond)
  sopts.max_backlog_events = 1024;   // per-stream retention bound
  sopts.degrade_backlog_events = 512;
  SessionServer server(&engine, &registry, sopts);

  TcpServer tcp(&server);
  auto port = tcp.Start();
  const bool over_tcp = port.ok();
  std::printf("transport: %s\n\n",
              over_tcp ? ("tcp 127.0.0.1:" + std::to_string(*port)).c_str()
                       : "loopback (sockets unavailable here)");

  // Each client owns one channel; on TCP that is one connection.
  auto make_channel = [&]() -> std::unique_ptr<ClientChannel> {
    if (over_tcp) {
      auto ch = TcpChannel::Connect("127.0.0.1", *port);
      if (ch.ok()) return std::move(*ch);
    }
    return std::make_unique<LoopbackChannel>(&server);
  };

  // ---- crawler client ------------------------------------------------
  std::unique_ptr<ClientChannel> crawler_ch = make_channel();
  RarClient crawler(crawler_ch.get(), s.schema.get(), &s.acs);
  if (!crawler.Hello().ok()) return 1;
  if (!crawler.RegisterQuery(family.query).ok()) return 1;
  std::printf("crawler: session open, query registered: %s\n",
              family.query.ToString(*s.schema).c_str());

  // ---- subscriber client ---------------------------------------------
  // Q(X) :- E(X, Y): which nodes verifiably have an outgoing edge.
  UnionQuery kuq;
  {
    const RelationId e = s.schema->FindRelation("E");
    ConjunctiveQuery kq;
    VarId x = kq.AddVar("X", 0);
    VarId y = kq.AddVar("Y", 0);
    kq.atoms.push_back(Atom{e, {Term::MakeVar(x), Term::MakeVar(y)}});
    kq.head = {x};
    kuq.disjuncts.push_back(kq);
  }
  std::unique_ptr<ClientChannel> sub_ch = make_channel();
  RarClient subscriber(sub_ch.get(), s.schema.get(), &s.acs);
  if (!subscriber.Hello().ok()) return 1;
  auto handle = subscriber.RegisterStream(kuq);
  if (!handle.ok()) return 1;
  const SessionToken sub_token = subscriber.token();

  // ---- the crawl, over the wire --------------------------------------
  uint64_t cursor = 0;
  int performed = 0;
  for (int tick = 0; tick < 12; ++tick) {
    const Access* next = nullptr;
    std::vector<Access> pending = engine.PendingAccesses();
    for (const Access& a : pending) {
      if (!engine.WasPerformed(a)) {
        next = &a;
        break;
      }
    }
    if (next == nullptr) break;
    auto response = source.Execute(engine, *next);
    if (!response.ok()) break;
    auto applied = crawler.Apply(*next, *response);
    if (!applied.ok()) {
      std::printf("apply bounced: %s\n",
                  applied.status().ToString().c_str());
      break;
    }
    ++performed;

    auto delta = subscriber.Poll(*handle, cursor);
    if (!delta.ok()) return 1;
    if (!delta->events.empty()) {
      std::printf("tick %-2d apply +%u fact(s) -> %zu stream event(s):\n",
                  tick, applied->facts_added, delta->events.size());
      for (const StreamEvent& ev : delta->events) {
        std::printf("  #%llu %s %s\n",
                    static_cast<unsigned long long>(ev.sequence),
                    ToString(ev.kind),
                    s.schema->ValueToString(ev.binding[0]).c_str());
      }
      cursor = delta->last_sequence;
      if (!subscriber.Acknowledge(*handle, cursor).ok()) return 1;
    }
  }

  // ---- reconnect-and-resume ------------------------------------------
  // Drop the subscriber's connection outright; the session survives on
  // the server. A fresh channel + the old token resumes it, and the
  // cursor-addressed poll redelivers exactly what was never acknowledged.
  sub_ch.reset();
  std::unique_ptr<ClientChannel> sub_ch2 = make_channel();
  RarClient resumed(sub_ch2.get(), s.schema.get(), &s.acs);
  if (!resumed.Resume(sub_token).ok()) return 1;
  auto tail = resumed.Poll(*handle, cursor);
  if (!tail.ok()) return 1;
  std::printf(
      "\nsubscriber reconnected (resumed=%s): %zu event(s) after acked "
      "cursor #%llu\n",
      resumed.resumed() ? "yes" : "no", tail->events.size(),
      static_cast<unsigned long long>(cursor));
  auto snap = resumed.Snapshot(*handle);
  if (!snap.ok()) return 1;
  std::printf("stream snapshot: %llu bindings tracked, %llu certain, %llu "
              "still relevant\n",
              static_cast<unsigned long long>(snap->bindings_tracked),
              static_cast<unsigned long long>(snap->certain),
              static_cast<unsigned long long>(snap->relevant));

  // ---- operator client: metrics over the wire ------------------------
  std::unique_ptr<ClientChannel> ops_ch = make_channel();
  RarClient ops(ops_ch.get(), s.schema.get(), &s.acs);
  if (!ops.Hello().ok()) return 1;
  auto prom = ops.Metrics(MetricsFormat::kPrometheus);
  if (!prom.ok()) return 1;
  std::printf("\n--- rar_server_* rows of the Prometheus exposition ---\n");
  size_t pos = 0;
  while (pos < prom->size()) {
    size_t eol = prom->find('\n', pos);
    if (eol == std::string::npos) eol = prom->size();
    const std::string line = prom->substr(pos, eol - pos);
    if (line.find("rar_server_") != std::string::npos &&
        line[0] != '#') {
      std::printf("%s\n", line.c_str());
    }
    pos = eol + 1;
  }

  // ---- graceful drain ------------------------------------------------
  // Heartbeats see the drain flag flip; fresh mutations shed with
  // kShuttingDown + a retry hint while the live clients wind down
  // (reads, acks and goodbyes keep working throughout).
  auto pong = ops.Ping();
  if (!pong.ok() || pong->draining) return 1;
  if (!server.BeginDrain().ok()) return 1;
  pong = ops.Ping();
  if (!pong.ok() || !pong->draining) return 1;
  std::printf("\ndrain: heartbeat reports draining=%s; mutations now shed "
              "with kShuttingDown (retry hint %u ms)\n",
              pong->draining ? "true" : "false",
              server.options().drain_retry_after_ms);

  if (!crawler.Goodbye().ok() || !resumed.Goodbye().ok() ||
      !ops.Goodbye().ok()) {
    return 1;
  }
  tcp.Stop();
  std::printf("\nperformed %d accesses over the wire; %zu session(s) left\n",
              performed, server.num_sessions());
  return 0;
}
