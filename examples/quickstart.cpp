// Quickstart: the paper's Section 1 bank scenario, verbatim.
//
// Builds the Employee/Office/Approval/Manager schema with its four Web
// forms, poses the Boolean loan-officer query, and asks the paper's
// motivating question: *is an access to the EmpManAcc form with EmpId
// "12340" useful for answering Q?* — under several configurations, showing
// how relevance depends on the knowledge already acquired.
#include <cstdio>

#include "query/eval.h"
#include "relevance/relevance.h"
#include "util/rng.h"
#include "workload/bank.h"

int main() {
  using namespace rar;

  Rng rng(2011);
  BankOptions options;
  options.num_employees = 6;
  BankScenario bank = MakeBankScenario(&rng, options);
  const Schema& schema = *bank.base.schema;

  std::printf("=== rar quickstart: the Section 1 bank scenario ===\n\n");
  std::printf("Query (Boolean CQ):\n  %s\n\n",
              bank.query.disjuncts[0].ToString(schema).c_str());
  std::printf("Access methods (all dependent Web forms):\n");
  for (AccessMethodId mid = 0; mid < bank.base.acs.size(); ++mid) {
    const AccessMethod& m = bank.base.acs.method(mid);
    std::printf("  %-14s on %-9s (%d input attribute(s))\n", m.name.c_str(),
                schema.relation(m.relation).name.c_str(), m.num_inputs());
  }

  RelevanceAnalyzer analyzer(schema, bank.base.acs);
  const Access& probe = bank.emp_man_probe;
  auto report = [&](const char* label, const Configuration& conf) {
    bool certain = EvalBool(bank.query, conf);
    bool ir = analyzer.Immediate(conf, probe, bank.query);
    auto ltr = analyzer.LongTerm(conf, probe, bank.query);
    std::printf("%-44s certain=%-5s IR=%-5s LTR=%s\n", label,
                certain ? "yes" : "no", ir ? "yes" : "no",
                ltr.ok() ? (*ltr ? "yes" : "no")
                         : ltr.status().ToString().c_str());
  };

  std::printf("\nProbe access: %s\n\n",
              probe.ToString(schema, bank.base.acs).c_str());

  // 1. The initial configuration: only two employee ids are known. The
  //    manager lookup is not immediately useful (it cannot by itself
  //    produce a query witness) but it is long-term relevant: the ids it
  //    returns feed EmpOffAcc, whose offices feed OfficeInfoAcc.
  report("initial knowledge (two EmpIds):", bank.base.conf);

  // 2. If the engine already knows a complete witness, no access to the
  //    manager form is relevant any more.
  Configuration satisfied = bank.base.conf;
  Value off = schema.InternConstant("off_hq");
  satisfied.AddFact(Fact(schema.FindRelation("Employee"),
                         {schema.InternConstant("99999"),
                          schema.InternConstant("loan_officer"),
                          schema.InternConstant("doe"),
                          schema.InternConstant("jane"), off}));
  satisfied.AddFact(Fact(schema.FindRelation("Office"),
                         {off, schema.InternConstant("main_st"),
                          schema.InternConstant("illinois"),
                          schema.InternConstant("555")}));
  satisfied.AddFact(Fact(schema.FindRelation("Approval"),
                         {schema.InternConstant("illinois"),
                          schema.InternConstant("30yr")}));
  report("after a complete witness is known:", satisfied);

  // 3. Immediate relevance: an approval lookup becomes immediately
  //    relevant exactly when everything else of the query is known.
  Configuration almost = bank.base.conf;
  almost.AddFact(Fact(schema.FindRelation("Employee"),
                      {schema.InternConstant("99999"),
                       schema.InternConstant("loan_officer"),
                       schema.InternConstant("doe"),
                       schema.InternConstant("jane"), off}));
  almost.AddFact(Fact(schema.FindRelation("Office"),
                      {off, schema.InternConstant("main_st"),
                       schema.InternConstant("illinois"),
                       schema.InternConstant("555")}));
  AccessMethodId appr = bank.base.acs.Find("StateApprAcc");
  Access appr_access{appr, {schema.InternConstant("illinois")}};
  bool ir = analyzer.Immediate(almost, appr_access, bank.query);
  std::printf("\nWith employee+office known, %s is immediately relevant: %s\n",
              appr_access.ToString(schema, bank.base.acs).c_str(),
              ir ? "yes" : "no");

  std::printf("\nDone.\n");
  return 0;
}
