// Query containment under access limitations (Definition 3.1, Section 5).
//
// Q1 ⊑_{ACS,Conf} Q2 holds iff every configuration reachable from Conf by a
// well-formed access path that satisfies Q1 also satisfies Q2. The engine
// decides this by searching for a *non-containment witness*: a reachable
// configuration where some disjunct of Q1 holds and Q2 fails.
//
// The search follows the structure the paper's upper-bound proofs justify
// (the Calì–Martinenghi "crayfish chase": tree-like witnesses in which
// every fresh element outside the homomorphic image of Q1 is produced by
// one access and consumed by at most one access):
//
//   1. enumerate canonical homomorphism patterns of a Q1-disjunct — each
//      variable maps to a typed active-domain constant or to a labelled
//      null, with explicit branching over null coalescing (coalescing can
//      be *required* for schedulability under dependent accesses);
//   2. greedily schedule the pattern's facts with `CheckSetReachability`;
//      when stuck, branch over *auxiliary production facts*: one response
//      fact of some access method placeable right now, whose inputs are
//      chosen among accessible values (or fresh guesses for independent
//      methods) and whose outputs are fresh nulls or currently-missing
//      values;
//   3. prune any branch whose partial configuration already satisfies Q2
//      (Q2 is monotone, so such a branch can never yield a witness);
//   4. on success, replay the witness as an explicit well-formed access
//      path and re-verify Q1 ∧ ¬Q2 on its final configuration.
//
// Found witnesses are always sound. "Contained" answers are exact whenever
// the search was exhaustive within its budgets (`WitnessSearchStats::
// complete`); the theory-exact budget is exponential (Theorem 5.2), so
// callers choose budgets via ContainmentOptions.
//
// When every method is independent the engine dispatches to the simpler
// Π2P procedure of Section 4: atoms over relations without methods must
// map into Conf and everything else is frozen maximally fresh.
#ifndef RAR_CONTAINMENT_ACCESS_CONTAINMENT_H_
#define RAR_CONTAINMENT_ACCESS_CONTAINMENT_H_

#include <optional>
#include <vector>

#include "access/access_method.h"
#include "access/path.h"
#include "access/reachability.h"
#include "query/query.h"
#include "relational/configuration.h"
#include "util/status.h"

namespace rar {

/// Budgets and switches for the containment witness search.
struct ContainmentOptions {
  /// Maximum auxiliary production facts per homomorphism pattern.
  /// The theory-complete value is exponential in the query sizes
  /// (Theorem 5.2); the default suits the paper's examples and the test
  /// workloads, and benches raise it explicitly for the tiling encodings.
  int max_aux_facts = 8;
  /// Hard cap on explored search nodes (patterns + auxiliary attempts);
  /// 0 = unlimited.
  long node_budget = 5000000;
  /// Re-verify every witness by replaying its access path (cheap; keep on).
  bool verify_witnesses = true;
  /// Build the explicit NonContainmentWitness (realizing steps + replayed
  /// final configuration) on refutation. Materializes the base
  /// configuration, so callers that only consume the verdict — the LTR
  /// deciders, whose check path must stay copy-free — turn it off.
  bool build_witness = true;
};

/// \brief A concrete refutation of containment.
struct NonContainmentWitness {
  /// The reachable configuration where Q1 holds and Q2 fails.
  Configuration final_config;
  /// A well-formed access path from the start configuration realizing it.
  std::vector<AccessStep> steps;
  /// Which disjunct of Q1 is witnessed.
  int disjunct_index = 0;
};

/// \brief Search accounting, exposed for benches and completeness checks.
struct WitnessSearchStats {
  long patterns_tried = 0;
  long aux_facts_tried = 0;
  long q2_checks = 0;
  /// True when the search space was fully explored within the budgets; a
  /// "contained" verdict with complete == true is exact for the configured
  /// max_aux_facts horizon.
  bool complete = true;
};

/// \brief Outcome of a containment query.
struct ContainmentDecision {
  bool contained = true;
  std::optional<NonContainmentWitness> witness;  ///< set when !contained
  WitnessSearchStats stats;
};

/// \brief Decides Q1 ⊑_{ACS,Conf} Q2 for Boolean UCQs (PQs arrive here via
/// ToDnf; a UCQ is contained iff each disjunct is).
class ContainmentEngine {
 public:
  ContainmentEngine(const Schema& schema, const AccessMethodSet& acs)
      : schema_(schema), acs_(acs) {}

  /// Decides containment starting from `conf`. Queries must be Boolean and
  /// validated. The caller is responsible for the paper's standing
  /// assumption that query constants are present in the configuration
  /// (see SeedQueryConstants).
  Result<ContainmentDecision> Contained(const UnionQuery& q1,
                                        const UnionQuery& q2,
                                        const ConfigView& conf,
                                        const ContainmentOptions& options = {});

  /// Convenience overloads.
  Result<ContainmentDecision> Contained(const ConjunctiveQuery& q1,
                                        const ConjunctiveQuery& q2,
                                        const ConfigView& conf,
                                        const ContainmentOptions& options = {});

  /// Achievability: is there a reachable configuration satisfying `q`?
  /// Equivalent to the negation of `q ⊑ false` (containment in the empty
  /// union); used by the general-access LTR extension.
  Result<ContainmentDecision> Achievable(const UnionQuery& q,
                                         const ConfigView& conf,
                                         const ContainmentOptions& options = {});

 private:
  const Schema& schema_;
  const AccessMethodSet& acs_;
};

/// Registers every constant of the query, typed by its positions' domains,
/// as a seed of `conf` — the paper's assumption that query constants are
/// available for dependent accesses (end of Section 2).
void SeedQueryConstants(Configuration* conf, const UnionQuery& q,
                        const Schema& schema);

}  // namespace rar

#endif  // RAR_CONTAINMENT_ACCESS_CONTAINMENT_H_
