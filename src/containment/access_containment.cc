#include "containment/access_containment.h"

#include <unordered_map>
#include <unordered_set>

#include "query/eval.h"
#include "query/structure.h"
#include "relational/overlay.h"
#include "util/combinatorics.h"

namespace rar {

void SeedQueryConstants(Configuration* conf, const UnionQuery& q,
                        const Schema& schema) {
  for (const TypedValue& tv : QueryConstants(q, schema)) {
    conf->AddSeedConstant(tv.value, tv.domain);
  }
}

namespace {

// ---------------------------------------------------------------------------
// Independent-only fast path (Section 4 / the Π2P characterisation).
//
// With only independent methods, the reachable configurations are exactly
// Conf plus arbitrary fact sets over relations that have methods. A
// disjunct D of Q1 refutes containment iff some homomorphism maps its
// method-less atoms into Conf and freezing the remaining atoms maximally
// fresh leaves Q2 false (fresher witnesses map homomorphically into coarser
// ones, so maximal freshness is the canonical choice).
// ---------------------------------------------------------------------------
class IndependentDisjunctSearch {
 public:
  IndependentDisjunctSearch(const Schema& schema, const AccessMethodSet& acs,
                            const ConfigView& conf,
                            const ConjunctiveQuery& d, const UnionQuery& q2,
                            WitnessSearchStats* stats)
      : schema_(schema), acs_(acs), conf_(conf), d_(d), q2_(q2),
        stats_(stats), extended_(&conf) {}

  bool Run(std::vector<Fact>* witness_facts) {
    // Split atoms by whether their relation is accessible at all.
    ConjunctiveQuery fixed_part = d_;  // same variable table, fewer atoms
    fixed_part.atoms.clear();
    fixed_part.head.clear();
    std::vector<int> free_atoms;
    for (int i = 0; i < d_.num_atoms(); ++i) {
      if (acs_.HasMethod(d_.atoms[i].relation)) {
        free_atoms.push_back(i);
      } else {
        fixed_part.atoms.push_back(d_.atoms[i]);
      }
    }

    auto try_assignment = [&](const std::vector<Value>& fixed_assignment)
        -> bool {
      ++stats_->patterns_tried;
      // Complete the assignment: variables not pinned by the fixed part
      // get private fresh nulls.
      std::vector<bool> pinned(d_.num_vars(), false);
      for (const Atom& atom : fixed_part.atoms) {
        for (const Term& t : atom.terms) {
          if (t.is_var()) pinned[t.var] = true;
        }
      }
      std::vector<Value> assignment(d_.num_vars());
      NullFactory nulls;
      for (int v = 0; v < d_.num_vars(); ++v) {
        assignment[v] = pinned[v] ? fixed_assignment[v] : nulls.Fresh();
      }
      // The frozen atoms are overlaid onto the (uncopied) base; the delta
      // is exactly the fresh-fact set a witness reports.
      extended_.Reset();
      for (const Fact& f : GroundAtoms(d_, assignment, free_atoms)) {
        extended_.AddFact(f);
      }
      ++stats_->q2_checks;
      if (!EvalBool(q2_, extended_)) {
        *witness_facts = extended_.DeltaFacts();
        return true;
      }
      return false;
    };

    if (fixed_part.atoms.empty()) {
      std::vector<Value> none(d_.num_vars());
      return try_assignment(none);
    }
    return ForEachHomomorphism(fixed_part, conf_, try_assignment);
  }

 private:
  const Schema& schema_;
  const AccessMethodSet& acs_;
  const ConfigView& conf_;
  const ConjunctiveQuery& d_;
  const UnionQuery& q2_;
  WitnessSearchStats* stats_;
  OverlayConfiguration extended_;
};

// ---------------------------------------------------------------------------
// General (dependent) witness search: canonical homomorphism patterns plus
// on-demand auxiliary production facts (the crayfish-chase structure).
// ---------------------------------------------------------------------------
class DependentDisjunctSearch {
 public:
  DependentDisjunctSearch(const Schema& schema, const AccessMethodSet& acs,
                          const ConfigView& conf,
                          const ConjunctiveQuery& d, const UnionQuery& q2,
                          const ContainmentOptions& options,
                          WitnessSearchStats* stats)
      : schema_(schema), acs_(acs), conf_(conf), d_(d), q2_(q2),
        options_(options), stats_(stats), assignment_(d.num_vars()),
        working_(&conf) {}

  bool Run(std::vector<Fact>* witness_facts) {
    witness_facts_ = witness_facts;
    return EnumVars(0);
  }

 private:
  bool BudgetOk() {
    if (options_.node_budget > 0 &&
        stats_->patterns_tried + stats_->aux_facts_tried >
            options_.node_budget) {
      stats_->complete = false;
      return false;
    }
    return true;
  }

  // Enumerates canonical variable assignments: each variable maps to a
  // typed active-domain value of the base configuration, joins an existing
  // null block of its domain, or opens a fresh block (restricted growth, so
  // each coalescing pattern is produced exactly once).
  bool EnumVars(int v) {
    if (!BudgetOk()) return false;
    if (v == d_.num_vars()) return TryPattern();
    DomainId dom = d_.var_domains[v];
    if (dom == kInvalidId || !d_.VarOccurs(v)) {
      // Variable does not occur in any atom (e.g. it was orphaned by a
      // query rewrite); bind it to a throwaway null without branching.
      assignment_[v] = nulls_.Fresh();
      return EnumVars(v + 1);
    }
    for (const Value& val : conf_.AdomOfDomain(dom)) {
      assignment_[v] = val;
      if (EnumVars(v + 1)) return true;
    }
    std::vector<Value>& blocks = null_blocks_[dom];
    for (size_t i = 0; i < blocks.size(); ++i) {
      assignment_[v] = blocks[i];
      if (EnumVars(v + 1)) return true;
    }
    Value fresh = nulls_.Fresh();
    blocks.push_back(fresh);
    assignment_[v] = fresh;
    bool found = EnumVars(v + 1);
    null_blocks_[dom].pop_back();
    return found;
  }

  bool TryPattern() {
    ++stats_->patterns_tried;
    // The pattern's fact set S, deduplicated and overlaid onto the
    // (uncopied) base; facts over method-less relations must already be in
    // Conf. Facts the configuration already contains need no placement and
    // stay out of S (CheckSetReachability would skip them anyway).
    working_.Reset();
    std::vector<Fact> s;
    for (Fact& f : GroundAtoms(d_, assignment_)) {
      if (!acs_.HasMethod(f.relation) && !conf_.Contains(f)) return false;
      if (working_.AddFact(f)) s.push_back(std::move(f));
    }
    ++stats_->q2_checks;
    if (EvalBool(q2_, working_)) return false;  // monotone: branch is dead
    return AuxSearch(&s, 0);
  }

  // One step of the auxiliary search: if S is schedulable we have a witness
  // (Q2 is already known false on conf ∪ S); otherwise branch over every
  // auxiliary response fact placeable at the greedy fixpoint. `working_`
  // mirrors conf ∪ S via AddFact/PopFact (LIFO with the recursion).
  bool AuxSearch(std::vector<Fact>* s, int aux_used) {
    if (!BudgetOk()) return false;
    ReachResult reach = CheckSetReachability(conf_, acs_, *s);
    if (reach.reachable) {
      *witness_facts_ = *s;
      return true;
    }
    if (aux_used >= options_.max_aux_facts) return false;
    // A fact over a relation without methods can never be placed.
    for (int idx : reach.unplaced) {
      if (!acs_.HasMethod((*s)[idx].relation)) return false;
    }

    // Index accessible values and missing values by domain. Newest values
    // first: auxiliary chains preferentially extend the current frontier
    // instead of re-branching from old values, which keeps witnesses short
    // (reach.accessible is in deterministic first-seen order).
    std::unordered_map<DomainId, std::vector<Value>> accessible_by_domain;
    for (auto it = reach.accessible.rbegin(); it != reach.accessible.rend();
         ++it) {
      accessible_by_domain[it->domain].push_back(it->value);
    }
    std::unordered_map<DomainId, std::vector<Value>> missing_by_domain;
    for (const TypedValue& tv : reach.missing_inputs) {
      missing_by_domain[tv.domain].push_back(tv.value);
    }

    // Branch over candidate auxiliary facts, method by method.
    for (AccessMethodId mid = 0; mid < acs_.size(); ++mid) {
      const AccessMethod& m = acs_.method(mid);
      const Relation& rel = schema_.relation(m.relation);

      // Candidate values per position. Inputs: accessible values (plus a
      // fresh guess and missing values for independent methods — guessing
      // names the value). Outputs: a fresh null or a currently-missing
      // value of the position's domain.
      enum class SlotKind : uint8_t { kOld, kMissing, kFresh };
      struct SlotChoice {
        Value value;  // unused for kFresh (minted per candidate fact)
        SlotKind kind;
      };
      std::vector<std::vector<SlotChoice>> slot_candidates(rel.arity());
      bool viable = true;
      for (int pos = 0; pos < rel.arity() && viable; ++pos) {
        DomainId dom = rel.attributes[pos].domain;
        std::vector<SlotChoice>& cands = slot_candidates[pos];
        bool is_input = m.IsInputPosition(pos);
        if (is_input && m.dependent) {
          for (const Value& v : accessible_by_domain[dom]) {
            cands.push_back({v, SlotKind::kOld});
          }
          if (cands.empty()) viable = false;
        } else if (is_input) {  // independent input: free guess
          for (const Value& v : accessible_by_domain[dom]) {
            cands.push_back({v, SlotKind::kOld});
          }
          for (const Value& v : missing_by_domain[dom]) {
            cands.push_back({v, SlotKind::kMissing});
          }
          cands.push_back({Value(), SlotKind::kFresh});
        } else {  // output position
          for (const Value& v : missing_by_domain[dom]) {
            cands.push_back({v, SlotKind::kMissing});
          }
          cands.push_back({Value(), SlotKind::kFresh});
        }
      }
      if (!viable) continue;

      std::vector<int> sizes;
      sizes.reserve(rel.arity());
      for (int pos = 0; pos < rel.arity(); ++pos) {
        sizes.push_back(static_cast<int>(slot_candidates[pos].size()));
      }
      bool found = ForEachProduct(sizes, [&](const std::vector<int>& choice) {
        // Build the candidate fact; require at least one genuinely new
        // value, otherwise the fact cannot unblock anything.
        Fact aux;
        aux.relation = m.relation;
        aux.values.resize(rel.arity());
        bool introduces_new = false;
        for (int pos = 0; pos < rel.arity(); ++pos) {
          const SlotChoice& sc = slot_candidates[pos][choice[pos]];
          aux.values[pos] =
              sc.kind == SlotKind::kFresh ? nulls_.Fresh() : sc.value;
          introduces_new = introduces_new || sc.kind != SlotKind::kOld;
        }
        if (!introduces_new) return false;
        if (working_.Contains(aux)) return false;
        ++stats_->aux_facts_tried;
        if (!BudgetOk()) return false;

        working_.AddFact(aux);
        ++stats_->q2_checks;
        if (EvalBoolDelta(q2_, working_, aux)) {  // pruned
          working_.PopFact();
          return false;
        }
        s->push_back(aux);
        bool ok = AuxSearch(s, aux_used + 1);
        s->pop_back();
        working_.PopFact();
        return ok;
      });
      if (found) return true;
    }
    return false;
  }

  const Schema& schema_;
  const AccessMethodSet& acs_;
  const ConfigView& conf_;
  const ConjunctiveQuery& d_;
  const UnionQuery& q2_;
  const ContainmentOptions& options_;
  WitnessSearchStats* stats_;

  NullFactory nulls_;
  std::vector<Value> assignment_;
  OverlayConfiguration working_;
  std::unordered_map<DomainId, std::vector<Value>> null_blocks_;
  std::vector<Fact>* witness_facts_ = nullptr;
};

}  // namespace

Result<ContainmentDecision> ContainmentEngine::Contained(
    const UnionQuery& q1, const UnionQuery& q2, const ConfigView& conf,
    const ContainmentOptions& options) {
  if (!q1.IsBoolean() || !q2.IsBoolean()) {
    return Status::InvalidArgument(
        "access-limited containment is defined here for Boolean queries "
        "(use the Prop 2.2 wrapper for k-ary relevance)");
  }
  ContainmentDecision decision;

  // Q2 certain at Conf makes containment trivial on every reachable
  // configuration (monotonicity).
  if (EvalBool(q2, conf)) {
    decision.contained = true;
    return decision;
  }

  for (size_t di = 0; di < q1.disjuncts.size(); ++di) {
    const ConjunctiveQuery& d = q1.disjuncts[di];
    std::vector<Fact> witness_facts;
    bool found = false;
    if (acs_.AllIndependent()) {
      IndependentDisjunctSearch search(schema_, acs_, conf, d, q2,
                                       &decision.stats);
      found = search.Run(&witness_facts);
    } else {
      DependentDisjunctSearch search(schema_, acs_, conf, d, q2, options,
                                     &decision.stats);
      found = search.Run(&witness_facts);
    }
    if (!found) continue;

    decision.contained = false;
    if (!options.build_witness) return decision;  // verdict-only callers
    NonContainmentWitness witness;
    witness.disjunct_index = static_cast<int>(di);
    RAR_ASSIGN_OR_RETURN(witness.steps,
                         BuildRealizingSteps(conf, acs_, witness_facts));
    AccessPath path(&conf, &acs_);
    for (const AccessStep& step : witness.steps) path.Append(step);
    RAR_ASSIGN_OR_RETURN(witness.final_config, path.Replay());
    if (options.verify_witnesses) {
      if (!EvalBool(d, witness.final_config) ||
          EvalBool(q2, witness.final_config)) {
        return Status::Internal(
            "containment witness failed verification (engine bug)");
      }
    }
    decision.witness = std::move(witness);
    return decision;
  }

  decision.contained = true;
  return decision;
}

Result<ContainmentDecision> ContainmentEngine::Contained(
    const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
    const ConfigView& conf, const ContainmentOptions& options) {
  UnionQuery u1, u2;
  u1.disjuncts.push_back(q1);
  u2.disjuncts.push_back(q2);
  return Contained(u1, u2, conf, options);
}

Result<ContainmentDecision> ContainmentEngine::Achievable(
    const UnionQuery& q, const ConfigView& conf,
    const ContainmentOptions& options) {
  UnionQuery never;  // the empty union is false everywhere
  RAR_ASSIGN_OR_RETURN(ContainmentDecision contained_in_false,
                       Contained(q, never, conf, options));
  // Achievable iff NOT contained in false; rewrap so `contained == false`
  // keeps meaning "witness found" for the caller.
  return contained_in_false;
}

}  // namespace rar
