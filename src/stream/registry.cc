#include "stream/registry.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace rar {

namespace {

// Whether a `kind` check of `access` can matter for a binding with
// footprint `fp`: an IR verdict can only come from an access over the
// binding's own relations (response facts elsewhere never change Q_b);
// same for LTR under an all-independent method set, while dependent LTR
// may chain through any method relation. Shared by the wave's witness
// batch and the full scan — the two must never diverge.
bool CheckApplicable(const AccessMethodSet& acs, const RelationFootprint& fp,
                     CheckKind kind, const Access& access) {
  if (access.method >= acs.size()) return false;
  const RelationId rel = acs.method(access.method).relation;
  if (kind == CheckKind::kImmediate) return fp.Contains(rel);
  return !acs.AllIndependent() || fp.Contains(rel);
}

// How a gated wave's MarkTouchedBindings reached a binding (wave_touched
// values; 0 = untouched).
constexpr char kTouchedSlot = 1;      ///< via the {slot, value} index
constexpr char kTouchedFree = 2;      ///< free pattern, chase unavailable
constexpr char kTouchedSemijoin = 3;  ///< via the semijoin chase
constexpr char kTouchedResidual = 4;  ///< irrelevant-uncertain residual

// Chase guard rails: beyond these the wave stops narrowing and falls back
// to the whole unconstrained set (soundness never depends on them).
constexpr size_t kChaseValueCap = 4096;   ///< distinct values collected
constexpr size_t kChaseProbeCap = 16384;  ///< facts examined

// A fact satisfies an atom's repeated non-head variables only when it
// carries equal values at every position of each variable.
bool RepeatsMatch(const std::vector<std::pair<int, VarId>>& vars,
                  const Fact& f) {
  for (size_t i = 0; i < vars.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (vars[i].second == vars[j].second &&
          f.values[vars[i].first] != f.values[vars[j].first]) {
        return false;
      }
    }
  }
  return true;
}

// Builds the semijoin chase plan seeded at `atoms[seed]` (a constraint-
// free pattern): starting from the seed's non-head variables, repeatedly
// absorb an atom of the same disjunct that shares a bound variable. Each
// absorbed atom becomes a step when it binds new variables or anchors
// head slots; atoms sharing no variable with the seed's join component
// are left out (their slots stay unbounded — the chase only requires
// membership at `bounded_slots`, so unreachable anchors never
// over-narrow).
SemijoinPlan BuildSemijoinPlan(const std::vector<AtomGateConstraint>& atoms,
                               size_t seed, size_t num_vars) {
  SemijoinPlan plan;
  plan.disjunct = atoms[seed].disjunct;
  std::vector<char> known(num_vars, 0);
  for (const auto& [pos, var] : atoms[seed].free_vars) known[var] = 1;
  std::vector<char> used(atoms.size(), 0);
  used[seed] = 1;
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t a = 0; a < atoms.size(); ++a) {
      if (used[a] || atoms[a].disjunct != plan.disjunct) continue;
      const AtomGateConstraint& c = atoms[a];
      int lookup_pos = -1;
      VarId lookup_var = 0;
      for (const auto& [pos, var] : c.free_vars) {
        if (known[var]) {
          lookup_pos = pos;
          lookup_var = var;
          break;
        }
      }
      if (lookup_pos < 0) continue;
      used[a] = 1;
      progress = true;
      SemijoinStep step;
      step.relation = c.relation;
      step.lookup_pos = lookup_pos;
      step.lookup_var = lookup_var;
      step.consts = c.required_consts;
      for (const auto& [pos, var] : c.free_vars) {
        if (pos == lookup_pos) continue;
        (known[var] ? step.known_vars : step.derive_vars)
            .emplace_back(pos, var);
      }
      step.derive_slots = c.required_slots;
      for (const auto& [pos, var] : step.derive_vars) known[var] = 1;
      // A step that neither binds variables nor anchors slots cannot
      // shrink independently-tracked value sets: drop it.
      if (!step.derive_vars.empty() || !step.derive_slots.empty()) {
        plan.steps.push_back(std::move(step));
      }
    }
  }
  for (const SemijoinStep& step : plan.steps) {
    for (const auto& [pos, slot] : step.derive_slots) {
      plan.bounded_slots.push_back(slot);
    }
  }
  std::sort(plan.bounded_slots.begin(), plan.bounded_slots.end());
  plan.bounded_slots.erase(
      std::unique(plan.bounded_slots.begin(), plan.bounded_slots.end()),
      plan.bounded_slots.end());
  return plan;
}

// Maps an engine outcome to the stream's relevance verdict (out-of-scope
// LTR verdicts fall back to the conservative default).
bool OutcomeRelevant(const StreamOptions& options, CheckKind kind,
                     const CheckOutcome& out) {
  if (kind == CheckKind::kImmediate) return out.ok() && out.relevant;
  return out.ok() ? out.relevant : options.conservative_on_unknown;
}

}  // namespace

RelevanceStreamRegistry::RelevanceStreamRegistry(RelevanceEngine* engine)
    : engine_(engine), num_relations_(engine->schema().num_relations()) {
  performed_by_relation_ = std::make_unique<std::atomic<uint64_t>[]>(
      std::max<size_t>(num_relations_, 1));
  for (size_t r = 0; r < num_relations_; ++r) {
    performed_by_relation_[r].store(0, std::memory_order_relaxed);
  }
  rechecks_by_relation_ =
      std::make_unique<std::atomic<uint64_t>[]>(num_relations_ + 1);
  for (size_t r = 0; r <= num_relations_; ++r) {
    rechecks_by_relation_[r].store(0, std::memory_order_relaxed);
  }
  engine_->AddApplyListener(this);
}

RelevanceStreamRegistry::~RelevanceStreamRegistry() {
  engine_->RemoveApplyListener(this);
}

StreamState* RelevanceStreamRegistry::stream(StreamId id) const {
  std::shared_lock<std::shared_mutex> lock(streams_mu_);
  return id < streams_.size() ? streams_[id].get() : nullptr;
}

Result<StreamId> RelevanceStreamRegistry::Register(const UnionQuery& query,
                                                   StreamOptions options) {
  return RegisterInternal(query, options, /*info=*/nullptr);
}

Result<StreamId> RelevanceStreamRegistry::RegisterRecovered(
    const UnionQuery& query, StreamOptions options,
    const StreamRecoveryInfo& info) {
  return RegisterInternal(query, options, &info);
}

Result<StreamId> RelevanceStreamRegistry::RegisterInternal(
    const UnionQuery& query, StreamOptions options,
    const StreamRecoveryInfo* info) {
  auto owned = std::make_unique<StreamState>(
      engine_->schema(), query, options,
      info != nullptr ? &info->fresh_pool : nullptr);
  StreamState& s = *owned;
  RAR_RETURN_NOT_OK(s.inst.status());
  s.query_footprint = RelationFootprint::Of(query);

  // With dependent methods, an LTR verdict can hinge on *any* method
  // relation (production chains) — those relations join every binding's
  // stamp. All-independent sets and IR-only streams stay footprint-narrow.
  const AccessMethodSet& acs = engine_->access_methods();
  if (options.use_long_term && !acs.AllIndependent()) {
    for (AccessMethodId m = 0; m < acs.size(); ++m) {
      s.extra_relations.push_back(acs.method(m).relation);
    }
    std::sort(s.extra_relations.begin(), s.extra_relations.end());
    s.extra_relations.erase(
        std::unique(s.extra_relations.begin(), s.extra_relations.end()),
        s.extra_relations.end());
  }

  // Per-domain Adom tracking: IR-only verdicts read the active domain
  // only through binding enumeration (head domains) and frontier minting
  // (input domains of dependent methods over footprint relations), so the
  // stamps track exactly those domains and growth elsewhere is invisible.
  // LTR deciders enumerate the whole Adom — those streams keep the global
  // version.
  s.per_domain_adom = options.use_immediate && !options.use_long_term;
  if (s.per_domain_adom) {
    const Schema& schema = engine_->schema();
    for (size_t d = 0; d < s.inst.num_domains(); ++d) {
      s.adom_domains.push_back(s.inst.domain(d));
    }
    for (AccessMethodId m = 0; m < acs.size(); ++m) {
      const AccessMethod& am = acs.method(m);
      if (!am.dependent || !s.query_footprint.Contains(am.relation)) continue;
      const Relation& rel = schema.relation(am.relation);
      for (int pos : am.input_positions) {
        s.adom_domains.push_back(rel.attributes[pos].domain);
      }
    }
    std::sort(s.adom_domains.begin(), s.adom_domains.end());
    s.adom_domains.erase(
        std::unique(s.adom_domains.begin(), s.adom_domains.end()),
        s.adom_domains.end());
  }

  // Value gate: derivable only when verdicts are bounded by atom
  // unification (not dependent-method LTR) and the disjunct masks fit.
  s.gate_supported = s.extra_relations.empty() &&
                     query.disjuncts.size() < 64 &&
                     !options.force_full_recheck;
  // Semijoin narrowing and Adom delta-gating additionally need IR-only
  // verdicts (the soundness argument rests on IR monotonicity).
  s.semijoin_supported = s.gate_supported && s.per_domain_adom;
  if (s.gate_supported) {
    for (RelationId rel : s.query_footprint.relations) {
      RelationGate gate;
      gate.relation = rel;
      s.gates.push_back(std::move(gate));
    }
    const std::vector<AtomGateConstraint>& atoms = s.inst.gate_constraints();
    for (size_t ci = 0; ci < atoms.size(); ++ci) {
      const AtomGateConstraint& c = atoms[ci];
      for (RelationGate& gate : s.gates) {
        if (gate.relation != c.relation) continue;
        if (c.required_slots.empty()) {
          gate.free_patterns.push_back(c);
          if (s.semijoin_supported) {
            gate.free_plans.push_back(BuildSemijoinPlan(
                atoms, ci, query.disjuncts[c.disjunct].num_vars()));
            for (const SemijoinStep& step : gate.free_plans.back().steps) {
              s.indexed_positions.emplace_back(step.relation,
                                               step.lookup_pos);
            }
          }
        } else {
          gate.slot_patterns.push_back(c);
        }
        break;
      }
    }
    std::sort(s.indexed_positions.begin(), s.indexed_positions.end());
    s.indexed_positions.erase(
        std::unique(s.indexed_positions.begin(), s.indexed_positions.end()),
        s.indexed_positions.end());
  }

  // Publish the stream *before* reading the active domain, holding its
  // mutex: a response applied from here on blocks in OnApply until the
  // initial wave lands (instead of being missed), and one applied before
  // the candidate read below is already part of what it sees.
  StreamId id;
  std::unique_lock<std::mutex> setup(s.mu);
  {
    std::unique_lock<std::shared_mutex> lock(streams_mu_);
    id = static_cast<StreamId>(streams_.size());
    s.id = id;
    streams_.push_back(std::move(owned));
  }
  counters_.Bump(counters_.streams_registered);

  s.candidates.values.resize(s.inst.num_domains());
  s.candidates.seen.assign(s.inst.num_domains(), 0);
  for (size_t d = 0; d < s.inst.num_domains(); ++d) {
    s.candidates.values[d] = engine_->AdomValuesOf(s.inst.domain(d));
  }

  Status append = Status::OK();
  s.inst.ForEachBinding(s.candidates, [&](const std::vector<Value>& slots) {
    append = AppendBinding(s, slots);
    return !append.ok();
  });
  if (!append.ok()) {
    // Cannot happen for a query that passed validation (its Boolean
    // instantiations are valid engine queries), but never leave a
    // half-built stream live: stop maintaining it.
    s.defunct = true;
    return append;
  }
  for (size_t d = 0; d < s.inst.num_domains(); ++d) {
    s.candidates.seen[d] = s.candidates.values[d].size();
  }
  RecheckWave(s, num_relations_, /*force=*/true, /*event=*/nullptr,
              /*performed_after=*/0, /*adom_hit=*/false);
  if (info != nullptr && info->quiet) {
    // Snapshot restore: the subscriber already consumed everything through
    // its acknowledged cursor, so the re-registration's own events are
    // noise — replace them with the persisted un-acknowledged tail and
    // force the cursors. The verdict/binding state itself regenerated
    // identically above (same configuration, same fresh pool).
    s.pending_events = info->retained_events;
    s.next_sequence = info->next_sequence;
    s.acked_sequence = info->acked_sequence;
    s.poll_cursor = info->acked_sequence;
    s.evicted_sequence = info->evicted_through;
  }
  return id;
}

size_t RelevanceStreamRegistry::num_streams() const {
  std::shared_lock<std::shared_mutex> lock(streams_mu_);
  return streams_.size();
}

Status RelevanceStreamRegistry::AppendBinding(
    StreamState& s, const std::vector<Value>& slot_values) {
  BindingState b;
  b.slot_values = slot_values;
  b.tuple = s.inst.ExpandTuple(slot_values);
  b.has_fresh = s.inst.HasFresh(slot_values);
  UnionQuery q_b = s.inst.Instantiate(slot_values, &b.disjunct_mask);
  if (q_b.disjuncts.empty()) {
    // Repeated head variables received conflicting values in every
    // disjunct: Q_b is identically false, so the binding can never become
    // certain and no access is ever relevant to it.
    b.unsat = true;
    s.num_unsat += 1;
  } else {
    b.footprint = RelationFootprint::Of(q_b);
    RAR_ASSIGN_OR_RETURN(b.qid, engine_->RegisterQuery(q_b));
  }
  StreamEvent added;
  added.kind = StreamEventKind::kBindingAdded;
  added.binding = b.tuple;
  s.bindings.push_back(std::move(b));
  if (s.index_built) IndexBinding(s, s.bindings.size() - 1);
  counters_.Bump(counters_.bindings_tracked);
  std::vector<StreamEvent> events;
  events.push_back(std::move(added));
  CommitEvents(s, std::move(events));
  return Status::OK();
}

Status RelevanceStreamRegistry::ExtendBindings(StreamState& s) {
  for (size_t d = 0; d < s.inst.num_domains(); ++d) {
    std::vector<Value> grown = engine_->AdomValuesOf(
        s.inst.domain(d), s.candidates.values[d].size());
    for (Value& v : grown) s.candidates.values[d].push_back(v);
  }
  const size_t before = s.bindings.size();
  Status append = Status::OK();
  s.inst.ForEachNewBinding(s.candidates,
                           [&](const std::vector<Value>& slots) {
                             append = AppendBinding(s, slots);
                             return !append.ok();
                           });
  counters_.Bump(counters_.new_bindings,
                 static_cast<uint64_t>(s.bindings.size() - before));
  if (!append.ok()) {
    // Advancing the cursor would silently drop the never-appended
    // bindings from every future delta; a partial enumeration cannot be
    // resumed without duplicating the appended ones either, so the
    // stream stops being maintained. (Unreachable for validated stream
    // queries — see Register.)
    s.defunct = true;
    return append;
  }
  for (size_t d = 0; d < s.inst.num_domains(); ++d) {
    s.candidates.seen[d] = s.candidates.values[d].size();
  }
  return append;
}

VersionStamp RelevanceStreamRegistry::StampFor(const StreamState& s,
                                               const BindingState& b) const {
  VersionStamp stamp;
  stamp.reserve(
      2 * (b.footprint.relations.size() + s.extra_relations.size()) +
      (s.per_domain_adom ? s.adom_domains.size() : 1));
  auto push = [&](RelationId rel) {
    stamp.push_back(engine_->relation_version(rel));
    stamp.push_back(rel < num_relations_
                        ? performed_by_relation_[rel].load(
                              std::memory_order_acquire)
                        : 0);
  };
  for (RelationId rel : b.footprint.relations) push(rel);
  for (RelationId rel : s.extra_relations) {
    if (!b.footprint.Contains(rel)) push(rel);
  }
  // The Adom tail closes the frontier: new active-domain values mint new
  // candidate accesses (and, one level up, new bindings). IR-only streams
  // track only the domains those two channels read; everyone else tracks
  // the global version.
  if (s.per_domain_adom) {
    for (DomainId d : s.adom_domains) {
      stamp.push_back(engine_->adom_domain_version(d));
    }
  } else {
    stamp.push_back(engine_->adom_version());
  }
  return stamp;
}

std::vector<StreamEvent> RelevanceStreamRegistry::EvalBinding(
    StreamState& s, BindingState& b, const std::vector<Access>& pending,
    VersionStamp stamp) {
  const AccessMethodSet& acs = engine_->access_methods();
  const bool was_relevant = b.relevant;

  // A certain Q_b answers every check "irrelevant" (the engine's sticky
  // short-circuit), so the scans need no certainty pre-gate — and a
  // relevant access *implies* not-certain, which skips the explicit
  // certainty probe for the common live binding.
  auto ir_relevant = [&](const Access& a) {
    if (!CheckApplicable(acs, b.footprint, CheckKind::kImmediate, a)) {
      return false;
    }
    return OutcomeRelevant(s.options, CheckKind::kImmediate,
                           engine_->CheckImmediate(b.qid, a));
  };
  auto ltr_relevant = [&](const Access& a) {
    if (!CheckApplicable(acs, b.footprint, CheckKind::kLongTerm, a)) {
      return false;
    }
    return OutcomeRelevant(s.options, CheckKind::kLongTerm,
                           engine_->CheckLongTerm(b.qid, a));
  };
  bool relevant = false;
  Access witness;
  bool has_witness = false;
  // Witness-first: the access that made the binding relevant last time
  // usually still does, turning steady-state rechecks into one probe.
  if (b.has_witness && !engine_->WasPerformed(b.witness) &&
      ((s.options.use_immediate && ir_relevant(b.witness)) ||
       (s.options.use_long_term && ltr_relevant(b.witness)))) {
    relevant = true;
    witness = b.witness;
    has_witness = true;
  }
  if (!relevant && s.options.use_immediate) {
    for (const Access& a : pending) {
      if (ir_relevant(a)) {
        relevant = true;
        witness = a;
        has_witness = true;
        break;
      }
    }
  }
  if (!relevant && s.options.use_long_term) {
    for (const Access& a : pending) {
      if (ltr_relevant(a)) {
        relevant = true;
        witness = a;
        has_witness = true;
        break;
      }
    }
  }
  const bool certain = relevant ? false : engine_->IsCertain(b.qid);

  b.stamp = std::move(stamp);
  b.evaluated = true;
  std::vector<StreamEvent> events;
  auto emit = [&](StreamEventKind kind) {
    StreamEvent e;
    e.kind = kind;
    e.binding = b.tuple;
    events.push_back(std::move(e));
  };
  if (certain && !b.certain) {
    b.certain = true;
    emit(StreamEventKind::kBecameCertain);
  }
  const bool now_relevant = !certain && relevant;
  if (now_relevant && !was_relevant) emit(StreamEventKind::kBecameRelevant);
  if (!now_relevant && was_relevant) emit(StreamEventKind::kBecameIrrelevant);
  b.relevant = now_relevant;
  b.witness = witness;
  b.has_witness = has_witness;
  return events;
}

void RelevanceStreamRegistry::CommitEvents(StreamState& s,
                                           std::vector<StreamEvent> events) {
  for (StreamEvent& e : events) {
    switch (e.kind) {
      case StreamEventKind::kBecameCertain:
        s.num_certain += 1;
        break;
      case StreamEventKind::kBecameRelevant:
        s.num_relevant += 1;
        break;
      case StreamEventKind::kBecameIrrelevant:
        s.num_relevant -= 1;
        break;
      case StreamEventKind::kBindingAdded:
        break;
    }
    e.sequence = s.next_sequence++;
    counters_.Bump(counters_.events);
    s.pending_events.push_back(std::move(e));
  }
  // Retention cap: evict the oldest retained events beyond the cap, so a
  // subscriber that stopped polling cannot pin memory forever. Poll-mode
  // (non-retaining) streams drain on Poll and never hit this. The horizon
  // is sticky; a cursor behind it gets the typed PollAfter error.
  const uint64_t cap = s.options.retain_cap;
  if (s.options.retain_events && cap > 0 && s.pending_events.size() > cap) {
    const size_t excess = s.pending_events.size() - static_cast<size_t>(cap);
    s.evicted_sequence = s.pending_events[excess - 1].sequence;
    s.pending_events.erase(s.pending_events.begin(),
                           s.pending_events.begin() + excess);
    if (s.poll_cursor < s.evicted_sequence) s.poll_cursor = s.evicted_sequence;
    counters_.Bump(counters_.retained_evicted, excess);
  }
}

void RelevanceStreamRegistry::EnsureGateIndex(StreamState& s) {
  if (s.index_built) return;
  s.index_built = true;
  for (size_t i = 0; i < s.bindings.size(); ++i) IndexBinding(s, i);
}

void RelevanceStreamRegistry::IndexBinding(StreamState& s, size_t idx) {
  const BindingState& b = s.bindings[idx];
  if (b.unsat) return;  // inert: no wave ever looks at it
  for (size_t slot = 0; slot < b.slot_values.size(); ++slot) {
    s.value_index[PosValueKey{static_cast<int>(slot), b.slot_values[slot]}]
        .push_back(static_cast<uint32_t>(idx));
  }
  for (RelationGate& gate : s.gates) {
    for (const AtomGateConstraint& p : gate.free_patterns) {
      if ((b.disjunct_mask >> p.disjunct) & 1) {
        gate.unconstrained_bindings.push_back(static_cast<uint32_t>(idx));
        break;
      }
    }
  }
}

void RelevanceStreamRegistry::EnsureFactIndex(StreamState& s) {
  if (s.fact_index_built || s.indexed_positions.empty()) return;
  s.fact_index_built = true;
  size_t i = 0;
  while (i < s.indexed_positions.size()) {
    const RelationId rel = s.indexed_positions[i].first;
    size_t end = i;
    while (end < s.indexed_positions.size() &&
           s.indexed_positions[end].first == rel) {
      ++end;
    }
    const std::vector<Fact> facts = engine_->RelationFactsSnapshot(rel);
    for (const Fact& f : facts) {
      for (size_t j = i; j < end; ++j) {
        const int pos = s.indexed_positions[j].second;
        s.fact_index[RelPosValueKey{rel, pos, f.values[pos]}].push_back(f);
      }
    }
    i = end;
  }
}

void RelevanceStreamRegistry::AppendFactsToIndex(StreamState& s,
                                                 const ApplyEvent& event) {
  if (!s.fact_index_built) return;
  if (event.new_facts.size() != static_cast<size_t>(event.facts_added)) {
    // Uncollected delta over a possibly-indexed relation: the index can
    // no longer be trusted to cover the configuration — rebuild lazily.
    s.fact_index.clear();
    s.fact_index_built = false;
    return;
  }
  for (const auto& [rel, pos] : s.indexed_positions) {
    if (rel != event.relation) continue;
    for (const Fact& f : event.new_facts) {
      s.fact_index[RelPosValueKey{rel, pos, f.values[pos]}].push_back(f);
    }
  }
}

namespace {

bool ConstsMatch(const AtomGateConstraint& p, const Fact& f) {
  for (const auto& [pos, c] : p.required_consts) {
    if (f.values[pos] != c) return false;
  }
  return true;
}

}  // namespace

bool RelevanceStreamRegistry::RunSemijoinPlan(StreamState& s,
                                              const AtomGateConstraint& seed,
                                              const SemijoinPlan& plan,
                                              const ApplyEvent& event) {
  // Per-variable reachable-value sets (correlations dropped — sound
  // over-approximation) and per-slot candidate sets.
  std::unordered_map<VarId, std::unordered_set<Value, ValueHash>> vars;
  std::unordered_map<size_t, std::unordered_set<Value, ValueHash>> slots;
  size_t values = 0;
  size_t probes = 0;
  for (const Fact& f : event.new_facts) {
    if (!ConstsMatch(seed, f) || !RepeatsMatch(seed.free_vars, f)) continue;
    for (const auto& [pos, var] : seed.free_vars) {
      if (vars[var].insert(f.values[pos]).second) ++values;
    }
  }
  // Each variable is bound by exactly one step (or the seed) and only
  // consumed afterwards, so one pass in plan order sees every value a
  // current-configuration homomorphism could assign.
  for (const SemijoinStep& step : plan.steps) {
    auto lit = vars.find(step.lookup_var);
    if (lit == vars.end() || lit->second.empty()) continue;
    // Copy: a self-join step may derive into its own lookup variable.
    const std::vector<Value> lookups(lit->second.begin(), lit->second.end());
    for (const Value& lv : lookups) {
      auto fit = s.fact_index.find(
          RelPosValueKey{step.relation, step.lookup_pos, lv});
      if (fit == s.fact_index.end()) continue;
      for (const Fact& g : fit->second) {
        if (++probes > kChaseProbeCap) return false;
        bool ok = true;
        for (const auto& [pos, c] : step.consts) {
          if (g.values[pos] != c) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        for (const auto& [pos, var] : step.known_vars) {
          auto vit = vars.find(var);
          if (vit == vars.end() ||
              vit->second.find(g.values[pos]) == vit->second.end()) {
            ok = false;
            break;
          }
        }
        if (!ok || !RepeatsMatch(step.derive_vars, g)) continue;
        for (const auto& [pos, var] : step.derive_vars) {
          if (vars[var].insert(g.values[pos]).second) ++values;
        }
        for (const auto& [pos, slot] : step.derive_slots) {
          if (slots[slot].insert(g.values[pos]).second) ++values;
        }
        if (values > kChaseValueCap) return false;
      }
    }
  }
  // A homomorphism using the landed fact at the seed must assign every
  // bounded slot a collected candidate; an empty candidate set means no
  // such homomorphism exists and nothing needs marking.
  const std::unordered_set<Value, ValueHash>* drive = nullptr;
  size_t drive_slot = 0;
  for (size_t slot : plan.bounded_slots) {
    auto it = slots.find(slot);
    if (it == slots.end() || it->second.empty()) return true;
    if (drive == nullptr || it->second.size() < drive->size()) {
      drive = &it->second;
      drive_slot = slot;
    }
  }
  if (drive == nullptr) return true;  // unreachable: bounded_slots checked
  for (const Value& v : *drive) {
    auto it =
        s.value_index.find(PosValueKey{static_cast<int>(drive_slot), v});
    if (it == s.value_index.end()) continue;
    for (uint32_t idx : it->second) {
      if (s.wave_touched[idx]) continue;
      const BindingState& b = s.bindings[idx];
      if (b.unsat || b.certain) continue;
      if (((b.disjunct_mask >> plan.disjunct) & 1) == 0) continue;
      bool member = true;
      for (size_t slot : plan.bounded_slots) {
        if (slot == drive_slot) continue;
        if (slots[slot].find(b.slot_values[slot]) == slots[slot].end()) {
          member = false;
          break;
        }
      }
      if (member) s.wave_touched[idx] = kTouchedSemijoin;
    }
  }
  return true;
}

bool RelevanceStreamRegistry::MarkTouchedBindings(StreamState& s,
                                                  const ApplyEvent& event,
                                                  bool adom_hit) {
  const RelationGate* gate = nullptr;
  for (const RelationGate& g : s.gates) {
    if (g.relation == event.relation) gate = &g;
  }
  // A non-Adom hit wave reaches here only for footprint relations (extras
  // imply the gate is unsupported), but stay conservative on a miss; an
  // Adom wave may legitimately carry a foreign relation (only the Adom
  // moved for this stream). Bail when the event's delta was not collected
  // (it always is while a listener is attached — belt and braces).
  if (event.new_facts.size() != static_cast<size_t>(event.facts_added)) {
    return false;
  }
  if (gate == nullptr && !adom_hit) return false;

  s.wave_touched.assign(s.bindings.size(), 0);
  bool free_hit = false;
  if (gate != nullptr && !event.new_facts.empty()) {
    // Slot-constrained atoms: a fact reaches a binding only when every
    // substituted position agrees, so the first slot position's value
    // picks the candidates out of the inverted index and the rest verify.
    for (const AtomGateConstraint& p : gate->slot_patterns) {
      for (const Fact& f : event.new_facts) {
        if (!ConstsMatch(p, f)) continue;
        const auto& [pos0, slot0] = p.required_slots[0];
        auto it = s.value_index.find(
            PosValueKey{static_cast<int>(slot0), f.values[pos0]});
        if (it == s.value_index.end()) continue;
        for (uint32_t idx : it->second) {
          if (s.wave_touched[idx]) continue;
          const BindingState& b = s.bindings[idx];
          if (((b.disjunct_mask >> p.disjunct) & 1) == 0) continue;
          bool slots_ok = true;
          for (const auto& [pos, slot] : p.required_slots) {
            if (b.slot_values[slot] != f.values[pos]) {
              slots_ok = false;
              break;
            }
          }
          if (slots_ok) s.wave_touched[idx] = kTouchedSlot;
        }
      }
    }
    // Constraint-free atoms: a matching fact unifies under *every*
    // binding, but the semijoin chase bounds which bindings' certainty it
    // can flip. Patterns without a slot-bounding plan (or whose chase
    // overflows) fall back to the whole unconstrained set.
    bool fallback_free = false;
    for (size_t pi = 0; pi < gate->free_patterns.size(); ++pi) {
      const AtomGateConstraint& p = gate->free_patterns[pi];
      bool pattern_hit = false;
      for (const Fact& f : event.new_facts) {
        if (ConstsMatch(p, f) && RepeatsMatch(p.free_vars, f)) {
          pattern_hit = true;
          break;
        }
      }
      if (!pattern_hit) continue;
      free_hit = true;
      const SemijoinPlan* plan =
          s.semijoin_supported && pi < gate->free_plans.size()
              ? &gate->free_plans[pi]
              : nullptr;
      if (plan == nullptr || plan->bounded_slots.empty() ||
          !RunSemijoinPlan(s, p, *plan, event)) {
        fallback_free = true;
      }
    }
    if (fallback_free) {
      for (uint32_t idx : gate->unconstrained_bindings) {
        if (!s.wave_touched[idx]) s.wave_touched[idx] = kTouchedFree;
      }
    }
  }
  // The irrelevant-uncertain residual: hypothetical response facts can
  // complete an IR chain no current-configuration index bounds, so a free
  // hit rechecks the irrelevant part of its unconstrained set and an Adom
  // wave (freshly minted accesses) rechecks every irrelevant-uncertain
  // binding. Relevant bindings are exempt — their pending witness stays
  // relevant under growth, leaving certainty (covered above) as the only
  // movable verdict.
  if (adom_hit) {
    for (size_t i = 0; i < s.bindings.size(); ++i) {
      const BindingState& b = s.bindings[i];
      if (s.wave_touched[i] == 0 && b.evaluated && !b.relevant &&
          !b.certain && !b.unsat) {
        s.wave_touched[i] = kTouchedResidual;
      }
    }
  } else if (free_hit && gate != nullptr) {
    for (uint32_t idx : gate->unconstrained_bindings) {
      const BindingState& b = s.bindings[idx];
      if (s.wave_touched[idx] == 0 && b.evaluated && !b.relevant &&
          !b.certain && !b.unsat) {
        s.wave_touched[idx] = kTouchedResidual;
      }
    }
  }
  return true;
}

bool RelevanceStreamRegistry::TryGateRestamp(
    const StreamState& s, BindingState& b, const ApplyEvent& event,
    uint64_t performed_after, const VersionStamp& fresh_stamp) const {
  if (!b.evaluated) return false;
  // Locate the hit relation's (version, performed) pair: gating implies
  // extras are empty, so the layout is the sorted footprint then the Adom
  // tail (one component per tracked domain, or the single global one).
  const std::vector<RelationId>& rels = b.footprint.relations;
  const size_t tail_base = 2 * rels.size();
  const auto it =
      std::lower_bound(rels.begin(), rels.end(), event.relation);
  size_t k = b.stamp.size();  // "no relation bracket"
  if (it != rels.end() && *it == event.relation) {
    k = 2 * static_cast<size_t>(it - rels.begin());
  } else if (s.wave_adom_pre.empty()) {
    // Not an Adom-delta wave and the binding's narrowed footprint misses
    // the hit relation: its staleness comes from some other apply.
    return false;
  }
  if (b.stamp.size() != fresh_stamp.size() || tail_base > b.stamp.size()) {
    return false;
  }
  // Stale by exactly this event: the hit components sit at the event's
  // pre-values and nothing else moved. A wider delta means other (not yet
  // waved, or concurrent) applies are folded in — evaluate instead of
  // reasoning about a delta we did not see.
  if (k < b.stamp.size()) {
    if (k + 1 >= tail_base) return false;
    const uint64_t pre_version =
        event.relation_version_after -
        static_cast<uint64_t>(event.facts_added);
    if (b.stamp[k] != pre_version || b.stamp[k + 1] != performed_after - 1) {
      return false;
    }
  }
  for (size_t j = 0; j < tail_base; ++j) {
    if (j == k || j == k + 1) continue;
    if (b.stamp[j] != fresh_stamp[j]) return false;
  }
  // Adom tail: components of domains this event grew must sit at the
  // event's pre-bracket; everything else must already be current.
  for (size_t j = tail_base; j < b.stamp.size(); ++j) {
    const size_t d = j - tail_base;
    const uint64_t pre =
        d < s.wave_adom_pre.size() ? s.wave_adom_pre[d] : kAdomUnmoved;
    if (pre == kAdomUnmoved) {
      if (b.stamp[j] != fresh_stamp[j]) return false;
    } else if (b.stamp[j] != pre) {
      return false;
    }
  }
  // Advance only by this event's delta: if a later apply already moved the
  // live versions further, the binding stays stale for that apply's wave.
  if (k < b.stamp.size()) {
    b.stamp[k] = event.relation_version_after;
    b.stamp[k + 1] = performed_after;
  }
  for (size_t j = tail_base; j < b.stamp.size(); ++j) {
    const size_t d = j - tail_base;
    if (d < s.wave_adom_pre.size() && s.wave_adom_pre[d] != kAdomUnmoved) {
      b.stamp[j] = s.wave_adom_post[d];
    }
  }
  return true;
}

std::shared_ptr<const std::vector<Access>>
RelevanceStreamRegistry::PendingSnapshot() {
  std::lock_guard<std::mutex> lock(pending_mu_);
  const uint64_t gen = pending_generation_.load(std::memory_order_acquire);
  if (pending_cache_ == nullptr || pending_cached_generation_ != gen) {
    pending_cache_ = std::make_shared<const std::vector<Access>>(
        engine_->PendingAccesses());
    pending_cached_generation_ = gen;
  }
  return pending_cache_;
}

void RelevanceStreamRegistry::RecheckWave(StreamState& s,
                                          size_t attribution_slot, bool force,
                                          const ApplyEvent* event,
                                          uint64_t performed_after,
                                          bool adom_hit) {
  const uint64_t wave_t0 = MonotonicNs();
  // Why this wave re-evaluated instead of value-gating (trace attribution;
  // mirrors the value_gate_fallback_* counter taxonomy).
  WaveFallbackReason wave_reason = WaveFallbackReason::kNone;
  if (force || event == nullptr || s.options.force_full_recheck) {
    wave_reason = WaveFallbackReason::kForcedFull;
  } else if (adom_hit) {
    wave_reason = WaveFallbackReason::kAdomGrowth;
  } else if (!s.gate_supported && !s.extra_relations.empty()) {
    wave_reason = WaveFallbackReason::kDependentLtr;
  }
  // Every exit records wave duration/width and (sampled) one kWave event.
  auto record_wave = [&](uint64_t rechecked, uint64_t skipped_total) {
    EngineObservability& obs = engine_->obs();
    const uint64_t ns = MonotonicNs() - wave_t0;
    obs.wave_ns.Record(ns);
    obs.wave_width.Record(rechecked);
    if (obs.trace().ShouldSample()) {
      TraceEvent e;
      e.kind = TraceEventKind::kWave;
      e.detail = static_cast<uint8_t>(wave_reason);
      e.id = static_cast<uint32_t>(attribution_slot);
      e.id2 = s.id;
      e.a = rechecked;
      e.b = skipped_total;
      e.ns = ns;
      obs.trace().Record(e);
    }
  };

  std::vector<size_t>& stale = s.wave_stale;
  std::vector<VersionStamp>& stamps = s.wave_stamps;  // pre-read, reused
  stale.clear();
  stamps.clear();

  // The value gate applies when the landed delta bounds what any binding
  // could have observed: a gate-supported stream, and — for Adom-growing
  // applies — a semijoin-supported (IR-only) stream with the event's
  // per-domain version brackets available. Registration/Refresh waves
  // (force) re-evaluate everything by definition.
  bool gated = false;
  s.wave_adom_pre.clear();
  s.wave_adom_post.clear();
  if (!force && event != nullptr && !s.options.force_full_recheck) {
    if (adom_hit) {
      if (s.semijoin_supported && !event->grown_domains.empty() &&
          !event->adom_versions_after.empty() && !event->new_adom.empty()) {
        s.wave_adom_pre.assign(s.adom_domains.size(), kAdomUnmoved);
        s.wave_adom_post.assign(s.adom_domains.size(), kAdomUnmoved);
        bool brackets_ok = true;
        for (size_t d = 0; d < s.adom_domains.size(); ++d) {
          const DomainId dom = s.adom_domains[d];
          if (!std::binary_search(event->grown_domains.begin(),
                                  event->grown_domains.end(), dom)) {
            continue;
          }
          const uint64_t post =
              dom < event->adom_versions_after.size()
                  ? event->adom_versions_after[dom]
                  : 0;
          uint64_t minted = 0;
          for (const TypedValue& tv : event->new_adom) {
            if (tv.domain == dom) ++minted;
          }
          if (minted == 0 || minted > post) {
            brackets_ok = false;  // delta incomplete: no bracket to trust
            break;
          }
          s.wave_adom_pre[d] = post - minted;
          s.wave_adom_post[d] = post;
        }
        if (brackets_ok) {
          EnsureGateIndex(s);
          EnsureFactIndex(s);
          gated = MarkTouchedBindings(s, *event, /*adom_hit=*/true);
        }
        if (gated) {
          wave_reason = WaveFallbackReason::kAdomDelta;
        } else {
          s.wave_adom_pre.clear();
          s.wave_adom_post.clear();
        }
      }
    } else if (s.gate_supported) {
      EnsureGateIndex(s);
      if (s.semijoin_supported) EnsureFactIndex(s);
      gated = MarkTouchedBindings(s, *event, /*adom_hit=*/false);
    }
  }

  uint64_t skipped = 0;
  uint64_t sticky = 0;
  uint64_t gate_skipped = 0;
  uint64_t unconstrained_rechecks = 0;
  uint64_t semijoin_rechecks = 0;
  uint64_t residual_rechecks = 0;
  uint64_t newborn_rechecks = 0;
  for (size_t i = 0; i < s.bindings.size(); ++i) {
    BindingState& b = s.bindings[i];
    if (b.unsat || b.certain) {
      ++sticky;  // monotone-final: never looked at again
      continue;
    }
    VersionStamp stamp = StampFor(s, b);
    if (!force && b.evaluated && b.stamp == stamp) {
      ++skipped;
      continue;
    }
    if (gated && !s.wave_touched[i] &&
        !(b.has_witness && b.witness == event->access) &&
        TryGateRestamp(s, b, *event, performed_after, stamp)) {
      ++gate_skipped;
      continue;
    }
    if (gated) {
      if (!b.evaluated) {
        ++newborn_rechecks;  // minted by this wave's delta enumeration
      } else if (s.wave_touched[i] == kTouchedFree) {
        ++unconstrained_rechecks;
      } else if (s.wave_touched[i] == kTouchedSemijoin) {
        ++semijoin_rechecks;
      } else if (s.wave_touched[i] == kTouchedResidual) {
        ++residual_rechecks;
      }
    }
    stale.push_back(i);
    stamps.push_back(std::move(stamp));
  }
  if (skipped > 0) counters_.Bump(counters_.skips, skipped);
  if (sticky > 0) counters_.Bump(counters_.sticky_skips, sticky);
  if (gate_skipped > 0) {
    counters_.Bump(counters_.value_gate_skips, gate_skipped);
  }
  if (semijoin_rechecks > 0) {
    counters_.Bump(counters_.value_gate_semijoin_rechecks,
                   semijoin_rechecks);
  }
  if (newborn_rechecks > 0) {
    counters_.Bump(counters_.value_gate_newborn_rechecks, newborn_rechecks);
  }
  // Residual rechecks are fallback pressure: attribute them to the event
  // channel that forced them (freshly minted accesses on Adom waves, the
  // unconstrained free hit otherwise).
  if (adom_hit && residual_rechecks > 0) {
    counters_.Bump(counters_.value_gate_fallback_adom, residual_rechecks);
  }
  if (unconstrained_rechecks + (adom_hit ? 0 : residual_rechecks) > 0) {
    counters_.Bump(counters_.value_gate_fallback_unconstrained,
                   unconstrained_rechecks +
                       (adom_hit ? 0 : residual_rechecks));
  }
  if (stale.empty()) {
    record_wave(0, skipped + sticky + gate_skipped);
    return;
  }
  if (!force && event != nullptr && !s.options.force_full_recheck &&
      !gated) {
    if (adom_hit) {
      counters_.Bump(counters_.value_gate_fallback_adom,
                     static_cast<uint64_t>(stale.size()));
    } else if (!s.gate_supported && !s.extra_relations.empty()) {
      counters_.Bump(counters_.value_gate_fallback_dependent_ltr,
                     static_cast<uint64_t>(stale.size()));
    }
  }
  counters_.Bump(counters_.rechecks, static_cast<uint64_t>(stale.size()));
  rechecks_by_relation_[attribution_slot].fetch_add(
      stale.size(), std::memory_order_relaxed);

  const std::shared_ptr<const std::vector<Access>> pending_snapshot =
      PendingSnapshot();
  const std::vector<Access>& pending = *pending_snapshot;
  std::vector<std::vector<StreamEvent>>& wave = s.wave_events;
  wave.clear();
  wave.resize(stale.size());
  std::vector<char>& resolved = s.wave_resolved;
  resolved.assign(stale.size(), 0);

  // Phase A — witness fast path as one heterogeneous batch: the access
  // that made a binding relevant last time usually still does, so the
  // steady-state wave is a single CheckMany (one acquisition of the
  // state/Adom/stripe locks for the whole stream) that confirms almost
  // every binding.
  const AccessMethodSet& acs = engine_->access_methods();
  const CheckKind witness_kind = s.options.use_immediate
                                     ? CheckKind::kImmediate
                                     : CheckKind::kLongTerm;
  std::vector<RelevanceEngine::CheckRequest> requests;
  std::vector<size_t> request_of;
  for (size_t j = 0; j < stale.size(); ++j) {
    const BindingState& b = s.bindings[stale[j]];
    if (!b.has_witness || !b.relevant) continue;
    if (!CheckApplicable(acs, b.footprint, witness_kind, b.witness) ||
        engine_->WasPerformed(b.witness)) {
      continue;
    }
    requests.push_back(
        RelevanceEngine::CheckRequest{b.qid, witness_kind, b.witness});
    request_of.push_back(j);
  }
  if (!requests.empty()) {
    const bool parallel = requests.size() >= s.options.parallel_threshold &&
                          engine_->worker_pool().size() > 1;
    std::vector<CheckOutcome> outs = engine_->CheckMany(requests, parallel);
    for (size_t k = 0; k < outs.size(); ++k) {
      if (!OutcomeRelevant(s.options, witness_kind, outs[k])) continue;
      const size_t j = request_of[k];
      BindingState& b = s.bindings[stale[j]];
      // Relevant with the same witness: no transition, just restamp.
      b.stamp = std::move(stamps[j]);
      b.evaluated = true;
      resolved[j] = 1;
    }
  }

  // Phase B — full evaluation for bindings the witness no longer carries.
  std::vector<size_t>& remaining = s.wave_remaining;
  remaining.clear();
  for (size_t j = 0; j < stale.size(); ++j) {
    if (!resolved[j]) remaining.push_back(j);
  }
  if (remaining.size() >= s.options.parallel_threshold &&
      engine_->worker_pool().size() > 1) {
    // Tasks touch disjoint bindings; the caller's hold on s.mu keeps
    // Poll/Snapshot (and other waves) out until the whole wave lands.
    engine_->worker_pool().ParallelFor(remaining.size(), [&](size_t r) {
      const size_t j = remaining[r];
      wave[j] = EvalBinding(s, s.bindings[stale[j]], pending,
                            std::move(stamps[j]));
    });
  } else {
    for (size_t j : remaining) {
      wave[j] = EvalBinding(s, s.bindings[stale[j]], pending,
                            std::move(stamps[j]));
    }
  }
  for (std::vector<StreamEvent>& events : wave) {
    CommitEvents(s, std::move(events));
  }
  record_wave(static_cast<uint64_t>(stale.size()),
              skipped + sticky + gate_skipped);
}

void RelevanceStreamRegistry::OnApply(const ApplyEvent& event) {
  // Generation first, performed counter second (release): a wave whose
  // stamps saw the performed bump re-reads the generation afterwards
  // (acquire) and is forced to refresh the pending cache — see
  // PendingSnapshot.
  pending_generation_.fetch_add(1, std::memory_order_relaxed);
  uint64_t performed_after = 0;
  if (event.relation < num_relations_) {
    performed_after = performed_by_relation_[event.relation].fetch_add(
                          1, std::memory_order_release) +
                      1;
  }
  std::vector<StreamState*> streams;
  {
    std::shared_lock<std::shared_mutex> lock(streams_mu_);
    streams.reserve(streams_.size());
    for (const auto& s : streams_) streams.push_back(s.get());
  }
  for (StreamState* sp : streams) {
    StreamState& s = *sp;
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.defunct) continue;
    // Adom growth hits a per-domain stream only when some grown domain is
    // one it tracks: foreign-domain growth mints neither bindings (head
    // domains are tracked) nor frontier accesses its IR verdicts can see
    // (dependent-method input domains over footprint relations are too).
    bool adom_hit = event.adom_grew;
    if (adom_hit && s.per_domain_adom && !event.grown_domains.empty()) {
      adom_hit = false;
      for (DomainId d : event.grown_domains) {
        if (std::binary_search(s.adom_domains.begin(), s.adom_domains.end(),
                               d)) {
          adom_hit = true;
          break;
        }
      }
    }
    const bool hit =
        adom_hit || s.query_footprint.Contains(event.relation) ||
        std::binary_search(s.extra_relations.begin(),
                           s.extra_relations.end(), event.relation);
    if (!hit) {
      // O(1) stream-level skip: nothing this stream's bindings read (facts,
      // frontier, Adom) changed.
      const uint64_t settled = s.num_certain + s.num_unsat;
      counters_.Bump(counters_.skips, s.bindings.size() - settled);
      if (settled > 0) counters_.Bump(counters_.sticky_skips, settled);
      continue;
    }
    // Keep the secondary fact index a faithful delta mirror *before* the
    // wave's chase reads it.
    if (s.semijoin_supported) AppendFactsToIndex(s, event);
    // New Adom values mint new head bindings; enumerate exactly those.
    // (A failure here means a binding query failed engine validation,
    // which a validated stream query cannot produce.)
    if (adom_hit) (void)ExtendBindings(s);
    RecheckWave(s, event.relation < num_relations_ ? event.relation
                                                   : num_relations_,
                /*force=*/false, &event, performed_after, adom_hit);
  }
}

void RelevanceStreamRegistry::ContributeStats(EngineStats* stats) const {
  counters_.ContributeTo(stats);
  if (stats->stream_rechecks_by_relation.size() < num_relations_ + 1) {
    stats->stream_rechecks_by_relation.resize(num_relations_ + 1, 0);
  }
  for (size_t r = 0; r <= num_relations_; ++r) {
    stats->stream_rechecks_by_relation[r] +=
        rechecks_by_relation_[r].load(std::memory_order_relaxed);
  }
}

StreamDelta RelevanceStreamRegistry::Poll(StreamId id) {
  StreamDelta delta;
  StreamState* s = stream(id);
  if (s == nullptr) return delta;
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->options.retain_events) {
    // Retained mode: copy past the poll cursor; events survive until
    // Acknowledge so a reconnecting subscriber can PollAfter(acked).
    for (const StreamEvent& e : s->pending_events) {
      if (e.sequence > s->poll_cursor) delta.events.push_back(e);
    }
    if (!delta.events.empty()) {
      s->poll_cursor = delta.events.back().sequence;
    }
  } else {
    delta.events = std::move(s->pending_events);
    s->pending_events.clear();
  }
  delta.last_sequence = s->next_sequence - 1;
  delta.evicted_through = s->evicted_sequence;
  return delta;
}

Result<StreamDelta> RelevanceStreamRegistry::PollAfter(StreamId id,
                                                       uint64_t cursor) {
  StreamState* s = stream(id);
  if (s == nullptr) return StreamDelta{};
  {
    std::lock_guard<std::mutex> lock(s->mu);
    if (s->options.retain_events && cursor < s->evicted_sequence) {
      // The retention cap dropped events past this cursor: the gap cannot
      // be filled. The subscriber must re-Snapshot for current state, then
      // resume from the eviction horizon (EvictedThrough).
      return Status::FailedPrecondition(
          "cursor evicted: retention cap dropped events through sequence " +
          std::to_string(s->evicted_sequence) + " (cursor " +
          std::to_string(cursor) + "); re-snapshot and resume from there");
    }
    if (s->options.retain_events && cursor < s->poll_cursor) {
      s->poll_cursor = cursor;
    }
  }
  return Poll(id);
}

Status RelevanceStreamRegistry::Acknowledge(StreamId id, uint64_t upto) {
  StreamState* s = stream(id);
  if (s == nullptr) return Status::NotFound("no such stream");
  std::lock_guard<std::mutex> lock(s->mu);
  if (!s->options.retain_events) {
    return Status::FailedPrecondition(
        "stream does not retain events (StreamOptions::retain_events)");
  }
  if (upto >= s->next_sequence) {
    // An ack past the last emitted event would push the cursor into the
    // future — events emitted later with sequence <= upto would silently
    // never be delivered, and the bogus cursor would be persisted.
    return Status::InvalidArgument(
        "acknowledge beyond last emitted event (upto " +
        std::to_string(upto) + ", last emitted " +
        std::to_string(s->next_sequence - 1) + ")");
  }
  if (upto > s->acked_sequence) s->acked_sequence = upto;
  // Acknowledged implies delivered: never re-deliver at or below `upto`.
  if (upto > s->poll_cursor) s->poll_cursor = upto;
  std::vector<StreamEvent>& evs = s->pending_events;
  evs.erase(std::remove_if(
                evs.begin(), evs.end(),
                [&](const StreamEvent& e) { return e.sequence <= upto; }),
            evs.end());
  return Status::OK();
}

Result<RelevanceStreamRegistry::StreamPersistState>
RelevanceStreamRegistry::DumpPersistState(StreamId id) const {
  StreamState* s = stream(id);
  if (s == nullptr) return Status::NotFound("no such stream");
  std::lock_guard<std::mutex> lock(s->mu);
  StreamPersistState ps;
  ps.query = s->query;
  ps.options = s->options;
  ps.fresh_pool = s->inst.fresh_constants();
  ps.next_sequence = s->next_sequence;
  ps.acked_sequence = s->acked_sequence;
  ps.evicted_through = s->evicted_sequence;
  ps.retained_events = s->pending_events;
  return ps;
}

StreamSnapshot RelevanceStreamRegistry::Snapshot(StreamId id) const {
  StreamSnapshot snap;
  StreamState* s = stream(id);
  if (s == nullptr) return snap;
  std::lock_guard<std::mutex> lock(s->mu);
  snap.bindings_tracked = s->bindings.size();
  snap.certain = s->num_certain;
  snap.relevant = s->num_relevant;
  snap.any_relevant = s->num_relevant > 0;
  snap.bindings.reserve(s->bindings.size());
  for (const BindingState& b : s->bindings) {
    snap.bindings.push_back(MakeBindingView(b));
  }
  return snap;
}

bool RelevanceStreamRegistry::AnyRelevant(StreamId id) const {
  StreamState* s = stream(id);
  if (s == nullptr) return false;
  std::lock_guard<std::mutex> lock(s->mu);
  return s->num_relevant > 0;
}

std::vector<BindingView> RelevanceStreamRegistry::RelevantBindings(
    StreamId id) const {
  std::vector<BindingView> out;
  StreamState* s = stream(id);
  if (s == nullptr) return out;
  std::lock_guard<std::mutex> lock(s->mu);
  for (const BindingState& b : s->bindings) {
    if (b.relevant) out.push_back(MakeBindingView(b));
  }
  return out;
}

void RelevanceStreamRegistry::Refresh(StreamId id) {
  StreamState* s = stream(id);
  if (s == nullptr) return;
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->defunct) return;
  RecheckWave(*s, num_relations_, /*force=*/true, /*event=*/nullptr,
              /*performed_after=*/0, /*adom_hit=*/false);
}

Status RelevanceStreamRegistry::Degrade(StreamId id) {
  StreamState* s = stream(id);
  if (s == nullptr) return Status::NotFound("no such stream");
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->options.force_full_recheck) return Status::OK();  // already degraded
  // force_full_recheck is consulted at the top of every wave, so flipping
  // it here (under s.mu, which waves hold) takes effect on the next wave;
  // the gate indexes become dead weight and are dropped. Verdicts are
  // unaffected: a full recheck decides exactly what a gated wave would
  // have (the gate only ever *skips* provably-unchanged bindings).
  s->options.force_full_recheck = true;
  s->gate_supported = false;
  s->semijoin_supported = false;
  s->gates.clear();
  s->value_index.clear();
  s->index_built = false;
  s->fact_index.clear();
  s->fact_index_built = false;
  counters_.Bump(counters_.streams_degraded);
  return Status::OK();
}

size_t RelevanceStreamRegistry::RetainedCount(StreamId id) const {
  StreamState* s = stream(id);
  if (s == nullptr) return 0;
  std::lock_guard<std::mutex> lock(s->mu);
  return s->options.retain_events ? s->pending_events.size() : 0;
}

uint64_t RelevanceStreamRegistry::EvictedThrough(StreamId id) const {
  StreamState* s = stream(id);
  if (s == nullptr) return 0;
  std::lock_guard<std::mutex> lock(s->mu);
  return s->evicted_sequence;
}

}  // namespace rar
