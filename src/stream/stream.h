// Standing k-ary relevance streams: the public subscription surface.
//
// The paper's runtime story is a mediator deciding, as the configuration
// grows, which accesses still matter; Prop 2.2 reduces k-ary relevance to
// Boolean relevance per head instantiation. A *stream* makes that
// reduction resident: a client registers a k-ary (or Boolean) union query
// once and the registry (src/stream/registry.h) thereafter maintains, per
// head binding b over the active domain plus the Prop 2.2 fresh
// constants,
//
//  * whether Q_b is certain — b has joined the certain-answer set
//    (monotone: the configuration only grows, so certainty is sticky);
//  * whether some pending frontier access is still IR/LTR-relevant to
//    Q_b, together with one witnessing access (what a crawl should
//    perform next for that binding).
//
// Clients consume the state two ways: `Snapshot` (point-in-time sets) and
// `Poll` (incremental deltas — the ordered stream of binding lifecycle
// events since the last poll). Both are cheap reads; the expensive work
// happens inside ApplyResponse notifications, and only for the bindings
// whose footprint stamps the response actually invalidated.
#ifndef RAR_STREAM_STREAM_H_
#define RAR_STREAM_STREAM_H_

#include <cstdint>
#include <vector>

#include "access/access_method.h"
#include "relational/value.h"

namespace rar {

/// Dense id of a stream within a RelevanceStreamRegistry.
using StreamId = uint32_t;

/// \brief Per-stream registration knobs.
struct StreamOptions {
  /// Track immediate relevance of pending accesses per binding.
  bool use_immediate = true;
  /// Also track long-term relevance (falls back to LTR when no access is
  /// immediately relevant — the expensive kind; off by default).
  bool use_long_term = false;
  /// When an LTR verdict is outside its paper-backed scope, count the
  /// access as relevant (mirror of MediatorOptions::conservative_on_unknown).
  bool conservative_on_unknown = true;
  /// Stale sets at least this large are rechecked in parallel across the
  /// engine's worker pool; smaller waves run inline.
  size_t parallel_threshold = 8;
  /// Disables the value gate: every footprint-hit wave re-evaluates every
  /// stamp-stale binding, never restamping from the landed delta alone.
  /// Escape hatch for parity testing and for recovery from a suspected
  /// gating bug; verdicts must be identical either way (the stream_test
  /// property tests pin that).
  bool force_full_recheck = false;
  /// Retain delivered events until the subscriber acknowledges them
  /// (`Acknowledge`), instead of draining on Poll. Required for resumable
  /// cursors: after a crash or reconnect, `PollAfter(acked)` re-delivers
  /// everything past the acknowledged sequence, gap-free. DurableSession
  /// forces this on so persisted cursors always have events to resume
  /// into.
  bool retain_events = false;
  /// Cap on retained events (retain_events only; 0 = unbounded). When the
  /// queue exceeds the cap, the oldest events are evicted — a dead or
  /// lagging subscriber cannot pin memory forever. A cursor behind the
  /// eviction horizon gets a typed FailedPrecondition from `PollAfter`
  /// ("cursor evicted"): the subscriber must re-`Snapshot` and resume from
  /// `StreamDelta::evicted_through`.
  uint64_t retain_cap = 0;
};

/// \brief Binding lifecycle events a stream emits.
enum class StreamEventKind : uint8_t {
  kBindingAdded,      ///< head binding enumerated (registration/Adom growth)
  kBecameCertain,     ///< Q_b turned certain: b joined the certain-answer set
  kBecameRelevant,    ///< some frontier access is now relevant to Q_b
  kBecameIrrelevant,  ///< no frontier access is relevant to Q_b anymore
};

const char* ToString(StreamEventKind kind);

/// \brief One delta notification: a binding (full k-tuple of head values)
/// changed state. `sequence` is per-stream monotone, so clients can
/// detect missed polls.
struct StreamEvent {
  StreamEventKind kind = StreamEventKind::kBindingAdded;
  std::vector<Value> binding;
  uint64_t sequence = 0;
};

/// \brief Events accumulated since the previous Poll.
struct StreamDelta {
  std::vector<StreamEvent> events;
  uint64_t last_sequence = 0;
  /// Highest sequence the retention cap has evicted (0 = none). Events at
  /// or below it are gone: a subscriber whose cursor is behind must
  /// re-Snapshot instead of assuming `events` is gap-free back to its
  /// cursor.
  uint64_t evicted_through = 0;
};

/// \brief Read-only view of one tracked binding.
struct BindingView {
  std::vector<Value> binding;  ///< full k-tuple of head values
  bool certain = false;
  bool relevant = false;
  /// The binding uses a Prop 2.2 fresh constant (it stands for "some value
  /// not yet in the configuration"; never a concrete certain answer).
  bool has_fresh = false;
  /// Every disjunct collapsed under this binding (repeated head variables
  /// with conflicting values): permanently irrelevant.
  bool unsat = false;
  /// A pending access found relevant to Q_b (valid when `relevant`).
  Access witness;
  bool has_witness = false;
};

/// \brief Point-in-time state of one stream.
struct StreamSnapshot {
  size_t bindings_tracked = 0;
  size_t certain = 0;
  size_t relevant = 0;
  /// True when some binding still has a relevant frontier access — the
  /// standing k-ary relevance verdict (Prop 2.2's OR over instantiations).
  bool any_relevant = false;
  std::vector<BindingView> bindings;
};

}  // namespace rar

#endif  // RAR_STREAM_STREAM_H_
