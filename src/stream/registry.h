// RelevanceStreamRegistry: incremental maintenance of standing k-ary
// relevance streams over a RelevanceEngine.
//
// The registry attaches to an engine as an ApplyListener. On every
// absorbed response it narrows the work with two filters before touching
// any decider:
//
//  1. *stream-level*: when the applied relation lies outside a stream's
//     query footprint (plus the dependent-LTR widening) and the response
//     grew no active-domain value, every binding of that stream is skipped
//     in O(1) — the apply cannot have changed any binding verdict or the
//     relevant frontier.
//  2. *binding-level*: otherwise each binding rebuilds its registry stamp
//     (engine footprint versions + per-relation performed-access counters
//     + the Adom version) and is re-evaluated only on mismatch; settled
//     bindings (certain — monotone — or unsatisfiable) are never looked at
//     again.
//  3. *value gate*: a stamp-stale binding of a footprint-hit wave is
//     restamped *without* re-evaluation when the landed facts are provably
//     invisible to its binding query. Soundness (see DESIGN.md,
//     "Value-gated hit waves"): with the active domain unchanged, a landed
//     fact that unifies with no substituted atom of Q_b can join no
//     homomorphism of Q_b over any extension of the configuration, so it
//     flips neither certainty nor any pending access's IR/LTR verdict; the
//     frontier meanwhile only lost the performed access, which matters
//     only to the binding it witnessed. The gate therefore rechecks
//     exactly: bindings a landed fact reaches through the inverted
//     {head slot, value} -> binding index (via the per-atom constraints
//     HeadInstantiator::gate_constraints derives once per stream), the
//     bindings a free-pattern hit can affect (below), and the binding
//     whose witness was just performed. Everything else keeps its verdicts
//     and merely advances the hit relation's stamp components — and only
//     by exactly this event's delta, so staleness from concurrent applies
//     survives for their own waves. Conservative full-wave fallbacks:
//     dependent-method LTR streams (production chains escape atom
//     unification), >= 64 disjuncts, and the
//     StreamOptions::force_full_recheck escape hatch.
//  4. *semijoin narrowing* (IR-only gated streams): a fact landing on a
//     constraint-free atom unifies with it under *every* binding, but for
//     a relevant binding the only verdict a landed fact can move is
//     certainty flipping on — IR relevance of its pending witness is
//     monotone under configuration growth — and certainty needs a
//     homomorphism over the *current* configuration that uses the fact.
//     The chase (SemijoinPlan) follows the hit atom's non-head join
//     variables through the disjunct's other atoms via a secondary
//     {relation, position, value} -> facts index, collecting candidate
//     values for every join-connected head slot; relevant bindings whose
//     slot values miss the candidate sets are restamped. Irrelevant-
//     uncertain bindings stay in the recheck set (hypothetical response
//     facts can complete their IR chains — the
//     `value_gate_fallback_unconstrained` residual).
//  5. *delta-gated Adom growth* (IR-only gated streams): an Adom-growing
//     apply used to force a full wave. Per-domain Adom versions make
//     foreign-domain growth an O(1) stream skip, and growth of a tracked
//     domain rechecks only {fact-touched (filters 3-4), newborn bindings
//     the delta enumeration minted, the performed witness, and the
//     irrelevant-uncertain residual (`value_gate_fallback_adom`) — a
//     freshly minted access may be relevant to those}; relevant untouched
//     bindings keep their monotone witnesses and are restamped across the
//     event's per-domain version brackets.
//
// Re-evaluation piggybacks on the engine: `IsCertain` / `CheckImmediate` /
// `CheckLongTerm` run under the engine's striped locks and decision cache
// (binding queries are ordinary engine queries), and waves above
// `StreamOptions::parallel_threshold` fan out over the engine's worker
// pool. Active-domain growth delta-enumerates exactly the new head
// bindings via HeadInstantiator::ForEachNewBinding.
//
// Threading: OnApply runs on the applying thread after the engine released
// its locks; waves serialize per stream (StreamState::mu) while distinct
// streams and engine-side applies proceed concurrently. Poll/Snapshot are
// cheap reads under the same per-stream mutex. Destroy the registry only
// after in-flight applies quiesce (it detaches itself from the engine).
#ifndef RAR_STREAM_REGISTRY_H_
#define RAR_STREAM_REGISTRY_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "engine/engine.h"
#include "stream/binding_state.h"
#include "stream/stream.h"
#include "stream/stream_stats.h"

namespace rar {

/// \brief Everything recovery needs to rebuild one stream identically
/// (src/persist/). Two modes:
///
///  * `quiet` (snapshot restore): the subscriber already consumed events
///    up to its acknowledged cursor, so the re-registration's own events
///    are discarded, the sequence counter is forced to its persisted
///    value, and the retained un-acknowledged tail is spliced back in —
///    `PollAfter(acked)` then resumes exactly where the subscriber left
///    off.
///  * `!quiet` (WAL replay of the original registration): events
///    regenerate naturally from sequence 1, exactly as the original
///    emitted them; only the fresh pool is preset.
struct StreamRecoveryInfo {
  /// The original registration's fresh pool, in
  /// `HeadInstantiator::fresh_constants()` order (values already
  /// interned). Without it a replayed registration would mint different
  /// check constants and no persisted binding would line up.
  std::vector<TypedValue> fresh_pool;
  bool quiet = false;
  uint64_t next_sequence = 1;
  uint64_t acked_sequence = 0;
  uint64_t evicted_through = 0;  ///< persisted retention-cap horizon
  std::vector<StreamEvent> retained_events;
};

class RelevanceStreamRegistry : public ApplyListener {
 public:
  /// Attaches to `engine` (must outlive the registry).
  explicit RelevanceStreamRegistry(RelevanceEngine* engine);
  ~RelevanceStreamRegistry() override;

  RelevanceStreamRegistry(const RelevanceStreamRegistry&) = delete;
  RelevanceStreamRegistry& operator=(const RelevanceStreamRegistry&) = delete;

  /// Registers a standing stream for a k-ary (or Boolean) union query:
  /// enumerates every current head binding, registers the Boolean
  /// instantiations with the engine, and evaluates them all once.
  Result<StreamId> Register(const UnionQuery& query,
                            StreamOptions options = {});

  /// Re-registers a stream from persisted state (see StreamRecoveryInfo).
  /// Recovery only: the engine's configuration must already hold the state
  /// the info was captured against.
  Result<StreamId> RegisterRecovered(const UnionQuery& query,
                                     StreamOptions options,
                                     const StreamRecoveryInfo& info);

  size_t num_streams() const;

  /// Drains the events accumulated since the previous Poll. Retaining
  /// streams (StreamOptions::retain_events) copy instead: events stay
  /// queued until Acknowledge, and Poll hands out only those past the
  /// stream's poll cursor.
  StreamDelta Poll(StreamId id);

  /// Retained-mode Poll from an explicit cursor: rewinds the poll cursor
  /// to `cursor` (when behind it) and re-delivers every retained event
  /// after it — the reconnect/recovery path (`PollAfter(acked)` is gap-
  /// free). Equivalent to Poll for non-retaining streams. Fails with
  /// FailedPrecondition when the retention cap has evicted events past
  /// `cursor` (the gap cannot be filled — re-Snapshot, then resume from
  /// `EvictedThrough`).
  Result<StreamDelta> PollAfter(StreamId id, uint64_t cursor);

  /// Confirms delivery through sequence `upto`: drops retained events at
  /// or below it and advances the acknowledged cursor (what snapshots
  /// persist). Fails on non-retaining streams and when `upto` exceeds
  /// the last emitted sequence (a cursor in the future would suppress
  /// delivery of events not yet emitted).
  Status Acknowledge(StreamId id, uint64_t upto);

  /// \brief A stream's durable state, as snapshots capture it.
  struct StreamPersistState {
    UnionQuery query;
    StreamOptions options;
    std::vector<TypedValue> fresh_pool;  ///< inst.fresh_constants() order
    uint64_t next_sequence = 1;
    uint64_t acked_sequence = 0;
    uint64_t evicted_through = 0;  ///< retention-cap horizon (0 = none)
    std::vector<StreamEvent> retained_events;  ///< un-acknowledged tail
  };
  Result<StreamPersistState> DumpPersistState(StreamId id) const;

  /// Point-in-time state (bindings included).
  StreamSnapshot Snapshot(StreamId id) const;

  /// True when some binding still has a relevant frontier access.
  bool AnyRelevant(StreamId id) const;

  /// The currently relevant bindings with their witness accesses — what a
  /// stream-driven crawl performs next.
  std::vector<BindingView> RelevantBindings(StreamId id) const;

  /// Forces a full re-evaluation of every non-settled binding (testing /
  /// recovery hook; normal maintenance is apply-driven).
  void Refresh(StreamId id);

  /// Degrades the stream to conservative mode: sets
  /// StreamOptions::force_full_recheck and drops the value/fact gate
  /// indexes (the stream's resident memory beyond the bindings
  /// themselves). The serving layer's load-shedding hook for hot streams.
  /// Sound: force_full_recheck is consulted per wave and full rechecks
  /// are verdict-identical to gated ones by the gate's soundness argument
  /// (DESIGN.md, "Value-gated hit waves"). Idempotent; sticky.
  Status Degrade(StreamId id);

  /// Retained events currently queued (retain_events streams; the serving
  /// layer's backlog gauge). 0 for unknown or non-retaining streams.
  size_t RetainedCount(StreamId id) const;

  /// Highest sequence the retention cap has evicted (0 = none).
  uint64_t EvictedThrough(StreamId id) const;

  // ApplyListener:
  void OnApply(const ApplyEvent& event) override;
  void ContributeStats(EngineStats* stats) const override;

 private:
  StreamState* stream(StreamId id) const;

  /// Shared registration body; `info` non-null on the recovery path.
  Result<StreamId> RegisterInternal(const UnionQuery& query,
                                    StreamOptions options,
                                    const StreamRecoveryInfo* info);

  /// Appends one binding for a slot tuple (registers Q_b with the engine).
  /// Caller holds `s.mu`.
  Status AppendBinding(StreamState& s, const std::vector<Value>& slot_values);

  /// Delta-enumerates bindings introduced by active-domain growth and
  /// advances the candidate cursor. Caller holds `s.mu`.
  Status ExtendBindings(StreamState& s);

  /// Rechecks every binding whose stamp went stale (all of them when
  /// `force`), attributing recheck counts to `attribution_slot` (a
  /// RelationId, or num_relations_ for registration/Adom waves). For
  /// apply-driven waves `event` carries the landed delta and
  /// `performed_after` the registry's performed counter for the event's
  /// relation as of this apply — together they drive the value gate;
  /// `adom_hit` says the event grew a domain this stream tracks (always
  /// `event->adom_grew` for streams without per-domain stamps).
  /// Registration/Refresh waves pass nullptr/false. Caller holds `s.mu`.
  void RecheckWave(StreamState& s, size_t attribution_slot, bool force,
                   const ApplyEvent* event, uint64_t performed_after,
                   bool adom_hit);

  /// Builds the stream's {slot, value} -> bindings index and the
  /// per-relation unconstrained sets (first gated wave). Caller holds
  /// `s.mu`.
  void EnsureGateIndex(StreamState& s);

  /// Adds binding `idx` to the value index and unconstrained sets. Caller
  /// holds `s.mu`; the index must be built.
  void IndexBinding(StreamState& s, size_t idx);

  /// Seeds the secondary {relation, position, value} -> facts index from a
  /// configuration snapshot (first chase-carrying wave; the snapshot
  /// already contains the triggering event's facts). Caller holds `s.mu`.
  void EnsureFactIndex(StreamState& s);

  /// Appends the event's landed facts to the secondary index (no-op until
  /// it is built; drops the index for rebuild when the delta arrived
  /// uncollected). Caller holds `s.mu`.
  void AppendFactsToIndex(StreamState& s, const ApplyEvent& event);

  /// Marks in `s.wave_touched` every binding whose verdicts the event can
  /// move (see the class comment): slot-index hits, semijoin-chase hits,
  /// free-pattern fallbacks, and the irrelevant-uncertain residual
  /// (`adom_hit` widens the residual to every such binding). Returns false
  /// when the gate cannot be applied to this wave. Caller holds `s.mu`.
  bool MarkTouchedBindings(StreamState& s, const ApplyEvent& event,
                           bool adom_hit);

  /// Runs one free pattern's chase over the landed facts and marks the
  /// reachable bindings kTouchedSemijoin. Returns false when the chase
  /// overflowed its caps (caller falls back to marking the whole
  /// unconstrained set). Caller holds `s.mu`; both indexes must be built.
  bool RunSemijoinPlan(StreamState& s, const AtomGateConstraint& seed,
                       const SemijoinPlan& plan, const ApplyEvent& event);

  /// Value-gate restamp of one untouched stale binding: verifies the
  /// binding's stamp is stale by *exactly* this event (its hit-relation
  /// components at the event's pre-values, its grown per-domain Adom
  /// components at the wave's pre-brackets, everything else current) and,
  /// if so, advances just those components to the event's post-values.
  /// Returns false — binding must be re-evaluated — otherwise.
  bool TryGateRestamp(const StreamState& s, BindingState& b,
                      const ApplyEvent& event, uint64_t performed_after,
                      const VersionStamp& fresh_stamp) const;

  /// The pending frontier, cached registry-wide and refreshed when the
  /// apply generation moved (every apply shrinks or grows the frontier;
  /// waves of one apply across many streams share one fetch).
  std::shared_ptr<const std::vector<Access>> PendingSnapshot();

  /// Re-evaluates one binding against the engine; `stamp` is the registry
  /// stamp built *before* the engine reads (the staleness test's stamp is
  /// reused — a response landing mid-evaluation leaves it stale, and the
  /// next wave repairs the binding). Returns the events the transition
  /// produced (sequence numbers unassigned). Safe to run concurrently for
  /// distinct bindings of one stream.
  std::vector<StreamEvent> EvalBinding(StreamState& s, BindingState& b,
                                       const std::vector<Access>& pending,
                                       VersionStamp stamp);

  /// The registry stamp of one binding (see the class comment).
  VersionStamp StampFor(const StreamState& s, const BindingState& b) const;

  /// Appends `events` to the stream's queue, assigning sequence numbers
  /// and updating the relevant/certain tallies. Caller holds `s.mu`.
  void CommitEvents(StreamState& s, std::vector<StreamEvent> events);

  RelevanceEngine* engine_;
  const size_t num_relations_;

  mutable std::shared_mutex streams_mu_;  ///< guards the streams_ vector
  std::vector<std::unique_ptr<StreamState>> streams_;

  StreamCounters counters_;
  /// Per-relation count of accesses applied through the engine — the
  /// frontier-shrink component of binding stamps (performing an access
  /// removes it from the pending set even when it adds no fact).
  std::unique_ptr<std::atomic<uint64_t>[]> performed_by_relation_;
  /// Recheck attribution, indexed by RelationId; the trailing slot counts
  /// registration and Adom-growth waves.
  std::unique_ptr<std::atomic<uint64_t>[]> rechecks_by_relation_;

  /// Frontier-change generation: bumped at the top of every OnApply,
  /// *before* the performed counter — so a wave whose stamps observed an
  /// apply's performed bump is guaranteed to see its generation bump at
  /// fetch time and refresh the cache (the stamp reads acquire what the
  /// performed release-increment published).
  std::atomic<uint64_t> pending_generation_{0};
  std::mutex pending_mu_;  ///< guards the two cache fields below
  std::shared_ptr<const std::vector<Access>> pending_cache_;
  uint64_t pending_cached_generation_ = 0;
};

}  // namespace rar

#endif  // RAR_STREAM_REGISTRY_H_
