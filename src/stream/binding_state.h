// Resident per-binding state of a standing stream.
//
// One `BindingState` per enumerated head instantiation: the Boolean
// binding query lives inside the engine (registered as a regular engine
// query, so it gets the decision cache, certainty memo and footprint
// stamps for free); the stream side keeps the verdict gauges, the witness
// access, and the *registry stamp* — the engine's footprint version
// sub-vector extended with per-relation performed-access counters and the
// active-domain version, which is exactly the state the binding's
// "some frontier access is still relevant" verdict reads. A binding is
// rechecked only when a freshly built stamp differs.
//
// `StreamState` is one stream's resident aggregate: instantiator,
// candidate cursor, bindings, the undrained event queue and the relevance
// /certainty tallies. It is guarded by its own mutex (`mu`): recheck
// waves hold it while fanning per-binding work out, so Poll/Snapshot
// observe only quiesced states.
#ifndef RAR_STREAM_BINDING_STATE_H_
#define RAR_STREAM_BINDING_STATE_H_

#include <mutex>
#include <vector>

#include "engine/decision_cache.h"
#include "query/footprint.h"
#include "relational/version.h"
#include "relevance/head_instantiator.h"
#include "stream/stream.h"

namespace rar {

/// \brief One tracked head instantiation.
struct BindingState {
  std::vector<Value> slot_values;  ///< deduplicated slot tuple
  std::vector<Value> tuple;        ///< expanded k-tuple (head positions)
  /// Engine id of the Boolean binding query Q_b (unset when `unsat`).
  QueryId qid = 0;
  /// Relations of the *surviving* disjuncts of Q_b — possibly narrower
  /// than the stream query's footprint when a binding collapses disjuncts.
  RelationFootprint footprint;
  bool unsat = false;      ///< no disjunct survived: permanently inert
  bool has_fresh = false;  ///< tuple uses a Prop 2.2 fresh constant
  bool certain = false;    ///< sticky (the configuration only grows)
  bool relevant = false;
  Access witness;          ///< last access found relevant (when `relevant`)
  bool has_witness = false;
  VersionStamp stamp;      ///< registry stamp of the last evaluation
  bool evaluated = false;  ///< `stamp` holds a real evaluation
};

/// \brief One stream's resident state. Owned by the registry; all fields
/// after construction are guarded by `mu`.
struct StreamState {
  StreamState(const Schema& schema, const UnionQuery& q, StreamOptions opts)
      : query(q), options(opts), inst(schema, q) {}

  UnionQuery query;
  StreamOptions options;
  HeadInstantiator inst;
  /// Active-domain values already expanded into bindings, per distinct
  /// head domain (`seen` is the delta-enumeration cursor).
  HeadCandidates candidates;
  /// The stream query's own relations (every binding footprint is a
  /// subset) — the stream-level fast-skip filter.
  RelationFootprint query_footprint;
  /// Extra relations the LTR verdicts read beyond a binding's footprint:
  /// with dependent methods in play, an access over *any* method relation
  /// can be LTR-relevant through a production chain (mirror of the
  /// engine's StripesForCheck widening); empty for IR-only streams and
  /// all-independent method sets.
  std::vector<RelationId> extra_relations;

  std::vector<BindingState> bindings;
  size_t num_relevant = 0;
  size_t num_certain = 0;
  size_t num_unsat = 0;
  /// Registration or delta enumeration failed mid-way: the stream's
  /// binding set is incomplete and maintenance has stopped (reads still
  /// serve the last consistent state).
  bool defunct = false;

  std::vector<StreamEvent> pending_events;  ///< undrained (Poll output)
  uint64_t next_sequence = 1;

  mutable std::mutex mu;
};

/// The read-only view of one binding (Snapshot / RelevantBindings rows).
BindingView MakeBindingView(const BindingState& b);

}  // namespace rar

#endif  // RAR_STREAM_BINDING_STATE_H_
