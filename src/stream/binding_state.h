// Resident per-binding state of a standing stream.
//
// One `BindingState` per enumerated head instantiation: the Boolean
// binding query lives inside the engine (registered as a regular engine
// query, so it gets the decision cache, certainty memo and footprint
// stamps for free); the stream side keeps the verdict gauges, the witness
// access, and the *registry stamp* — the engine's footprint version
// sub-vector extended with per-relation performed-access counters and the
// active-domain version, which is exactly the state the binding's
// "some frontier access is still relevant" verdict reads. A binding is
// rechecked only when a freshly built stamp differs.
//
// `StreamState` is one stream's resident aggregate: instantiator,
// candidate cursor, bindings, the undrained event queue and the relevance
// /certainty tallies. It is guarded by its own mutex (`mu`): recheck
// waves hold it while fanning per-binding work out, so Poll/Snapshot
// observe only quiesced states.
#ifndef RAR_STREAM_BINDING_STATE_H_
#define RAR_STREAM_BINDING_STATE_H_

#include <mutex>
#include <unordered_map>
#include <vector>

#include "engine/decision_cache.h"
#include "query/footprint.h"
#include "relational/pos_value.h"
#include "relational/version.h"
#include "relevance/head_instantiator.h"
#include "stream/stream.h"

namespace rar {

/// Sentinel for StreamState::wave_adom_pre/post: the wave's event did not
/// grow this domain (its stamp component must equal the fresh stamp's).
inline constexpr uint64_t kAdomUnmoved = ~uint64_t{0};

/// \brief One tracked head instantiation.
struct BindingState {
  std::vector<Value> slot_values;  ///< deduplicated slot tuple
  std::vector<Value> tuple;        ///< expanded k-tuple (head positions)
  /// Engine id of the Boolean binding query Q_b (unset when `unsat`).
  QueryId qid = 0;
  /// Relations of the *surviving* disjuncts of Q_b — possibly narrower
  /// than the stream query's footprint when a binding collapses disjuncts.
  RelationFootprint footprint;
  bool unsat = false;      ///< no disjunct survived: permanently inert
  bool has_fresh = false;  ///< tuple uses a Prop 2.2 fresh constant
  bool certain = false;    ///< sticky (the configuration only grows)
  bool relevant = false;
  Access witness;          ///< last access found relevant (when `relevant`)
  bool has_witness = false;
  VersionStamp stamp;      ///< registry stamp of the last evaluation
  bool evaluated = false;  ///< `stamp` holds a real evaluation
  /// Bit d set when disjunct d of the stream query survived instantiation
  /// (see HeadInstantiator::Instantiate); the value gate consults it so a
  /// landed fact matching only a dropped disjunct's atom does not pull the
  /// binding into a wave. Meaningful for queries with < 64 disjuncts (the
  /// gate is disabled beyond that).
  uint64_t disjunct_mask = 0;
};

/// \brief One hop of a semijoin chase: an atom of the seed's disjunct,
/// reached through a join variable that earlier hops (or the seed) already
/// bound. Executing the step probes the stream's secondary fact index at
/// `(relation, lookup_pos, v)` for every reachable value `v` of
/// `lookup_var`, filters the facts by the atom's constants and by
/// membership of the other known-variable positions, then extends the
/// per-variable value sets (`derive_vars`) and the per-slot candidate sets
/// (`derive_slots`). Variable value sets are tracked independently
/// (correlations between variables are dropped) — a sound
/// over-approximation of every homomorphism's assignments.
struct SemijoinStep {
  RelationId relation = kInvalidId;
  int lookup_pos = 0;       ///< position probed through the fact index
  VarId lookup_var = 0;     ///< already-bound variable at that position
  /// (position, constant) filters of the atom.
  std::vector<std::pair<int, Value>> consts;
  /// Other positions holding already-bound variables: membership filters.
  std::vector<std::pair<int, VarId>> known_vars;
  /// Positions holding variables this step binds for later hops.
  std::vector<std::pair<int, VarId>> derive_vars;
  /// (position, head slot) pairs: matching facts' values here are slot
  /// candidates — the anchors that let the chase mark bindings.
  std::vector<std::pair<int, size_t>> derive_slots;
};

/// \brief The chase plan of one constraint-free pattern: from a fact
/// landing on the seed atom, follow shared non-head variables through the
/// disjunct's other atoms until head-slot positions are reached. A
/// current-configuration homomorphism of Q_b that uses the landed fact at
/// the seed atom must assign every `bounded_slots` entry a value the chase
/// collects (DESIGN.md, "Value-gated hit waves"), so bindings outside the
/// candidate sets need no certainty recheck. Empty `bounded_slots` means
/// no slot-anchored atom is join-connected to the seed — no narrowing.
struct SemijoinPlan {
  size_t disjunct = 0;
  std::vector<SemijoinStep> steps;
  std::vector<size_t> bounded_slots;  ///< sorted, unique
};

/// \brief The value gate of one stream relation: the unification patterns
/// of the stream query's atoms over it, split by whether the pattern
/// constrains any head slot (see AtomGateConstraint).
struct RelationGate {
  RelationId relation = kInvalidId;
  /// Patterns with at least one head-slot position: a landed fact reaches
  /// a binding only through the value index.
  std::vector<AtomGateConstraint> slot_patterns;
  /// Patterns with no head-slot position: any fact passing the constant
  /// check reaches every binding whose disjunct survived — narrowed by the
  /// semijoin chase when a plan bounds some slot, the
  /// "unconstrained position" fallback set otherwise.
  std::vector<AtomGateConstraint> free_patterns;
  /// Chase plans, parallel to `free_patterns` (built only when the
  /// stream's `semijoin_supported`).
  std::vector<SemijoinPlan> free_plans;
  /// Bindings with a surviving free pattern on this relation, indexed once
  /// with the value index (append-only, like the binding list).
  std::vector<uint32_t> unconstrained_bindings;
};

/// \brief One stream's resident state. Owned by the registry; all fields
/// after construction are guarded by `mu`.
struct StreamState {
  StreamState(const Schema& schema, const UnionQuery& q, StreamOptions opts,
              const std::vector<TypedValue>* preset_fresh = nullptr)
      : query(q), options(opts), inst(schema, q, preset_fresh) {}

  UnionQuery query;
  StreamOptions options;
  HeadInstantiator inst;
  /// Registry id of this stream (set once at Register, before publication;
  /// read by wave trace events).
  StreamId id = 0;
  /// Active-domain values already expanded into bindings, per distinct
  /// head domain (`seen` is the delta-enumeration cursor).
  HeadCandidates candidates;
  /// The stream query's own relations (every binding footprint is a
  /// subset) — the stream-level fast-skip filter.
  RelationFootprint query_footprint;
  /// Extra relations the LTR verdicts read beyond a binding's footprint:
  /// with dependent methods in play, an access over *any* method relation
  /// can be LTR-relevant through a production chain (mirror of the
  /// engine's StripesForCheck widening); empty for IR-only streams and
  /// all-independent method sets.
  std::vector<RelationId> extra_relations;

  std::vector<BindingState> bindings;
  size_t num_relevant = 0;
  size_t num_certain = 0;
  size_t num_unsat = 0;
  /// Registration or delta enumeration failed mid-way: the stream's
  /// binding set is incomplete and maintenance has stopped (reads still
  /// serve the last consistent state).
  bool defunct = false;

  // --- value gate (see registry.h, "Value-gated hit waves") -------------
  /// The gate applies to this stream at all: < 64 disjuncts, and not LTR
  /// under dependent methods (production chains escape atom unification).
  bool gate_supported = false;
  /// One gate per stream-footprint relation (sorted by relation id).
  std::vector<RelationGate> gates;
  /// The inverted head-value index: {slot, value} -> bindings whose slot
  /// holds that value. Built lazily on the first gated wave, maintained on
  /// delta enumeration; settled bindings keep their (harmless) entries.
  std::unordered_map<PosValueKey, std::vector<uint32_t>, PosValueKeyHash>
      value_index;
  bool index_built = false;

  // --- semijoin narrowing + per-domain Adom (IR-only streams) -----------
  /// Stamps carry one Adom component per `adom_domains` entry instead of
  /// the global Adom version. Sound for IR-only streams: their verdicts
  /// read the active domain only through binding enumeration (head
  /// domains) and frontier minting (input domains of dependent methods
  /// over footprint relations) — growth elsewhere is invisible. LTR
  /// deciders enumerate the whole Adom, so LTR streams keep the global
  /// component.
  bool per_domain_adom = false;
  std::vector<DomainId> adom_domains;  ///< sorted, unique
  /// Gated free-pattern hits narrow through semijoin plans, and Adom
  /// growth waves gate to {fact-touched, newborn, residual}: requires the
  /// value gate plus IR-only verdicts (the narrowing argument hinges on
  /// IR monotonicity under configuration growth — see DESIGN.md).
  bool semijoin_supported = false;
  /// The (relation, position) pairs some chase step probes (sorted,
  /// unique) — the key set of `fact_index`.
  std::vector<std::pair<RelationId, int>> indexed_positions;
  /// The secondary non-head value index: {relation, position, value} ->
  /// facts. Seeded lazily from a configuration snapshot at the first
  /// chase-carrying wave, then maintained from each apply's landed delta
  /// (duplicates from the seed race are harmless: the chase collects
  /// candidate *sets*). Dropped and rebuilt if a delta arrives
  /// uncollected.
  std::unordered_map<RelPosValueKey, std::vector<Fact>, RelPosValueKeyHash>
      fact_index;
  bool fact_index_built = false;

  // --- reusable wave scratch (guarded by mu, cleared per wave) ----------
  std::vector<size_t> wave_stale;
  std::vector<VersionStamp> wave_stamps;
  std::vector<std::vector<StreamEvent>> wave_events;
  std::vector<char> wave_resolved;
  std::vector<size_t> wave_remaining;
  std::vector<char> wave_touched;  ///< per-binding gate verdict
  /// Per-`adom_domains` version brackets of the wave's event (index i
  /// pairs with adom_domains[i]); kAdomUnmoved marks domains the event
  /// did not grow, whose stamp components must match the fresh stamp.
  std::vector<uint64_t> wave_adom_pre;
  std::vector<uint64_t> wave_adom_post;

  std::vector<StreamEvent> pending_events;  ///< undrained (Poll output)
  uint64_t next_sequence = 1;
  /// Retained-mode cursors (options.retain_events; see stream.h). Events
  /// stay in pending_events until acknowledged; Poll copies everything
  /// past poll_cursor instead of draining.
  uint64_t poll_cursor = 0;     ///< last sequence handed out by Poll
  uint64_t acked_sequence = 0;  ///< last sequence the subscriber confirmed
  /// Highest sequence evicted by StreamOptions::retain_cap (0 = none).
  /// A PollAfter cursor behind this is a gap the stream cannot fill.
  uint64_t evicted_sequence = 0;

  mutable std::mutex mu;
};

/// The read-only view of one binding (Snapshot / RelevantBindings rows).
BindingView MakeBindingView(const BindingState& b);

}  // namespace rar

#endif  // RAR_STREAM_BINDING_STATE_H_
