#include "stream/binding_state.h"

namespace rar {

const char* ToString(StreamEventKind kind) {
  switch (kind) {
    case StreamEventKind::kBindingAdded:
      return "binding-added";
    case StreamEventKind::kBecameCertain:
      return "became-certain";
    case StreamEventKind::kBecameRelevant:
      return "became-relevant";
    case StreamEventKind::kBecameIrrelevant:
      return "became-irrelevant";
  }
  return "unknown";
}

BindingView MakeBindingView(const BindingState& b) {
  BindingView view;
  view.binding = b.tuple;
  view.certain = b.certain;
  view.relevant = b.relevant;
  view.has_fresh = b.has_fresh;
  view.unsat = b.unsat;
  view.witness = b.witness;
  view.has_witness = b.has_witness;
  return view;
}

}  // namespace rar
