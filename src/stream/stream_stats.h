// Live counters of the stream registry (relaxed atomics, mirroring
// engine/stats.h): how many bindings each apply actually recharged versus
// skipped, and where the recheck pressure comes from. The registry
// contributes these into EngineStats snapshots via the ApplyListener
// ContributeStats hook, so `engine.stats()` shows k-ary work alongside the
// Boolean check counters.
#ifndef RAR_STREAM_STREAM_STATS_H_
#define RAR_STREAM_STREAM_STATS_H_

#include <atomic>
#include <cstdint>

#include "engine/stats.h"

namespace rar {

/// \brief The registry's counter block (relaxed atomics; see
/// EngineCounters for the ordering rationale).
struct StreamCounters {
  std::atomic<uint64_t> streams_registered{0};
  std::atomic<uint64_t> bindings_tracked{0};
  std::atomic<uint64_t> new_bindings{0};
  std::atomic<uint64_t> rechecks{0};
  std::atomic<uint64_t> skips{0};
  std::atomic<uint64_t> sticky_skips{0};
  std::atomic<uint64_t> events{0};
  /// Bindings restamped without evaluation by the value gate, and the
  /// bindings that escaped it, attributed by reason (see EngineStats).
  std::atomic<uint64_t> value_gate_skips{0};
  std::atomic<uint64_t> value_gate_fallback_adom{0};
  std::atomic<uint64_t> value_gate_fallback_dependent_ltr{0};
  std::atomic<uint64_t> value_gate_fallback_unconstrained{0};
  /// Gated rechecks the narrowing machinery *selected* (not fallbacks):
  /// bindings a landed fact reached through the secondary non-head-value
  /// semijoin chase, and newborn bindings minted by a delta-gated Adom
  /// growth wave.
  std::atomic<uint64_t> value_gate_semijoin_rechecks{0};
  std::atomic<uint64_t> value_gate_newborn_rechecks{0};
  /// Retained events evicted by StreamOptions::retain_cap (lagging or
  /// dead subscribers) and streams degraded to conservative full-recheck
  /// mode (Degrade — the serving layer's load-shedding hook).
  std::atomic<uint64_t> retained_evicted{0};
  std::atomic<uint64_t> streams_degraded{0};

  void Bump(std::atomic<uint64_t>& c, uint64_t n = 1) {
    c.fetch_add(n, std::memory_order_relaxed);
  }

  void ContributeTo(EngineStats* stats) const {
    auto ld = [](const std::atomic<uint64_t>& c) {
      return c.load(std::memory_order_relaxed);
    };
    stats->streams_registered += ld(streams_registered);
    stats->stream_bindings += ld(bindings_tracked);
    stats->stream_new_bindings += ld(new_bindings);
    stats->stream_rechecks += ld(rechecks);
    stats->stream_skips += ld(skips);
    stats->stream_sticky_skips += ld(sticky_skips);
    stats->stream_events += ld(events);
    stats->stream_value_gate_skips += ld(value_gate_skips);
    stats->stream_value_gate_fallback_adom += ld(value_gate_fallback_adom);
    stats->stream_value_gate_fallback_dependent_ltr +=
        ld(value_gate_fallback_dependent_ltr);
    stats->stream_value_gate_fallback_unconstrained +=
        ld(value_gate_fallback_unconstrained);
    stats->stream_value_gate_semijoin += ld(value_gate_semijoin_rechecks);
    stats->stream_value_gate_newborn += ld(value_gate_newborn_rechecks);
    stats->stream_retained_evicted += ld(retained_evicted);
    stats->stream_degraded += ld(streams_degraded);
  }
};

}  // namespace rar

#endif  // RAR_STREAM_STREAM_STATS_H_
