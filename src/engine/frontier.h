// The access frontier: incremental enumeration of candidate accesses.
//
// At any configuration the set of performable accesses is every method
// paired with every binding drawn from the typed active domain (for
// independent methods the frontier also only proposes known values —
// guessing arbitrary constants is pointless against a real source, see the
// mediator). Re-enumerating that product from scratch each round is
// quadratic in the run length; the frontier instead tracks, per abstract
// domain, the prefix of the active domain it has already expanded, and on
// `Sync` emits exactly the bindings that use at least one new value
// (classified by their first new coordinate, so each appears once).
//
// The frontier is also the single owner of performed-access bookkeeping:
// the mediator and the exhaustive crawl both used to carry their own
// `std::set<pair<method, binding>>`; they now share this structure via the
// engine.
#ifndef RAR_ENGINE_FRONTIER_H_
#define RAR_ENGINE_FRONTIER_H_

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "access/access_method.h"
#include "relational/configuration.h"

namespace rar {

/// \brief Incrementally maintained candidate-access set with priority
/// ordering. Not internally synchronised: the engine guards it with its
/// state lock (mutations only happen while the configuration mutates).
class AccessFrontier {
 public:
  AccessFrontier(const Schema& schema, const AccessMethodSet& acs)
      : schema_(schema), acs_(acs) {}

  /// Incorporates active-domain growth since the last call: appends every
  /// newly well-formed candidate access exactly once, in deterministic
  /// (method-major, first-seen value) order.
  void Sync(const Configuration& conf);

  /// Marks an access as performed; it stops appearing in Pending/Ranked.
  void MarkPerformed(const Access& access);

  bool WasPerformed(const Access& access) const {
    return performed_.count(KeyOf(access)) > 0;
  }

  /// Pending candidates (enumerated, not yet performed) in discovery order.
  std::vector<Access> Pending() const;

  /// Pending candidates ordered by descending `score` (stable: discovery
  /// order breaks ties). The scheduler's priority knob: the engine scores
  /// with cached relevance verdicts and query-criticality hints.
  std::vector<Access> Ranked(
      const std::function<double(const Access&)>& score) const;

  size_t pending_size() const { return candidates_.size() - performed_count_; }
  size_t performed_size() const { return performed_.size(); }

  /// Every performed access, in unspecified order (set-iteration). Input
  /// to persistence snapshots; restoring marks each back via
  /// MarkPerformed, which is order-insensitive.
  std::vector<Access> PerformedList() const {
    std::vector<Access> out;
    out.reserve(performed_.size());
    for (const AccessKey& k : performed_) {
      out.push_back(Access{k.method, k.binding});
    }
    return out;
  }
  size_t enumerated_size() const { return candidates_.size(); }

 private:
  struct AccessKey {
    AccessMethodId method;
    std::vector<Value> binding;
    bool operator==(const AccessKey& o) const {
      return method == o.method && binding == o.binding;
    }
  };
  struct AccessKeyHash {
    size_t operator()(const AccessKey& k) const {
      uint64_t h = 1469598103934665603ULL ^ k.method;
      ValueHash vh;
      for (const Value& v : k.binding) h = (h ^ vh(v)) * 1099511628211ULL;
      return static_cast<size_t>(h);
    }
  };

  static AccessKey KeyOf(const Access& a) {
    return AccessKey{a.method, a.binding};
  }

  void Emit(AccessMethodId mid, std::vector<Value> binding);

  const Schema& schema_;
  const AccessMethodSet& acs_;

  /// Every candidate ever enumerated, in discovery order. Performed ones
  /// are filtered on read; the set stays small relative to re-enumeration.
  std::vector<Access> candidates_;
  std::unordered_set<AccessKey, AccessKeyHash> enumerated_;
  std::unordered_set<AccessKey, AccessKeyHash> performed_;
  /// Performed entries that are also in candidates_ (pending_size math).
  size_t performed_count_ = 0;

  /// Per-domain count of active-domain values already expanded.
  std::vector<size_t> adom_seen_;
};

}  // namespace rar

#endif  // RAR_ENGINE_FRONTIER_H_
