#include "engine/worker_pool.h"

#include <utility>

namespace rar {

WorkerPool::WorkerPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {}

void WorkerPool::EnsureStartedLocked() {
  if (!threads_.empty()) return;
  threads_.reserve(num_threads_);
  for (int i = 0; i < num_threads_; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    EnsureStartedLocked();
    queue_.push_back(
        Task{std::move(task), queue_wait_ != nullptr ? MonotonicNs() : 0});
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void WorkerPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void WorkerPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  for (size_t i = 0; i < n; ++i) {
    Submit([&fn, i] { fn(i); });
  }
  Wait();
}

void WorkerPool::WorkerLoop() {
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (queue_wait_ != nullptr && task.enqueued_ns != 0) {
      queue_wait_->Record(MonotonicNs() - task.enqueued_ns);
    }
    task.fn();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace rar
