// Counters and latency metrics for the RelevanceEngine runtime.
//
// The engine mutates a block of relaxed atomics on its hot paths (checks,
// cache probes, version advances) and materialises a plain `EngineStats`
// snapshot on demand. Relaxed ordering is deliberate: counters are
// monotone telemetry, not synchronisation, and a snapshot taken while
// workers run is allowed to be momentarily inconsistent between fields.
#ifndef RAR_ENGINE_STATS_H_
#define RAR_ENGINE_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace rar {

/// \brief A point-in-time snapshot of engine counters.
struct EngineStats {
  uint64_t ir_checks = 0;        ///< immediate-relevance decisions requested
  uint64_t ltr_checks = 0;       ///< long-term-relevance decisions requested
  uint64_t cache_hits = 0;       ///< verdicts served from the decision cache
  uint64_t cache_misses = 0;     ///< verdicts that ran a decider
  uint64_t sticky_hits = 0;      ///< hits on growth-stable entries / certainty
  uint64_t cross_epoch_hits = 0; ///< hits that survived non-footprint growth
                                 ///< (invalidations the global-epoch scheme
                                 ///< would have inflicted)
  uint64_t stale_invalidations = 0;  ///< entries dropped on stamp mismatch
  uint64_t wf_rejections = 0;    ///< checks refused: access not well-formed
  uint64_t certainty_reuse = 0;  ///< certainty fixpoint reused (same stamp)
  uint64_t producible_reuse = 0; ///< ProducibleDomains fixpoint reused
  uint64_t producible_recomputes = 0;  ///< ProducibleDomains recomputed
  uint64_t epoch_advances = 0;   ///< configuration-growing responses
  uint64_t adom_advances = 0;    ///< responses that grew the active domain
  uint64_t facts_applied = 0;    ///< new facts absorbed via ApplyResponse
  uint64_t responses_applied = 0;///< ApplyResponse calls (incl. empty)
  uint64_t overlapped_applies = 0;  ///< applies that ran with checks in flight
  uint64_t overlapped_checks = 0;   ///< checks that ran with applies in flight
  uint64_t batch_calls = 0;      ///< CheckBatch invocations
  uint64_t batch_items = 0;      ///< accesses checked through CheckBatch
  uint64_t uncached_ir_checks = 0;   ///< IR checks that ran the decider
  uint64_t uncached_ltr_checks = 0;  ///< LTR checks that ran the decider
  uint64_t ir_time_ns = 0;       ///< wall time inside uncached IR deciders
  uint64_t ltr_time_ns = 0;      ///< wall time inside uncached LTR deciders
  uint64_t cache_entries = 0;    ///< live decision-cache entries
  uint64_t cache_evictions = 0;  ///< entries evicted by the LRU size cap
  uint64_t frontier_pending = 0; ///< candidate accesses not yet performed
  uint64_t frontier_performed = 0;  ///< accesses marked performed
  /// Stale-entry drops attributed to the footprint component that moved,
  /// indexed by RelationId; the extra trailing slot counts Adom-version
  /// mismatches (LTR entries invalidated by active-domain growth alone).
  std::vector<uint64_t> invalidations_by_relation;

  // Stream-registry counters (src/stream/), contributed by an attached
  // RelevanceStreamRegistry; all zero when none is attached.
  uint64_t streams_registered = 0;  ///< standing k-ary/Boolean streams
  uint64_t stream_bindings = 0;     ///< head bindings tracked (incl. fresh)
  uint64_t stream_new_bindings = 0; ///< bindings born from Adom growth
  uint64_t stream_rechecks = 0;     ///< per-binding re-evaluations run
  uint64_t stream_skips = 0;        ///< bindings skipped (stamp still valid)
  uint64_t stream_sticky_skips = 0; ///< bindings skipped as settled (certain
                                    ///< or unsatisfiable — monotone-final)
  uint64_t stream_events = 0;       ///< delta notifications emitted
  /// Bindings a value-gated hit wave restamped without re-evaluation: the
  /// landed facts could not unify with any substituted atom of their Q_b,
  /// so the verdicts were provably unchanged (see stream/registry.h).
  uint64_t stream_value_gate_skips = 0;
  /// Bindings rechecked on an Adom-growing apply beyond what the delta
  /// gate selected: the residual irrelevant-uncertain bindings (a freshly
  /// minted access may become relevant to them through hypothetical
  /// response facts, which no current-config index bounds), plus every
  /// stale binding of streams whose Adom waves are not delta-gated (LTR
  /// streams, >= 64 disjuncts, force_full_recheck).
  uint64_t stream_value_gate_fallback_adom = 0;
  /// Bindings rechecked because the stream tracks LTR under dependent
  /// methods (an access over any method relation can matter through a
  /// production chain — unification against query atoms does not bound
  /// that, so the gate is disabled for such streams).
  uint64_t stream_value_gate_fallback_dependent_ltr = 0;
  /// Bindings rechecked in a gated wave because a landed fact matched an
  /// atom with no binding-derived constraint and the semijoin narrowing
  /// could not bound its reach: no slot-anchored atom is join-connected to
  /// the hit atom (Boolean disjuncts, disconnected components), the chase
  /// overflowed its caps, or the binding is irrelevant-uncertain (a free
  /// hit can flip its IR verdict through hypothetical response facts).
  uint64_t stream_value_gate_fallback_unconstrained = 0;
  /// Gated rechecks the narrowing *selected* rather than fell back to:
  /// bindings a landed fact reached through the secondary non-head value
  /// index (semijoin chase over join variables to slot-anchored atoms),
  /// and newborn bindings minted by a delta-gated Adom growth wave.
  uint64_t stream_value_gate_semijoin = 0;
  uint64_t stream_value_gate_newborn = 0;
  /// Retained events evicted by StreamOptions::retain_cap — each one is a
  /// gap some lagging subscriber will have to re-snapshot across.
  uint64_t stream_retained_evicted = 0;
  /// Streams degraded to conservative full-recheck mode (gate indexes
  /// dropped) by RelevanceStreamRegistry::Degrade.
  uint64_t stream_degraded = 0;
  /// Stream rechecks attributed to the applied relation that triggered
  /// them, indexed by RelationId; the trailing slot counts rechecks
  /// triggered by registration / active-domain growth.
  std::vector<uint64_t> stream_rechecks_by_relation;

  // Persistence counters (src/persist/), contributed by an attached
  // DurableSession; all zero when the engine runs in-memory only.
  uint64_t wal_records = 0;        ///< records appended to the WAL
  uint64_t wal_bytes = 0;          ///< framed bytes appended
  uint64_t wal_fsyncs = 0;         ///< physical fsyncs issued
  uint64_t wal_commit_batches = 0; ///< group-commit leader rounds
  uint64_t wal_commit_waiters = 0; ///< commits absorbed into another's fsync
  uint64_t snapshots_written = 0;  ///< snapshot files sealed
  uint64_t snapshot_bytes = 0;     ///< bytes in the last sealed snapshot
  uint64_t replay_records = 0;     ///< WAL records replayed at recovery
  uint64_t replay_facts = 0;       ///< facts re-absorbed from replay
  uint64_t wal_truncated_tails = 0;  ///< torn/corrupt tails truncated

  /// ApplyResponse calls rejected at admission because
  /// EngineOptions::max_inflight_applies outstanding applies were already
  /// in flight (the caller should back off and retry).
  uint64_t apply_admission_rejections = 0;

  // Session-server counters (src/server/), contributed by an attached
  // SessionServer; all zero when the engine is driven in-process.
  uint64_t server_sessions_opened = 0;   ///< fresh sessions admitted
  uint64_t server_sessions_resumed = 0;  ///< Hello calls that resumed a token
  uint64_t server_sessions_retired = 0;  ///< sessions closed by Goodbye
  uint64_t server_sessions_reaped = 0;   ///< idle sessions reaped
  uint64_t server_sessions_shed = 0;     ///< Hellos rejected (admission cap)
  uint64_t server_sessions_active = 0;   ///< live sessions (gauge)
  uint64_t server_requests = 0;          ///< frames dispatched (all types)
  uint64_t server_requests_hello = 0;
  uint64_t server_requests_register_query = 0;
  uint64_t server_requests_register_stream = 0;
  uint64_t server_requests_apply = 0;
  uint64_t server_requests_poll = 0;
  uint64_t server_requests_acknowledge = 0;
  uint64_t server_requests_snapshot = 0;
  uint64_t server_requests_metrics = 0;
  uint64_t server_requests_ping = 0;     ///< heartbeats received
  uint64_t server_errors = 0;        ///< kError responses served (all codes)
  uint64_t server_bad_frames = 0;    ///< connections closed on framing damage
  uint64_t server_applies_shed = 0;  ///< applies bounced by engine admission
  uint64_t server_streams_degraded = 0;  ///< hot streams forced conservative
  uint64_t server_cursor_evictions = 0;  ///< polls answered "cursor evicted"
  uint64_t server_backlog_high_water = 0;  ///< max retained backlog seen
  uint64_t server_dedup_hits = 0;   ///< retried requests answered from cache
  uint64_t server_dedup_stale = 0;  ///< retries older than the dedup window
  uint64_t server_deadline_rejections = 0;  ///< frames expired before dispatch
  uint64_t server_drain_sheds = 0;  ///< requests bounced while draining
  uint64_t server_sessions_recovered = 0;  ///< tokens re-seeded from disk

  uint64_t checks() const { return ir_checks + ltr_checks; }
  double cache_hit_rate() const {
    uint64_t probes = cache_hits + cache_misses;
    return probes == 0 ? 0.0 : static_cast<double>(cache_hits) / probes;
  }
  /// Mean decider latency per *uncached* check of each kind; cached checks
  /// cost no decider time by construction.
  double mean_ir_decider_ns() const {
    return uncached_ir_checks == 0
               ? 0.0
               : static_cast<double>(ir_time_ns) / uncached_ir_checks;
  }
  double mean_ltr_decider_ns() const {
    return uncached_ltr_checks == 0
               ? 0.0
               : static_cast<double>(ltr_time_ns) / uncached_ltr_checks;
  }

  std::string ToString() const;
};

/// \brief The engine's live counter block (relaxed atomics).
struct EngineCounters {
  std::atomic<uint64_t> ir_checks{0};
  std::atomic<uint64_t> ltr_checks{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  std::atomic<uint64_t> sticky_hits{0};
  std::atomic<uint64_t> cross_epoch_hits{0};
  std::atomic<uint64_t> stale_invalidations{0};
  std::atomic<uint64_t> wf_rejections{0};
  std::atomic<uint64_t> certainty_reuse{0};
  std::atomic<uint64_t> producible_reuse{0};
  std::atomic<uint64_t> producible_recomputes{0};
  std::atomic<uint64_t> epoch_advances{0};
  std::atomic<uint64_t> adom_advances{0};
  std::atomic<uint64_t> facts_applied{0};
  std::atomic<uint64_t> responses_applied{0};
  std::atomic<uint64_t> overlapped_applies{0};
  std::atomic<uint64_t> overlapped_checks{0};
  std::atomic<uint64_t> batch_calls{0};
  std::atomic<uint64_t> batch_items{0};
  std::atomic<uint64_t> uncached_ir_checks{0};
  std::atomic<uint64_t> uncached_ltr_checks{0};
  std::atomic<uint64_t> ir_time_ns{0};
  std::atomic<uint64_t> ltr_time_ns{0};
  std::atomic<uint64_t> apply_admission_rejections{0};

  void Bump(std::atomic<uint64_t>& c, uint64_t n = 1) {
    c.fetch_add(n, std::memory_order_relaxed);
  }

  EngineStats Snapshot() const {
    auto ld = [](const std::atomic<uint64_t>& c) {
      return c.load(std::memory_order_relaxed);
    };
    EngineStats s;
    s.ir_checks = ld(ir_checks);
    s.ltr_checks = ld(ltr_checks);
    s.cache_hits = ld(cache_hits);
    s.cache_misses = ld(cache_misses);
    s.sticky_hits = ld(sticky_hits);
    s.cross_epoch_hits = ld(cross_epoch_hits);
    s.stale_invalidations = ld(stale_invalidations);
    s.wf_rejections = ld(wf_rejections);
    s.certainty_reuse = ld(certainty_reuse);
    s.producible_reuse = ld(producible_reuse);
    s.producible_recomputes = ld(producible_recomputes);
    s.epoch_advances = ld(epoch_advances);
    s.adom_advances = ld(adom_advances);
    s.facts_applied = ld(facts_applied);
    s.responses_applied = ld(responses_applied);
    s.overlapped_applies = ld(overlapped_applies);
    s.overlapped_checks = ld(overlapped_checks);
    s.batch_calls = ld(batch_calls);
    s.batch_items = ld(batch_items);
    s.uncached_ir_checks = ld(uncached_ir_checks);
    s.uncached_ltr_checks = ld(uncached_ltr_checks);
    s.ir_time_ns = ld(ir_time_ns);
    s.ltr_time_ns = ld(ltr_time_ns);
    s.apply_admission_rejections = ld(apply_admission_rejections);
    return s;
  }
};

}  // namespace rar

#endif  // RAR_ENGINE_STATS_H_
