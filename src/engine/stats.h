// Counters and latency metrics for the RelevanceEngine runtime.
//
// The engine mutates a block of relaxed atomics on its hot paths (checks,
// cache probes, epoch advances) and materialises a plain `EngineStats`
// snapshot on demand. Relaxed ordering is deliberate: counters are
// monotone telemetry, not synchronisation, and a snapshot taken while
// workers run is allowed to be momentarily inconsistent between fields.
#ifndef RAR_ENGINE_STATS_H_
#define RAR_ENGINE_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace rar {

/// \brief A point-in-time snapshot of engine counters.
struct EngineStats {
  uint64_t ir_checks = 0;        ///< immediate-relevance decisions requested
  uint64_t ltr_checks = 0;       ///< long-term-relevance decisions requested
  uint64_t cache_hits = 0;       ///< verdicts served from the decision cache
  uint64_t cache_misses = 0;     ///< verdicts that ran a decider
  uint64_t sticky_hits = 0;      ///< hits on epoch-stable entries / certainty
  uint64_t certainty_reuse = 0;  ///< certainty fixpoint reused (same epoch)
  uint64_t producible_reuse = 0; ///< ProducibleDomains fixpoint reused
  uint64_t producible_recomputes = 0;  ///< ProducibleDomains recomputed
  uint64_t epoch_advances = 0;   ///< configuration-growing responses
  uint64_t facts_applied = 0;    ///< new facts absorbed via ApplyResponse
  uint64_t responses_applied = 0;///< ApplyResponse calls (incl. empty)
  uint64_t batch_calls = 0;      ///< CheckBatch invocations
  uint64_t batch_items = 0;      ///< accesses checked through CheckBatch
  uint64_t ir_time_ns = 0;       ///< wall time inside uncached IR deciders
  uint64_t ltr_time_ns = 0;      ///< wall time inside uncached LTR deciders
  uint64_t cache_entries = 0;    ///< live decision-cache entries
  uint64_t frontier_pending = 0; ///< candidate accesses not yet performed
  uint64_t frontier_performed = 0;  ///< accesses marked performed

  uint64_t checks() const { return ir_checks + ltr_checks; }
  double cache_hit_rate() const {
    uint64_t probes = cache_hits + cache_misses;
    return probes == 0 ? 0.0 : static_cast<double>(cache_hits) / probes;
  }
  /// Mean decider latency per *uncached* check of each kind; cached checks
  /// cost no decider time by construction.
  double mean_ir_decider_ns(uint64_t uncached_ir) const {
    return uncached_ir == 0 ? 0.0
                            : static_cast<double>(ir_time_ns) / uncached_ir;
  }
  double mean_ltr_decider_ns(uint64_t uncached_ltr) const {
    return uncached_ltr == 0 ? 0.0
                             : static_cast<double>(ltr_time_ns) / uncached_ltr;
  }

  std::string ToString() const;
};

/// \brief The engine's live counter block (relaxed atomics).
struct EngineCounters {
  std::atomic<uint64_t> ir_checks{0};
  std::atomic<uint64_t> ltr_checks{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  std::atomic<uint64_t> sticky_hits{0};
  std::atomic<uint64_t> certainty_reuse{0};
  std::atomic<uint64_t> producible_reuse{0};
  std::atomic<uint64_t> producible_recomputes{0};
  std::atomic<uint64_t> epoch_advances{0};
  std::atomic<uint64_t> facts_applied{0};
  std::atomic<uint64_t> responses_applied{0};
  std::atomic<uint64_t> batch_calls{0};
  std::atomic<uint64_t> batch_items{0};
  std::atomic<uint64_t> ir_time_ns{0};
  std::atomic<uint64_t> ltr_time_ns{0};

  void Bump(std::atomic<uint64_t>& c, uint64_t n = 1) {
    c.fetch_add(n, std::memory_order_relaxed);
  }

  EngineStats Snapshot() const {
    EngineStats s;
    s.ir_checks = ir_checks.load(std::memory_order_relaxed);
    s.ltr_checks = ltr_checks.load(std::memory_order_relaxed);
    s.cache_hits = cache_hits.load(std::memory_order_relaxed);
    s.cache_misses = cache_misses.load(std::memory_order_relaxed);
    s.sticky_hits = sticky_hits.load(std::memory_order_relaxed);
    s.certainty_reuse = certainty_reuse.load(std::memory_order_relaxed);
    s.producible_reuse = producible_reuse.load(std::memory_order_relaxed);
    s.producible_recomputes =
        producible_recomputes.load(std::memory_order_relaxed);
    s.epoch_advances = epoch_advances.load(std::memory_order_relaxed);
    s.facts_applied = facts_applied.load(std::memory_order_relaxed);
    s.responses_applied = responses_applied.load(std::memory_order_relaxed);
    s.batch_calls = batch_calls.load(std::memory_order_relaxed);
    s.batch_items = batch_items.load(std::memory_order_relaxed);
    s.ir_time_ns = ir_time_ns.load(std::memory_order_relaxed);
    s.ltr_time_ns = ltr_time_ns.load(std::memory_order_relaxed);
    return s;
  }
};

}  // namespace rar

#endif  // RAR_ENGINE_STATS_H_
