#include "engine/frontier.h"

#include <algorithm>
#include <utility>

namespace rar {

void AccessFrontier::Emit(AccessMethodId mid, std::vector<Value> binding) {
  AccessKey key{mid, binding};
  if (!enumerated_.insert(key).second) return;
  if (performed_.count(key) > 0) ++performed_count_;
  Access a;
  a.method = mid;
  a.binding = std::move(binding);
  candidates_.push_back(std::move(a));
}

void AccessFrontier::Sync(const Configuration& conf) {
  if (adom_seen_.size() < schema_.num_domains()) {
    adom_seen_.resize(schema_.num_domains(), 0);
  }

  for (AccessMethodId mid = 0; mid < acs_.size(); ++mid) {
    const AccessMethod& m = acs_.method(mid);
    const Relation& rel = schema_.relation(m.relation);
    const int k = m.num_inputs();

    if (k == 0) {
      // Free access: a single candidate, emitted once.
      Emit(mid, {});
      continue;
    }

    // Per-slot value lists (borrowed views; conf is stable during Sync)
    // and the old/new split per slot.
    std::vector<ValueSeq> slots(k);
    std::vector<size_t> old_count(k);
    bool feasible = true;
    for (int j = 0; j < k; ++j) {
      DomainId dom = rel.attributes[m.input_positions[j]].domain;
      slots[j] = conf.AdomOfDomain(dom);
      old_count[j] = adom_seen_[dom];
      if (slots[j].empty()) feasible = false;
    }
    if (!feasible) continue;

    // Emit every binding with at least one new coordinate, classified by
    // its first new coordinate j*: slots before j* range over old values,
    // slot j* over new values, slots after j* over all values. (With all
    // old counts at zero this degenerates to the full product, which
    // covers the first Sync.)
    std::vector<Value> binding(k);
    for (int star = 0; star < k; ++star) {
      if (old_count[star] >= slots[star].size()) continue;  // no new values
      std::vector<size_t> idx(k, 0);
      idx[star] = old_count[star];
      bool exhausted = false;
      for (int j = 0; j < star && !exhausted; ++j) {
        if (old_count[j] == 0) exhausted = true;  // empty old prefix
      }
      while (!exhausted) {
        for (int j = 0; j < k; ++j) binding[j] = slots[j][idx[j]];
        Emit(mid, binding);
        // Odometer increment with per-slot bounds.
        int j = k - 1;
        while (j >= 0) {
          size_t lo = (j == star) ? old_count[star] : 0;
          size_t hi = (j < star) ? old_count[j] : slots[j].size();
          if (++idx[j] < hi) break;
          idx[j] = lo;
          --j;
        }
        if (j < 0) exhausted = true;
      }
    }
  }

  // Advance the expanded prefix to the current active domain.
  for (DomainId d = 0; d < adom_seen_.size(); ++d) {
    adom_seen_[d] = conf.AdomOfDomain(d).size();
  }
}

void AccessFrontier::MarkPerformed(const Access& access) {
  AccessKey key = KeyOf(access);
  if (performed_.insert(key).second && enumerated_.count(key) > 0) {
    ++performed_count_;
  }
}

std::vector<Access> AccessFrontier::Pending() const {
  std::vector<Access> out;
  out.reserve(pending_size());
  for (const Access& a : candidates_) {
    if (performed_.count(KeyOf(a)) == 0) out.push_back(a);
  }
  return out;
}

std::vector<Access> AccessFrontier::Ranked(
    const std::function<double(const Access&)>& score) const {
  std::vector<Access> out = Pending();
  std::vector<std::pair<double, size_t>> order(out.size());
  for (size_t i = 0; i < out.size(); ++i) order[i] = {score(out[i]), i};
  std::stable_sort(order.begin(), order.end(),
                   [](const std::pair<double, size_t>& a,
                      const std::pair<double, size_t>& b) {
                     return a.first > b.first;
                   });
  std::vector<Access> ranked;
  ranked.reserve(out.size());
  for (const auto& [s, i] : order) {
    (void)s;
    ranked.push_back(std::move(out[i]));
  }
  return ranked;
}

}  // namespace rar
