// RelevanceEngine: a long-lived, cached, concurrent relevance runtime.
//
// The deciders in `relevance/` are one-shot: each call re-derives
// certainty, re-enumerates candidates, and re-runs fixpoints from scratch.
// The engine is the production shape the paper's runtime story implies — a
// resident service that owns a schema, an access-method set, and an
// *evolving* configuration, and answers streams of relevance queries
// online:
//
//  * incremental state — the active domain and the candidate-access
//    frontier grow as responses are applied (`ApplyResponse`); per-query
//    certainty is computed at most once per configuration epoch and
//    reused across checks, and the `ProducibleDomains` fixpoint is
//    memoized per epoch for callers (schedulers, diagnostics);
//  * decision cache — IR/LTR verdicts are memoized per (query, kind,
//    method, binding) with monotonicity-aware invalidation (see
//    decision_cache.h); verdicts always agree with the uncached deciders;
//  * batch + concurrent API — `CheckBatch` fans a span of accesses out
//    over a worker pool; engine state sits under a shared (reader/writer)
//    lock, with writes serialized through `ApplyResponse`;
//  * scheduling — `CandidateAccesses` ranks the frontier by cached
//    relevance and query criticality, so callers probe the most promising
//    accesses first;
//  * metrics — `stats()` exposes checks, cache hit rates, fixpoint reuse
//    and per-kind decider latencies.
#ifndef RAR_ENGINE_ENGINE_H_
#define RAR_ENGINE_ENGINE_H_

#include <memory>
#include <shared_mutex>
#include <unordered_set>
#include <vector>

#include "access/access_method.h"
#include "access/reachability.h"
#include "engine/decision_cache.h"
#include "engine/frontier.h"
#include "engine/stats.h"
#include "engine/worker_pool.h"
#include "query/query.h"
#include "relational/configuration.h"
#include "relevance/relevance.h"
#include "util/status.h"

namespace rar {

/// \brief Construction-time knobs for a RelevanceEngine.
struct EngineOptions {
  /// Worker threads for CheckBatch. 0 = one per hardware thread, clamped
  /// to [1, 8] (the deciders are CPU-bound; oversubscription only churns).
  int num_threads = 0;
  /// Disable to force every check through the deciders (used by the
  /// validation tests and the bench baseline).
  bool enable_cache = true;
  /// Options forwarded to the underlying relevance deciders.
  RelevanceOptions relevance;
};

/// \brief Outcome of one engine check.
struct CheckOutcome {
  bool relevant = false;
  bool from_cache = false;
  /// Non-OK when the LTR decider is outside its paper-backed scope (the
  /// caller decides whether to treat that as relevant; see MediatorOptions
  /// ::conservative_on_unknown).
  Status status;

  bool ok() const { return status.ok(); }
};

/// \brief Long-lived relevance-checking runtime over an evolving
/// configuration.
///
/// Thread model: `CheckImmediate` / `CheckLongTerm` / `CheckBatch` /
/// `IsCertain` take the state lock shared and may run concurrently;
/// `ApplyResponse` takes it exclusive. `RegisterQuery` must not race with
/// checks on the id it returns (register first, then serve).
class RelevanceEngine {
 public:
  RelevanceEngine(const Schema& schema, const AccessMethodSet& acs,
                  Configuration initial, EngineOptions options = {});
  ~RelevanceEngine() = default;

  RelevanceEngine(const RelevanceEngine&) = delete;
  RelevanceEngine& operator=(const RelevanceEngine&) = delete;

  /// Registers a Boolean query and returns its dense id. The query is
  /// validated against the engine's schema.
  Result<QueryId> RegisterQuery(const UnionQuery& query);

  size_t num_queries() const { return queries_.size(); }
  const UnionQuery& query(QueryId id) const { return queries_[id]->query; }

  /// The current configuration epoch: advances exactly when the
  /// configuration grows.
  uint64_t epoch() const;

  /// Unsynchronised view of the engine's configuration. Safe while no
  /// ApplyResponse runs concurrently; concurrent readers should use
  /// SnapshotConfig.
  const Configuration& config() const { return conf_; }

  /// Copy of the configuration taken under the state lock.
  Configuration SnapshotConfig() const;

  /// Applies a response to a well-formed access: absorbs the facts, marks
  /// the access performed, advances the epoch when anything was new, and
  /// extends the frontier. Returns the number of new facts.
  Result<int> ApplyResponse(const Access& access,
                            const std::vector<Fact>& response);

  /// True when the query is certain at the current configuration. Computed
  /// at most once per epoch per query (monotone: once true, cached
  /// forever).
  bool IsCertain(QueryId id);

  /// Immediate relevance of `access` for the registered query.
  CheckOutcome CheckImmediate(QueryId id, const Access& access);

  /// Long-term relevance of `access` for the registered query.
  CheckOutcome CheckLongTerm(QueryId id, const Access& access);

  /// Checks a batch of accesses, fanning out over the worker pool. Results
  /// align with `accesses` by index.
  std::vector<CheckOutcome> CheckBatch(QueryId id, CheckKind kind,
                                       const std::vector<Access>& accesses);

  /// Pending candidate accesses ranked for the query: cached-relevant
  /// first, then unknown (criticality-boosted when the accessed relation
  /// occurs in the query), cached-irrelevant last. The frontier is kept in
  /// sync by ApplyResponse; this is a pure read.
  std::vector<Access> CandidateAccesses(QueryId id);

  /// Frontier candidates in plain discovery order (the crawl baseline).
  std::vector<Access> PendingAccesses();

  /// True when (method, binding) was already applied through the engine.
  bool WasPerformed(const Access& access) const {
    return frontier_.WasPerformed(access);
  }

  /// The ProducibleDomains fixpoint at the current configuration, computed
  /// at most once per epoch. A hook for external schedulers and
  /// diagnostics; the relevance deciders derive their own reachability
  /// internally and do not consult this memo.
  std::unordered_set<DomainId> producible_domains();

  /// Counter snapshot (safe to call while workers run).
  EngineStats stats() const;

  void ClearCache() { cache_.Clear(); }

 private:
  struct QueryState {
    UnionQuery query;
    bool certain = false;          ///< monotone once true
    uint64_t checked_epoch = ~0ULL;///< epoch of the last certainty check
    std::unordered_set<RelationId> relations;  ///< relations in the query
  };

  /// Decides one check under an already-held shared state lock.
  CheckOutcome CheckLocked(QueryId id, CheckKind kind, const Access& access);

  /// Certainty with per-epoch memoization; takes certainty_mu_.
  bool CertainLocked(QueryId id);

  /// Ranking score for the frontier scheduler (cache probes only).
  double ScoreAccess(QueryId id, const Access& access, uint64_t ep) const;

  const Schema& schema_;
  const AccessMethodSet& acs_;
  const EngineOptions options_;
  RelevanceAnalyzer analyzer_;

  /// Guards conf_, epoch_, frontier_, producible_*; shared for checks,
  /// exclusive for ApplyResponse / frontier syncs.
  mutable std::shared_mutex state_mu_;
  Configuration conf_;
  uint64_t epoch_ = 0;
  AccessFrontier frontier_;
  bool producible_valid_ = false;
  uint64_t producible_epoch_ = 0;
  std::unordered_set<DomainId> producible_;

  /// Guards certainty fields of QueryState (checks hold state_mu_ shared,
  /// so certainty updates need their own serialization).
  std::mutex certainty_mu_;
  std::vector<std::unique_ptr<QueryState>> queries_;

  DecisionCache cache_;
  WorkerPool pool_;
  mutable EngineCounters counters_;
};

}  // namespace rar

#endif  // RAR_ENGINE_ENGINE_H_
