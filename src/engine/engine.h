// RelevanceEngine: a long-lived, cached, concurrent relevance runtime.
//
// The deciders in `relevance/` are one-shot: each call re-derives
// certainty, re-enumerates candidates, and re-runs fixpoints from scratch.
// The engine is the production shape the paper's runtime story implies — a
// resident service that owns a schema, an access-method set, and an
// *evolving* configuration, and answers streams of relevance queries
// online:
//
//  * per-relation versioned state — the configuration carries one monotone
//    version per relation plus an active-domain version (see
//    relational/version.h); every piece of derived state records the
//    version sub-vector of the *relation footprint* it actually read
//    (query relations + accessed relation, see query/footprint.h), so
//    growth of an unrelated relation invalidates nothing;
//  * decision cache — IR/LTR verdicts are memoized per (query, kind,
//    method, binding) with footprint-stamped validity and an LRU size cap
//    (see decision_cache.h); verdicts always agree with the uncached
//    deciders;
//  * sharded locking — state sits under per-relation striped reader/writer
//    locks: `ApplyResponse` for relation R excludes only work whose
//    footprint touches R, so applies overlap ("pipeline parallelism") with
//    checks over disjoint footprints (IR *and* LTR: the deciders read
//    zero-copy overlay views, so nothing needs the whole configuration)
//    and with each other;
//  * batch + concurrent API — `CheckBatch` fans a span of accesses out
//    over a worker pool;
//  * scheduling — `CandidateAccesses` ranks the frontier by cached
//    relevance and query criticality, so callers probe the most promising
//    accesses first;
//  * metrics — `stats()` exposes checks, cache hit rates, fixpoint reuse,
//    per-relation invalidation attribution and apply/check overlap.
#ifndef RAR_ENGINE_ENGINE_H_
#define RAR_ENGINE_ENGINE_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <unordered_set>
#include <vector>

#include "access/access_method.h"
#include "access/reachability.h"
#include "engine/decision_cache.h"
#include "engine/frontier.h"
#include "engine/stats.h"
#include "engine/worker_pool.h"
#include "obs/obs.h"
#include "query/footprint.h"
#include "query/query.h"
#include "relational/configuration.h"
#include "relational/version.h"
#include "relevance/relevance.h"
#include "util/status.h"

namespace rar {

class OverlayConfiguration;

/// \brief Construction-time knobs for a RelevanceEngine.
struct EngineOptions {
  /// Worker threads for CheckBatch. 0 = one per hardware thread, clamped
  /// to [1, 8] (the deciders are CPU-bound; oversubscription only churns).
  int num_threads = 0;
  /// Disable to force every check through the deciders (used by the
  /// validation tests and the bench baseline).
  bool enable_cache = true;
  /// Decision-cache entry cap; the LRU tail is evicted beyond it.
  size_t cache_capacity = DecisionCache::kDefaultCapacity;
  /// When false, verdicts are stamped with the derived global epoch
  /// instead of their footprint sub-vector — the pre-sharding behaviour,
  /// kept as a baseline for benchmarks and validation.
  bool footprint_invalidation = true;
  /// Lock stripes for the per-relation state shards. 0 = one stripe per
  /// relation, capped at 64; relations hash onto stripes beyond the cap.
  int lock_stripes = 0;
  /// Admission bound on concurrently outstanding ApplyResponse calls
  /// (entry through listener completion); excess applies are rejected
  /// with ResourceExhausted instead of queueing on the stripe locks.
  /// 0 = unbounded. The serving layer maps the rejection to a typed
  /// retry-after error.
  size_t max_inflight_applies = 0;
  /// Options forwarded to the underlying relevance deciders.
  RelevanceOptions relevance;
  /// Observability bundle options (trace capacity / sampling).
  ObsOptions obs;
};

/// \brief One absorbed response, as reported to apply listeners.
///
/// Beyond the access and the coarse growth flags, the event carries the
/// *landed delta*: exactly the facts the response added and the values it
/// introduced to the active domain, collected during the apply itself (no
/// extra pass over the configuration; empty when no listener is attached).
/// Listeners use the delta to narrow derived-state maintenance to what a
/// response can actually touch — the stream registry's value-gated hit
/// waves intersect `new_facts` against a per-binding constant index.
struct ApplyEvent {
  Access access;
  /// The accessed relation (the only relation whose facts can have grown).
  RelationId relation = kInvalidId;
  /// New facts absorbed (0 when the response was redundant — the frontier
  /// still changed: the access is now marked performed).
  int facts_added = 0;
  /// True when the response introduced values new to the active domain.
  bool adom_grew = false;
  /// The facts actually absorbed (response facts already present are not
  /// repeated here); `new_facts.size() == facts_added` when collected.
  std::vector<Fact> new_facts;
  /// The (value, domain) entries new to the active domain (empty when
  /// `!adom_grew`).
  std::vector<TypedValue> new_adom;
  /// The domains that gained at least one active-domain entry (sorted,
  /// unique; empty when `!adom_grew`). Filled whether or not the delta was
  /// collected — listeners use it to skip streams whose adom-dependence
  /// domains are disjoint from the growth.
  std::vector<DomainId> grown_domains;
  /// Per-domain active-domain versions right after this apply landed,
  /// indexed densely by DomainId (empty when `!adom_grew` — nothing
  /// moved). With the per-domain entry counts of `new_adom` this brackets
  /// the growth per domain, the per-domain analogue of
  /// `relation_version_after` / `facts_added`.
  std::vector<uint64_t> adom_versions_after;
  /// The touched relation's version right after this apply landed. With
  /// `facts_added` this brackets the delta: the pre-apply version is
  /// `relation_version_after - facts_added`, which is how listeners tell
  /// "stale by exactly this event" from "stale by more".
  uint64_t relation_version_after = 0;
  /// The active-domain version right after this apply landed.
  uint64_t adom_version_after = 0;
  /// WAL sequence the attached PersistHook assigned (0 when no hook).
  uint64_t wal_sequence = 0;
};

/// \brief Hook for subsystems that maintain state derived from the
/// engine's configuration (the stream registry, src/stream/). `OnApply`
/// runs on the applying thread *after* every engine lock is released, so
/// listeners are free to call back into the engine (checks, certainty,
/// query registration); it must be internally synchronised against
/// concurrent applies. Detach (RemoveApplyListener) before destroying a
/// listener, and only while no apply is in flight.
class ApplyListener {
 public:
  virtual ~ApplyListener() = default;

  /// Called once per successful ApplyResponse.
  virtual void OnApply(const ApplyEvent& event) = 0;

  /// Merges the listener's counters into an engine stats snapshot (the
  /// stream fields of EngineStats stay zero without a registry attached).
  virtual void ContributeStats(EngineStats* stats) const { (void)stats; }
};

/// \brief Write-ahead-log hook (src/persist/). Unlike ApplyListener, the
/// logging half runs *inside* the apply's critical section: `LogApply` is
/// called at the end of ApplyLocked while the relation stripe (and the
/// Adom lock) are still held, so the sequence it assigns is consistent
/// with every serialization the engine's locks admit — same-relation
/// applies serialize on the stripe, Adom-growing applies on the Adom
/// lock, and anything else commutes. It must be fast and must not call
/// back into the engine. `WaitDurable` runs after every lock is released
/// and *before* listeners are notified, so no subscriber ever observes an
/// apply that could vanish in a crash.
class PersistHook {
 public:
  virtual ~PersistHook() = default;

  /// Records the apply (including redundant ones — they still mark the
  /// access performed) and returns its WAL sequence number.
  virtual uint64_t LogApply(const Access& access,
                            const std::vector<Fact>& response) = 0;

  /// Blocks until the record is durable under the configured policy.
  virtual Status WaitDurable(uint64_t sequence) = 0;
};

/// \brief Outcome of one engine check.
struct CheckOutcome {
  bool relevant = false;
  bool from_cache = false;
  /// Non-OK when the LTR decider is outside its paper-backed scope (the
  /// caller decides whether to treat that as relevant; see MediatorOptions
  /// ::conservative_on_unknown).
  Status status;

  bool ok() const { return status.ok(); }
};

/// \brief Long-lived relevance-checking runtime over an evolving
/// configuration.
///
/// Thread model (lock order: state_mu_ > adom_mu_ > stripes ascending >
/// frontier_mu_ > leaf mutexes):
///  * Checks take `state_mu_` shared, `adom_mu_` shared, and the stripe
///    locks of their footprint shared. LTR checks included: the deciders
///    read through ConfigView overlays (relational/overlay.h) instead of
///    copying the configuration, so they pin only the relations they read
///    (plus, under dependent methods, relations with methods — the
///    witness chase probes Contains() on those).
///  * `ApplyResponse` for relation R takes `state_mu_` shared, `adom_mu_`
///    shared — exclusive only when the response introduces values new to
///    the active domain — and stripe(R) exclusive. Applies to different
///    relations run concurrently with each other and with checks whose
///    footprint avoids R.
///  * `RegisterQuery` / `SnapshotConfig` take `state_mu_` exclusive.
class RelevanceEngine {
 public:
  RelevanceEngine(const Schema& schema, const AccessMethodSet& acs,
                  Configuration initial, EngineOptions options = {});
  ~RelevanceEngine() = default;

  RelevanceEngine(const RelevanceEngine&) = delete;
  RelevanceEngine& operator=(const RelevanceEngine&) = delete;

  /// Registers a Boolean query and returns its dense id. The query is
  /// validated against the engine's schema. Constants the query mentions
  /// are recorded as *seeds*: checks evaluate over a zero-copy overlay
  /// that carries any seed still missing from the active domain, so
  /// Prop 2.2 binding queries over fresh head constants get the same
  /// seeded-view semantics as the one-shot k-ary wrappers.
  Result<QueryId> RegisterQuery(const UnionQuery& query);

  size_t num_queries() const { return num_queries_.load(); }

  /// The registered query. Takes the state lock briefly: a concurrent
  /// RegisterQuery may reallocate the id vector (the QueryState itself is
  /// heap-stable, so the returned reference outlives the lock).
  const UnionQuery& query(QueryId id) const {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    return queries_[id]->query;
  }

  /// The derived global epoch: advances exactly when the configuration
  /// grows. Kept for callers that want a single coarse version number;
  /// cached state is keyed on the per-relation versions instead.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// The configuration's per-relation version (fact count) as mirrored by
  /// the engine; safe to read concurrently with applies.
  uint64_t relation_version(RelationId rel) const {
    return rel < num_relations_
               ? rel_versions_[rel].load(std::memory_order_acquire)
               : 0;
  }

  /// The active-domain version; safe to read concurrently with applies.
  uint64_t adom_version() const {
    return adom_version_.load(std::memory_order_acquire);
  }

  /// One domain's active-domain version (its first-seen entry count); safe
  /// to read concurrently with applies. The per-domain counters sum to
  /// `adom_version()` — derived state keyed on a subset of domains stamps
  /// these instead of the global counter, so growth elsewhere does not
  /// invalidate it.
  uint64_t adom_domain_version(DomainId domain) const {
    return domain < num_domains_
               ? adom_domain_versions_[domain].load(std::memory_order_acquire)
               : 0;
  }

  /// Snapshot of the full version vector (mirror of
  /// `Configuration::Versions`, readable without any lock).
  VersionVector versions() const;

  /// Unsynchronised view of the engine's configuration.
  /// \deprecated Racy once applies run concurrently with anything — use
  /// `SnapshotConfig()` for a coherent copy, or `ValidateAccess()` /
  /// `versions()` for the common probes that used to motivate this
  /// accessor. Kept only for quiescent callers.
  [[deprecated(
      "unsynchronised; use SnapshotConfig() (copy) or ValidateAccess() / "
      "versions() for probes")]]
  const Configuration& config() const {
    return conf_;
  }

  /// Copy of the configuration taken under the state lock.
  Configuration SnapshotConfig() const;

  /// OK iff `access` is well-formed at the current configuration (the
  /// synchronised replacement for `CheckWellFormed(engine.config(), ...)`).
  Status ValidateAccess(const Access& access) const;

  /// Applies a response to a well-formed access: absorbs the facts, marks
  /// the access performed, advances the touched relation's version (and
  /// the Adom version when values are new), and extends the frontier.
  /// Returns the number of new facts. Concurrency-safe; see the class
  /// comment for what it overlaps with.
  Result<int> ApplyResponse(const Access& access,
                            const std::vector<Fact>& response);

  /// True when the query is certain at the current configuration. Computed
  /// at most once per footprint stamp per query (monotone: once true,
  /// cached forever).
  bool IsCertain(QueryId id);

  /// Immediate relevance of `access` for the registered query.
  CheckOutcome CheckImmediate(QueryId id, const Access& access);

  /// Long-term relevance of `access` for the registered query.
  CheckOutcome CheckLongTerm(QueryId id, const Access& access);

  /// Checks a batch of accesses, fanning out over the worker pool. Results
  /// align with `accesses` by index.
  std::vector<CheckOutcome> CheckBatch(QueryId id, CheckKind kind,
                                       const std::vector<Access>& accesses);

  /// One item of a heterogeneous check batch (CheckMany).
  struct CheckRequest {
    QueryId query = 0;
    CheckKind kind = CheckKind::kImmediate;
    Access access;
  };

  /// Decides a heterogeneous batch — (query, kind, access) per item —
  /// under a *single* acquisition of the state/Adom locks and the union
  /// of every item's check stripes. The fan-in path for stream recheck
  /// waves: thousands of per-binding-query checks whose footprints share
  /// a handful of stripes pay the locking once instead of per item.
  /// Results align with `requests` by index. With `parallel`, items fan
  /// out over the worker pool (never call from inside a pool task).
  std::vector<CheckOutcome> CheckMany(const std::vector<CheckRequest>& requests,
                                      bool parallel = false);

  /// Pending candidate accesses ranked for the query: cached-relevant
  /// first, then unknown (criticality-boosted when the accessed relation
  /// occurs in the query), cached-irrelevant last. The frontier is kept in
  /// sync by ApplyResponse; this is a pure read.
  std::vector<Access> CandidateAccesses(QueryId id);

  /// Frontier candidates in plain discovery order (the crawl baseline).
  std::vector<Access> PendingAccesses();

  /// True when (method, binding) was already applied through the engine.
  bool WasPerformed(const Access& access) const;

  /// Every access ever marked performed, in unspecified order. Snapshot
  /// input for the persistence layer.
  std::vector<Access> PerformedAccesses() const;

  /// Re-marks accesses as performed (recovery: the snapshot's performed
  /// set is not derivable from the configuration — a redundant response
  /// leaves no fact behind). Idempotent.
  void RestorePerformed(const std::vector<Access>& accesses);

  /// The ProducibleDomains fixpoint at the current configuration, computed
  /// at most once per Adom version (the fixpoint reads only the typed
  /// active domain and the method set). A hook for external schedulers and
  /// diagnostics; the relevance deciders derive their own reachability
  /// internally and do not consult this memo.
  std::unordered_set<DomainId> producible_domains();

  /// Counter snapshot (safe to call while workers run). Attached apply
  /// listeners contribute their counters (the stream fields).
  EngineStats stats() const;

  void ClearCache() { cache_.Clear(); }

  /// Attaches a listener notified after every successful ApplyResponse.
  void AddApplyListener(ApplyListener* listener);

  /// Detaches a listener. Call only while no apply is in flight (the
  /// notification path reads the listener list without the state lock).
  void RemoveApplyListener(ApplyListener* listener);

  /// Attaches (or with nullptr detaches) the WAL hook. Call only while no
  /// apply is in flight — recovery installs it after replay completes.
  void SetPersistHook(PersistHook* hook) { persist_hook_ = hook; }

  /// The engine's schema / access-method set (shared with attached
  /// subsystems such as the stream registry).
  const Schema& schema() const { return schema_; }
  const AccessMethodSet& access_methods() const { return acs_; }

  /// Active-domain values of `domain` from index `from` on, copied under
  /// the engine's read locks (active-domain order is append-only, so a
  /// caller holding a previous size sees exactly the new values).
  std::vector<Value> AdomValuesOf(DomainId domain, size_t from = 0) const;

  /// All current facts of one relation, copied under the engine's read
  /// locks (state shared + the relation's stripe shared). Fact order is
  /// append-only insertion order. Seeds the stream registry's secondary
  /// fact index, which is then maintained delta-wise from ApplyEvent
  /// deltas instead of re-copying.
  std::vector<Fact> RelationFactsSnapshot(RelationId rel) const;

  /// The engine's worker pool, shared with CheckBatch. Attached listeners
  /// fan per-binding rechecks out over it; never call its ParallelFor
  /// from inside one of its own tasks.
  WorkerPool& worker_pool() { return pool_; }

  /// The engine's observability bundle (latency histograms + trace ring).
  /// Attached subsystems (stream registry, mediator) record into it too,
  /// so one snapshot covers the whole runtime.
  EngineObservability& obs() const { return obs_; }

 private:
  struct QueryState {
    UnionQuery query;
    /// Query relations (no accessed relation, not adom-sensitive); checks
    /// extend it per access.
    RelationFootprint footprint;
    /// Constants the query mentions (typed by occurrence); any of them
    /// missing from the active domain is seeded onto the check-time view.
    std::vector<TypedValue> seeds;
    bool certain = false;           ///< monotone once true
    VersionStamp checked_stamp;     ///< stamp of the last certainty check
    bool checked_valid = false;     ///< checked_stamp holds a real check
  };

  /// RAII gauge for the overlap counters.
  class ActivityScope;

  /// A borrowed span of accesses (avoids materialising a vector for the
  /// single-access check paths).
  struct AccessSpan {
    const Access* data;
    size_t size;
  };

  /// Stripe index of one relation.
  size_t StripeOf(RelationId rel) const { return rel % stripe_count_; }

  /// Sorted unique stripe indices covering a footprint's relations.
  std::vector<size_t> StripesFor(const RelationFootprint& fp) const;

  /// The stripes a check must hold shared: the footprint's relations plus,
  /// for LTR under dependent methods, every relation with a method (the
  /// witness chase probes Contains() on them). Never all stripes: the
  /// deciders read through overlay views and copy nothing.
  std::vector<size_t> StripesForCheck(QueryId id, CheckKind kind,
                                      AccessSpan accesses) const;

  /// Acquires the given stripes shared, in ascending order.
  std::vector<std::shared_lock<std::shared_mutex>> LockStripesShared(
      const std::vector<size_t>& stripes) const;

  /// Builds the validity stamp for a check over `fp` from the engine's
  /// version mirror (atomics; callable with or without stripe locks —
  /// under the footprint's stripes the result is stable).
  VersionStamp StampFor(const RelationFootprint& fp) const;

  /// Maps a stale stamp component back to a relation id (or to the Adom
  /// slot, reported as `num_relations_`).
  size_t StaleComponentTarget(const RelationFootprint& fp,
                              int component) const;

  /// Absorbs a validated response under the relation's stripe lock; the
  /// caller holds state_mu_ shared and adom_mu_ (exclusive when the
  /// response grows the active domain, shared otherwise). Fills `event`'s
  /// growth flags and version brackets; with `collect_delta` it also
  /// records the landed facts and new active-domain entries (skipped when
  /// no listener is attached — nobody would read them).
  Result<int> ApplyLocked(const Access& access,
                          const std::vector<Fact>& response, ApplyEvent* event,
                          bool collect_delta);

  /// Invokes every attached listener (engine locks must not be held).
  void NotifyApplied(const ApplyEvent& event);

  /// The view a check of `qs` evaluates over: `conf_` itself, or — when
  /// the query carries seed constants missing from the active domain —
  /// `*overlay` rebased onto conf_ with the seeds registered. Caller
  /// holds adom_mu_ (shared) and the check's stripes.
  const ConfigView& SeededViewLocked(const QueryState& qs,
                                     OverlayConfiguration* overlay) const;

  /// Decides one check under already-held state/adom/stripe locks.
  CheckOutcome CheckLocked(QueryId id, CheckKind kind, const Access& access);

  /// Certainty with per-stamp memoization; takes certainty_mu_. Caller
  /// holds the query-footprint stripes (at least shared).
  bool CertainLocked(QueryId id);

  /// Ranking score for the frontier scheduler (cache probes only).
  double ScoreAccess(QueryId id, const Access& access) const;

  const Schema& schema_;
  const AccessMethodSet& acs_;
  const EngineOptions options_;
  RelevanceAnalyzer analyzer_;
  const size_t num_relations_;
  const size_t num_domains_;
  const size_t stripe_count_;

  /// Structure lock: exclusive for whole-configuration operations
  /// (RegisterQuery, SnapshotConfig, construction); shared by checks *and*
  /// applies, which coordinate through adom_mu_ and the stripes below.
  mutable std::shared_mutex state_mu_;
  /// Active-domain lock: shared while reading Adom (every check; applies
  /// whose facts carry only known values), exclusive when growing it.
  mutable std::shared_mutex adom_mu_;
  /// Per-relation stripes guarding conf_'s relation stores.
  mutable std::vector<std::shared_mutex> stripe_mu_;
  /// Guards the frontier (candidates, performed set, adom_seen cursor).
  mutable std::mutex frontier_mu_;
  /// Guards certainty fields of QueryState.
  std::mutex certainty_mu_;
  /// Guards the producible_domains memo.
  std::mutex producible_mu_;
  /// Guards the apply-listener list (taken only to copy it).
  mutable std::mutex listeners_mu_;

  Configuration conf_;
  AccessFrontier frontier_;

  /// Lock-free version mirror of conf_ (written under the respective
  /// exclusive locks, readable anywhere — e.g. frontier scoring).
  std::unique_ptr<std::atomic<uint64_t>[]> rel_versions_;
  std::atomic<uint64_t> adom_version_{0};
  /// Per-domain slices of adom_version_, indexed by DomainId (written under
  /// adom_mu_ exclusive — only growth moves them).
  std::unique_ptr<std::atomic<uint64_t>[]> adom_domain_versions_;
  std::atomic<uint64_t> epoch_{0};

  bool producible_valid_ = false;
  uint64_t producible_adom_version_ = 0;
  std::unordered_set<DomainId> producible_;

  std::vector<std::unique_ptr<QueryState>> queries_;
  std::atomic<size_t> num_queries_{0};
  std::vector<ApplyListener*> listeners_;
  /// Lock-free mirror of listeners_.size(): the apply path skips delta
  /// collection when nobody listens.
  std::atomic<size_t> num_listeners_{0};
  /// WAL hook, set while quiescent (see SetPersistHook); read per apply.
  PersistHook* persist_hook_ = nullptr;

  mutable DecisionCache cache_;
  /// Declared before pool_: the pool's queue-wait histogram lives here.
  mutable EngineObservability obs_;
  WorkerPool pool_;
  mutable EngineCounters counters_;
  /// Stale-drop attribution, indexed by RelationId; slot num_relations_
  /// counts Adom-version invalidations.
  std::unique_ptr<std::atomic<uint64_t>[]> invalidations_by_relation_;
  /// Overlap gauges.
  mutable std::atomic<int> active_checks_{0};
  mutable std::atomic<int> active_applies_{0};
  /// Admission gauge: ApplyResponse calls between entry and listener
  /// completion (wider than active_applies_, which tracks only the locked
  /// section).
  std::atomic<int> inflight_applies_{0};
};

}  // namespace rar

#endif  // RAR_ENGINE_ENGINE_H_
