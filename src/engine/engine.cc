#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "query/eval.h"
#include "relational/overlay.h"

namespace rar {

namespace {

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  if (hw > 8) hw = 8;
  return static_cast<int>(hw);
}

size_t ResolveStripes(int requested, size_t num_relations) {
  size_t stripes = requested > 0 ? static_cast<size_t>(requested)
                                 : std::min<size_t>(num_relations, 64);
  return std::max<size_t>(stripes, 1);
}

}  // namespace

std::string EngineStats::ToString() const {
  std::ostringstream os;
  os << "checks=" << checks() << " (ir=" << ir_checks << ", ltr=" << ltr_checks
     << ") cache_hits=" << cache_hits << " misses=" << cache_misses
     << " hit_rate=" << cache_hit_rate() << " sticky=" << sticky_hits
     << " cross_epoch=" << cross_epoch_hits
     << " stale=" << stale_invalidations << " evictions=" << cache_evictions
     << " certainty_reuse=" << certainty_reuse
     << " producible_reuse=" << producible_reuse << "/"
     << (producible_reuse + producible_recomputes)
     << " epochs=" << epoch_advances << " adom_epochs=" << adom_advances
     << " facts=" << facts_applied << " overlap=" << overlapped_applies
     << " applies/" << overlapped_checks << " checks"
     << " frontier=" << frontier_pending << " pending/"
     << frontier_performed << " performed";
  if (!invalidations_by_relation.empty()) {
    os << " invalidations=[";
    for (size_t i = 0; i < invalidations_by_relation.size(); ++i) {
      if (i > 0) os << " ";
      if (i + 1 == invalidations_by_relation.size()) {
        os << "adom:";
      } else {
        os << "r" << i << ":";
      }
      os << invalidations_by_relation[i];
    }
    os << "]";
  }
  if (streams_registered > 0) {
    os << " streams=" << streams_registered
       << " bindings=" << stream_bindings << " (" << stream_new_bindings
       << " mid-stream) rechecked=" << stream_rechecks
       << " skipped=" << stream_skips << "+" << stream_sticky_skips
       << " settled, value_gate_skips=" << stream_value_gate_skips
       << " gate_fallbacks=[adom:" << stream_value_gate_fallback_adom
       << " dep-ltr:" << stream_value_gate_fallback_dependent_ltr
       << " unconstrained:" << stream_value_gate_fallback_unconstrained
       << "] gate_narrowed=[semijoin:" << stream_value_gate_semijoin
       << " newborn:" << stream_value_gate_newborn
       << "] events=" << stream_events;
    if (!stream_rechecks_by_relation.empty()) {
      os << " stream_rechecks=[";
      for (size_t i = 0; i < stream_rechecks_by_relation.size(); ++i) {
        if (i > 0) os << " ";
        if (i + 1 == stream_rechecks_by_relation.size()) {
          os << "adom:";
        } else {
          os << "r" << i << ":";
        }
        os << stream_rechecks_by_relation[i];
      }
      os << "]";
    }
  }
  if (wal_records > 0 || replay_records > 0) {
    os << " wal=" << wal_records << " records/" << wal_bytes << " bytes"
       << " fsyncs=" << wal_fsyncs << " commit_batches=" << wal_commit_batches
       << " (+" << wal_commit_waiters << " absorbed)"
       << " snapshots=" << snapshots_written
       << " replayed=" << replay_records << " records/" << replay_facts
       << " facts torn_tails=" << wal_truncated_tails;
  }
  return os.str();
}

/// RAII gauge used by the overlap telemetry.
class RelevanceEngine::ActivityScope {
 public:
  explicit ActivityScope(std::atomic<int>* gauge) : gauge_(gauge) {
    gauge_->fetch_add(1, std::memory_order_relaxed);
  }
  ~ActivityScope() { gauge_->fetch_sub(1, std::memory_order_relaxed); }

 private:
  std::atomic<int>* gauge_;
};

RelevanceEngine::RelevanceEngine(const Schema& schema,
                                 const AccessMethodSet& acs,
                                 Configuration initial, EngineOptions options)
    : schema_(schema),
      acs_(acs),
      options_(std::move(options)),
      analyzer_(schema, acs),
      num_relations_(schema.num_relations()),
      num_domains_(schema.num_domains()),
      stripe_count_(ResolveStripes(options_.lock_stripes, num_relations_)),
      stripe_mu_(stripe_count_),
      conf_(std::move(initial)),
      frontier_(schema, acs),
      cache_(options_.cache_capacity),
      obs_(options_.obs),
      pool_(ResolveThreads(options_.num_threads)) {
  // Before the first Submit spawns any worker: the pool reads the pointer
  // from its threads.
  pool_.set_queue_wait_histogram(&obs_.queue_wait_ns);
  // Freeze the store layout: after this, growing relation R never
  // reallocates another relation's store, which is what the striped locks
  // rely on.
  conf_.ReserveRelations(num_relations_);
  rel_versions_ = std::make_unique<std::atomic<uint64_t>[]>(
      std::max<size_t>(num_relations_, 1));
  for (size_t r = 0; r < num_relations_; ++r) {
    rel_versions_[r].store(conf_.relation_version(static_cast<RelationId>(r)),
                           std::memory_order_relaxed);
  }
  adom_version_.store(conf_.adom_version(), std::memory_order_relaxed);
  adom_domain_versions_ = std::make_unique<std::atomic<uint64_t>[]>(
      std::max<size_t>(num_domains_, 1));
  for (size_t d = 0; d < num_domains_; ++d) {
    adom_domain_versions_[d].store(
        conf_.adom_domain_version(static_cast<DomainId>(d)),
        std::memory_order_relaxed);
  }
  invalidations_by_relation_ =
      std::make_unique<std::atomic<uint64_t>[]>(num_relations_ + 1);
  for (size_t r = 0; r <= num_relations_; ++r) {
    invalidations_by_relation_[r].store(0, std::memory_order_relaxed);
  }
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  std::lock_guard<std::mutex> fl(frontier_mu_);
  frontier_.Sync(conf_);
}

Result<QueryId> RelevanceEngine::RegisterQuery(const UnionQuery& query) {
  if (!query.IsBoolean()) {
    return Status::InvalidArgument(
        "RelevanceEngine serves Boolean queries; lift k-ary queries via "
        "RelevanceAnalyzer (Prop 2.2) before registering");
  }
  auto state = std::make_unique<QueryState>();
  state->query = query;
  RAR_RETURN_NOT_OK(state->query.Validate(schema_));
  state->footprint = RelationFootprint::Of(state->query);
  state->seeds = QueryConstants(state->query, schema_);
  // Exclusive state lock: checks on already-registered ids read queries_
  // under the shared lock, and push_back may reallocate the vector.
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  queries_.push_back(std::move(state));
  num_queries_.store(queries_.size(), std::memory_order_release);
  return static_cast<QueryId>(queries_.size() - 1);
}

VersionVector RelevanceEngine::versions() const {
  VersionVector v;
  v.relations.reserve(num_relations_);
  for (size_t r = 0; r < num_relations_; ++r) {
    v.relations.push_back(rel_versions_[r].load(std::memory_order_acquire));
  }
  v.adom = adom_version_.load(std::memory_order_acquire);
  v.adom_domains.reserve(num_domains_);
  for (size_t d = 0; d < num_domains_; ++d) {
    v.adom_domains.push_back(
        adom_domain_versions_[d].load(std::memory_order_acquire));
  }
  return v;
}

Configuration RelevanceEngine::SnapshotConfig() const {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  return conf_;
}

Status RelevanceEngine::ValidateAccess(const Access& access) const {
  std::shared_lock<std::shared_mutex> state(state_mu_);
  std::shared_lock<std::shared_mutex> adom(adom_mu_);
  return CheckWellFormed(conf_, acs_, access);
}

Result<int> RelevanceEngine::ApplyResponse(const Access& access,
                                           const std::vector<Fact>& response) {
  const uint64_t apply_t0 = MonotonicNs();
  // Admission control: bound outstanding apply waves. The gauge counts
  // applies from entry to listener completion (listeners run the stream
  // recheck waves, which is where an overloaded engine actually drowns),
  // so the serving layer can bounce excess appliers with a typed
  // retry-after instead of queueing unboundedly on the stripe locks.
  if (options_.max_inflight_applies > 0) {
    const int limit = static_cast<int>(options_.max_inflight_applies);
    int inflight = inflight_applies_.load(std::memory_order_relaxed);
    do {
      if (inflight >= limit) {
        counters_.Bump(counters_.apply_admission_rejections);
        return Status::ResourceExhausted(
            "apply admission: " + std::to_string(limit) +
            " applies already in flight; retry later");
      }
    } while (!inflight_applies_.compare_exchange_weak(
        inflight, inflight + 1, std::memory_order_relaxed));
  } else {
    inflight_applies_.fetch_add(1, std::memory_order_relaxed);
  }
  struct InflightGuard {
    std::atomic<int>* gauge;
    ~InflightGuard() { gauge->fetch_sub(1, std::memory_order_relaxed); }
  } inflight_guard{&inflight_applies_};
  ApplyEvent event;
  event.access = access;
  // Guarded lookup: the access is only validated inside the locked
  // section below (CheckWellFormed rejects unknown method ids cleanly).
  if (access.method < acs_.size()) {
    event.relation = acs_.method(access.method).relation;
  }
  // The landed delta only feeds listener maintenance; with nobody
  // attached, don't copy facts around for it.
  const bool collect =
      num_listeners_.load(std::memory_order_relaxed) > 0;
  Result<int> applied = [&]() -> Result<int> {
    ActivityScope applying(&active_applies_);
    std::shared_lock<std::shared_mutex> state(state_mu_);
    counters_.Bump(counters_.responses_applied);
    if (active_checks_.load(std::memory_order_relaxed) > 0) {
      counters_.Bump(counters_.overlapped_applies);
    }
    {
      std::shared_lock<std::shared_mutex> adom(adom_mu_);
      RAR_RETURN_NOT_OK(CheckWellFormed(conf_, acs_, access));
      RAR_RETURN_NOT_OK(ValidateResponse(acs_, access, response));
      bool grows_adom = false;
      for (const Fact& f : response) {
        const Relation& rel = schema_.relation(f.relation);
        for (int pos = 0; pos < f.arity() && !grows_adom; ++pos) {
          grows_adom = !conf_.AdomContains(f.values[pos],
                                           rel.attributes[pos].domain);
        }
        if (grows_adom) break;
      }
      // Monotone upgrade rule: "no new Adom entries" can never become
      // false while we hold the shared lock, so the common case (all
      // values already known) applies under the *shared* Adom lock and
      // overlaps with every in-flight check.
      if (!grows_adom) return ApplyLocked(access, response, &event, collect);
    }
    // The response introduces values: retake the Adom lock exclusively
    // (the one global serialization point — everything Adom-dependent
    // must not observe the growth mid-check).
    std::unique_lock<std::shared_mutex> adom(adom_mu_);
    return ApplyLocked(access, response, &event, collect);
  }();
  // Listeners run with every engine lock released: they may call back
  // into the engine (checks, certainty, query registration) freely.
  if (applied.ok()) {
    event.facts_added = *applied;
    // Durability before visibility: listeners (and through them stream
    // subscribers) must never observe an apply that a crash could undo —
    // recovered cursors would have a gap. On a log failure the in-memory
    // apply stands but the commit is reported failed; the session is
    // effectively dead (the WAL error is sticky).
    if (persist_hook_ != nullptr && event.wal_sequence != 0) {
      RAR_RETURN_NOT_OK(persist_hook_->WaitDurable(event.wal_sequence));
    }
    NotifyApplied(event);
    // End-to-end: locks + absorb + listener maintenance (wave time also
    // shows up on its own in wave_ns, attributed per stream).
    const uint64_t ns = MonotonicNs() - apply_t0;
    obs_.apply_ns.Record(ns);
    if (obs_.trace().ShouldSample()) {
      TraceEvent e;
      e.kind = TraceEventKind::kApply;
      e.id = event.relation;
      e.id2 = static_cast<uint32_t>(event.facts_added);
      e.a = event.relation_version_after;
      e.b = event.relation_version_after -
            static_cast<uint64_t>(event.facts_added);
      e.flag_a = event.adom_grew;
      e.ns = ns;
      obs_.trace().Record(e);
    }
  }
  return applied;
}

Result<int> RelevanceEngine::ApplyLocked(const Access& access,
                                         const std::vector<Fact>& response,
                                         ApplyEvent* event,
                                         bool collect_delta) {
  const RelationId rel = acs_.method(access.method).relation;
  const Relation& rel_schema = schema_.relation(rel);
  int added = 0;
  {
    std::unique_lock<std::shared_mutex> stripe(stripe_mu_[StripeOf(rel)]);
    for (const Fact& f : response) {
      if (collect_delta) {
        // Probe the active domain *before* the insert so the delta records
        // exactly the entries this fact introduces (duplicates within the
        // response resolve in arrival order, like the inserts themselves).
        for (int pos = 0; pos < f.arity(); ++pos) {
          const DomainId dom = rel_schema.attributes[pos].domain;
          if (!conf_.AdomContains(f.values[pos], dom)) {
            event->new_adom.push_back(TypedValue{f.values[pos], dom});
          }
        }
        if (conf_.AddFact(f)) {
          ++added;
          event->new_facts.push_back(f);
        }
      } else if (conf_.AddFact(f)) {
        ++added;
      }
    }
    if (added > 0) {
      rel_versions_[rel].store(conf_.relation_version(rel),
                               std::memory_order_release);
      epoch_.fetch_add(1, std::memory_order_acq_rel);
      counters_.Bump(counters_.epoch_advances);
      counters_.Bump(counters_.facts_applied, static_cast<uint64_t>(added));
    }
    event->relation_version_after = conf_.relation_version(rel);
    // WAL ordering: the sequence is assigned while the stripe (and the
    // Adom lock) are still held, so log order agrees with every
    // serialization the engine's locks admit. Redundant responses are
    // logged too — they still mark the access performed below.
    if (persist_hook_ != nullptr) {
      event->wal_sequence = persist_hook_->LogApply(access, response);
    }
  }
  // Only true when the caller holds adom_mu_ exclusive (the pre-scan is
  // monotone-stable), so the version store and frontier sync below are
  // writer-safe.
  const uint64_t adom_now = conf_.adom_version();
  const bool adom_grew =
      adom_now != adom_version_.load(std::memory_order_relaxed);
  event->adom_grew = adom_grew;
  event->adom_version_after = adom_now;
  if (adom_grew) {
    adom_version_.store(adom_now, std::memory_order_release);
    // Advance the per-domain mirrors and record which domains grew (the
    // domain count is small and static, so a full sweep is cheaper than
    // threading domain ids through the insert loop above).
    event->adom_versions_after.resize(num_domains_);
    for (size_t d = 0; d < num_domains_; ++d) {
      const uint64_t now =
          conf_.adom_domain_version(static_cast<DomainId>(d));
      if (now !=
          adom_domain_versions_[d].load(std::memory_order_relaxed)) {
        adom_domain_versions_[d].store(now, std::memory_order_release);
        event->grown_domains.push_back(static_cast<DomainId>(d));
      }
      event->adom_versions_after[d] = now;
    }
    counters_.Bump(counters_.adom_advances);
  }
  {
    std::lock_guard<std::mutex> fl(frontier_mu_);
    frontier_.MarkPerformed(access);
    // The frontier enumerates bindings over the typed active domain, so it
    // only moves when Adom does (and then we hold adom_mu_ exclusive —
    // Sync's Adom reads are safe).
    if (adom_grew) frontier_.Sync(conf_);
  }
  return added;
}

void RelevanceEngine::AddApplyListener(ApplyListener* listener) {
  std::lock_guard<std::mutex> lock(listeners_mu_);
  listeners_.push_back(listener);
  num_listeners_.store(listeners_.size(), std::memory_order_relaxed);
}

void RelevanceEngine::RemoveApplyListener(ApplyListener* listener) {
  std::lock_guard<std::mutex> lock(listeners_mu_);
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), listener),
                   listeners_.end());
  num_listeners_.store(listeners_.size(), std::memory_order_relaxed);
}

void RelevanceEngine::NotifyApplied(const ApplyEvent& event) {
  std::vector<ApplyListener*> listeners;
  {
    std::lock_guard<std::mutex> lock(listeners_mu_);
    if (listeners_.empty()) return;
    listeners = listeners_;
  }
  for (ApplyListener* l : listeners) l->OnApply(event);
}

std::vector<Value> RelevanceEngine::AdomValuesOf(DomainId domain,
                                                 size_t from) const {
  std::shared_lock<std::shared_mutex> state(state_mu_);
  std::shared_lock<std::shared_mutex> adom(adom_mu_);
  ValueSeq seq = conf_.AdomOfDomain(domain);
  std::vector<Value> out;
  if (from >= seq.size()) return out;
  out.reserve(seq.size() - from);
  for (size_t i = from; i < seq.size(); ++i) out.push_back(seq[i]);
  return out;
}

std::vector<Fact> RelevanceEngine::RelationFactsSnapshot(
    RelationId rel) const {
  std::shared_lock<std::shared_mutex> state(state_mu_);
  if (rel >= num_relations_) return {};
  std::shared_lock<std::shared_mutex> stripe(stripe_mu_[StripeOf(rel)]);
  FactSeq seq = conf_.FactsOf(rel);
  std::vector<Fact> out;
  out.reserve(seq.size());
  for (size_t i = 0; i < seq.size(); ++i) out.push_back(seq[i]);
  return out;
}

const ConfigView& RelevanceEngine::SeededViewLocked(
    const QueryState& qs, OverlayConfiguration* overlay) const {
  bool missing = false;
  for (const TypedValue& tv : qs.seeds) {
    if (!conf_.AdomContains(tv.value, tv.domain)) {
      missing = true;
      break;
    }
  }
  if (!missing) return conf_;
  for (const TypedValue& tv : qs.seeds) {
    overlay->AddSeedConstant(tv.value, tv.domain);
  }
  return *overlay;
}

VersionStamp RelevanceEngine::StampFor(const RelationFootprint& fp) const {
  VersionStamp stamp;
  if (!options_.footprint_invalidation) {
    stamp.push_back(epoch());
    return stamp;
  }
  stamp.reserve(fp.relations.size() + (fp.adom_sensitive ? 1 : 0));
  for (RelationId rel : fp.relations) {
    stamp.push_back(relation_version(rel));
  }
  if (fp.adom_sensitive) {
    if (fp.adom_domains.empty()) {
      stamp.push_back(adom_version_.load(std::memory_order_acquire));
    } else {
      // Domain-refined adom dependence: growth in an untracked domain
      // leaves the stamp valid (see RelationFootprint::adom_domains).
      for (DomainId d : fp.adom_domains) {
        stamp.push_back(adom_domain_version(d));
      }
    }
  }
  return stamp;
}

size_t RelevanceEngine::StaleComponentTarget(
    const RelationFootprint& fp, int component) const {
  // The Adom slot doubles as "global" attribution in global-epoch mode.
  if (!options_.footprint_invalidation) return num_relations_;
  if (component >= 0 &&
      static_cast<size_t>(component) < fp.relations.size()) {
    return fp.relations[component];
  }
  return num_relations_;  // the trailing Adom component
}

std::vector<size_t> RelevanceEngine::StripesFor(
    const RelationFootprint& fp) const {
  std::vector<size_t> stripes;
  stripes.reserve(fp.relations.size());
  for (RelationId rel : fp.relations) stripes.push_back(StripeOf(rel));
  std::sort(stripes.begin(), stripes.end());
  stripes.erase(std::unique(stripes.begin(), stripes.end()), stripes.end());
  return stripes;
}

std::vector<std::shared_lock<std::shared_mutex>>
RelevanceEngine::LockStripesShared(const std::vector<size_t>& stripes) const {
  std::vector<std::shared_lock<std::shared_mutex>> locks;
  locks.reserve(stripes.size());
  for (size_t s : stripes) locks.emplace_back(stripe_mu_[s]);
  return locks;
}

bool RelevanceEngine::CertainLocked(QueryId id) {
  // Caller holds the query-footprint stripes (shared or exclusive);
  // serialize the memo update.
  std::lock_guard<std::mutex> lock(certainty_mu_);
  QueryState& qs = *queries_[id];
  if (qs.certain) {
    counters_.Bump(counters_.certainty_reuse);
    return true;
  }
  VersionStamp stamp = StampFor(qs.footprint);
  if (qs.checked_valid && qs.checked_stamp == stamp) {
    counters_.Bump(counters_.certainty_reuse);
    return false;
  }
  qs.certain = EvalBool(qs.query, conf_);
  qs.checked_stamp = std::move(stamp);
  qs.checked_valid = true;
  return qs.certain;
}

bool RelevanceEngine::IsCertain(QueryId id) {
  std::shared_lock<std::shared_mutex> state(state_mu_);
  auto stripes = LockStripesShared(StripesFor(queries_[id]->footprint));
  return CertainLocked(id);
}

CheckOutcome RelevanceEngine::CheckLocked(QueryId id, CheckKind kind,
                                          const Access& access) {
  CheckOutcome out;
  const bool is_ir = (kind == CheckKind::kImmediate);
  counters_.Bump(is_ir ? counters_.ir_checks : counters_.ltr_checks);

  // Sampled check trace. The filler destructs before the span (reverse
  // declaration order), so the event fields are set whichever return path
  // runs; with sampling off the span construction is one relaxed load.
  TraceSpan span(&obs_.trace(), TraceEventKind::kCheck);
  struct CheckTraceFill {
    TraceSpan& span;
    QueryId id;
    bool is_ir;
    const CheckOutcome& out;
    ~CheckTraceFill() {
      if (!span.active()) return;
      TraceEvent& e = span.event();
      e.id = id;
      e.detail = is_ir ? 0 : 1;
      e.flag_a = out.relevant;
      e.flag_b = out.from_cache;
    }
  } fill{span, id, is_ir, out};

  // Well-formedness gate, hoisted out of the deciders: an ill-formed
  // access is never relevant (the deciders say so too), but the verdict
  // depends on Adom membership of the binding — state *outside* the
  // relation footprint. Adom is monotone, so instead of widening every
  // stamp we simply never cache the ill-formed case; once well-formed,
  // always well-formed, and the cached verdict's footprint covers
  // everything else the decider reads.
  if (!CheckWellFormed(conf_, acs_, access).ok()) {
    counters_.Bump(counters_.wf_rejections);
    out.relevant = false;
    return out;
  }

  // Monotone short-circuit: a certain (Boolean, positive) query stays
  // certain under every sound continuation, so no access is IR or LTR for
  // it anymore — the stable negative verdict the cache's sticky class
  // describes. The per-query certainty flag already serves it for every
  // (method, binding), so no per-access entry is inserted (a settled query
  // probed forever would otherwise grow the cache without bound).
  if (CertainLocked(id)) {
    counters_.Bump(counters_.cache_hits);
    counters_.Bump(counters_.sticky_hits);
    out.relevant = false;
    out.from_cache = true;
    return out;
  }

  const QueryState& qs = *queries_[id];
  DecisionKey key{id, kind, access.method, access.binding};
  VersionStamp stamp;
  uint64_t ep = 0;
  if (options_.enable_cache) {
    const RelationId accessed = acs_.method(access.method).relation;
    RelationFootprint fp =
        is_ir ? RelevanceAnalyzer::ImmediateFootprint(qs.footprint, accessed)
              : RelevanceAnalyzer::LongTermFootprint(qs.footprint, accessed);
    stamp = StampFor(fp);
    ep = epoch();
    DecisionCache::Probe probe = cache_.Lookup(key, stamp, ep);
    if (probe.status == DecisionCache::ProbeStatus::kHit) {
      counters_.Bump(counters_.cache_hits);
      if (probe.hit.sticky) counters_.Bump(counters_.sticky_hits);
      if (probe.hit.cross_epoch) counters_.Bump(counters_.cross_epoch_hits);
      out.relevant = probe.hit.relevant;
      out.from_cache = true;
      return out;
    }
    if (probe.status == DecisionCache::ProbeStatus::kStale) {
      counters_.Bump(counters_.stale_invalidations);
      size_t slot = StaleComponentTarget(fp, probe.stale_component);
      invalidations_by_relation_[slot].fetch_add(1,
                                                 std::memory_order_relaxed);
    }
  }
  counters_.Bump(counters_.cache_misses);

  // Queries carrying constants outside the active domain (Prop 2.2 fresh
  // head bindings) are decided over a seeded overlay — the same view the
  // one-shot k-ary wrappers build; everyone else reads conf_ directly.
  OverlayConfiguration seed_overlay(&conf_);
  const ConfigView& view = SeededViewLocked(qs, &seed_overlay);

  const uint64_t t0 = MonotonicNs();
  if (is_ir) {
    out.relevant = analyzer_.Immediate(view, access, qs.query);
    const uint64_t decider_ns = MonotonicNs() - t0;
    counters_.Bump(counters_.uncached_ir_checks);
    counters_.Bump(counters_.ir_time_ns, decider_ns);
    obs_.ir_decider_ns.Record(decider_ns);
  } else {
    Result<bool> r =
        analyzer_.LongTerm(view, access, qs.query, options_.relevance);
    const uint64_t decider_ns = MonotonicNs() - t0;
    counters_.Bump(counters_.uncached_ltr_checks);
    counters_.Bump(counters_.ltr_time_ns, decider_ns);
    obs_.ltr_decider_ns.Record(decider_ns);
    if (!r.ok()) {
      out.status = r.status();
      return out;  // out-of-scope verdicts are never cached
    }
    out.relevant = *r;
  }
  if (options_.enable_cache) {
    cache_.Insert(key, out.relevant, /*sticky=*/false, std::move(stamp), ep);
  }
  return out;
}

CheckOutcome RelevanceEngine::CheckImmediate(QueryId id, const Access& access) {
  ActivityScope checking(&active_checks_);
  std::shared_lock<std::shared_mutex> state(state_mu_);
  if (active_applies_.load(std::memory_order_relaxed) > 0) {
    counters_.Bump(counters_.overlapped_checks);
  }
  std::shared_lock<std::shared_mutex> adom(adom_mu_);
  auto stripes = LockStripesShared(StripesForCheck(id, CheckKind::kImmediate,
                                                   {&access, 1}));
  return CheckLocked(id, CheckKind::kImmediate, access);
}

CheckOutcome RelevanceEngine::CheckLongTerm(QueryId id, const Access& access) {
  ActivityScope checking(&active_checks_);
  std::shared_lock<std::shared_mutex> state(state_mu_);
  if (active_applies_.load(std::memory_order_relaxed) > 0) {
    counters_.Bump(counters_.overlapped_checks);
  }
  std::shared_lock<std::shared_mutex> adom(adom_mu_);
  auto stripes = LockStripesShared(StripesForCheck(id, CheckKind::kLongTerm,
                                                   {&access, 1}));
  return CheckLocked(id, CheckKind::kLongTerm, access);
}

std::vector<CheckOutcome> RelevanceEngine::CheckBatch(
    QueryId id, CheckKind kind, const std::vector<Access>& accesses) {
  ScopedTimer batch_timer(&obs_.batch_ns);
  counters_.Bump(counters_.batch_calls);
  counters_.Bump(counters_.batch_items,
                 static_cast<uint64_t>(accesses.size()));
  std::vector<CheckOutcome> results(accesses.size());
  if (accesses.empty()) return results;

  ActivityScope checking(&active_checks_);
  std::shared_lock<std::shared_mutex> state(state_mu_);
  if (active_applies_.load(std::memory_order_relaxed) > 0) {
    counters_.Bump(counters_.overlapped_checks);
  }
  std::shared_lock<std::shared_mutex> adom(adom_mu_);
  auto stripes = LockStripesShared(
      StripesForCheck(id, kind, {accesses.data(), accesses.size()}));
  if (accesses.size() == 1 || pool_.size() == 1) {
    for (size_t i = 0; i < accesses.size(); ++i) {
      results[i] = CheckLocked(id, kind, accesses[i]);
    }
    return results;
  }
  // Workers share the caller's locks: the pool runs strictly inside this
  // scope, so the footprint's shards cannot move underneath them.
  pool_.ParallelFor(accesses.size(), [&](size_t i) {
    results[i] = CheckLocked(id, kind, accesses[i]);
  });
  return results;
}

std::vector<CheckOutcome> RelevanceEngine::CheckMany(
    const std::vector<CheckRequest>& requests, bool parallel) {
  std::vector<CheckOutcome> results(requests.size());
  if (requests.empty()) return results;
  ScopedTimer batch_timer(&obs_.batch_ns);
  counters_.Bump(counters_.batch_calls);
  counters_.Bump(counters_.batch_items,
                 static_cast<uint64_t>(requests.size()));

  ActivityScope checking(&active_checks_);
  std::shared_lock<std::shared_mutex> state(state_mu_);
  if (active_applies_.load(std::memory_order_relaxed) > 0) {
    counters_.Bump(counters_.overlapped_checks);
  }
  std::shared_lock<std::shared_mutex> adom(adom_mu_);
  // Union lock footprint across items (same widening rules as
  // StripesForCheck, computed once).
  RelationFootprint fp;
  bool ltr_dependent = false;
  for (const CheckRequest& req : requests) {
    for (RelationId rel : queries_[req.query]->footprint.relations) {
      fp.Add(rel);
    }
    if (req.access.method < acs_.size()) {
      fp.Add(acs_.method(req.access.method).relation);
    }
    if (req.kind == CheckKind::kLongTerm && !acs_.AllIndependent()) {
      ltr_dependent = true;
    }
  }
  if (ltr_dependent) {
    for (AccessMethodId mid = 0; mid < acs_.size(); ++mid) {
      fp.Add(acs_.method(mid).relation);
    }
  }
  auto stripes = LockStripesShared(StripesFor(fp));
  if (!parallel || requests.size() == 1 || pool_.size() == 1) {
    for (size_t i = 0; i < requests.size(); ++i) {
      results[i] = CheckLocked(requests[i].query, requests[i].kind,
                               requests[i].access);
    }
    return results;
  }
  // Workers share the caller's locks (see CheckBatch).
  pool_.ParallelFor(requests.size(), [&](size_t i) {
    results[i] = CheckLocked(requests[i].query, requests[i].kind,
                             requests[i].access);
  });
  return results;
}

std::vector<size_t> RelevanceEngine::StripesForCheck(
    QueryId id, CheckKind kind, AccessSpan accesses) const {
  // The deciders read through ConfigView overlays (no structural copy of
  // the configuration), so a check pins exactly the relations it reads:
  // the query's relations plus each probed access's relation. LTR checks
  // therefore overlap footprint-disjoint applies just like IR checks do.
  RelationFootprint fp = queries_[id]->footprint;
  for (size_t i = 0; i < accesses.size; ++i) {
    AccessMethodId mid = accesses.data[i].method;
    if (mid < acs_.size()) fp.Add(acs_.method(mid).relation);
  }
  // With dependent methods in play, the LTR containment searches probe
  // Contains() on any relation that has a method (auxiliary production
  // facts of the witness chase), so those relations join the *lock*
  // footprint. The verdict's cache stamp stays semantically footprint-
  // narrow either way; with an all-independent ACS the lock footprint is
  // exactly the semantic one.
  if (kind == CheckKind::kLongTerm && !acs_.AllIndependent()) {
    for (AccessMethodId mid = 0; mid < acs_.size(); ++mid) {
      fp.Add(acs_.method(mid).relation);
    }
  }
  return StripesFor(fp);
}

double RelevanceEngine::ScoreAccess(QueryId id, const Access& access) const {
  // Pure cache probes — scoring must never trigger a decider. Stamps come
  // from the lock-free version mirror; a probe racing an apply can at
  // worst mis-rank (stale drop / spurious miss), never mis-answer.
  if (access.method >= acs_.size()) return 0.0;
  const QueryState& qs = *queries_[id];
  const AccessMethod& m = acs_.method(access.method);
  const uint64_t ep = epoch();

  // Scoring probes drop (and must attribute) stale entries just like the
  // check path does.
  auto probe_attributed = [&](CheckKind kind) {
    RelationFootprint fp =
        kind == CheckKind::kImmediate
            ? RelevanceAnalyzer::ImmediateFootprint(qs.footprint, m.relation)
            : RelevanceAnalyzer::LongTermFootprint(qs.footprint, m.relation);
    DecisionCache::Probe probe = cache_.Lookup(
        DecisionKey{id, kind, access.method, access.binding}, StampFor(fp),
        ep);
    if (probe.status == DecisionCache::ProbeStatus::kStale) {
      counters_.Bump(counters_.stale_invalidations);
      invalidations_by_relation_[StaleComponentTarget(fp,
                                                      probe.stale_component)]
          .fetch_add(1, std::memory_order_relaxed);
    }
    return probe;
  };
  DecisionCache::Probe ir = probe_attributed(CheckKind::kImmediate);
  DecisionCache::Probe ltr = probe_attributed(CheckKind::kLongTerm);

  const bool ir_hit = ir.status == DecisionCache::ProbeStatus::kHit;
  const bool ltr_hit = ltr.status == DecisionCache::ProbeStatus::kHit;
  if (ir_hit && ir.hit.relevant) return 4.0;
  if (ltr_hit && ltr.hit.relevant) return 3.0;
  double score = 1.0;
  // Criticality hint: accesses over a relation the query mentions can
  // witness a subgoal directly; others only matter through dependent
  // chains.
  if (qs.footprint.Contains(m.relation)) score += 1.0;
  if (ir_hit && !ir.hit.relevant && ltr_hit && !ltr.hit.relevant) {
    score = 0.0;  // known irrelevant both ways at these versions
  }
  return score;
}

std::vector<Access> RelevanceEngine::CandidateAccesses(QueryId id) {
  // The frontier is synced by every Adom growth (constructor,
  // ApplyResponse), so enumeration is a pure read under its lock.
  std::shared_lock<std::shared_mutex> state(state_mu_);
  std::lock_guard<std::mutex> fl(frontier_mu_);
  return frontier_.Ranked(
      [&](const Access& a) { return ScoreAccess(id, a); });
}

std::vector<Access> RelevanceEngine::PendingAccesses() {
  std::lock_guard<std::mutex> fl(frontier_mu_);
  return frontier_.Pending();
}

bool RelevanceEngine::WasPerformed(const Access& access) const {
  std::lock_guard<std::mutex> fl(frontier_mu_);
  return frontier_.WasPerformed(access);
}

std::vector<Access> RelevanceEngine::PerformedAccesses() const {
  std::lock_guard<std::mutex> fl(frontier_mu_);
  return frontier_.PerformedList();
}

void RelevanceEngine::RestorePerformed(const std::vector<Access>& accesses) {
  std::lock_guard<std::mutex> fl(frontier_mu_);
  for (const Access& a : accesses) frontier_.MarkPerformed(a);
}

std::unordered_set<DomainId> RelevanceEngine::producible_domains() {
  std::shared_lock<std::shared_mutex> state(state_mu_);
  std::shared_lock<std::shared_mutex> adom(adom_mu_);
  // The fixpoint reads only the typed active domain and the (static)
  // method set, so the Adom version is its whole footprint.
  std::lock_guard<std::mutex> lock(producible_mu_);
  const uint64_t av = conf_.adom_version();
  if (producible_valid_ && producible_adom_version_ == av) {
    counters_.Bump(counters_.producible_reuse);
    return producible_;
  }
  producible_ = ProducibleDomains(conf_, acs_);
  producible_valid_ = true;
  producible_adom_version_ = av;
  counters_.Bump(counters_.producible_recomputes);
  return producible_;
}

EngineStats RelevanceEngine::stats() const {
  EngineStats s = counters_.Snapshot();
  s.cache_entries = cache_.size();
  s.cache_evictions = cache_.evictions();
  s.invalidations_by_relation.resize(num_relations_ + 1);
  for (size_t r = 0; r <= num_relations_; ++r) {
    s.invalidations_by_relation[r] =
        invalidations_by_relation_[r].load(std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> fl(frontier_mu_);
    s.frontier_pending = frontier_.pending_size();
    s.frontier_performed = frontier_.performed_size();
  }
  std::vector<ApplyListener*> listeners;
  {
    std::lock_guard<std::mutex> ll(listeners_mu_);
    listeners = listeners_;
  }
  // Contribute outside listeners_mu_ (same discipline as NotifyApplied):
  // a listener's ContributeStats may take locks that are also held
  // around engine applies — e.g. DurableSession's session mutex — and
  // holding listeners_mu_ across the call would invert that order.
  for (const ApplyListener* l : listeners) l->ContributeStats(&s);
  return s;
}

}  // namespace rar
