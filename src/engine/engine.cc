#include "engine/engine.h"

#include <chrono>
#include <sstream>
#include <utility>

#include "query/eval.h"

namespace rar {

namespace {

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  if (hw > 8) hw = 8;
  return static_cast<int>(hw);
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string EngineStats::ToString() const {
  std::ostringstream os;
  os << "checks=" << checks() << " (ir=" << ir_checks << ", ltr=" << ltr_checks
     << ") cache_hits=" << cache_hits << " misses=" << cache_misses
     << " hit_rate=" << cache_hit_rate() << " sticky=" << sticky_hits
     << " certainty_reuse=" << certainty_reuse
     << " producible_reuse=" << producible_reuse << "/"
     << (producible_reuse + producible_recomputes)
     << " epochs=" << epoch_advances << " facts=" << facts_applied
     << " frontier=" << frontier_pending << " pending/"
     << frontier_performed << " performed";
  return os.str();
}

RelevanceEngine::RelevanceEngine(const Schema& schema,
                                 const AccessMethodSet& acs,
                                 Configuration initial, EngineOptions options)
    : schema_(schema),
      acs_(acs),
      options_(std::move(options)),
      analyzer_(schema, acs),
      conf_(std::move(initial)),
      frontier_(schema, acs),
      pool_(ResolveThreads(options_.num_threads)) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  frontier_.Sync(conf_);
}

Result<QueryId> RelevanceEngine::RegisterQuery(const UnionQuery& query) {
  if (!query.IsBoolean()) {
    return Status::InvalidArgument(
        "RelevanceEngine serves Boolean queries; lift k-ary queries via "
        "RelevanceAnalyzer (Prop 2.2) before registering");
  }
  auto state = std::make_unique<QueryState>();
  state->query = query;
  RAR_RETURN_NOT_OK(state->query.Validate(schema_));
  for (const ConjunctiveQuery& d : state->query.disjuncts) {
    for (const Atom& atom : d.atoms) state->relations.insert(atom.relation);
  }
  // Exclusive state lock: checks on already-registered ids read queries_
  // under the shared lock, and push_back may reallocate the vector.
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  queries_.push_back(std::move(state));
  return static_cast<QueryId>(queries_.size() - 1);
}

uint64_t RelevanceEngine::epoch() const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  return epoch_;
}

Configuration RelevanceEngine::SnapshotConfig() const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  return conf_;
}

Result<int> RelevanceEngine::ApplyResponse(const Access& access,
                                           const std::vector<Fact>& response) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  RAR_RETURN_NOT_OK(CheckWellFormed(conf_, acs_, access));
  RAR_RETURN_NOT_OK(ValidateResponse(acs_, access, response));
  int added = 0;
  for (const Fact& f : response) {
    if (conf_.AddFact(f)) ++added;
  }
  frontier_.MarkPerformed(access);
  counters_.Bump(counters_.responses_applied);
  if (added > 0) {
    ++epoch_;
    counters_.Bump(counters_.epoch_advances);
    counters_.Bump(counters_.facts_applied, static_cast<uint64_t>(added));
    frontier_.Sync(conf_);
  }
  return added;
}

bool RelevanceEngine::CertainLocked(QueryId id) {
  // Caller holds state_mu_ (shared or exclusive); serialize the memo update.
  std::lock_guard<std::mutex> lock(certainty_mu_);
  QueryState& qs = *queries_[id];
  if (qs.certain) {
    counters_.Bump(counters_.certainty_reuse);
    return true;
  }
  if (qs.checked_epoch == epoch_) {
    counters_.Bump(counters_.certainty_reuse);
    return false;
  }
  qs.certain = EvalBool(qs.query, conf_);
  qs.checked_epoch = epoch_;
  return qs.certain;
}

bool RelevanceEngine::IsCertain(QueryId id) {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  return CertainLocked(id);
}

CheckOutcome RelevanceEngine::CheckLocked(QueryId id, CheckKind kind,
                                          const Access& access) {
  CheckOutcome out;
  const bool is_ir = (kind == CheckKind::kImmediate);
  counters_.Bump(is_ir ? counters_.ir_checks : counters_.ltr_checks);

  // Monotone short-circuit: a certain (Boolean, positive) query stays
  // certain under every sound continuation, so no access is IR or LTR for
  // it anymore — the stable negative verdict the cache's sticky class
  // describes. The per-query certainty flag already serves it for every
  // (method, binding), so no per-access entry is inserted (a settled query
  // probed forever would otherwise grow the cache without bound).
  if (CertainLocked(id)) {
    counters_.Bump(counters_.cache_hits);
    counters_.Bump(counters_.sticky_hits);
    out.relevant = false;
    out.from_cache = true;
    return out;
  }

  DecisionKey key{id, kind, access.method, access.binding};
  if (options_.enable_cache) {
    if (auto hit = cache_.Lookup(key, epoch_)) {
      counters_.Bump(counters_.cache_hits);
      if (hit->sticky) counters_.Bump(counters_.sticky_hits);
      out.relevant = hit->relevant;
      out.from_cache = true;
      return out;
    }
  }
  counters_.Bump(counters_.cache_misses);

  const QueryState& qs = *queries_[id];
  const uint64_t t0 = NowNs();
  if (is_ir) {
    out.relevant = analyzer_.Immediate(conf_, access, qs.query);
    counters_.Bump(counters_.ir_time_ns, NowNs() - t0);
  } else {
    Result<bool> r =
        analyzer_.LongTerm(conf_, access, qs.query, options_.relevance);
    counters_.Bump(counters_.ltr_time_ns, NowNs() - t0);
    if (!r.ok()) {
      out.status = r.status();
      return out;  // out-of-scope verdicts are never cached
    }
    out.relevant = *r;
  }
  if (options_.enable_cache) {
    cache_.Insert(key, out.relevant, /*sticky=*/false, epoch_);
  }
  return out;
}

CheckOutcome RelevanceEngine::CheckImmediate(QueryId id, const Access& access) {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  return CheckLocked(id, CheckKind::kImmediate, access);
}

CheckOutcome RelevanceEngine::CheckLongTerm(QueryId id, const Access& access) {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  return CheckLocked(id, CheckKind::kLongTerm, access);
}

std::vector<CheckOutcome> RelevanceEngine::CheckBatch(
    QueryId id, CheckKind kind, const std::vector<Access>& accesses) {
  counters_.Bump(counters_.batch_calls);
  counters_.Bump(counters_.batch_items,
                 static_cast<uint64_t>(accesses.size()));
  std::vector<CheckOutcome> results(accesses.size());
  if (accesses.empty()) return results;

  std::shared_lock<std::shared_mutex> lock(state_mu_);
  if (accesses.size() == 1 || pool_.size() == 1) {
    for (size_t i = 0; i < accesses.size(); ++i) {
      results[i] = CheckLocked(id, kind, accesses[i]);
    }
    return results;
  }
  // Workers share the caller's shared lock: the pool runs strictly inside
  // this scope, so the configuration cannot move underneath them.
  pool_.ParallelFor(accesses.size(), [&](size_t i) {
    results[i] = CheckLocked(id, kind, accesses[i]);
  });
  return results;
}

double RelevanceEngine::ScoreAccess(QueryId id, const Access& access,
                                    uint64_t ep) const {
  // Pure cache probes — scoring must never trigger a decider.
  auto ir = cache_.Lookup(
      DecisionKey{id, CheckKind::kImmediate, access.method, access.binding},
      ep);
  auto ltr = cache_.Lookup(
      DecisionKey{id, CheckKind::kLongTerm, access.method, access.binding},
      ep);
  if (ir.has_value() && ir->relevant) return 4.0;
  if (ltr.has_value() && ltr->relevant) return 3.0;
  double score = 1.0;
  // Criticality hint: accesses over a relation the query mentions can
  // witness a subgoal directly; others only matter through dependent
  // chains.
  const AccessMethod& m = acs_.method(access.method);
  if (queries_[id]->relations.count(m.relation) > 0) score += 1.0;
  if (ir.has_value() && !ir->relevant && ltr.has_value() && !ltr->relevant) {
    score = 0.0;  // known irrelevant both ways at this epoch
  }
  return score;
}

std::vector<Access> RelevanceEngine::CandidateAccesses(QueryId id) {
  // The frontier is synced by every configuration mutation (constructor,
  // ApplyResponse), so enumeration is a pure read.
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  const uint64_t ep = epoch_;
  return frontier_.Ranked(
      [&](const Access& a) { return ScoreAccess(id, a, ep); });
}

std::vector<Access> RelevanceEngine::PendingAccesses() {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  return frontier_.Pending();
}

std::unordered_set<DomainId> RelevanceEngine::producible_domains() {
  {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    if (producible_valid_ && producible_epoch_ == epoch_) {
      counters_.Bump(counters_.producible_reuse);
      return producible_;
    }
  }
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  if (producible_valid_ && producible_epoch_ == epoch_) {
    counters_.Bump(counters_.producible_reuse);
    return producible_;
  }
  producible_ = ProducibleDomains(conf_, acs_);
  producible_valid_ = true;
  producible_epoch_ = epoch_;
  counters_.Bump(counters_.producible_recomputes);
  return producible_;
}

EngineStats RelevanceEngine::stats() const {
  EngineStats s = counters_.Snapshot();
  s.cache_entries = cache_.size();
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  s.frontier_pending = frontier_.pending_size();
  s.frontier_performed = frontier_.performed_size();
  return s;
}

}  // namespace rar
