// A small fixed-size worker pool for fanning out relevance checks.
//
// Deliberately minimal: a mutex-guarded FIFO of std::function tasks and a
// `Wait` barrier. Relevance deciders are coarse units of work (microseconds
// to milliseconds), so a lock-free queue would buy nothing; what matters is
// that `Submit` never blocks on task execution and `Wait` returns only when
// every submitted task has finished.
#ifndef RAR_ENGINE_WORKER_POOL_H_
#define RAR_ENGINE_WORKER_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/histogram.h"

namespace rar {

/// \brief Fixed pool of worker threads draining a shared task queue.
///
/// Threads are spawned lazily on the first Submit, so engines that never
/// fan out (e.g. a single-threaded mediator run) pay nothing for owning a
/// pool.
class WorkerPool {
 public:
  /// Configures a pool of `num_threads` workers (clamped to at least 1);
  /// no threads start until work is submitted.
  explicit WorkerPool(int num_threads);

  /// Drains the queue, then joins every worker.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int size() const { return num_threads_; }

  /// Enqueues a task; returns immediately.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has completed.
  void Wait();

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for all of
  /// them. `fn` must be safe to invoke concurrently.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Attaches a histogram that records how long each task sat queued
  /// before a worker picked it up. Call before the first Submit (the
  /// pointer is read on the worker threads without synchronisation
  /// beyond the queue mutex). Pass nullptr to detach.
  void set_queue_wait_histogram(Histogram* h) { queue_wait_ = h; }

 private:
  /// One queued task plus its enqueue time (nanoseconds; only consulted
  /// when a queue-wait histogram is attached).
  struct Task {
    std::function<void()> fn;
    uint64_t enqueued_ns = 0;
  };

  void WorkerLoop();
  /// Spawns the workers if they are not running yet (caller holds mu_).
  void EnsureStartedLocked();

  int num_threads_ = 1;
  Histogram* queue_wait_ = nullptr;
  std::vector<std::thread> threads_;
  std::deque<Task> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // signalled on new work / shutdown
  std::condition_variable idle_cv_;   // signalled when a task completes
  size_t in_flight_ = 0;              // queued + currently executing
  bool stop_ = false;
};

}  // namespace rar

#endif  // RAR_ENGINE_WORKER_POOL_H_
