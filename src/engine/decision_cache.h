// Memoized relevance verdicts with monotonicity-aware invalidation.
//
// The engine's configuration only ever grows (responses are applied, never
// retracted), which gives two regimes for a cached verdict:
//
//  * *sticky* entries — verdicts that stay valid under any growth. The one
//    the engine records is "not relevant because the query is already
//    certain": positive queries are monotone, so a certain query stays
//    certain and no access can change its (Boolean) certain answer again.
//  * *epoch* entries — everything else. A "relevant" verdict can be
//    destroyed by growth (the certainty the access promised may have
//    arrived by another route), and a plain "not relevant" verdict can be
//    *created* by growth (a dependent chain may become feasible), so both
//    are tagged with the configuration epoch at which they were computed
//    and ignored once the epoch moves on.
//
// Stale entries are skipped by lookups, so no eager invalidation sweep is
// required on epoch advance; `EvictStale` exists for long-lived engines
// that want to bound memory.
#ifndef RAR_ENGINE_DECISION_CACHE_H_
#define RAR_ENGINE_DECISION_CACHE_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "access/access_method.h"
#include "relational/value.h"

namespace rar {

/// Dense id of a query registered with a RelevanceEngine.
using QueryId = uint32_t;

/// The two decision kinds the engine serves.
enum class CheckKind : uint8_t { kImmediate = 0, kLongTerm = 1 };

/// \brief Cache key: (query, kind, method, binding). The configuration is
/// deliberately absent — epoch tagging on the entry stands in for it.
struct DecisionKey {
  QueryId query = 0;
  CheckKind kind = CheckKind::kImmediate;
  AccessMethodId method = kInvalidId;
  std::vector<Value> binding;

  bool operator==(const DecisionKey& o) const {
    return query == o.query && kind == o.kind && method == o.method &&
           binding == o.binding;
  }
};

struct DecisionKeyHash {
  size_t operator()(const DecisionKey& k) const {
    uint64_t h = 1469598103934665603ULL;
    h = (h ^ k.query) * 1099511628211ULL;
    h = (h ^ static_cast<uint64_t>(k.kind)) * 1099511628211ULL;
    h = (h ^ k.method) * 1099511628211ULL;
    ValueHash vh;
    for (const Value& v : k.binding) h = (h ^ vh(v)) * 1099511628211ULL;
    return static_cast<size_t>(h);
  }
};

/// \brief Thread-safe verdict cache. All methods may be called concurrently
/// from engine workers; a single mutex suffices because entries are tiny
/// and the deciders the cache short-circuits are orders of magnitude more
/// expensive than the critical section.
class DecisionCache {
 public:
  struct Hit {
    bool relevant = false;
    bool sticky = false;
  };

  /// Returns the cached verdict when one is valid at `epoch` (sticky, or
  /// computed at exactly `epoch`); nullopt otherwise.
  std::optional<Hit> Lookup(const DecisionKey& key, uint64_t epoch) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    const Entry& e = it->second;
    if (!e.sticky && e.epoch != epoch) return std::nullopt;
    return Hit{e.relevant, e.sticky};
  }

  /// Records a verdict computed at `epoch`. Sticky entries are never
  /// overwritten by non-sticky ones (they are strictly stronger).
  void Insert(const DecisionKey& key, bool relevant, bool sticky,
              uint64_t epoch) {
    std::lock_guard<std::mutex> lock(mu_);
    Entry& e = map_[key];
    if (e.sticky && !sticky) return;
    e.relevant = relevant;
    e.sticky = sticky;
    e.epoch = epoch;
  }

  /// Drops every non-sticky entry older than `epoch`. Returns the number
  /// of entries removed.
  size_t EvictStale(uint64_t epoch) {
    std::lock_guard<std::mutex> lock(mu_);
    size_t removed = 0;
    for (auto it = map_.begin(); it != map_.end();) {
      if (!it->second.sticky && it->second.epoch != epoch) {
        it = map_.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    return removed;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

 private:
  struct Entry {
    bool relevant = false;
    bool sticky = false;
    uint64_t epoch = 0;
  };

  mutable std::mutex mu_;
  std::unordered_map<DecisionKey, Entry, DecisionKeyHash> map_;
};

}  // namespace rar

#endif  // RAR_ENGINE_DECISION_CACHE_H_
