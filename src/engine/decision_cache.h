// Memoized relevance verdicts with footprint-aware invalidation and a
// capped LRU.
//
// The engine's configuration only ever grows (responses are applied, never
// retracted), which gives two regimes for a cached verdict:
//
//  * *sticky* entries — verdicts that stay valid under any growth. The one
//    the engine records is "not relevant because the query is already
//    certain": positive queries are monotone, so a certain query stays
//    certain and no access can change its (Boolean) certain answer again.
//  * *stamped* entries — everything else. A "relevant" verdict can be
//    destroyed by growth (the certainty the access promised may have
//    arrived by another route), and a plain "not relevant" verdict can be
//    *created* by growth (a dependent chain may become feasible) — but
//    only by growth of state the decider actually read. Each entry carries
//    the `VersionStamp` of its check's relation footprint (per-relation
//    fact versions, plus the Adom version for LTR; see query/footprint.h);
//    the entry is served while a freshly built stamp is equal, and
//    discarded as stale on the first mismatch. Growth *outside* the
//    footprint leaves the entry valid — the hit is reported with
//    `cross_epoch = true` so callers can count invalidations the old
//    global-epoch scheme would have inflicted.
//
// Memory is bounded by `capacity`: entries are kept in LRU order (hits
// refresh recency) and the coldest entry is evicted on overflow. Stale
// entries are additionally dropped eagerly when a lookup discovers them.
#ifndef RAR_ENGINE_DECISION_CACHE_H_
#define RAR_ENGINE_DECISION_CACHE_H_

#include <algorithm>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "access/access_method.h"
#include "relational/value.h"
#include "relational/version.h"

namespace rar {

/// Dense id of a query registered with a RelevanceEngine.
using QueryId = uint32_t;

/// The two decision kinds the engine serves.
enum class CheckKind : uint8_t { kImmediate = 0, kLongTerm = 1 };

/// \brief Cache key: (query, kind, method, binding). The configuration is
/// deliberately absent — the footprint stamp on the entry stands in for
/// it. A key determines its footprint (query relations + the method's
/// relation), so stamps of the same key are always comparable.
struct DecisionKey {
  QueryId query = 0;
  CheckKind kind = CheckKind::kImmediate;
  AccessMethodId method = kInvalidId;
  std::vector<Value> binding;

  bool operator==(const DecisionKey& o) const {
    return query == o.query && kind == o.kind && method == o.method &&
           binding == o.binding;
  }
};

struct DecisionKeyHash {
  size_t operator()(const DecisionKey& k) const {
    uint64_t h = 1469598103934665603ULL;
    h = (h ^ k.query) * 1099511628211ULL;
    h = (h ^ static_cast<uint64_t>(k.kind)) * 1099511628211ULL;
    h = (h ^ k.method) * 1099511628211ULL;
    ValueHash vh;
    for (const Value& v : k.binding) h = (h ^ vh(v)) * 1099511628211ULL;
    return static_cast<size_t>(h);
  }
};

/// \brief Thread-safe verdict cache. All methods may be called concurrently
/// from engine workers; a single mutex suffices because entries are tiny
/// and the deciders the cache short-circuits are orders of magnitude more
/// expensive than the critical section.
class DecisionCache {
 public:
  /// Generous default: bounds pathological runs (millions of distinct
  /// bindings) without evicting anything in normal mediation.
  static constexpr size_t kDefaultCapacity = size_t{1} << 20;

  explicit DecisionCache(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  struct Hit {
    bool relevant = false;
    bool sticky = false;
    /// True when the global epoch moved since the entry was computed —
    /// i.e. a hit the global-epoch scheme would have invalidated.
    bool cross_epoch = false;
  };

  enum class ProbeStatus : uint8_t {
    kMiss,   ///< no entry for the key
    kStale,  ///< entry found but its footprint stamp mismatched (dropped)
    kHit,    ///< entry served
  };

  struct Probe {
    ProbeStatus status = ProbeStatus::kMiss;
    Hit hit;
    /// For kStale: index of the first mismatching stamp component (the
    /// caller maps it back to a footprint relation / the Adom slot).
    int stale_component = -1;
  };

  /// Probes the cache. `stamp` is the footprint stamp freshly built from
  /// the current configuration versions; `epoch` the current derived
  /// global epoch (used only to flag cross-epoch hits). Stale entries are
  /// erased. Hits refresh LRU recency.
  Probe Lookup(const DecisionKey& key, const VersionStamp& stamp,
               uint64_t epoch) {
    std::lock_guard<std::mutex> lock(mu_);
    Probe probe;
    auto it = map_.find(key);
    if (it == map_.end()) return probe;
    Entry& e = it->second;
    if (!e.sticky && e.stamp != stamp) {
      probe.status = ProbeStatus::kStale;
      probe.stale_component = FirstMismatch(e.stamp, stamp);
      lru_.erase(e.lru_it);
      map_.erase(it);
      return probe;
    }
    probe.status = ProbeStatus::kHit;
    probe.hit = Hit{e.relevant, e.sticky, e.epoch != epoch};
    lru_.splice(lru_.begin(), lru_, e.lru_it);  // refresh recency
    return probe;
  }

  /// Records a verdict computed at `stamp` / `epoch`. Sticky entries are
  /// never overwritten by non-sticky ones (they are strictly stronger).
  /// Evicts the LRU tail when the cache exceeds its capacity.
  void Insert(const DecisionKey& key, bool relevant, bool sticky,
              VersionStamp stamp, uint64_t epoch) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      Entry& e = it->second;
      if (e.sticky && !sticky) return;
      e.relevant = relevant;
      e.sticky = sticky;
      e.stamp = std::move(stamp);
      e.epoch = epoch;
      lru_.splice(lru_.begin(), lru_, e.lru_it);
      return;
    }
    auto slot = map_.emplace(key, Entry{relevant, sticky, std::move(stamp),
                                        epoch, {}})
                    .first;
    lru_.push_front(&slot->first);  // map keys are address-stable
    slot->second.lru_it = lru_.begin();
    while (map_.size() > capacity_) {
      const DecisionKey* coldest = lru_.back();
      lru_.pop_back();
      map_.erase(*coldest);
      ++evictions_;
    }
  }

  /// Drops every non-sticky entry whose stamp differs from the stamp
  /// `current` builds for its key. Returns the number removed. Optional
  /// maintenance for long-lived engines; lookups already skip and drop
  /// stale entries lazily.
  template <typename StampFn>
  size_t EvictStale(const StampFn& current) {
    std::lock_guard<std::mutex> lock(mu_);
    size_t removed = 0;
    for (auto it = map_.begin(); it != map_.end();) {
      if (!it->second.sticky && it->second.stamp != current(it->first)) {
        lru_.erase(it->second.lru_it);
        it = map_.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    return removed;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    lru_.clear();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

  size_t capacity() const { return capacity_; }

  uint64_t evictions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
  }

 private:
  struct Entry {
    bool relevant = false;
    bool sticky = false;
    VersionStamp stamp;
    uint64_t epoch = 0;  ///< derived global epoch at compute time
    std::list<const DecisionKey*>::iterator lru_it;
  };

  static int FirstMismatch(const VersionStamp& a, const VersionStamp& b) {
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      if (a[i] != b[i]) return static_cast<int>(i);
    }
    return static_cast<int>(n);
  }

  mutable std::mutex mu_;
  size_t capacity_;
  uint64_t evictions_ = 0;
  /// The map owns keys and entries; the LRU list (front = most recently
  /// used) holds pointers to the map's keys, which are address-stable
  /// under rehash and other erasures.
  std::list<const DecisionKey*> lru_;
  std::unordered_map<DecisionKey, Entry, DecisionKeyHash> map_;
};

}  // namespace rar

#endif  // RAR_ENGINE_DECISION_CACHE_H_
