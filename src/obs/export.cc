#include "obs/export.h"

#include <cmath>
#include <cstdio>

namespace rar {

// ------------------------------------------------------------ JsonWriter

JsonWriter& JsonWriter::BeginObject() {
  Separate();
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  has_element_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Separate();
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  has_element_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& key) {
  if (!has_element_.empty() && has_element_.back()) out_ += ',';
  if (!has_element_.empty()) has_element_.back() = true;
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

void JsonWriter::Separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!has_element_.empty() && has_element_.back()) out_ += ',';
  if (!has_element_.empty()) has_element_.back() = true;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  Separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  Separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  Separate();
  // JSON has no NaN/Inf tokens; a degenerate histogram snapshot (e.g. an
  // empty percentile) must not break a strict parser downstream.
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  // Fixed-point, trimmed: deterministic, never scientific, always a
  // decimal point (stays a JSON number and survives strict parsers).
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  std::string s(buf);
  size_t last = s.find_last_not_of('0');
  if (last != std::string::npos) {
    if (s[last] == '.') ++last;  // keep one digit after the point
    s.erase(last + 1);
  }
  out_ += s;
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  Separate();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Value(const char* v) {
  Separate();
  out_ += '"';
  out_ += Escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Value(const std::string& v) {
  Separate();
  out_ += '"';
  out_ += Escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Raw(const std::string& json) {
  Separate();
  out_ += json;
  return *this;
}

std::string JsonWriter::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --------------------------------------------------- shared metric rows
//
// Both renderers walk these tables, so a metric added here shows up in
// JSON and Prometheus simultaneously — the "cannot drift" contract.

namespace {

struct CounterRow {
  const char* name;
  uint64_t value;
  bool gauge;  ///< current level rather than a monotone total
};

std::vector<CounterRow> EngineRows(const EngineStats& s) {
  return {
      {"ir_checks", s.ir_checks, false},
      {"ltr_checks", s.ltr_checks, false},
      {"uncached_ir_checks", s.uncached_ir_checks, false},
      {"uncached_ltr_checks", s.uncached_ltr_checks, false},
      {"cache_hits", s.cache_hits, false},
      {"cache_misses", s.cache_misses, false},
      {"sticky_hits", s.sticky_hits, false},
      {"cross_epoch_hits", s.cross_epoch_hits, false},
      {"stale_invalidations", s.stale_invalidations, false},
      {"wf_rejections", s.wf_rejections, false},
      {"certainty_reuse", s.certainty_reuse, false},
      {"producible_reuse", s.producible_reuse, false},
      {"producible_recomputes", s.producible_recomputes, false},
      {"epoch_advances", s.epoch_advances, false},
      {"adom_advances", s.adom_advances, false},
      {"facts_applied", s.facts_applied, false},
      {"responses_applied", s.responses_applied, false},
      {"overlapped_applies", s.overlapped_applies, false},
      {"overlapped_checks", s.overlapped_checks, false},
      {"batch_calls", s.batch_calls, false},
      {"batch_items", s.batch_items, false},
      {"ir_time_ns", s.ir_time_ns, false},
      {"ltr_time_ns", s.ltr_time_ns, false},
      {"cache_entries", s.cache_entries, true},
      {"cache_evictions", s.cache_evictions, false},
      {"frontier_pending", s.frontier_pending, true},
      {"frontier_performed", s.frontier_performed, true},
  };
}

std::vector<CounterRow> StreamRows(const EngineStats& s) {
  return {
      {"registered", s.streams_registered, true},
      {"bindings", s.stream_bindings, true},
      {"new_bindings", s.stream_new_bindings, false},
      {"rechecks", s.stream_rechecks, false},
      {"skips", s.stream_skips, false},
      {"sticky_skips", s.stream_sticky_skips, false},
      {"events", s.stream_events, false},
      {"value_gate_skips", s.stream_value_gate_skips, false},
      {"value_gate_fallback_adom", s.stream_value_gate_fallback_adom, false},
      {"value_gate_fallback_dependent_ltr",
       s.stream_value_gate_fallback_dependent_ltr, false},
      {"value_gate_fallback_unconstrained",
       s.stream_value_gate_fallback_unconstrained, false},
      {"value_gate_semijoin_rechecks", s.stream_value_gate_semijoin, false},
      {"value_gate_newborn_rechecks", s.stream_value_gate_newborn, false},
      {"retained_evicted", s.stream_retained_evicted, false},
      {"degraded", s.stream_degraded, false},
  };
}

std::vector<CounterRow> ServerRows(const EngineStats& s) {
  return {
      {"sessions_opened", s.server_sessions_opened, false},
      {"sessions_resumed", s.server_sessions_resumed, false},
      {"sessions_retired", s.server_sessions_retired, false},
      {"sessions_reaped", s.server_sessions_reaped, false},
      {"sessions_shed", s.server_sessions_shed, false},
      {"sessions_active", s.server_sessions_active, true},
      {"requests", s.server_requests, false},
      {"requests_hello", s.server_requests_hello, false},
      {"requests_register_query", s.server_requests_register_query, false},
      {"requests_register_stream", s.server_requests_register_stream, false},
      {"requests_apply", s.server_requests_apply, false},
      {"requests_poll", s.server_requests_poll, false},
      {"requests_acknowledge", s.server_requests_acknowledge, false},
      {"requests_snapshot", s.server_requests_snapshot, false},
      {"requests_metrics", s.server_requests_metrics, false},
      {"requests_ping", s.server_requests_ping, false},
      {"errors", s.server_errors, false},
      {"bad_frames", s.server_bad_frames, false},
      {"applies_shed", s.server_applies_shed, false},
      {"streams_degraded", s.server_streams_degraded, false},
      {"cursor_evictions", s.server_cursor_evictions, false},
      {"backlog_high_water", s.server_backlog_high_water, true},
      {"dedup_hits", s.server_dedup_hits, false},
      {"dedup_stale", s.server_dedup_stale, false},
      {"deadline_rejections", s.server_deadline_rejections, false},
      {"drain_sheds", s.server_drain_sheds, false},
      {"sessions_recovered", s.server_sessions_recovered, false},
  };
}

std::vector<CounterRow> PersistRows(const EngineStats& s) {
  return {
      {"wal_records", s.wal_records, false},
      {"wal_bytes", s.wal_bytes, false},
      {"wal_fsyncs", s.wal_fsyncs, false},
      {"wal_commit_batches", s.wal_commit_batches, false},
      {"wal_commit_waiters", s.wal_commit_waiters, false},
      {"snapshots_written", s.snapshots_written, false},
      {"snapshot_bytes", s.snapshot_bytes, true},
      {"replay_records", s.replay_records, false},
      {"replay_facts", s.replay_facts, false},
      {"wal_truncated_tails", s.wal_truncated_tails, false},
  };
}

struct HistRow {
  const char* name;
  const HistogramSnapshot* h;
};

std::vector<HistRow> HistRows(const ObsSnapshot& o) {
  return {
      {"ir_decider_ns", &o.ir_decider_ns},
      {"ltr_decider_ns", &o.ltr_decider_ns},
      {"apply_ns", &o.apply_ns},
      {"batch_ns", &o.batch_ns},
      {"wave_ns", &o.wave_ns},
      {"wave_width", &o.wave_width},
      {"queue_wait_ns", &o.queue_wait_ns},
      {"source_ns", &o.source_ns},
      {"wal_fsync_ns", &o.wal_fsync_ns},
      {"wal_commit_ns", &o.wal_commit_ns},
      {"server_request_ns", &o.server_request_ns},
      {"server_apply_ns", &o.server_apply_ns},
      {"server_poll_ns", &o.server_poll_ns},
      {"server_register_ns", &o.server_register_ns},
  };
}

/// Attribution label of slot `i` of a by-relation vector whose trailing
/// slot is the Adom component.
std::string RelationLabel(const Schema* schema, size_t i, size_t size) {
  if (i + 1 == size) return "adom";
  if (schema != nullptr && i < schema->num_relations()) {
    return schema->relation(static_cast<RelationId>(i)).name;
  }
  return "r" + std::to_string(i);
}

void AppendAttribution(JsonWriter* w, const Schema* schema,
                       const std::vector<uint64_t>& by_relation) {
  w->BeginObject();
  for (size_t i = 0; i < by_relation.size(); ++i) {
    w->Field(RelationLabel(schema, i, by_relation.size()), by_relation[i]);
  }
  w->EndObject();
}

}  // namespace

void AppendHistogramJson(JsonWriter* w, const HistogramSnapshot& h) {
  w->BeginObject()
      .Field("count", h.count)
      .Field("mean", h.mean())
      .Field("p50", h.Percentile(50))
      .Field("p90", h.Percentile(90))
      .Field("p99", h.Percentile(99))
      .Field("max", h.max)
      .EndObject();
}

std::string ExportMetricsJson(const MetricsExport& m) {
  JsonWriter w;
  w.BeginObject();

  w.Key("engine").BeginObject();
  for (const CounterRow& row : EngineRows(m.stats)) {
    w.Field(row.name, row.value);
  }
  w.Field("apply_admission_rejections", m.stats.apply_admission_rejections);
  w.Field("cache_hit_rate", m.stats.cache_hit_rate());
  w.Field("mean_ir_decider_ns", m.stats.mean_ir_decider_ns());
  w.Field("mean_ltr_decider_ns", m.stats.mean_ltr_decider_ns());
  w.Key("invalidations_by_relation");
  AppendAttribution(&w, m.schema, m.stats.invalidations_by_relation);
  w.EndObject();

  w.Key("streams").BeginObject();
  for (const CounterRow& row : StreamRows(m.stats)) {
    w.Field(row.name, row.value);
  }
  w.Key("rechecks_by_relation");
  AppendAttribution(&w, m.schema, m.stats.stream_rechecks_by_relation);
  w.EndObject();

  w.Key("persist").BeginObject();
  for (const CounterRow& row : PersistRows(m.stats)) {
    w.Field(row.name, row.value);
  }
  w.EndObject();

  w.Key("server").BeginObject();
  for (const CounterRow& row : ServerRows(m.stats)) {
    w.Field(row.name, row.value);
  }
  w.EndObject();

  w.Key("latency").BeginObject();
  for (const HistRow& row : HistRows(m.obs)) {
    w.Key(row.name);
    AppendHistogramJson(&w, *row.h);
  }
  w.EndObject();

  if (!m.trace_json.empty()) w.Key("trace").Raw(m.trace_json);

  w.EndObject();
  return w.str();
}

std::string ExportMetricsPrometheus(const MetricsExport& m) {
  std::string out;
  out.reserve(4096);
  auto line = [&out](const std::string& s) {
    out += s;
    out += '\n';
  };
  auto counter = [&](const std::string& name, uint64_t value, bool gauge) {
    line("# TYPE " + name + (gauge ? " gauge" : " counter"));
    line(name + " " + std::to_string(value));
  };

  for (const CounterRow& row : EngineRows(m.stats)) {
    counter("rar_engine_" + std::string(row.name) +
                (row.gauge ? "" : "_total"),
            row.value, row.gauge);
  }
  for (const CounterRow& row : StreamRows(m.stats)) {
    counter("rar_stream_" + std::string(row.name) +
                (row.gauge ? "" : "_total"),
            row.value, row.gauge);
  }
  for (const CounterRow& row : PersistRows(m.stats)) {
    counter("rar_persist_" + std::string(row.name) +
                (row.gauge ? "" : "_total"),
            row.value, row.gauge);
  }
  counter("rar_engine_apply_admission_rejections_total",
          m.stats.apply_admission_rejections, false);
  for (const CounterRow& row : ServerRows(m.stats)) {
    counter("rar_server_" + std::string(row.name) +
                (row.gauge ? "" : "_total"),
            row.value, row.gauge);
  }

  if (!m.stats.invalidations_by_relation.empty()) {
    line("# TYPE rar_engine_invalidations_by_relation_total counter");
    const auto& inv = m.stats.invalidations_by_relation;
    for (size_t i = 0; i < inv.size(); ++i) {
      line("rar_engine_invalidations_by_relation_total{relation=\"" +
           RelationLabel(m.schema, i, inv.size()) + "\"} " +
           std::to_string(inv[i]));
    }
  }
  if (!m.stats.stream_rechecks_by_relation.empty()) {
    line("# TYPE rar_stream_rechecks_by_relation_total counter");
    const auto& rc = m.stats.stream_rechecks_by_relation;
    for (size_t i = 0; i < rc.size(); ++i) {
      line("rar_stream_rechecks_by_relation_total{relation=\"" +
           RelationLabel(m.schema, i, rc.size()) + "\"} " +
           std::to_string(rc[i]));
    }
  }

  for (const HistRow& row : HistRows(m.obs)) {
    const std::string name = "rar_" + std::string(row.name);
    line("# TYPE " + name + " summary");
    line(name + "{quantile=\"0.5\"} " + std::to_string(row.h->Percentile(50)));
    line(name + "{quantile=\"0.9\"} " + std::to_string(row.h->Percentile(90)));
    line(name + "{quantile=\"0.99\"} " +
         std::to_string(row.h->Percentile(99)));
    line(name + "_sum " + std::to_string(row.h->sum));
    line(name + "_count " + std::to_string(row.h->count));
    line("# TYPE " + name + "_max gauge");
    line(name + "_max " + std::to_string(row.h->max));
  }
  return out;
}

}  // namespace rar
