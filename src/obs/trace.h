// Structured trace events over a fixed-capacity lock-free MPSC ring.
//
// The runtime's counters say *how much* happened; the trace says *what*,
// in order, for the last N events: which apply landed which facts at
// which version bracket, what each recheck wave touched versus skipped
// and why it fell back, what each check decided and whether the cache
// served it. Events are recorded from hot paths under sampling — with
// the sample period 0 (the default) every instrumentation site reduces
// to one relaxed atomic load, so tracing costs nothing until turned on.
//
// Concurrency: writers claim a slot with one fetch_add and publish it
// seqlock-style (odd sequence while writing, even when committed); every
// slot word is an atomic, so concurrent writers that lap each other and
// the postmortem reader are race-free by construction — a reader that
// observes a torn slot (sequence moved mid-read) drops it instead of
// reporting garbage. `DumpJson` renders the last N committed events for
// postmortem inspection; it is the single-consumer side (concurrent
// dumps are safe but may each drop in-flight slots).
#ifndef RAR_OBS_TRACE_H_
#define RAR_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/histogram.h"

namespace rar {

/// \brief What a trace event describes.
enum class TraceEventKind : uint8_t {
  kNone = 0,
  kApply,  ///< one absorbed ApplyResponse
  kWave,   ///< one stream recheck wave
  kCheck,  ///< one engine relevance check
};

/// \brief Why a recheck wave re-evaluated instead of value-gating
/// (mirrors the stream_value_gate_fallback_* counters).
enum class WaveFallbackReason : uint8_t {
  kNone = 0,        ///< value-gated (or nothing was stale)
  kAdomGrowth,      ///< the apply grew the active domain: full recheck
  kDependentLtr,    ///< dependent-method LTR stream: gate unsupported
  kForcedFull,      ///< force_full_recheck / registration / refresh
  kAdomDelta,       ///< Adom growth gated to {touched, newborn, residual}
};

const char* ToString(TraceEventKind kind);
const char* ToString(WaveFallbackReason reason);

/// \brief One structured event. Field meaning by kind:
///
///  kApply: id = relation, id2 = facts_added, a = relation version after
///          the apply, b = version before (a - facts_added: the bracket),
///          flag_a = adom_grew, ns = end-to-end ApplyResponse latency.
///  kWave:  id = attributed relation (num_relations for registration /
///          Adom waves), id2 = stream id, a = bindings re-evaluated,
///          b = bindings skipped (stamp-valid + value-gated + settled),
///          detail = WaveFallbackReason, ns = wave duration.
///  kCheck: id = query id, detail = CheckKind (0 = IR, 1 = LTR),
///          flag_a = relevant, flag_b = served from cache, ns = check
///          latency.
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kNone;
  uint8_t detail = 0;
  bool flag_a = false;
  bool flag_b = false;
  uint32_t id = 0;
  uint32_t id2 = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t ns = 0;
  uint64_t timestamp_ns = 0;  ///< MonotonicNs at record time
  uint64_t seq = 0;           ///< global record order (assigned by buffer)
};

/// \brief Fixed-capacity multi-producer ring of TraceEvents.
class TraceBuffer {
 public:
  /// `capacity` is rounded up to a power of two (min 64);
  /// `sample_period` of 0 disables recording, 1 records everything, N
  /// records every Nth sampled site.
  explicit TraceBuffer(size_t capacity, uint32_t sample_period = 0);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// The recording gate every instrumentation site calls first. One
  /// relaxed load when sampling is off; one extra fetch_add when on.
  bool ShouldSample() {
    const uint32_t period = sample_period_.load(std::memory_order_relaxed);
    if (period == 0) return false;
    if (period == 1) return true;
    return sample_ticket_.fetch_add(1, std::memory_order_relaxed) % period ==
           0;
  }

  bool enabled() const {
    return sample_period_.load(std::memory_order_relaxed) != 0;
  }

  /// Changes the sampling period at runtime (0 stops recording).
  void SetSamplePeriod(uint32_t period) {
    sample_period_.store(period, std::memory_order_relaxed);
  }

  /// Publishes one event (timestamp and seq are assigned here).
  void Record(TraceEvent event);

  /// Events recorded so far (including ones the ring already overwrote).
  uint64_t total_recorded() const {
    return head_.load(std::memory_order_acquire);
  }

  size_t capacity() const { return capacity_; }

  /// The last (up to) `n` committed events, oldest first. Slots being
  /// overwritten mid-read are dropped, never misreported.
  std::vector<TraceEvent> LastEvents(size_t n) const;

  /// JSON array of the last `n` events (schema documented in DESIGN.md,
  /// "Observability").
  std::string DumpJson(size_t n) const;

 private:
  /// Seqlock-published slot: `seq` is 2*ticket+1 while the owning writer
  /// fills the words, 2*ticket+2 once committed.
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> words[6];
  };

  static void Encode(const TraceEvent& e, Slot* slot);
  /// False when the slot was torn (sequence moved during the read).
  static bool Decode(const Slot& slot, uint64_t expect_seq, TraceEvent* out);

  std::atomic<uint32_t> sample_period_;
  std::atomic<uint64_t> sample_ticket_{0};
  std::atomic<uint64_t> head_{0};
  size_t capacity_;
  size_t mask_;
  std::unique_ptr<Slot[]> slots_;
};

/// \brief RAII span: captures the start time only when the buffer samples
/// this event, fills in the duration and records on destruction. Sampling
/// off: construction is the single relaxed load of ShouldSample.
class TraceSpan {
 public:
  TraceSpan(TraceBuffer* buffer, TraceEventKind kind) {
    if (buffer != nullptr && buffer->ShouldSample()) {
      buffer_ = buffer;
      start_ns_ = MonotonicNs();
      event_.kind = kind;
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (buffer_ != nullptr) {
      event_.ns = MonotonicNs() - start_ns_;
      buffer_->Record(event_);
    }
  }

  /// True when this span was sampled — guard for filling event fields.
  bool active() const { return buffer_ != nullptr; }
  TraceEvent& event() { return event_; }

 private:
  TraceBuffer* buffer_ = nullptr;
  uint64_t start_ns_ = 0;
  TraceEvent event_;
};

}  // namespace rar

#endif  // RAR_OBS_TRACE_H_
