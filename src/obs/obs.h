// The engine's observability bundle: every latency/width histogram the
// hot paths feed, plus the structured trace ring. One instance lives
// inside each RelevanceEngine (`engine.obs()`); the stream registry, the
// worker pool and the mediator record into the same bundle, so one
// snapshot attributes the whole runtime — decider tails, apply
// end-to-end, wave fan-out, batch latency, queue wait and source
// round-trips — next to the flat EngineStats counters.
#ifndef RAR_OBS_OBS_H_
#define RAR_OBS_OBS_H_

#include <cstdint>

#include "obs/histogram.h"
#include "obs/trace.h"

namespace rar {

/// \brief Construction-time knobs for an engine's observability bundle.
struct ObsOptions {
  /// Trace ring capacity (events; rounded up to a power of two).
  size_t trace_capacity = 4096;
  /// Trace sampling: 0 = off (every site is one relaxed load), 1 = every
  /// event, N = every Nth sampled site.
  uint32_t trace_sample_period = 0;
};

/// \brief Point-in-time copy of every histogram in the bundle.
struct ObsSnapshot {
  HistogramSnapshot ir_decider_ns;   ///< uncached IR decider wall time
  HistogramSnapshot ltr_decider_ns;  ///< uncached LTR decider wall time
  HistogramSnapshot apply_ns;        ///< ApplyResponse end-to-end latency
  HistogramSnapshot batch_ns;        ///< CheckBatch/CheckMany batch latency
  HistogramSnapshot wave_ns;         ///< stream recheck-wave duration
  HistogramSnapshot wave_width;      ///< bindings re-evaluated per wave
  HistogramSnapshot queue_wait_ns;   ///< worker-pool task queue wait
  HistogramSnapshot source_ns;       ///< simulated source round-trip
  HistogramSnapshot wal_fsync_ns;    ///< each physical WAL fsync
  HistogramSnapshot wal_commit_ns;   ///< WaitDurable end-to-end (group commit)
  HistogramSnapshot server_request_ns;   ///< session-server dispatch, any type
  HistogramSnapshot server_apply_ns;     ///< kApply requests end-to-end
  HistogramSnapshot server_poll_ns;      ///< kPoll requests end-to-end
  HistogramSnapshot server_register_ns;  ///< kRegisterQuery/Stream requests

  void Merge(const ObsSnapshot& other) {
    ir_decider_ns.Merge(other.ir_decider_ns);
    ltr_decider_ns.Merge(other.ltr_decider_ns);
    apply_ns.Merge(other.apply_ns);
    batch_ns.Merge(other.batch_ns);
    wave_ns.Merge(other.wave_ns);
    wave_width.Merge(other.wave_width);
    queue_wait_ns.Merge(other.queue_wait_ns);
    source_ns.Merge(other.source_ns);
    wal_fsync_ns.Merge(other.wal_fsync_ns);
    wal_commit_ns.Merge(other.wal_commit_ns);
    server_request_ns.Merge(other.server_request_ns);
    server_apply_ns.Merge(other.server_apply_ns);
    server_poll_ns.Merge(other.server_poll_ns);
    server_register_ns.Merge(other.server_register_ns);
  }
};

/// \brief The live recording side (histograms + trace ring). Every member
/// is individually thread-safe; there is no bundle-wide lock to contend.
class EngineObservability {
 public:
  explicit EngineObservability(const ObsOptions& options = {})
      : trace_(options.trace_capacity, options.trace_sample_period) {}

  EngineObservability(const EngineObservability&) = delete;
  EngineObservability& operator=(const EngineObservability&) = delete;

  Histogram ir_decider_ns;
  Histogram ltr_decider_ns;
  Histogram apply_ns;
  Histogram batch_ns;
  Histogram wave_ns;
  Histogram wave_width;
  Histogram queue_wait_ns;
  Histogram source_ns;
  Histogram wal_fsync_ns;
  Histogram wal_commit_ns;
  Histogram server_request_ns;
  Histogram server_apply_ns;
  Histogram server_poll_ns;
  Histogram server_register_ns;

  TraceBuffer& trace() { return trace_; }
  const TraceBuffer& trace() const { return trace_; }

  ObsSnapshot Snapshot() const {
    ObsSnapshot s;
    s.ir_decider_ns = ir_decider_ns.Snapshot();
    s.ltr_decider_ns = ltr_decider_ns.Snapshot();
    s.apply_ns = apply_ns.Snapshot();
    s.batch_ns = batch_ns.Snapshot();
    s.wave_ns = wave_ns.Snapshot();
    s.wave_width = wave_width.Snapshot();
    s.queue_wait_ns = queue_wait_ns.Snapshot();
    s.source_ns = source_ns.Snapshot();
    s.wal_fsync_ns = wal_fsync_ns.Snapshot();
    s.wal_commit_ns = wal_commit_ns.Snapshot();
    s.server_request_ns = server_request_ns.Snapshot();
    s.server_apply_ns = server_apply_ns.Snapshot();
    s.server_poll_ns = server_poll_ns.Snapshot();
    s.server_register_ns = server_register_ns.Snapshot();
    return s;
  }

 private:
  TraceBuffer trace_;
};

}  // namespace rar

#endif  // RAR_OBS_OBS_H_
