#include "obs/trace.h"

#include <algorithm>
#include <sstream>

namespace rar {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 64;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* ToString(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kNone:
      return "none";
    case TraceEventKind::kApply:
      return "apply";
    case TraceEventKind::kWave:
      return "wave";
    case TraceEventKind::kCheck:
      return "check";
  }
  return "?";
}

const char* ToString(WaveFallbackReason reason) {
  switch (reason) {
    case WaveFallbackReason::kNone:
      return "none";
    case WaveFallbackReason::kAdomGrowth:
      return "adom_growth";
    case WaveFallbackReason::kDependentLtr:
      return "dependent_ltr";
    case WaveFallbackReason::kForcedFull:
      return "forced_full";
    case WaveFallbackReason::kAdomDelta:
      return "adom_delta";
  }
  return "?";
}

TraceBuffer::TraceBuffer(size_t capacity, uint32_t sample_period)
    : sample_period_(sample_period),
      capacity_(RoundUpPow2(capacity)),
      mask_(capacity_ - 1),
      slots_(new Slot[capacity_]) {}

void TraceBuffer::Encode(const TraceEvent& e, Slot* slot) {
  const uint64_t packed = static_cast<uint64_t>(e.kind) |
                          (static_cast<uint64_t>(e.detail) << 8) |
                          (static_cast<uint64_t>(e.flag_a ? 1 : 0) << 16) |
                          (static_cast<uint64_t>(e.flag_b ? 1 : 0) << 17) |
                          (static_cast<uint64_t>(e.id) << 32);
  slot->words[0].store(packed, std::memory_order_relaxed);
  slot->words[1].store(static_cast<uint64_t>(e.id2), std::memory_order_relaxed);
  slot->words[2].store(e.a, std::memory_order_relaxed);
  slot->words[3].store(e.b, std::memory_order_relaxed);
  slot->words[4].store(e.ns, std::memory_order_relaxed);
  slot->words[5].store(e.timestamp_ns, std::memory_order_relaxed);
}

bool TraceBuffer::Decode(const Slot& slot, uint64_t expect_seq,
                         TraceEvent* out) {
  const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
  if (s1 != expect_seq) return false;  // overwritten or still being written
  const uint64_t w0 = slot.words[0].load(std::memory_order_relaxed);
  const uint64_t w1 = slot.words[1].load(std::memory_order_relaxed);
  const uint64_t w2 = slot.words[2].load(std::memory_order_relaxed);
  const uint64_t w3 = slot.words[3].load(std::memory_order_relaxed);
  const uint64_t w4 = slot.words[4].load(std::memory_order_relaxed);
  const uint64_t w5 = slot.words[5].load(std::memory_order_relaxed);
  // Orders the word loads above before the re-read of seq below: a writer
  // that raced us moved seq first (release), so the re-read catches it.
  std::atomic_thread_fence(std::memory_order_acquire);
  if (slot.seq.load(std::memory_order_relaxed) != s1) return false;
  out->kind = static_cast<TraceEventKind>(w0 & 0xff);
  out->detail = static_cast<uint8_t>((w0 >> 8) & 0xff);
  out->flag_a = ((w0 >> 16) & 1) != 0;
  out->flag_b = ((w0 >> 17) & 1) != 0;
  out->id = static_cast<uint32_t>(w0 >> 32);
  out->id2 = static_cast<uint32_t>(w1);
  out->a = w2;
  out->b = w3;
  out->ns = w4;
  out->timestamp_ns = w5;
  return true;
}

void TraceBuffer::Record(TraceEvent event) {
  const uint64_t ticket = head_.fetch_add(1, std::memory_order_acq_rel);
  event.timestamp_ns = MonotonicNs();
  event.seq = ticket;
  Slot& slot = slots_[ticket & mask_];
  // Odd = in progress. A writer lapping a slower one simply wins the slot;
  // the loser's commit leaves a sequence the reader rejects for both
  // tickets, so at worst one stale event is dropped — never torn output.
  slot.seq.store(2 * ticket + 1, std::memory_order_release);
  Encode(event, &slot);
  slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

std::vector<TraceEvent> TraceBuffer::LastEvents(size_t n) const {
  std::vector<TraceEvent> out;
  const uint64_t head = head_.load(std::memory_order_acquire);
  if (head == 0 || n == 0) return out;
  const uint64_t window = std::min<uint64_t>({n, capacity_, head});
  out.reserve(window);
  // Oldest first; tickets in [head - window, head).
  for (uint64_t ticket = head - window; ticket < head; ++ticket) {
    TraceEvent e;
    if (Decode(slots_[ticket & mask_], 2 * ticket + 2, &e)) {
      e.seq = ticket;
      out.push_back(e);
    }
  }
  return out;
}

std::string TraceBuffer::DumpJson(size_t n) const {
  std::vector<TraceEvent> events = LastEvents(n);
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) os << ",";
    os << "{\"seq\":" << e.seq << ",\"kind\":\"" << ToString(e.kind)
       << "\",\"t_ns\":" << e.timestamp_ns << ",\"ns\":" << e.ns;
    switch (e.kind) {
      case TraceEventKind::kApply:
        os << ",\"relation\":" << e.id << ",\"facts\":" << e.id2
           << ",\"version_before\":" << e.b << ",\"version_after\":" << e.a
           << ",\"adom_grew\":" << (e.flag_a ? "true" : "false");
        break;
      case TraceEventKind::kWave:
        os << ",\"relation\":" << e.id << ",\"stream\":" << e.id2
           << ",\"rechecked\":" << e.a << ",\"skipped\":" << e.b
           << ",\"fallback\":\""
           << ToString(static_cast<WaveFallbackReason>(e.detail)) << "\"";
        break;
      case TraceEventKind::kCheck:
        os << ",\"query\":" << e.id << ",\"check\":\""
           << (e.detail == 0 ? "ir" : "ltr") << "\",\"relevant\":"
           << (e.flag_a ? "true" : "false")
           << ",\"cached\":" << (e.flag_b ? "true" : "false");
        break;
      case TraceEventKind::kNone:
        break;
    }
    os << "}";
  }
  os << "]";
  return os.str();
}

}  // namespace rar
