// Lock-free log-bucketed histograms for runtime latency attribution.
//
// `Histogram` is the recording side: a fixed array of relaxed atomic
// bucket counters plus exact count/sum/max, so `Record` on a hot path is
// two-to-four uncontended fetch_adds and never takes a lock (mirroring
// the EngineCounters discipline — telemetry, not synchronisation).
// Buckets are log-linear: values below 2^kSubBits get exact unit buckets,
// larger values split each power-of-two range into 2^kSubBits linear
// sub-buckets, bounding the relative quantile error at 1/2^kSubBits
// (12.5%) across the full uint64 range in under 4 KiB per histogram.
//
// `HistogramSnapshot` is the reporting side: a plain copy taken with
// relaxed loads (momentary cross-field skew is fine, like EngineStats),
// mergeable across histograms/engines, with percentile estimation against
// the bucket boundaries. The estimator returns the *upper bound* of the
// bucket holding the rank-th recorded value (clamped to the exact
// recorded max), so tests can pin it against a sorted-vector oracle:
// the true rank-th value always lands in the same bucket.
#ifndef RAR_OBS_HISTOGRAM_H_
#define RAR_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

namespace rar {

/// Monotonic wall-clock in nanoseconds (the time base every obs span and
/// histogram record shares).
inline uint64_t MonotonicNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// \brief A point-in-time copy of one histogram, mergeable and queryable.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::vector<uint64_t> buckets;  ///< dense, Histogram::kNumBuckets long

  double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }

  /// Upper bound of the bucket containing the value of rank ceil(p% of
  /// count), clamped to the exact recorded max; 0 when empty. p in
  /// [0, 100].
  uint64_t Percentile(double p) const;

  /// Folds `other` in (bucket-wise sum; exact count/sum/max combine).
  void Merge(const HistogramSnapshot& other);
};

/// \brief Lock-free log-linear histogram of uint64 samples (latencies in
/// ns, widths in bindings, ...). All methods are safe to call
/// concurrently.
class Histogram {
 public:
  /// Linear sub-bucket resolution: each power-of-two range splits into
  /// 2^kSubBits buckets (relative error <= 1/2^kSubBits).
  static constexpr int kSubBits = 3;
  static constexpr int kSubBuckets = 1 << kSubBits;
  /// Values in [0, kSubBuckets) take unit buckets; each of the 64-kSubBits
  /// remaining exponents contributes kSubBuckets buckets.
  static constexpr int kNumBuckets = kSubBuckets + (64 - kSubBits) * kSubBuckets;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < value &&
           !max_.compare_exchange_weak(prev, value,
                                       std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  HistogramSnapshot Snapshot() const;

  /// Resets every counter to zero (not atomic across buckets; callers
  /// reset only while recording is quiesced — e.g. bench warm-up).
  void Reset();

  /// Log-linear index of `value` (total order preserved: v1 <= v2 implies
  /// BucketIndex(v1) <= BucketIndex(v2)).
  static int BucketIndex(uint64_t value);
  /// Smallest value mapping to bucket `index`.
  static uint64_t BucketLowerBound(int index);
  /// Largest value mapping to bucket `index`.
  static uint64_t BucketUpperBound(int index);

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

/// \brief RAII timer: records the elapsed nanoseconds of its scope into a
/// histogram (nullptr = disabled, and the clock is never read).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h)
      : h_(h), start_ns_(h != nullptr ? MonotonicNs() : 0) {}
  ~ScopedTimer() {
    if (h_ != nullptr) h_->Record(MonotonicNs() - start_ns_);
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  uint64_t start_ns_;
};

}  // namespace rar

#endif  // RAR_OBS_HISTOGRAM_H_
