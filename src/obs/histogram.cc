#include "obs/histogram.h"

#include <algorithm>
#include <cmath>

namespace rar {

namespace {

/// Position of the most significant set bit (value > 0).
int MsbIndex(uint64_t value) {
#if defined(__GNUC__) || defined(__clang__)
  return 63 - __builtin_clzll(value);
#else
  int msb = 0;
  while (value >>= 1) ++msb;
  return msb;
#endif
}

}  // namespace

int Histogram::BucketIndex(uint64_t value) {
  if (value < static_cast<uint64_t>(kSubBuckets)) {
    return static_cast<int>(value);
  }
  const int msb = MsbIndex(value);
  const int shift = msb - kSubBits;
  const int sub = static_cast<int>((value >> shift) & (kSubBuckets - 1));
  // Exponent m occupies block m - kSubBits + 1 (block 0 is the unit
  // range); blocks are kSubBuckets wide and contiguous, so the mapping is
  // monotone across the whole range.
  return (msb - kSubBits + 1) * kSubBuckets + sub;
}

uint64_t Histogram::BucketLowerBound(int index) {
  if (index < kSubBuckets) return static_cast<uint64_t>(index);
  const int block = index / kSubBuckets;  // >= 1
  const int sub = index % kSubBuckets;
  const int msb = block + kSubBits - 1;
  return (static_cast<uint64_t>(kSubBuckets) + sub) << (msb - kSubBits);
}

uint64_t Histogram::BucketUpperBound(int index) {
  if (index + 1 >= kNumBuckets) return ~uint64_t{0};
  return BucketLowerBound(index + 1) - 1;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  s.buckets.resize(kNumBuckets);
  for (int i = 0; i < kNumBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

uint64_t HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0;
  p = std::min(std::max(p, 0.0), 100.0);
  // Rank of the requested order statistic, 1-based; p=0 asks for the
  // smallest recorded value.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(p / 100.0 *
                                         static_cast<double>(count))));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      return std::min(Histogram::BucketUpperBound(static_cast<int>(i)), max);
    }
  }
  return max;  // cross-field skew in a live snapshot: fall back to max
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size(), 0);
  }
  for (size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
}

}  // namespace rar
