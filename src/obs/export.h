// The unified metrics exporter: EngineStats + histogram snapshots +
// per-relation/per-stream attribution rendered as canonical JSON and as
// Prometheus text exposition format, from one shared description of the
// metric set (so the two outputs can never drift).
//
// `JsonWriter` is the small building block the benches and examples use
// instead of hand-rolled string concatenation: automatic comma placement,
// string escaping, stable number formatting (doubles rendered with
// enough digits to round-trip, never in scientific notation — every line
// stays `jq`/`python -m json.tool` clean).
#ifndef RAR_OBS_EXPORT_H_
#define RAR_OBS_EXPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/stats.h"
#include "obs/obs.h"
#include "relational/schema.h"

namespace rar {

/// \brief Minimal streaming JSON builder (objects/arrays, escaped
/// strings, canonical numbers). Not validating — callers balance their
/// Begin/End pairs; every Key must precede exactly one value.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(const std::string& key);

  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(int v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Value(double v);
  JsonWriter& Value(bool v);
  JsonWriter& Value(const char* v);
  JsonWriter& Value(const std::string& v);
  /// Splices a pre-rendered JSON fragment (e.g. TraceBuffer::DumpJson).
  JsonWriter& Raw(const std::string& json);

  /// Key + value in one call.
  template <typename T>
  JsonWriter& Field(const std::string& key, const T& v) {
    Key(key);
    return Value(v);
  }

  const std::string& str() const { return out_; }

  static std::string Escape(const std::string& s);

 private:
  void Separate();

  std::string out_;
  /// One entry per open container: true once the first element landed.
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

/// \brief Everything the exporter renders. `schema` (optional) turns
/// per-relation attribution indices into relation names; `trace_json`
/// (optional) is embedded verbatim under "trace".
struct MetricsExport {
  EngineStats stats;
  ObsSnapshot obs;
  const Schema* schema = nullptr;
  std::string trace_json;
};

/// Canonical JSON document: {"engine":{...},"streams":{...},
/// "latency":{<name>:{count,mean,p50,p90,p99,max}},"trace":[...]}.
std::string ExportMetricsJson(const MetricsExport& m);

/// Prometheus text exposition format: counters as `rar_<name>_total`,
/// attribution vectors with a `relation` label, histograms as summaries
/// (`_count`/`_sum`/quantile series). Endpoint-ready: serve the string
/// as text/plain and a Prometheus scraper ingests it as-is.
std::string ExportMetricsPrometheus(const MetricsExport& m);

/// Appends one histogram as {"count":..,"mean":..,"p50":..,"p90":..,
/// "p99":..,"max":..} — the value the writer is currently positioned for
/// (after Key, or as an array element).
void AppendHistogramJson(JsonWriter* w, const HistogramSnapshot& h);

}  // namespace rar

#endif  // RAR_OBS_EXPORT_H_
