#include "hardness/encode_nexptime.h"

#include <string>
#include <vector>

#include "hardness/bool_circuit.h"

namespace rar {

namespace {

// Emits a complete binary-operator truth table into the configuration.
void AddTruthTable(Configuration* conf, RelationId rel, Value zero, Value one,
                   bool (*op)(bool, bool)) {
  const Value bits[2] = {zero, one};
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      conf->AddFact(Fact(rel, {bits[a], bits[b], bits[op(a, b)]}));
    }
  }
}

}  // namespace

Result<EncodedContainment> EncodeNexptimeTiling(const TilingInstance& tiling,
                                                int n) {
  if (n < 1 || n > 16) {
    return Status::InvalidArgument("corridor exponent n must be in [1,16]");
  }
  const int k = tiling.num_tile_types;
  if (k < 1) return Status::InvalidArgument("no tile types");
  const int m = static_cast<int>(tiling.initial_tiles.size());
  if (m < 2) {
    return Status::InvalidArgument(
        "the encoding needs at least two initial tiles (the first tile has "
        "no producer, so pairs involving only it would be undetectable)");
  }
  if (static_cast<uint64_t>(m) > (uint64_t{1} << n)) {
    return Status::InvalidArgument("more initial tiles than first-row cells");
  }
  for (int j = 0; j < m; ++j) {
    int t = tiling.initial_tiles[j];
    if (t < 0 || t >= k) return Status::InvalidArgument("bad initial tile");
    if (j > 0 && !tiling.HorizontalOk(tiling.initial_tiles[j - 1], t)) {
      return Status::InvalidArgument(
          "initial tiles violate the horizontal constraints");
    }
  }

  EncodedContainment out;
  out.schema = std::make_shared<Schema>();
  Schema& schema = *out.schema;
  DomainId B = schema.AddDomain("B");  // booleans
  DomainId T = schema.AddDomain("T");  // tile types
  DomainId C = schema.AddDomain("C");  // chain links

  RAR_ASSIGN_OR_RETURN(RelationId bool_rel,
                       schema.AddRelation("Bool", std::vector<DomainId>{B}));
  RAR_ASSIGN_OR_RETURN(RelationId tiletype_rel,
                       schema.AddRelation("TileType",
                                          std::vector<DomainId>{T}));
  RAR_ASSIGN_OR_RETURN(RelationId sametile_rel,
                       schema.AddRelation("SameTile",
                                          std::vector<DomainId>{T, T, B}));
  RAR_ASSIGN_OR_RETURN(RelationId horiz_rel,
                       schema.AddRelation("Horiz",
                                          std::vector<DomainId>{T, T, B}));
  RAR_ASSIGN_OR_RETURN(RelationId vert_rel,
                       schema.AddRelation("Vert",
                                          std::vector<DomainId>{T, T, B}));
  RAR_ASSIGN_OR_RETURN(RelationId and_rel,
                       schema.AddRelation("And",
                                          std::vector<DomainId>{B, B, B}));
  RAR_ASSIGN_OR_RETURN(RelationId or_rel,
                       schema.AddRelation("Or",
                                          std::vector<DomainId>{B, B, B}));
  RAR_ASSIGN_OR_RETURN(RelationId eq_rel,
                       schema.AddRelation("Eq",
                                          std::vector<DomainId>{B, B, B}));
  // Tile(type, row bits (MSB first), col bits, link-in, link-out).
  std::vector<DomainId> tile_domains;
  tile_domains.push_back(T);
  for (int i = 0; i < 2 * n; ++i) tile_domains.push_back(B);
  tile_domains.push_back(C);
  tile_domains.push_back(C);
  RAR_ASSIGN_OR_RETURN(RelationId tile_rel,
                       schema.AddRelation("Tile", tile_domains));

  // The single access method: every attribute but the chain output.
  out.acs = AccessMethodSet(out.schema.get());
  std::vector<int> inputs;
  for (int pos = 0; pos < 2 * n + 2; ++pos) inputs.push_back(pos);
  RAR_RETURN_NOT_OK(
      out.acs.Add("tile_access", tile_rel, inputs, /*dependent=*/true)
          .status());

  // Constants.
  Value zero = schema.InternConstant("0");
  Value one = schema.InternConstant("1");
  std::vector<Value> types;
  for (int t = 0; t < k; ++t) {
    types.push_back(schema.InternConstant("t" + std::to_string(t)));
  }
  std::vector<Value> links;
  for (int j = 0; j <= m; ++j) {
    links.push_back(schema.InternConstant("c" + std::to_string(j)));
  }

  // Configuration: truth tables, type tables, constraint tables, initial
  // chained tiles.
  out.conf = Configuration(out.schema.get());
  Configuration& conf = out.conf;
  conf.AddFact(Fact(bool_rel, {zero}));
  conf.AddFact(Fact(bool_rel, {one}));
  for (int t = 0; t < k; ++t) conf.AddFact(Fact(tiletype_rel, {types[t]}));
  const Value bits[2] = {zero, one};
  for (int a = 0; a < k; ++a) {
    for (int b = 0; b < k; ++b) {
      conf.AddFact(Fact(sametile_rel, {types[a], types[b], bits[a == b]}));
      conf.AddFact(
          Fact(horiz_rel, {types[a], types[b], bits[tiling.HorizontalOk(a, b)]}));
      conf.AddFact(
          Fact(vert_rel, {types[a], types[b], bits[tiling.VerticalOk(a, b)]}));
    }
  }
  AddTruthTable(&conf, and_rel, zero, one, [](bool a, bool b) { return a && b; });
  AddTruthTable(&conf, or_rel, zero, one, [](bool a, bool b) { return a || b; });
  AddTruthTable(&conf, eq_rel, zero, one, [](bool a, bool b) { return a == b; });

  auto coordinate_bits = [&](uint64_t value) {
    std::vector<Value> vec;
    for (int i = 0; i < n; ++i) {
      vec.push_back(bits[(value >> (n - 1 - i)) & 1]);
    }
    return vec;
  };
  for (int j = 0; j < m; ++j) {
    std::vector<Value> vals;
    vals.push_back(types[tiling.initial_tiles[j]]);
    for (const Value& b : coordinate_bits(0)) vals.push_back(b);  // row 0
    for (const Value& b : coordinate_bits(j)) vals.push_back(b);  // col j
    vals.push_back(links[j]);
    vals.push_back(links[j + 1]);
    conf.AddFact(Fact(tile_rel, vals));
  }

  // ---- Q1: the last cell is reached.
  {
    ConjunctiveQuery q1;
    VarId u = q1.AddVar("U");
    VarId x = q1.AddVar("X");
    VarId y = q1.AddVar("Y");
    Atom atom;
    atom.relation = tile_rel;
    atom.terms.push_back(Term::MakeVar(u));
    const uint64_t last = (uint64_t{1} << n) - 1;
    for (const Value& b : coordinate_bits(last)) {
      atom.terms.push_back(Term::MakeConst(b));
    }
    for (const Value& b : coordinate_bits(last)) {
      atom.terms.push_back(Term::MakeConst(b));
    }
    atom.terms.push_back(Term::MakeVar(x));
    atom.terms.push_back(Term::MakeVar(y));
    q1.atoms.push_back(std::move(atom));
    RAR_RETURN_NOT_OK(q1.Validate(schema));
    out.contained.disjuncts.push_back(std::move(q1));
  }

  // ---- Q2: "something is wrong with the chain".
  {
    ConjunctiveQuery q2;
    // Four Tile atoms. Variable vectors per atom.
    struct TileAtom {
      Term type;
      std::vector<Term> row, col;
      Term in, out;
    };
    auto add_tile_atom = [&](const std::string& prefix, Term in,
                             Term out) -> TileAtom {
      TileAtom ta;
      ta.type = Term::MakeVar(q2.AddVar(prefix + "_t"));
      for (int i = 0; i < n; ++i) {
        ta.row.push_back(Term::MakeVar(q2.AddVar(prefix + "_r" +
                                                 std::to_string(i))));
      }
      for (int i = 0; i < n; ++i) {
        ta.col.push_back(Term::MakeVar(q2.AddVar(prefix + "_c" +
                                                 std::to_string(i))));
      }
      ta.in = in;
      ta.out = out;
      Atom atom;
      atom.relation = tile_rel;
      atom.terms.push_back(ta.type);
      for (const Term& t : ta.row) atom.terms.push_back(t);
      for (const Term& t : ta.col) atom.terms.push_back(t);
      atom.terms.push_back(ta.in);
      atom.terms.push_back(ta.out);
      q2.atoms.push_back(std::move(atom));
      return ta;
    };

    Term x = Term::MakeVar(q2.AddVar("X"));
    Term y = Term::MakeVar(q2.AddVar("Y"));
    Term z = Term::MakeVar(q2.AddVar("Z"));
    Term yp = Term::MakeVar(q2.AddVar("Yp"));
    Term zp = Term::MakeVar(q2.AddVar("Zp"));
    Term zpp = Term::MakeVar(q2.AddVar("Zpp"));

    // A1 -> A2 linked through y; A3 and A4 share their link input y'.
    TileAtom a1 = add_tile_atom("a1", x, y);
    TileAtom a2 = add_tile_atom("a2", y, z);
    TileAtom a3 = add_tile_atom("a3", yp, zp);
    TileAtom a4 = add_tile_atom("a4", yp, zpp);

    BoolCircuit circuit(&q2, and_rel, or_rel, eq_rel, zero, one);

    // SUB1: i1 = 1 iff A3 and A4 carry the same coordinates (the FD from
    // the link input to the coordinate bits holds for this pair).
    std::vector<Term> a3_bits = a3.row;
    a3_bits.insert(a3_bits.end(), a3.col.begin(), a3.col.end());
    std::vector<Term> a4_bits = a4.row;
    a4_bits.insert(a4_bits.end(), a4.col.begin(), a4.col.end());
    Term i1 = circuit.VectorEq(a3_bits, a4_bits);

    // SUB2: i2 = 1 iff A2's 2n-bit counter is A1's plus one.
    std::vector<Term> a1_bits = a1.row;
    a1_bits.insert(a1_bits.end(), a1.col.begin(), a1.col.end());
    std::vector<Term> a2_bits = a2.row;
    a2_bits.insert(a2_bits.end(), a2.col.begin(), a2.col.end());
    Term i2 = circuit.Successor(a1_bits, a2_bits);

    // SUB3: i3 = 0 iff A2/A3 witness an adjacency violation or A3 sits on
    // a wrongly-typed initial cell. The *later* cell (right / above) plays
    // A2 — the role that must be reachable through a link.
    Term horiz_flag = Term::MakeVar(q2.AddVar("hb"));
    q2.atoms.push_back(Atom{horiz_rel, {a3.type, a2.type, horiz_flag}});
    Term hviol = circuit.AndAll({circuit.VectorEq(a2.row, a3.row),
                                 circuit.Successor(a3.col, a2.col),
                                 circuit.IsZero(horiz_flag)});

    Term vert_flag = Term::MakeVar(q2.AddVar("vb"));
    q2.atoms.push_back(Atom{vert_rel, {a3.type, a2.type, vert_flag}});
    Term vviol = circuit.AndAll({circuit.VectorEq(a2.col, a3.col),
                                 circuit.Successor(a3.row, a2.row),
                                 circuit.IsZero(vert_flag)});

    std::vector<Term> viols = {hviol, vviol};
    for (int j = 0; j < m; ++j) {
      Term same_flag = Term::MakeVar(q2.AddVar("st" + std::to_string(j)));
      q2.atoms.push_back(
          Atom{sametile_rel,
               {a3.type, Term::MakeConst(types[tiling.initial_tiles[j]]),
                same_flag}});
      viols.push_back(circuit.AndAll(
          {circuit.VectorIs(a3.row, 0),
           circuit.VectorIs(a3.col, static_cast<uint64_t>(j)),
           circuit.IsZero(same_flag)}));
    }
    Term i3 = circuit.Not(circuit.OrAll(viols));

    // SUB4: i1 AND i2 AND i3 = 0.
    circuit.AssertZero(circuit.And(circuit.And(i1, i2), i3));

    RAR_RETURN_NOT_OK(q2.Validate(schema));
    out.container.disjuncts.push_back(std::move(q2));
  }

  out.notes = "Theorem 5.1 encoding: " + std::to_string(k) + " tile types, " +
              std::to_string(1 << n) + "x" + std::to_string(1 << n) +
              " corridor, " + std::to_string(m) + " initial tiles; tiling "
              "exists iff Q1 is NOT contained in Q2";
  return out;
}

}  // namespace rar
