// A tiny circuit compiler: appends And/Or/Eq atoms to a conjunctive query
// under construction, returning wire terms.
//
// The hardness encodings express "something is wrong with the model" as a
// Boolean circuit evaluated by the homomorphism: the configuration carries
// the full truth tables of And/Or/Eq, every gate is an atom whose output
// is a fresh wire variable, and the homomorphism is forced to assign each
// wire the gate's value. This is the paper's "coding Boolean operations in
// relations" device (proofs of Prop 3.3, Theorem 5.1, Prop 6.2).
#ifndef RAR_HARDNESS_BOOL_CIRCUIT_H_
#define RAR_HARDNESS_BOOL_CIRCUIT_H_

#include <string>
#include <vector>

#include "query/query.h"

namespace rar {

/// \brief Emits gate atoms into a CQ and hands out wire terms.
class BoolCircuit {
 public:
  /// `zero`/`one` are the interned Boolean constants of the schema.
  BoolCircuit(ConjunctiveQuery* cq, RelationId and_rel, RelationId or_rel,
              RelationId eq_rel, Value zero, Value one)
      : cq_(cq), and_rel_(and_rel), or_rel_(or_rel), eq_rel_(eq_rel),
        zero_(zero), one_(one) {}

  Term ZeroConst() const { return Term::MakeConst(zero_); }
  Term OneConst() const { return Term::MakeConst(one_); }

  /// w = a AND b.
  Term And(Term a, Term b) { return Gate(and_rel_, a, b, "and"); }
  /// w = a OR b.
  Term Or(Term a, Term b) { return Gate(or_rel_, a, b, "or"); }
  /// w = (a == b)  (XNOR).
  Term Eq(Term a, Term b) { return Gate(eq_rel_, a, b, "eq"); }
  /// w = NOT a  (via Eq with the zero constant).
  Term Not(Term a) { return Eq(a, ZeroConst()); }
  /// w = (a == 0) — alias of Not, named for bit tests.
  Term IsZero(Term a) { return Not(a); }
  /// w = (a == 1).
  Term IsOne(Term a) { return Eq(a, OneConst()); }

  /// Fold of And over a list (empty list -> constant one).
  Term AndAll(const std::vector<Term>& terms) {
    if (terms.empty()) return OneConst();
    Term acc = terms[0];
    for (size_t i = 1; i < terms.size(); ++i) acc = And(acc, terms[i]);
    return acc;
  }
  /// Fold of Or over a list (empty list -> constant zero).
  Term OrAll(const std::vector<Term>& terms) {
    if (terms.empty()) return ZeroConst();
    Term acc = terms[0];
    for (size_t i = 1; i < terms.size(); ++i) acc = Or(acc, terms[i]);
    return acc;
  }

  /// Pins a term to zero: emits And(t, t, 0) — satisfied iff t = 0.
  void AssertZero(Term t) {
    Atom atom;
    atom.relation = and_rel_;
    atom.terms = {t, t, ZeroConst()};
    cq_->atoms.push_back(std::move(atom));
  }

  /// s = "the bit-vector x is the numeric predecessor of y" (MSB first):
  /// some position i has x_i=0, y_i=1, equal bits before i, and x=1/y=0
  /// after i (binary increment). The vectors must have equal width.
  Term Successor(const std::vector<Term>& x, const std::vector<Term>& y) {
    std::vector<Term> cases;
    for (size_t i = 0; i < x.size(); ++i) {
      std::vector<Term> parts;
      for (size_t j = 0; j < i; ++j) parts.push_back(Eq(x[j], y[j]));
      parts.push_back(IsZero(x[i]));
      parts.push_back(IsOne(y[i]));
      for (size_t j = i + 1; j < x.size(); ++j) {
        parts.push_back(IsOne(x[j]));
        parts.push_back(IsZero(y[j]));
      }
      cases.push_back(AndAll(parts));
    }
    return OrAll(cases);
  }

  /// s = "the bit-vectors are equal".
  Term VectorEq(const std::vector<Term>& x, const std::vector<Term>& y) {
    std::vector<Term> parts;
    for (size_t i = 0; i < x.size(); ++i) parts.push_back(Eq(x[i], y[i]));
    return AndAll(parts);
  }

  /// s = "the bit-vector equals the constant `value`" (MSB first).
  Term VectorIs(const std::vector<Term>& x, uint64_t value) {
    std::vector<Term> parts;
    const size_t n = x.size();
    for (size_t i = 0; i < n; ++i) {
      bool bit = (value >> (n - 1 - i)) & 1;
      parts.push_back(bit ? IsOne(x[i]) : IsZero(x[i]));
    }
    return AndAll(parts);
  }

  /// Number of gate atoms emitted so far.
  int gates() const { return gates_; }

 private:
  Term Gate(RelationId rel, Term a, Term b, const char* prefix) {
    VarId w = cq_->AddVar(std::string(prefix) + "_w" +
                          std::to_string(gates_));
    Atom atom;
    atom.relation = rel;
    atom.terms = {a, b, Term::MakeVar(w)};
    cq_->atoms.push_back(std::move(atom));
    ++gates_;
    return Term::MakeVar(w);
  }

  ConjunctiveQuery* cq_;
  RelationId and_rel_, or_rel_, eq_rel_;
  Value zero_, one_;
  int gates_ = 0;
};

}  // namespace rar

#endif  // RAR_HARDNESS_BOOL_CIRCUIT_H_
