// Corridor tiling problems — the combinatorial core of the paper's lower
// bounds (Theorem 5.1 reduces 2^n x 2^n corridor tiling to containment;
// Prop 6.2 reduces width-n corridor tiling to small-arity containment).
//
// A tiling instance has tile types 0..num_tile_types-1, a horizontal
// relation H (allowed (left, right) pairs), a vertical relation V (allowed
// (below, above) pairs), and a prescribed prefix of the first row. The
// direct solvers double as ground truth for the encoders: a tiling exists
// iff the encoded containment fails.
#ifndef RAR_HARDNESS_TILING_H_
#define RAR_HARDNESS_TILING_H_

#include <utility>
#include <vector>

namespace rar {

/// \brief A corridor tiling instance.
struct TilingInstance {
  int num_tile_types = 0;
  /// Allowed horizontally adjacent pairs (left, right).
  std::vector<std::pair<int, int>> horizontal;
  /// Allowed vertically adjacent pairs (below, above).
  std::vector<std::pair<int, int>> vertical;
  /// Prescribed tile types for the first cells of row 0 (row-major).
  std::vector<int> initial_tiles;

  bool HorizontalOk(int left, int right) const;
  bool VerticalOk(int below, int above) const;
};

/// Decides whether a full width x height tiling exists that extends the
/// instance's initial tiles and satisfies every adjacency constraint.
/// Backtracking over cells in row-major order; `out` (optional) receives
/// the tiling row-major.
bool SolveFixedCorridor(const TilingInstance& instance, int width, int height,
                        std::vector<int>* out = nullptr);

/// Decides whether some number of rows (up to `max_rows`) leads from
/// `initial_row` to `final_row` in a width-n corridor: consecutive rows
/// satisfy V column-wise, every row satisfies H internally, and the first
/// and last rows are as prescribed (Prop 6.2's tiling problem).
bool SolveCorridorReachability(const TilingInstance& instance,
                               const std::vector<int>& initial_row,
                               const std::vector<int>& final_row,
                               int max_rows);

/// Canned instances used by tests and benches.
namespace tilings {

/// Two tile types alternating like a checkerboard: H = V = {(0,1),(1,0)};
/// solvable for any corridor whose initial tiles alternate.
TilingInstance Checkerboard();

/// Checkerboard constraints but with the vertical relation emptied:
/// unsolvable for any height > 1.
TilingInstance VerticallyBlocked();

/// Three tile types cycling horizontally (i -> i+1 mod 3) and repeating
/// vertically (i -> i); solvable iff the width is a multiple of 3 when the
/// final row must equal the initial row.
TilingInstance Cycle3();

}  // namespace tilings

}  // namespace rar

#endif  // RAR_HARDNESS_TILING_H_
