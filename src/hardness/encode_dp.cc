#include "hardness/encode_dp.h"

#include <set>

namespace rar {

namespace {

// The relations mentioned by a query or a fact list.
std::set<RelationId> MentionedRelations(const ConjunctiveQuery& q,
                                        const std::vector<Fact>& facts) {
  std::set<RelationId> out;
  for (const Atom& atom : q.atoms) out.insert(atom.relation);
  for (const Fact& f : facts) out.insert(f.relation);
  return out;
}

}  // namespace

Result<EncodedRelevance> EncodeDpHardness(const Schema& base,
                                          const ConjunctiveQuery& q1,
                                          const std::vector<Fact>& i1,
                                          const ConjunctiveQuery& q2,
                                          const std::vector<Fact>& i2) {
  if (base.num_domains() != 1) {
    return Status::InvalidArgument(
        "the DP coding is untyped: base schema must have one domain");
  }
  if (!q1.IsBoolean() || !q2.IsBoolean()) {
    return Status::InvalidArgument("q1/q2 must be Boolean");
  }
  std::set<RelationId> rels1 = MentionedRelations(q1, i1);
  std::set<RelationId> rels2 = MentionedRelations(q2, i2);
  for (RelationId rel : rels1) {
    if (rels2.count(rel)) {
      return Status::InvalidArgument(
          "q1/i1 and q2/i2 must use disjoint relations");
    }
  }

  EncodedRelevance out;
  out.schema = std::make_shared<Schema>();
  Schema& schema = *out.schema;
  DomainId d = schema.AddDomain("D");

  // Lift every base relation to arity+1 (ids preserved by construction).
  for (RelationId rel = 0; rel < base.num_relations(); ++rel) {
    const Relation& r = base.relation(rel);
    std::vector<DomainId> domains(r.arity() + 1, d);
    RAR_ASSIGN_OR_RETURN(RelationId lifted,
                         schema.AddRelation(r.name, domains));
    if (lifted != rel) return Status::Internal("relation ids not preserved");
  }
  RAR_ASSIGN_OR_RETURN(RelationId r_rel,
                       schema.AddRelation("R_dp", std::vector<DomainId>{d}));

  out.acs = AccessMethodSet(out.schema.get());
  RAR_ASSIGN_OR_RETURN(AccessMethodId r_access,
                       out.acs.Add("r_check", r_rel, {0}, /*dependent=*/true));

  Value a = schema.InternConstant("tag_a");
  Value b = schema.InternConstant("tag_b");

  // Configuration: tagged instances, the all-b / all-a padding tuples,
  // and R(a).
  out.conf = Configuration(out.schema.get());
  auto add_tagged = [&](const Fact& f, Value tag) {
    Fact lifted = f;
    lifted.values.push_back(tag);
    out.conf.AddFact(lifted);
  };
  for (const Fact& f : i1) add_tagged(f, a);
  for (const Fact& f : i2) add_tagged(f, b);
  for (RelationId rel : rels1) {
    Fact pad(rel, std::vector<Value>(base.relation(rel).arity() + 1, b));
    out.conf.AddFact(pad);
  }
  for (RelationId rel : rels2) {
    Fact pad(rel, std::vector<Value>(base.relation(rel).arity() + 1, a));
    out.conf.AddFact(pad);
  }
  out.conf.AddFact(Fact(r_rel, {a}));
  // The binding value b must be usable in the (dependent) Boolean access;
  // it inhabits the domain via the padding tuples already, but seed it for
  // robustness against empty rels1.
  out.conf.AddSeedConstant(b, d);

  // Q = ∃x Q'1(x) ∧ Q'2(x) ∧ R(x): merge the two queries into one variable
  // table, adding the shared tag variable to every subgoal.
  ConjunctiveQuery q;
  VarId tag = q.AddVar("XTag");
  auto lift_into = [&](const ConjunctiveQuery& src) {
    std::vector<VarId> remap(src.num_vars());
    for (int v = 0; v < src.num_vars(); ++v) {
      remap[v] = q.AddVar(src.var_names[v] + "_" +
                          std::to_string(q.num_vars()));
    }
    for (const Atom& atom : src.atoms) {
      Atom lifted = atom;
      for (Term& t : lifted.terms) {
        if (t.is_var()) t.var = remap[t.var];
      }
      lifted.terms.push_back(Term::MakeVar(tag));
      q.atoms.push_back(std::move(lifted));
    }
  };
  lift_into(q1);
  lift_into(q2);
  q.atoms.push_back(Atom{r_rel, {Term::MakeVar(tag)}});
  RAR_RETURN_NOT_OK(q.Validate(schema));
  out.query.disjuncts.push_back(std::move(q));

  out.access = Access{r_access, {b}};
  out.notes = "Prop 4.1 DP coding: R(tag_b)? is IR iff q1 is false on i1 "
              "and q2 is true on i2";
  return out;
}

}  // namespace rar
