// Theorem 5.1: corridor tiling -> conjunctive-query containment under
// dependent access limitations (the coNEXPTIME-hardness gadget).
//
// For a tiling instance with k tile types and a 2^n x 2^n corridor, the
// encoder emits:
//   * relations Bool(B), TileType(T), SameTile(T,T,B), Horiz(T,T,B),
//     Vert(T,T,B), And(B,B,B), Or(B,B,B), Eq(B,B,B) — all without access
//     methods (their content is fixed truth/constraint tables), and
//     Tile(T, B^n, B^n, C, C) with one dependent method whose inputs are
//     all attributes but the last (the chain-output link);
//   * a configuration holding the truth tables, the tile-type and
//     constraint tables, and the m >= 2 initial tiles chained
//     c0 -> c1 -> ... -> cm;
//   * Q1 = Tile(u, [2^n-1], [2^n-1], x, y) ("the last cell is reached");
//   * Q2 = four Tile atoms plus the BOOLCONS circuit (SUB1: functional
//     dependency from the link input to the coordinate bits; SUB2: the
//     chain advances the 2n-bit counter by exactly one; SUB3: adjacency
//     or initial-tile violations; SUB4: at least one of the three flags
//     is zero) — "something is wrong with the chain".
//
// The corridor is tileable  iff  Q1 is NOT contained in Q2 under the
// access limitations starting from the configuration: a witness path must
// build a chain of 2^n * 2^n correctly linked, correctly counted,
// constraint-respecting Tile facts.
//
// Orientation note: the adjacency detectors place the *later* cell (right
// neighbour / upper neighbour) in the atom that must be reachable through
// a link (the paper's atom Tile(v, d, e, y, z)); the earlier cell sits in
// the free atom Tile(w, f, g, y', z'). This way every checkable pair is
// actually detectable (the first initial tile has no producer, so it can
// never play the linked role) — which is also why the encoder requires at
// least two initial tiles, exactly as the paper's configuration provides.
#ifndef RAR_HARDNESS_ENCODE_NEXPTIME_H_
#define RAR_HARDNESS_ENCODE_NEXPTIME_H_

#include "hardness/encoded_instance.h"
#include "hardness/tiling.h"
#include "util/status.h"

namespace rar {

/// Builds the Theorem 5.1 instance for tiling the 2^n x 2^n corridor.
/// Requirements: n >= 1; 2 <= initial_tiles.size() <= 2^n; the initial
/// prefix respects the horizontal constraints.
Result<EncodedContainment> EncodeNexptimeTiling(const TilingInstance& tiling,
                                                int n);

}  // namespace rar

#endif  // RAR_HARDNESS_ENCODE_NEXPTIME_H_
