#include "hardness/encode_pspace.h"

#include <functional>
#include <string>

namespace rar {

namespace {

// Boolean two-atom disjunct builder: rel_a(x, y) ∧ rel_b(first ? x : y, z)
// patterns used by the non-uniqueness and progression checks.
ConjunctiveQuery TwoAtomDisjunct(RelationId a, RelationId b, bool share_first,
                                 bool second_uses_shared_as_first) {
  ConjunctiveQuery cq;
  VarId x = cq.AddVar("X");
  VarId y = cq.AddVar("Y");
  VarId w = cq.AddVar("W");
  cq.atoms.push_back(Atom{a, {Term::MakeVar(x), Term::MakeVar(y)}});
  VarId shared = share_first ? x : y;
  if (second_uses_shared_as_first) {
    cq.atoms.push_back(Atom{b, {Term::MakeVar(shared), Term::MakeVar(w)}});
  } else {
    cq.atoms.push_back(Atom{b, {Term::MakeVar(w), Term::MakeVar(shared)}});
  }
  return cq;
}

}  // namespace

Result<EncodedContainment> EncodePspaceTiling(
    const TilingInstance& tiling, const std::vector<int>& initial_row,
    const std::vector<int>& final_row) {
  const int n = static_cast<int>(initial_row.size());
  const int r = tiling.num_tile_types;
  if (n < 2) return Status::InvalidArgument("corridor width must be >= 2");
  if (static_cast<int>(final_row.size()) != n) {
    return Status::InvalidArgument("initial/final rows differ in width");
  }
  if (r < 1) return Status::InvalidArgument("no tile types");
  auto row_ok = [&](const std::vector<int>& row) {
    for (int c = 0; c < n; ++c) {
      if (row[c] < 0 || row[c] >= r) return false;
      if (c > 0 && !tiling.HorizontalOk(row[c - 1], row[c])) return false;
    }
    return true;
  };
  if (!row_ok(initial_row) || !row_ok(final_row)) {
    return Status::InvalidArgument(
        "initial/final rows must respect the horizontal constraints");
  }

  EncodedContainment out;
  out.schema = std::make_shared<Schema>();
  Schema& schema = *out.schema;
  DomainId d = schema.AddDomain("D");

  // C[i][j] = relation of tile type i at (1-based) column j+1.
  std::vector<std::vector<RelationId>> c(r, std::vector<RelationId>(n));
  out.acs = AccessMethodSet(out.schema.get());
  for (int i = 0; i < r; ++i) {
    for (int j = 0; j < n; ++j) {
      std::string name =
          "C_t" + std::to_string(i) + "_col" + std::to_string(j + 1);
      RAR_ASSIGN_OR_RETURN(c[i][j],
                           schema.AddRelation(name,
                                              std::vector<DomainId>{d, d}));
      RAR_RETURN_NOT_OK(
          out.acs.Add("acc_" + name, c[i][j], {0}, /*dependent=*/true)
              .status());
    }
  }

  // Configuration: the chained initial row.
  out.conf = Configuration(out.schema.get());
  std::vector<Value> ids;
  for (int j = 0; j <= n; ++j) {
    ids.push_back(schema.InternConstant("c" + std::to_string(j)));
  }
  for (int j = 0; j < n; ++j) {
    out.conf.AddFact(Fact(c[initial_row[j]][j], {ids[j], ids[j + 1]}));
  }

  // q_final: the prescribed final row, chained.
  {
    ConjunctiveQuery cq;
    std::vector<VarId> ys;
    for (int j = 0; j <= n; ++j) {
      ys.push_back(cq.AddVar("Y" + std::to_string(j)));
    }
    for (int j = 0; j < n; ++j) {
      cq.atoms.push_back(Atom{c[final_row[j]][j],
                              {Term::MakeVar(ys[j]), Term::MakeVar(ys[j + 1])}});
    }
    RAR_RETURN_NOT_OK(cq.Validate(schema));
    out.contained.disjuncts.push_back(std::move(cq));
  }

  // q_violation: the union of "something is wrong" patterns.
  UnionQuery& viol = out.container;
  // (1)/(2) Non-unique cells: distinct (type, column) pairs sharing the
  // predecessor or the current identifier.
  for (int i = 0; i < r; ++i) {
    for (int k = 0; k < n; ++k) {
      for (int j = 0; j < r; ++j) {
        for (int l = 0; l < n; ++l) {
          // The pattern is symmetric in the two atoms: emit each unordered
          // pair of distinct (type, column) combinations once.
          if (std::make_pair(i, k) >= std::make_pair(j, l)) continue;
          viol.disjuncts.push_back(
              TwoAtomDisjunct(c[i][k], c[j][l], /*share_first=*/true,
                              /*second_uses_shared_as_first=*/true));
          viol.disjuncts.push_back(
              TwoAtomDisjunct(c[i][k], c[j][l], /*share_first=*/false,
                              /*second_uses_shared_as_first=*/false));
        }
      }
    }
  }
  // (3) Bad column-to-column progression: successor cell not at column+1.
  // (4) Bad row-to-row progression: after column n comes column 1.
  for (int i = 0; i < r; ++i) {
    for (int j = 0; j < r; ++j) {
      for (int m = 0; m < n; ++m) {
        int expected_next = (m + 1) % n;
        for (int mp = 0; mp < n; ++mp) {
          if (mp == expected_next) continue;
          // C_{i,m}(x,y) ∧ C_{j,mp}(y,z).
          ConjunctiveQuery cq;
          VarId x = cq.AddVar("X");
          VarId y = cq.AddVar("Y");
          VarId z = cq.AddVar("Z");
          cq.atoms.push_back(
              Atom{c[i][m], {Term::MakeVar(x), Term::MakeVar(y)}});
          cq.atoms.push_back(
              Atom{c[j][mp], {Term::MakeVar(y), Term::MakeVar(z)}});
          viol.disjuncts.push_back(std::move(cq));
        }
      }
    }
  }
  // (5) Horizontal violations: adjacent columns with a forbidden pair.
  for (int i = 0; i < r; ++i) {
    for (int j = 0; j < r; ++j) {
      if (tiling.HorizontalOk(i, j)) continue;
      for (int m = 0; m + 1 < n; ++m) {
        ConjunctiveQuery cq;
        VarId x = cq.AddVar("X");
        VarId y = cq.AddVar("Y");
        VarId z = cq.AddVar("Z");
        cq.atoms.push_back(
            Atom{c[i][m], {Term::MakeVar(x), Term::MakeVar(y)}});
        cq.atoms.push_back(
            Atom{c[j][m + 1], {Term::MakeVar(y), Term::MakeVar(z)}});
        viol.disjuncts.push_back(std::move(cq));
      }
    }
  }
  // (6) Vertical violations: an n-step progression from a type-i column-m
  // cell leads to the cell directly above it; enumerate the intermediate
  // type choices (r^(n-1) disjuncts per violating (i, j, m)).
  for (int i = 0; i < r; ++i) {
    for (int j = 0; j < r; ++j) {
      if (tiling.VerticalOk(i, j)) continue;
      for (int m = 0; m < n; ++m) {
        std::vector<int> mids(n - 1);
        std::function<void(int)> emit = [&](int step) {
          if (step == n - 1) {
            ConjunctiveQuery cq;
            std::vector<VarId> ys;
            for (int s = 0; s <= n + 1; ++s) {
              ys.push_back(cq.AddVar("Y" + std::to_string(s)));
            }
            cq.atoms.push_back(Atom{
                c[i][m], {Term::MakeVar(ys[0]), Term::MakeVar(ys[1])}});
            for (int s = 0; s < n - 1; ++s) {
              int col = (m + 1 + s) % n;
              cq.atoms.push_back(
                  Atom{c[mids[s]][col],
                       {Term::MakeVar(ys[s + 1]), Term::MakeVar(ys[s + 2])}});
            }
            cq.atoms.push_back(Atom{
                c[j][m], {Term::MakeVar(ys[n]), Term::MakeVar(ys[n + 1])}});
            viol.disjuncts.push_back(std::move(cq));
            return;
          }
          for (int t = 0; t < r; ++t) {
            mids[step] = t;
            emit(step + 1);
          }
        };
        emit(0);
      }
    }
  }
  RAR_RETURN_NOT_OK(out.container.Validate(schema));

  out.notes = "Prop 6.2 encoding: width " + std::to_string(n) + ", " +
              std::to_string(r) + " tile types, " +
              std::to_string(out.container.disjuncts.size()) +
              " violation disjuncts; corridor tileable iff q_final is NOT "
              "contained in q_violation";
  return out;
}

}  // namespace rar
