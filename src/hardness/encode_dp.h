// Proposition 4.1 (hardness direction): the DP-hardness coding that turns
// a pair (Q1, I1), (Q2, I2) of Boolean CQ/instance problems over disjoint
// relation sets into one immediate-relevance question.
//
// Every relation gets an extra tag attribute; I1's facts are tagged `a`,
// I2's facts are tagged `b`; each Sch1 relation additionally holds an
// all-`b` tuple and each Sch2 relation an all-`a` tuple; R is a fresh
// unary relation with the only access method (Boolean, dependent), and
// R(a) is in the configuration. With Q'i the tag-lifted queries,
//
//   Q = ∃x Q'1(x) ∧ Q'2(x) ∧ R(x),
//
// the access R(b)? is immediately relevant for Q iff Q1 is NOT true in I1
// and Q2 IS true in I2 — a DP-complete combination.
#ifndef RAR_HARDNESS_ENCODE_DP_H_
#define RAR_HARDNESS_ENCODE_DP_H_

#include <memory>
#include <string>
#include <vector>

#include "access/access_method.h"
#include "query/query.h"
#include "relational/configuration.h"
#include "util/status.h"

namespace rar {

/// \brief A generated relevance instance.
struct EncodedRelevance {
  std::shared_ptr<Schema> schema;
  AccessMethodSet acs;
  Configuration conf;
  UnionQuery query;
  Access access;
  std::string notes;
};

/// Builds the Prop 4.1 instance. `base` must use a single abstract domain
/// (the coding is untyped, as in the paper); q1/i1 and q2/i2 must mention
/// disjoint sets of `base` relations.
Result<EncodedRelevance> EncodeDpHardness(const Schema& base,
                                          const ConjunctiveQuery& q1,
                                          const std::vector<Fact>& i1,
                                          const ConjunctiveQuery& q2,
                                          const std::vector<Fact>& i2);

}  // namespace rar

#endif  // RAR_HARDNESS_ENCODE_DP_H_
