// Common output shape of the hardness encoders: a complete containment (or
// relevance) instance over a freshly built schema.
#ifndef RAR_HARDNESS_ENCODED_INSTANCE_H_
#define RAR_HARDNESS_ENCODED_INSTANCE_H_

#include <memory>
#include <string>

#include "access/access_method.h"
#include "query/query.h"
#include "relational/configuration.h"

namespace rar {

/// \brief A generated containment instance. The schema is shared so the
/// struct stays valid under moves (acs/conf point into it).
struct EncodedContainment {
  std::shared_ptr<Schema> schema;
  AccessMethodSet acs;
  Configuration conf;
  /// The candidate containee (Q1 of the paper's claim ...).
  UnionQuery contained;
  /// The candidate container (Q2).
  UnionQuery container;
  /// Human-readable description of the instance.
  std::string notes;
};

}  // namespace rar

#endif  // RAR_HARDNESS_ENCODED_INSTANCE_H_
