#include "hardness/tiling.h"
#include <functional>

#include <set>
#include <string>

namespace rar {

bool TilingInstance::HorizontalOk(int left, int right) const {
  for (const auto& [a, b] : horizontal) {
    if (a == left && b == right) return true;
  }
  return false;
}

bool TilingInstance::VerticalOk(int below, int above) const {
  for (const auto& [a, b] : vertical) {
    if (a == below && b == above) return true;
  }
  return false;
}

namespace {

bool FixedCorridorRec(const TilingInstance& inst, int width, int height,
                      std::vector<int>* cells, size_t next) {
  if (next == cells->size()) return true;
  int row = static_cast<int>(next) / width;
  int col = static_cast<int>(next) % width;
  for (int t = 0; t < inst.num_tile_types; ++t) {
    if (col > 0 && !inst.HorizontalOk((*cells)[next - 1], t)) continue;
    if (row > 0 && !inst.VerticalOk((*cells)[next - width], t)) continue;
    (*cells)[next] = t;
    if (FixedCorridorRec(inst, width, height, cells, next + 1)) return true;
  }
  return false;
}

}  // namespace

bool SolveFixedCorridor(const TilingInstance& instance, int width, int height,
                        std::vector<int>* out) {
  if (width <= 0 || height <= 0) return false;
  if (static_cast<int>(instance.initial_tiles.size()) > width * height) {
    return false;
  }
  std::vector<int> cells(static_cast<size_t>(width) * height, -1);
  // Place and check the prescribed prefix.
  for (size_t i = 0; i < instance.initial_tiles.size(); ++i) {
    int t = instance.initial_tiles[i];
    if (t < 0 || t >= instance.num_tile_types) return false;
    int row = static_cast<int>(i) / width;
    int col = static_cast<int>(i) % width;
    if (col > 0 && !instance.HorizontalOk(cells[i - 1], t)) return false;
    if (row > 0 && !instance.VerticalOk(cells[i - width], t)) return false;
    cells[i] = t;
  }
  if (!FixedCorridorRec(instance, width, height, &cells,
                        instance.initial_tiles.size())) {
    return false;
  }
  if (out != nullptr) *out = cells;
  return true;
}

bool SolveCorridorReachability(const TilingInstance& instance,
                               const std::vector<int>& initial_row,
                               const std::vector<int>& final_row,
                               int max_rows) {
  const int width = static_cast<int>(initial_row.size());
  if (width == 0 || final_row.size() != initial_row.size()) return false;

  auto row_ok = [&](const std::vector<int>& row) {
    for (int c = 1; c < width; ++c) {
      if (!instance.HorizontalOk(row[c - 1], row[c])) return false;
    }
    return true;
  };
  if (!row_ok(initial_row) || !row_ok(final_row)) return false;

  // BFS over rows (state space: num_tile_types^width, deduplicated).
  std::set<std::vector<int>> visited;
  std::vector<std::vector<int>> frontier = {initial_row};
  visited.insert(initial_row);
  if (initial_row == final_row) return true;

  for (int depth = 1; depth < max_rows; ++depth) {
    std::vector<std::vector<int>> next_frontier;
    for (const std::vector<int>& row : frontier) {
      // Enumerate successor rows column by column.
      std::vector<int> succ(width, 0);
      std::function<void(int)> rec = [&](int col) {
        if (col == width) {
          if (visited.insert(succ).second) next_frontier.push_back(succ);
          return;
        }
        for (int t = 0; t < instance.num_tile_types; ++t) {
          if (!instance.VerticalOk(row[col], t)) continue;
          if (col > 0 && !instance.HorizontalOk(succ[col - 1], t)) continue;
          succ[col] = t;
          rec(col + 1);
        }
      };
      rec(0);
    }
    for (const std::vector<int>& row : next_frontier) {
      if (row == final_row) return true;
    }
    frontier = std::move(next_frontier);
    if (frontier.empty()) return false;
  }
  return false;
}

namespace tilings {

TilingInstance Checkerboard() {
  TilingInstance inst;
  inst.num_tile_types = 2;
  inst.horizontal = {{0, 1}, {1, 0}};
  inst.vertical = {{0, 1}, {1, 0}};
  return inst;
}

TilingInstance VerticallyBlocked() {
  TilingInstance inst = Checkerboard();
  inst.vertical.clear();
  return inst;
}

TilingInstance Cycle3() {
  TilingInstance inst;
  inst.num_tile_types = 3;
  inst.horizontal = {{0, 1}, {1, 2}, {2, 0}};
  inst.vertical = {{0, 0}, {1, 1}, {2, 2}};
  return inst;
}

}  // namespace tilings

}  // namespace rar
