// Proposition 6.2: width-n corridor tiling -> containment with binary
// relations and dependent accesses (the PSPACE-hardness gadget).
//
// Relations C_{i,j} (tile type i at column j) are binary over one abstract
// domain: first attribute = identifier of the previous cell in the
// column-by-column, row-by-row progression, second = identifier of the
// current cell. Each C_{i,j} has one dependent access method bound on its
// first attribute. The configuration chains the initial row
// C_{i1,1}(c0,c1), ..., C_{in,n}(c_{n-1},c_n).
//
// q_final asserts the prescribed final row exists; q_violation is the
// union of "something is wrong" patterns (non-unique cells, bad column /
// row progression, horizontal / vertical constraint violations). The
// corridor is tileable from the initial row to the final row iff q_final
// is NOT contained in q_violation under the access limitations.
#ifndef RAR_HARDNESS_ENCODE_PSPACE_H_
#define RAR_HARDNESS_ENCODE_PSPACE_H_

#include <vector>

#include "hardness/encoded_instance.h"
#include "hardness/tiling.h"
#include "util/status.h"

namespace rar {

/// Builds the Prop 6.2 instance. `initial_row` / `final_row` must have the
/// same width n >= 2 and respect the horizontal constraints.
/// In the resulting EncodedContainment, `contained` = q_final and
/// `container` = q_violation.
Result<EncodedContainment> EncodePspaceTiling(
    const TilingInstance& tiling, const std::vector<int>& initial_row,
    const std::vector<int>& final_row);

}  // namespace rar

#endif  // RAR_HARDNESS_ENCODE_PSPACE_H_
