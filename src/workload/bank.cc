#include "workload/bank.h"

#include <string>

namespace rar {

BankScenario MakeBankScenario(Rng* rng, const BankOptions& options) {
  BankScenario out;
  out.base.schema = std::make_shared<Schema>();
  Schema& schema = *out.base.schema;

  DomainId emp_id = schema.AddDomain("EmpId");
  DomainId title = schema.AddDomain("Title");
  DomainId name = schema.AddDomain("Name");
  DomainId off_id = schema.AddDomain("OffId");
  DomainId addr = schema.AddDomain("Address");
  DomainId state = schema.AddDomain("State");
  DomainId phone = schema.AddDomain("Phone");
  DomainId offering = schema.AddDomain("Offering");

  RelationId employee = *schema.AddRelation(
      "Employee", std::vector<Attribute>{{"EmpId", emp_id},
                                         {"Title", title},
                                         {"LastName", name},
                                         {"FirstName", name},
                                         {"OffId", off_id}});
  RelationId office = *schema.AddRelation(
      "Office", std::vector<Attribute>{{"OffId", off_id},
                                       {"StreetAddress", addr},
                                       {"State", state},
                                       {"Phone", phone}});
  RelationId approval = *schema.AddRelation(
      "Approval",
      std::vector<Attribute>{{"State", state}, {"Offering", offering}});
  RelationId manager = *schema.AddRelation(
      "Manager",
      std::vector<Attribute>{{"EmpId", emp_id}, {"MgrId", emp_id}});

  out.base.acs = AccessMethodSet(out.base.schema.get());
  (void)*out.base.acs.Add("EmpOffAcc", employee, {0}, /*dependent=*/true);
  AccessMethodId emp_man =
      *out.base.acs.Add("EmpManAcc", manager, {0}, /*dependent=*/true);
  (void)*out.base.acs.Add("OfficeInfoAcc", office, {0}, /*dependent=*/true);
  (void)*out.base.acs.Add("StateApprAcc", approval, {0}, /*dependent=*/true);

  Value loan_officer = schema.InternConstant("loan_officer");
  Value teller = schema.InternConstant("teller");
  Value illinois = schema.InternConstant("illinois");
  Value texas = schema.InternConstant("texas");
  Value thirty_year = schema.InternConstant("30yr");

  // Hidden instance.
  out.hidden = Configuration(out.base.schema.get());
  std::vector<Value> offices;
  for (int i = 0; i < options.num_offices; ++i) {
    Value oid = schema.InternConstant("off" + std::to_string(i));
    offices.push_back(oid);
    // The last office is the Illinois one when requested.
    bool is_illinois =
        options.loan_officer_in_illinois && i == options.num_offices - 1;
    out.hidden.AddFact(Fact(
        office, {oid, schema.InternConstant("addr" + std::to_string(i)),
                 is_illinois ? illinois : texas,
                 schema.InternConstant("ph" + std::to_string(i))}));
  }
  std::vector<Value> employees;
  for (int i = 0; i < options.num_employees; ++i) {
    Value eid = schema.InternConstant("1234" + std::to_string(i));
    employees.push_back(eid);
    bool officer = options.loan_officer_in_illinois &&
                   i == options.num_employees - 1;
    Value off = officer ? offices.back() : offices[rng->Below(
                    offices.empty() ? 1 : offices.size() - 1)];
    out.hidden.AddFact(Fact(
        employee, {eid, officer ? loan_officer : teller,
                   schema.InternConstant("last" + std::to_string(i)),
                   schema.InternConstant("first" + std::to_string(i)), off}));
  }
  // A management chain ending at the loan officer: every employee's
  // manager is the next one, so EmpManAcc walks toward the witness.
  for (int i = 0; i + 1 < options.num_employees; ++i) {
    out.hidden.AddFact(Fact(manager, {employees[i], employees[i + 1]}));
  }
  if (options.approval_in_illinois) {
    out.hidden.AddFact(Fact(approval, {illinois, thirty_year}));
  }
  out.hidden.AddFact(
      Fact(approval, {texas, schema.InternConstant("15yr")}));

  // Initial knowledge: a couple of employee ids and the query constants.
  out.base.conf = Configuration(out.base.schema.get());
  for (int i = 0; i < options.known_employee_ids &&
                  i < options.num_employees; ++i) {
    out.base.conf.AddSeedConstant(employees[i], emp_id);
  }
  out.base.conf.AddSeedConstant(loan_officer, title);
  out.base.conf.AddSeedConstant(illinois, state);
  out.base.conf.AddSeedConstant(thirty_year, offering);

  // The SQL query as a Boolean CQ.
  ConjunctiveQuery q;
  VarId e = q.AddVar("E", emp_id);
  VarId ln = q.AddVar("Ln", name);
  VarId fn = q.AddVar("Fn", name);
  VarId off = q.AddVar("Off", off_id);
  VarId street = q.AddVar("Street", addr);
  VarId ph = q.AddVar("Ph", phone);
  q.atoms.push_back(Atom{employee,
                         {Term::MakeVar(e), Term::MakeConst(loan_officer),
                          Term::MakeVar(ln), Term::MakeVar(fn),
                          Term::MakeVar(off)}});
  q.atoms.push_back(Atom{office,
                         {Term::MakeVar(off), Term::MakeVar(street),
                          Term::MakeConst(illinois), Term::MakeVar(ph)}});
  q.atoms.push_back(
      Atom{approval,
           {Term::MakeConst(illinois), Term::MakeConst(thirty_year)}});
  (void)q.Validate(schema);
  out.query.disjuncts.push_back(std::move(q));

  out.emp_man_probe = Access{emp_man, {employees.empty()
                                           ? schema.InternConstant("12340")
                                           : employees[0]}};
  return out;
}

}  // namespace rar
