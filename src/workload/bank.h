// The paper's Section 1 motivating scenario: a bank's backend relations
// exposed through four Web forms, and the Boolean query "is there a loan
// officer in an Illinois office, and is the company approved for 30-year
// mortgages in Illinois?".
//
//   Employee(EmpId, Title, LastName, FirstName, OffId)
//   Office(OffId, StreetAddress, State, Phone)
//   Approval(State, Offering)
//   Manager(EmpId, EmpId)
//
// Forms (all dependent): EmpOffAcc (Employee by EmpId), EmpManAcc (Manager
// by managed EmpId), OfficeInfoAcc (Office by OffId), StateApprAcc
// (Approval by State).
#ifndef RAR_WORKLOAD_BANK_H_
#define RAR_WORKLOAD_BANK_H_

#include "util/rng.h"
#include "workload/generators.h"

namespace rar {

/// \brief The bank scenario: schema/forms/initial knowledge, the query,
/// a hidden instance for the simulator, and the paper's probe access.
struct BankScenario {
  Scenario base;           ///< schema, access methods, initial configuration
  UnionQuery query;        ///< the Boolean loan-officer query
  Configuration hidden;    ///< the full hidden instance (for simulation)
  Access emp_man_probe;    ///< EmpManAcc with EmpId "12345" (the paper's)
};

/// Options controlling the generated hidden instance.
struct BankOptions {
  int num_employees = 12;
  int num_offices = 4;
  /// Whether the hidden data actually contains an Illinois loan officer
  /// (the query's satisfiability switch).
  bool loan_officer_in_illinois = true;
  /// Whether Illinois 30-year approval is in the hidden Approval table.
  bool approval_in_illinois = true;
  /// How many employee ids the mediator knows up front.
  int known_employee_ids = 2;
};

BankScenario MakeBankScenario(Rng* rng, const BankOptions& options);

}  // namespace rar

#endif  // RAR_WORKLOAD_BANK_H_
