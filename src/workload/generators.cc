#include "workload/generators.h"

#include <string>

namespace rar {

Scenario RandomScenario(Rng* rng, const RandomScenarioOptions& options) {
  Scenario s;
  s.schema = std::make_shared<Schema>();
  DomainId d = s.schema->AddDomain("D");

  for (int i = 0; i < options.num_relations; ++i) {
    int arity = static_cast<int>(rng->Range(1, options.max_arity));
    std::vector<DomainId> domains(arity, d);
    (void)*s.schema->AddRelation("R" + std::to_string(i), domains);
  }

  s.acs = AccessMethodSet(s.schema.get());
  for (RelationId rel = 0; rel < s.schema->num_relations(); ++rel) {
    const Relation& r = s.schema->relation(rel);
    std::vector<int> inputs;
    for (int pos = 0; pos < r.arity(); ++pos) {
      if (rng->Chance(options.input_prob)) inputs.push_back(pos);
    }
    bool dependent = !rng->Chance(options.independent_prob);
    (void)*s.acs.Add("m" + std::to_string(rel), rel, inputs, dependent);
  }

  std::vector<Value> constants;
  for (int i = 0; i < options.num_constants; ++i) {
    constants.push_back(s.schema->InternConstant("k" + std::to_string(i)));
  }
  s.conf = Configuration(s.schema.get());
  for (const Value& c : constants) s.conf.AddSeedConstant(c, d);
  for (int i = 0; i < options.num_facts; ++i) {
    RelationId rel =
        static_cast<RelationId>(rng->Below(s.schema->num_relations()));
    Fact f;
    f.relation = rel;
    for (int pos = 0; pos < s.schema->relation(rel).arity(); ++pos) {
      f.values.push_back(rng->Pick(constants));
    }
    s.conf.AddFact(f);
  }
  return s;
}

ConjunctiveQuery RandomQuery(Rng* rng, const Scenario& scenario,
                             int num_atoms, int num_vars,
                             double constant_prob) {
  const Schema& schema = *scenario.schema;
  DomainId d = 0;
  ConjunctiveQuery cq;
  for (int v = 0; v < num_vars; ++v) {
    cq.AddVar("V" + std::to_string(v), d);
  }
  std::vector<Value> constants = scenario.conf.AdomOfDomain(d).ToVector();
  for (int i = 0; i < num_atoms; ++i) {
    RelationId rel =
        static_cast<RelationId>(rng->Below(schema.num_relations()));
    Atom atom;
    atom.relation = rel;
    for (int pos = 0; pos < schema.relation(rel).arity(); ++pos) {
      if (!constants.empty() && rng->Chance(constant_prob)) {
        atom.terms.push_back(Term::MakeConst(rng->Pick(constants)));
      } else {
        atom.terms.push_back(
            Term::MakeVar(static_cast<VarId>(rng->Below(num_vars))));
      }
    }
    cq.atoms.push_back(std::move(atom));
  }
  (void)cq.Validate(schema);
  return cq;
}

bool RandomAccess(Rng* rng, const Scenario& scenario, Access* out) {
  const Schema& schema = *scenario.schema;
  for (int attempt = 0; attempt < 32; ++attempt) {
    AccessMethodId mid =
        static_cast<AccessMethodId>(rng->Below(scenario.acs.size()));
    const AccessMethod& m = scenario.acs.method(mid);
    const Relation& rel = schema.relation(m.relation);
    Access access;
    access.method = mid;
    bool ok = true;
    for (int pos : m.input_positions) {
      ValueSeq candidates =
          scenario.conf.AdomOfDomain(rel.attributes[pos].domain);
      if (candidates.empty()) {
        ok = false;
        break;
      }
      access.binding.push_back(candidates[rng->Below(candidates.size())]);
    }
    if (!ok) continue;
    *out = std::move(access);
    return true;
  }
  return false;
}

ChainFamily MakeChainFamily(int chain_length) {
  ChainFamily f;
  f.scenario.schema = std::make_shared<Schema>();
  Schema& schema = *f.scenario.schema;
  DomainId d = schema.AddDomain("D");
  RelationId r = *schema.AddRelation("R", std::vector<DomainId>{d, d});
  f.scenario.acs = AccessMethodSet(f.scenario.schema.get());
  (void)*f.scenario.acs.Add("r_by_0", r, {0}, /*dependent=*/true);
  f.scenario.conf = Configuration(f.scenario.schema.get());
  Value c0 = schema.InternConstant("c0");
  Value c1 = schema.InternConstant("c1");
  f.scenario.conf.AddFact(Fact(r, {c0, c1}));

  ConjunctiveQuery chain;
  std::vector<VarId> xs;
  for (int i = 0; i <= chain_length; ++i) {
    xs.push_back(chain.AddVar("X" + std::to_string(i), d));
  }
  for (int i = 0; i < chain_length; ++i) {
    chain.atoms.push_back(
        Atom{r, {Term::MakeVar(xs[i]), Term::MakeVar(xs[i + 1])}});
  }
  (void)chain.Validate(schema);
  f.contained.disjuncts.push_back(std::move(chain));

  ConjunctiveQuery loop;
  VarId x = loop.AddVar("X", d);
  loop.atoms.push_back(Atom{r, {Term::MakeVar(x), Term::MakeVar(x)}});
  (void)loop.Validate(schema);
  f.container.disjuncts.push_back(std::move(loop));
  return f;
}

CliqueFamily MakeCliqueFamily(Rng* rng, int clique_size, int num_nodes,
                              double edge_prob) {
  CliqueFamily f;
  f.scenario.schema = std::make_shared<Schema>();
  Schema& schema = *f.scenario.schema;
  DomainId d = schema.AddDomain("D");
  RelationId e = *schema.AddRelation("E", std::vector<DomainId>{d, d});
  f.scenario.acs = AccessMethodSet(f.scenario.schema.get());
  AccessMethodId by0 =
      *f.scenario.acs.Add("e_by_0", e, {0}, /*dependent=*/true);
  f.scenario.conf = Configuration(f.scenario.schema.get());

  std::vector<Value> nodes;
  for (int i = 0; i < num_nodes; ++i) {
    nodes.push_back(schema.InternConstant("n" + std::to_string(i)));
  }
  for (int i = 0; i < num_nodes; ++i) {
    for (int j = 0; j < num_nodes; ++j) {
      if (i != j && rng->Chance(edge_prob)) {
        f.scenario.conf.AddFact(Fact(e, {nodes[i], nodes[j]}));
      }
    }
  }
  for (const Value& n : nodes) f.scenario.conf.AddSeedConstant(n, d);

  // K-clique pattern: E(Vi, Vj) for every ordered pair i != j.
  ConjunctiveQuery clique;
  std::vector<VarId> vs;
  for (int i = 0; i < clique_size; ++i) {
    vs.push_back(clique.AddVar("V" + std::to_string(i), d));
  }
  for (int i = 0; i < clique_size; ++i) {
    for (int j = 0; j < clique_size; ++j) {
      if (i != j) {
        clique.atoms.push_back(
            Atom{e, {Term::MakeVar(vs[i]), Term::MakeVar(vs[j])}});
      }
    }
  }
  (void)clique.Validate(schema);
  f.query.disjuncts.push_back(std::move(clique));
  f.probe = Access{by0, {nodes[0]}};
  return f;
}

StarFamily MakeStarFamily(int rays, int num_constants) {
  StarFamily f;
  f.scenario.schema = std::make_shared<Schema>();
  Schema& schema = *f.scenario.schema;
  DomainId d = schema.AddDomain("D");
  RelationId hub = *schema.AddRelation("Hub", std::vector<DomainId>{d, d});
  f.scenario.acs = AccessMethodSet(f.scenario.schema.get());
  AccessMethodId hub_by0 =
      *f.scenario.acs.Add("hub_by_0", hub, {0}, /*dependent=*/false);

  f.scenario.conf = Configuration(f.scenario.schema.get());
  std::vector<Value> constants;
  for (int i = 0; i < num_constants; ++i) {
    constants.push_back(schema.InternConstant("s" + std::to_string(i)));
    f.scenario.conf.AddSeedConstant(constants.back(), d);
  }

  ConjunctiveQuery star;
  VarId center = star.AddVar("Center", d);
  VarId spoke = star.AddVar("Spoke", d);
  star.atoms.push_back(
      Atom{hub, {Term::MakeVar(center), Term::MakeVar(spoke)}});
  for (int i = 0; i < rays; ++i) {
    RelationId ray =
        *schema.AddRelation("Ray" + std::to_string(i),
                            std::vector<DomainId>{d});
    (void)*f.scenario.acs.Add("ray" + std::to_string(i), ray, {0},
                              /*dependent=*/false);
    star.atoms.push_back(Atom{ray, {Term::MakeVar(spoke)}});
    // Half of the rays are already satisfied in the configuration.
    if (i % 2 == 0 && !constants.empty()) {
      f.scenario.conf.AddFact(Fact(ray, {constants[0]}));
    }
  }
  (void)star.Validate(schema);
  f.query.disjuncts.push_back(std::move(star));
  f.probe = Access{hub_by0, {constants.empty()
                                 ? schema.InternConstant("s0")
                                 : constants[0]}};
  return f;
}

MultiRelationFamily MakeMultiRelationFamily(int groups,
                                            int values_per_group) {
  if (values_per_group < 3) values_per_group = 3;
  MultiRelationFamily f;
  f.scenario.schema = std::make_shared<Schema>();
  Schema& schema = *f.scenario.schema;
  f.scenario.acs = AccessMethodSet(f.scenario.schema.get());

  struct Group {
    DomainId domain;
    RelationId a, b;
    std::vector<Value> values;
  };
  std::vector<Group> gs;
  for (int g = 0; g < groups; ++g) {
    Group grp;
    const std::string tag = std::to_string(g);
    grp.domain = schema.AddDomain("D" + tag);
    grp.a = *schema.AddRelation("A" + tag,
                                std::vector<DomainId>{grp.domain, grp.domain});
    grp.b = *schema.AddRelation("B" + tag,
                                std::vector<DomainId>{grp.domain, grp.domain});
    (void)*f.scenario.acs.Add("a" + tag, grp.a, {0}, /*dependent=*/true);
    (void)*f.scenario.acs.Add("b" + tag, grp.b, {0}, /*dependent=*/true);
    for (int i = 0; i < values_per_group; ++i) {
      grp.values.push_back(
          schema.InternConstant("c" + tag + "_" + std::to_string(i)));
    }
    gs.push_back(std::move(grp));
    f.group_relations.push_back({gs.back().a, gs.back().b});
  }

  f.scenario.conf = Configuration(f.scenario.schema.get());
  f.hidden = Configuration(f.scenario.schema.get());
  for (const Group& grp : gs) {
    for (const Value& v : grp.values) {
      f.scenario.conf.AddSeedConstant(v, grp.domain);
    }
    // The answering chain Ag(c0,c1), Bg(c1,c2) ...
    f.hidden.AddFact(Fact(grp.a, {grp.values[0], grp.values[1]}));
    f.hidden.AddFact(
        Fact(grp.b, {grp.values[1], grp.values[2 % grp.values.size()]}));
    // ... plus noise edges so responses grow relations beyond the chain.
    for (size_t i = 0; i + 1 < grp.values.size(); ++i) {
      f.hidden.AddFact(Fact(grp.a, {grp.values[i + 1], grp.values[i]}));
      f.hidden.AddFact(Fact(grp.b, {grp.values[i], grp.values[i]}));
    }

    ConjunctiveQuery cq;
    VarId x = cq.AddVar("X", grp.domain);
    VarId y = cq.AddVar("Y", grp.domain);
    VarId z = cq.AddVar("Z", grp.domain);
    cq.atoms.push_back(Atom{grp.a, {Term::MakeVar(x), Term::MakeVar(y)}});
    cq.atoms.push_back(Atom{grp.b, {Term::MakeVar(y), Term::MakeVar(z)}});
    (void)cq.Validate(schema);
    UnionQuery q;
    q.disjuncts.push_back(std::move(cq));
    f.queries.push_back(std::move(q));
  }
  return f;
}

}  // namespace rar
