// Deterministic workload generators for tests and benchmarks.
//
// Benchmarks regenerate Table 1 as scaling experiments; these generators
// provide the parameterized families: random CQs/configurations (combined
// complexity), fixed-query growing-configuration sweeps (data complexity),
// chain-production families (dependent-access witness chains of controlled
// length), clique patterns (hard homomorphism instances), and critical-
// tuple families.
#ifndef RAR_WORKLOAD_GENERATORS_H_
#define RAR_WORKLOAD_GENERATORS_H_

#include <memory>
#include <string>
#include <vector>

#include "access/access_method.h"
#include "query/query.h"
#include "relational/configuration.h"
#include "util/rng.h"
#include "util/status.h"

namespace rar {

/// \brief A self-contained generated scenario.
struct Scenario {
  std::shared_ptr<Schema> schema;
  AccessMethodSet acs;
  Configuration conf;
};

/// Options for the random scenario generator.
struct RandomScenarioOptions {
  int num_relations = 3;
  int max_arity = 2;
  int num_constants = 4;
  int num_facts = 6;
  /// Probability that a generated method is independent.
  double independent_prob = 0.0;
  /// Probability that an attribute position is an input of the method.
  double input_prob = 0.5;
};

/// Builds a random single-domain scenario: relations of arity 1..max_arity,
/// one access method per relation (random input set, at least sometimes
/// free), and a random configuration.
Scenario RandomScenario(Rng* rng, const RandomScenarioOptions& options);

/// A random Boolean CQ over the scenario's schema: `num_atoms` atoms with
/// variables drawn from a pool of `num_vars`, constants appearing with
/// probability `constant_prob` (drawn from the configuration's constants).
ConjunctiveQuery RandomQuery(Rng* rng, const Scenario& scenario,
                             int num_atoms, int num_vars,
                             double constant_prob);

/// A random well-formed access for the scenario (dependent bindings drawn
/// from the active domain). Returns false when none exists.
bool RandomAccess(Rng* rng, const Scenario& scenario, Access* out);

/// Chain-production family (dependent case): schema R(D, D) with one
/// dependent method bound on the first attribute, configuration {R(c0,c1)}.
/// The contained query is an L-step chain R(x0,x1) ∧ ... ∧ R(x_{L-1},x_L);
/// the container is R(x,x). Refuting containment requires producing a
/// chain of L-1 fresh links — witness length scales linearly with L.
struct ChainFamily {
  Scenario scenario;
  UnionQuery contained;
  UnionQuery container;
};
ChainFamily MakeChainFamily(int chain_length);

/// K-clique pattern query over a binary relation E (hard homomorphism
/// instances for the IR/eval benches), with a random graph configuration
/// of `num_nodes` nodes and edge probability `edge_prob`.
struct CliqueFamily {
  Scenario scenario;
  UnionQuery query;       ///< the k-clique pattern
  Access probe;           ///< an edge access E(v0, ?)
};
CliqueFamily MakeCliqueFamily(Rng* rng, int clique_size, int num_nodes,
                              double edge_prob);

/// Star query: center joined to `rays` unary relations; used by the
/// single-occurrence fast-path ablation.
struct StarFamily {
  Scenario scenario;
  UnionQuery query;
  Access probe;  ///< access on the (single-occurrence) hub relation
};
StarFamily MakeStarFamily(int rays, int num_constants);

/// Multi-relation deep-web family: `groups` disjoint relation groups, each
/// with its own domain Dg, relations Ag(Dg,Dg) and Bg(Dg,Dg) (dependent
/// methods bound on the first attribute), seeds c{g}_0..k, and the Boolean
/// query ∃x,y,z. Ag(x,y) ∧ Bg(y,z). The hidden instance satisfies every
/// query through a chain Ag(c0,c1), Bg(c1,c2) plus noise edges. Because
/// the groups share nothing, growing group h's relations never touches
/// group g's footprint — the workload for footprint-aware invalidation,
/// apply/check overlap, and the pipelined mediator benches.
struct MultiRelationFamily {
  Scenario scenario;
  std::vector<UnionQuery> queries;                ///< one per group
  std::vector<std::vector<RelationId>> group_relations;  ///< {Ag, Bg} per group
  Configuration hidden;                           ///< source-side instance
};
MultiRelationFamily MakeMultiRelationFamily(int groups,
                                            int values_per_group);

}  // namespace rar

#endif  // RAR_WORKLOAD_GENERATORS_H_
