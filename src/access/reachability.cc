#include "access/reachability.h"

#include <unordered_set>

namespace rar {

namespace {

// Insertion-ordered typed-value set: keeps a deterministic first-seen
// order (the witness search consumes `accessible` newest-first to extend
// chain frontiers before revisiting old values).
class TypedValueSet {
 public:
  bool Insert(const TypedValue& tv) {
    if (!set_.insert(tv).second) return false;
    ordered_.push_back(tv);
    return true;
  }
  bool Contains(const TypedValue& tv) const { return set_.count(tv) > 0; }
  const std::vector<TypedValue>& ordered() const { return ordered_; }

 private:
  std::unordered_set<TypedValue, TypedValueHash> set_;
  std::vector<TypedValue> ordered_;
};

// True when `fact` can be placed now via `m`: every dependent input value is
// accessible in the input attribute's domain. Independent methods accept any
// input values (free guesses).
bool Placeable(const Schema& schema, const AccessMethod& m, const Fact& fact,
               const TypedValueSet& accessible) {
  if (!m.dependent) return true;
  const Relation& rel = schema.relation(fact.relation);
  for (int pos : m.input_positions) {
    TypedValue tv{fact.values[pos], rel.attributes[pos].domain};
    if (!accessible.Contains(tv)) return false;
  }
  return true;
}

void MakeAccessible(const Schema& schema, const Fact& fact,
                    TypedValueSet* accessible) {
  const Relation& rel = schema.relation(fact.relation);
  for (int pos = 0; pos < fact.arity(); ++pos) {
    accessible->Insert(TypedValue{fact.values[pos],
                                  rel.attributes[pos].domain});
  }
}

}  // namespace

ReachResult CheckSetReachability(const ConfigView& conf,
                                 const AccessMethodSet& acs,
                                 const std::vector<Fact>& facts) {
  const Schema& schema = *acs.schema();
  ReachResult result;

  TypedValueSet accessible;
  for (const TypedValue& tv : conf.AdomEntries()) accessible.Insert(tv);

  std::vector<int> pending;
  for (int i = 0; i < static_cast<int>(facts.size()); ++i) {
    if (conf.Contains(facts[i])) continue;  // already known: nothing to do
    pending.push_back(i);
  }

  bool progress = true;
  while (progress && !pending.empty()) {
    progress = false;
    for (size_t pi = 0; pi < pending.size();) {
      const Fact& f = facts[pending[pi]];
      AccessMethodId placed_with = kInvalidId;
      for (AccessMethodId mid : acs.MethodsOf(f.relation)) {
        if (Placeable(schema, acs.method(mid), f, accessible)) {
          placed_with = mid;
          break;
        }
      }
      if (placed_with != kInvalidId) {
        result.order.push_back(pending[pi]);
        result.methods.push_back(placed_with);
        MakeAccessible(schema, f, &accessible);
        pending[pi] = pending.back();
        pending.pop_back();
        progress = true;
      } else {
        ++pi;
      }
    }
  }

  result.accessible = accessible.ordered();

  if (pending.empty()) {
    result.reachable = true;
    return result;
  }

  result.reachable = false;
  result.unplaced = pending;
  TypedValueSet missing_seen;
  for (int idx : pending) {
    const Fact& f = facts[idx];
    const Relation& rel = schema.relation(f.relation);
    for (AccessMethodId mid : acs.MethodsOf(f.relation)) {
      const AccessMethod& m = acs.method(mid);
      if (!m.dependent) continue;
      for (int pos : m.input_positions) {
        TypedValue tv{f.values[pos], rel.attributes[pos].domain};
        if (!accessible.Contains(tv) && missing_seen.Insert(tv)) {
          result.missing_inputs.push_back(tv);
        }
      }
    }
  }
  return result;
}

Result<std::vector<AccessStep>> BuildRealizingSteps(
    const ConfigView& conf, const AccessMethodSet& acs,
    const std::vector<Fact>& facts) {
  ReachResult reach = CheckSetReachability(conf, acs, facts);
  if (!reach.reachable) {
    return Status::FailedPrecondition(
        "fact set is not reachable from the configuration");
  }
  std::vector<AccessStep> steps;
  steps.reserve(reach.order.size());
  for (size_t i = 0; i < reach.order.size(); ++i) {
    const Fact& f = facts[reach.order[i]];
    const AccessMethod& m = acs.method(reach.methods[i]);
    Access access;
    access.method = reach.methods[i];
    for (int pos : m.input_positions) access.binding.push_back(f.values[pos]);
    steps.push_back(AccessStep{std::move(access), {f}});
  }
  return steps;
}

std::unordered_set<DomainId> ProducibleDomains(const ConfigView& conf,
                                               const AccessMethodSet& acs) {
  const Schema& schema = *acs.schema();
  std::unordered_set<DomainId> inhabited;
  for (const TypedValue& tv : conf.AdomEntries()) inhabited.insert(tv.domain);

  std::unordered_set<DomainId> producible;
  auto available = [&](DomainId d) {
    return inhabited.count(d) > 0 || producible.count(d) > 0;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t mid = 0; mid < acs.size(); ++mid) {
      const AccessMethod& m = acs.method(static_cast<AccessMethodId>(mid));
      const Relation& rel = schema.relation(m.relation);
      if (m.dependent) {
        bool inputs_ok = true;
        for (int pos : m.input_positions) {
          if (!available(rel.attributes[pos].domain)) {
            inputs_ok = false;
            break;
          }
        }
        if (!inputs_ok) continue;
        // Fresh values can appear at non-input positions only.
        for (int pos = 0; pos < rel.arity(); ++pos) {
          if (m.IsInputPosition(pos)) continue;
          if (producible.insert(rel.attributes[pos].domain).second) {
            changed = true;
          }
        }
      } else {
        // Independent methods: inputs are free guesses, so every position
        // (input or output) can carry a fresh value.
        for (int pos = 0; pos < rel.arity(); ++pos) {
          if (producible.insert(rel.attributes[pos].domain).second) {
            changed = true;
          }
        }
      }
    }
  }
  return producible;
}

}  // namespace rar
