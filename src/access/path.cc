#include "access/path.h"

namespace rar {

Result<Configuration> AccessPath::Replay() const {
  Configuration conf = MaterializeConfig(*initial_);
  for (const AccessStep& step : steps_) {
    RAR_ASSIGN_OR_RETURN(conf, ApplyAccess(conf, *acs_, step.access,
                                           step.response));
  }
  return conf;
}

Result<AccessPath> AccessPath::Truncate() const {
  if (steps_.empty()) {
    return Status::FailedPrecondition("cannot truncate an empty path");
  }
  AccessPath truncated(initial_, acs_);
  OverlayConfiguration conf(initial_);
  for (size_t i = 1; i < steps_.size(); ++i) {
    const AccessStep& step = steps_[i];
    // First ill-formed access ends the prefix.
    if (!CheckWellFormed(conf, *acs_, step.access).ok()) break;
    if (!ValidateResponse(*acs_, step.access, step.response).ok()) break;
    for (const Fact& f : step.response) conf.AddFact(f);
    truncated.Append(step);
  }
  return truncated;
}

Result<Configuration> AccessPath::ReplayTruncation() const {
  RAR_ASSIGN_OR_RETURN(AccessPath truncated, Truncate());
  return truncated.Replay();
}

Status AccessPath::ReplayTruncationInto(OverlayConfiguration* out) const {
  if (steps_.empty()) {
    return Status::FailedPrecondition("cannot truncate an empty path");
  }
  out->Reset();
  for (size_t i = 1; i < steps_.size(); ++i) {
    const AccessStep& step = steps_[i];
    if (!CheckWellFormed(*out, *acs_, step.access).ok()) break;
    if (!ValidateResponse(*acs_, step.access, step.response).ok()) break;
    for (const Fact& f : step.response) out->AddFact(f);
  }
  return Status::OK();
}

std::string AccessPath::ToString() const {
  std::string out;
  const Schema& schema = *initial_->schema();
  for (const AccessStep& step : steps_) {
    out += step.access.ToString(schema, *acs_);
    out += " -> {";
    for (size_t i = 0; i < step.response.size(); ++i) {
      if (i > 0) out += ", ";
      out += step.response[i].ToString(schema);
    }
    out += "}\n";
  }
  return out;
}

}  // namespace rar
