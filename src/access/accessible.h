// The accessible part of an instance (Li–Chang / Section 7).
//
// Given a hidden instance, the access methods, and an initial
// configuration, the *accessible part* is the set of facts obtainable by
// exhaustive querying: the least fixpoint of "perform every well-formed
// access against the instance with exact responses". This is the
// recursive, exhaustive enumeration underlying the complete-answer
// algorithms of Li [18] and Duschka–Levy's inverse rules [13], which the
// paper contrasts with relevance-guided access (Section 7: "no check is
// made for the relevance of an access"). The mediator benchmarks use it as
// the crawl ceiling; certain answers over the accessible part are the
// *maximally contained answers* obtainable by any strategy.
#ifndef RAR_ACCESS_ACCESSIBLE_H_
#define RAR_ACCESS_ACCESSIBLE_H_

#include "access/access_method.h"
#include "relational/configuration.h"

namespace rar {

/// \brief Result of the accessible-part fixpoint.
struct AccessiblePart {
  /// The initial configuration plus every obtainable fact.
  Configuration closure;
  /// Accesses performed by the fixpoint (each (method, binding) once).
  long accesses = 0;
  /// Fixpoint rounds.
  int rounds = 0;
};

/// Computes the accessible part of `instance` from `initial` under exact
/// responses. Dependent bindings are drawn from the evolving typed active
/// domain; independent methods are probed with every known value of their
/// input domains (probing unknown constants cannot help against an exact
/// source). `max_rounds` is a safety valve for pathological schemas.
AccessiblePart ComputeAccessiblePart(const Configuration& instance,
                                     const AccessMethodSet& acs,
                                     const Configuration& initial,
                                     int max_rounds = 1000);

}  // namespace rar

#endif  // RAR_ACCESS_ACCESSIBLE_H_
