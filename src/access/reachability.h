// Reachability of fact sets and producibility of domains.
//
// The witness searches reduce "is configuration Conf ∪ F reachable?" to a
// scheduling question: can the facts of F be ordered so that each one is a
// legal response to a well-formed access? Because the active domain only
// grows along a path, a greedy fixpoint is complete for a *fixed* fact set
// — this is the polynomial-time workhorse (`CheckSetReachability`) that the
// exponential searches call in their inner loop.
//
// `ProducibleDomains` computes the abstract domains in which fresh values
// can be manufactured at all (the fixpoint underlying the auxiliary-chain
// construction and the Li–Chang accessible part).
#ifndef RAR_ACCESS_REACHABILITY_H_
#define RAR_ACCESS_REACHABILITY_H_

#include <unordered_set>
#include <vector>

#include "access/access_method.h"
#include "access/path.h"
#include "relational/configuration.h"

namespace rar {

/// \brief Outcome of a set-reachability check.
struct ReachResult {
  bool reachable = false;
  /// Indices into the input fact vector, in a valid placement order
  /// (meaningful when reachable).
  std::vector<int> order;
  /// Method used to place each fact, aligned with `order`.
  std::vector<AccessMethodId> methods;
  /// When not reachable: indices of facts that could not be placed.
  std::vector<int> unplaced;
  /// When not reachable: typed values that appear in a dependent input
  /// position of some unplaced fact and are not accessible. Producing any
  /// of them (or more of them) is the only way to make progress.
  std::vector<TypedValue> missing_inputs;
  /// The accessible typed values at the greedy fixpoint (initial active
  /// domain plus every value of every placed fact). The witness search
  /// draws auxiliary-access inputs from this set.
  std::vector<TypedValue> accessible;
};

/// Decides whether `conf ∪ facts` is reachable from `conf` by a well-formed
/// access path whose responses are exactly `facts` (facts already in `conf`
/// are ignored). Greedy and complete: it places any fact all of whose
/// dependent inputs are accessible, which never blocks a later placement
/// because accessibility is monotone.
///
/// Typing discipline: a value is accessible *in a domain*; placing a fact
/// makes every (value, attribute-domain) pair of the fact accessible.
/// Independent methods accept arbitrary input values (the paper's "free
/// guess", remark (iii) of Section 4); dependent methods require every
/// input to be accessible in the input attribute's domain.
ReachResult CheckSetReachability(const ConfigView& conf,
                                 const AccessMethodSet& acs,
                                 const std::vector<Fact>& facts);

/// Builds an explicit access path realizing a reachable fact set (one
/// access per fact, in the greedy order). Fails if the set is unreachable.
Result<std::vector<AccessStep>> BuildRealizingSteps(
    const ConfigView& conf, const AccessMethodSet& acs,
    const std::vector<Fact>& facts);

/// The domains in which fresh values can be produced from `conf`: the least
/// fixpoint of "some access method has all dependent input domains already
/// producible-or-inhabited, and the domain appears among its non-input
/// attributes". Independent methods need no inhabited inputs.
std::unordered_set<DomainId> ProducibleDomains(const ConfigView& conf,
                                               const AccessMethodSet& acs);

}  // namespace rar

#endif  // RAR_ACCESS_REACHABILITY_H_
