// Access paths and truncation (Section 2, "Long-term impact").
//
// A path is a sequence of accesses with their (sound) responses, starting
// from a configuration. The *truncated path* drops the initial access and
// keeps the longest prefix of the remaining accesses that stays well-formed
// — exactly the paper's definition. Long-term relevance compares certain
// answers after a path with certain answers after its truncation.
//
// The initial configuration is *borrowed* (a ConfigView): paths are built
// inside searches that must not copy the base per candidate. `Replay`
// materializes; `ReplayTruncationInto` replays the truncation into a
// caller-provided overlay so the brute-force LTR reference evaluates
// truncations without copying the base either.
#ifndef RAR_ACCESS_PATH_H_
#define RAR_ACCESS_PATH_H_

#include <string>
#include <vector>

#include "access/access_method.h"
#include "relational/configuration.h"
#include "relational/overlay.h"
#include "util/status.h"

namespace rar {

/// \brief One step of a path: an access and the tuples it returned.
struct AccessStep {
  Access access;
  std::vector<Fact> response;
};

/// \brief An access path: initial configuration (borrowed) + steps.
///
/// Paths are data; `Replay` validates well-formedness step by step and
/// produces the final configuration, so any engine-constructed witness can
/// be independently re-checked against the Section 2 semantics. The
/// borrowed initial view must outlive the path.
class AccessPath {
 public:
  AccessPath(const ConfigView* initial, const AccessMethodSet* acs)
      : initial_(initial), acs_(acs) {}

  const ConfigView& initial() const { return *initial_; }
  const std::vector<AccessStep>& steps() const { return steps_; }
  size_t size() const { return steps_.size(); }

  void Append(AccessStep step) { steps_.push_back(std::move(step)); }

  /// Removes the last step (no-op on an empty path). Used by backtracking
  /// searches that extend and retract candidate paths.
  void PopBack() {
    if (!steps_.empty()) steps_.pop_back();
  }

  /// Replays the whole path, checking each access is well-formed at the
  /// configuration reached so far; returns the final configuration
  /// (materialized from the initial view).
  Result<Configuration> Replay() const;

  /// The paper's truncation: drop the first access, then keep the longest
  /// prefix of the remaining steps (with their original responses) in which
  /// every access is well-formed at the evolving configuration. Returns the
  /// truncated path (possibly empty; shares the initial view). Requires a
  /// non-empty path.
  Result<AccessPath> Truncate() const;

  /// Final configuration of the truncation (initial config when empty).
  Result<Configuration> ReplayTruncation() const;

  /// Zero-copy variant: resets `out` (an overlay whose base must be this
  /// path's initial view) and replays the truncation into its delta.
  Status ReplayTruncationInto(OverlayConfiguration* out) const;

  std::string ToString() const;

 private:
  const ConfigView* initial_;
  const AccessMethodSet* acs_;
  std::vector<AccessStep> steps_;
};

}  // namespace rar

#endif  // RAR_ACCESS_PATH_H_
