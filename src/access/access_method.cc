#include "access/access_method.h"

#include <algorithm>

namespace rar {

const std::vector<AccessMethodId> AccessMethodSet::kNoMethods;

Result<AccessMethodId> AccessMethodSet::Add(std::string_view name,
                                            RelationId relation,
                                            std::vector<int> input_positions,
                                            bool dependent) {
  if (schema_ == nullptr) {
    return Status::FailedPrecondition("access method set has no schema");
  }
  if (relation >= schema_->num_relations()) {
    return Status::NotFound("relation id out of range");
  }
  if (Find(name) != kInvalidId) {
    return Status::InvalidArgument("duplicate access method name: " +
                                   std::string(name));
  }
  const Relation& rel = schema_->relation(relation);
  for (size_t i = 0; i < input_positions.size(); ++i) {
    if (input_positions[i] < 0 || input_positions[i] >= rel.arity()) {
      return Status::InvalidArgument("input position out of range for " +
                                     rel.name);
    }
    if (i > 0 && input_positions[i] <= input_positions[i - 1]) {
      return Status::InvalidArgument(
          "input positions must be strictly increasing");
    }
  }
  methods_.push_back(AccessMethod{std::string(name), relation,
                                  std::move(input_positions), dependent});
  AccessMethodId id = static_cast<AccessMethodId>(methods_.size() - 1);
  by_relation_[relation].push_back(id);
  return id;
}

Result<AccessMethodId> AccessMethodSet::AddNamed(
    std::string_view name, std::string_view relation,
    const std::vector<std::string>& input_attrs, bool dependent) {
  if (schema_ == nullptr) {
    return Status::FailedPrecondition("access method set has no schema");
  }
  RelationId rel = schema_->FindRelation(relation);
  if (rel == kInvalidId) {
    return Status::NotFound("relation not in schema: " +
                            std::string(relation));
  }
  std::vector<int> positions;
  const Relation& r = schema_->relation(rel);
  for (const std::string& attr : input_attrs) {
    int pos = -1;
    for (int i = 0; i < r.arity(); ++i) {
      if (r.attributes[i].name == attr) {
        pos = i;
        break;
      }
    }
    if (pos < 0) {
      return Status::NotFound("attribute " + attr + " not in relation " +
                              r.name);
    }
    positions.push_back(pos);
  }
  std::sort(positions.begin(), positions.end());
  return Add(name, rel, std::move(positions), dependent);
}

AccessMethodId AccessMethodSet::Find(std::string_view name) const {
  for (size_t i = 0; i < methods_.size(); ++i) {
    if (methods_[i].name == name) return static_cast<AccessMethodId>(i);
  }
  return kInvalidId;
}

const std::vector<AccessMethodId>& AccessMethodSet::MethodsOf(
    RelationId rel) const {
  auto it = by_relation_.find(rel);
  return it == by_relation_.end() ? kNoMethods : it->second;
}

bool AccessMethodSet::AllIndependent() const {
  for (const AccessMethod& m : methods_) {
    if (m.dependent) return false;
  }
  return true;
}

std::string Access::ToString(const Schema& schema,
                             const AccessMethodSet& acs) const {
  const AccessMethod& m = acs.method(method);
  const Relation& rel = schema.relation(m.relation);
  std::string out = rel.name;
  out += "[" + m.name + "](";
  int next_input = 0;
  for (int pos = 0; pos < rel.arity(); ++pos) {
    if (pos > 0) out += ", ";
    if (next_input < m.num_inputs() && m.input_positions[next_input] == pos) {
      out += schema.ValueToString(binding[next_input]);
      ++next_input;
    } else {
      out += "?";
    }
  }
  out += ")";
  return out;
}

Status CheckWellFormed(const ConfigView& conf, const AccessMethodSet& acs,
                       const Access& access) {
  if (access.method >= acs.size()) {
    return Status::NotFound("access method id out of range");
  }
  const AccessMethod& m = acs.method(access.method);
  if (static_cast<int>(access.binding.size()) != m.num_inputs()) {
    return Status::InvalidArgument("binding width mismatch for method " +
                                   m.name);
  }
  if (!m.dependent) return Status::OK();
  const Schema& schema = *acs.schema();
  const Relation& rel = schema.relation(m.relation);
  for (int i = 0; i < m.num_inputs(); ++i) {
    DomainId dom = rel.attributes[m.input_positions[i]].domain;
    if (!conf.AdomContains(access.binding[i], dom)) {
      return Status::FailedPrecondition(
          "dependent access " + m.name + ": binding value " +
          schema.ValueToString(access.binding[i]) +
          " not in the active domain of domain " + schema.domain_name(dom));
    }
  }
  return Status::OK();
}

bool FactMatchesAccess(const AccessMethodSet& acs, const Access& access,
                       const Fact& fact) {
  const AccessMethod& m = acs.method(access.method);
  if (fact.relation != m.relation) return false;
  for (int i = 0; i < m.num_inputs(); ++i) {
    if (fact.values[m.input_positions[i]] != access.binding[i]) return false;
  }
  return true;
}

Status ValidateResponse(const AccessMethodSet& acs, const Access& access,
                        const std::vector<Fact>& response) {
  const AccessMethod& m = acs.method(access.method);
  const int arity = acs.schema()->relation(m.relation).arity();
  for (const Fact& f : response) {
    if (f.relation != m.relation) {
      return Status::InvalidArgument(
          "response fact is over the wrong relation for method " + m.name);
    }
    if (f.arity() != arity) {
      return Status::InvalidArgument("response fact arity mismatch on method " +
                                     m.name);
    }
    if (!FactMatchesAccess(acs, access, f)) {
      return Status::InvalidArgument(
          "response fact does not match the access binding on method " +
          m.name);
    }
  }
  return Status::OK();
}

Result<Configuration> ApplyAccess(const Configuration& conf,
                                  const AccessMethodSet& acs,
                                  const Access& access,
                                  const std::vector<Fact>& response) {
  RAR_RETURN_NOT_OK(CheckWellFormed(conf, acs, access));
  RAR_RETURN_NOT_OK(ValidateResponse(acs, access, response));
  Configuration next = conf;
  for (const Fact& f : response) next.AddFact(f);
  return next;
}

}  // namespace rar
