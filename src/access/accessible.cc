#include "access/accessible.h"

#include <set>
#include <utility>
#include <vector>

#include "util/combinatorics.h"

namespace rar {

AccessiblePart ComputeAccessiblePart(const Configuration& instance,
                                     const AccessMethodSet& acs,
                                     const Configuration& initial,
                                     int max_rounds) {
  const Schema& schema = *acs.schema();
  AccessiblePart out;
  out.closure = initial;
  std::set<std::pair<AccessMethodId, std::vector<Value>>> done;

  for (out.rounds = 0; out.rounds < max_rounds; ++out.rounds) {
    bool progress = false;
    for (AccessMethodId mid = 0; mid < acs.size(); ++mid) {
      const AccessMethod& m = acs.method(mid);
      const Relation& rel = schema.relation(m.relation);

      std::vector<std::vector<Value>> slots;
      std::vector<int> sizes;
      bool feasible = true;
      for (int pos : m.input_positions) {
        // Materialized: AddFact below grows the closure mid-iteration.
        slots.push_back(
            out.closure.AdomOfDomain(rel.attributes[pos].domain).ToVector());
        sizes.push_back(static_cast<int>(slots.back().size()));
        if (slots.back().empty()) feasible = false;
      }
      if (!feasible) continue;

      ForEachProduct(sizes, [&](const std::vector<int>& choice) {
        std::vector<Value> binding;
        binding.reserve(choice.size());
        for (size_t i = 0; i < choice.size(); ++i) {
          binding.push_back(slots[i][choice[i]]);
        }
        if (!done.insert({mid, binding}).second) return false;
        ++out.accesses;
        Access access{mid, binding};
        for (const Fact& f : instance.FactsOf(m.relation)) {
          if (FactMatchesAccess(acs, access, f)) {
            progress |= out.closure.AddFact(f);
          }
        }
        return false;
      });
    }
    if (!progress) break;
  }
  return out;
}

}  // namespace rar
