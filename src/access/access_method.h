// Access methods and accesses (Section 2, "Modeling data sources").
//
// An access method names a relation and the subset of its attributes that
// must be bound on input. Methods are *dependent* (input values must already
// be in the configuration's active domain, with matching abstract domains)
// or *independent* (any value may be guessed). An *access* pairs a method
// with a concrete binding of its input attributes. A method with every
// attribute in its input set gives Boolean accesses ("is this tuple
// there?"); a method with no input attributes gives free accesses.
#ifndef RAR_ACCESS_ACCESS_METHOD_H_
#define RAR_ACCESS_ACCESS_METHOD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/configuration.h"
#include "relational/schema.h"
#include "util/status.h"

namespace rar {

/// Dense id of an access method within an AccessMethodSet.
using AccessMethodId = uint32_t;

/// \brief One access method: relation + input positions + dependence flag.
struct AccessMethod {
  std::string name;
  RelationId relation = kInvalidId;
  /// Attribute positions (0-based, strictly increasing) bound on input.
  std::vector<int> input_positions;
  /// Dependent methods require binding values to come from the active
  /// domain of the current configuration; independent methods accept any.
  bool dependent = true;

  int num_inputs() const { return static_cast<int>(input_positions.size()); }
  bool IsInputPosition(int pos) const {
    for (int p : input_positions) {
      if (p == pos) return true;
    }
    return false;
  }
};

/// \brief The set ACS of access methods over a schema.
class AccessMethodSet {
 public:
  AccessMethodSet() = default;
  explicit AccessMethodSet(const Schema* schema) : schema_(schema) {}

  const Schema* schema() const { return schema_; }

  /// Declares a method. Input positions must be valid for the relation and
  /// strictly increasing; names must be unique.
  Result<AccessMethodId> Add(std::string_view name, RelationId relation,
                             std::vector<int> input_positions,
                             bool dependent);

  /// Convenience: declares a method by relation/attribute names.
  Result<AccessMethodId> AddNamed(std::string_view name,
                                  std::string_view relation,
                                  const std::vector<std::string>& input_attrs,
                                  bool dependent);

  const AccessMethod& method(AccessMethodId id) const { return methods_[id]; }
  size_t size() const { return methods_.size(); }

  AccessMethodId Find(std::string_view name) const;

  /// All methods on a given relation (possibly empty: such relations have
  /// fixed content equal to the initial configuration).
  const std::vector<AccessMethodId>& MethodsOf(RelationId rel) const;

  /// True when the relation has at least one access method.
  bool HasMethod(RelationId rel) const { return !MethodsOf(rel).empty(); }

  /// True when every method in the set is independent.
  bool AllIndependent() const;

  /// True when the method admits Boolean accesses (every attribute input).
  bool IsBoolean(AccessMethodId id) const {
    return methods_[id].num_inputs() ==
           schema_->relation(methods_[id].relation).arity();
  }

  /// True when the method admits free accesses (no attribute is input).
  bool IsFree(AccessMethodId id) const {
    return methods_[id].input_positions.empty();
  }

 private:
  const Schema* schema_ = nullptr;
  std::vector<AccessMethod> methods_;
  std::unordered_map<RelationId, std::vector<AccessMethodId>> by_relation_;

  static const std::vector<AccessMethodId> kNoMethods;
};

/// \brief An access: a method plus a binding for its input attributes.
struct Access {
  AccessMethodId method = kInvalidId;
  /// Values for the method's input positions, in position order.
  std::vector<Value> binding;

  bool operator==(const Access& o) const {
    return method == o.method && binding == o.binding;
  }

  std::string ToString(const Schema& schema, const AccessMethodSet& acs) const;
};

/// Returns OK iff `access` is well-formed at `conf` (Section 2): the method
/// exists, the binding has the right width, and — for dependent methods —
/// every binding value inhabits the corresponding attribute domain in
/// Adom(conf).
Status CheckWellFormed(const ConfigView& conf, const AccessMethodSet& acs,
                       const Access& access);

/// True iff `fact` is a possible response tuple for `access`: same relation
/// and agreeing with the binding on every input position. `fact` must have
/// the relation's arity (see ValidateResponse for untrusted input).
bool FactMatchesAccess(const AccessMethodSet& acs, const Access& access,
                       const Fact& fact);

/// Returns OK iff every fact of `response` is a legal response tuple for
/// `access` (clause (ii) of the successor definition): right relation,
/// right arity, agreeing with the binding on every input position. Arity
/// is checked before positional matching, so malformed facts are rejected
/// instead of read out of bounds.
Status ValidateResponse(const AccessMethodSet& acs, const Access& access,
                        const std::vector<Fact>& response);

/// Applies a well-formed access: returns the successor configuration
/// conf + response. Every response fact must match the access (clause (ii)
/// of the successor definition). Soundness against a hidden instance is the
/// simulator's concern, not checked here.
Result<Configuration> ApplyAccess(const Configuration& conf,
                                  const AccessMethodSet& acs,
                                  const Access& access,
                                  const std::vector<Fact>& response);

}  // namespace rar

#endif  // RAR_ACCESS_ACCESS_METHOD_H_
