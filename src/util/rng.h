// Deterministic random number generation for workload generators and
// property tests. All randomized components of rar take an explicit seed so
// every test and benchmark run is reproducible.
#ifndef RAR_UTIL_RNG_H_
#define RAR_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace rar {

/// \brief SplitMix64: tiny, fast, well-distributed deterministic PRNG.
///
/// Chosen over std::mt19937 because its state is a single u64 (cheap to fork
/// per-worker) and its output sequence is stable across standard libraries,
/// which matters for reproducible cross-platform test fixtures.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw with probability `p` (p in [0,1]).
  bool Chance(double p) {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Below(v.size())];
  }

  /// Forks an independent generator (for parallel / nested use).
  Rng Fork() { return Rng(Next() ^ 0xda3e39cb94b95bdbULL); }

 private:
  uint64_t state_;
};

}  // namespace rar

#endif  // RAR_UTIL_RNG_H_
