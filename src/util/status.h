// Status / Result error-handling primitives for the rar library.
//
// The public API of rar is exception-free, following the RocksDB / Arrow
// idiom: operations that can fail return a `Status`, and operations that
// produce a value return a `Result<T>` (a Status-or-value sum type).
#ifndef RAR_UTIL_STATUS_H_
#define RAR_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace rar {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< malformed input (schema mismatch, bad binding, ...)
  kNotFound,          ///< a named entity (relation, domain, method) is missing
  kFailedPrecondition,///< operation not applicable in the current state
  kResourceExhausted, ///< a search budget was exhausted before a decision
  kParseError,        ///< query / schema text could not be parsed
  kInternal,          ///< invariant violation inside the library
  kUnavailable,       ///< transient transport/peer failure — safe to retry
  kDeadlineExceeded,  ///< the caller's deadline passed before completion
};

/// \brief Outcome of an operation that can fail but returns no value.
///
/// `Status` is cheap to copy in the common OK case (no allocation) and
/// carries a code plus a human-readable message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>" for logs and error chains.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief A value of type `T` or an error `Status`.
///
/// Mirrors `arrow::Result` / `absl::StatusOr`. Accessors assert on misuse in
/// debug builds; callers must check `ok()` first.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (the failure path).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in the error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller (early-return macro).
#define RAR_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::rar::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (0)

/// Assigns the value of a Result expression or propagates its error.
#define RAR_ASSIGN_OR_RETURN(lhs, expr)    \
  auto RAR_CONCAT_(_res_, __LINE__) = (expr);              \
  if (!RAR_CONCAT_(_res_, __LINE__).ok())                  \
    return RAR_CONCAT_(_res_, __LINE__).status();          \
  lhs = std::move(RAR_CONCAT_(_res_, __LINE__)).value()

#define RAR_CONCAT_INNER_(a, b) a##b
#define RAR_CONCAT_(a, b) RAR_CONCAT_INNER_(a, b)

}  // namespace rar

#endif  // RAR_UTIL_STATUS_H_
