// Combinatorial enumeration helpers used by the guess-and-check deciders.
//
// The paper's upper-bound algorithms are of the form "guess a small object,
// verify it in (co)NP": guesses range over subsets (Prop 3.5), variable
// assignments (Prop 4.1), and set partitions of null-mapped variables
// (containment witness search). These helpers enumerate those spaces
// deterministically so the engines stay branch-complete and testable.
#ifndef RAR_UTIL_COMBINATORICS_H_
#define RAR_UTIL_COMBINATORICS_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace rar {

/// Calls `fn(mask)` for every subset mask of an `n`-element set (n <= 63),
/// in increasing mask order (so the empty set comes first). Stops early and
/// returns true the first time `fn` returns true; returns false otherwise.
inline bool ForEachSubset(int n, const std::function<bool(uint64_t)>& fn) {
  const uint64_t limit = (n >= 64) ? 0 : (uint64_t{1} << n);
  for (uint64_t mask = 0; mask < limit; ++mask) {
    if (fn(mask)) return true;
  }
  return false;
}

/// Calls `fn(block_of)` for every set partition of {0..n-1}, where
/// `block_of[i]` is the block index of element i; block indices form a
/// restricted-growth string (block_of[0] == 0, each new block introduced in
/// order). Enumeration is exhaustive (Bell(n) partitions). Stops early and
/// returns true when `fn` returns true.
inline bool ForEachSetPartition(
    int n, const std::function<bool(const std::vector<int>&)>& fn) {
  if (n == 0) {
    std::vector<int> empty;
    return fn(empty);
  }
  std::vector<int> block_of(n, 0);
  std::function<bool(int, int)> rec = [&](int i, int max_block) -> bool {
    if (i == n) return fn(block_of);
    for (int b = 0; b <= max_block + 1 && b < n; ++b) {
      block_of[i] = b;
      if (rec(i + 1, b > max_block ? b : max_block)) return true;
    }
    return false;
  };
  return rec(1, 0);  // element 0 is pinned to block 0.
}

/// Calls `fn(choice)` for every element of the cartesian product
/// sizes[0] x sizes[1] x ... (choice[i] in [0, sizes[i])). Stops early and
/// returns true when `fn` returns true. An empty `sizes` yields one call
/// with an empty choice; any zero size yields no calls.
inline bool ForEachProduct(const std::vector<int>& sizes,
                           const std::function<bool(const std::vector<int>&)>& fn) {
  for (int s : sizes) {
    if (s <= 0) return false;
  }
  std::vector<int> choice(sizes.size(), 0);
  while (true) {
    if (fn(choice)) return true;
    int i = static_cast<int>(sizes.size()) - 1;
    while (i >= 0) {
      if (++choice[i] < sizes[i]) break;
      choice[i] = 0;
      --i;
    }
    if (i < 0) return false;
  }
}

/// Calls `fn(tuple)` for every `k`-tuple over {0..n-1} (n^k tuples).
/// Stops early and returns true when `fn` returns true.
inline bool ForEachTuple(int n, int k,
                         const std::function<bool(const std::vector<int>&)>& fn) {
  std::vector<int> sizes(k, n);
  return ForEachProduct(sizes, fn);
}

}  // namespace rar

#endif  // RAR_UTIL_COMBINATORICS_H_
