// String interning: maps strings to dense integer ids and back.
//
// Symbols (relation names, attribute names, constant spellings, domain
// names) are interned once and compared as integers everywhere else; the
// symbolic engines spend most of their time comparing values, so this keeps
// the hot paths allocation-free.
#ifndef RAR_UTIL_INTERNER_H_
#define RAR_UTIL_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rar {

/// \brief Bidirectional string <-> dense-id table.
///
/// Ids are assigned in insertion order starting at 0 and are stable for the
/// lifetime of the interner. Not thread-safe; engines own their interners.
class Interner {
 public:
  using Id = uint32_t;
  static constexpr Id kInvalid = static_cast<Id>(-1);

  /// Returns the id for `s`, interning it on first sight.
  Id Intern(std::string_view s) {
    auto it = ids_.find(std::string(s));
    if (it != ids_.end()) return it->second;
    Id id = static_cast<Id>(strings_.size());
    strings_.emplace_back(s);
    ids_.emplace(strings_.back(), id);
    return id;
  }

  /// Returns the id for `s`, or `kInvalid` when `s` was never interned.
  Id Lookup(std::string_view s) const {
    auto it = ids_.find(std::string(s));
    return it == ids_.end() ? kInvalid : it->second;
  }

  /// Returns the spelling for an id produced by this interner.
  const std::string& Spelling(Id id) const { return strings_[id]; }

  size_t size() const { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, Id> ids_;
};

}  // namespace rar

#endif  // RAR_UTIL_INTERNER_H_
