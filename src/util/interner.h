// String interning: maps strings to dense integer ids and back.
//
// Symbols (relation names, attribute names, constant spellings, domain
// names) are interned once and compared as integers everywhere else; the
// symbolic engines spend most of their time comparing values, so this keeps
// the hot paths allocation-free.
#ifndef RAR_UTIL_INTERNER_H_
#define RAR_UTIL_INTERNER_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace rar {

/// \brief Bidirectional string <-> dense-id table.
///
/// Ids are assigned in insertion order starting at 0 and are stable for the
/// lifetime of the interner. Thread-safe: the session server interns
/// constants while decoding concurrent client requests and mints fresh
/// constants during stream registration, so lookups take a shared lock and
/// inserts an exclusive one. Spellings live in a deque — references stay
/// valid across later inserts, so `Spelling()` can hand them out unlocked.
class Interner {
 public:
  using Id = uint32_t;
  static constexpr Id kInvalid = static_cast<Id>(-1);

  /// Returns the id for `s`, interning it on first sight.
  Id Intern(std::string_view s) {
    bool inserted;
    return InternIfAbsent(s, &inserted);
  }

  /// Returns the id for `s`, interning it on first sight; `*inserted`
  /// reports whether this call created the entry (false: someone got
  /// there first). The check-and-insert is atomic — fresh-constant
  /// minting relies on exactly one caller winning a spelling.
  Id InternIfAbsent(std::string_view s, bool* inserted) {
    *inserted = false;
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      auto it = ids_.find(std::string(s));
      if (it != ids_.end()) return it->second;
    }
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = ids_.find(std::string(s));
    if (it != ids_.end()) return it->second;
    Id id = static_cast<Id>(strings_.size());
    strings_.emplace_back(s);
    ids_.emplace(strings_.back(), id);
    *inserted = true;
    return id;
  }

  /// Returns the id for `s`, or `kInvalid` when `s` was never interned.
  Id Lookup(std::string_view s) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = ids_.find(std::string(s));
    return it == ids_.end() ? kInvalid : it->second;
  }

  /// Returns the spelling for an id produced by this interner. The
  /// reference stays valid for the interner's lifetime.
  const std::string& Spelling(Id id) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return strings_[id];
  }

  size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return strings_.size();
  }

 private:
  mutable std::shared_mutex mu_;
  std::deque<std::string> strings_;
  std::unordered_map<std::string, Id> ids_;
};

}  // namespace rar

#endif  // RAR_UTIL_INTERNER_H_
