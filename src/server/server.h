// SessionServer: the concurrent multi-client session layer over one
// RelevanceEngine + RelevanceStreamRegistry (optionally backed by a
// DurableSession, in which case every mutation funnels through the WAL).
//
// The server is transport-agnostic: it consumes decoded `WireFrame`s and
// produces encoded response frames. Transports (src/server/transport.h —
// in-process loopback and a TCP poll loop) own the byte streams and the
// FrameAssemblers; many transport threads may call `HandleFrame`
// concurrently — the engine and registry are internally synchronised, the
// session table sits under a shared_mutex, and each session's handle
// tables under the session's own mutex.
//
// Sessions are token-addressed, not connection-bound: Hello mints (or
// resumes) a {session_id, nonce} token, and every later request presents
// it. A client that reconnects — after a transport drop or a process
// restart against a durable server — resumes its handles and stream
// cursors by replaying the token, until idle reaping retires the session.
//
// Fault tolerance (src/persist/dedup.h, DESIGN.md "Fault tolerance"):
//  * exactly-once effect — every mutating request (apply, register) is
//    keyed by its client-owned request id through a per-session dedup
//    window; a retry whose original executed answers the cached response
//    instead of re-executing. Durable-backed servers persist the window
//    (WAL-tagged records + snapshot sessions section), so a retry that
//    straddles a server crash still cannot double-apply.
//  * deadlines — frames carry an absolute deadline; expired work is
//    rejected with kDeadlineExceeded before any engine mutation.
//  * heartbeats — kPing refreshes the session's idle clock and reports
//    the drain flag, giving both ends dead-peer detection.
//  * graceful drain — BeginDrain stops admitting fresh sessions, sheds
//    mutations with kShuttingDown + a retry hint, waits for in-flight
//    mutations to quiesce, and flushes durable state. Reads (poll,
//    snapshot, metrics, ping, goodbye) keep working so clients can wind
//    down cleanly.
//
// Load shedding, three layers (each surfaced as a typed wire error and a
// counter):
//  * admission — Hello beyond ServerOptions::max_sessions is bounced with
//    kRetryLater + retry_after_ms;
//  * apply backpressure — the engine bounds in-flight applies
//    (EngineOptions::max_inflight_applies); a ResourceExhausted apply
//    surfaces as kRetryLater;
//  * backlog — every registered stream gets a retention cap
//    (max_backlog_events), so lagging subscribers lose oldest events
//    (kCursorEvicted tells them to re-snapshot) instead of pinning
//    memory; streams whose retained backlog crosses
//    degrade_backlog_events are degraded to conservative full-recheck
//    mode (RelevanceStreamRegistry::Degrade), shedding the gate indexes'
//    memory. Degrading never changes verdicts — force_full_recheck is
//    verdict-identical by the value gate's soundness argument — so served
//    answers keep exact parity with a fresh decider.
#ifndef RAR_SERVER_SERVER_H_
#define RAR_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/engine.h"
#include "persist/dedup.h"
#include "persist/durable.h"
#include "server/protocol.h"
#include "stream/registry.h"

namespace rar {

/// \brief Serving-layer knobs.
struct ServerOptions {
  /// Live-session admission cap; Hellos beyond it shed with kRetryLater.
  /// 0 = unbounded.
  uint32_t max_sessions = 0;
  /// Backoff hint carried by kRetryLater errors.
  uint32_t retry_after_ms = 50;
  /// Backoff hint carried by kShuttingDown errors while draining.
  uint32_t drain_retry_after_ms = 200;
  /// Per-stream retained-event cap stamped onto every RegisterStream
  /// (tightens a client-supplied StreamOptions::retain_cap, never loosens
  /// it). 0 = leave the client's cap (possibly unbounded).
  uint64_t max_backlog_events = 0;
  /// Degrade a stream to conservative full-recheck mode once its retained
  /// backlog exceeds this (checked at poll time). 0 = never degrade.
  uint64_t degrade_backlog_events = 0;
  /// Reap sessions idle longer than this (checked opportunistically on
  /// Hello and via ReapIdleSessions). 0 = never reap.
  uint64_t idle_timeout_ms = 0;
  /// Per-session request-dedup window capacity (in-memory serving; the
  /// durable path takes its capacity from PersistOptions::dedup_window).
  /// 0 disables dedup — retried mutations re-execute.
  size_t dedup_window = 256;
};

/// \brief The session layer. Construct over a live engine+registry (in-
/// memory serving) or over a DurableSession (WAL-backed serving); attach
/// points are the same either way. Attaches itself to the engine as an
/// ApplyListener purely so its counters join `engine.stats()` and the
/// exporter; detaches in the destructor (quiesce transports first).
class SessionServer : public ApplyListener {
 public:
  SessionServer(RelevanceEngine* engine, RelevanceStreamRegistry* registry,
                ServerOptions options = {});
  /// Durable-backed: every mutation (apply, registration, acknowledge)
  /// funnels through `durable`, so served state survives a crash and
  /// tokens resume across server restarts. Serving sessions recovered
  /// from the durable directory are re-seeded into the token table, so a
  /// client can resume its pre-crash token against the new process.
  explicit SessionServer(DurableSession* durable, ServerOptions options = {});
  ~SessionServer() override;

  SessionServer(const SessionServer&) = delete;
  SessionServer& operator=(const SessionServer&) = delete;

  /// Dispatches one decoded request frame and returns the encoded
  /// response frame (always exactly one: a *Ok or a kError with the same
  /// request_id). Thread-safe.
  std::string HandleFrame(const WireFrame& frame);

  /// Counts one framing-corruption event (transports call this when a
  /// connection's FrameAssembler goes corrupt and is closed).
  void NoteBadFrame();

  /// Reaps sessions idle past ServerOptions::idle_timeout_ms; returns the
  /// number reaped. Also run opportunistically by Hello admission.
  size_t ReapIdleSessions();

  /// Graceful drain: stop admitting fresh sessions, shed mutations with
  /// kShuttingDown + drain_retry_after_ms, wait until in-flight mutations
  /// quiesce, then flush durable state. Reads keep working. Idempotent;
  /// blocks until quiescent. The server stays usable for reads (and for
  /// Goodbye) afterwards — destruction remains the caller's job. Returns
  /// the durable flush's status (OK for in-memory serving).
  Status BeginDrain();
  bool draining() const {
    return draining_.load(std::memory_order_seq_cst);
  }

  size_t num_sessions() const;

  RelevanceEngine& engine() { return *engine_; }
  const ServerOptions& options() const { return options_; }

  // ApplyListener (stats only):
  void OnApply(const ApplyEvent& event) override { (void)event; }
  void ContributeStats(EngineStats* stats) const override;

 private:
  struct ServerSession {
    explicit ServerSession(size_t dedup_capacity) : dedup(dedup_capacity) {}
    uint64_t id = 0;
    uint64_t nonce = 0;
    std::mutex mu;  ///< guards the handle tables + dedup window below
    std::vector<QueryId> queries;   ///< wire handle -> engine QueryId
    std::vector<StreamId> streams;  ///< wire handle -> registry StreamId
    std::vector<char> degraded;     ///< parallel to streams
    /// In-memory request dedup (durable serving probes the persisted
    /// window in DurableSession instead). Guarded by mu — holding mu
    /// across probe+execute+record is what makes a concurrent retry of
    /// the same id on a second connection safe, not just a same-channel
    /// retry.
    DedupWindow dedup;
    std::atomic<uint64_t> last_active_ms{0};
  };

  /// Monotonic wall clock for idle accounting (ms).
  static uint64_t NowMs();
  /// Real wall clock (Unix ms) — deadlines cross process boundaries.
  static uint64_t UnixMs();

  std::shared_ptr<ServerSession> FindSession(const SessionToken& token,
                                             WireError* error);

  // Per-type handlers: frame in, (response payload | error) out. The
  // response MessageType is the request's + 64 on success.
  std::string HandleHello(const WireFrame& frame, WireError* error);
  std::string HandleRegisterQuery(const WireFrame& frame, WireError* error);
  std::string HandleRegisterStream(const WireFrame& frame, WireError* error);
  std::string HandleApply(const WireFrame& frame, WireError* error);
  std::string HandlePoll(const WireFrame& frame, WireError* error);
  std::string HandleAcknowledge(const WireFrame& frame, WireError* error);
  std::string HandleSnapshot(const WireFrame& frame, WireError* error);
  std::string HandleMetrics(const WireFrame& frame, WireError* error);
  std::string HandleGoodbye(const WireFrame& frame, WireError* error);
  std::string HandlePing(const WireFrame& frame, WireError* error);

  /// Fills `error` with the kShuttingDown shed and counts it.
  void ShedDraining(WireError* error);

  /// Maps a durable TaggedOutcome probe hit/stale to a response or error.
  /// Returns true when the outcome fully answered the request (hit or
  /// stale); false means kFresh — the caller finishes the fresh path.
  bool AnswerFromOutcome(const DurableSession::TaggedOutcome& outcome,
                         uint8_t request_type, std::string* payload,
                         WireError* error);

  /// Post-poll backlog policing for one stream handle: high-water
  /// tracking and the degrade threshold.
  void PoliceBacklog(ServerSession& session, uint32_t handle, StreamId sid);

  RelevanceEngine* engine_;
  RelevanceStreamRegistry* registry_;
  DurableSession* durable_;  ///< nullptr when serving in-memory
  const ServerOptions options_;

  mutable std::shared_mutex sessions_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<ServerSession>> sessions_;
  /// Registration mints fresh constants (Prop 2.2) through the shared
  /// interner, which is not thread-safe; with many clients registering
  /// concurrently the server is the one place to serialize them. Also
  /// keeps the server's handle tables in lockstep with the durable
  /// session's (both append under this mutex).
  std::mutex register_mu_;
  std::atomic<uint64_t> next_session_id_{1};
  const uint64_t nonce_seed_;

  /// Drain protocol: mutators increment inflight_mutations_ *then* check
  /// draining_ (both seq_cst); BeginDrain sets draining_ *then* waits for
  /// inflight to reach zero. Any mutation that missed the flag is
  /// therefore visible in the count BeginDrain watches — no mutation can
  /// slip between the flag and the quiesce.
  std::atomic<bool> draining_{false};
  std::atomic<uint64_t> inflight_mutations_{0};

  struct Counters {
    std::atomic<uint64_t> sessions_opened{0};
    std::atomic<uint64_t> sessions_resumed{0};
    std::atomic<uint64_t> sessions_retired{0};
    std::atomic<uint64_t> sessions_reaped{0};
    std::atomic<uint64_t> sessions_shed{0};
    std::atomic<uint64_t> sessions_recovered{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> requests_hello{0};
    std::atomic<uint64_t> requests_register_query{0};
    std::atomic<uint64_t> requests_register_stream{0};
    std::atomic<uint64_t> requests_apply{0};
    std::atomic<uint64_t> requests_poll{0};
    std::atomic<uint64_t> requests_acknowledge{0};
    std::atomic<uint64_t> requests_snapshot{0};
    std::atomic<uint64_t> requests_metrics{0};
    std::atomic<uint64_t> requests_ping{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> bad_frames{0};
    std::atomic<uint64_t> applies_shed{0};
    std::atomic<uint64_t> streams_degraded{0};
    std::atomic<uint64_t> cursor_evictions{0};
    std::atomic<uint64_t> backlog_high_water{0};
    std::atomic<uint64_t> dedup_hits{0};
    std::atomic<uint64_t> dedup_stale{0};
    std::atomic<uint64_t> deadline_rejections{0};
    std::atomic<uint64_t> drain_sheds{0};
  };
  mutable Counters counters_;
};

}  // namespace rar

#endif  // RAR_SERVER_SERVER_H_
