// The session server's wire protocol: length-prefixed, CRC-framed binary
// messages, with payload codecs shared between server and client.
//
// Every message is one frame:
//
//   [u32 length][u32 crc32][u64 request_id][u8 type]
//   [u64 deadline_unix_ms][payload...]
//
// `length` covers request_id + type + deadline + payload; `crc32` (zlib
// polynomial, the same Crc32 the WAL uses) covers the same bytes.
// `deadline_unix_ms` is the client's absolute deadline in Unix
// milliseconds (wall clock, so it survives crossing a process or machine
// boundary); 0 means "no deadline". The server rejects already-expired
// frames with kDeadlineExceeded before doing any work. Request ids are
// *client-owned*: a retry of the same logical call re-sends the same id,
// which is what lets the server's per-session dedup window collapse
// at-least-once delivery into exactly-once effect. All integers are
// little-endian fixed-width. Unlike the WAL reader — where anything
// damaged is a torn tail and replay stops cleanly — a *connection* must
// distinguish three cases: a complete frame, "need more bytes" (the
// stream is mid-frame), and corruption (bad CRC, length overflow, a
// frame above the size cap). Corruption closes the connection with a
// typed error; it never crashes the server and never desyncs the engine,
// because no engine mutation happens before a frame passes its CRC.
//
// Payloads reference schema objects by *name* (via the persist/wal_format
// codecs), never by dense id, so client and server only need to agree on
// the schema — not on interner state. Message types and error codes are
// wire-stable: never renumber, only append.
//
// Requests carry a session token (id + nonce) rather than binding a
// session to a transport connection: a client that reconnects — loopback
// or TCP — resumes its session (streams, cursors, backlog accounting) by
// presenting the same token, until idle reaping retires it.
#ifndef RAR_SERVER_PROTOCOL_H_
#define RAR_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "persist/wal_format.h"
#include "stream/stream.h"
#include "util/status.h"

namespace rar {

/// Protocol version spoken by this build; Hello carries the client's and
/// the server rejects a mismatch with kVersionMismatch.
/// v2: frames carry a deadline; Ping/PingOk; dedup-aware request ids.
inline constexpr uint32_t kWireProtocolVersion = 2;

/// Hard cap on one frame's `length` field (request_id + type + payload).
/// An honest client never gets near it; a corrupt or hostile length
/// prefix must not make the server buffer gigabytes.
inline constexpr uint32_t kMaxWireFrameBytes = 8u << 20;

/// \brief Message types. Wire-stable: never renumber. Responses are the
/// request's type + 64; kError answers any request.
enum class MessageType : uint8_t {
  kHello = 1,           ///< open or resume a session
  kRegisterQuery = 2,   ///< register a direct Boolean query
  kRegisterStream = 3,  ///< register a standing k-ary stream
  kApply = 4,           ///< apply one access response
  kPoll = 5,            ///< poll a stream's delta from a cursor
  kAcknowledge = 6,     ///< confirm delivery through a sequence
  kSnapshot = 7,        ///< point-in-time stream state
  kMetrics = 8,         ///< exporter output (JSON or Prometheus)
  kGoodbye = 9,         ///< retire the session
  kPing = 10,           ///< heartbeat/keepalive (refreshes idle clock)

  kHelloOk = 65,
  kRegisterQueryOk = 66,
  kRegisterStreamOk = 67,
  kApplyOk = 68,
  kPollOk = 69,
  kAcknowledgeOk = 70,
  kSnapshotOk = 71,
  kMetricsOk = 72,
  kGoodbyeOk = 73,
  kPingOk = 74,

  kError = 127,
};

const char* ToString(MessageType type);

/// \brief Typed error codes carried by kError frames. Wire-stable.
enum class WireErrorCode : uint8_t {
  kBadFrame = 1,         ///< framing damage — the connection must close
  kBadRequest = 2,       ///< payload failed to decode or is invalid
  kUnknownType = 3,      ///< message type this server does not speak
  kVersionMismatch = 4,  ///< protocol version not supported
  kUnknownSession = 5,   ///< bad token, or the session was reaped
  kRetryLater = 6,       ///< admission/backpressure shed; retry_after_ms set
  kCursorEvicted = 7,    ///< backlog shed evicted the cursor: re-snapshot,
                         ///< then resume from `detail` (evicted-through seq)
  kNotFound = 8,         ///< unknown stream/query handle
  kInternal = 9,         ///< server-side invariant failure
  kDeadlineExceeded = 10,  ///< the frame's deadline passed before dispatch
  kShuttingDown = 11,    ///< server draining: retry elsewhere/later
                         ///< (retry_after_ms set)
  kStaleRequest = 12,    ///< request id evicted from the dedup window:
                         ///< provably completed long ago, never re-applied
};

const char* ToString(WireErrorCode code);

/// \brief A decoded kError payload.
struct WireError {
  WireErrorCode code = WireErrorCode::kInternal;
  /// Suggested client backoff (kRetryLater); 0 otherwise.
  uint32_t retry_after_ms = 0;
  /// Code-specific detail: for kCursorEvicted the evicted-through
  /// sequence (resume PollAfter from here once re-snapshotted).
  uint64_t detail = 0;
  std::string message;
};

/// \brief One decoded frame.
struct WireFrame {
  uint64_t request_id = 0;
  MessageType type = MessageType::kError;
  std::string payload;
  /// Absolute deadline (Unix ms, wall clock); 0 = none. Responses carry 0.
  uint64_t deadline_unix_ms = 0;
};

/// Appends one framed message to `out`.
void EncodeWireFrame(uint64_t request_id, MessageType type,
                     std::string_view payload, std::string* out,
                     uint64_t deadline_unix_ms = 0);

enum class FrameParse {
  kFrame,     ///< a frame was decoded; *offset advanced past it
  kNeedMore,  ///< the buffer ends mid-frame: read more bytes
  kCorrupt,   ///< bad CRC / oversized / overflowing length: close
};

/// Decodes the frame at `*offset`. kCorrupt fills `error` with a
/// human-readable reason; `*offset` is only advanced on kFrame.
FrameParse ParseWireFrame(std::string_view data, size_t* offset,
                          WireFrame* out, std::string* error);

/// \brief Incremental frame reassembly over a byte stream (the TCP read
/// path; also the negative-test harness for truncated/corrupt input).
/// Feed bytes as they arrive, then drain frames with Next. A kCorrupt
/// verdict is sticky: the connection is beyond recovery (framing is lost)
/// and must close.
class FrameAssembler {
 public:
  void Feed(const void* data, size_t n);

  FrameParse Next(WireFrame* out, std::string* error);

  /// Bytes buffered but not yet consumed (mid-frame after a disconnect).
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  size_t pos_ = 0;
  bool corrupt_ = false;
};

// ---------------------------------------------------------------------------
// Payload codecs. Requests after Hello begin with the session token.
// Encoders assume in-memory objects are valid; decoders validate
// everything (they read the network).

/// \brief The session token every post-Hello request presents.
struct SessionToken {
  uint64_t session_id = 0;
  uint64_t nonce = 0;
};

/// \brief kHello request: version + optional resume token (0/0 = fresh).
struct HelloRequest {
  uint32_t protocol_version = kWireProtocolVersion;
  SessionToken resume;  ///< session to resume; {0,0} opens a fresh one
};
std::string EncodeHelloRequest(const HelloRequest& req);
Status DecodeHelloRequest(std::string_view payload, HelloRequest* out);

/// \brief kHelloOk: the (possibly resumed) session's token and shape.
struct HelloResponse {
  SessionToken token;
  bool resumed = false;
  uint32_t num_streams = 0;  ///< stream handles live in the session
  uint32_t num_queries = 0;  ///< query handles live in the session
};
std::string EncodeHelloResponse(const HelloResponse& resp);
Status DecodeHelloResponse(std::string_view payload, HelloResponse* out);

/// kRegisterQuery: token + query (by-name codec). Response: u32 handle.
std::string EncodeRegisterQueryRequest(const Schema& schema,
                                       const SessionToken& token,
                                       const UnionQuery& query);
Status DecodeRegisterQueryRequest(const Schema& schema,
                                  std::string_view payload, SessionToken* token,
                                  UnionQuery* query);

/// kRegisterStream: token + query + options. Response: u32 handle.
std::string EncodeRegisterStreamRequest(const Schema& schema,
                                        const SessionToken& token,
                                        const UnionQuery& query,
                                        const StreamOptions& options);
Status DecodeRegisterStreamRequest(const Schema& schema,
                                   std::string_view payload,
                                   SessionToken* token, UnionQuery* query,
                                   StreamOptions* options);

/// kApply: token + access + response facts (the WAL's by-name codec).
std::string EncodeApplyRequest(const Schema& schema, const AccessMethodSet& acs,
                               const SessionToken& token, const Access& access,
                               const std::vector<Fact>& response);
Status DecodeApplyRequest(const Schema& schema, const AccessMethodSet& acs,
                          std::string_view payload, SessionToken* token,
                          Access* access, std::vector<Fact>* response);

/// \brief kApplyOk: the absorbed delta.
struct ApplyResult {
  uint32_t facts_added = 0;
  uint64_t wal_sequence = 0;  ///< 0 when the server runs in-memory
};
std::string EncodeApplyResult(const ApplyResult& r);
Status DecodeApplyResult(std::string_view payload, ApplyResult* out);

/// kPoll: token + stream handle + cursor (deliver events past it).
std::string EncodePollRequest(const SessionToken& token, uint32_t handle,
                              uint64_t cursor);
Status DecodePollRequest(std::string_view payload, SessionToken* token,
                         uint32_t* handle, uint64_t* cursor);

/// kPollOk: the delta (events carry full tuples, values by spelling).
std::string EncodePollResponse(const Schema& schema, const StreamDelta& delta);
Status DecodePollResponse(const Schema& schema, std::string_view payload,
                          StreamDelta* out);

/// kAcknowledge: token + stream handle + upto. Response: empty payload.
std::string EncodeAckRequest(const SessionToken& token, uint32_t handle,
                             uint64_t upto);
Status DecodeAckRequest(std::string_view payload, SessionToken* token,
                        uint32_t* handle, uint64_t* upto);

/// kSnapshot: token + stream handle.
std::string EncodeSnapshotRequest(const SessionToken& token, uint32_t handle);
Status DecodeSnapshotRequest(std::string_view payload, SessionToken* token,
                             uint32_t* handle);

/// kSnapshotOk: the point-in-time stream state, bindings included.
std::string EncodeSnapshotResponse(const Schema& schema,
                                   const StreamSnapshot& snap);
Status DecodeSnapshotResponse(const Schema& schema, std::string_view payload,
                              StreamSnapshot* out);

/// \brief kMetrics: which exposition the client wants.
enum class MetricsFormat : uint8_t { kJson = 0, kPrometheus = 1 };
std::string EncodeMetricsRequest(const SessionToken& token,
                                 MetricsFormat format);
Status DecodeMetricsRequest(std::string_view payload, SessionToken* token,
                            MetricsFormat* format);
/// kMetricsOk payload is the exposition body itself (no further framing).

/// kGoodbye: token only. Response: empty payload.
std::string EncodeGoodbyeRequest(const SessionToken& token);
Status DecodeGoodbyeRequest(std::string_view payload, SessionToken* out);

/// kPing: token only — a heartbeat. Refreshes the session's idle clock
/// and reports whether the server is draining, so a well-behaved client
/// can migrate before its next real request is shed.
std::string EncodePingRequest(const SessionToken& token);
Status DecodePingRequest(std::string_view payload, SessionToken* out);

/// \brief kPingOk: liveness + drain signal.
struct PingResponse {
  bool draining = false;
  uint64_t server_unix_ms = 0;  ///< server wall clock (skew diagnostics)
};
std::string EncodePingResponse(const PingResponse& resp);
Status DecodePingResponse(std::string_view payload, PingResponse* out);

/// kError payload.
std::string EncodeWireError(const WireError& e);
Status DecodeWireError(std::string_view payload, WireError* out);

}  // namespace rar

#endif  // RAR_SERVER_PROTOCOL_H_
