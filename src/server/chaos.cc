#include "server/chaos.h"

#include <chrono>
#include <thread>

namespace rar {

Result<std::string> ChaosChannel::Dispatch(const std::string& wire) {
  size_t offset = 0;
  WireFrame request;
  std::string parse_error;
  if (ParseWireFrame(wire, &offset, &request, &parse_error) !=
      FrameParse::kFrame) {
    return Status::Internal("chaos frame failed to round-trip: " +
                            parse_error);
  }
  return server_->HandleFrame(request);
}

Result<WireFrame> ChaosChannel::Call(MessageType type,
                                     std::string_view payload,
                                     const CallContext& ctx) {
  ++log_.calls;
  const uint64_t id =
      ctx.request_id != 0 ? ctx.request_id : next_request_id_++;
  std::string wire;
  EncodeWireFrame(id, type, payload, &wire, ctx.deadline_unix_ms);

  // A downed link fails fast — no server contact, no fault draws — until
  // it heals. The draw order below is otherwise fixed so a seed replays
  // the exact same schedule.
  if (severed_remaining_ > 0) {
    --severed_remaining_;
    ++log_.severed;
    return Status::Unavailable("chaos: link severed");
  }

  if (plan_.delay_ms_max > 0) {
    const uint64_t ms = rng_.Below(plan_.delay_ms_max + 1);
    log_.delays_ms += ms;
    if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }

  if (plan_.sever > 0 && rng_.Chance(plan_.sever)) {
    severed_remaining_ = plan_.heal_after > 0 ? plan_.heal_after - 1 : 0;
    ++log_.severed;
    return Status::Unavailable("chaos: link severed");
  }

  if (plan_.drop_request > 0 && rng_.Chance(plan_.drop_request)) {
    ++log_.dropped_requests;
    return Status::Unavailable("chaos: request dropped");
  }

  if (plan_.truncate > 0 && rng_.Chance(plan_.truncate)) {
    // Cut the frame short and drop the connection: the server-side
    // assembler parks the partial bytes as kNeedMore and the close
    // discards them — mid-frame truncation is NOT corruption, and the
    // engine never hears about it.
    ++log_.truncated;
    FrameAssembler assembler;
    const size_t cut = 1 + rng_.Below(wire.size() - 1);
    assembler.Feed(wire.data(), cut);
    WireFrame frame;
    std::string error;
    if (assembler.Next(&frame, &error) == FrameParse::kCorrupt) {
      // Only possible if the cut somehow exposed a corrupt prefix —
      // count it the way a transport would.
      server_->NoteBadFrame();
    }
    return Status::Unavailable("chaos: frame truncated, connection dropped");
  }

  if (plan_.corrupt > 0 && rng_.Chance(plan_.corrupt)) {
    // Flip one byte past the length prefix: CRC must catch it, the
    // server answers nothing (a real transport closes the connection).
    ++log_.corrupted;
    std::string damaged = wire;
    const size_t pos = 4 + rng_.Below(damaged.size() - 4);
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x40);
    FrameAssembler assembler;
    assembler.Feed(damaged.data(), damaged.size());
    WireFrame frame;
    std::string error;
    if (assembler.Next(&frame, &error) == FrameParse::kCorrupt) {
      server_->NoteBadFrame();
    } else {
      // The flip landed in the payload of a frame that still passed CRC
      // (impossible) or produced a shorter valid parse — either way the
      // connection is closed without an answer.
    }
    return Status::Unavailable("chaos: frame corrupted, connection closed");
  }

  if (plan_.replay_previous > 0 && !previous_request_.empty() &&
      rng_.Chance(plan_.replay_previous)) {
    // A stale retransmit of the previous request lands first; its
    // response goes nowhere. Dedup must make this a no-op.
    ++log_.replayed;
    Result<std::string> ignored = Dispatch(previous_request_);
    RAR_RETURN_NOT_OK(ignored.status());
  }

  Result<std::string> response_bytes = Dispatch(wire);
  RAR_RETURN_NOT_OK(response_bytes.status());

  if (plan_.duplicate_request > 0 && rng_.Chance(plan_.duplicate_request)) {
    // The network delivered the frame twice; the client reads the second
    // response. With dedup both answers are byte-identical.
    ++log_.duplicated;
    response_bytes = Dispatch(wire);
    RAR_RETURN_NOT_OK(response_bytes.status());
  }

  previous_request_ = wire;

  if (plan_.drop_response > 0 && rng_.Chance(plan_.drop_response)) {
    ++log_.dropped_responses;
    return Status::Unavailable("chaos: response dropped");
  }

  size_t offset = 0;
  WireFrame response;
  std::string parse_error;
  if (ParseWireFrame(*response_bytes, &offset, &response, &parse_error) !=
      FrameParse::kFrame) {
    return Status::Internal("chaos response failed to parse: " + parse_error);
  }
  if (response.request_id != id) {
    return Status::Internal("chaos response id mismatch");
  }
  return response;
}

}  // namespace rar
