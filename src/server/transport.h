// Transport seam for the session server: how request frames reach
// SessionServer::HandleFrame and responses come back.
//
// Two implementations behind one client-side interface:
//
//  * LoopbackChannel — in-process: the request is *encoded to wire bytes
//    and re-parsed* (so every call exercises the real frame codec, CRC
//    included), then dispatched directly. Hermetic — the tests and the
//    bench drive thousands of concurrent subscribers through it with no
//    sockets, no ports, no flakes.
//
//  * TcpServer + TcpChannel — a real byte stream: a poll(2)-loop thread
//    owns non-blocking connections, each with its own FrameAssembler and
//    write backlog. Framing corruption on a connection sends a final
//    kBadFrame error and closes it (the engine is untouched — no mutation
//    happens before a frame passes its CRC). Sessions are token-bound,
//    not connection-bound, so a dropped connection loses nothing: the
//    client reconnects and resumes with its token.
//
// (A third, ChaosChannel in server/chaos.h, wraps the loopback path in a
// seeded fault plan for the chaos soak tests.)
//
// Both channels are synchronous call/response and single-threaded per
// channel; concurrency comes from many channels (one per client thread),
// which is also the natural one-connection-per-client shape on TCP.
//
// Transport failures (refused connection, reset, timeout, peer close)
// surface as StatusCode::kUnavailable so RetryPolicy (server/client.h)
// can classify them as retry-safe; a deadline that expires waiting for
// the response surfaces as kDeadlineExceeded and closes the connection
// (the response may still be in flight, and this protocol is one call
// per connection at a time — the session token makes reconnect cheap).
#ifndef RAR_SERVER_TRANSPORT_H_
#define RAR_SERVER_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>

#include "server/protocol.h"
#include "server/server.h"
#include "util/status.h"

namespace rar {

/// \brief Per-call wire metadata the *caller* controls. Request ids are
/// the retry key: RarClient re-sends a retried call under its original
/// id so the server's dedup window can answer from cache. id 0 lets the
/// channel assign one (fine for never-retried fire-and-forget callers).
struct CallContext {
  uint64_t request_id = 0;
  uint64_t deadline_unix_ms = 0;  ///< absolute, Unix ms; 0 = no deadline
};

/// \brief Client-side transport interface: one request frame out, one
/// response frame back (a *Ok or a kError; transport failures surface as
/// a non-ok Status).
class ClientChannel {
 public:
  virtual ~ClientChannel() = default;
  virtual Result<WireFrame> Call(MessageType type, std::string_view payload,
                                 const CallContext& ctx = {}) = 0;
};

/// \brief In-process channel: encode → re-parse → HandleFrame. The codec
/// round-trip is deliberate — loopback traffic is byte-identical to TCP
/// traffic, minus the socket.
class LoopbackChannel : public ClientChannel {
 public:
  explicit LoopbackChannel(SessionServer* server) : server_(server) {}

  Result<WireFrame> Call(MessageType type, std::string_view payload,
                         const CallContext& ctx = {}) override;

 private:
  SessionServer* server_;
  uint64_t next_request_id_ = 1;
};

/// \brief TCP front end: accepts connections on a loopback port and
/// pumps them through one poll(2) loop thread. Start() may fail where
/// sockets are unavailable (sandboxes); callers treat that as "TCP not
/// supported here", not as a server bug.
class TcpServer {
 public:
  explicit TcpServer(SessionServer* server) : server_(server) {}
  ~TcpServer() { Stop(); }

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral), starts the loop thread, and
  /// returns the bound port.
  Result<uint16_t> Start(uint16_t port = 0);

  /// Stops the loop thread and closes every connection. Idempotent.
  void Stop();

  uint16_t port() const { return port_; }

 private:
  void Loop();

  SessionServer* server_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe: Stop() wakes poll()
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

/// \brief Blocking client connection to a TcpServer.
class TcpChannel : public ClientChannel {
 public:
  ~TcpChannel() override;

  /// Connects with a bounded wait (non-blocking connect + poll). A
  /// refused, unreachable, or slow peer comes back as kUnavailable —
  /// the retry policy's signal — never as an indefinite hang.
  static Result<std::unique_ptr<TcpChannel>> Connect(
      const std::string& host, uint16_t port,
      uint32_t connect_timeout_ms = 5000);

  Result<WireFrame> Call(MessageType type, std::string_view payload,
                         const CallContext& ctx = {}) override;

  /// Severs the connection mid-stream (negative tests: the server must
  /// discard the partial frame and stay healthy).
  void Close();

 private:
  explicit TcpChannel(int fd) : fd_(fd) {}

  int fd_;
  uint64_t next_request_id_ = 1;
  FrameAssembler assembler_;
};

}  // namespace rar

#endif  // RAR_SERVER_TRANSPORT_H_
