// Transport seam for the session server: how request frames reach
// SessionServer::HandleFrame and responses come back.
//
// Two implementations behind one client-side interface:
//
//  * LoopbackChannel — in-process: the request is *encoded to wire bytes
//    and re-parsed* (so every call exercises the real frame codec, CRC
//    included), then dispatched directly. Hermetic — the tests and the
//    bench drive thousands of concurrent subscribers through it with no
//    sockets, no ports, no flakes.
//
//  * TcpServer + TcpChannel — a real byte stream: a poll(2)-loop thread
//    owns non-blocking connections, each with its own FrameAssembler and
//    write backlog. Framing corruption on a connection sends a final
//    kBadFrame error and closes it (the engine is untouched — no mutation
//    happens before a frame passes its CRC). Sessions are token-bound,
//    not connection-bound, so a dropped connection loses nothing: the
//    client reconnects and resumes with its token.
//
// Both channels are synchronous call/response and single-threaded per
// channel; concurrency comes from many channels (one per client thread),
// which is also the natural one-connection-per-client shape on TCP.
#ifndef RAR_SERVER_TRANSPORT_H_
#define RAR_SERVER_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>

#include "server/protocol.h"
#include "server/server.h"
#include "util/status.h"

namespace rar {

/// \brief Client-side transport interface: one request frame out, one
/// response frame back (a *Ok or a kError; transport failures surface as
/// a non-ok Status). Implementations assign request ids.
class ClientChannel {
 public:
  virtual ~ClientChannel() = default;
  virtual Result<WireFrame> Call(MessageType type,
                                 std::string_view payload) = 0;
};

/// \brief In-process channel: encode → re-parse → HandleFrame. The codec
/// round-trip is deliberate — loopback traffic is byte-identical to TCP
/// traffic, minus the socket.
class LoopbackChannel : public ClientChannel {
 public:
  explicit LoopbackChannel(SessionServer* server) : server_(server) {}

  Result<WireFrame> Call(MessageType type, std::string_view payload) override;

 private:
  SessionServer* server_;
  uint64_t next_request_id_ = 1;
};

/// \brief TCP front end: accepts connections on a loopback port and
/// pumps them through one poll(2) loop thread. Start() may fail where
/// sockets are unavailable (sandboxes); callers treat that as "TCP not
/// supported here", not as a server bug.
class TcpServer {
 public:
  explicit TcpServer(SessionServer* server) : server_(server) {}
  ~TcpServer() { Stop(); }

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral), starts the loop thread, and
  /// returns the bound port.
  Result<uint16_t> Start(uint16_t port = 0);

  /// Stops the loop thread and closes every connection. Idempotent.
  void Stop();

  uint16_t port() const { return port_; }

 private:
  void Loop();

  SessionServer* server_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe: Stop() wakes poll()
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

/// \brief Blocking client connection to a TcpServer.
class TcpChannel : public ClientChannel {
 public:
  ~TcpChannel() override;

  static Result<std::unique_ptr<TcpChannel>> Connect(const std::string& host,
                                                     uint16_t port);

  Result<WireFrame> Call(MessageType type, std::string_view payload) override;

  /// Severs the connection mid-stream (negative tests: the server must
  /// discard the partial frame and stay healthy).
  void Close();

 private:
  explicit TcpChannel(int fd) : fd_(fd) {}

  int fd_;
  uint64_t next_request_id_ = 1;
  FrameAssembler assembler_;
};

}  // namespace rar

#endif  // RAR_SERVER_TRANSPORT_H_
