#include "server/protocol.h"

namespace rar {

const char* ToString(MessageType type) {
  switch (type) {
    case MessageType::kHello: return "hello";
    case MessageType::kRegisterQuery: return "register_query";
    case MessageType::kRegisterStream: return "register_stream";
    case MessageType::kApply: return "apply";
    case MessageType::kPoll: return "poll";
    case MessageType::kAcknowledge: return "acknowledge";
    case MessageType::kSnapshot: return "snapshot";
    case MessageType::kMetrics: return "metrics";
    case MessageType::kGoodbye: return "goodbye";
    case MessageType::kPing: return "ping";
    case MessageType::kHelloOk: return "hello_ok";
    case MessageType::kRegisterQueryOk: return "register_query_ok";
    case MessageType::kRegisterStreamOk: return "register_stream_ok";
    case MessageType::kApplyOk: return "apply_ok";
    case MessageType::kPollOk: return "poll_ok";
    case MessageType::kAcknowledgeOk: return "acknowledge_ok";
    case MessageType::kSnapshotOk: return "snapshot_ok";
    case MessageType::kMetricsOk: return "metrics_ok";
    case MessageType::kGoodbyeOk: return "goodbye_ok";
    case MessageType::kPingOk: return "ping_ok";
    case MessageType::kError: return "error";
  }
  return "unknown";
}

const char* ToString(WireErrorCode code) {
  switch (code) {
    case WireErrorCode::kBadFrame: return "bad_frame";
    case WireErrorCode::kBadRequest: return "bad_request";
    case WireErrorCode::kUnknownType: return "unknown_type";
    case WireErrorCode::kVersionMismatch: return "version_mismatch";
    case WireErrorCode::kUnknownSession: return "unknown_session";
    case WireErrorCode::kRetryLater: return "retry_later";
    case WireErrorCode::kCursorEvicted: return "cursor_evicted";
    case WireErrorCode::kNotFound: return "not_found";
    case WireErrorCode::kInternal: return "internal";
    case WireErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case WireErrorCode::kShuttingDown: return "shutting_down";
    case WireErrorCode::kStaleRequest: return "stale_request";
  }
  return "unknown";
}

// ------------------------------------------------------------- framing

namespace {

/// The valid request/response type values (wire bytes are untrusted; an
/// out-of-range cast would be UB to switch on elsewhere).
bool IsKnownWireByte(uint8_t t) {
  return (t >= 1 && t <= 10) || (t >= 65 && t <= 74) || t == 127;
}

uint32_t ReadLE32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

uint64_t ReadLE64(const char* p) {
  return static_cast<uint64_t>(ReadLE32(p)) |
         static_cast<uint64_t>(ReadLE32(p + 4)) << 32;
}

}  // namespace

void EncodeWireFrame(uint64_t request_id, MessageType type,
                     std::string_view payload, std::string* out,
                     uint64_t deadline_unix_ms) {
  std::string body;
  BinWriter w(&body);
  w.U64(request_id);
  w.U8(static_cast<uint8_t>(type));
  w.U64(deadline_unix_ms);
  body.append(payload.data(), payload.size());

  BinWriter header(out);
  header.U32(static_cast<uint32_t>(body.size()));
  header.U32(Crc32(body.data(), body.size()));
  out->append(body);
}

FrameParse ParseWireFrame(std::string_view data, size_t* offset,
                          WireFrame* out, std::string* error) {
  const size_t avail = data.size() - *offset;
  if (avail < 8) return FrameParse::kNeedMore;
  const char* p = data.data() + *offset;
  const uint32_t length = ReadLE32(p);
  const uint32_t crc = ReadLE32(p + 4);
  if (length < 17) {
    if (error != nullptr) {
      *error = "frame length " + std::to_string(length) +
               " below the 17-byte header minimum";
    }
    return FrameParse::kCorrupt;
  }
  if (length > kMaxWireFrameBytes) {
    if (error != nullptr) {
      *error = "frame length " + std::to_string(length) +
               " exceeds the " + std::to_string(kMaxWireFrameBytes) +
               "-byte cap";
    }
    return FrameParse::kCorrupt;
  }
  if (avail - 8 < length) return FrameParse::kNeedMore;
  const char* body = p + 8;
  if (Crc32(body, length) != crc) {
    if (error != nullptr) *error = "frame CRC mismatch";
    return FrameParse::kCorrupt;
  }
  const uint8_t type_byte = static_cast<uint8_t>(body[8]);
  out->request_id = ReadLE64(body);
  out->deadline_unix_ms = ReadLE64(body + 9);
  // An unknown type is *not* framing corruption: the frame is intact, so
  // the server can answer kUnknownType and keep the connection. Map it to
  // kError here so no out-of-enum value escapes into a switch.
  out->type = IsKnownWireByte(type_byte) ? static_cast<MessageType>(type_byte)
                                         : MessageType::kError;
  if (!IsKnownWireByte(type_byte)) {
    out->payload = std::string(1, static_cast<char>(type_byte));
    *offset += 8 + length;
    return FrameParse::kFrame;
  }
  out->payload.assign(body + 17, length - 17);
  *offset += 8 + length;
  return FrameParse::kFrame;
}

void FrameAssembler::Feed(const void* data, size_t n) {
  // Compact the consumed prefix before it grows unbounded.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > (64u << 10) && pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(static_cast<const char*>(data), n);
}

FrameParse FrameAssembler::Next(WireFrame* out, std::string* error) {
  if (corrupt_) {
    if (error != nullptr) *error = "connection already corrupt";
    return FrameParse::kCorrupt;
  }
  const FrameParse r = ParseWireFrame(buf_, &pos_, out, error);
  if (r == FrameParse::kCorrupt) corrupt_ = true;
  return r;
}

// ------------------------------------------------------------- payloads

namespace {

void EncodeToken(const SessionToken& token, BinWriter* w) {
  w->U64(token.session_id);
  w->U64(token.nonce);
}

Status DecodeToken(BinReader* r, SessionToken* out) {
  RAR_RETURN_NOT_OK(r->U64(&out->session_id));
  RAR_RETURN_NOT_OK(r->U64(&out->nonce));
  return Status::OK();
}

Status ExpectEnd(const BinReader& r, const char* what) {
  if (!r.AtEnd()) {
    return Status::ParseError(std::string(what) + " payload has " +
                              std::to_string(r.remaining()) +
                              " trailing byte(s)");
  }
  return Status::OK();
}

}  // namespace

std::string EncodeHelloRequest(const HelloRequest& req) {
  std::string out;
  BinWriter w(&out);
  w.U32(req.protocol_version);
  EncodeToken(req.resume, &w);
  return out;
}

Status DecodeHelloRequest(std::string_view payload, HelloRequest* out) {
  BinReader r(payload);
  RAR_RETURN_NOT_OK(r.U32(&out->protocol_version));
  RAR_RETURN_NOT_OK(DecodeToken(&r, &out->resume));
  return ExpectEnd(r, "hello");
}

std::string EncodeHelloResponse(const HelloResponse& resp) {
  std::string out;
  BinWriter w(&out);
  EncodeToken(resp.token, &w);
  w.U8(resp.resumed ? 1 : 0);
  w.U32(resp.num_streams);
  w.U32(resp.num_queries);
  return out;
}

Status DecodeHelloResponse(std::string_view payload, HelloResponse* out) {
  BinReader r(payload);
  RAR_RETURN_NOT_OK(DecodeToken(&r, &out->token));
  uint8_t resumed;
  RAR_RETURN_NOT_OK(r.U8(&resumed));
  out->resumed = resumed != 0;
  RAR_RETURN_NOT_OK(r.U32(&out->num_streams));
  RAR_RETURN_NOT_OK(r.U32(&out->num_queries));
  return ExpectEnd(r, "hello_ok");
}

std::string EncodeRegisterQueryRequest(const Schema& schema,
                                       const SessionToken& token,
                                       const UnionQuery& query) {
  std::string out;
  BinWriter w(&out);
  EncodeToken(token, &w);
  EncodeUnionQuery(schema, query, &w);
  return out;
}

Status DecodeRegisterQueryRequest(const Schema& schema,
                                  std::string_view payload, SessionToken* token,
                                  UnionQuery* query) {
  BinReader r(payload);
  RAR_RETURN_NOT_OK(DecodeToken(&r, token));
  RAR_RETURN_NOT_OK(DecodeUnionQuery(schema, &r, query));
  return ExpectEnd(r, "register_query");
}

std::string EncodeRegisterStreamRequest(const Schema& schema,
                                        const SessionToken& token,
                                        const UnionQuery& query,
                                        const StreamOptions& options) {
  std::string out;
  BinWriter w(&out);
  EncodeToken(token, &w);
  EncodeUnionQuery(schema, query, &w);
  EncodeStreamOptions(options, &w);
  return out;
}

Status DecodeRegisterStreamRequest(const Schema& schema,
                                   std::string_view payload,
                                   SessionToken* token, UnionQuery* query,
                                   StreamOptions* options) {
  BinReader r(payload);
  RAR_RETURN_NOT_OK(DecodeToken(&r, token));
  RAR_RETURN_NOT_OK(DecodeUnionQuery(schema, &r, query));
  RAR_RETURN_NOT_OK(DecodeStreamOptions(&r, options));
  return ExpectEnd(r, "register_stream");
}

std::string EncodeApplyRequest(const Schema& schema, const AccessMethodSet& acs,
                               const SessionToken& token, const Access& access,
                               const std::vector<Fact>& response) {
  std::string out;
  BinWriter w(&out);
  EncodeToken(token, &w);
  out += EncodeApplyPayload(schema, acs, access, response);
  return out;
}

Status DecodeApplyRequest(const Schema& schema, const AccessMethodSet& acs,
                          std::string_view payload, SessionToken* token,
                          Access* access, std::vector<Fact>* response) {
  BinReader r(payload);
  RAR_RETURN_NOT_OK(DecodeToken(&r, token));
  return DecodeApplyPayload(schema, acs, payload.substr(16), access, response);
}

std::string EncodeApplyResult(const ApplyResult& r) {
  std::string out;
  BinWriter w(&out);
  w.U32(r.facts_added);
  w.U64(r.wal_sequence);
  return out;
}

Status DecodeApplyResult(std::string_view payload, ApplyResult* out) {
  BinReader r(payload);
  RAR_RETURN_NOT_OK(r.U32(&out->facts_added));
  RAR_RETURN_NOT_OK(r.U64(&out->wal_sequence));
  return ExpectEnd(r, "apply_ok");
}

std::string EncodePollRequest(const SessionToken& token, uint32_t handle,
                              uint64_t cursor) {
  std::string out;
  BinWriter w(&out);
  EncodeToken(token, &w);
  w.U32(handle);
  w.U64(cursor);
  return out;
}

Status DecodePollRequest(std::string_view payload, SessionToken* token,
                         uint32_t* handle, uint64_t* cursor) {
  BinReader r(payload);
  RAR_RETURN_NOT_OK(DecodeToken(&r, token));
  RAR_RETURN_NOT_OK(r.U32(handle));
  RAR_RETURN_NOT_OK(r.U64(cursor));
  return ExpectEnd(r, "poll");
}

std::string EncodePollResponse(const Schema& schema, const StreamDelta& delta) {
  std::string out;
  BinWriter w(&out);
  w.U64(delta.last_sequence);
  w.U64(delta.evicted_through);
  w.U32(static_cast<uint32_t>(delta.events.size()));
  for (const StreamEvent& e : delta.events) {
    w.U8(static_cast<uint8_t>(e.kind));
    w.U64(e.sequence);
    w.U32(static_cast<uint32_t>(e.binding.size()));
    for (Value v : e.binding) EncodeValue(schema, v, &w);
  }
  return out;
}

Status DecodePollResponse(const Schema& schema, std::string_view payload,
                          StreamDelta* out) {
  BinReader r(payload);
  RAR_RETURN_NOT_OK(r.U64(&out->last_sequence));
  RAR_RETURN_NOT_OK(r.U64(&out->evicted_through));
  uint32_t count;
  RAR_RETURN_NOT_OK(r.U32(&count));
  out->events.clear();
  out->events.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    StreamEvent e;
    uint8_t kind;
    RAR_RETURN_NOT_OK(r.U8(&kind));
    if (kind > static_cast<uint8_t>(StreamEventKind::kBecameIrrelevant)) {
      return Status::ParseError("poll event has unknown kind " +
                                std::to_string(kind));
    }
    e.kind = static_cast<StreamEventKind>(kind);
    RAR_RETURN_NOT_OK(r.U64(&e.sequence));
    uint32_t width;
    RAR_RETURN_NOT_OK(r.U32(&width));
    e.binding.reserve(width);
    for (uint32_t j = 0; j < width; ++j) {
      Value v;
      RAR_RETURN_NOT_OK(DecodeValue(schema, &r, &v));
      e.binding.push_back(v);
    }
    out->events.push_back(std::move(e));
  }
  return ExpectEnd(r, "poll_ok");
}

std::string EncodeAckRequest(const SessionToken& token, uint32_t handle,
                             uint64_t upto) {
  std::string out;
  BinWriter w(&out);
  EncodeToken(token, &w);
  w.U32(handle);
  w.U64(upto);
  return out;
}

Status DecodeAckRequest(std::string_view payload, SessionToken* token,
                        uint32_t* handle, uint64_t* upto) {
  BinReader r(payload);
  RAR_RETURN_NOT_OK(DecodeToken(&r, token));
  RAR_RETURN_NOT_OK(r.U32(handle));
  RAR_RETURN_NOT_OK(r.U64(upto));
  return ExpectEnd(r, "acknowledge");
}

std::string EncodeSnapshotRequest(const SessionToken& token, uint32_t handle) {
  std::string out;
  BinWriter w(&out);
  EncodeToken(token, &w);
  w.U32(handle);
  return out;
}

Status DecodeSnapshotRequest(std::string_view payload, SessionToken* token,
                             uint32_t* handle) {
  BinReader r(payload);
  RAR_RETURN_NOT_OK(DecodeToken(&r, token));
  RAR_RETURN_NOT_OK(r.U32(handle));
  return ExpectEnd(r, "snapshot");
}

std::string EncodeSnapshotResponse(const Schema& schema,
                                   const StreamSnapshot& snap) {
  std::string out;
  BinWriter w(&out);
  w.U64(static_cast<uint64_t>(snap.bindings_tracked));
  w.U64(static_cast<uint64_t>(snap.certain));
  w.U64(static_cast<uint64_t>(snap.relevant));
  w.U8(snap.any_relevant ? 1 : 0);
  w.U32(static_cast<uint32_t>(snap.bindings.size()));
  for (const BindingView& b : snap.bindings) {
    uint8_t flags = 0;
    if (b.certain) flags |= 1u << 0;
    if (b.relevant) flags |= 1u << 1;
    if (b.has_fresh) flags |= 1u << 2;
    if (b.unsat) flags |= 1u << 3;
    w.U8(flags);
    w.U32(static_cast<uint32_t>(b.binding.size()));
    for (Value v : b.binding) EncodeValue(schema, v, &w);
    // The witness access stays server-side: it names what the *server's*
    // crawl should perform next, which is meaningless to a remote client
    // that cannot reach into the frontier anyway.
  }
  return out;
}

Status DecodeSnapshotResponse(const Schema& schema, std::string_view payload,
                              StreamSnapshot* out) {
  BinReader r(payload);
  uint64_t tracked, certain, relevant;
  RAR_RETURN_NOT_OK(r.U64(&tracked));
  RAR_RETURN_NOT_OK(r.U64(&certain));
  RAR_RETURN_NOT_OK(r.U64(&relevant));
  out->bindings_tracked = static_cast<size_t>(tracked);
  out->certain = static_cast<size_t>(certain);
  out->relevant = static_cast<size_t>(relevant);
  uint8_t any;
  RAR_RETURN_NOT_OK(r.U8(&any));
  out->any_relevant = any != 0;
  uint32_t count;
  RAR_RETURN_NOT_OK(r.U32(&count));
  out->bindings.clear();
  out->bindings.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    BindingView b;
    uint8_t flags;
    RAR_RETURN_NOT_OK(r.U8(&flags));
    b.certain = (flags & (1u << 0)) != 0;
    b.relevant = (flags & (1u << 1)) != 0;
    b.has_fresh = (flags & (1u << 2)) != 0;
    b.unsat = (flags & (1u << 3)) != 0;
    uint32_t width;
    RAR_RETURN_NOT_OK(r.U32(&width));
    b.binding.reserve(width);
    for (uint32_t j = 0; j < width; ++j) {
      Value v;
      RAR_RETURN_NOT_OK(DecodeValue(schema, &r, &v));
      b.binding.push_back(v);
    }
    out->bindings.push_back(std::move(b));
  }
  return ExpectEnd(r, "snapshot_ok");
}

std::string EncodeMetricsRequest(const SessionToken& token,
                                 MetricsFormat format) {
  std::string out;
  BinWriter w(&out);
  EncodeToken(token, &w);
  w.U8(static_cast<uint8_t>(format));
  return out;
}

Status DecodeMetricsRequest(std::string_view payload, SessionToken* token,
                            MetricsFormat* format) {
  BinReader r(payload);
  RAR_RETURN_NOT_OK(DecodeToken(&r, token));
  uint8_t f;
  RAR_RETURN_NOT_OK(r.U8(&f));
  if (f > static_cast<uint8_t>(MetricsFormat::kPrometheus)) {
    return Status::ParseError("unknown metrics format " + std::to_string(f));
  }
  *format = static_cast<MetricsFormat>(f);
  return ExpectEnd(r, "metrics");
}

std::string EncodeGoodbyeRequest(const SessionToken& token) {
  std::string out;
  BinWriter w(&out);
  EncodeToken(token, &w);
  return out;
}

Status DecodeGoodbyeRequest(std::string_view payload, SessionToken* out) {
  BinReader r(payload);
  RAR_RETURN_NOT_OK(DecodeToken(&r, out));
  return ExpectEnd(r, "goodbye");
}

std::string EncodePingRequest(const SessionToken& token) {
  std::string out;
  BinWriter w(&out);
  EncodeToken(token, &w);
  return out;
}

Status DecodePingRequest(std::string_view payload, SessionToken* out) {
  BinReader r(payload);
  RAR_RETURN_NOT_OK(DecodeToken(&r, out));
  return ExpectEnd(r, "ping");
}

std::string EncodePingResponse(const PingResponse& resp) {
  std::string out;
  BinWriter w(&out);
  w.U8(resp.draining ? 1 : 0);
  w.U64(resp.server_unix_ms);
  return out;
}

Status DecodePingResponse(std::string_view payload, PingResponse* out) {
  BinReader r(payload);
  uint8_t draining;
  RAR_RETURN_NOT_OK(r.U8(&draining));
  out->draining = draining != 0;
  RAR_RETURN_NOT_OK(r.U64(&out->server_unix_ms));
  return ExpectEnd(r, "ping_ok");
}

std::string EncodeWireError(const WireError& e) {
  std::string out;
  BinWriter w(&out);
  w.U8(static_cast<uint8_t>(e.code));
  w.U32(e.retry_after_ms);
  w.U64(e.detail);
  w.Str(e.message);
  return out;
}

Status DecodeWireError(std::string_view payload, WireError* out) {
  BinReader r(payload);
  uint8_t code;
  RAR_RETURN_NOT_OK(r.U8(&code));
  if (code < 1 || code > static_cast<uint8_t>(WireErrorCode::kStaleRequest)) {
    return Status::ParseError("unknown wire error code " +
                              std::to_string(code));
  }
  out->code = static_cast<WireErrorCode>(code);
  RAR_RETURN_NOT_OK(r.U32(&out->retry_after_ms));
  RAR_RETURN_NOT_OK(r.U64(&out->detail));
  RAR_RETURN_NOT_OK(r.Str(&out->message));
  return ExpectEnd(r, "error");
}

}  // namespace rar
