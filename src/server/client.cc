#include "server/client.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace rar {

namespace {

Status MapWireError(const WireError& e) {
  const std::string msg = std::string(ToString(e.code)) + ": " + e.message;
  switch (e.code) {
    case WireErrorCode::kRetryLater:
      return Status::ResourceExhausted(msg);
    case WireErrorCode::kShuttingDown:
      return Status::Unavailable(msg);
    case WireErrorCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(msg);
    case WireErrorCode::kCursorEvicted:
    case WireErrorCode::kUnknownSession:
    case WireErrorCode::kVersionMismatch:
    case WireErrorCode::kStaleRequest:
      return Status::FailedPrecondition(msg);
    case WireErrorCode::kNotFound:
      return Status::NotFound(msg);
    case WireErrorCode::kBadRequest:
      return Status::InvalidArgument(msg);
    case WireErrorCode::kBadFrame:
      return Status::ParseError(msg);
    default:
      return Status::Internal(msg);
  }
}

uint64_t WallUnixMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// Server sheds worth waiting out: the request had no effect.
bool IsRetryableWireCode(WireErrorCode code) {
  return code == WireErrorCode::kRetryLater ||
         code == WireErrorCode::kShuttingDown;
}

}  // namespace

Result<std::string> RarClient::Call(MessageType request,
                                    std::string_view payload) {
  // The id outlives the loop: every attempt of one logical call shares
  // it, which is what lets the server's dedup window recognise a retry.
  const uint64_t request_id = next_request_id_++;
  ++calls_issued_;
  const uint64_t deadline =
      retry_.call_timeout_ms != 0 ? WallUnixMs() + retry_.call_timeout_ms : 0;

  uint64_t prev_backoff_ms = retry_.base_backoff_ms;
  Status last_status = Status::OK();

  for (uint32_t attempt = 1;; ++attempt) {
    if (deadline != 0 && WallUnixMs() >= deadline) {
      return last_status.ok()
                 ? Status::DeadlineExceeded("call deadline expired")
                 : Status::DeadlineExceeded("call deadline expired; last: " +
                                            last_status.ToString());
    }
    ++attempts_issued_;
    CallContext ctx;
    ctx.request_id = request_id;
    ctx.deadline_unix_ms = deadline;
    Result<WireFrame> frame = channel_->Call(request, payload, ctx);

    bool retryable = false;
    if (!frame.ok()) {
      // Transport-level failure: the channel is the suspect, not the
      // request. Only kUnavailable is retry-safe (a deadline or parse
      // failure retried would just fail again or double-spend budget).
      if (++consecutive_transport_failures_ >= retry_.suspect_after) {
        peer_suspected_ = true;
      }
      last_status = frame.status();
      retryable = last_status.code() == StatusCode::kUnavailable;
    } else {
      consecutive_transport_failures_ = 0;
      peer_suspected_ = false;
      if (frame->type != MessageType::kError) {
        const auto expected =
            static_cast<MessageType>(static_cast<uint8_t>(request) + 64);
        if (frame->type != expected) {
          return Status::Internal(std::string("unexpected response type ") +
                                  ToString(frame->type) + " to " +
                                  ToString(request));
        }
        return std::move(frame->payload);
      }
      WireError e;
      RAR_RETURN_NOT_OK(DecodeWireError(frame->payload, &e));
      last_error_ = e;
      // A Goodbye that finds the session already gone proves an earlier
      // delivery landed — a retry after a lost response, or a network
      // duplicate of this very frame retiring the session before the
      // answer we read was produced. Either way the goal state (session
      // retired) holds: that is success.
      if (request == MessageType::kGoodbye &&
          e.code == WireErrorCode::kUnknownSession) {
        return std::string();
      }
      last_status = MapWireError(e);
      retryable = IsRetryableWireCode(e.code);
      // The server's hint floors the next sleep.
      if (retryable && e.retry_after_ms > prev_backoff_ms) {
        prev_backoff_ms = e.retry_after_ms;
      }
    }

    if (!retryable || attempt >= std::max(retry_.max_attempts, 1u)) {
      if (retryable) ++retries_exhausted_;
      return last_status;
    }

    // Decorrelated jitter: sleep uniform in [base, prev*3], capped. The
    // spread de-synchronises a fleet of clients all shed at once.
    uint64_t hi = std::min<uint64_t>(
        retry_.max_backoff_ms,
        std::max<uint64_t>(prev_backoff_ms * 3, retry_.base_backoff_ms));
    uint64_t sleep_ms =
        retry_.base_backoff_ms >= hi
            ? hi
            : retry_.base_backoff_ms +
                  jitter_.Below(hi - retry_.base_backoff_ms + 1);
    if (deadline != 0) {
      const uint64_t now = WallUnixMs();
      if (now >= deadline) {
        return Status::DeadlineExceeded("call deadline expired; last: " +
                                        last_status.ToString());
      }
      sleep_ms = std::min<uint64_t>(sleep_ms, deadline - now);
    }
    prev_backoff_ms = std::max<uint64_t>(sleep_ms, 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
}

Status RarClient::Hello() { return Resume(SessionToken{}); }

Status RarClient::Resume(const SessionToken& token) {
  HelloRequest req;
  req.resume = token;
  RAR_ASSIGN_OR_RETURN(std::string payload,
                       Call(MessageType::kHello, EncodeHelloRequest(req)));
  HelloResponse resp;
  RAR_RETURN_NOT_OK(DecodeHelloResponse(payload, &resp));
  token_ = resp.token;
  resumed_ = resp.resumed;
  return Status::OK();
}

Result<uint32_t> RarClient::RegisterQuery(const UnionQuery& query) {
  RAR_ASSIGN_OR_RETURN(
      std::string payload,
      Call(MessageType::kRegisterQuery,
           EncodeRegisterQueryRequest(*schema_, token_, query)));
  BinReader r(payload);
  uint32_t handle = 0;
  RAR_RETURN_NOT_OK(r.U32(&handle));
  return handle;
}

Result<uint32_t> RarClient::RegisterStream(const UnionQuery& query,
                                           const StreamOptions& options) {
  RAR_ASSIGN_OR_RETURN(
      std::string payload,
      Call(MessageType::kRegisterStream,
           EncodeRegisterStreamRequest(*schema_, token_, query, options)));
  BinReader r(payload);
  uint32_t handle = 0;
  RAR_RETURN_NOT_OK(r.U32(&handle));
  return handle;
}

Result<ApplyResult> RarClient::Apply(const Access& access,
                                     const std::vector<Fact>& response) {
  RAR_ASSIGN_OR_RETURN(
      std::string payload,
      Call(MessageType::kApply,
           EncodeApplyRequest(*schema_, *acs_, token_, access, response)));
  ApplyResult result;
  RAR_RETURN_NOT_OK(DecodeApplyResult(payload, &result));
  return result;
}

Result<StreamDelta> RarClient::Poll(uint32_t handle, uint64_t cursor) {
  RAR_ASSIGN_OR_RETURN(
      std::string payload,
      Call(MessageType::kPoll, EncodePollRequest(token_, handle, cursor)));
  StreamDelta delta;
  RAR_RETURN_NOT_OK(DecodePollResponse(*schema_, payload, &delta));
  return delta;
}

Status RarClient::Acknowledge(uint32_t handle, uint64_t upto) {
  return Call(MessageType::kAcknowledge,
              EncodeAckRequest(token_, handle, upto))
      .status();
}

Result<StreamSnapshot> RarClient::Snapshot(uint32_t handle) {
  RAR_ASSIGN_OR_RETURN(
      std::string payload,
      Call(MessageType::kSnapshot, EncodeSnapshotRequest(token_, handle)));
  StreamSnapshot snap;
  RAR_RETURN_NOT_OK(DecodeSnapshotResponse(*schema_, payload, &snap));
  return snap;
}

Result<std::string> RarClient::Metrics(MetricsFormat format) {
  return Call(MessageType::kMetrics, EncodeMetricsRequest(token_, format));
}

Result<PingResponse> RarClient::Ping() {
  RAR_ASSIGN_OR_RETURN(std::string payload,
                       Call(MessageType::kPing, EncodePingRequest(token_)));
  PingResponse resp;
  RAR_RETURN_NOT_OK(DecodePingResponse(payload, &resp));
  return resp;
}

Status RarClient::Goodbye() {
  return Call(MessageType::kGoodbye, EncodeGoodbyeRequest(token_)).status();
}

}  // namespace rar
