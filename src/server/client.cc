#include "server/client.h"

namespace rar {

namespace {

Status MapWireError(const WireError& e) {
  const std::string msg = std::string(ToString(e.code)) + ": " + e.message;
  switch (e.code) {
    case WireErrorCode::kRetryLater:
      return Status::ResourceExhausted(msg);
    case WireErrorCode::kCursorEvicted:
    case WireErrorCode::kUnknownSession:
    case WireErrorCode::kVersionMismatch:
      return Status::FailedPrecondition(msg);
    case WireErrorCode::kNotFound:
      return Status::NotFound(msg);
    case WireErrorCode::kBadRequest:
      return Status::InvalidArgument(msg);
    case WireErrorCode::kBadFrame:
      return Status::ParseError(msg);
    default:
      return Status::Internal(msg);
  }
}

}  // namespace

Result<std::string> RarClient::Call(MessageType request,
                                    std::string_view payload) {
  Result<WireFrame> frame = channel_->Call(request, payload);
  RAR_RETURN_NOT_OK(frame.status());
  if (frame->type == MessageType::kError) {
    WireError e;
    RAR_RETURN_NOT_OK(DecodeWireError(frame->payload, &e));
    last_error_ = e;
    return MapWireError(e);
  }
  const auto expected = static_cast<MessageType>(
      static_cast<uint8_t>(request) + 64);
  if (frame->type != expected) {
    return Status::Internal(std::string("unexpected response type ") +
                            ToString(frame->type) + " to " +
                            ToString(request));
  }
  return std::move(frame->payload);
}

Status RarClient::Hello() { return Resume(SessionToken{}); }

Status RarClient::Resume(const SessionToken& token) {
  HelloRequest req;
  req.resume = token;
  RAR_ASSIGN_OR_RETURN(std::string payload,
                       Call(MessageType::kHello, EncodeHelloRequest(req)));
  HelloResponse resp;
  RAR_RETURN_NOT_OK(DecodeHelloResponse(payload, &resp));
  token_ = resp.token;
  resumed_ = resp.resumed;
  return Status::OK();
}

Result<uint32_t> RarClient::RegisterQuery(const UnionQuery& query) {
  RAR_ASSIGN_OR_RETURN(
      std::string payload,
      Call(MessageType::kRegisterQuery,
           EncodeRegisterQueryRequest(*schema_, token_, query)));
  BinReader r(payload);
  uint32_t handle = 0;
  RAR_RETURN_NOT_OK(r.U32(&handle));
  return handle;
}

Result<uint32_t> RarClient::RegisterStream(const UnionQuery& query,
                                           const StreamOptions& options) {
  RAR_ASSIGN_OR_RETURN(
      std::string payload,
      Call(MessageType::kRegisterStream,
           EncodeRegisterStreamRequest(*schema_, token_, query, options)));
  BinReader r(payload);
  uint32_t handle = 0;
  RAR_RETURN_NOT_OK(r.U32(&handle));
  return handle;
}

Result<ApplyResult> RarClient::Apply(const Access& access,
                                     const std::vector<Fact>& response) {
  RAR_ASSIGN_OR_RETURN(
      std::string payload,
      Call(MessageType::kApply,
           EncodeApplyRequest(*schema_, *acs_, token_, access, response)));
  ApplyResult result;
  RAR_RETURN_NOT_OK(DecodeApplyResult(payload, &result));
  return result;
}

Result<StreamDelta> RarClient::Poll(uint32_t handle, uint64_t cursor) {
  RAR_ASSIGN_OR_RETURN(
      std::string payload,
      Call(MessageType::kPoll, EncodePollRequest(token_, handle, cursor)));
  StreamDelta delta;
  RAR_RETURN_NOT_OK(DecodePollResponse(*schema_, payload, &delta));
  return delta;
}

Status RarClient::Acknowledge(uint32_t handle, uint64_t upto) {
  return Call(MessageType::kAcknowledge,
              EncodeAckRequest(token_, handle, upto))
      .status();
}

Result<StreamSnapshot> RarClient::Snapshot(uint32_t handle) {
  RAR_ASSIGN_OR_RETURN(
      std::string payload,
      Call(MessageType::kSnapshot, EncodeSnapshotRequest(token_, handle)));
  StreamSnapshot snap;
  RAR_RETURN_NOT_OK(DecodeSnapshotResponse(*schema_, payload, &snap));
  return snap;
}

Result<std::string> RarClient::Metrics(MetricsFormat format) {
  return Call(MessageType::kMetrics, EncodeMetricsRequest(token_, format));
}

Status RarClient::Goodbye() {
  return Call(MessageType::kGoodbye, EncodeGoodbyeRequest(token_)).status();
}

}  // namespace rar
