#include "server/server.h"

#include <chrono>

#include "obs/export.h"
#include "obs/histogram.h"

namespace rar {

namespace {

// Sentinel meaning "handler succeeded"; real codes start at kBadFrame=1.
constexpr WireErrorCode kNoError = static_cast<WireErrorCode>(0);

void Bump(std::atomic<uint64_t>& c, uint64_t n = 1) {
  c.fetch_add(n, std::memory_order_relaxed);
}

void MaxInto(std::atomic<uint64_t>& gauge, uint64_t v) {
  uint64_t cur = gauge.load(std::memory_order_relaxed);
  while (cur < v &&
         !gauge.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::string EncodeHandle(uint32_t handle) {
  std::string out;
  BinWriter w(&out);
  w.U32(handle);
  return out;
}

}  // namespace

SessionServer::SessionServer(RelevanceEngine* engine,
                             RelevanceStreamRegistry* registry,
                             ServerOptions options)
    : engine_(engine),
      registry_(registry),
      durable_(nullptr),
      options_(options),
      nonce_seed_(static_cast<uint64_t>(
                      std::chrono::steady_clock::now().time_since_epoch()
                          .count()) ^
                  reinterpret_cast<uintptr_t>(this)) {
  engine_->AddApplyListener(this);
}

SessionServer::SessionServer(DurableSession* durable, ServerOptions options)
    : engine_(&durable->engine()),
      registry_(&durable->streams()),
      durable_(durable),
      options_(options),
      nonce_seed_(static_cast<uint64_t>(
                      std::chrono::steady_clock::now().time_since_epoch()
                          .count()) ^
                  reinterpret_cast<uintptr_t>(this)) {
  engine_->AddApplyListener(this);
}

SessionServer::~SessionServer() { engine_->RemoveApplyListener(this); }

uint64_t SessionServer::NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string SessionServer::HandleFrame(const WireFrame& frame) {
  const uint64_t t0 = MonotonicNs();
  Bump(counters_.requests);

  WireError err;
  err.code = kNoError;
  std::string payload;
  MessageType response_type = MessageType::kError;

  EngineObservability& obs = engine_->obs();
  switch (frame.type) {
    case MessageType::kHello:
      Bump(counters_.requests_hello);
      payload = HandleHello(frame.payload, &err);
      response_type = MessageType::kHelloOk;
      break;
    case MessageType::kRegisterQuery:
      Bump(counters_.requests_register_query);
      payload = HandleRegisterQuery(frame.payload, &err);
      response_type = MessageType::kRegisterQueryOk;
      obs.server_register_ns.Record(MonotonicNs() - t0);
      break;
    case MessageType::kRegisterStream:
      Bump(counters_.requests_register_stream);
      payload = HandleRegisterStream(frame.payload, &err);
      response_type = MessageType::kRegisterStreamOk;
      obs.server_register_ns.Record(MonotonicNs() - t0);
      break;
    case MessageType::kApply:
      Bump(counters_.requests_apply);
      payload = HandleApply(frame.payload, &err);
      response_type = MessageType::kApplyOk;
      obs.server_apply_ns.Record(MonotonicNs() - t0);
      break;
    case MessageType::kPoll:
      Bump(counters_.requests_poll);
      payload = HandlePoll(frame.payload, &err);
      response_type = MessageType::kPollOk;
      obs.server_poll_ns.Record(MonotonicNs() - t0);
      break;
    case MessageType::kAcknowledge:
      Bump(counters_.requests_acknowledge);
      payload = HandleAcknowledge(frame.payload, &err);
      response_type = MessageType::kAcknowledgeOk;
      break;
    case MessageType::kSnapshot:
      Bump(counters_.requests_snapshot);
      payload = HandleSnapshot(frame.payload, &err);
      response_type = MessageType::kSnapshotOk;
      break;
    case MessageType::kMetrics:
      Bump(counters_.requests_metrics);
      payload = HandleMetrics(frame.payload, &err);
      response_type = MessageType::kMetricsOk;
      break;
    case MessageType::kGoodbye:
      payload = HandleGoodbye(frame.payload, &err);
      response_type = MessageType::kGoodbyeOk;
      break;
    default:
      // The frame parser maps intact frames with an unknown type byte to
      // kError with the raw byte as payload; any response type landing
      // here is equally unanswerable.
      err.code = WireErrorCode::kUnknownType;
      err.message = "server does not speak this message type";
      break;
  }

  obs.server_request_ns.Record(MonotonicNs() - t0);

  std::string out;
  if (err.code != kNoError) {
    Bump(counters_.errors);
    EncodeWireFrame(frame.request_id, MessageType::kError,
                    EncodeWireError(err), &out);
  } else {
    EncodeWireFrame(frame.request_id, response_type, payload, &out);
  }
  return out;
}

void SessionServer::NoteBadFrame() {
  Bump(counters_.bad_frames);
  Bump(counters_.errors);
}

std::shared_ptr<SessionServer::ServerSession> SessionServer::FindSession(
    const SessionToken& token, WireError* error) {
  {
    std::shared_lock<std::shared_mutex> lock(sessions_mu_);
    auto it = sessions_.find(token.session_id);
    if (it != sessions_.end() && it->second->nonce == token.nonce) {
      it->second->last_active_ms.store(NowMs(), std::memory_order_relaxed);
      return it->second;
    }
  }
  error->code = WireErrorCode::kUnknownSession;
  error->message = "unknown session token (bad nonce, reaped, or retired)";
  return nullptr;
}

std::string SessionServer::HandleHello(std::string_view payload,
                                       WireError* error) {
  HelloRequest req;
  Status st = DecodeHelloRequest(payload, &req);
  if (!st.ok()) {
    error->code = WireErrorCode::kBadRequest;
    error->message = st.ToString();
    return "";
  }
  if (req.protocol_version != kWireProtocolVersion) {
    error->code = WireErrorCode::kVersionMismatch;
    error->detail = kWireProtocolVersion;
    error->message = "server speaks wire protocol version " +
                     std::to_string(kWireProtocolVersion);
    return "";
  }

  // Resume path: the token must match exactly (id + nonce) — a stale or
  // forged nonce gets kUnknownSession, never someone else's session.
  if (req.resume.session_id != 0 || req.resume.nonce != 0) {
    WireError find_err;
    std::shared_ptr<ServerSession> session = FindSession(req.resume, &find_err);
    if (session == nullptr) {
      *error = find_err;
      return "";
    }
    Bump(counters_.sessions_resumed);
    HelloResponse resp;
    resp.token = {session->id, session->nonce};
    resp.resumed = true;
    {
      std::lock_guard<std::mutex> lock(session->mu);
      resp.num_streams = static_cast<uint32_t>(session->streams.size());
      resp.num_queries = static_cast<uint32_t>(session->queries.size());
    }
    return EncodeHelloResponse(resp);
  }

  // Fresh session: reap first so idle sessions do not hold admission slots.
  ReapIdleSessions();
  auto session = std::make_shared<ServerSession>();
  {
    std::unique_lock<std::shared_mutex> lock(sessions_mu_);
    if (options_.max_sessions > 0 &&
        sessions_.size() >= options_.max_sessions) {
      Bump(counters_.sessions_shed);
      error->code = WireErrorCode::kRetryLater;
      error->retry_after_ms = options_.retry_after_ms;
      error->message = "session admission: " +
                       std::to_string(options_.max_sessions) +
                       " sessions already live; retry later";
      return "";
    }
    session->id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
    // splitmix64 finalizer over (seed, id): unguessable enough that a
    // client cannot trivially forge another session's nonce, cheap enough
    // to mint under the lock.
    uint64_t z = nonce_seed_ + session->id * 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    session->nonce = z ^ (z >> 31);
    session->last_active_ms.store(NowMs(), std::memory_order_relaxed);
    sessions_.emplace(session->id, session);
  }
  Bump(counters_.sessions_opened);

  HelloResponse resp;
  resp.token = {session->id, session->nonce};
  resp.resumed = false;
  return EncodeHelloResponse(resp);
}

std::string SessionServer::HandleRegisterQuery(std::string_view payload,
                                               WireError* error) {
  SessionToken token;
  UnionQuery query;
  Status st = DecodeRegisterQueryRequest(engine_->schema(), payload, &token,
                                         &query);
  if (!st.ok()) {
    error->code = WireErrorCode::kBadRequest;
    error->message = st.ToString();
    return "";
  }
  std::shared_ptr<ServerSession> session = FindSession(token, error);
  if (session == nullptr) return "";

  Result<QueryId> qid = Status::Internal("unreached");
  {
    std::lock_guard<std::mutex> reg(register_mu_);
    qid = durable_ != nullptr ? durable_->RegisterQuery(query)
                              : engine_->RegisterQuery(query);
  }
  if (!qid.ok()) {
    error->code = WireErrorCode::kBadRequest;
    error->message = qid.status().ToString();
    return "";
  }
  uint32_t handle;
  {
    std::lock_guard<std::mutex> lock(session->mu);
    handle = static_cast<uint32_t>(session->queries.size());
    session->queries.push_back(*qid);
  }
  return EncodeHandle(handle);
}

std::string SessionServer::HandleRegisterStream(std::string_view payload,
                                                WireError* error) {
  SessionToken token;
  UnionQuery query;
  StreamOptions opts;
  Status st = DecodeRegisterStreamRequest(engine_->schema(), payload, &token,
                                          &query, &opts);
  if (!st.ok()) {
    error->code = WireErrorCode::kBadRequest;
    error->message = st.ToString();
    return "";
  }
  std::shared_ptr<ServerSession> session = FindSession(token, error);
  if (session == nullptr) return "";

  // Server-side stream policy: cursors must be resumable (reconnect), and
  // the backlog cap only ever tightens — a client cannot opt out of the
  // server's memory bound.
  opts.retain_events = true;
  if (options_.max_backlog_events > 0 &&
      (opts.retain_cap == 0 || opts.retain_cap > options_.max_backlog_events)) {
    opts.retain_cap = options_.max_backlog_events;
  }

  Result<StreamId> sid = Status::Internal("unreached");
  {
    std::lock_guard<std::mutex> reg(register_mu_);
    sid = durable_ != nullptr ? durable_->RegisterStream(query, opts)
                              : registry_->Register(query, opts);
  }
  if (!sid.ok()) {
    error->code = WireErrorCode::kBadRequest;
    error->message = sid.status().ToString();
    return "";
  }
  uint32_t handle;
  {
    std::lock_guard<std::mutex> lock(session->mu);
    handle = static_cast<uint32_t>(session->streams.size());
    session->streams.push_back(*sid);
    session->degraded.push_back(0);
  }
  return EncodeHandle(handle);
}

std::string SessionServer::HandleApply(std::string_view payload,
                                       WireError* error) {
  SessionToken token;
  Access access;
  std::vector<Fact> response;
  Status st = DecodeApplyRequest(engine_->schema(), engine_->access_methods(),
                                 payload, &token, &access, &response);
  if (!st.ok()) {
    error->code = WireErrorCode::kBadRequest;
    error->message = st.ToString();
    return "";
  }
  std::shared_ptr<ServerSession> session = FindSession(token, error);
  if (session == nullptr) return "";

  Result<int> added = durable_ != nullptr
                          ? durable_->Apply(access, response)
                          : engine_->ApplyResponse(access, response);
  if (!added.ok()) {
    if (added.status().code() == StatusCode::kResourceExhausted) {
      // Engine apply admission shed the request: typed backoff, not a
      // failure — the client retries after retry_after_ms.
      Bump(counters_.applies_shed);
      error->code = WireErrorCode::kRetryLater;
      error->retry_after_ms = options_.retry_after_ms;
    } else {
      error->code = WireErrorCode::kBadRequest;
    }
    error->message = added.status().ToString();
    return "";
  }
  ApplyResult result;
  result.facts_added = static_cast<uint32_t>(*added);
  result.wal_sequence = durable_ != nullptr ? durable_->last_sequence() : 0;
  return EncodeApplyResult(result);
}

std::string SessionServer::HandlePoll(std::string_view payload,
                                      WireError* error) {
  SessionToken token;
  uint32_t handle = 0;
  uint64_t cursor = 0;
  Status st = DecodePollRequest(payload, &token, &handle, &cursor);
  if (!st.ok()) {
    error->code = WireErrorCode::kBadRequest;
    error->message = st.ToString();
    return "";
  }
  std::shared_ptr<ServerSession> session = FindSession(token, error);
  if (session == nullptr) return "";

  StreamId sid;
  {
    std::lock_guard<std::mutex> lock(session->mu);
    if (handle >= session->streams.size()) {
      error->code = WireErrorCode::kNotFound;
      error->message = "unknown stream handle " + std::to_string(handle);
      return "";
    }
    sid = session->streams[handle];
  }

  Result<StreamDelta> delta = registry_->PollAfter(sid, cursor);
  if (!delta.ok()) {
    if (delta.status().code() == StatusCode::kFailedPrecondition) {
      // Retention cap dropped events this cursor still needed: tell the
      // client where the horizon is so it can re-snapshot and resume.
      Bump(counters_.cursor_evictions);
      error->code = WireErrorCode::kCursorEvicted;
      error->detail = registry_->EvictedThrough(sid);
    } else {
      error->code = WireErrorCode::kBadRequest;
    }
    error->message = delta.status().ToString();
    return "";
  }
  PoliceBacklog(*session, handle, sid);
  return EncodePollResponse(engine_->schema(), *delta);
}

void SessionServer::PoliceBacklog(ServerSession& session, uint32_t handle,
                                  StreamId sid) {
  const uint64_t retained = registry_->RetainedCount(sid);
  MaxInto(counters_.backlog_high_water, retained);
  if (options_.degrade_backlog_events == 0 ||
      retained <= options_.degrade_backlog_events) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(session.mu);
    if (handle >= session.degraded.size() || session.degraded[handle]) return;
    session.degraded[handle] = 1;
  }
  // The stream is running hot: shed its gate indexes and fall back to
  // conservative full-recheck waves. Verdict-identical (the flag is
  // consulted per wave), so parity holds — only the wave cost changes.
  if (registry_->Degrade(sid).ok()) Bump(counters_.streams_degraded);
}

std::string SessionServer::HandleAcknowledge(std::string_view payload,
                                             WireError* error) {
  SessionToken token;
  uint32_t handle = 0;
  uint64_t upto = 0;
  Status st = DecodeAckRequest(payload, &token, &handle, &upto);
  if (!st.ok()) {
    error->code = WireErrorCode::kBadRequest;
    error->message = st.ToString();
    return "";
  }
  std::shared_ptr<ServerSession> session = FindSession(token, error);
  if (session == nullptr) return "";

  StreamId sid;
  {
    std::lock_guard<std::mutex> lock(session->mu);
    if (handle >= session->streams.size()) {
      error->code = WireErrorCode::kNotFound;
      error->message = "unknown stream handle " + std::to_string(handle);
      return "";
    }
    sid = session->streams[handle];
  }
  st = durable_ != nullptr ? durable_->Acknowledge(sid, upto)
                           : registry_->Acknowledge(sid, upto);
  if (!st.ok()) {
    error->code = WireErrorCode::kBadRequest;
    error->message = st.ToString();
    return "";
  }
  return "";
}

std::string SessionServer::HandleSnapshot(std::string_view payload,
                                          WireError* error) {
  SessionToken token;
  uint32_t handle = 0;
  Status st = DecodeSnapshotRequest(payload, &token, &handle);
  if (!st.ok()) {
    error->code = WireErrorCode::kBadRequest;
    error->message = st.ToString();
    return "";
  }
  std::shared_ptr<ServerSession> session = FindSession(token, error);
  if (session == nullptr) return "";

  StreamId sid;
  {
    std::lock_guard<std::mutex> lock(session->mu);
    if (handle >= session->streams.size()) {
      error->code = WireErrorCode::kNotFound;
      error->message = "unknown stream handle " + std::to_string(handle);
      return "";
    }
    sid = session->streams[handle];
  }
  return EncodeSnapshotResponse(engine_->schema(), registry_->Snapshot(sid));
}

std::string SessionServer::HandleMetrics(std::string_view payload,
                                         WireError* error) {
  SessionToken token;
  MetricsFormat format = MetricsFormat::kJson;
  Status st = DecodeMetricsRequest(payload, &token, &format);
  if (!st.ok()) {
    error->code = WireErrorCode::kBadRequest;
    error->message = st.ToString();
    return "";
  }
  std::shared_ptr<ServerSession> session = FindSession(token, error);
  if (session == nullptr) return "";

  // engine_->stats() folds in this server's ContributeStats, so the
  // rar_server_* rows ride the same exposition as the engine's.
  MetricsExport metrics;
  metrics.stats = engine_->stats();
  metrics.obs = engine_->obs().Snapshot();
  metrics.schema = &engine_->schema();
  return format == MetricsFormat::kPrometheus
             ? ExportMetricsPrometheus(metrics)
             : ExportMetricsJson(metrics);
}

std::string SessionServer::HandleGoodbye(std::string_view payload,
                                         WireError* error) {
  SessionToken token;
  Status st = DecodeGoodbyeRequest(payload, &token);
  if (!st.ok()) {
    error->code = WireErrorCode::kBadRequest;
    error->message = st.ToString();
    return "";
  }
  {
    std::unique_lock<std::shared_mutex> lock(sessions_mu_);
    auto it = sessions_.find(token.session_id);
    if (it == sessions_.end() || it->second->nonce != token.nonce) {
      error->code = WireErrorCode::kUnknownSession;
      error->message = "unknown session token";
      return "";
    }
    sessions_.erase(it);
  }
  Bump(counters_.sessions_retired);
  return "";
}

size_t SessionServer::ReapIdleSessions() {
  if (options_.idle_timeout_ms == 0) return 0;
  const uint64_t now = NowMs();
  size_t reaped = 0;
  {
    std::unique_lock<std::shared_mutex> lock(sessions_mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      const uint64_t last =
          it->second->last_active_ms.load(std::memory_order_relaxed);
      if (now - last > options_.idle_timeout_ms) {
        it = sessions_.erase(it);
        ++reaped;
      } else {
        ++it;
      }
    }
  }
  Bump(counters_.sessions_reaped, reaped);
  return reaped;
}

size_t SessionServer::num_sessions() const {
  std::shared_lock<std::shared_mutex> lock(sessions_mu_);
  return sessions_.size();
}

void SessionServer::ContributeStats(EngineStats* stats) const {
  const auto load = [](const std::atomic<uint64_t>& c) {
    return c.load(std::memory_order_relaxed);
  };
  stats->server_sessions_opened += load(counters_.sessions_opened);
  stats->server_sessions_resumed += load(counters_.sessions_resumed);
  stats->server_sessions_retired += load(counters_.sessions_retired);
  stats->server_sessions_reaped += load(counters_.sessions_reaped);
  stats->server_sessions_shed += load(counters_.sessions_shed);
  stats->server_sessions_active += num_sessions();
  stats->server_requests += load(counters_.requests);
  stats->server_requests_hello += load(counters_.requests_hello);
  stats->server_requests_register_query +=
      load(counters_.requests_register_query);
  stats->server_requests_register_stream +=
      load(counters_.requests_register_stream);
  stats->server_requests_apply += load(counters_.requests_apply);
  stats->server_requests_poll += load(counters_.requests_poll);
  stats->server_requests_acknowledge += load(counters_.requests_acknowledge);
  stats->server_requests_snapshot += load(counters_.requests_snapshot);
  stats->server_requests_metrics += load(counters_.requests_metrics);
  stats->server_errors += load(counters_.errors);
  stats->server_bad_frames += load(counters_.bad_frames);
  stats->server_applies_shed += load(counters_.applies_shed);
  stats->server_streams_degraded += load(counters_.streams_degraded);
  stats->server_cursor_evictions += load(counters_.cursor_evictions);
  stats->server_backlog_high_water += load(counters_.backlog_high_water);
}

}  // namespace rar
