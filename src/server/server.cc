#include "server/server.h"

#include <chrono>
#include <thread>

#include "obs/export.h"
#include "obs/histogram.h"

namespace rar {

namespace {

// Sentinel meaning "handler succeeded"; real codes start at kBadFrame=1.
constexpr WireErrorCode kNoError = static_cast<WireErrorCode>(0);

void Bump(std::atomic<uint64_t>& c, uint64_t n = 1) {
  c.fetch_add(n, std::memory_order_relaxed);
}

void MaxInto(std::atomic<uint64_t>& gauge, uint64_t v) {
  uint64_t cur = gauge.load(std::memory_order_relaxed);
  while (cur < v &&
         !gauge.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::string EncodeHandle(uint32_t handle) {
  std::string out;
  BinWriter w(&out);
  w.U32(handle);
  return out;
}

/// Scoped in-flight mutation count for the drain protocol: increment
/// *before* the draining check (seq_cst on both sides), so a mutation
/// that raced past the flag is still visible to BeginDrain's quiesce.
class MutationGuard {
 public:
  explicit MutationGuard(std::atomic<uint64_t>* c) : c_(c) {
    c_->fetch_add(1, std::memory_order_seq_cst);
  }
  ~MutationGuard() { c_->fetch_sub(1, std::memory_order_seq_cst); }
  MutationGuard(const MutationGuard&) = delete;
  MutationGuard& operator=(const MutationGuard&) = delete;

 private:
  std::atomic<uint64_t>* c_;
};

}  // namespace

SessionServer::SessionServer(RelevanceEngine* engine,
                             RelevanceStreamRegistry* registry,
                             ServerOptions options)
    : engine_(engine),
      registry_(registry),
      durable_(nullptr),
      options_(options),
      nonce_seed_(static_cast<uint64_t>(
                      std::chrono::steady_clock::now().time_since_epoch()
                          .count()) ^
                  reinterpret_cast<uintptr_t>(this)) {
  engine_->AddApplyListener(this);
}

SessionServer::SessionServer(DurableSession* durable, ServerOptions options)
    : engine_(&durable->engine()),
      registry_(&durable->streams()),
      durable_(durable),
      options_(options),
      nonce_seed_(static_cast<uint64_t>(
                      std::chrono::steady_clock::now().time_since_epoch()
                          .count()) ^
                  reinterpret_cast<uintptr_t>(this)) {
  engine_->AddApplyListener(this);

  // Re-seed the token table from the durable session registry: a client
  // whose server crashed resumes its pre-crash token (handles, cursors,
  // dedup window) against this process as if nothing happened.
  const std::vector<QueryId>& direct = durable->direct_query_ids();
  uint64_t max_id = 0;
  for (const DurableSession::RecoveredServerSession& rs :
       durable->server_sessions()) {
    auto session = std::make_shared<ServerSession>(options_.dedup_window);
    session->id = rs.id;
    session->nonce = rs.nonce;
    session->queries.reserve(rs.query_regs.size());
    for (uint32_t idx : rs.query_regs) {
      session->queries.push_back(idx < direct.size() ? direct[idx]
                                                     : QueryId{0});
    }
    session->streams = rs.streams;
    session->degraded.assign(rs.streams.size(), 0);
    session->last_active_ms.store(NowMs(), std::memory_order_relaxed);
    sessions_.emplace(rs.id, std::move(session));
    if (rs.id > max_id) max_id = rs.id;
    Bump(counters_.sessions_recovered);
  }
  if (max_id != 0) {
    next_session_id_.store(max_id + 1, std::memory_order_relaxed);
  }
}

SessionServer::~SessionServer() { engine_->RemoveApplyListener(this); }

uint64_t SessionServer::NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t SessionServer::UnixMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::string SessionServer::HandleFrame(const WireFrame& frame) {
  const uint64_t t0 = MonotonicNs();
  Bump(counters_.requests);

  WireError err;
  err.code = kNoError;
  std::string payload;
  MessageType response_type = MessageType::kError;

  EngineObservability& obs = engine_->obs();
  if (frame.deadline_unix_ms != 0 && UnixMs() > frame.deadline_unix_ms) {
    // The client has already given up on this frame; doing the work would
    // only burn server time on a response nobody is waiting for.
    Bump(counters_.deadline_rejections);
    err.code = WireErrorCode::kDeadlineExceeded;
    err.message = "deadline expired before dispatch";
  } else {
    switch (frame.type) {
      case MessageType::kHello:
        Bump(counters_.requests_hello);
        payload = HandleHello(frame, &err);
        response_type = MessageType::kHelloOk;
        break;
      case MessageType::kRegisterQuery:
        Bump(counters_.requests_register_query);
        payload = HandleRegisterQuery(frame, &err);
        response_type = MessageType::kRegisterQueryOk;
        obs.server_register_ns.Record(MonotonicNs() - t0);
        break;
      case MessageType::kRegisterStream:
        Bump(counters_.requests_register_stream);
        payload = HandleRegisterStream(frame, &err);
        response_type = MessageType::kRegisterStreamOk;
        obs.server_register_ns.Record(MonotonicNs() - t0);
        break;
      case MessageType::kApply:
        Bump(counters_.requests_apply);
        payload = HandleApply(frame, &err);
        response_type = MessageType::kApplyOk;
        obs.server_apply_ns.Record(MonotonicNs() - t0);
        break;
      case MessageType::kPoll:
        Bump(counters_.requests_poll);
        payload = HandlePoll(frame, &err);
        response_type = MessageType::kPollOk;
        obs.server_poll_ns.Record(MonotonicNs() - t0);
        break;
      case MessageType::kAcknowledge:
        Bump(counters_.requests_acknowledge);
        payload = HandleAcknowledge(frame, &err);
        response_type = MessageType::kAcknowledgeOk;
        break;
      case MessageType::kSnapshot:
        Bump(counters_.requests_snapshot);
        payload = HandleSnapshot(frame, &err);
        response_type = MessageType::kSnapshotOk;
        break;
      case MessageType::kMetrics:
        Bump(counters_.requests_metrics);
        payload = HandleMetrics(frame, &err);
        response_type = MessageType::kMetricsOk;
        break;
      case MessageType::kGoodbye:
        payload = HandleGoodbye(frame, &err);
        response_type = MessageType::kGoodbyeOk;
        break;
      case MessageType::kPing:
        Bump(counters_.requests_ping);
        payload = HandlePing(frame, &err);
        response_type = MessageType::kPingOk;
        break;
      default:
        // The frame parser maps intact frames with an unknown type byte to
        // kError with the raw byte as payload; any response type landing
        // here is equally unanswerable.
        err.code = WireErrorCode::kUnknownType;
        err.message = "server does not speak this message type";
        break;
    }
  }

  obs.server_request_ns.Record(MonotonicNs() - t0);

  std::string out;
  if (err.code != kNoError) {
    Bump(counters_.errors);
    EncodeWireFrame(frame.request_id, MessageType::kError,
                    EncodeWireError(err), &out);
  } else {
    EncodeWireFrame(frame.request_id, response_type, payload, &out);
  }
  return out;
}

void SessionServer::NoteBadFrame() {
  Bump(counters_.bad_frames);
  Bump(counters_.errors);
}

void SessionServer::ShedDraining(WireError* error) {
  Bump(counters_.drain_sheds);
  error->code = WireErrorCode::kShuttingDown;
  error->retry_after_ms = options_.drain_retry_after_ms;
  error->message = "server is draining; retry against another replica";
}

bool SessionServer::AnswerFromOutcome(
    const DurableSession::TaggedOutcome& outcome, uint8_t request_type,
    std::string* payload, WireError* error) {
  using Kind = DurableSession::TaggedOutcome::Kind;
  switch (outcome.kind) {
    case Kind::kHit:
      if (outcome.type != request_type) {
        error->code = WireErrorCode::kBadRequest;
        error->message =
            "request id was already used by a different message type";
        return true;
      }
      Bump(counters_.dedup_hits);
      *payload = outcome.response;
      return true;
    case Kind::kStale:
      Bump(counters_.dedup_stale);
      error->code = WireErrorCode::kStaleRequest;
      error->message =
          "request id predates the dedup window: the original completed "
          "long ago; re-issuing it would risk a double-apply";
      return true;
    case Kind::kFresh:
      return false;
  }
  return false;
}

std::shared_ptr<SessionServer::ServerSession> SessionServer::FindSession(
    const SessionToken& token, WireError* error) {
  {
    std::shared_lock<std::shared_mutex> lock(sessions_mu_);
    auto it = sessions_.find(token.session_id);
    if (it != sessions_.end() && it->second->nonce == token.nonce) {
      it->second->last_active_ms.store(NowMs(), std::memory_order_relaxed);
      return it->second;
    }
  }
  error->code = WireErrorCode::kUnknownSession;
  error->message = "unknown session token (bad nonce, reaped, or retired)";
  return nullptr;
}

std::string SessionServer::HandleHello(const WireFrame& frame,
                                       WireError* error) {
  HelloRequest req;
  Status st = DecodeHelloRequest(frame.payload, &req);
  if (!st.ok()) {
    error->code = WireErrorCode::kBadRequest;
    error->message = st.ToString();
    return "";
  }
  if (req.protocol_version != kWireProtocolVersion) {
    error->code = WireErrorCode::kVersionMismatch;
    error->detail = kWireProtocolVersion;
    error->message = "server speaks wire protocol version " +
                     std::to_string(kWireProtocolVersion);
    return "";
  }

  // Resume path: the token must match exactly (id + nonce) — a stale or
  // forged nonce gets kUnknownSession, never someone else's session.
  // Resumes are allowed while draining: an existing client needs its
  // session to poll out remaining events and say Goodbye.
  if (req.resume.session_id != 0 || req.resume.nonce != 0) {
    WireError find_err;
    std::shared_ptr<ServerSession> session = FindSession(req.resume, &find_err);
    if (session == nullptr) {
      *error = find_err;
      return "";
    }
    Bump(counters_.sessions_resumed);
    HelloResponse resp;
    resp.token = {session->id, session->nonce};
    resp.resumed = true;
    {
      std::lock_guard<std::mutex> lock(session->mu);
      resp.num_streams = static_cast<uint32_t>(session->streams.size());
      resp.num_queries = static_cast<uint32_t>(session->queries.size());
    }
    return EncodeHelloResponse(resp);
  }

  if (draining()) {
    ShedDraining(error);
    return "";
  }

  // Fresh session: reap first so idle sessions do not hold admission slots.
  ReapIdleSessions();
  auto session = std::make_shared<ServerSession>(options_.dedup_window);
  {
    std::unique_lock<std::shared_mutex> lock(sessions_mu_);
    if (options_.max_sessions > 0 &&
        sessions_.size() >= options_.max_sessions) {
      Bump(counters_.sessions_shed);
      error->code = WireErrorCode::kRetryLater;
      error->retry_after_ms = options_.retry_after_ms;
      error->message = "session admission: " +
                       std::to_string(options_.max_sessions) +
                       " sessions already live; retry later";
      return "";
    }
    session->id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
    // splitmix64 finalizer over (seed, id): unguessable enough that a
    // client cannot trivially forge another session's nonce, cheap enough
    // to mint under the lock.
    uint64_t z = nonce_seed_ + session->id * 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    session->nonce = z ^ (z >> 31);
    session->last_active_ms.store(NowMs(), std::memory_order_relaxed);
    sessions_.emplace(session->id, session);
  }

  // Persist the token before answering: if the server crashes after the
  // client learns the token, recovery must still recognise it.
  if (durable_ != nullptr) {
    Status open = durable_->OpenServerSession(session->id, session->nonce);
    if (!open.ok()) {
      {
        std::unique_lock<std::shared_mutex> lock(sessions_mu_);
        sessions_.erase(session->id);
      }
      error->code = WireErrorCode::kInternal;
      error->message = open.ToString();
      return "";
    }
  }
  Bump(counters_.sessions_opened);

  HelloResponse resp;
  resp.token = {session->id, session->nonce};
  resp.resumed = false;
  return EncodeHelloResponse(resp);
}

std::string SessionServer::HandleRegisterQuery(const WireFrame& frame,
                                               WireError* error) {
  MutationGuard inflight(&inflight_mutations_);
  if (draining()) {
    ShedDraining(error);
    return "";
  }
  SessionToken token;
  UnionQuery query;
  Status st = DecodeRegisterQueryRequest(engine_->schema(), frame.payload,
                                         &token, &query);
  if (!st.ok()) {
    error->code = WireErrorCode::kBadRequest;
    error->message = st.ToString();
    return "";
  }
  std::shared_ptr<ServerSession> session = FindSession(token, error);
  if (session == nullptr) return "";

  const uint8_t type_byte = static_cast<uint8_t>(frame.type);
  std::lock_guard<std::mutex> reg(register_mu_);

  if (durable_ != nullptr) {
    Result<DurableSession::TaggedOutcome> outcome =
        durable_->RegisterQueryTagged(session->id, frame.request_id, query);
    if (!outcome.ok()) {
      error->code = WireErrorCode::kBadRequest;
      error->message = outcome.status().ToString();
      return "";
    }
    std::string payload;
    if (AnswerFromOutcome(*outcome, type_byte, &payload, error)) {
      return payload;
    }
    std::lock_guard<std::mutex> lock(session->mu);
    if (session->queries.size() != outcome->handle) {
      error->code = WireErrorCode::kInternal;
      error->message = "session handle table out of sync with durable state";
      return "";
    }
    session->queries.push_back(outcome->query_id);
    return outcome->response;
  }

  {
    std::lock_guard<std::mutex> lock(session->mu);
    const DedupWindow::Entry* entry = nullptr;
    switch (session->dedup.Probe(frame.request_id, &entry)) {
      case DedupWindow::Verdict::kHit:
        if (entry->type != type_byte) {
          error->code = WireErrorCode::kBadRequest;
          error->message =
              "request id was already used by a different message type";
          return "";
        }
        Bump(counters_.dedup_hits);
        return entry->response_payload;
      case DedupWindow::Verdict::kStale:
        Bump(counters_.dedup_stale);
        error->code = WireErrorCode::kStaleRequest;
        error->message = "request id predates the dedup window";
        return "";
      case DedupWindow::Verdict::kFresh:
        break;
    }
  }

  Result<QueryId> qid = engine_->RegisterQuery(query);
  if (!qid.ok()) {
    error->code = WireErrorCode::kBadRequest;
    error->message = qid.status().ToString();
    return "";
  }
  std::string payload;
  {
    std::lock_guard<std::mutex> lock(session->mu);
    const uint32_t handle = static_cast<uint32_t>(session->queries.size());
    session->queries.push_back(*qid);
    payload = EncodeHandle(handle);
    session->dedup.Record(frame.request_id, type_byte, payload);
  }
  return payload;
}

std::string SessionServer::HandleRegisterStream(const WireFrame& frame,
                                                WireError* error) {
  MutationGuard inflight(&inflight_mutations_);
  if (draining()) {
    ShedDraining(error);
    return "";
  }
  SessionToken token;
  UnionQuery query;
  StreamOptions opts;
  Status st = DecodeRegisterStreamRequest(engine_->schema(), frame.payload,
                                          &token, &query, &opts);
  if (!st.ok()) {
    error->code = WireErrorCode::kBadRequest;
    error->message = st.ToString();
    return "";
  }
  std::shared_ptr<ServerSession> session = FindSession(token, error);
  if (session == nullptr) return "";

  // Server-side stream policy: cursors must be resumable (reconnect), and
  // the backlog cap only ever tightens — a client cannot opt out of the
  // server's memory bound.
  opts.retain_events = true;
  if (options_.max_backlog_events > 0 &&
      (opts.retain_cap == 0 || opts.retain_cap > options_.max_backlog_events)) {
    opts.retain_cap = options_.max_backlog_events;
  }

  const uint8_t type_byte = static_cast<uint8_t>(frame.type);
  std::lock_guard<std::mutex> reg(register_mu_);

  if (durable_ != nullptr) {
    Result<DurableSession::TaggedOutcome> outcome = durable_->
        RegisterStreamTagged(session->id, frame.request_id, query, opts);
    if (!outcome.ok()) {
      error->code = WireErrorCode::kBadRequest;
      error->message = outcome.status().ToString();
      return "";
    }
    std::string payload;
    if (AnswerFromOutcome(*outcome, type_byte, &payload, error)) {
      return payload;
    }
    std::lock_guard<std::mutex> lock(session->mu);
    if (session->streams.size() != outcome->handle) {
      error->code = WireErrorCode::kInternal;
      error->message = "session handle table out of sync with durable state";
      return "";
    }
    session->streams.push_back(outcome->stream_id);
    session->degraded.push_back(0);
    return outcome->response;
  }

  {
    std::lock_guard<std::mutex> lock(session->mu);
    const DedupWindow::Entry* entry = nullptr;
    switch (session->dedup.Probe(frame.request_id, &entry)) {
      case DedupWindow::Verdict::kHit:
        if (entry->type != type_byte) {
          error->code = WireErrorCode::kBadRequest;
          error->message =
              "request id was already used by a different message type";
          return "";
        }
        Bump(counters_.dedup_hits);
        return entry->response_payload;
      case DedupWindow::Verdict::kStale:
        Bump(counters_.dedup_stale);
        error->code = WireErrorCode::kStaleRequest;
        error->message = "request id predates the dedup window";
        return "";
      case DedupWindow::Verdict::kFresh:
        break;
    }
  }

  Result<StreamId> sid = registry_->Register(query, opts);
  if (!sid.ok()) {
    error->code = WireErrorCode::kBadRequest;
    error->message = sid.status().ToString();
    return "";
  }
  std::string payload;
  {
    std::lock_guard<std::mutex> lock(session->mu);
    const uint32_t handle = static_cast<uint32_t>(session->streams.size());
    session->streams.push_back(*sid);
    session->degraded.push_back(0);
    payload = EncodeHandle(handle);
    session->dedup.Record(frame.request_id, type_byte, payload);
  }
  return payload;
}

std::string SessionServer::HandleApply(const WireFrame& frame,
                                       WireError* error) {
  MutationGuard inflight(&inflight_mutations_);
  if (draining()) {
    ShedDraining(error);
    return "";
  }
  SessionToken token;
  Access access;
  std::vector<Fact> response;
  Status st = DecodeApplyRequest(engine_->schema(), engine_->access_methods(),
                                 frame.payload, &token, &access, &response);
  if (!st.ok()) {
    error->code = WireErrorCode::kBadRequest;
    error->message = st.ToString();
    return "";
  }
  std::shared_ptr<ServerSession> session = FindSession(token, error);
  if (session == nullptr) return "";

  const uint8_t type_byte = static_cast<uint8_t>(frame.type);

  if (durable_ != nullptr) {
    Result<DurableSession::TaggedOutcome> outcome =
        durable_->ApplyTagged(session->id, frame.request_id, access, response);
    if (!outcome.ok()) {
      if (outcome.status().code() == StatusCode::kResourceExhausted) {
        Bump(counters_.applies_shed);
        error->code = WireErrorCode::kRetryLater;
        error->retry_after_ms = options_.retry_after_ms;
      } else {
        error->code = WireErrorCode::kBadRequest;
      }
      error->message = outcome.status().ToString();
      return "";
    }
    std::string payload;
    if (AnswerFromOutcome(*outcome, type_byte, &payload, error)) {
      return payload;
    }
    return outcome->response;
  }

  // In-memory: hold the session mutex across probe + apply + record, so a
  // concurrent retry of the same request id (a second connection replaying
  // the same frame) serializes behind the original instead of racing it.
  std::lock_guard<std::mutex> lock(session->mu);
  const DedupWindow::Entry* entry = nullptr;
  switch (session->dedup.Probe(frame.request_id, &entry)) {
    case DedupWindow::Verdict::kHit:
      if (entry->type != type_byte) {
        error->code = WireErrorCode::kBadRequest;
        error->message =
            "request id was already used by a different message type";
        return "";
      }
      Bump(counters_.dedup_hits);
      return entry->response_payload;
    case DedupWindow::Verdict::kStale:
      Bump(counters_.dedup_stale);
      error->code = WireErrorCode::kStaleRequest;
      error->message = "request id predates the dedup window";
      return "";
    case DedupWindow::Verdict::kFresh:
      break;
  }

  Result<int> added = engine_->ApplyResponse(access, response);
  if (!added.ok()) {
    if (added.status().code() == StatusCode::kResourceExhausted) {
      // Engine apply admission shed the request: typed backoff, not a
      // failure — the client retries after retry_after_ms.
      Bump(counters_.applies_shed);
      error->code = WireErrorCode::kRetryLater;
      error->retry_after_ms = options_.retry_after_ms;
    } else {
      error->code = WireErrorCode::kBadRequest;
    }
    error->message = added.status().ToString();
    return "";
  }
  ApplyResult result;
  result.facts_added = static_cast<uint32_t>(*added);
  result.wal_sequence = 0;
  std::string payload = EncodeApplyResult(result);
  session->dedup.Record(frame.request_id, type_byte, payload);
  return payload;
}

std::string SessionServer::HandlePoll(const WireFrame& frame,
                                      WireError* error) {
  SessionToken token;
  uint32_t handle = 0;
  uint64_t cursor = 0;
  Status st = DecodePollRequest(frame.payload, &token, &handle, &cursor);
  if (!st.ok()) {
    error->code = WireErrorCode::kBadRequest;
    error->message = st.ToString();
    return "";
  }
  std::shared_ptr<ServerSession> session = FindSession(token, error);
  if (session == nullptr) return "";

  StreamId sid;
  {
    std::lock_guard<std::mutex> lock(session->mu);
    if (handle >= session->streams.size()) {
      error->code = WireErrorCode::kNotFound;
      error->message = "unknown stream handle " + std::to_string(handle);
      return "";
    }
    sid = session->streams[handle];
  }

  Result<StreamDelta> delta = registry_->PollAfter(sid, cursor);
  if (!delta.ok()) {
    if (delta.status().code() == StatusCode::kFailedPrecondition) {
      // Retention cap dropped events this cursor still needed: tell the
      // client where the horizon is so it can re-snapshot and resume.
      Bump(counters_.cursor_evictions);
      error->code = WireErrorCode::kCursorEvicted;
      error->detail = registry_->EvictedThrough(sid);
    } else {
      error->code = WireErrorCode::kBadRequest;
    }
    error->message = delta.status().ToString();
    return "";
  }
  PoliceBacklog(*session, handle, sid);
  return EncodePollResponse(engine_->schema(), *delta);
}

void SessionServer::PoliceBacklog(ServerSession& session, uint32_t handle,
                                  StreamId sid) {
  const uint64_t retained = registry_->RetainedCount(sid);
  MaxInto(counters_.backlog_high_water, retained);
  if (options_.degrade_backlog_events == 0 ||
      retained <= options_.degrade_backlog_events) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(session.mu);
    if (handle >= session.degraded.size() || session.degraded[handle]) return;
    session.degraded[handle] = 1;
  }
  // The stream is running hot: shed its gate indexes and fall back to
  // conservative full-recheck waves. Verdict-identical (the flag is
  // consulted per wave), so parity holds — only the wave cost changes.
  if (registry_->Degrade(sid).ok()) Bump(counters_.streams_degraded);
}

std::string SessionServer::HandleAcknowledge(const WireFrame& frame,
                                             WireError* error) {
  // Acks are mutations (they advance the durable cursor) but are *not*
  // shed while draining: winding a subscriber down is exactly what drain
  // is for. The guard still counts them so the quiesce covers an ack in
  // flight; each durable ack is individually fsynced (WaitDurable), so
  // one arriving after the drain flush is durable on its own.
  MutationGuard inflight(&inflight_mutations_);
  SessionToken token;
  uint32_t handle = 0;
  uint64_t upto = 0;
  Status st = DecodeAckRequest(frame.payload, &token, &handle, &upto);
  if (!st.ok()) {
    error->code = WireErrorCode::kBadRequest;
    error->message = st.ToString();
    return "";
  }
  std::shared_ptr<ServerSession> session = FindSession(token, error);
  if (session == nullptr) return "";

  StreamId sid;
  {
    std::lock_guard<std::mutex> lock(session->mu);
    if (handle >= session->streams.size()) {
      error->code = WireErrorCode::kNotFound;
      error->message = "unknown stream handle " + std::to_string(handle);
      return "";
    }
    sid = session->streams[handle];
  }
  st = durable_ != nullptr ? durable_->Acknowledge(sid, upto)
                           : registry_->Acknowledge(sid, upto);
  if (!st.ok()) {
    error->code = WireErrorCode::kBadRequest;
    error->message = st.ToString();
    return "";
  }
  return "";
}

std::string SessionServer::HandleSnapshot(const WireFrame& frame,
                                          WireError* error) {
  SessionToken token;
  uint32_t handle = 0;
  Status st = DecodeSnapshotRequest(frame.payload, &token, &handle);
  if (!st.ok()) {
    error->code = WireErrorCode::kBadRequest;
    error->message = st.ToString();
    return "";
  }
  std::shared_ptr<ServerSession> session = FindSession(token, error);
  if (session == nullptr) return "";

  StreamId sid;
  {
    std::lock_guard<std::mutex> lock(session->mu);
    if (handle >= session->streams.size()) {
      error->code = WireErrorCode::kNotFound;
      error->message = "unknown stream handle " + std::to_string(handle);
      return "";
    }
    sid = session->streams[handle];
  }
  return EncodeSnapshotResponse(engine_->schema(), registry_->Snapshot(sid));
}

std::string SessionServer::HandleMetrics(const WireFrame& frame,
                                         WireError* error) {
  SessionToken token;
  MetricsFormat format = MetricsFormat::kJson;
  Status st = DecodeMetricsRequest(frame.payload, &token, &format);
  if (!st.ok()) {
    error->code = WireErrorCode::kBadRequest;
    error->message = st.ToString();
    return "";
  }
  std::shared_ptr<ServerSession> session = FindSession(token, error);
  if (session == nullptr) return "";

  // engine_->stats() folds in this server's ContributeStats, so the
  // rar_server_* rows ride the same exposition as the engine's.
  MetricsExport metrics;
  metrics.stats = engine_->stats();
  metrics.obs = engine_->obs().Snapshot();
  metrics.schema = &engine_->schema();
  return format == MetricsFormat::kPrometheus
             ? ExportMetricsPrometheus(metrics)
             : ExportMetricsJson(metrics);
}

std::string SessionServer::HandleGoodbye(const WireFrame& frame,
                                         WireError* error) {
  SessionToken token;
  Status st = DecodeGoodbyeRequest(frame.payload, &token);
  if (!st.ok()) {
    error->code = WireErrorCode::kBadRequest;
    error->message = st.ToString();
    return "";
  }
  {
    std::unique_lock<std::shared_mutex> lock(sessions_mu_);
    auto it = sessions_.find(token.session_id);
    if (it == sessions_.end() || it->second->nonce != token.nonce) {
      error->code = WireErrorCode::kUnknownSession;
      error->message = "unknown session token";
      return "";
    }
    sessions_.erase(it);
  }
  if (durable_ != nullptr) {
    // Best-effort: if the retirement record cannot be logged the session
    // merely resurrects on recovery and is reaped as idle — harmless.
    (void)durable_->RetireServerSession(token.session_id);
  }
  Bump(counters_.sessions_retired);
  return "";
}

std::string SessionServer::HandlePing(const WireFrame& frame,
                                      WireError* error) {
  SessionToken token;
  Status st = DecodePingRequest(frame.payload, &token);
  if (!st.ok()) {
    error->code = WireErrorCode::kBadRequest;
    error->message = st.ToString();
    return "";
  }
  // FindSession refreshes last_active_ms — the heartbeat's whole job.
  std::shared_ptr<ServerSession> session = FindSession(token, error);
  if (session == nullptr) return "";

  PingResponse resp;
  resp.draining = draining();
  resp.server_unix_ms = UnixMs();
  return EncodePingResponse(resp);
}

size_t SessionServer::ReapIdleSessions() {
  if (options_.idle_timeout_ms == 0) return 0;
  const uint64_t now = NowMs();
  std::vector<uint64_t> reaped_ids;
  {
    std::unique_lock<std::shared_mutex> lock(sessions_mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      const uint64_t last =
          it->second->last_active_ms.load(std::memory_order_relaxed);
      if (now - last > options_.idle_timeout_ms) {
        reaped_ids.push_back(it->first);
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (durable_ != nullptr) {
    for (uint64_t id : reaped_ids) {
      (void)durable_->RetireServerSession(id);
    }
  }
  Bump(counters_.sessions_reaped, reaped_ids.size());
  return reaped_ids.size();
}

Status SessionServer::BeginDrain() {
  draining_.store(true, std::memory_order_seq_cst);
  // Every mutator increments inflight before checking the flag, so once
  // the count reads zero here, no shed-exempt mutation predating the flag
  // is still running.
  while (inflight_mutations_.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (durable_ != nullptr) return durable_->Flush();
  return Status::OK();
}

size_t SessionServer::num_sessions() const {
  std::shared_lock<std::shared_mutex> lock(sessions_mu_);
  return sessions_.size();
}

void SessionServer::ContributeStats(EngineStats* stats) const {
  const auto load = [](const std::atomic<uint64_t>& c) {
    return c.load(std::memory_order_relaxed);
  };
  stats->server_sessions_opened += load(counters_.sessions_opened);
  stats->server_sessions_resumed += load(counters_.sessions_resumed);
  stats->server_sessions_retired += load(counters_.sessions_retired);
  stats->server_sessions_reaped += load(counters_.sessions_reaped);
  stats->server_sessions_shed += load(counters_.sessions_shed);
  stats->server_sessions_recovered += load(counters_.sessions_recovered);
  stats->server_sessions_active += num_sessions();
  stats->server_requests += load(counters_.requests);
  stats->server_requests_hello += load(counters_.requests_hello);
  stats->server_requests_register_query +=
      load(counters_.requests_register_query);
  stats->server_requests_register_stream +=
      load(counters_.requests_register_stream);
  stats->server_requests_apply += load(counters_.requests_apply);
  stats->server_requests_poll += load(counters_.requests_poll);
  stats->server_requests_acknowledge += load(counters_.requests_acknowledge);
  stats->server_requests_snapshot += load(counters_.requests_snapshot);
  stats->server_requests_metrics += load(counters_.requests_metrics);
  stats->server_requests_ping += load(counters_.requests_ping);
  stats->server_errors += load(counters_.errors);
  stats->server_bad_frames += load(counters_.bad_frames);
  stats->server_applies_shed += load(counters_.applies_shed);
  stats->server_streams_degraded += load(counters_.streams_degraded);
  stats->server_cursor_evictions += load(counters_.cursor_evictions);
  stats->server_backlog_high_water += load(counters_.backlog_high_water);
  stats->server_dedup_hits += load(counters_.dedup_hits);
  stats->server_dedup_stale += load(counters_.dedup_stale);
  stats->server_deadline_rejections += load(counters_.deadline_rejections);
  stats->server_drain_sheds += load(counters_.drain_sheds);
}

}  // namespace rar
