// RarClient: the typed client over any ClientChannel. Owns the session
// token (Hello mints it, Resume re-presents it after a reconnect) and
// turns wire errors back into Status codes:
//
//   kRetryLater       -> ResourceExhausted  (backoff hint in last_error())
//   kShuttingDown     -> Unavailable        (drain; retry hint set)
//   kDeadlineExceeded -> DeadlineExceeded
//   kStaleRequest     -> FailedPrecondition
//   kCursorEvicted    -> FailedPrecondition (resume point in last_error().detail)
//   kNotFound         -> NotFound
//   kBadRequest       -> InvalidArgument
//   everything else   -> Internal / FailedPrecondition
//
// Retries: give the client a RetryPolicy and every call becomes
// at-least-once with exactly-once *effect* — the client owns request
// ids, a retry re-sends the original id, and the server's per-session
// dedup window answers a duplicate from cache instead of re-executing.
// Retry-eligible failures are transport kUnavailable and the server's
// kRetryLater / kShuttingDown sheds (honoring their retry_after_ms
// hint); backoff is exponential with decorrelated jitter from a seeded
// Rng, so tests replay identically. A per-call deadline
// (RetryPolicy::call_timeout_ms) rides every frame; when it expires the
// call fails kDeadlineExceeded — retry sleeps never outlive it.
//
// Liveness: Ping() heartbeats refresh the server's idle clock and learn
// the drain flag; `peer_suspected()` trips after
// RetryPolicy::suspect_after consecutive transport failures and resets
// on the next success — a cheap dead-peer detector for supervisors.
//
// After any failed call, `last_error()` holds the decoded WireError —
// retry_after_ms for shed requests, the evicted-through sequence for
// evicted cursors. One client per thread; share the SessionServer, not
// the channel.
#ifndef RAR_SERVER_CLIENT_H_
#define RAR_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "server/protocol.h"
#include "server/transport.h"
#include "util/rng.h"

namespace rar {

/// \brief Client-side retry knobs. The default policy never retries
/// (max_attempts = 1) — opting in is explicit because retries only have
/// exactly-once effect against a server with a dedup window.
struct RetryPolicy {
  /// Total attempts per call, first try included. 1 = never retry.
  uint32_t max_attempts = 1;
  /// First backoff; later sleeps use decorrelated jitter
  /// (random in [base, prev*3], capped by max_backoff_ms).
  uint32_t base_backoff_ms = 5;
  uint32_t max_backoff_ms = 500;
  /// Per-call deadline stamped on every frame (and bounding the whole
  /// retry loop, sleeps included). 0 = no deadline.
  uint32_t call_timeout_ms = 0;
  /// Consecutive transport failures before peer_suspected() trips.
  uint32_t suspect_after = 3;
  /// Seed for the jitter Rng: deterministic backoff sequences in tests.
  uint64_t jitter_seed = 0x7e7e7e7e;
};

class RarClient {
 public:
  /// `schema`/`acs` are the client's copies for payload codecs; they must
  /// agree with the server's by name (that is all the wire format needs).
  RarClient(ClientChannel* channel, const Schema* schema,
            const AccessMethodSet* acs, RetryPolicy retry = {})
      : channel_(channel),
        schema_(schema),
        acs_(acs),
        retry_(retry),
        jitter_(retry.jitter_seed) {}

  /// Opens a fresh session. (Under retries a lost Hello response can
  /// strand an extra server-side session; it holds no handles and idle
  /// reaping retires it — the token the client keeps is always the one
  /// the server answered.)
  Status Hello();
  /// Resumes the session `token` names (after a reconnect or a client
  /// restart); fails with FailedPrecondition if the server reaped it.
  Status Resume(const SessionToken& token);

  const SessionToken& token() const { return token_; }
  bool resumed() const { return resumed_; }

  Result<uint32_t> RegisterQuery(const UnionQuery& query);
  Result<uint32_t> RegisterStream(const UnionQuery& query,
                                  const StreamOptions& options = {});
  Result<ApplyResult> Apply(const Access& access,
                            const std::vector<Fact>& response);
  Result<StreamDelta> Poll(uint32_t handle, uint64_t cursor);
  Status Acknowledge(uint32_t handle, uint64_t upto);
  Result<StreamSnapshot> Snapshot(uint32_t handle);
  /// Returns the exposition body (JSON or Prometheus text).
  Result<std::string> Metrics(MetricsFormat format = MetricsFormat::kJson);
  /// Heartbeat: refreshes the server-side idle clock, reports drain.
  Result<PingResponse> Ping();
  /// Retire the session. Under retries, a kUnknownSession answer to a
  /// *retried* Goodbye counts as success: the lost first attempt landed.
  Status Goodbye();

  /// The last kError payload received; meaningful right after a failure.
  const WireError& last_error() const { return last_error_; }

  /// Dead-peer suspicion: `suspect_after` consecutive transport-level
  /// failures with no success in between.
  bool peer_suspected() const { return peer_suspected_; }

  /// Retry accounting (bench: amplification = attempts / calls).
  uint64_t calls_issued() const { return calls_issued_; }
  uint64_t attempts_issued() const { return attempts_issued_; }
  uint64_t retries_exhausted() const { return retries_exhausted_; }

 private:
  /// One logical call: assign the request id once, then send/await up to
  /// max_attempts times, unwrapping kError and checking response types.
  Result<std::string> Call(MessageType request, std::string_view payload);

  ClientChannel* channel_;
  const Schema* schema_;
  const AccessMethodSet* acs_;
  const RetryPolicy retry_;
  Rng jitter_;
  SessionToken token_;
  bool resumed_ = false;
  WireError last_error_;
  uint64_t next_request_id_ = 1;
  uint32_t consecutive_transport_failures_ = 0;
  bool peer_suspected_ = false;
  uint64_t calls_issued_ = 0;
  uint64_t attempts_issued_ = 0;
  uint64_t retries_exhausted_ = 0;
};

}  // namespace rar

#endif  // RAR_SERVER_CLIENT_H_
