// RarClient: the typed client over any ClientChannel. Owns the session
// token (Hello mints it, Resume re-presents it after a reconnect) and
// turns wire errors back into Status codes:
//
//   kRetryLater     -> ResourceExhausted  (backoff hint in last_error())
//   kCursorEvicted  -> FailedPrecondition (resume point in last_error().detail)
//   kNotFound       -> NotFound
//   kBadRequest     -> InvalidArgument
//   everything else -> Internal / FailedPrecondition
//
// After any failed call, `last_error()` holds the decoded WireError —
// retry_after_ms for shed requests, the evicted-through sequence for
// evicted cursors. One client per thread; share the SessionServer, not
// the channel.
#ifndef RAR_SERVER_CLIENT_H_
#define RAR_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "server/protocol.h"
#include "server/transport.h"

namespace rar {

class RarClient {
 public:
  /// `schema`/`acs` are the client's copies for payload codecs; they must
  /// agree with the server's by name (that is all the wire format needs).
  RarClient(ClientChannel* channel, const Schema* schema,
            const AccessMethodSet* acs)
      : channel_(channel), schema_(schema), acs_(acs) {}

  /// Opens a fresh session.
  Status Hello();
  /// Resumes the session `token` names (after a reconnect or a client
  /// restart); fails with FailedPrecondition if the server reaped it.
  Status Resume(const SessionToken& token);

  const SessionToken& token() const { return token_; }
  bool resumed() const { return resumed_; }

  Result<uint32_t> RegisterQuery(const UnionQuery& query);
  Result<uint32_t> RegisterStream(const UnionQuery& query,
                                  const StreamOptions& options = {});
  Result<ApplyResult> Apply(const Access& access,
                            const std::vector<Fact>& response);
  Result<StreamDelta> Poll(uint32_t handle, uint64_t cursor);
  Status Acknowledge(uint32_t handle, uint64_t upto);
  Result<StreamSnapshot> Snapshot(uint32_t handle);
  /// Returns the exposition body (JSON or Prometheus text).
  Result<std::string> Metrics(MetricsFormat format = MetricsFormat::kJson);
  Status Goodbye();

  /// The last kError payload received; meaningful right after a failure.
  const WireError& last_error() const { return last_error_; }

 private:
  /// One call: send, await, unwrap kError, check the response type.
  Result<std::string> Call(MessageType request, std::string_view payload);

  ClientChannel* channel_;
  const Schema* schema_;
  const AccessMethodSet* acs_;
  SessionToken token_;
  bool resumed_ = false;
  WireError last_error_;
};

}  // namespace rar

#endif  // RAR_SERVER_CLIENT_H_
