#include "server/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_map>
#include <vector>

namespace rar {

namespace {

uint64_t WallUnixMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

// --------------------------------------------------------------------------
// LoopbackChannel

Result<WireFrame> LoopbackChannel::Call(MessageType type,
                                        std::string_view payload,
                                        const CallContext& ctx) {
  const uint64_t id =
      ctx.request_id != 0 ? ctx.request_id : next_request_id_++;
  std::string wire;
  EncodeWireFrame(id, type, payload, &wire, ctx.deadline_unix_ms);

  // Round-trip through the parser so loopback requests take the same
  // validation path TCP requests do.
  size_t offset = 0;
  WireFrame request;
  std::string parse_error;
  if (ParseWireFrame(wire, &offset, &request, &parse_error) !=
      FrameParse::kFrame) {
    return Status::Internal("loopback frame failed to round-trip: " +
                            parse_error);
  }

  const std::string response_bytes = server_->HandleFrame(request);
  offset = 0;
  WireFrame response;
  if (ParseWireFrame(response_bytes, &offset, &response, &parse_error) !=
      FrameParse::kFrame) {
    return Status::Internal("server response failed to parse: " + parse_error);
  }
  if (response.request_id != id) {
    return Status::Internal("response id mismatch");
  }
  return response;
}

// --------------------------------------------------------------------------
// TcpServer

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

/// Client-side transport failures: retry-safe by classification.
Status UnavailableErrno(const char* what) {
  return Status::Unavailable(std::string(what) + ": " + std::strerror(errno));
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Per-connection state owned by the poll loop.
struct Conn {
  FrameAssembler assembler;
  std::string outbox;     ///< encoded responses not yet written
  size_t out_pos = 0;     ///< bytes of outbox already written
  bool closing = false;   ///< flush outbox, then close (framing damage)
};

/// How often the poll loop sweeps for idle sessions. Long-lived
/// deployments (examples/engine_server) rely on this tick — without it
/// ReapIdleSessions only runs when a fresh Hello happens to arrive.
constexpr uint64_t kReapTickMs = 250;

}  // namespace

Result<uint16_t> TcpServer::Start(uint16_t port) {
  if (running_.load()) return Status::FailedPrecondition("already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status st = Errno("bind");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 128) != 0) {
    Status st = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    Status st = Errno("getsockname");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  port_ = ntohs(addr.sin_port);

  if (::pipe(wake_fds_) != 0) {
    Status st = Errno("pipe");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  SetNonBlocking(listen_fd_);
  SetNonBlocking(wake_fds_[0]);

  running_.store(true);
  thread_ = std::thread(&TcpServer::Loop, this);
  return port_;
}

void TcpServer::Stop() {
  if (!running_.exchange(false)) return;
  // Wake the poll loop; it observes running_ == false and drains out.
  const char byte = 'x';
  (void)!::write(wake_fds_[1], &byte, 1);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  for (int& fd : wake_fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

void TcpServer::Loop() {
  std::unordered_map<int, Conn> conns;
  std::vector<pollfd> fds;
  char buf[64 * 1024];
  auto last_reap = std::chrono::steady_clock::now();

  while (running_.load(std::memory_order_relaxed)) {
    fds.clear();
    fds.push_back({wake_fds_[0], POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& [fd, conn] : conns) {
      short events = conn.closing ? 0 : POLLIN;
      if (conn.out_pos < conn.outbox.size()) events |= POLLOUT;
      fds.push_back({fd, events, 0});
    }

    if (::poll(fds.data(), fds.size(), 250) < 0) {
      if (errno == EINTR) continue;
      break;
    }

    // Idle-session reaping runs on a timer tick, not just on Hello: a
    // server with a stable client set would otherwise never reap.
    const auto now = std::chrono::steady_clock::now();
    if (std::chrono::duration_cast<std::chrono::milliseconds>(now - last_reap)
            .count() >= static_cast<int64_t>(kReapTickMs)) {
      last_reap = now;
      server_->ReapIdleSessions();
    }

    // New connections.
    if (fds[1].revents & POLLIN) {
      for (;;) {
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        SetNonBlocking(fd);
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        conns.emplace(fd, Conn{});
      }
    }

    std::vector<int> dead;
    for (size_t i = 2; i < fds.size(); ++i) {
      const int fd = fds[i].fd;
      Conn& conn = conns[fd];
      bool drop = (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
                  !(fds[i].revents & POLLIN);

      if (!drop && (fds[i].revents & POLLIN)) {
        for (;;) {
          const ssize_t n = ::read(fd, buf, sizeof(buf));
          if (n > 0) {
            conn.assembler.Feed(buf, static_cast<size_t>(n));
            continue;
          }
          if (n == 0) drop = true;  // peer closed; mid-frame bytes discard
          if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) drop = true;
          break;
        }
        WireFrame frame;
        std::string error;
        for (;;) {
          const FrameParse verdict = conn.assembler.Next(&frame, &error);
          if (verdict == FrameParse::kFrame) {
            conn.outbox += server_->HandleFrame(frame);
            continue;
          }
          if (verdict == FrameParse::kCorrupt) {
            // Framing is lost beyond recovery: answer with one final
            // typed error, flush, close. The engine never saw the bytes.
            server_->NoteBadFrame();
            WireError we;
            we.code = WireErrorCode::kBadFrame;
            we.message = error;
            EncodeWireFrame(0, MessageType::kError, EncodeWireError(we),
                            &conn.outbox);
            conn.closing = true;
          }
          break;
        }
      }

      if (!drop && (fds[i].revents & POLLOUT) &&
          conn.out_pos < conn.outbox.size()) {
        const ssize_t n = ::write(fd, conn.outbox.data() + conn.out_pos,
                                  conn.outbox.size() - conn.out_pos);
        if (n > 0) {
          conn.out_pos += static_cast<size_t>(n);
          if (conn.out_pos == conn.outbox.size()) {
            conn.outbox.clear();
            conn.out_pos = 0;
          }
        } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
          drop = true;
        }
      }

      if (drop || (conn.closing && conn.out_pos >= conn.outbox.size())) {
        dead.push_back(fd);
      }
    }
    for (int fd : dead) {
      ::close(fd);
      conns.erase(fd);
    }
  }

  for (const auto& [fd, conn] : conns) ::close(fd);
}

// --------------------------------------------------------------------------
// TcpChannel

TcpChannel::~TcpChannel() { Close(); }

void TcpChannel::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Result<std::unique_ptr<TcpChannel>> TcpChannel::Connect(
    const std::string& host, uint16_t port, uint32_t connect_timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }

  // Non-blocking connect + poll: a dead or absent peer answers within
  // connect_timeout_ms as kUnavailable instead of hanging the caller for
  // the kernel's (minutes-long) SYN retry budget.
  SetNonBlocking(fd);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      Status st = UnavailableErrno("connect");
      ::close(fd);
      return st;
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int r =
        ::poll(&pfd, 1, static_cast<int>(connect_timeout_ms));
    if (r == 0) {
      ::close(fd);
      return Status::Unavailable("connect to " + host + ":" +
                                 std::to_string(port) + " timed out after " +
                                 std::to_string(connect_timeout_ms) + "ms");
    }
    if (r < 0) {
      Status st = UnavailableErrno("connect poll");
      ::close(fd);
      return st;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return Status::Unavailable(
          std::string("connect: ") +
          std::strerror(err != 0 ? err : errno));  // ECONNREFUSED lands here
    }
  }

  // Back to blocking for the synchronous call/response path.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<TcpChannel>(new TcpChannel(fd));
}

Result<WireFrame> TcpChannel::Call(MessageType type, std::string_view payload,
                                   const CallContext& ctx) {
  if (fd_ < 0) return Status::Unavailable("channel closed");

  const uint64_t id =
      ctx.request_id != 0 ? ctx.request_id : next_request_id_++;
  std::string wire;
  EncodeWireFrame(id, type, payload, &wire, ctx.deadline_unix_ms);
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::write(fd_, wire.data() + sent, wire.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = UnavailableErrno("write");
      Close();
      return st;
    }
    sent += static_cast<size_t>(n);
  }

  char buf[64 * 1024];
  for (;;) {
    WireFrame frame;
    std::string error;
    const FrameParse verdict = assembler_.Next(&frame, &error);
    if (verdict == FrameParse::kFrame) {
      // A bad-frame error the server emits before closing carries id 0;
      // everything else must answer our id (one call in flight at a time).
      if (frame.request_id != id && frame.request_id != 0) {
        Close();
        return Status::Internal("response id mismatch");
      }
      return frame;
    }
    if (verdict == FrameParse::kCorrupt) {
      Close();
      return Status::ParseError("corrupt response stream: " + error);
    }

    // Bound the wait by the caller's deadline: poll before the blocking
    // read so a lost response cannot strand the call forever.
    if (ctx.deadline_unix_ms != 0) {
      const uint64_t now = WallUnixMs();
      if (now >= ctx.deadline_unix_ms) {
        // The response may still arrive later; this connection is one
        // call at a time, so close it rather than desync the next call.
        Close();
        return Status::DeadlineExceeded("deadline expired awaiting response");
      }
      pollfd pfd{fd_, POLLIN, 0};
      const int r = ::poll(&pfd, 1,
                           static_cast<int>(ctx.deadline_unix_ms - now));
      if (r == 0) {
        Close();
        return Status::DeadlineExceeded("deadline expired awaiting response");
      }
      if (r < 0 && errno != EINTR) {
        Status st = UnavailableErrno("poll");
        Close();
        return st;
      }
    }

    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n == 0) {
      Close();
      return Status::Unavailable("connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = UnavailableErrno("read");
      Close();
      return st;
    }
    assembler_.Feed(buf, static_cast<size_t>(n));
  }
}

}  // namespace rar
