// ChaosChannel: the network twin of persist/io.h's FaultInjectingEnv.
//
// Wraps the in-process dispatch path (encode → parse → HandleFrame) in a
// seeded fault plan that misbehaves the way real networks do: requests
// vanish, responses vanish after the server executed them, frames arrive
// twice or replay out of order, bytes corrupt in flight, links sever and
// later heal, and everything can be delayed. Every fault is drawn from a
// SplitMix64 stream, so a failing soak replays exactly from its seed.
//
// The faults compose with the retry stack above (RarClient re-sends the
// same request id) and the dedup window below (the server answers the
// duplicate from cache), which is exactly the claim the chaos soak test
// gates on: at-least-once delivery, exactly-once effect, no lost or
// double-applied facts, gap-free cursors.
//
// Like every ClientChannel, one ChaosChannel serves one client thread.
#ifndef RAR_SERVER_CHAOS_H_
#define RAR_SERVER_CHAOS_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "server/transport.h"
#include "util/rng.h"

namespace rar {

/// \brief A seeded fault schedule. Probabilities are per-call draws in
/// [0,1]; zero (the default) disables that fault.
struct ChaosPlan {
  uint64_t seed = 1;
  /// The request frame never reaches the server (caller sees
  /// kUnavailable; the server did nothing — a retry is mandatory).
  double drop_request = 0.0;
  /// The server executes, but the response vanishes (the nastiest case:
  /// only request-id dedup makes the retry safe).
  double drop_response = 0.0;
  /// The request frame is delivered twice back to back (duplicated
  /// packet); the caller reads the second response.
  double duplicate_request = 0.0;
  /// The *previous* request frame is re-delivered before this one (a
  /// stale retransmit surfacing late); its response is discarded.
  double replay_previous = 0.0;
  /// A byte of the frame is flipped in flight: the server's frame
  /// assembler must reject it (CRC) without touching the engine.
  double corrupt = 0.0;
  /// The frame is cut short mid-flight and the connection drops; the
  /// server discards the partial bytes (caller sees kUnavailable).
  double truncate = 0.0;
  /// The link severs: this call and the next `heal_after - 1` calls fail
  /// fast with kUnavailable, then the link heals.
  double sever = 0.0;
  uint32_t heal_after = 3;
  /// Uniform delivery delay in [0, delay_ms_max] before dispatch.
  uint32_t delay_ms_max = 0;
};

/// \brief What the plan actually did (test assertions / soak reports).
struct ChaosLog {
  uint64_t calls = 0;
  uint64_t dropped_requests = 0;
  uint64_t dropped_responses = 0;
  uint64_t duplicated = 0;
  uint64_t replayed = 0;
  uint64_t corrupted = 0;
  uint64_t truncated = 0;
  uint64_t severed = 0;        ///< calls failed while the link was down
  uint64_t delays_ms = 0;      ///< total injected latency
};

class ChaosChannel : public ClientChannel {
 public:
  ChaosChannel(SessionServer* server, ChaosPlan plan)
      : server_(server), plan_(plan), rng_(plan.seed) {}

  Result<WireFrame> Call(MessageType type, std::string_view payload,
                         const CallContext& ctx = {}) override;

  const ChaosLog& log() const { return log_; }
  /// True while a sever is in effect (the next calls will fail fast).
  bool severed() const { return severed_remaining_ > 0; }

 private:
  /// Parses `wire` and dispatches it to the server, returning the
  /// encoded response bytes.
  Result<std::string> Dispatch(const std::string& wire);

  SessionServer* server_;
  const ChaosPlan plan_;
  Rng rng_;
  ChaosLog log_;
  std::string previous_request_;  ///< last request's wire bytes (replay)
  uint32_t severed_remaining_ = 0;
  uint64_t next_request_id_ = 1;
};

}  // namespace rar

#endif  // RAR_SERVER_CHAOS_H_
