#include "relevance/criticality.h"

#include "relevance/ltr_independent.h"

namespace rar {

Result<bool> IsCriticalViaLTR(const Schema& schema, const UnionQuery& q,
                              const Fact& t,
                              const std::vector<Value>& domain_values) {
  for (const ConjunctiveQuery& d : q.disjuncts) {
    for (const Atom& atom : d.atoms) {
      if (atom.relation != t.relation) {
        return Status::InvalidArgument(
            "criticality bridge expects a single-relation query");
      }
    }
  }
  const Relation& rel = schema.relation(t.relation);
  if (t.arity() != rel.arity()) {
    return Status::InvalidArgument("tuple arity mismatch");
  }

  // Configuration: the finite value set and the query constants as typed
  // seeds; no facts for R.
  Configuration conf(&schema);
  for (const Attribute& attr : rel.attributes) {
    for (const Value& v : domain_values) {
      conf.AddSeedConstant(v, attr.domain);
    }
  }
  for (const TypedValue& tv : QueryConstants(q, schema)) {
    conf.AddSeedConstant(tv.value, tv.domain);
  }
  for (int pos = 0; pos < t.arity(); ++pos) {
    conf.AddSeedConstant(t.values[pos], rel.attributes[pos].domain);
  }

  // A Boolean independent access R(t)?.
  AccessMethodSet acs(&schema);
  std::vector<int> all_positions;
  for (int pos = 0; pos < rel.arity(); ++pos) all_positions.push_back(pos);
  RAR_ASSIGN_OR_RETURN(AccessMethodId m,
                       acs.Add("critical_check", t.relation, all_positions,
                               /*dependent=*/false));
  Access access{m, t.values};
  return IsLongTermRelevantIndependent(conf, acs, access, q);
}

}  // namespace rar
