#include "relevance/ltr_dependent.h"

#include <vector>

#include "query/eval.h"
#include "query/structure.h"
#include "relational/overlay.h"
#include "transform/ltr_to_containment.h"
#include "util/combinatorics.h"

namespace rar {

namespace {

// A subgoal is compatible with the access when it is over the accessed
// relation and no constant term clashes with the binding at an input
// position (Prop 3.5: "same relation, and no mismatch of constants with
// the binding").
bool AtomCompatibleWithAccess(const AccessMethodSet& acs, const Access& access,
                              const Atom& atom) {
  const AccessMethod& m = acs.method(access.method);
  if (atom.relation != m.relation) return false;
  for (int i = 0; i < m.num_inputs(); ++i) {
    const Term& t = atom.terms[m.input_positions[i]];
    if (t.is_const() && t.constant != access.binding[i]) return false;
  }
  return true;
}

}  // namespace

Result<bool> IsLongTermRelevantDependentCQ(const ConfigView& conf,
                                           const AccessMethodSet& acs,
                                           const Access& access,
                                           const ConjunctiveQuery& query,
                                           const ContainmentOptions& options) {
  if (!CheckWellFormed(conf, acs, access).ok()) return false;
  if (!query.IsBoolean()) {
    return Status::InvalidArgument("Prop 3.5 algorithm needs a Boolean CQ");
  }

  std::vector<int> q1;  // compatible subgoals
  std::vector<int> q2;  // the rest
  for (int i = 0; i < query.num_atoms(); ++i) {
    (AtomCompatibleWithAccess(acs, access, query.atoms[i]) ? q1 : q2)
        .push_back(i);
  }
  if (q1.size() > 20) {
    return Status::InvalidArgument(
        "too many compatible subgoals (2^k guesses)");
  }

  ContainmentEngine engine(*acs.schema(), acs);
  Status oracle_error = Status::OK();
  bool relevant = ForEachSubset(
      static_cast<int>(q1.size()), [&](uint64_t mask) {
        if (mask + 1 == (uint64_t{1} << q1.size())) return false;  // Q'1 = Q1
        // Build Q'1 ∧ Q2 while keeping the original variable identities
        // (SubqueryOf re-indexes but preserves join structure).
        std::vector<int> kept = q2;
        for (size_t j = 0; j < q1.size(); ++j) {
          if (mask & (uint64_t{1} << j)) kept.push_back(q1[j]);
        }
        ConjunctiveQuery candidate = SubqueryOf(query, kept);
        Status vs = candidate.Validate(*acs.schema());
        if (!vs.ok()) {
          oracle_error = vs;
          return true;  // abort enumeration
        }
        auto decision = engine.Contained(candidate, query, conf, options);
        if (!decision.ok()) {
          oracle_error = decision.status();
          return true;  // abort enumeration
        }
        return !decision->contained;  // some guess refutes containment: LTR
      });
  RAR_RETURN_NOT_OK(oracle_error);
  return relevant;
}

Result<bool> IsLongTermRelevantDependentUCQ(
    const ConfigView& conf, const AccessMethodSet& acs,
    const Access& access, const UnionQuery& query,
    const ContainmentOptions& options) {
  if (!CheckWellFormed(conf, acs, access).ok()) return false;
  RAR_ASSIGN_OR_RETURN(
      LtrToContainmentInstance instance,
      BuildLtrToContainment(*acs.schema(), acs, conf, access, query,
                            /*materialize_conf=*/false));
  // Zero-copy: IsBind(Bind) is overlaid onto the live configuration; the
  // schema override retypes reads under the extension (relation ids are
  // stable, and the fresh IsBind relation has no base facts).
  OverlayConfiguration oconf(&conf);
  oconf.OverrideSchema(instance.schema.get());
  oconf.AddFact(instance.isbind_fact);
  ContainmentEngine engine(*instance.schema, instance.acs);
  RAR_ASSIGN_OR_RETURN(ContainmentDecision decision,
                       engine.Contained(instance.q_rewritten,
                                        instance.q_original, oconf,
                                        options));
  return !decision.contained;
}

Result<bool> IsLongTermRelevantDependentGeneral(
    const ConfigView& conf, const AccessMethodSet& acs,
    const Access& access, const UnionQuery& query,
    const ContainmentOptions& options) {
  if (!CheckWellFormed(conf, acs, access).ok()) return false;
  if (acs.IsBoolean(access.method)) {
    if (query.disjuncts.size() == 1) {
      return IsLongTermRelevantDependentCQ(conf, acs, access,
                                           query.disjuncts[0], options);
    }
    return IsLongTermRelevantDependentUCQ(conf, acs, access, query, options);
  }
  const Schema& schema = *acs.schema();
  if (EvalBool(query, conf)) return false;  // certain: nothing is relevant

  // A generic response tuple: binding on inputs, fresh nulls on outputs.
  const AccessMethod& m = acs.method(access.method);
  const Relation& rel = schema.relation(m.relation);
  NullFactory nulls;
  Fact generic;
  generic.relation = m.relation;
  generic.values.resize(rel.arity());
  std::vector<DomainId> output_domains;
  {
    int next_input = 0;
    for (int pos = 0; pos < rel.arity(); ++pos) {
      if (next_input < m.num_inputs() &&
          m.input_positions[next_input] == pos) {
        generic.values[pos] = access.binding[next_input];
        ++next_input;
      } else {
        generic.values[pos] = nulls.Fresh();
        output_domains.push_back(rel.attributes[pos].domain);
      }
    }
  }
  // Zero-copy truncation configuration: the generic response is overlaid
  // onto the (uncopied) base for both probes below.
  OverlayConfiguration conf_plus(&conf);
  conf_plus.AddFact(generic);

  // (b) the truncation cut: some dependent method can consume a fresh
  // output value (every other input slot fillable from conf_plus).
  bool can_cut = false;
  for (AccessMethodId mid = 0; mid < acs.size() && !can_cut; ++mid) {
    const AccessMethod& m2 = acs.method(mid);
    if (!m2.dependent) continue;
    const Relation& rel2 = schema.relation(m2.relation);
    for (int slot : m2.input_positions) {
      DomainId slot_dom = rel2.attributes[slot].domain;
      bool consumes_output = false;
      for (DomainId od : output_domains) consumes_output |= (od == slot_dom);
      if (!consumes_output) continue;
      bool others_fillable = true;
      for (int other : m2.input_positions) {
        if (other == slot) continue;
        if (conf_plus.AdomOfDomain(rel2.attributes[other].domain).empty()) {
          others_fillable = false;
          break;
        }
      }
      if (others_fillable) {
        can_cut = true;
        break;
      }
    }
  }

  // (c) achievability of the query from conf + the generic response.
  ContainmentEngine engine(schema, acs);
  RAR_ASSIGN_OR_RETURN(ContainmentDecision achievable,
                       engine.Achievable(query, conf_plus, options));
  if (achievable.contained) return false;  // no reachable config satisfies Q
  if (can_cut) return true;
  return Status::FailedPrecondition(
      "general-access LTR undecided: the query is achievable but no "
      "dependent method can consume any output domain of the access (the "
      "truncation cannot be cut); outside both the paper's Boolean scope "
      "and the cut extension");
}

}  // namespace rar
