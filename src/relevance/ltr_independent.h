// Long-term relevance for independent access methods (Section 4).
//
// General engine (proof of Prop 4.5, Σ2P): for each DNF disjunct, guess a
// canonical assignment of its variables into the typed active domain, the
// binding values, or private fresh nulls; partition the subgoals into
// Conf-witnessed / first-access-compatible / witnessed-later; accept iff
// every later subgoal is over an accessible relation and the *whole* query
// is false on Conf plus the later facts (the truncation's configuration).
// Maximal freshness is canonical: a fresher assignment maps homomorphically
// into any coarser one, so it can only make the truncation check easier.
//
// Fast path (Prop 4.3, coNP): when the query is conjunctive, the accessed
// relation occurs exactly once and every query relation is accessible, LTR
// reduces to a single evaluation: unify the accessed subgoal with the
// binding (no unifier -> not relevant), ground every *other* subgoal
// maximally fresh, and answer "relevant" iff the query is false on Conf
// plus those fresh facts (the canonical truncation configuration).
//
// Reproduction note: this refines the component-removal algorithm stated
// in the paper's Prop 4.3. The literal component test has false positives
// on queries where a *different* homomorphism can re-satisfy the query on
// the truncation using configuration facts for the accessed relation
// (e.g. Q = R(X,Y) & S(Z), Conf = {R(a,b)}, access R(b,?)). A freshness-
// dominance argument shows the single maximally-fresh candidate decides
// LTR exactly under the proposition's accessibility hypothesis; the
// brute-force reference tests pin this behaviour down (see DESIGN.md).
#ifndef RAR_RELEVANCE_LTR_INDEPENDENT_H_
#define RAR_RELEVANCE_LTR_INDEPENDENT_H_

#include <optional>

#include "access/access_method.h"
#include "query/query.h"
#include "relational/configuration.h"

namespace rar {

/// Decides LTR for an independent-access setting (every method of `acs`
/// must be independent; verified by the caller or dispatcher).
bool IsLongTermRelevantIndependent(const ConfigView& conf,
                                   const AccessMethodSet& acs,
                                   const Access& access,
                                   const UnionQuery& query);

/// The Prop 4.3 fast path. Returns nullopt when not applicable (relation
/// occurs more than once, or some query relation lacks a method — the
/// proposition's implicit accessibility hypothesis). Exposed separately so
/// tests and the ablation bench can compare it against the general engine.
std::optional<bool> LtrSingleOccurrenceFastPath(const ConfigView& conf,
                                                const AccessMethodSet& acs,
                                                const Access& access,
                                                const ConjunctiveQuery& query);

}  // namespace rar

#endif  // RAR_RELEVANCE_LTR_INDEPENDENT_H_
