#include "relevance/head_instantiator.h"

#include <algorithm>
#include <unordered_set>

#include "util/combinatorics.h"

namespace rar {

HeadInstantiator::HeadInstantiator(const Schema& schema,
                                   const UnionQuery& query,
                                   const std::vector<TypedValue>* preset_fresh)
    : schema_(&schema), query_(query), status_(Status::OK()) {
  if (query_.disjuncts.empty()) {
    status_ = Status::InvalidArgument("empty union query");
    return;
  }
  const ConjunctiveQuery& first = query_.disjuncts[0];
  arity_ = first.head.size();
  if (arity_ == 0) {
    BuildGateConstraints();
    return;
  }

  // Head domains must agree across disjuncts (same output schema).
  std::vector<DomainId> head_domains;
  head_domains.reserve(arity_);
  for (VarId h : first.head) head_domains.push_back(first.var_domains[h]);
  for (const ConjunctiveQuery& d : query_.disjuncts) {
    if (d.head.size() != arity_) {
      status_ = Status::InvalidArgument("disjuncts disagree on head arity");
      return;
    }
    for (size_t i = 0; i < arity_; ++i) {
      if (d.var_domains[d.head[i]] != head_domains[i]) {
        status_ = Status::InvalidArgument(
            "disjuncts disagree on head output domains");
        return;
      }
    }
  }

  // Slot classes: positions i and j collapse when *every* disjunct binds
  // them to the same head variable — then any tuple distinguishing them
  // makes every disjunct unsatisfiable, so only class-constant tuples can
  // matter.
  class_of_.assign(arity_, 0);
  for (size_t i = 0; i < arity_; ++i) {
    size_t cls = slot_domains_.size();  // tentatively a new slot
    for (size_t j = 0; j < i; ++j) {
      bool same = true;
      for (const ConjunctiveQuery& d : query_.disjuncts) {
        if (d.head[i] != d.head[j]) {
          same = false;
          break;
        }
      }
      if (same) {
        cls = class_of_[j];
        break;
      }
    }
    class_of_[i] = cls;
    if (cls == slot_domains_.size()) slot_domains_.push_back(head_domains[i]);
  }

  // Distinct domains and the fresh pool: one fresh constant per slot,
  // pooled per domain so repetition patterns across same-domain slots are
  // all reachable.
  if (preset_fresh != nullptr && preset_fresh->size() != slot_domains_.size()) {
    status_ = Status::InvalidArgument(
        "preset fresh pool size disagrees with the query's slot classes");
    return;
  }
  slot_domain_index_.resize(slot_domains_.size());
  for (size_t s = 0; s < slot_domains_.size(); ++s) {
    size_t dix = domains_.size();
    for (size_t d = 0; d < domains_.size(); ++d) {
      if (domains_[d] == slot_domains_[s]) {
        dix = d;
        break;
      }
    }
    if (dix == domains_.size()) {
      domains_.push_back(slot_domains_[s]);
      fresh_by_domain_.emplace_back();
    }
    slot_domain_index_[s] = dix;
    Value c;
    if (preset_fresh != nullptr) {
      if ((*preset_fresh)[s].domain != domains_[dix]) {
        status_ = Status::InvalidArgument(
            "preset fresh pool domain disagrees with slot class");
        return;
      }
      c = (*preset_fresh)[s].value;
    } else {
      c = schema_->MintFreshConstant("ck_" +
                                     schema_->domain_name(domains_[dix]));
    }
    fresh_by_domain_[dix].push_back(c);
    fresh_.push_back(TypedValue{c, domains_[dix]});
  }
  BuildGateConstraints();
}

void HeadInstantiator::BuildGateConstraints() {
  for (size_t d = 0; d < query_.disjuncts.size(); ++d) {
    const ConjunctiveQuery& cq = query_.disjuncts[d];
    // Head variable -> slot. A variable repeated at head positions of
    // *different* slots only survives instantiation when those slots
    // agree, so any one of its positions' slots is a faithful constraint
    // for surviving bindings.
    std::vector<int> slot_of_var(cq.num_vars(), -1);
    for (size_t i = 0; i < arity_; ++i) {
      if (slot_of_var[cq.head[i]] < 0) {
        slot_of_var[cq.head[i]] = static_cast<int>(class_of_[i]);
      }
    }
    for (const Atom& atom : cq.atoms) {
      AtomGateConstraint c;
      c.relation = atom.relation;
      c.disjunct = d;
      for (int pos = 0; pos < atom.arity(); ++pos) {
        const Term& t = atom.terms[pos];
        if (t.is_const()) {
          c.required_consts.emplace_back(pos, t.constant);
        } else if (slot_of_var[t.var] >= 0) {
          c.required_slots.emplace_back(
              pos, static_cast<size_t>(slot_of_var[t.var]));
        } else {
          c.free_vars.emplace_back(pos, t.var);
        }
      }
      gate_constraints_.push_back(std::move(c));
    }
  }
}

void HeadInstantiator::SeedInto(OverlayConfiguration* overlay) const {
  for (const TypedValue& tv : fresh_) {
    overlay->AddSeedConstant(tv.value, tv.domain);
  }
}

HeadCandidates HeadInstantiator::CollectCandidates(
    const ConfigView& view) const {
  HeadCandidates out;
  out.values.resize(domains_.size());
  out.seen.assign(domains_.size(), 0);
  for (size_t d = 0; d < domains_.size(); ++d) {
    out.values[d] = view.AdomOfDomain(domains_[d]).ToVector();
  }
  return out;
}

void HeadInstantiator::ExtendCandidates(const ConfigView& view,
                                        HeadCandidates* candidates) const {
  for (size_t d = 0; d < domains_.size(); ++d) {
    ValueSeq seq = view.AdomOfDomain(domains_[d]);
    std::vector<Value>& values = candidates->values[d];
    for (size_t i = values.size(); i < seq.size(); ++i) {
      values.push_back(seq[i]);
    }
  }
}

namespace {

/// Candidate list shapes for one slot during enumeration. `kOld` is the
/// seen prefix plus the fresh pool, `kAll` the full list plus fresh,
/// `kNew` the unseen suffix alone.
enum class Section { kOld, kAll, kNew };

}  // namespace

bool HeadInstantiator::ForEachBinding(
    const HeadCandidates& candidates,
    const std::function<bool(const std::vector<Value>&)>& fn) const {
  const size_t slots = num_slots();
  std::vector<Value> slot_values(slots);
  if (slots == 0) return fn(slot_values);
  std::vector<int> sizes(slots);
  for (size_t s = 0; s < slots; ++s) {
    size_t dix = slot_domain_index_[s];
    sizes[s] = static_cast<int>(candidates.values[dix].size() +
                                fresh_by_domain_[dix].size());
  }
  return ForEachProduct(sizes, [&](const std::vector<int>& choice) {
    for (size_t s = 0; s < slots; ++s) {
      size_t dix = slot_domain_index_[s];
      size_t j = static_cast<size_t>(choice[s]);
      const std::vector<Value>& adom = candidates.values[dix];
      slot_values[s] =
          j < adom.size() ? adom[j] : fresh_by_domain_[dix][j - adom.size()];
    }
    return fn(slot_values);
  });
}

bool HeadInstantiator::ForEachNewBinding(
    const HeadCandidates& candidates,
    const std::function<bool(const std::vector<Value>&)>& fn) const {
  const size_t slots = num_slots();
  if (slots == 0) return false;  // the empty tuple is never new
  std::vector<Value> slot_values(slots);

  // Resolve one slot's value under a section/index pair.
  auto value_at = [&](size_t slot, Section section, size_t j) -> Value {
    size_t dix = slot_domain_index_[slot];
    const std::vector<Value>& adom = candidates.values[dix];
    const std::vector<Value>& fresh = fresh_by_domain_[dix];
    const size_t seen = std::min(candidates.seen[dix], adom.size());
    switch (section) {
      case Section::kOld:
        return j < seen ? adom[j] : fresh[j - seen];
      case Section::kAll:
        return j < adom.size() ? adom[j] : fresh[j - adom.size()];
      case Section::kNew:
        return adom[seen + j];
    }
    return Value();
  };
  auto section_size = [&](size_t slot, Section section) -> int {
    size_t dix = slot_domain_index_[slot];
    const size_t n = candidates.values[dix].size();
    const size_t f = fresh_by_domain_[dix].size();
    const size_t seen = std::min(candidates.seen[dix], n);
    switch (section) {
      case Section::kOld:
        return static_cast<int>(seen + f);
      case Section::kAll:
        return static_cast<int>(n + f);
      case Section::kNew:
        return static_cast<int>(n - seen);
    }
    return 0;
  };

  // Classify each new tuple by its first slot holding a new value: slots
  // before it draw old values only, slots after it draw anything.
  for (size_t first_new = 0; first_new < slots; ++first_new) {
    if (section_size(first_new, Section::kNew) == 0) continue;
    std::vector<int> sizes(slots);
    for (size_t s = 0; s < slots; ++s) {
      Section sec = s < first_new   ? Section::kOld
                    : s > first_new ? Section::kAll
                                    : Section::kNew;
      sizes[s] = section_size(s, sec);
    }
    bool stopped = ForEachProduct(sizes, [&](const std::vector<int>& choice) {
      for (size_t s = 0; s < slots; ++s) {
        Section sec = s < first_new   ? Section::kOld
                      : s > first_new ? Section::kAll
                                      : Section::kNew;
        slot_values[s] = value_at(s, sec, static_cast<size_t>(choice[s]));
      }
      return fn(slot_values);
    });
    if (stopped) return true;
  }
  return false;
}

UnionQuery HeadInstantiator::Instantiate(const std::vector<Value>& slot_values,
                                         uint64_t* surviving_mask) const {
  UnionQuery out;
  if (surviving_mask != nullptr) *surviving_mask = 0;
  if (arity_ == 0) {
    if (surviving_mask != nullptr && query_.disjuncts.size() < 64) {
      *surviving_mask = (uint64_t{1} << query_.disjuncts.size()) - 1;
    } else if (surviving_mask != nullptr) {
      *surviving_mask = ~uint64_t{0};
    }
    return query_;
  }
  for (size_t di = 0; di < query_.disjuncts.size(); ++di) {
    const ConjunctiveQuery& d = query_.disjuncts[di];
    std::vector<std::optional<Value>> binding(d.num_vars());
    bool satisfiable = true;
    for (size_t i = 0; i < arity_; ++i) {
      const Value& v = slot_values[class_of_[i]];
      std::optional<Value>& slot = binding[d.head[i]];
      if (slot.has_value() && !(*slot == v)) {
        // A repeated head variable of this disjunct received two distinct
        // values: the instantiation is unsatisfiable, so the disjunct can
        // never make the tuple certain.
        satisfiable = false;
        break;
      }
      slot = v;
    }
    if (!satisfiable) continue;
    if (surviving_mask != nullptr && di < 64) {
      *surviving_mask |= uint64_t{1} << di;
    }
    ConjunctiveQuery inst = Specialize(d, binding);
    inst.head.clear();
    out.disjuncts.push_back(std::move(inst));
  }
  return out;
}

std::vector<Value> HeadInstantiator::ExpandTuple(
    const std::vector<Value>& slot_values) const {
  std::vector<Value> tuple(arity_);
  for (size_t i = 0; i < arity_; ++i) tuple[i] = slot_values[class_of_[i]];
  return tuple;
}

bool HeadInstantiator::HasFresh(const std::vector<Value>& slot_values) const {
  for (const Value& v : slot_values) {
    for (const TypedValue& tv : fresh_) {
      if (tv.value == v) return true;
    }
  }
  return false;
}

}  // namespace rar
