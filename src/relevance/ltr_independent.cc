#include "relevance/ltr_independent.h"

#include <map>
#include <unordered_set>
#include <vector>

#include "query/eval.h"
#include "query/structure.h"
#include "relational/overlay.h"

namespace rar {

namespace {

// Enumerates canonical assignments for one disjunct and applies the
// partition check. Candidates per variable: typed active-domain values,
// binding values whose input-attribute domain matches, and one private
// fresh null (freshest is canonical; sharing nulls between variables never
// helps the truncation check and never changes group assignment).
//
// Hot-path discipline: the per-domain candidate lists (the borrowed Adom
// slice plus the deduplicated off-Adom binding values) and the per-variable
// nulls are computed once per search, and the truncation configuration is
// one overlay Reset() between candidates — the enumeration's inner loop
// neither re-scans the binding nor copies the configuration.
class LtrIndepSearch {
 public:
  LtrIndepSearch(const ConfigView& conf, const AccessMethodSet& acs,
                 const Access& access, const ConjunctiveQuery& d,
                 const UnionQuery& full_query)
      : conf_(conf), acs_(acs), access_(access), d_(d),
        full_query_(full_query), method_(acs.method(access.method)),
        assignment_(d.num_vars()), truncation_(&conf) {
    // Hoisted per-variable candidates, shared across variables of the same
    // domain. The Adom slice is borrowed (the configuration is pinned for
    // the duration of the check); binding extras are the values typed by a
    // matching input attribute that lie outside the active domain
    // (independent accesses can guess new constants), deduplicated once.
    const Relation& rel = acs.schema()->relation(method_.relation);
    candidates_.resize(d.num_vars());
    var_null_.resize(d.num_vars());
    for (int v = 0; v < d.num_vars(); ++v) {
      var_null_[v] = nulls_.Fresh();
      if (!d.VarOccurs(v)) continue;
      DomainId dom = d.var_domains[v];
      auto [it, inserted] = extras_by_domain_.try_emplace(dom);
      if (inserted) {
        std::unordered_set<uint64_t> seen;
        for (int i = 0; i < method_.num_inputs(); ++i) {
          const Value& b = access.binding[i];
          if (rel.attributes[method_.input_positions[i]].domain != dom) {
            continue;
          }
          if (conf.AdomContains(b, dom)) continue;  // in the Adom slice
          if (!seen.insert(b.Packed()).second) continue;
          it->second.push_back(b);
        }
      }
      candidates_[v] = VarCandidates{conf.AdomOfDomain(dom), &it->second};
    }
    // Pre-ground the atom skeleton once; Enum writes assignment values into
    // the variable slots in place (constants are fixed up front).
    grounded_.reserve(d.num_atoms());
    for (const Atom& atom : d.atoms) {
      Fact f;
      f.relation = atom.relation;
      f.values.resize(atom.arity());
      for (int pos = 0; pos < atom.arity(); ++pos) {
        if (atom.terms[pos].is_const()) {
          f.values[pos] = atom.terms[pos].constant;
        }
      }
      grounded_.push_back(std::move(f));
    }
  }

  bool Run() { return Enum(0); }

 private:
  struct VarCandidates {
    ValueSeq adom;                      ///< borrowed Adom slice
    const std::vector<Value>* extras;   ///< off-Adom binding values
  };

  bool Enum(int v) {
    if (v == d_.num_vars()) return CheckPartition();
    if (!d_.VarOccurs(v)) {
      assignment_[v] = var_null_[v];
      return Enum(v + 1);
    }
    const VarCandidates& c = candidates_[v];
    for (const Value& val : c.adom) {
      assignment_[v] = val;
      if (Enum(v + 1)) return true;
    }
    for (const Value& val : *c.extras) {
      assignment_[v] = val;
      if (Enum(v + 1)) return true;
    }
    assignment_[v] = var_null_[v];
    return Enum(v + 1);
  }

  bool CheckPartition() {
    // Group the grounded subgoals; the truncation configuration overlays
    // the later-witnessed facts onto the (unchanged, uncopied) base.
    truncation_.Reset();
    for (int i = 0; i < d_.num_atoms(); ++i) {
      Fact& f = grounded_[i];
      const Atom& atom = d_.atoms[i];
      for (int pos = 0; pos < atom.arity(); ++pos) {
        if (atom.terms[pos].is_var()) {
          f.values[pos] = assignment_[atom.terms[pos].var];
        }
      }
      if (conf_.Contains(f)) continue;  // Conf-witnessed
      if (FactMatchesAccess(acs_, access_, f)) continue;  // first access
      if (!acs_.HasMethod(f.relation)) return false;  // never witnessable
      truncation_.AddFact(f);  // witnessed by a later access
    }
    // Witness iff the full query fails after the truncated path.
    return !EvalBool(full_query_, truncation_);
  }

  const ConfigView& conf_;
  const AccessMethodSet& acs_;
  const Access& access_;
  const ConjunctiveQuery& d_;
  const UnionQuery& full_query_;
  const AccessMethod& method_;
  std::vector<Value> assignment_;
  OverlayConfiguration truncation_;
  std::vector<VarCandidates> candidates_;
  std::vector<Value> var_null_;
  /// Node-stable storage for the per-domain binding extras.
  std::map<DomainId, std::vector<Value>> extras_by_domain_;
  std::vector<Fact> grounded_;
  NullFactory nulls_;
};

}  // namespace

bool IsLongTermRelevantIndependent(const ConfigView& conf,
                                   const AccessMethodSet& acs,
                                   const Access& access,
                                   const UnionQuery& query) {
  if (!CheckWellFormed(conf, acs, access).ok()) return false;
  for (const ConjunctiveQuery& d : query.disjuncts) {
    LtrIndepSearch search(conf, acs, access, d, query);
    if (search.Run()) return true;
  }
  return false;
}

std::optional<bool> LtrSingleOccurrenceFastPath(
    const ConfigView& conf, const AccessMethodSet& acs,
    const Access& access, const ConjunctiveQuery& query) {
  const AccessMethod& m = acs.method(access.method);
  if (RelationOccurrences(query, m.relation) != 1) return std::nullopt;
  for (const Atom& atom : query.atoms) {
    if (!acs.HasMethod(atom.relation)) return std::nullopt;
  }

  // Unify the accessed subgoal with the binding (the mapping h of the
  // paper; it is unique when it exists).
  int r_atom = -1;
  for (int i = 0; i < query.num_atoms(); ++i) {
    if (query.atoms[i].relation == m.relation) r_atom = i;
  }
  const Atom& atom = query.atoms[r_atom];
  std::vector<std::optional<Value>> binding(query.num_vars());
  for (int i = 0; i < m.num_inputs(); ++i) {
    const Term& t = atom.terms[m.input_positions[i]];
    const Value& b = access.binding[i];
    if (t.is_const()) {
      if (t.constant != b) return false;  // conflicting constant: not LTR
    } else if (binding[t.var].has_value()) {
      if (*binding[t.var] != b) return false;
    } else {
      binding[t.var] = b;
    }
  }

  // Canonical (maximally fresh) assignment: unifier values where forced,
  // private fresh nulls elsewhere. Freshness dominates: any coarser
  // assignment's truncation configuration receives a homomorphic image of
  // the fresh one, so the fresh candidate decides LTR alone.
  NullFactory nulls;
  std::vector<Value> assignment(query.num_vars());
  for (int v = 0; v < query.num_vars(); ++v) {
    assignment[v] = binding[v].has_value() ? *binding[v] : nulls.Fresh();
  }
  std::vector<Fact> grounded = GroundAtoms(query, assignment);

  // A first access returning an already-known fact changes nothing.
  if (conf.Contains(grounded[r_atom])) return false;

  // The truncation configuration: Conf plus every later-witnessed subgoal,
  // overlaid without copying the base.
  OverlayConfiguration truncation(&conf);
  for (int i = 0; i < query.num_atoms(); ++i) {
    if (i == r_atom) continue;
    truncation.AddFact(grounded[i]);
  }
  return !EvalBool(query, truncation);
}

}  // namespace rar
