#include "relevance/ltr_independent.h"

#include <unordered_set>
#include <vector>

#include "query/eval.h"
#include "query/structure.h"

namespace rar {

namespace {

// Enumerates canonical assignments for one disjunct and applies the
// partition check. Candidates per variable: typed active-domain values,
// binding values whose input-attribute domain matches, and one private
// fresh null (freshest is canonical; sharing nulls between variables never
// helps the truncation check and never changes group assignment).
class LtrIndepSearch {
 public:
  LtrIndepSearch(const Configuration& conf, const AccessMethodSet& acs,
                 const Access& access, const ConjunctiveQuery& d,
                 const UnionQuery& full_query)
      : conf_(conf), acs_(acs), access_(access), d_(d),
        full_query_(full_query), method_(acs.method(access.method)),
        assignment_(d.num_vars()) {}

  bool Run() { return Enum(0); }

 private:
  bool Enum(int v) {
    if (v == d_.num_vars()) return CheckPartition();
    if (!d_.VarOccurs(v)) {
      assignment_[v] = nulls_.Fresh();
      return Enum(v + 1);
    }
    DomainId dom = d_.var_domains[v];
    for (const Value& val : conf_.AdomOfDomain(dom)) {
      assignment_[v] = val;
      if (Enum(v + 1)) return true;
    }
    // Binding values typed by their input attribute (they may lie outside
    // the active domain: independent accesses can guess new constants).
    const Relation& rel = acs_.schema()->relation(method_.relation);
    std::unordered_set<uint64_t> seen;
    for (int i = 0; i < method_.num_inputs(); ++i) {
      const Value& b = access_.binding[i];
      if (rel.attributes[method_.input_positions[i]].domain != dom) continue;
      if (conf_.AdomContains(b, dom)) continue;  // already tried above
      if (!seen.insert(b.Packed()).second) continue;
      assignment_[v] = b;
      if (Enum(v + 1)) return true;
    }
    assignment_[v] = nulls_.Fresh();
    return Enum(v + 1);
  }

  bool CheckPartition() {
    // Group the grounded subgoals; the truncation configuration collects
    // the later-witnessed facts.
    Configuration truncation = conf_;
    std::vector<Fact> facts = GroundAtoms(d_, assignment_);
    for (int i = 0; i < d_.num_atoms(); ++i) {
      const Fact& f = facts[i];
      if (conf_.Contains(f)) continue;  // Conf-witnessed
      if (FactMatchesAccess(acs_, access_, f)) continue;  // first access
      if (!acs_.HasMethod(f.relation)) return false;  // never witnessable
      truncation.AddFact(f);  // witnessed by a later access
    }
    // Witness iff the full query fails after the truncated path.
    return !EvalBool(full_query_, truncation);
  }

  const Configuration& conf_;
  const AccessMethodSet& acs_;
  const Access& access_;
  const ConjunctiveQuery& d_;
  const UnionQuery& full_query_;
  const AccessMethod& method_;
  std::vector<Value> assignment_;
  NullFactory nulls_;
};

}  // namespace

bool IsLongTermRelevantIndependent(const Configuration& conf,
                                   const AccessMethodSet& acs,
                                   const Access& access,
                                   const UnionQuery& query) {
  if (!CheckWellFormed(conf, acs, access).ok()) return false;
  for (const ConjunctiveQuery& d : query.disjuncts) {
    LtrIndepSearch search(conf, acs, access, d, query);
    if (search.Run()) return true;
  }
  return false;
}

std::optional<bool> LtrSingleOccurrenceFastPath(
    const Configuration& conf, const AccessMethodSet& acs,
    const Access& access, const ConjunctiveQuery& query) {
  const AccessMethod& m = acs.method(access.method);
  if (RelationOccurrences(query, m.relation) != 1) return std::nullopt;
  for (const Atom& atom : query.atoms) {
    if (!acs.HasMethod(atom.relation)) return std::nullopt;
  }

  // Unify the accessed subgoal with the binding (the mapping h of the
  // paper; it is unique when it exists).
  int r_atom = -1;
  for (int i = 0; i < query.num_atoms(); ++i) {
    if (query.atoms[i].relation == m.relation) r_atom = i;
  }
  const Atom& atom = query.atoms[r_atom];
  std::vector<std::optional<Value>> binding(query.num_vars());
  for (int i = 0; i < m.num_inputs(); ++i) {
    const Term& t = atom.terms[m.input_positions[i]];
    const Value& b = access.binding[i];
    if (t.is_const()) {
      if (t.constant != b) return false;  // conflicting constant: not LTR
    } else if (binding[t.var].has_value()) {
      if (*binding[t.var] != b) return false;
    } else {
      binding[t.var] = b;
    }
  }

  // Canonical (maximally fresh) assignment: unifier values where forced,
  // private fresh nulls elsewhere. Freshness dominates: any coarser
  // assignment's truncation configuration receives a homomorphic image of
  // the fresh one, so the fresh candidate decides LTR alone.
  NullFactory nulls;
  std::vector<Value> assignment(query.num_vars());
  for (int v = 0; v < query.num_vars(); ++v) {
    assignment[v] = binding[v].has_value() ? *binding[v] : nulls.Fresh();
  }
  std::vector<Fact> grounded = GroundAtoms(query, assignment);

  // A first access returning an already-known fact changes nothing.
  if (conf.Contains(grounded[r_atom])) return false;

  // The truncation configuration: Conf plus every later-witnessed subgoal.
  Configuration truncation = conf;
  for (int i = 0; i < query.num_atoms(); ++i) {
    if (i == r_atom) continue;
    truncation.AddFact(grounded[i]);
  }
  return !EvalBool(query, truncation);
}

}  // namespace rar
