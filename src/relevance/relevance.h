// Top-level relevance facade: dispatching, k-ary reduction (Prop 2.2).
//
// `RelevanceAnalyzer` is the public entry point a query mediator uses:
// it decides IR and LTR for Boolean queries, dispatching LTR to the
// independent-case Σ2P engine (with the Prop 4.3 fast path) or to the
// dependent-case containment-backed engines, and lifts k-ary queries to
// the Boolean case by instantiating head tuples over the active domain
// plus fresh constants (Prop 2.2).
#ifndef RAR_RELEVANCE_RELEVANCE_H_
#define RAR_RELEVANCE_RELEVANCE_H_

#include "containment/access_containment.h"
#include "query/footprint.h"
#include "relevance/immediate.h"
#include "relevance/ltr_dependent.h"
#include "relevance/ltr_independent.h"

namespace rar {

/// Options for the LTR deciders (the dependent case delegates to the
/// containment witness search).
struct RelevanceOptions {
  ContainmentOptions containment;
  /// Use the Prop 4.3 single-occurrence fast path when applicable.
  bool use_fast_paths = true;
};

/// \brief Facade bundling the relevance deciders of Sections 4 and 5.
class RelevanceAnalyzer {
 public:
  RelevanceAnalyzer(const Schema& schema, const AccessMethodSet& acs)
      : schema_(schema), acs_(acs) {}

  /// Immediate relevance of a Boolean query (Prop 4.1; same procedure for
  /// dependent and independent methods).
  bool Immediate(const ConfigView& conf, const Access& access,
                 const UnionQuery& query) const {
    return IsImmediatelyRelevant(conf, acs_, access, query);
  }

  /// Long-term relevance of a Boolean query. Dispatch: all methods
  /// independent -> Σ2P engine (Prop 4.5), with the Prop 4.3 fast path for
  /// single-occurrence CQs; otherwise the containment-backed engines
  /// (Prop 3.5 for CQs, Prop 3.4 for UCQs).
  Result<bool> LongTerm(const ConfigView& conf, const Access& access,
                        const UnionQuery& query,
                        const RelevanceOptions& options = {}) const;

  /// Prop 2.2: k-ary immediate relevance via head instantiation.
  Result<bool> ImmediateKAry(const ConfigView& conf, const Access& access,
                             const UnionQuery& query) const;

  /// Prop 2.2: k-ary long-term relevance via head instantiation.
  Result<bool> LongTermKAry(const ConfigView& conf, const Access& access,
                            const UnionQuery& query,
                            const RelevanceOptions& options = {}) const;

  /// The relation footprint of an IR check: the decider reads only facts
  /// of the query's relations plus the accessed relation (the well-
  /// formedness Adom probe is the caller's concern — it is monotone, so a
  /// verdict computed on a well-formed access never needs Adom
  /// revalidation). The first overload takes the query's memoized
  /// footprint (callers that check repeatedly should not re-derive it per
  /// check); the second derives it.
  static RelationFootprint ImmediateFootprint(
      const RelationFootprint& query_footprint, RelationId accessed) {
    RelationFootprint fp = query_footprint.WithRelation(accessed);
    fp.adom_sensitive = false;
    return fp;
  }
  static RelationFootprint ImmediateFootprint(const UnionQuery& query,
                                              RelationId accessed) {
    return ImmediateFootprint(RelationFootprint::Of(query), accessed);
  }

  /// The footprint of an LTR check: the same relations, plus the typed
  /// active domain — both LTR engines enumerate Adom values (canonical
  /// assignments, reachability closures, CM-containment relative to the
  /// existing constants), and Adom grows with facts of *every* relation.
  static RelationFootprint LongTermFootprint(
      const RelationFootprint& query_footprint, RelationId accessed) {
    RelationFootprint fp = query_footprint.WithRelation(accessed);
    fp.adom_sensitive = true;
    return fp;
  }
  static RelationFootprint LongTermFootprint(const UnionQuery& query,
                                             RelationId accessed) {
    return LongTermFootprint(RelationFootprint::Of(query), accessed);
  }

 private:
  const Schema& schema_;
  const AccessMethodSet& acs_;
};

}  // namespace rar

#endif  // RAR_RELEVANCE_RELEVANCE_H_
