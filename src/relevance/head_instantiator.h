// HeadInstantiator: the reusable Prop 2.2 head-instantiation machinery.
//
// Prop 2.2 reduces k-ary relevance to the Boolean case: an access is
// relevant to a k-ary query Q iff it is relevant to some Boolean
// instantiation Q_b, where b ranges over head tuples drawn from the typed
// active domain plus fresh constants (the paper's c_k tuple). The one-shot
// wrappers used to re-derive everything per call; this class factors the
// machinery out so it can also back *standing* streams (src/stream/):
//
//  * *slots* — head positions are deduplicated into equivalence classes
//    ("slots"): positions i and j share a slot when every disjunct binds
//    them to the same head variable, so any tuple assigning them different
//    values instantiates every disjunct to an unsatisfiable query.
//    Enumeration runs over slot tuples (|Adom ∪ fresh|^#slots), not over
//    the raw position product (|Adom ∪ fresh|^k).
//  * *fresh pool* — one fresh constant per slot, minted once per domain at
//    construction and shared by every enumeration (the one-shot path used
//    to mint per call). `SeedInto` registers them on an overlay so the
//    Boolean deciders treat them as known values.
//  * *per-binding instantiation* — `Instantiate` drops disjuncts whose
//    repeated head variables received conflicting values (they are
//    unsatisfiable for that tuple, so they can never contribute certainty)
//    instead of silently overwriting the binding; the surviving disjuncts
//    give each binding its own, possibly narrower, relation footprint.
//  * *delta enumeration* — `ForEachNewBinding` emits exactly the slot
//    tuples that use at least one active-domain value beyond a caller-held
//    cursor (classified by their first new coordinate, mirroring the
//    engine's AccessFrontier), which is what makes incremental per-binding
//    maintenance possible when responses grow the active domain.
#ifndef RAR_RELEVANCE_HEAD_INSTANTIATOR_H_
#define RAR_RELEVANCE_HEAD_INSTANTIATOR_H_

#include <functional>
#include <vector>

#include "query/footprint.h"
#include "query/query.h"
#include "relational/overlay.h"
#include "util/status.h"

namespace rar {

/// \brief Per-domain candidate values for head enumeration, plus the
/// delta-enumeration cursor. Indexed by the instantiator's dense distinct-
/// domain index (`HeadInstantiator::num_domains()`); `values[d]` holds
/// active-domain values only — the fresh pool is appended implicitly by
/// the enumeration. `seen[d]` is the count of leading values a previous
/// enumeration already covered; `ForEachNewBinding` emits only tuples
/// using a value at or beyond it.
struct HeadCandidates {
  std::vector<std::vector<Value>> values;
  std::vector<size_t> seen;
};

/// \brief The unification face of one query atom, as seen by landed facts.
///
/// A fact over `relation` can participate in some evaluation of a binding
/// query Q_b only if it unifies with a substituted atom of Q_b. Per atom
/// that splits into binding-independent structure — positions holding an
/// original query constant (`required_consts`) — and the binding-dependent
/// part: positions holding a *head* variable, which `Instantiate` replaces
/// with the binding's slot value (`required_slots`). Positions holding
/// non-head variables constrain nothing per-binding, but they carry the
/// disjunct's *join structure* (`free_vars`): the stream registry's
/// semijoin chase follows shared non-head variables from a landed fact
/// through the disjunct's other atoms to reach head-slot positions. The
/// registry's value gate (stream/registry.h) checks landed facts against
/// these patterns: a fact that fails every pattern of its relation for a
/// binding is invisible to Q_b, so the binding's verdicts cannot have
/// moved.
struct AtomGateConstraint {
  RelationId relation = kInvalidId;
  size_t disjunct = 0;  ///< index into the query's disjuncts
  /// (position, constant) pairs the atom fixes independently of bindings.
  std::vector<std::pair<int, Value>> required_consts;
  /// (position, head slot) pairs the atom fixes to the binding's values.
  std::vector<std::pair<int, size_t>> required_slots;
  /// (position, variable) pairs holding non-head variables — the join
  /// edges of the disjunct's atom graph (VarIds are disjunct-local).
  std::vector<std::pair<int, VarId>> free_vars;
};

/// \brief Validated head-instantiation state for one k-ary union query.
class HeadInstantiator {
 public:
  /// Validates the head shape (disjuncts agree on arity and output
  /// domains), computes slots, and mints the fresh pool. Check `status()`
  /// before any other call.
  ///
  /// `preset_fresh` (recovery): instead of minting, reuse an earlier
  /// instantiation's fresh pool — one typed value per slot class, in slot
  /// -class order, exactly as a previous `fresh_constants()` returned it.
  /// Minting probes the schema's shared constant interner for an unused
  /// spelling, so a replayed registration would otherwise coin *different*
  /// check constants than the run being recovered, and every persisted
  /// fresh-binding row would fail to line up. Domains must match the
  /// query's slot classes; size or domain mismatch fails `status()`.
  HeadInstantiator(const Schema& schema, const UnionQuery& query,
                   const std::vector<TypedValue>* preset_fresh = nullptr);

  const Status& status() const { return status_; }
  const UnionQuery& query() const { return query_; }

  /// Head arity k (0 for Boolean queries).
  size_t arity() const { return arity_; }
  /// Distinct head slots after deduplicating repeated positions.
  size_t num_slots() const { return slot_domains_.size(); }
  DomainId slot_domain(size_t slot) const { return slot_domains_[slot]; }
  /// Distinct head domains (each slot maps onto one).
  size_t num_domains() const { return domains_.size(); }
  DomainId domain(size_t index) const { return domains_[index]; }
  size_t domain_index_of_slot(size_t slot) const {
    return slot_domain_index_[slot];
  }

  /// The minted fresh pool (the Prop 2.2 c_k values), typed by domain.
  const std::vector<TypedValue>& fresh_constants() const { return fresh_; }

  /// Registers the fresh pool on an overlay so deciders see the fresh
  /// values as part of the active domain.
  void SeedInto(OverlayConfiguration* overlay) const;

  /// Materializes the per-domain active-domain candidate lists at `view`
  /// (fresh pool excluded — the enumerations append it). `view` must be
  /// the un-seeded configuration.
  HeadCandidates CollectCandidates(const ConfigView& view) const;

  /// Appends values of `view`'s active domain beyond the lists already in
  /// `candidates` (incremental refresh for standing streams).
  void ExtendCandidates(const ConfigView& view,
                        HeadCandidates* candidates) const;

  /// Enumerates every slot tuple over `candidates` (plus the fresh pool).
  /// `fn` returns true to stop; returns true when stopped early. The
  /// `seen` cursors are ignored. For k == 0 emits one empty tuple.
  bool ForEachBinding(
      const HeadCandidates& candidates,
      const std::function<bool(const std::vector<Value>&)>& fn) const;

  /// Enumerates exactly the slot tuples that use at least one value at or
  /// beyond the `seen` cursor of its domain (each such tuple once,
  /// classified by its first new coordinate). Fresh-pool values count as
  /// already seen. For k == 0 emits nothing.
  bool ForEachNewBinding(
      const HeadCandidates& candidates,
      const std::function<bool(const std::vector<Value>&)>& fn) const;

  /// The Boolean instantiation of the query at a slot tuple: every head
  /// variable bound to its slot's value, heads cleared. Disjuncts whose
  /// repeated head variables would receive conflicting values are dropped
  /// (unsatisfiable); the result can therefore have *no* disjuncts, in
  /// which case the tuple can never be certain and no access is relevant
  /// to it. When `surviving_mask` is non-null, bit d is set for every
  /// disjunct that survived (meaningful for queries with at most 64
  /// disjuncts — the value gate's consumer checks that bound).
  UnionQuery Instantiate(const std::vector<Value>& slot_values,
                         uint64_t* surviving_mask = nullptr) const;

  /// The per-atom unification patterns of the query (one entry per atom of
  /// every disjunct, in disjunct-then-atom order), computed once at
  /// construction. Shared across bindings: the binding-dependent values
  /// are referenced through head-slot indices.
  const std::vector<AtomGateConstraint>& gate_constraints() const {
    return gate_constraints_;
  }

  /// Expands a slot tuple back to the full k-tuple of head positions.
  std::vector<Value> ExpandTuple(const std::vector<Value>& slot_values) const;

  /// True when the slot tuple uses a fresh-pool constant.
  bool HasFresh(const std::vector<Value>& slot_values) const;

 private:
  /// Derives gate_constraints_ from the validated query structure.
  void BuildGateConstraints();

  const Schema* schema_;
  UnionQuery query_;
  Status status_;
  size_t arity_ = 0;
  std::vector<size_t> class_of_;        ///< head position -> slot
  std::vector<DomainId> slot_domains_;  ///< slot -> domain
  std::vector<size_t> slot_domain_index_;  ///< slot -> distinct-domain index
  std::vector<DomainId> domains_;          ///< distinct head domains
  std::vector<std::vector<Value>> fresh_by_domain_;  ///< distinct-domain index
  std::vector<TypedValue> fresh_;
  std::vector<AtomGateConstraint> gate_constraints_;
};

}  // namespace rar

#endif  // RAR_RELEVANCE_HEAD_INSTANTIATOR_H_
