#include "relevance/immediate.h"

#include <vector>

#include "query/eval.h"

namespace rar {

namespace {

// Backtracking search for a witnessing assignment of one disjunct: every
// atom must be matched against Conf or against the access's virtual
// response relation (relation == Rel(AcM), inputs == Bind).
class IrSearch {
 public:
  IrSearch(const ConfigView& conf, const AccessMethodSet& acs,
           const Access& access, const ConjunctiveQuery& d)
      : conf_(conf), acs_(acs), access_(access), d_(d),
        method_(acs.method(access.method)),
        assignment_(d.num_vars()), assigned_(d.num_vars(), false) {}

  bool Run() { return Rec(0); }

 private:
  bool Rec(size_t atom_idx) {
    if (atom_idx == d_.atoms.size()) return true;
    const Atom& atom = d_.atoms[atom_idx];

    // Option (a): witness the atom with a configuration fact.
    for (const Fact& fact : conf_.FactsOf(atom.relation)) {
      std::vector<VarId> bound;
      if (UnifyAgainstFact(atom, fact, &bound)) {
        if (Rec(atom_idx + 1)) return true;
      }
      for (VarId v : bound) assigned_[v] = false;
    }

    // Option (b): witness it with the access — relation must match and the
    // input positions must unify with the binding; output positions are
    // unconstrained (the response may contain anything there).
    if (atom.relation == method_.relation) {
      std::vector<VarId> bound;
      bool ok = true;
      for (int i = 0; i < method_.num_inputs() && ok; ++i) {
        const Term& t = atom.terms[method_.input_positions[i]];
        const Value& b = access_.binding[i];
        if (t.is_const()) {
          ok = (t.constant == b);
        } else if (assigned_[t.var]) {
          ok = (assignment_[t.var] == b);
        } else {
          assignment_[t.var] = b;
          assigned_[t.var] = true;
          bound.push_back(t.var);
        }
      }
      if (ok && Rec(atom_idx + 1)) return true;
      for (VarId v : bound) assigned_[v] = false;
    }
    return false;
  }

  bool UnifyAgainstFact(const Atom& atom, const Fact& fact,
                        std::vector<VarId>* bound) {
    for (int pos = 0; pos < atom.arity(); ++pos) {
      const Term& t = atom.terms[pos];
      if (t.is_const()) {
        if (t.constant != fact.values[pos]) return false;
      } else if (assigned_[t.var]) {
        if (assignment_[t.var] != fact.values[pos]) return false;
      } else {
        assignment_[t.var] = fact.values[pos];
        assigned_[t.var] = true;
        bound->push_back(t.var);
      }
    }
    return true;
  }

  const ConfigView& conf_;
  const AccessMethodSet& acs_;
  const Access& access_;
  const ConjunctiveQuery& d_;
  const AccessMethod& method_;
  std::vector<Value> assignment_;
  std::vector<bool> assigned_;
};

}  // namespace

bool IsImmediatelyRelevant(const ConfigView& conf,
                           const AccessMethodSet& acs, const Access& access,
                           const UnionQuery& query) {
  if (!CheckWellFormed(conf, acs, access).ok()) return false;
  if (EvalBool(query, conf)) return false;  // already certain
  for (const ConjunctiveQuery& d : query.disjuncts) {
    IrSearch search(conf, acs, access, d);
    if (search.Run()) return true;
  }
  return false;
}

}  // namespace rar
