// Immediate relevance (Section 2 definition, Proposition 4.1 algorithm).
//
// An access (AcM, Bind) is immediately relevant (IR) for Q at Conf when
// some sound response makes a tuple certain that was not certain before.
// For Boolean positive queries this is decided by the paper's DP procedure:
// reject if Q is already certain; otherwise search for an assignment of the
// query variables into Adom(Conf) ∪ {one fresh value per domain} under
// which every subgoal of some disjunct is witnessed either by Conf or by
// compatibility with the access (same relation, input positions equal to
// the binding). The fresh values are represented implicitly: variables that
// only appear at output positions of access-witnessed atoms stay unbound,
// which is exactly "any value the response could contain".
//
// IR does not depend on whether methods are dependent or independent
// (Section 5: "results for IR are clearly the same"), only on the single
// access's well-formedness.
#ifndef RAR_RELEVANCE_IMMEDIATE_H_
#define RAR_RELEVANCE_IMMEDIATE_H_

#include "access/access_method.h"
#include "query/query.h"
#include "relational/configuration.h"

namespace rar {

/// Decides immediate relevance of `access` for the Boolean query at `conf`.
/// Ill-formed accesses are never relevant (they cannot be performed).
bool IsImmediatelyRelevant(const ConfigView& conf,
                           const AccessMethodSet& acs, const Access& access,
                           const UnionQuery& query);

}  // namespace rar

#endif  // RAR_RELEVANCE_IMMEDIATE_H_
