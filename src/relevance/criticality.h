// Critical tuples (Miklau–Suciu) and their bridge to long-term relevance.
//
// Section 4 derives the Σ2P lower bound for independent LTR from the
// critical-tuple problem: a tuple t is critical for a Boolean query Q over
// a finite value set D iff deleting t from some instance over D changes
// Q's truth value; and t is critical iff the Boolean access R(t)? is LTR
// in a configuration containing only the query's constants (and the value
// set), with no facts for R. This module implements that bridge so the
// equivalence itself is testable.
#ifndef RAR_RELEVANCE_CRITICALITY_H_
#define RAR_RELEVANCE_CRITICALITY_H_

#include <vector>

#include "query/query.h"
#include "relational/schema.h"
#include "util/status.h"

namespace rar {

/// Decides criticality of `t` for the single-relation Boolean query `q` by
/// running the independent-LTR engine on the Boolean access R(t)? in a
/// facts-free configuration seeded with `domain_values` (which must be
/// large enough to host a minimal witness instance: |vars(q)| + constants
/// suffices).
Result<bool> IsCriticalViaLTR(const Schema& schema, const UnionQuery& q,
                              const Fact& t,
                              const std::vector<Value>& domain_values);

}  // namespace rar

#endif  // RAR_RELEVANCE_CRITICALITY_H_
