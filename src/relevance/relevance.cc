#include "relevance/relevance.h"

#include <unordered_map>
#include <vector>

#include "relational/overlay.h"
#include "util/combinatorics.h"

namespace rar {

Result<bool> RelevanceAnalyzer::LongTerm(const ConfigView& conf,
                                         const Access& access,
                                         const UnionQuery& query,
                                         const RelevanceOptions& options) const {
  if (!query.IsBoolean()) {
    return Status::InvalidArgument(
        "LongTerm expects a Boolean query; use LongTermKAry");
  }
  if (acs_.AllIndependent()) {
    if (options.use_fast_paths && query.disjuncts.size() == 1) {
      std::optional<bool> fast = LtrSingleOccurrenceFastPath(
          conf, acs_, access, query.disjuncts[0]);
      if (fast.has_value()) return *fast;
    }
    return IsLongTermRelevantIndependent(conf, acs_, access, query);
  }
  // Boolean accesses take the paper's Prop 3.5 / 3.4 route; accesses with
  // output attributes take the truncation-cut extension (exact except for
  // the achievable-but-uncuttable corner, which reports an error). The
  // deciders only consume the containment verdict, so witness
  // construction (which materializes the base) stays off the check path.
  ContainmentOptions copts = options.containment;
  copts.build_witness = false;
  return IsLongTermRelevantDependentGeneral(conf, acs_, access, query,
                                            copts);
}

namespace {

// Prop 2.2 head instantiation: enumerate head tuples over the typed active
// domain plus k fresh constants per head domain, and hand each Boolean
// instantiation to `decide`.
Result<bool> ForEachHeadInstantiation(
    const Schema& schema, const ConfigView& conf, const UnionQuery& query,
    const std::function<Result<bool>(const UnionQuery&,
                                     const ConfigView&)>& decide) {
  if (query.disjuncts.empty()) {
    return Status::InvalidArgument("empty union query");
  }
  const size_t k = query.disjuncts[0].head.size();
  if (k == 0) return decide(query, conf);

  // Head domains must agree across disjuncts (same output schema).
  std::vector<DomainId> head_domains;
  for (VarId h : query.disjuncts[0].head) {
    head_domains.push_back(query.disjuncts[0].var_domains[h]);
  }
  for (const ConjunctiveQuery& d : query.disjuncts) {
    if (d.head.size() != k) {
      return Status::InvalidArgument("disjuncts disagree on head arity");
    }
    for (size_t i = 0; i < k; ++i) {
      if (d.var_domains[d.head[i]] != head_domains[i]) {
        return Status::InvalidArgument(
            "disjuncts disagree on head output domains");
      }
    }
  }

  // Mint k fresh constants per head domain (enough for every repetition
  // pattern of the paper's c_k tuple) and seed them into an overlay (the
  // base is not copied).
  OverlayConfiguration seeded(&conf);
  std::unordered_map<DomainId, std::vector<Value>> fresh_by_domain;
  for (DomainId dom : head_domains) {
    auto& fresh = fresh_by_domain[dom];
    while (fresh.size() < k) {
      Value c = schema.MintFreshConstant("ck_" + schema.domain_name(dom));
      seeded.AddSeedConstant(c, dom);
      fresh.push_back(c);
    }
  }

  // Candidate values per head position (borrowed; `seeded` is stable for
  // the rest of the enumeration).
  std::vector<ValueSeq> candidates(k);
  std::vector<int> sizes(k);
  for (size_t i = 0; i < k; ++i) {
    candidates[i] = seeded.AdomOfDomain(head_domains[i]);
    sizes[i] = static_cast<int>(candidates[i].size());
  }

  Status inner_error = Status::OK();
  bool relevant = ForEachProduct(sizes, [&](const std::vector<int>& choice) {
    UnionQuery boolean_q;
    for (const ConjunctiveQuery& d : query.disjuncts) {
      std::vector<std::optional<Value>> binding(d.num_vars());
      for (size_t i = 0; i < k; ++i) {
        binding[d.head[i]] = candidates[i][choice[i]];
      }
      ConjunctiveQuery inst = Specialize(d, binding);
      inst.head.clear();
      boolean_q.disjuncts.push_back(std::move(inst));
    }
    Result<bool> r = decide(boolean_q, seeded);
    if (!r.ok()) {
      inner_error = r.status();
      return true;  // abort enumeration
    }
    return *r;
  });
  RAR_RETURN_NOT_OK(inner_error);
  return relevant;
}

}  // namespace

Result<bool> RelevanceAnalyzer::ImmediateKAry(const ConfigView& conf,
                                              const Access& access,
                                              const UnionQuery& query) const {
  return ForEachHeadInstantiation(
      schema_, conf, query,
      [&](const UnionQuery& q, const ConfigView& c) -> Result<bool> {
        return IsImmediatelyRelevant(c, acs_, access, q);
      });
}

Result<bool> RelevanceAnalyzer::LongTermKAry(
    const ConfigView& conf, const Access& access, const UnionQuery& query,
    const RelevanceOptions& options) const {
  return ForEachHeadInstantiation(
      schema_, conf, query,
      [&](const UnionQuery& q, const ConfigView& c) -> Result<bool> {
        return LongTerm(c, access, q, options);
      });
}

}  // namespace rar
