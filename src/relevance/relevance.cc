#include "relevance/relevance.h"

#include <vector>

#include "relational/overlay.h"
#include "relevance/head_instantiator.h"

namespace rar {

Result<bool> RelevanceAnalyzer::LongTerm(const ConfigView& conf,
                                         const Access& access,
                                         const UnionQuery& query,
                                         const RelevanceOptions& options) const {
  if (!query.IsBoolean()) {
    return Status::InvalidArgument(
        "LongTerm expects a Boolean query; use LongTermKAry");
  }
  if (acs_.AllIndependent()) {
    if (options.use_fast_paths && query.disjuncts.size() == 1) {
      std::optional<bool> fast = LtrSingleOccurrenceFastPath(
          conf, acs_, access, query.disjuncts[0]);
      if (fast.has_value()) return *fast;
    }
    return IsLongTermRelevantIndependent(conf, acs_, access, query);
  }
  // Boolean accesses take the paper's Prop 3.5 / 3.4 route; accesses with
  // output attributes take the truncation-cut extension (exact except for
  // the achievable-but-uncuttable corner, which reports an error). The
  // deciders only consume the containment verdict, so witness
  // construction (which materializes the base) stays off the check path.
  ContainmentOptions copts = options.containment;
  copts.build_witness = false;
  return IsLongTermRelevantDependentGeneral(conf, acs_, access, query,
                                            copts);
}

namespace {

// Prop 2.2 head instantiation, shared by both k-ary wrappers: enumerate
// deduplicated head slot tuples over the typed active domain plus the
// instantiator's fresh pool (see relevance/head_instantiator.h) and hand
// each satisfiable Boolean instantiation to `decide` over the seeded view.
Result<bool> ForEachHeadInstantiation(
    const Schema& schema, const ConfigView& conf, const UnionQuery& query,
    const std::function<Result<bool>(const UnionQuery&,
                                     const ConfigView&)>& decide) {
  HeadInstantiator inst(schema, query);
  RAR_RETURN_NOT_OK(inst.status());
  if (inst.arity() == 0) return decide(query, conf);

  OverlayConfiguration seeded(&conf);
  inst.SeedInto(&seeded);
  HeadCandidates candidates = inst.CollectCandidates(conf);

  Status inner_error = Status::OK();
  bool relevant =
      inst.ForEachBinding(candidates, [&](const std::vector<Value>& slots) {
        UnionQuery boolean_q = inst.Instantiate(slots);
        // Every disjunct collapsed (repeated head variables bound to
        // conflicting values): the tuple can never be certain.
        if (boolean_q.disjuncts.empty()) return false;
        Result<bool> r = decide(boolean_q, seeded);
        if (!r.ok()) {
          inner_error = r.status();
          return true;  // abort enumeration
        }
        return *r;
      });
  RAR_RETURN_NOT_OK(inner_error);
  return relevant;
}

}  // namespace

Result<bool> RelevanceAnalyzer::ImmediateKAry(const ConfigView& conf,
                                              const Access& access,
                                              const UnionQuery& query) const {
  return ForEachHeadInstantiation(
      schema_, conf, query,
      [&](const UnionQuery& q, const ConfigView& c) -> Result<bool> {
        return IsImmediatelyRelevant(c, acs_, access, q);
      });
}

Result<bool> RelevanceAnalyzer::LongTermKAry(
    const ConfigView& conf, const Access& access, const UnionQuery& query,
    const RelevanceOptions& options) const {
  return ForEachHeadInstantiation(
      schema_, conf, query,
      [&](const UnionQuery& q, const ConfigView& c) -> Result<bool> {
        return LongTerm(c, access, q, options);
      });
}

}  // namespace rar
