// Long-term relevance with dependent access methods (Section 5).
//
// Conjunctive queries (Prop 3.5): split Q = Q1 ∧ Q2 where Q1 collects the
// subgoals compatible with the access (same relation, no constant mismatch
// with the binding). The access is LTR iff some proper subset Q'1 ⊊ Q1
// makes Q'1 ∧ Q2 NOT contained in Q under access limitations — an NP
// algorithm with a containment oracle, which is how the NEXPTIME upper
// bound of Table 1 is obtained.
//
// Positive queries (Prop 3.4): rewrite the query with the IsBind relation
// and decide non-containment of the rewritten query in the original one.
//
// The paper develops dependent-case LTR for Boolean accesses; these
// engines accept arbitrary accesses but the paper-backed exactness claims
// (and the tests) target Boolean accesses.
#ifndef RAR_RELEVANCE_LTR_DEPENDENT_H_
#define RAR_RELEVANCE_LTR_DEPENDENT_H_

#include "access/access_method.h"
#include "containment/access_containment.h"
#include "query/query.h"
#include "relational/configuration.h"
#include "util/status.h"

namespace rar {

/// Decides LTR via the Prop 3.5 subset algorithm (Boolean CQs).
Result<bool> IsLongTermRelevantDependentCQ(
    const ConfigView& conf, const AccessMethodSet& acs,
    const Access& access, const ConjunctiveQuery& query,
    const ContainmentOptions& options = {});

/// Decides LTR via the Prop 3.4 reduction to non-containment (Boolean
/// UCQs / positive queries).
Result<bool> IsLongTermRelevantDependentUCQ(
    const ConfigView& conf, const AccessMethodSet& acs,
    const Access& access, const UnionQuery& query,
    const ContainmentOptions& options = {});

/// LTR for *non-Boolean* dependent accesses — the extension the paper
/// leaves as future work, decided exactly via the truncation-cut argument:
///
/// A non-Boolean access can return a tuple carrying a fresh value v. Any
/// later access whose binding uses v is ill-formed once the first access
/// is removed, so the truncated path stops right there: the adversary can
/// cut the truncation down to the starting configuration by scheduling one
/// such access (possibly with an empty response) second. Hence, whenever
/// (a) the query is not yet certain, (b) some dependent method can consume
/// a value from one of the access's output domains (the "cut"), and
/// (c) the query is achievable from Conf plus one generic response tuple,
/// the access is long-term relevant; failing (a) or (c) it is not. The
/// only undecided corner is achievable-but-uncuttable (no dependent method
/// consumes any output domain), reported as FailedPrecondition.
///
/// Boolean accesses are delegated to the Prop 3.5 / 3.4 engines.
Result<bool> IsLongTermRelevantDependentGeneral(
    const ConfigView& conf, const AccessMethodSet& acs,
    const Access& access, const UnionQuery& query,
    const ContainmentOptions& options = {});

}  // namespace rar

#endif  // RAR_RELEVANCE_LTR_DEPENDENT_H_
