// Classical query containment (no access limitations).
//
// CQ containment via the Chandra–Merlin homomorphism criterion: Q1 ⊑ Q2 iff
// Q2 maps homomorphically into the canonical database of Q1. UCQ/PQ
// containment via Sagiv–Yannakakis: each disjunct of Q1 must be contained
// in the union Q2, i.e. Q2 must hold on the disjunct's canonical database.
//
// Used as (a) a baseline the access-limited notion is compared against
// (Example 3.2 separates them), and (b) a subroutine of the engines.
#ifndef RAR_QUERY_CONTAINMENT_CLASSIC_H_
#define RAR_QUERY_CONTAINMENT_CLASSIC_H_

#include "query/query.h"
#include "relational/schema.h"

namespace rar {

/// Classical Boolean/k-ary containment of CQs (head tuples must correspond).
bool ClassicallyContained(const ConjunctiveQuery& q1,
                          const ConjunctiveQuery& q2, const Schema& schema);

/// Classical containment of UCQs (Sagiv–Yannakakis).
bool ClassicallyContained(const UnionQuery& q1, const UnionQuery& q2,
                          const Schema& schema);

/// Classical equivalence of UCQs.
inline bool ClassicallyEquivalent(const UnionQuery& q1, const UnionQuery& q2,
                                  const Schema& schema) {
  return ClassicallyContained(q1, q2, schema) &&
         ClassicallyContained(q2, q1, schema);
}

}  // namespace rar

#endif  // RAR_QUERY_CONTAINMENT_CLASSIC_H_
