#include "query/eval.h"

#include <algorithm>

namespace rar {

namespace {


// Backtracking homomorphism search. Atoms are picked dynamically: the next
// atom is the unmatched one with the most bound terms (ties broken by fewer
// candidate facts), which keeps the search index-driven.
class HomSearch {
 public:
  HomSearch(const ConjunctiveQuery& cq, const ConfigView& conf)
      : cq_(cq), conf_(conf), assignment_(cq.num_vars()),
        assigned_(cq.num_vars(), false), matched_(cq.num_atoms(), false) {
    // Atom relations are fixed and the view is immutable for the search's
    // duration, so the per-atom fact sequences are fetched once instead of
    // per recursion node (FactsOf is a virtual call + segment-list copy).
    atom_facts_.reserve(cq.num_atoms());
    for (const Atom& atom : cq.atoms) {
      atom_facts_.push_back(conf.FactsOf(atom.relation));
    }
  }

  bool Run(const std::function<bool(const std::vector<Value>&)>& fn) {
    return Rec(fn);
  }

 private:
  int CountBound(const Atom& atom) const {
    int bound = 0;
    for (const Term& t : atom.terms) {
      if (t.is_const() || assigned_[t.var]) ++bound;
    }
    return bound;
  }


  bool TermBoundValue(const Term& t, Value* out) const {
    if (t.is_const()) {
      *out = t.constant;
      return true;
    }
    if (assigned_[t.var]) {
      *out = assignment_[t.var];
      return true;
    }
    return false;
  }

  bool Rec(const std::function<bool(const std::vector<Value>&)>& fn) {
    // Pick the next unmatched atom, most-bound-first.
    int best = -1;
    int best_bound = -1;
    for (int i = 0; i < cq_.num_atoms(); ++i) {
      if (matched_[i]) continue;
      int bound = CountBound(cq_.atoms[i]);
      if (bound > best_bound) {
        best_bound = bound;
        best = i;
      }
    }
    if (best < 0) {
      // All atoms matched; variables not occurring in any atom (possible in
      // degenerate queries) are left unassigned — reject those queries via
      // Validate, not here. Report the assignment.
      return fn(assignment_);
    }

    const Atom& atom = cq_.atoms[best];
    matched_[best] = true;

    // Candidate selection: index on the first bound position if any. Both
    // sequences read through the view (base segments, then delta).
    const FactSeq& facts = atom_facts_[best];
    IndexSeq narrowed;
    bool have_narrowed = false;
    Value bound_value;
    for (int pos = 0; pos < atom.arity(); ++pos) {
      if (TermBoundValue(atom.terms[pos], &bound_value)) {
        narrowed = conf_.FactsWith(atom.relation, pos, bound_value);
        have_narrowed = true;
        break;
      }
    }

    auto try_fact = [&](const Fact& fact) -> bool {
      // Unify atom terms against the fact, recording newly bound vars.
      std::vector<VarId> newly_bound;
      bool ok = true;
      for (int pos = 0; pos < atom.arity() && ok; ++pos) {
        const Term& t = atom.terms[pos];
        if (t.is_const()) {
          ok = (t.constant == fact.values[pos]);
        } else if (assigned_[t.var]) {
          ok = (assignment_[t.var] == fact.values[pos]);
        } else {
          assignment_[t.var] = fact.values[pos];
          assigned_[t.var] = true;
          newly_bound.push_back(t.var);
        }
      }
      bool stop = false;
      if (ok) stop = Rec(fn);
      for (VarId v : newly_bound) assigned_[v] = false;
      return stop;
    };

    bool stop = false;
    if (have_narrowed) {
      for (size_t idx : narrowed) {
        if (try_fact(facts[idx])) {
          stop = true;
          break;
        }
      }
    } else {
      for (const Fact& fact : facts) {
        if (try_fact(fact)) {
          stop = true;
          break;
        }
      }
    }
    matched_[best] = false;
    return stop;
  }

  const ConjunctiveQuery& cq_;
  const ConfigView& conf_;
  std::vector<FactSeq> atom_facts_;  ///< FactsOf(atom.relation), per atom
  std::vector<Value> assignment_;
  std::vector<bool> assigned_;
  std::vector<bool> matched_;
};

}  // namespace

bool ForEachHomomorphism(
    const ConjunctiveQuery& cq, const ConfigView& conf,
    const std::function<bool(const std::vector<Value>&)>& fn) {
  HomSearch search(cq, conf);
  return search.Run(fn);
}

bool EvalBool(const ConjunctiveQuery& cq, const ConfigView& conf) {
  return ForEachHomomorphism(cq, conf,
                             [](const std::vector<Value>&) { return true; });
}

bool EvalBool(const UnionQuery& uq, const ConfigView& conf) {
  for (const ConjunctiveQuery& d : uq.disjuncts) {
    if (EvalBool(d, conf)) return true;
  }
  return false;
}

bool FindHomomorphism(const ConjunctiveQuery& cq, const ConfigView& conf,
                      std::vector<Value>* assignment) {
  bool found = ForEachHomomorphism(cq, conf,
                                   [&](const std::vector<Value>& a) {
                                     *assignment = a;
                                     return true;
                                   });
  return found;
}

bool EvalBoolDelta(const UnionQuery& uq, const ConfigView& conf,
                   const Fact& new_fact) {
  for (const ConjunctiveQuery& d : uq.disjuncts) {
    for (int i = 0; i < d.num_atoms(); ++i) {
      const Atom& atom = d.atoms[i];
      if (atom.relation != new_fact.relation) continue;
      // Unify the atom against the new fact.
      std::vector<std::optional<Value>> binding(d.num_vars());
      bool ok = true;
      for (int pos = 0; pos < atom.arity() && ok; ++pos) {
        const Term& t = atom.terms[pos];
        if (t.is_const()) {
          ok = (t.constant == new_fact.values[pos]);
        } else if (binding[t.var].has_value()) {
          ok = (*binding[t.var] == new_fact.values[pos]);
        } else {
          binding[t.var] = new_fact.values[pos];
        }
      }
      if (!ok) continue;
      // Residual query: substitute the unifier and drop the pinned atom
      // (it is witnessed by new_fact; the rest may still use it via conf).
      ConjunctiveQuery residual = Specialize(d, binding);
      residual.atoms.erase(residual.atoms.begin() + i);
      residual.head.clear();
      if (EvalBool(residual, conf)) return true;
    }
  }
  return false;
}

std::set<std::vector<Value>> CertainAnswers(const UnionQuery& uq,
                                            const ConfigView& conf) {
  std::set<std::vector<Value>> answers;
  for (const ConjunctiveQuery& d : uq.disjuncts) {
    ForEachHomomorphism(d, conf, [&](const std::vector<Value>& a) {
      std::vector<Value> head;
      head.reserve(d.head.size());
      for (VarId v : d.head) head.push_back(a[v]);
      answers.insert(std::move(head));
      return false;  // keep enumerating
    });
  }
  return answers;
}

}  // namespace rar
