// Conjunctive and positive queries (Section 2, "Queries").
//
// CQs are conjunctions of atoms over variables and constants; positive
// queries (PQs) add arbitrary nesting of ∧ and ∨ (no negation, no universal
// quantification). Following the paper we focus on Boolean queries; heads
// are supported for the Prop 2.2 reduction from k-ary to Boolean relevance.
//
// Variables are indices into a per-query variable table with inferred
// abstract domains; the paper requires shared variables to be used at
// positions of a single domain, which `Validate` enforces.
#ifndef RAR_QUERY_QUERY_H_
#define RAR_QUERY_QUERY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "relational/configuration.h"
#include "relational/schema.h"
#include "relational/value.h"
#include "util/status.h"

namespace rar {

/// Dense id of a variable within one query's variable table.
using VarId = uint32_t;

/// \brief One argument of an atom: a variable or a constant.
struct Term {
  enum class Kind : uint8_t { kVar, kConst };

  Kind kind = Kind::kVar;
  VarId var = 0;       ///< valid when kind == kVar
  Value constant;      ///< valid when kind == kConst

  static Term MakeVar(VarId v) {
    Term t;
    t.kind = Kind::kVar;
    t.var = v;
    return t;
  }
  static Term MakeConst(Value c) {
    Term t;
    t.kind = Kind::kConst;
    t.constant = c;
    return t;
  }

  bool is_var() const { return kind == Kind::kVar; }
  bool is_const() const { return kind == Kind::kConst; }

  bool operator==(const Term& o) const {
    if (kind != o.kind) return false;
    return is_var() ? var == o.var : constant == o.constant;
  }
};

/// \brief A relational atom R(t1, ..., tk).
struct Atom {
  RelationId relation = kInvalidId;
  std::vector<Term> terms;

  int arity() const { return static_cast<int>(terms.size()); }
  bool operator==(const Atom& o) const {
    return relation == o.relation && terms == o.terms;
  }
};

/// \brief A conjunctive query: head variables + a conjunction of atoms.
///
/// A plain struct by design: the Section 3 reductions and the hardness
/// encoders build and rewrite queries aggressively, so fields are public
/// and invariants are checked by `Validate`.
struct ConjunctiveQuery {
  std::vector<std::string> var_names;
  /// Inferred domain per variable (filled by Validate / InferDomains).
  std::vector<DomainId> var_domains;
  std::vector<VarId> head;  ///< empty for Boolean queries
  std::vector<Atom> atoms;

  int num_vars() const { return static_cast<int>(var_names.size()); }
  int num_atoms() const { return static_cast<int>(atoms.size()); }
  bool IsBoolean() const { return head.empty(); }

  /// Adds a variable, returning its id. Domain may be kInvalidId (inferred
  /// later by Validate).
  VarId AddVar(std::string name, DomainId domain = kInvalidId) {
    var_names.push_back(std::move(name));
    var_domains.push_back(domain);
    return static_cast<VarId>(var_names.size() - 1);
  }

  /// Checks arities, head variables, and domain consistency (each variable
  /// used at positions of a single abstract domain), and fills in inferred
  /// variable domains. Constants are not domain-checked: their domain
  /// memberships are contextual (see QueryConstants).
  Status Validate(const Schema& schema);

  /// True when `var` occurs in some atom.
  bool VarOccurs(VarId var) const;

  /// Renders "Q(X) :- R(X, Y), S(Y, c)" against a schema.
  std::string ToString(const Schema& schema) const;
};

/// \brief A union of conjunctive queries (each disjunct has its own
/// variable table). The DNF form every engine consumes.
struct UnionQuery {
  std::vector<ConjunctiveQuery> disjuncts;

  bool IsBoolean() const;
  Status Validate(const Schema& schema);
  std::string ToString(const Schema& schema) const;
};

/// \brief A positive existential query: an ∧/∨ tree over atoms.
///
/// All variables are implicitly existentially quantified (the paper's PQs
/// are Boolean existential-positive formulas; ∃ commutes with ∨, so keeping
/// quantifiers implicit loses no generality for Boolean queries).
struct PositiveQuery {
  enum class NodeType : uint8_t { kAtom, kAnd, kOr };

  struct Node {
    NodeType type = NodeType::kAtom;
    Atom atom;                  ///< valid when type == kAtom
    std::vector<int> children;  ///< valid for kAnd / kOr
  };

  std::vector<std::string> var_names;
  std::vector<DomainId> var_domains;
  std::vector<Node> nodes;
  int root = -1;

  VarId AddVar(std::string name, DomainId domain = kInvalidId) {
    var_names.push_back(std::move(name));
    var_domains.push_back(domain);
    return static_cast<VarId>(var_names.size() - 1);
  }
  int AddAtomNode(Atom atom);
  int AddAndNode(std::vector<int> children);
  int AddOrNode(std::vector<int> children);

  Status Validate(const Schema& schema);
  std::string ToString(const Schema& schema) const;

  /// Wraps a CQ as a PQ (single ∧ node).
  static PositiveQuery FromCQ(const ConjunctiveQuery& cq);
};

/// Converts a positive query to disjunctive normal form. Exponential in the
/// worst case — this is the real source of the CQ-vs-PQ complexity gap in
/// Table 1, so the blowup is inherent, not incidental.
Result<UnionQuery> ToDnf(const PositiveQuery& pq, const Schema& schema);

/// The constants appearing in a query, typed by the domains of the
/// positions where they occur. The paper assumes these are present in the
/// configuration; engines seed them via this helper.
std::vector<TypedValue> QueryConstants(const ConjunctiveQuery& cq,
                                       const Schema& schema);
std::vector<TypedValue> QueryConstants(const UnionQuery& uq,
                                       const Schema& schema);

/// \brief The canonical ("frozen") database of a CQ: one fact per atom with
/// each variable replaced by a dedicated labelled null.
struct FrozenQuery {
  Configuration facts;             ///< frozen atoms (over the given schema)
  std::vector<Value> var_to_null;  ///< null chosen for each variable
};
FrozenQuery FreezeQuery(const ConjunctiveQuery& cq, const Schema& schema,
                        NullFactory* nulls);

/// Specializes a CQ by substituting values for some of its variables
/// (entries may be disengaged to leave a variable symbolic). Substituted
/// values may be labelled nulls — they become constant terms that only
/// match themselves, which is exactly the frozen-query semantics.
ConjunctiveQuery Specialize(const ConjunctiveQuery& cq,
                            const std::vector<std::optional<Value>>& binding);

/// Applies an assignment (variable -> value) to the atoms of a CQ,
/// producing ground facts. Every variable must be assigned.
std::vector<Fact> GroundAtoms(const ConjunctiveQuery& cq,
                              const std::vector<Value>& assignment);
/// Grounds a subset of atoms (indices into cq.atoms).
std::vector<Fact> GroundAtoms(const ConjunctiveQuery& cq,
                              const std::vector<Value>& assignment,
                              const std::vector<int>& atom_indices);

}  // namespace rar

#endif  // RAR_QUERY_QUERY_H_
