#include "query/containment_classic.h"

#include "query/eval.h"

namespace rar {

namespace {

// Checks D ⊑ q2 for a single CQ disjunct D against a UCQ q2: freeze D and
// evaluate q2 on the canonical database, requiring head correspondence.
bool DisjunctContained(const ConjunctiveQuery& d, const UnionQuery& q2,
                       const Schema& schema) {
  NullFactory nulls;
  FrozenQuery frozen = FreezeQuery(d, schema, &nulls);

  // Head tuple of the canonical database.
  std::vector<Value> d_head;
  d_head.reserve(d.head.size());
  for (VarId v : d.head) d_head.push_back(frozen.var_to_null[v]);

  for (const ConjunctiveQuery& e : q2.disjuncts) {
    bool found = ForEachHomomorphism(
        e, frozen.facts, [&](const std::vector<Value>& a) {
          for (size_t i = 0; i < e.head.size(); ++i) {
            if (a[e.head[i]] != d_head[i]) return false;  // keep searching
          }
          return true;  // head-compatible homomorphism found
        });
    if (found) return true;
  }
  return false;
}

}  // namespace

bool ClassicallyContained(const ConjunctiveQuery& q1,
                          const ConjunctiveQuery& q2, const Schema& schema) {
  UnionQuery u2;
  u2.disjuncts.push_back(q2);
  return DisjunctContained(q1, u2, schema);
}

bool ClassicallyContained(const UnionQuery& q1, const UnionQuery& q2,
                          const Schema& schema) {
  for (const ConjunctiveQuery& d : q1.disjuncts) {
    if (!DisjunctContained(d, q2, schema)) return false;
  }
  return true;
}

}  // namespace rar
