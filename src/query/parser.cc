#include "query/parser.h"

#include <cctype>
#include <string>
#include <unordered_map>

namespace rar {

namespace {

struct Token {
  enum class Type { kIdent, kQuoted, kNumber, kLParen, kRParen, kComma,
                    kAmp, kPipe, kEnd };
  Type type = Type::kEnd;
  std::string text;
  size_t offset = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<Token> Next() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(
                                      text_[pos_]))) {
      ++pos_;
    }
    Token tok;
    tok.offset = pos_;
    if (pos_ >= text_.size()) {
      tok.type = Token::Type::kEnd;
      return tok;
    }
    char c = text_[pos_];
    switch (c) {
      case '(': ++pos_; tok.type = Token::Type::kLParen; return tok;
      case ')': ++pos_; tok.type = Token::Type::kRParen; return tok;
      case ',': ++pos_; tok.type = Token::Type::kComma; return tok;
      case '&': ++pos_; tok.type = Token::Type::kAmp; return tok;
      case '|': ++pos_; tok.type = Token::Type::kPipe; return tok;
      case '\'': {
        ++pos_;
        size_t start = pos_;
        while (pos_ < text_.size() && text_[pos_] != '\'') ++pos_;
        if (pos_ >= text_.size()) {
          return Status::ParseError("unterminated quoted constant at offset " +
                                    std::to_string(start));
        }
        tok.type = Token::Type::kQuoted;
        tok.text = std::string(text_.substr(start, pos_ - start));
        ++pos_;  // closing quote
        return tok;
      }
      default:
        break;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
      size_t start = pos_;
      if (c == '-') ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == start + (c == '-' ? 1u : 0u)) {
        return Status::ParseError("stray '-' at offset " +
                                  std::to_string(start));
      }
      tok.type = Token::Type::kNumber;
      tok.text = std::string(text_.substr(start, pos_ - start));
      return tok;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      tok.type = Token::Type::kIdent;
      tok.text = std::string(text_.substr(start, pos_ - start));
      return tok;
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' at offset " + std::to_string(pos_));
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

bool IsVariableSpelling(const std::string& s) {
  return !s.empty() && (std::isupper(static_cast<unsigned char>(s[0])) ||
                        s[0] == '_');
}

class Parser {
 public:
  Parser(const Schema& schema, std::string_view text)
      : schema_(schema), lexer_(text) {}

  Result<PositiveQuery> Parse() {
    RAR_RETURN_NOT_OK(Advance());
    RAR_ASSIGN_OR_RETURN(int root, ParseOr());
    if (current_.type != Token::Type::kEnd) {
      return Status::ParseError("trailing input at offset " +
                                std::to_string(current_.offset));
    }
    pq_.root = root;
    RAR_RETURN_NOT_OK(pq_.Validate(schema_));
    return std::move(pq_);
  }

 private:
  Status Advance() {
    RAR_ASSIGN_OR_RETURN(current_, lexer_.Next());
    return Status::OK();
  }

  Result<int> ParseOr() {
    RAR_ASSIGN_OR_RETURN(int first, ParseAnd());
    std::vector<int> children{first};
    while (current_.type == Token::Type::kPipe) {
      RAR_RETURN_NOT_OK(Advance());
      RAR_ASSIGN_OR_RETURN(int next, ParseAnd());
      children.push_back(next);
    }
    if (children.size() == 1) return children[0];
    return pq_.AddOrNode(std::move(children));
  }

  Result<int> ParseAnd() {
    RAR_ASSIGN_OR_RETURN(int first, ParsePrimary());
    std::vector<int> children{first};
    while (current_.type == Token::Type::kAmp) {
      RAR_RETURN_NOT_OK(Advance());
      RAR_ASSIGN_OR_RETURN(int next, ParsePrimary());
      children.push_back(next);
    }
    if (children.size() == 1) return children[0];
    return pq_.AddAndNode(std::move(children));
  }

  Result<int> ParsePrimary() {
    if (current_.type == Token::Type::kLParen) {
      RAR_RETURN_NOT_OK(Advance());
      RAR_ASSIGN_OR_RETURN(int inner, ParseOr());
      if (current_.type != Token::Type::kRParen) {
        return Status::ParseError("expected ')' at offset " +
                                  std::to_string(current_.offset));
      }
      RAR_RETURN_NOT_OK(Advance());
      return inner;
    }
    return ParseAtom();
  }

  Result<int> ParseAtom() {
    if (current_.type != Token::Type::kIdent) {
      return Status::ParseError("expected relation name at offset " +
                                std::to_string(current_.offset));
    }
    std::string rel_name = current_.text;
    RelationId rel = schema_.FindRelation(rel_name);
    if (rel == kInvalidId) {
      return Status::NotFound("relation not in schema: " + rel_name);
    }
    RAR_RETURN_NOT_OK(Advance());
    if (current_.type != Token::Type::kLParen) {
      return Status::ParseError("expected '(' after relation " + rel_name);
    }
    RAR_RETURN_NOT_OK(Advance());
    Atom atom;
    atom.relation = rel;
    if (current_.type != Token::Type::kRParen) {
      while (true) {
        RAR_ASSIGN_OR_RETURN(Term term, ParseTerm());
        atom.terms.push_back(term);
        if (current_.type == Token::Type::kComma) {
          RAR_RETURN_NOT_OK(Advance());
          continue;
        }
        break;
      }
    }
    if (current_.type != Token::Type::kRParen) {
      return Status::ParseError("expected ')' closing atom " + rel_name);
    }
    RAR_RETURN_NOT_OK(Advance());
    return pq_.AddAtomNode(std::move(atom));
  }

  Result<Term> ParseTerm() {
    switch (current_.type) {
      case Token::Type::kIdent: {
        std::string name = current_.text;
        RAR_RETURN_NOT_OK(Advance());
        if (IsVariableSpelling(name)) {
          auto it = vars_.find(name);
          VarId v;
          if (it == vars_.end()) {
            v = pq_.AddVar(name);
            vars_.emplace(name, v);
          } else {
            v = it->second;
          }
          return Term::MakeVar(v);
        }
        return Term::MakeConst(schema_.InternConstant(name));
      }
      case Token::Type::kNumber:
      case Token::Type::kQuoted: {
        Value c = schema_.InternConstant(current_.text);
        RAR_RETURN_NOT_OK(Advance());
        return Term::MakeConst(c);
      }
      default:
        return Status::ParseError("expected a term at offset " +
                                  std::to_string(current_.offset));
    }
  }

  const Schema& schema_;
  Lexer lexer_;
  Token current_;
  PositiveQuery pq_;
  std::unordered_map<std::string, VarId> vars_;
};

}  // namespace

Result<PositiveQuery> ParsePQ(const Schema& schema, std::string_view text) {
  Parser parser(schema, text);
  return parser.Parse();
}

Result<ConjunctiveQuery> ParseCQ(const Schema& schema, std::string_view text) {
  RAR_ASSIGN_OR_RETURN(PositiveQuery pq, ParsePQ(schema, text));
  for (const PositiveQuery::Node& n : pq.nodes) {
    if (n.type == PositiveQuery::NodeType::kOr) {
      return Status::ParseError("'|' is not allowed in a conjunctive query");
    }
  }
  ConjunctiveQuery cq;
  cq.var_names = pq.var_names;
  cq.var_domains = pq.var_domains;
  for (const PositiveQuery::Node& n : pq.nodes) {
    if (n.type == PositiveQuery::NodeType::kAtom) {
      cq.atoms.push_back(n.atom);
    }
  }
  RAR_RETURN_NOT_OK(cq.Validate(schema));
  return cq;
}

Result<UnionQuery> ParseUCQ(const Schema& schema, std::string_view text) {
  RAR_ASSIGN_OR_RETURN(PositiveQuery pq, ParsePQ(schema, text));
  return ToDnf(pq, schema);
}

}  // namespace rar
