// Relation footprints: the set of relations a relevance check reads.
//
// A Boolean relevance check for query Q and an access over relation R
// evaluates Q against configurations that extend the current one with
// response tuples over R — so the facts it can observe are exactly those
// of the relations of Q plus R. That set is the check's *footprint*. The
// engine keys cached-verdict validity on the footprint's per-relation
// version sub-vector (see relational/version.h): growth of any relation
// outside the footprint cannot change the verdict, so the cached entry
// stays valid.
//
// Long-term relevance additionally reads the *typed active domain* (both
// LTR deciders enumerate Adom values when building canonical assignments
// and reachability closures), which grows with facts of every relation —
// the footprint therefore carries an `adom_sensitive` flag and the engine
// appends the active-domain version to LTR stamps.
#ifndef RAR_QUERY_FOOTPRINT_H_
#define RAR_QUERY_FOOTPRINT_H_

#include <string>
#include <vector>

#include "query/query.h"
#include "relational/configuration.h"
#include "relational/version.h"

namespace rar {

/// \brief A sorted, deduplicated set of relations a computation depends
/// on, plus whether it also depends on the full typed active domain.
struct RelationFootprint {
  std::vector<RelationId> relations;  ///< sorted, unique
  /// True when the computation also reads the typed active domain (LTR
  /// deciders, reachability fixpoints); such results must be revalidated
  /// whenever Adom grows, no matter which relation grew it.
  bool adom_sensitive = false;
  /// Refinement of `adom_sensitive`: when non-empty (sorted, unique), the
  /// computation reads only these domains' slices of the active domain, and
  /// stamps carry one per-domain version each instead of the global Adom
  /// version — growth of a domain outside the set invalidates nothing.
  /// Empty means "all domains" (the conservative pre-split behaviour).
  std::vector<DomainId> adom_domains;

  bool Contains(RelationId rel) const;

  /// Inserts a relation, keeping `relations` sorted and unique.
  void Add(RelationId rel);

  /// This footprint extended with `rel` (the accessed relation).
  RelationFootprint WithRelation(RelationId rel) const;

  /// The relations mentioned by any disjunct of `query`.
  static RelationFootprint Of(const UnionQuery& query);

  /// The sub-vector of `versions` this footprint selects: one entry per
  /// footprint relation (in `relations` order), plus the active-domain
  /// version when `adom_sensitive`. Cached results stamped with this stay
  /// valid exactly while every selected component is unchanged.
  VersionStamp StampFrom(const VersionVector& versions) const;

  std::string ToString(const Schema& schema) const;
};

}  // namespace rar

#endif  // RAR_QUERY_FOOTPRINT_H_
