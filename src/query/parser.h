// A small text syntax for queries, used by tests, examples and fixtures.
//
// Grammar (Prolog-flavoured):
//
//   pq      := or
//   or      := and ('|' and)*
//   and     := primary ('&' primary)*
//   primary := atom | '(' pq ')'
//   atom    := RELNAME '(' term (',' term)* ')'      // 0-ary: RELNAME '()'
//   term    := VARIABLE | CONSTANT
//
// Identifiers starting with an uppercase letter or '_' are variables;
// identifiers starting with a lowercase letter, numerals, and single-quoted
// strings are constants ('30yr', illinois, 0, 1). Relation names are looked
// up in the schema verbatim (so relations may start with any letter).
//
// `ParseCQ` accepts the same syntax restricted to '&' only.
#ifndef RAR_QUERY_PARSER_H_
#define RAR_QUERY_PARSER_H_

#include <string_view>

#include "query/query.h"
#include "relational/schema.h"
#include "util/status.h"

namespace rar {

/// Parses a Boolean positive query. Constants are interned into the schema.
Result<PositiveQuery> ParsePQ(const Schema& schema, std::string_view text);

/// Parses a Boolean conjunctive query (rejects '|').
Result<ConjunctiveQuery> ParseCQ(const Schema& schema, std::string_view text);

/// Parses a Boolean UCQ: the PQ syntax, converted to DNF.
Result<UnionQuery> ParseUCQ(const Schema& schema, std::string_view text);

}  // namespace rar

#endif  // RAR_QUERY_PARSER_H_
