#include "query/structure.h"

#include <unordered_map>

namespace rar {

namespace {

// Union-find over atom indices.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    for (int i = 0; i < n; ++i) parent_[i] = i;
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

}  // namespace

std::vector<std::vector<int>> SubgoalComponents(const ConjunctiveQuery& cq) {
  const int n = cq.num_atoms();
  UnionFind uf(n);
  std::unordered_map<VarId, int> first_atom_with_var;
  for (int i = 0; i < n; ++i) {
    for (const Term& t : cq.atoms[i].terms) {
      if (!t.is_var()) continue;
      auto [it, inserted] = first_atom_with_var.emplace(t.var, i);
      if (!inserted) uf.Union(i, it->second);
    }
  }
  // Components ordered by their smallest atom index, members increasing.
  std::unordered_map<int, int> root_to_group;
  std::vector<std::vector<int>> out;
  for (int i = 0; i < n; ++i) {
    int root = uf.Find(i);
    auto [it, inserted] = root_to_group.emplace(root, static_cast<int>(out.size()));
    if (inserted) out.emplace_back();
    out[it->second].push_back(i);
  }
  return out;
}

bool IsConnected(const ConjunctiveQuery& cq) {
  return SubgoalComponents(cq).size() == 1;
}

ConjunctiveQuery SubqueryOf(const ConjunctiveQuery& cq,
                            const std::vector<int>& atom_indices) {
  ConjunctiveQuery sub;
  std::unordered_map<VarId, VarId> remap;
  for (int idx : atom_indices) {
    Atom atom = cq.atoms[idx];
    for (Term& t : atom.terms) {
      if (!t.is_var()) continue;
      auto it = remap.find(t.var);
      if (it == remap.end()) {
        VarId nv = sub.AddVar(cq.var_names[t.var], cq.var_domains[t.var]);
        remap.emplace(t.var, nv);
        t.var = nv;
      } else {
        t.var = it->second;
      }
    }
    sub.atoms.push_back(std::move(atom));
  }
  return sub;
}

int RelationOccurrences(const ConjunctiveQuery& cq, RelationId relation) {
  int count = 0;
  for (const Atom& atom : cq.atoms) {
    if (atom.relation == relation) ++count;
  }
  return count;
}

int MaxAtomArity(const ConjunctiveQuery& cq) {
  int max_arity = 0;
  for (const Atom& atom : cq.atoms) {
    if (atom.arity() > max_arity) max_arity = atom.arity();
  }
  return max_arity;
}

}  // namespace rar
