// Structural query utilities: variable-sharing graph, connected components,
// subquery extraction, relation occurrence counts.
//
// Section 4's single-occurrence fast path (Prop 4.3) reasons about the
// connected components of the subgoal graph G(Q): vertices are atoms, with
// an edge when two atoms share a variable. Theorem 6.1 requires connected
// queries. These helpers implement that vocabulary once.
#ifndef RAR_QUERY_STRUCTURE_H_
#define RAR_QUERY_STRUCTURE_H_

#include <vector>

#include "query/query.h"

namespace rar {

/// Connected components of the subgoal graph of `cq` (atoms sharing a
/// variable are connected). Returns groups of atom indices; singleton
/// ground atoms form their own components.
std::vector<std::vector<int>> SubgoalComponents(const ConjunctiveQuery& cq);

/// True when the subgoal graph is connected (and the query is non-empty).
bool IsConnected(const ConjunctiveQuery& cq);

/// Extracts the subquery on the given atoms (variables re-indexed, Boolean
/// head). The input query must have been validated.
ConjunctiveQuery SubqueryOf(const ConjunctiveQuery& cq,
                            const std::vector<int>& atom_indices);

/// Number of atoms of `cq` over `relation`.
int RelationOccurrences(const ConjunctiveQuery& cq, RelationId relation);

/// The maximum relation arity used by the query.
int MaxAtomArity(const ConjunctiveQuery& cq);

}  // namespace rar

#endif  // RAR_QUERY_STRUCTURE_H_
