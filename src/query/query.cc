#include "query/query.h"

#include <functional>
#include <unordered_map>
#include <unordered_set>

namespace rar {

Status ConjunctiveQuery::Validate(const Schema& schema) {
  if (var_domains.size() != var_names.size()) {
    var_domains.assign(var_names.size(), kInvalidId);
  }
  for (VarId h : head) {
    if (h >= var_names.size()) {
      return Status::InvalidArgument("head variable out of range");
    }
  }
  for (const Atom& atom : atoms) {
    if (atom.relation >= schema.num_relations()) {
      return Status::NotFound("atom references unknown relation");
    }
    const Relation& rel = schema.relation(atom.relation);
    if (atom.arity() != rel.arity()) {
      return Status::InvalidArgument("atom arity mismatch for relation " +
                                     rel.name);
    }
    for (int pos = 0; pos < atom.arity(); ++pos) {
      const Term& t = atom.terms[pos];
      if (!t.is_var()) continue;
      if (t.var >= var_names.size()) {
        return Status::InvalidArgument("atom variable out of range");
      }
      DomainId dom = rel.attributes[pos].domain;
      if (var_domains[t.var] == kInvalidId) {
        var_domains[t.var] = dom;
      } else if (var_domains[t.var] != dom) {
        return Status::InvalidArgument(
            "variable " + var_names[t.var] +
            " used at positions of two different abstract domains (" +
            schema.domain_name(var_domains[t.var]) + " vs " +
            schema.domain_name(dom) + ")");
      }
    }
  }
  for (VarId h : head) {
    if (!VarOccurs(h)) {
      return Status::InvalidArgument("head variable " + var_names[h] +
                                     " does not occur in the body (unsafe)");
    }
  }
  return Status::OK();
}

bool ConjunctiveQuery::VarOccurs(VarId var) const {
  for (const Atom& atom : atoms) {
    for (const Term& t : atom.terms) {
      if (t.is_var() && t.var == var) return true;
    }
  }
  return false;
}

namespace {
std::string TermToString(const Term& t, const ConjunctiveQuery* cq,
                         const std::vector<std::string>* var_names,
                         const Schema& schema) {
  if (t.is_const()) return schema.ValueToString(t.constant);
  if (cq != nullptr) return cq->var_names[t.var];
  return (*var_names)[t.var];
}

std::string AtomToString(const Atom& atom,
                         const std::vector<std::string>& var_names,
                         const Schema& schema) {
  std::string out = schema.relation(atom.relation).name;
  out += "(";
  for (int i = 0; i < atom.arity(); ++i) {
    if (i > 0) out += ", ";
    out += TermToString(atom.terms[i], nullptr, &var_names, schema);
  }
  out += ")";
  return out;
}
}  // namespace

std::string ConjunctiveQuery::ToString(const Schema& schema) const {
  std::string out = "Q(";
  for (size_t i = 0; i < head.size(); ++i) {
    if (i > 0) out += ", ";
    out += var_names[head[i]];
  }
  out += ") :- ";
  for (int i = 0; i < num_atoms(); ++i) {
    if (i > 0) out += ", ";
    out += AtomToString(atoms[i], var_names, schema);
  }
  if (atoms.empty()) out += "true";
  return out;
}

bool UnionQuery::IsBoolean() const {
  for (const ConjunctiveQuery& d : disjuncts) {
    if (!d.IsBoolean()) return false;
  }
  return true;
}

Status UnionQuery::Validate(const Schema& schema) {
  if (disjuncts.empty()) {
    return Status::InvalidArgument("union query has no disjuncts");
  }
  size_t arity = disjuncts[0].head.size();
  for (ConjunctiveQuery& d : disjuncts) {
    RAR_RETURN_NOT_OK(d.Validate(schema));
    if (d.head.size() != arity) {
      return Status::InvalidArgument("disjuncts disagree on head arity");
    }
  }
  return Status::OK();
}

std::string UnionQuery::ToString(const Schema& schema) const {
  std::string out;
  for (size_t i = 0; i < disjuncts.size(); ++i) {
    if (i > 0) out += "\n  UNION ";
    out += disjuncts[i].ToString(schema);
  }
  return out;
}

int PositiveQuery::AddAtomNode(Atom atom) {
  Node n;
  n.type = NodeType::kAtom;
  n.atom = std::move(atom);
  nodes.push_back(std::move(n));
  return static_cast<int>(nodes.size() - 1);
}

int PositiveQuery::AddAndNode(std::vector<int> children) {
  Node n;
  n.type = NodeType::kAnd;
  n.children = std::move(children);
  nodes.push_back(std::move(n));
  return static_cast<int>(nodes.size() - 1);
}

int PositiveQuery::AddOrNode(std::vector<int> children) {
  Node n;
  n.type = NodeType::kOr;
  n.children = std::move(children);
  nodes.push_back(std::move(n));
  return static_cast<int>(nodes.size() - 1);
}

Status PositiveQuery::Validate(const Schema& schema) {
  if (root < 0 || root >= static_cast<int>(nodes.size())) {
    return Status::InvalidArgument("positive query has no root");
  }
  if (var_domains.size() != var_names.size()) {
    var_domains.assign(var_names.size(), kInvalidId);
  }
  for (const Node& n : nodes) {
    if (n.type != NodeType::kAtom) {
      if (n.children.empty()) {
        return Status::InvalidArgument("empty connective node");
      }
      for (int c : n.children) {
        if (c < 0 || c >= static_cast<int>(nodes.size())) {
          return Status::InvalidArgument("child index out of range");
        }
      }
      continue;
    }
    const Atom& atom = n.atom;
    if (atom.relation >= schema.num_relations()) {
      return Status::NotFound("atom references unknown relation");
    }
    const Relation& rel = schema.relation(atom.relation);
    if (atom.arity() != rel.arity()) {
      return Status::InvalidArgument("atom arity mismatch for relation " +
                                     rel.name);
    }
    for (int pos = 0; pos < atom.arity(); ++pos) {
      const Term& t = atom.terms[pos];
      if (!t.is_var()) continue;
      if (t.var >= var_names.size()) {
        return Status::InvalidArgument("atom variable out of range");
      }
      DomainId dom = rel.attributes[pos].domain;
      if (var_domains[t.var] == kInvalidId) {
        var_domains[t.var] = dom;
      } else if (var_domains[t.var] != dom) {
        return Status::InvalidArgument("variable " + var_names[t.var] +
                                       " used at two different domains");
      }
    }
  }
  return Status::OK();
}

std::string PositiveQuery::ToString(const Schema& schema) const {
  std::function<std::string(int)> render = [&](int idx) -> std::string {
    const Node& n = nodes[idx];
    switch (n.type) {
      case NodeType::kAtom:
        return AtomToString(n.atom, var_names, schema);
      case NodeType::kAnd:
      case NodeType::kOr: {
        std::string sep = n.type == NodeType::kAnd ? " & " : " | ";
        std::string out = "(";
        for (size_t i = 0; i < n.children.size(); ++i) {
          if (i > 0) out += sep;
          out += render(n.children[i]);
        }
        out += ")";
        return out;
      }
    }
    return "?";
  };
  return root >= 0 ? render(root) : "<empty>";
}

PositiveQuery PositiveQuery::FromCQ(const ConjunctiveQuery& cq) {
  PositiveQuery pq;
  pq.var_names = cq.var_names;
  pq.var_domains = cq.var_domains;
  std::vector<int> children;
  for (const Atom& atom : cq.atoms) {
    children.push_back(pq.AddAtomNode(atom));
  }
  pq.root = pq.AddAndNode(std::move(children));
  return pq;
}

Result<UnionQuery> ToDnf(const PositiveQuery& pq, const Schema& schema) {
  if (pq.root < 0) {
    return Status::InvalidArgument("positive query has no root");
  }
  // Bottom-up: each node yields a list of atom-lists (its DNF disjuncts).
  std::function<std::vector<std::vector<Atom>>(int)> rec =
      [&](int idx) -> std::vector<std::vector<Atom>> {
    const PositiveQuery::Node& n = pq.nodes[idx];
    switch (n.type) {
      case PositiveQuery::NodeType::kAtom:
        return {{n.atom}};
      case PositiveQuery::NodeType::kOr: {
        std::vector<std::vector<Atom>> out;
        for (int c : n.children) {
          auto sub = rec(c);
          out.insert(out.end(), sub.begin(), sub.end());
        }
        return out;
      }
      case PositiveQuery::NodeType::kAnd: {
        std::vector<std::vector<Atom>> out = {{}};
        for (int c : n.children) {
          auto sub = rec(c);
          std::vector<std::vector<Atom>> next;
          next.reserve(out.size() * sub.size());
          for (const auto& left : out) {
            for (const auto& right : sub) {
              std::vector<Atom> merged = left;
              merged.insert(merged.end(), right.begin(), right.end());
              next.push_back(std::move(merged));
            }
          }
          out = std::move(next);
        }
        return out;
      }
    }
    return {};
  };

  UnionQuery uq;
  for (std::vector<Atom>& disjunct_atoms : rec(pq.root)) {
    ConjunctiveQuery cq;
    // Re-index only the variables that occur in this disjunct.
    std::unordered_map<VarId, VarId> remap;
    for (Atom& atom : disjunct_atoms) {
      for (Term& t : atom.terms) {
        if (!t.is_var()) continue;
        auto it = remap.find(t.var);
        if (it == remap.end()) {
          VarId nv = cq.AddVar(pq.var_names[t.var], pq.var_domains[t.var]);
          remap.emplace(t.var, nv);
          t.var = nv;
        } else {
          t.var = it->second;
        }
      }
      cq.atoms.push_back(std::move(atom));
    }
    RAR_RETURN_NOT_OK(cq.Validate(schema));
    uq.disjuncts.push_back(std::move(cq));
  }
  if (uq.disjuncts.empty()) {
    return Status::InvalidArgument("DNF produced no disjuncts");
  }
  return uq;
}

std::vector<TypedValue> QueryConstants(const ConjunctiveQuery& cq,
                                       const Schema& schema) {
  std::vector<TypedValue> out;
  std::unordered_set<TypedValue, TypedValueHash> seen;
  for (const Atom& atom : cq.atoms) {
    const Relation& rel = schema.relation(atom.relation);
    for (int pos = 0; pos < atom.arity(); ++pos) {
      if (!atom.terms[pos].is_const()) continue;
      TypedValue tv{atom.terms[pos].constant, rel.attributes[pos].domain};
      if (seen.insert(tv).second) out.push_back(tv);
    }
  }
  return out;
}

std::vector<TypedValue> QueryConstants(const UnionQuery& uq,
                                       const Schema& schema) {
  std::vector<TypedValue> out;
  std::unordered_set<TypedValue, TypedValueHash> seen;
  for (const ConjunctiveQuery& d : uq.disjuncts) {
    for (const TypedValue& tv : QueryConstants(d, schema)) {
      if (seen.insert(tv).second) out.push_back(tv);
    }
  }
  return out;
}

FrozenQuery FreezeQuery(const ConjunctiveQuery& cq, const Schema& schema,
                        NullFactory* nulls) {
  FrozenQuery frozen;
  frozen.facts = Configuration(&schema);
  frozen.var_to_null.reserve(cq.num_vars());
  for (int v = 0; v < cq.num_vars(); ++v) {
    frozen.var_to_null.push_back(nulls->Fresh());
  }
  for (const Fact& f : GroundAtoms(cq, frozen.var_to_null)) {
    frozen.facts.AddFact(f);
  }
  return frozen;
}

ConjunctiveQuery Specialize(const ConjunctiveQuery& cq,
                            const std::vector<std::optional<Value>>& binding) {
  ConjunctiveQuery out = cq;
  for (Atom& atom : out.atoms) {
    for (Term& t : atom.terms) {
      if (t.is_var() && t.var < binding.size() && binding[t.var].has_value()) {
        t = Term::MakeConst(*binding[t.var]);
      }
    }
  }
  return out;
}

std::vector<Fact> GroundAtoms(const ConjunctiveQuery& cq,
                              const std::vector<Value>& assignment) {
  std::vector<int> all(cq.num_atoms());
  for (int i = 0; i < cq.num_atoms(); ++i) all[i] = i;
  return GroundAtoms(cq, assignment, all);
}

std::vector<Fact> GroundAtoms(const ConjunctiveQuery& cq,
                              const std::vector<Value>& assignment,
                              const std::vector<int>& atom_indices) {
  std::vector<Fact> out;
  out.reserve(atom_indices.size());
  for (int idx : atom_indices) {
    const Atom& atom = cq.atoms[idx];
    Fact f;
    f.relation = atom.relation;
    f.values.reserve(atom.arity());
    for (const Term& t : atom.terms) {
      f.values.push_back(t.is_const() ? t.constant : assignment[t.var]);
    }
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace rar
