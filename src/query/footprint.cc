#include "query/footprint.h"

#include <algorithm>

namespace rar {

bool RelationFootprint::Contains(RelationId rel) const {
  return std::binary_search(relations.begin(), relations.end(), rel);
}

void RelationFootprint::Add(RelationId rel) {
  auto it = std::lower_bound(relations.begin(), relations.end(), rel);
  if (it == relations.end() || *it != rel) relations.insert(it, rel);
}

RelationFootprint RelationFootprint::WithRelation(RelationId rel) const {
  RelationFootprint out = *this;
  out.Add(rel);
  return out;
}

RelationFootprint RelationFootprint::Of(const UnionQuery& query) {
  RelationFootprint out;
  for (const ConjunctiveQuery& d : query.disjuncts) {
    for (const Atom& atom : d.atoms) out.Add(atom.relation);
  }
  return out;
}

VersionStamp RelationFootprint::StampFrom(const VersionVector& versions) const {
  VersionStamp stamp;
  stamp.reserve(relations.size() +
                (adom_sensitive
                     ? std::max<size_t>(adom_domains.size(), 1)
                     : 0));
  for (RelationId rel : relations) stamp.push_back(versions.relation(rel));
  if (adom_sensitive) {
    if (adom_domains.empty()) {
      stamp.push_back(versions.adom);
    } else {
      // Domain-refined: one component per tracked domain, so growth of a
      // domain outside the set leaves the stamp valid.
      for (DomainId d : adom_domains) {
        stamp.push_back(versions.adom_domain(d));
      }
    }
  }
  return stamp;
}

std::string RelationFootprint::ToString(const Schema& schema) const {
  std::string out = "{";
  for (size_t i = 0; i < relations.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.relation(relations[i]).name;
  }
  if (adom_sensitive) {
    out += relations.empty() ? "+adom" : ", +adom";
    if (!adom_domains.empty()) {
      out += "(";
      for (size_t i = 0; i < adom_domains.size(); ++i) {
        if (i > 0) out += ",";
        out += schema.domain_name(adom_domains[i]);
      }
      out += ")";
    }
  }
  out += "}";
  return out;
}

}  // namespace rar
