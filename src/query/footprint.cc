#include "query/footprint.h"

#include <algorithm>

namespace rar {

bool RelationFootprint::Contains(RelationId rel) const {
  return std::binary_search(relations.begin(), relations.end(), rel);
}

void RelationFootprint::Add(RelationId rel) {
  auto it = std::lower_bound(relations.begin(), relations.end(), rel);
  if (it == relations.end() || *it != rel) relations.insert(it, rel);
}

RelationFootprint RelationFootprint::WithRelation(RelationId rel) const {
  RelationFootprint out = *this;
  out.Add(rel);
  return out;
}

RelationFootprint RelationFootprint::Of(const UnionQuery& query) {
  RelationFootprint out;
  for (const ConjunctiveQuery& d : query.disjuncts) {
    for (const Atom& atom : d.atoms) out.Add(atom.relation);
  }
  return out;
}

VersionStamp RelationFootprint::StampFrom(const VersionVector& versions) const {
  VersionStamp stamp;
  stamp.reserve(relations.size() + (adom_sensitive ? 1 : 0));
  for (RelationId rel : relations) stamp.push_back(versions.relation(rel));
  if (adom_sensitive) stamp.push_back(versions.adom);
  return stamp;
}

std::string RelationFootprint::ToString(const Schema& schema) const {
  std::string out = "{";
  for (size_t i = 0; i < relations.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.relation(relations[i]).name;
  }
  if (adom_sensitive) out += relations.empty() ? "+adom" : ", +adom";
  out += "}";
  return out;
}

}  // namespace rar
