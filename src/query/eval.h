// Query evaluation over configuration views (the homomorphism engine).
//
// Boolean CQ evaluation is a search for a homomorphism from the query atoms
// into the configuration's facts — NP-complete in combined complexity,
// polynomial for a fixed query (the paper's data-complexity claims lean on
// this). The engine uses greedy most-bound-first atom ordering with
// index-backed candidate lookup.
//
// Evaluation reads through the ConfigView interface, so it is oblivious to
// whether the configuration is materialized (`Configuration`) or a base-
// plus-delta snapshot (`OverlayConfiguration`) — the deciders build their
// truncation configurations as overlays and evaluate in place.
//
// Certain answers: positive queries are monotone and `Conf` itself is the
// least instance consistent with `Conf`, so a Boolean positive query is
// certain at `Conf` iff it evaluates to true on `Conf`, and the certain
// answers of a k-ary query are exactly its answers on `Conf` (Section 2).
#ifndef RAR_QUERY_EVAL_H_
#define RAR_QUERY_EVAL_H_

#include <functional>
#include <set>
#include <vector>

#include "query/query.h"
#include "relational/config_view.h"

namespace rar {

/// Decides whether a Boolean CQ holds on a configuration view.
bool EvalBool(const ConjunctiveQuery& cq, const ConfigView& conf);

/// Decides whether a Boolean UCQ holds (some disjunct holds).
bool EvalBool(const UnionQuery& uq, const ConfigView& conf);

/// Finds one homomorphism (full variable assignment) of `cq` into `conf`;
/// returns false when none exists.
bool FindHomomorphism(const ConjunctiveQuery& cq, const ConfigView& conf,
                      std::vector<Value>* assignment);

/// Enumerates homomorphisms of `cq` into `conf`, invoking `fn` for each
/// full assignment. Enumeration stops (returning true) when `fn` returns
/// true; returns false after exhausting all homomorphisms.
bool ForEachHomomorphism(const ConjunctiveQuery& cq, const ConfigView& conf,
                         const std::function<bool(const std::vector<Value>&)>& fn);

/// The certain answers of a (possibly k-ary) UCQ at a configuration:
/// the set of head tuples produced by some homomorphism of some disjunct.
std::set<std::vector<Value>> CertainAnswers(const UnionQuery& uq,
                                            const ConfigView& conf);

/// Delta evaluation for monotone re-checking: decides whether a Boolean UCQ
/// has a homomorphism into `conf` that *uses* `new_fact` (which must
/// already be in `conf`). When the query was false before `new_fact` was
/// added, this decides whether it is true now — at the cost of pinning one
/// atom instead of re-running the full search. The witness searches call
/// this after every candidate fact they add.
bool EvalBoolDelta(const UnionQuery& uq, const ConfigView& conf,
                   const Fact& new_fact);

/// True iff the Boolean query is certain at `conf` (Section 2).
inline bool IsCertain(const UnionQuery& uq, const ConfigView& conf) {
  return EvalBool(uq, conf);
}
inline bool IsCertain(const ConjunctiveQuery& cq, const ConfigView& conf) {
  return EvalBool(cq, conf);
}

}  // namespace rar

#endif  // RAR_QUERY_EVAL_H_
