// A deep-Web source simulator and a relevance-guided query mediator.
//
// The paper's model assumes sources are *sound but not exact*: an access
// may return any subset of the matching tuples, possibly a different one
// each time. `DeepWebSource` implements exactly that against a hidden
// instance. `Mediator` runs the dynamic query-answering loop the paper
// motivates: at each configuration it performs only accesses that are
// relevant (immediately, or long-term), versus the exhaustive Li-style
// crawl that performs every well-formed access — the comparison the
// Section 7 discussion draws ("no check is made for the relevance of an
// access").
//
// Both loops run on a `RelevanceEngine`: candidate enumeration and
// performed-access dedup come from the engine's AccessFrontier, verdicts
// from its decision cache, and the evolving configuration lives inside the
// engine (responses are absorbed via ApplyResponse).
#ifndef RAR_SIM_DEEP_WEB_H_
#define RAR_SIM_DEEP_WEB_H_

#include <string>
#include <vector>

#include "access/access_method.h"
#include "engine/engine.h"
#include "relational/configuration.h"
#include "relevance/relevance.h"
#include "util/rng.h"
#include "util/status.h"

namespace rar {

/// \brief Sound response behaviour of a simulated source.
struct ResponsePolicy {
  enum class Kind {
    kExact,        ///< return every matching tuple
    kCapped,       ///< return at most `cap` matching tuples
    kRandomSubset  ///< keep each matching tuple with probability keep_prob
  };
  Kind kind = Kind::kExact;
  int cap = 1;
  double keep_prob = 0.5;
  /// Simulated round-trip latency per access, in microseconds. Real
  /// deep-web sources answer over a network; the pipelined mediator
  /// exists to hide exactly this (plus the apply) behind the next round's
  /// relevance checks.
  int latency_us = 0;
};

/// \brief A simulated deep-Web source: hidden instance + access methods.
class DeepWebSource {
 public:
  DeepWebSource(const Schema* schema, const AccessMethodSet* acs,
                Configuration hidden, uint64_t seed = 7)
      : schema_(schema), acs_(acs), hidden_(std::move(hidden)), rng_(seed) {}

  /// Executes a well-formed access and returns a sound response.
  Result<std::vector<Fact>> Execute(const Configuration& conf,
                                    const Access& access,
                                    const ResponsePolicy& policy = {});

  /// Engine-backed overload: well-formedness is validated against the
  /// engine's live configuration under its locks (safe while responses
  /// are applied concurrently — Adom is monotone, so a pass cannot be
  /// revoked).
  Result<std::vector<Fact>> Execute(const RelevanceEngine& engine,
                                    const Access& access,
                                    const ResponsePolicy& policy = {});

  long accesses_served() const { return accesses_served_; }
  const Configuration& hidden() const { return hidden_; }

 private:
  /// Shared tail of both Execute overloads (access already validated).
  Result<std::vector<Fact>> ExecuteValidated(const Access& access,
                                             const ResponsePolicy& policy);

  const Schema* schema_;
  const AccessMethodSet* acs_;
  Configuration hidden_;
  Rng rng_;
  long accesses_served_ = 0;
};

/// \brief Outcome of a mediation run.
struct MediationOutcome {
  bool answered = false;          ///< the query became certain (Boolean) /
                                  ///< the stream drained (k-ary)
  long accesses_performed = 0;    ///< accesses actually executed
  long accesses_considered = 0;   ///< candidate accesses examined
  long relevance_checks = 0;      ///< IR/LTR decisions made
  int rounds = 0;
  Configuration final_conf;
  std::vector<std::string> log;   ///< human-readable trace
  EngineStats engine;             ///< engine counters for the run
  /// Latency histograms for the run (decider/apply/wave/batch/queue-wait
  /// plus the simulated source round-trips the mediator loop timed).
  ObsSnapshot obs;
  /// For k-ary stream runs: the certain-answer tuples at the final
  /// configuration (fresh-constant bindings excluded).
  std::vector<std::vector<Value>> certain_answers;
};

/// \brief Strategy options for the mediator.
struct MediatorOptions {
  bool use_immediate = true;   ///< prefer IR accesses
  bool use_long_term = true;   ///< fall back to LTR accesses
  /// When the LTR decider is out of its paper-backed scope (non-Boolean
  /// dependent access), treat the access as relevant (conservative).
  bool conservative_on_unknown = true;
  int max_rounds = 64;
  bool verbose_log = false;
  /// Pipeline the mediation loop: access *i* is executed against the
  /// source and its response applied on a background worker while
  /// candidates for access *i+1* are being checked (AnswerBoolean), resp.
  /// while access *i+1* is executed (ExhaustiveCrawl). Sound because
  /// responses are monotone and the engine's footprint-stamped cache
  /// revalidates exactly the verdicts the landed response can affect; the
  /// performed-access dedup makes the loop never re-execute an in-flight
  /// access. Checks may run one response behind, which can cost an extra
  /// (sound) access but never a wrong answer.
  bool pipelined = false;
  ResponsePolicy policy;
  /// Engine construction knobs for the run; `engine.relevance` holds the
  /// decider options (single source of truth).
  EngineOptions engine;
};

/// \brief Dynamic query answering driven by relevance analysis.
class Mediator {
 public:
  Mediator(const Schema& schema, const AccessMethodSet& acs)
      : schema_(schema), acs_(acs) {}

  /// Runs the relevance-guided loop for a Boolean query.
  Result<MediationOutcome> AnswerBoolean(const UnionQuery& query,
                                         const Configuration& initial,
                                         DeepWebSource* source,
                                         const MediatorOptions& options = {});

  /// Baseline: performs every well-formed access (no relevance filter)
  /// until the query is certain or a fixpoint is reached.
  Result<MediationOutcome> ExhaustiveCrawl(const UnionQuery& query,
                                           const Configuration& initial,
                                           DeepWebSource* source,
                                           const MediatorOptions& options = {});

  /// Stream-driven crawl for a *k-ary* (or Boolean) query: registers a
  /// standing stream (src/stream/) and drains it — each round performs the
  /// witness access of some relevant binding, the applied response
  /// incrementally recomputes only the bindings it invalidated, and the
  /// loop ends when no binding is relevant anymore (every remaining
  /// candidate access is provably useless for every head tuple). The
  /// certain-answer set accumulated by the stream is returned in
  /// `MediationOutcome::certain_answers`. Serialized only: responses must
  /// land before the next poll (`options.pipelined` is ignored).
  Result<MediationOutcome> AnswerKAry(const UnionQuery& query,
                                      const Configuration& initial,
                                      DeepWebSource* source,
                                      const MediatorOptions& options = {});

 private:
  const Schema& schema_;
  const AccessMethodSet& acs_;
};

}  // namespace rar

#endif  // RAR_SIM_DEEP_WEB_H_
