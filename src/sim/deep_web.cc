#include "sim/deep_web.h"

#include <utility>

namespace rar {

Result<std::vector<Fact>> DeepWebSource::Execute(const Configuration& conf,
                                                 const Access& access,
                                                 const ResponsePolicy& policy) {
  RAR_RETURN_NOT_OK(CheckWellFormed(conf, *acs_, access));
  ++accesses_served_;
  const AccessMethod& m = acs_->method(access.method);

  std::vector<Fact> matching;
  for (const Fact& f : hidden_.FactsOf(m.relation)) {
    if (FactMatchesAccess(*acs_, access, f)) matching.push_back(f);
  }
  switch (policy.kind) {
    case ResponsePolicy::Kind::kExact:
      return matching;
    case ResponsePolicy::Kind::kCapped: {
      if (static_cast<int>(matching.size()) > policy.cap) {
        matching.resize(policy.cap);
      }
      return matching;
    }
    case ResponsePolicy::Kind::kRandomSubset: {
      std::vector<Fact> kept;
      for (Fact& f : matching) {
        if (rng_.Chance(policy.keep_prob)) kept.push_back(std::move(f));
      }
      return kept;
    }
  }
  return matching;
}

Result<MediationOutcome> Mediator::AnswerBoolean(
    const UnionQuery& query, const Configuration& initial,
    DeepWebSource* source, const MediatorOptions& options) {
  MediationOutcome outcome;
  RelevanceEngine engine(schema_, acs_, initial, options.engine);
  RAR_ASSIGN_OR_RETURN(QueryId qid, engine.RegisterQuery(query));

  for (outcome.rounds = 0; outcome.rounds < options.max_rounds;
       ++outcome.rounds) {
    if (engine.IsCertain(qid)) {
      outcome.answered = true;
      break;
    }
    // Frontier-ranked candidates: cached-relevant accesses come first, so
    // after a growth round the scheduler retries the accesses most likely
    // to still be relevant before exploring unknowns.
    std::vector<Access> candidates = engine.CandidateAccesses(qid);
    outcome.accesses_considered += static_cast<long>(candidates.size());

    // Pick an immediately relevant access; else a long-term relevant one.
    const Access* chosen = nullptr;
    std::string reason;
    if (options.use_immediate) {
      for (const Access& a : candidates) {
        ++outcome.relevance_checks;
        CheckOutcome ir = engine.CheckImmediate(qid, a);
        if (ir.ok() && ir.relevant) {
          chosen = &a;
          reason = "IR";
          break;
        }
      }
    }
    if (chosen == nullptr && options.use_long_term) {
      for (const Access& a : candidates) {
        ++outcome.relevance_checks;
        CheckOutcome ltr = engine.CheckLongTerm(qid, a);
        bool relevant =
            ltr.ok() ? ltr.relevant : options.conservative_on_unknown;
        if (relevant) {
          chosen = &a;
          reason = ltr.ok() ? "LTR" : "unknown->conservative";
          break;
        }
      }
    }
    if (chosen == nullptr) break;  // nothing relevant: give up

    RAR_ASSIGN_OR_RETURN(
        std::vector<Fact> response,
        source->Execute(engine.config(), *chosen, options.policy));
    ++outcome.accesses_performed;
    if (options.verbose_log) {
      outcome.log.push_back(reason + ": " +
                            chosen->ToString(schema_, acs_) + " -> " +
                            std::to_string(response.size()) + " tuple(s)");
    }
    RAR_RETURN_NOT_OK(engine.ApplyResponse(*chosen, response).status());
  }
  outcome.final_conf = engine.SnapshotConfig();
  outcome.engine = engine.stats();
  return outcome;
}

Result<MediationOutcome> Mediator::ExhaustiveCrawl(
    const UnionQuery& query, const Configuration& initial,
    DeepWebSource* source, const MediatorOptions& options) {
  MediationOutcome outcome;
  RelevanceEngine engine(schema_, acs_, initial, options.engine);
  RAR_ASSIGN_OR_RETURN(QueryId qid, engine.RegisterQuery(query));

  for (outcome.rounds = 0; outcome.rounds < options.max_rounds;
       ++outcome.rounds) {
    if (engine.IsCertain(qid)) {
      outcome.answered = true;
      break;
    }
    // The crawl performs every pending access, relevance unchecked.
    std::vector<Access> candidates = engine.PendingAccesses();
    if (candidates.empty()) break;  // crawl fixpoint
    outcome.accesses_considered += static_cast<long>(candidates.size());
    for (const Access& a : candidates) {
      RAR_ASSIGN_OR_RETURN(
          std::vector<Fact> response,
          source->Execute(engine.config(), a, options.policy));
      ++outcome.accesses_performed;
      RAR_RETURN_NOT_OK(engine.ApplyResponse(a, response).status());
      if (engine.IsCertain(qid)) {
        outcome.answered = true;
        break;
      }
    }
    if (outcome.answered) break;
  }
  outcome.final_conf = engine.SnapshotConfig();
  outcome.engine = engine.stats();
  return outcome;
}

}  // namespace rar
