#include "sim/deep_web.h"

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

#include "stream/registry.h"

namespace rar {

namespace {

/// One persistent background worker holding at most one pipeline stage in
/// flight (execute-and-apply for the mediator, apply-only for the crawl).
/// A long-lived thread with a condition-variable handoff rather than a
/// thread per task: the stages being hidden are tens of microseconds to
/// milliseconds, and thread spawn would eat the overlap. Joins and stops
/// the worker on destruction, so early returns never leak it.
class AsyncPerformer {
 public:
  ~AsyncPerformer() {
    (void)Join();
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

  /// Joins any previous task (discarding its status — callers that care
  /// must Join first), then runs `task` for `access` on the worker.
  void Submit(Access access, std::function<Status()> task) {
    (void)Join();
    EnsureThread();
    {
      std::lock_guard<std::mutex> lock(mu_);
      task_ = std::move(task);
      has_task_ = true;
      done_ = false;
    }
    cv_.notify_all();
    access_ = std::move(access);
    in_flight_ = true;
  }

  /// Waits for the in-flight task (if any) and returns its status.
  Status Join() {
    if (!in_flight_) return Status::OK();
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return done_; });
    in_flight_ = false;
    return status_;
  }

  bool in_flight() const { return in_flight_; }
  bool IsInFlight(const Access& a) const {
    return in_flight_ && a == access_;
  }

 private:
  void EnsureThread() {
    if (thread_.joinable()) return;
    thread_ = std::thread([this]() {
      std::unique_lock<std::mutex> lock(mu_);
      while (true) {
        cv_.wait(lock, [&] { return has_task_ || stop_; });
        if (stop_) return;
        std::function<Status()> task = std::move(task_);
        has_task_ = false;
        lock.unlock();
        Status status = task();
        lock.lock();
        status_ = std::move(status);
        done_ = true;
        cv_.notify_all();
      }
    });
  }

  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::function<Status()> task_;
  Status status_;
  bool has_task_ = false;
  bool done_ = true;
  bool stop_ = false;
  /// Main-thread view of the submitted access (only the submitting thread
  /// reads these, between Submit and Join).
  Access access_;
  bool in_flight_ = false;
};

}  // namespace

Result<std::vector<Fact>> DeepWebSource::Execute(const Configuration& conf,
                                                 const Access& access,
                                                 const ResponsePolicy& policy) {
  RAR_RETURN_NOT_OK(CheckWellFormed(conf, *acs_, access));
  return ExecuteValidated(access, policy);
}

Result<std::vector<Fact>> DeepWebSource::Execute(const RelevanceEngine& engine,
                                                 const Access& access,
                                                 const ResponsePolicy& policy) {
  RAR_RETURN_NOT_OK(engine.ValidateAccess(access));
  return ExecuteValidated(access, policy);
}

Result<std::vector<Fact>> DeepWebSource::ExecuteValidated(
    const Access& access, const ResponsePolicy& policy) {
  if (policy.latency_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(policy.latency_us));
  }
  ++accesses_served_;
  const AccessMethod& m = acs_->method(access.method);

  std::vector<Fact> matching;
  for (const Fact& f : hidden_.FactsOf(m.relation)) {
    if (FactMatchesAccess(*acs_, access, f)) matching.push_back(f);
  }
  switch (policy.kind) {
    case ResponsePolicy::Kind::kExact:
      return matching;
    case ResponsePolicy::Kind::kCapped: {
      if (static_cast<int>(matching.size()) > policy.cap) {
        matching.resize(policy.cap);
      }
      return matching;
    }
    case ResponsePolicy::Kind::kRandomSubset: {
      std::vector<Fact> kept;
      for (Fact& f : matching) {
        if (rng_.Chance(policy.keep_prob)) kept.push_back(std::move(f));
      }
      return kept;
    }
  }
  return matching;
}

Result<MediationOutcome> Mediator::AnswerBoolean(
    const UnionQuery& query, const Configuration& initial,
    DeepWebSource* source, const MediatorOptions& options) {
  MediationOutcome outcome;
  RelevanceEngine engine(schema_, acs_, initial, options.engine);
  RAR_ASSIGN_OR_RETURN(QueryId qid, engine.RegisterQuery(query));

  // At most one execute-and-apply stage is in flight; never used in the
  // serialized mode.
  AsyncPerformer performer;

  for (outcome.rounds = 0; outcome.rounds < options.max_rounds;
       ++outcome.rounds) {
    if (engine.IsCertain(qid)) {
      outcome.answered = true;
      break;
    }
    // Frontier-ranked candidates: cached-relevant accesses come first, so
    // after a growth round the scheduler retries the accesses most likely
    // to still be relevant before exploring unknowns. In pipelined mode
    // this scan overlaps with access *i* being executed and applied in
    // the background; verdicts may be one response stale, which can cost
    // an extra (sound) access but never a wrong answer.
    std::vector<Access> candidates = engine.CandidateAccesses(qid);
    outcome.accesses_considered += static_cast<long>(candidates.size());

    // Pick an immediately relevant access; else a long-term relevant one.
    const Access* chosen = nullptr;
    std::string reason;
    if (options.use_immediate) {
      for (const Access& a : candidates) {
        if (performer.IsInFlight(a)) continue;
        ++outcome.relevance_checks;
        CheckOutcome ir = engine.CheckImmediate(qid, a);
        if (ir.ok() && ir.relevant) {
          chosen = &a;
          reason = "IR";
          break;
        }
      }
    }
    if (chosen == nullptr && options.use_long_term) {
      for (const Access& a : candidates) {
        if (performer.IsInFlight(a)) continue;
        ++outcome.relevance_checks;
        CheckOutcome ltr = engine.CheckLongTerm(qid, a);
        bool relevant =
            ltr.ok() ? ltr.relevant : options.conservative_on_unknown;
        if (relevant) {
          chosen = &a;
          reason = ltr.ok() ? "LTR" : "unknown->conservative";
          break;
        }
      }
    }

    const bool had_in_flight = performer.in_flight();
    RAR_RETURN_NOT_OK(performer.Join());
    if (chosen == nullptr) {
      // Nothing relevant at the scanned state. If a response landed during
      // the scan, the refreshed state may offer new candidates — rescan;
      // otherwise the loop is at a fixpoint: give up.
      if (had_in_flight) continue;
      break;
    }
    if (engine.WasPerformed(*chosen)) continue;  // landed during the scan

    ++outcome.accesses_performed;
    if (options.pipelined) {
      if (options.verbose_log) {
        outcome.log.push_back(reason + ": " +
                              chosen->ToString(schema_, acs_) + " (async)");
      }
      performer.Submit(
          *chosen, [source, &engine, access = *chosen,
                    policy = options.policy]() -> Status {
            const uint64_t src_t0 = MonotonicNs();
            RAR_ASSIGN_OR_RETURN(std::vector<Fact> response,
                                 source->Execute(engine, access, policy));
            engine.obs().source_ns.Record(MonotonicNs() - src_t0);
            return engine.ApplyResponse(access, response).status();
          });
    } else {
      const uint64_t src_t0 = MonotonicNs();
      RAR_ASSIGN_OR_RETURN(std::vector<Fact> response,
                           source->Execute(engine, *chosen, options.policy));
      engine.obs().source_ns.Record(MonotonicNs() - src_t0);
      if (options.verbose_log) {
        outcome.log.push_back(reason + ": " +
                              chosen->ToString(schema_, acs_) + " -> " +
                              std::to_string(response.size()) + " tuple(s)");
      }
      RAR_RETURN_NOT_OK(engine.ApplyResponse(*chosen, response).status());
    }
  }
  RAR_RETURN_NOT_OK(performer.Join());
  if (!outcome.answered && engine.IsCertain(qid)) outcome.answered = true;
  outcome.final_conf = engine.SnapshotConfig();
  outcome.engine = engine.stats();
  outcome.obs = engine.obs().Snapshot();
  return outcome;
}

Result<MediationOutcome> Mediator::ExhaustiveCrawl(
    const UnionQuery& query, const Configuration& initial,
    DeepWebSource* source, const MediatorOptions& options) {
  MediationOutcome outcome;
  RelevanceEngine engine(schema_, acs_, initial, options.engine);
  RAR_ASSIGN_OR_RETURN(QueryId qid, engine.RegisterQuery(query));

  AsyncPerformer performer;

  for (outcome.rounds = 0; outcome.rounds < options.max_rounds;
       ++outcome.rounds) {
    if (engine.IsCertain(qid)) {
      outcome.answered = true;
      break;
    }
    // The crawl performs every pending access, relevance unchecked.
    std::vector<Access> candidates = engine.PendingAccesses();
    if (candidates.empty()) {
      // An in-flight response may still extend the frontier.
      if (!performer.in_flight()) break;  // crawl fixpoint
      RAR_RETURN_NOT_OK(performer.Join());
      continue;
    }
    outcome.accesses_considered += static_cast<long>(candidates.size());
    const long performed_before = outcome.accesses_performed;
    for (const Access& a : candidates) {
      if (performer.IsInFlight(a) || engine.WasPerformed(a)) continue;
      // Pipelined: execute access i+1 against the source while response i
      // is still being absorbed, then wait for i before applying i+1.
      const uint64_t src_t0 = MonotonicNs();
      RAR_ASSIGN_OR_RETURN(std::vector<Fact> response,
                           source->Execute(engine, a, options.policy));
      engine.obs().source_ns.Record(MonotonicNs() - src_t0);
      ++outcome.accesses_performed;
      if (options.pipelined) {
        RAR_RETURN_NOT_OK(performer.Join());
        performer.Submit(a, [&engine, access = a,
                             resp = std::move(response)]() -> Status {
          return engine.ApplyResponse(access, resp).status();
        });
      } else {
        RAR_RETURN_NOT_OK(engine.ApplyResponse(a, response).status());
      }
      if (engine.IsCertain(qid)) {
        outcome.answered = true;
        break;
      }
    }
    if (outcome.answered) break;
    if (outcome.accesses_performed == performed_before) {
      // Every candidate was already performed or in flight. Land the
      // in-flight response (it may extend the frontier or settle the
      // query) instead of spinning through rounds; with nothing in flight
      // this is the crawl fixpoint.
      if (!performer.in_flight()) break;
      RAR_RETURN_NOT_OK(performer.Join());
    }
  }
  RAR_RETURN_NOT_OK(performer.Join());
  if (!outcome.answered && engine.IsCertain(qid)) outcome.answered = true;
  outcome.final_conf = engine.SnapshotConfig();
  outcome.engine = engine.stats();
  outcome.obs = engine.obs().Snapshot();
  return outcome;
}

Result<MediationOutcome> Mediator::AnswerKAry(const UnionQuery& query,
                                              const Configuration& initial,
                                              DeepWebSource* source,
                                              const MediatorOptions& options) {
  MediationOutcome outcome;
  RelevanceEngine engine(schema_, acs_, initial, options.engine);
  RelevanceStreamRegistry registry(&engine);
  StreamOptions sopts;
  sopts.use_immediate = options.use_immediate;
  sopts.use_long_term = options.use_long_term;
  sopts.conservative_on_unknown = options.conservative_on_unknown;
  RAR_ASSIGN_OR_RETURN(StreamId sid, registry.Register(query, sopts));

  for (outcome.rounds = 0; outcome.rounds < options.max_rounds;
       ++outcome.rounds) {
    // The standing per-binding state replaces the per-round candidate x
    // binding scan: rounds just drain the relevant set. Each performed
    // access recomputes only the bindings its response invalidated.
    std::vector<BindingView> relevant = registry.RelevantBindings(sid);
    outcome.accesses_considered += static_cast<long>(relevant.size());
    const BindingView* chosen = nullptr;
    for (const BindingView& b : relevant) {
      if (b.has_witness && !engine.WasPerformed(b.witness)) {
        chosen = &b;
        break;
      }
    }
    if (chosen == nullptr) break;  // drained: no binding is relevant

    const uint64_t src_t0 = MonotonicNs();
    RAR_ASSIGN_OR_RETURN(
        std::vector<Fact> response,
        source->Execute(engine, chosen->witness, options.policy));
    engine.obs().source_ns.Record(MonotonicNs() - src_t0);
    if (options.verbose_log) {
      outcome.log.push_back("stream: " +
                            chosen->witness.ToString(schema_, acs_) + " -> " +
                            std::to_string(response.size()) + " tuple(s)");
    }
    RAR_RETURN_NOT_OK(engine.ApplyResponse(chosen->witness, response).status());
    ++outcome.accesses_performed;
  }

  StreamSnapshot snap = registry.Snapshot(sid);
  outcome.answered = !snap.any_relevant;
  for (const BindingView& b : snap.bindings) {
    if (b.certain && !b.has_fresh) outcome.certain_answers.push_back(b.binding);
  }
  outcome.final_conf = engine.SnapshotConfig();
  outcome.engine = engine.stats();
  outcome.obs = engine.obs().Snapshot();
  outcome.relevance_checks = static_cast<long>(outcome.engine.checks());
  return outcome;
}

}  // namespace rar
