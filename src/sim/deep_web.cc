#include "sim/deep_web.h"

#include <utility>

#include "query/eval.h"

namespace rar {

Result<std::vector<Fact>> DeepWebSource::Execute(const Configuration& conf,
                                                 const Access& access,
                                                 const ResponsePolicy& policy) {
  RAR_RETURN_NOT_OK(CheckWellFormed(conf, *acs_, access));
  ++accesses_served_;
  const AccessMethod& m = acs_->method(access.method);

  std::vector<Fact> matching;
  for (const Fact& f : hidden_.FactsOf(m.relation)) {
    if (FactMatchesAccess(*acs_, access, f)) matching.push_back(f);
  }
  switch (policy.kind) {
    case ResponsePolicy::Kind::kExact:
      return matching;
    case ResponsePolicy::Kind::kCapped: {
      if (static_cast<int>(matching.size()) > policy.cap) {
        matching.resize(policy.cap);
      }
      return matching;
    }
    case ResponsePolicy::Kind::kRandomSubset: {
      std::vector<Fact> kept;
      for (Fact& f : matching) {
        if (rng_.Chance(policy.keep_prob)) kept.push_back(std::move(f));
      }
      return kept;
    }
  }
  return matching;
}

std::vector<Access> Mediator::CandidateAccesses(
    const Configuration& conf,
    const std::set<std::pair<AccessMethodId, std::vector<Value>>>& done) {
  std::vector<Access> out;
  for (AccessMethodId mid = 0; mid < acs_.size(); ++mid) {
    const AccessMethod& m = acs_.method(mid);
    const Relation& rel = schema_.relation(m.relation);
    // Enumerate bindings over the typed active domain (for independent
    // methods the mediator also only guesses known values — inventing
    // arbitrary constants is pointless against a real source).
    std::vector<std::vector<Value>> slots;
    bool feasible = true;
    for (int pos : m.input_positions) {
      slots.push_back(conf.AdomOfDomain(rel.attributes[pos].domain));
      if (slots.back().empty()) feasible = false;
    }
    if (!feasible) continue;
    std::vector<int> idx(slots.size(), 0);
    while (true) {
      Access access;
      access.method = mid;
      for (size_t i = 0; i < slots.size(); ++i) {
        access.binding.push_back(slots[i][idx[i]]);
      }
      if (!done.count({mid, access.binding})) out.push_back(access);
      int i = static_cast<int>(slots.size()) - 1;
      while (i >= 0 && ++idx[i] == static_cast<int>(slots[i].size())) {
        idx[i] = 0;
        --i;
      }
      if (i < 0) break;  // free accesses yield exactly one candidate
    }
  }
  return out;
}

Result<MediationOutcome> Mediator::AnswerBoolean(
    const UnionQuery& query, const Configuration& initial,
    DeepWebSource* source, const MediatorOptions& options) {
  MediationOutcome outcome;
  outcome.final_conf = initial;
  RelevanceAnalyzer analyzer(schema_, acs_);
  std::set<std::pair<AccessMethodId, std::vector<Value>>> done;

  for (outcome.rounds = 0; outcome.rounds < options.max_rounds;
       ++outcome.rounds) {
    if (IsCertain(query, outcome.final_conf)) {
      outcome.answered = true;
      return outcome;
    }
    std::vector<Access> candidates =
        CandidateAccesses(outcome.final_conf, done);
    outcome.accesses_considered +=
        static_cast<long>(candidates.size());

    // Pick an immediately relevant access; else a long-term relevant one.
    const Access* chosen = nullptr;
    std::string reason;
    if (options.use_immediate) {
      for (const Access& a : candidates) {
        ++outcome.relevance_checks;
        if (analyzer.Immediate(outcome.final_conf, a, query)) {
          chosen = &a;
          reason = "IR";
          break;
        }
      }
    }
    if (chosen == nullptr && options.use_long_term) {
      for (const Access& a : candidates) {
        ++outcome.relevance_checks;
        Result<bool> ltr =
            analyzer.LongTerm(outcome.final_conf, a, query,
                              options.relevance);
        bool relevant = ltr.ok() ? *ltr : options.conservative_on_unknown;
        if (relevant) {
          chosen = &a;
          reason = ltr.ok() ? "LTR" : "unknown->conservative";
          break;
        }
      }
    }
    if (chosen == nullptr) return outcome;  // nothing relevant: give up

    RAR_ASSIGN_OR_RETURN(
        std::vector<Fact> response,
        source->Execute(outcome.final_conf, *chosen, options.policy));
    done.insert({chosen->method, chosen->binding});
    ++outcome.accesses_performed;
    if (options.verbose_log) {
      outcome.log.push_back(reason + ": " +
                            chosen->ToString(schema_, acs_) + " -> " +
                            std::to_string(response.size()) + " tuple(s)");
    }
    for (const Fact& f : response) outcome.final_conf.AddFact(f);
  }
  return outcome;
}

Result<MediationOutcome> Mediator::ExhaustiveCrawl(
    const UnionQuery& query, const Configuration& initial,
    DeepWebSource* source, const MediatorOptions& options) {
  MediationOutcome outcome;
  outcome.final_conf = initial;
  std::set<std::pair<AccessMethodId, std::vector<Value>>> done;

  for (outcome.rounds = 0; outcome.rounds < options.max_rounds;
       ++outcome.rounds) {
    if (IsCertain(query, outcome.final_conf)) {
      outcome.answered = true;
      return outcome;
    }
    std::vector<Access> candidates =
        CandidateAccesses(outcome.final_conf, done);
    if (candidates.empty()) return outcome;  // crawl fixpoint
    outcome.accesses_considered += static_cast<long>(candidates.size());
    for (const Access& a : candidates) {
      RAR_ASSIGN_OR_RETURN(
          std::vector<Fact> response,
          source->Execute(outcome.final_conf, a, options.policy));
      done.insert({a.method, a.binding});
      ++outcome.accesses_performed;
      for (const Fact& f : response) outcome.final_conf.AddFact(f);
      if (IsCertain(query, outcome.final_conf)) {
        outcome.answered = true;
        return outcome;
      }
    }
  }
  return outcome;
}

}  // namespace rar
