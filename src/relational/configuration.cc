#include "relational/configuration.h"

#include <algorithm>

namespace rar {

Configuration::RelationStore& Configuration::StoreOf(RelationId rel) {
  if (rel >= stores_.size()) stores_.resize(rel + 1);
  return stores_[rel];
}

bool Configuration::AddFact(const Fact& fact) {
  RelationStore& store = StoreOf(fact.relation);
  // Find-before-insert: when the fact (and hence every adom entry it
  // carries) is already present, the call is a pure read — the engine's
  // striped-lock discipline relies on duplicate applications not touching
  // shared structures.
  if (store.fact_set.count(fact) > 0) return false;
  store.fact_set.insert(fact);
  int idx = static_cast<int>(store.facts.size());
  store.facts.push_back(fact);
  num_facts_.fetch_add(1, std::memory_order_relaxed);
  for (int pos = 0; pos < fact.arity(); ++pos) {
    store.index[PosValueKey{pos, fact.values[pos]}].push_back(idx);
    if (schema_ != nullptr) {
      DomainId dom = schema_->relation(fact.relation).attributes[pos].domain;
      TypedValue tv{fact.values[pos], dom};
      if (adom_.count(tv) == 0) {
        adom_.insert(tv);
        adom_by_domain_[dom].push_back(fact.values[pos]);
      }
    }
  }
  return true;
}

Status Configuration::AddFactNamed(
    std::string_view relation,
    const std::vector<std::string>& constant_spellings) {
  if (schema_ == nullptr) {
    return Status::FailedPrecondition("configuration has no schema");
  }
  RelationId rel = schema_->FindRelation(relation);
  if (rel == kInvalidId) {
    return Status::NotFound("relation not in schema: " +
                            std::string(relation));
  }
  if (static_cast<int>(constant_spellings.size()) !=
      schema_->relation(rel).arity()) {
    return Status::InvalidArgument("arity mismatch for " +
                                   std::string(relation));
  }
  std::vector<Value> values;
  values.reserve(constant_spellings.size());
  for (const std::string& s : constant_spellings) {
    values.push_back(schema_->InternConstant(s));
  }
  AddFact(Fact(rel, std::move(values)));
  return Status::OK();
}

void Configuration::AddSeedConstant(Value value, DomainId domain) {
  TypedValue tv{value, domain};
  if (adom_.insert(tv).second) {
    adom_by_domain_[domain].push_back(value);
    seeds_.push_back(tv);
  }
}

IndexSeq Configuration::FactsWith(RelationId rel, int position,
                                  Value v) const {
  if (rel >= stores_.size()) return IndexSeq();
  auto jt = stores_[rel].index.find(PosValueKey{position, v});
  return jt == stores_[rel].index.end() ? IndexSeq() : IndexSeq(jt->second);
}

ValueSeq Configuration::AdomOfDomain(DomainId domain) const {
  auto it = adom_by_domain_.find(domain);
  return it == adom_by_domain_.end() ? ValueSeq() : ValueSeq(it->second);
}

std::vector<TypedValue> Configuration::AdomEntries() const {
  std::vector<TypedValue> out(adom_.begin(), adom_.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Fact> Configuration::Difference(const Configuration& base) const {
  std::vector<Fact> out;
  for (const Fact& f : AllFacts()) {
    if (!base.Contains(f)) out.push_back(f);
  }
  return out;
}

void Configuration::UnionWith(const Configuration& other) {
  for (const Fact& f : other.AllFacts()) AddFact(f);
  for (const TypedValue& tv : other.seeds_) {
    AddSeedConstant(tv.value, tv.domain);
  }
}

void Configuration::UnionWithView(const ConfigView& view) {
  // Facts first: afterwards every adom entry a fact carries is present, so
  // the seed pass registers exactly the entries facts do not explain.
  for (const Fact& f : view.AllFacts()) AddFact(f);
  for (const TypedValue& tv : view.AdomEntries()) {
    AddSeedConstant(tv.value, tv.domain);
  }
}

bool Configuration::IsSubsetOf(const Configuration& other) const {
  for (const Fact& f : AllFacts()) {
    if (!other.Contains(f)) return false;
  }
  for (const TypedValue& tv : seeds_) {
    if (!other.AdomContains(tv.value, tv.domain)) return false;
  }
  return true;
}

std::string Configuration::ToString() const {
  std::string out;
  for (const Fact& f : AllFacts()) {
    if (schema_ != nullptr) {
      out += f.ToString(*schema_);
    } else {
      out += "<fact>";
    }
    out += "\n";
  }
  return out;
}

Configuration MaterializeConfig(const ConfigView& view) {
  Configuration out(view.schema());
  out.ReserveRelations(view.NumRelationsBound());
  out.UnionWithView(view);
  return out;
}

}  // namespace rar
