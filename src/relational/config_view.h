// ConfigView: the read-only interface query evaluation sees.
//
// The paper's deciders never mutate the configuration they are given —
// they evaluate queries over Conf *plus a handful of hypothetical facts*
// (truncation configurations, generic responses, auxiliary production
// facts). Materializing those extensions by copying Conf is O(|Conf|) per
// candidate inside exponential searches; the view interface makes the
// extension O(|Δ|) instead: `Configuration` and `OverlayConfiguration`
// (base view + small delta, see overlay.h) implement the same read
// surface, so the evaluation layer is oblivious to whether it reads a
// materialized store or a base-plus-delta snapshot.
//
// Sequences are *borrowed*: FactSeq / ValueSeq / IndexSeq hold spans into
// the underlying stores (base segments first, then delta segments). They
// stay valid only while the viewed configuration is not mutated; callers
// that grow the configuration mid-iteration must materialize first
// (`ToVector`).
#ifndef RAR_RELATIONAL_CONFIG_VIEW_H_
#define RAR_RELATIONAL_CONFIG_VIEW_H_

#include <cstddef>
#include <cstdlib>
#include <vector>

#include "relational/fact.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace rar {

/// \brief A typed (value, domain) pair — one entry of the active domain.
struct TypedValue {
  Value value;
  DomainId domain = kInvalidId;

  bool operator==(const TypedValue& o) const {
    return value == o.value && domain == o.domain;
  }
  bool operator<(const TypedValue& o) const {
    if (!(value == o.value)) return value < o.value;
    return domain < o.domain;
  }
};

struct TypedValueHash {
  size_t operator()(const TypedValue& tv) const {
    return ValueHash()(tv.value) * 1000003u + tv.domain;
  }
};

/// Maximum base+delta segments a view sequence can carry; bounds overlay
/// nesting depth (each overlay layer adds at most one segment). The
/// engines nest at most three deep (configuration, generic-response
/// overlay, witness-search overlay); the cap leaves headroom.
inline constexpr size_t kMaxViewSegments = 12;

/// \brief A borrowed sequence of T stored in up to kMaxViewSegments
/// contiguous pieces (base store segments followed by delta segments).
template <typename T>
class SegSeq {
 public:
  SegSeq() = default;
  /*implicit*/ SegSeq(const std::vector<T>& v) { Append(v.data(), v.size()); }

  void Append(const T* data, size_t n) {
    if (n == 0) return;
    if (num_segs_ == kMaxViewSegments) std::abort();  // overlay nested too deep
    segs_[num_segs_++] = Segment{data, n};
    size_ += n;
  }
  void Append(const SegSeq& other) {
    for (size_t s = 0; s < other.num_segs_; ++s) {
      Append(other.segs_[s].data, other.segs_[s].size);
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T& operator[](size_t i) const {
    size_t s = 0;
    while (i >= segs_[s].size) i -= segs_[s++].size;
    return segs_[s].data[i];
  }

  std::vector<T> ToVector() const {
    std::vector<T> out;
    out.reserve(size_);
    for (size_t s = 0; s < num_segs_; ++s) {
      out.insert(out.end(), segs_[s].data, segs_[s].data + segs_[s].size);
    }
    return out;
  }

  class const_iterator {
   public:
    const_iterator(const SegSeq* seq, size_t seg, size_t pos)
        : seq_(seq), seg_(seg), pos_(pos) {}
    const T& operator*() const { return seq_->segs_[seg_].data[pos_]; }
    const T* operator->() const { return &**this; }
    const_iterator& operator++() {
      if (++pos_ == seq_->segs_[seg_].size) {  // segments are never empty
        ++seg_;
        pos_ = 0;
      }
      return *this;
    }
    bool operator==(const const_iterator& o) const {
      return seg_ == o.seg_ && pos_ == o.pos_;
    }
    bool operator!=(const const_iterator& o) const { return !(*this == o); }

   private:
    const SegSeq* seq_;
    size_t seg_;
    size_t pos_;
  };
  const_iterator begin() const { return const_iterator(this, 0, 0); }
  const_iterator end() const { return const_iterator(this, num_segs_, 0); }

 private:
  struct Segment {
    const T* data;
    size_t size;
  };
  Segment segs_[kMaxViewSegments];
  size_t num_segs_ = 0;
  size_t size_ = 0;
};

using FactSeq = SegSeq<Fact>;
using ValueSeq = SegSeq<Value>;

/// \brief A borrowed sequence of candidate positions into a FactSeq: each
/// segment carries raw per-store indices plus the offset of that store's
/// facts inside the overall view sequence (a base store's offset is 0; an
/// overlay's delta store starts after every base fact of the relation).
class IndexSeq {
 public:
  IndexSeq() = default;
  /*implicit*/ IndexSeq(const std::vector<int>& v) {
    Append(v.data(), v.size(), 0);
  }

  void Append(const int* data, size_t n, size_t offset) {
    if (n == 0) return;
    if (num_segs_ == kMaxViewSegments) std::abort();  // overlay nested too deep
    segs_[num_segs_++] = Segment{data, n, offset};
    size_ += n;
  }
  void Append(const IndexSeq& other) {
    for (size_t s = 0; s < other.num_segs_; ++s) {
      Append(other.segs_[s].data, other.segs_[s].size, other.segs_[s].offset);
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  size_t operator[](size_t i) const {
    size_t s = 0;
    while (i >= segs_[s].size) i -= segs_[s++].size;
    return static_cast<size_t>(segs_[s].data[i]) + segs_[s].offset;
  }

  class const_iterator {
   public:
    const_iterator(const IndexSeq* seq, size_t seg, size_t pos)
        : seq_(seq), seg_(seg), pos_(pos) {}
    size_t operator*() const {
      const Segment& s = seq_->segs_[seg_];
      return static_cast<size_t>(s.data[pos_]) + s.offset;
    }
    const_iterator& operator++() {
      if (++pos_ == seq_->segs_[seg_].size) {
        ++seg_;
        pos_ = 0;
      }
      return *this;
    }
    bool operator==(const const_iterator& o) const {
      return seg_ == o.seg_ && pos_ == o.pos_;
    }
    bool operator!=(const const_iterator& o) const { return !(*this == o); }

   private:
    const IndexSeq* seq_;
    size_t seg_;
    size_t pos_;
  };
  const_iterator begin() const { return const_iterator(this, 0, 0); }
  const_iterator end() const { return const_iterator(this, num_segs_, 0); }

 private:
  struct Segment {
    const int* data;
    size_t size;
    size_t offset;
  };
  Segment segs_[kMaxViewSegments];
  size_t num_segs_ = 0;
  size_t size_ = 0;
};

/// \brief Read-only interface over a configuration: membership, per-
/// relation fact access, the per-(position, value) candidate index, and
/// the typed active domain. Implemented by `Configuration` (single-segment
/// sequences over its stores) and `OverlayConfiguration` (base view
/// segments followed by delta segments).
class ConfigView {
 public:
  virtual ~ConfigView() = default;

  virtual const Schema* schema() const = 0;

  virtual bool Contains(const Fact& fact) const = 0;

  /// Total fact count across relations.
  virtual size_t NumFacts() const = 0;

  /// Upper bound (exclusive) on relation ids with a store; `FactsOf` of
  /// any id at or beyond it is empty. Lets schema-less callers iterate.
  virtual size_t NumRelationsBound() const = 0;

  /// Fact count of one relation (== FactsOf(rel).size(), without building
  /// the sequence).
  virtual size_t NumFactsOf(RelationId rel) const = 0;

  /// All facts of one relation: base facts in insertion order, then delta
  /// facts in insertion order.
  virtual FactSeq FactsOf(RelationId rel) const = 0;

  /// Positions (into FactsOf(rel)) of facts whose `position`-th value
  /// equals `v`. Empty when none match.
  virtual IndexSeq FactsWith(RelationId rel, int position, Value v) const = 0;

  /// True when (value, domain) is in the typed active domain.
  virtual bool AdomContains(Value value, DomainId domain) const = 0;

  /// Active-domain values of one domain, first-seen order (base first).
  virtual ValueSeq AdomOfDomain(DomainId domain) const = 0;

  /// The full typed active domain, sorted (materialized; used by the
  /// reachability fixpoints which consume it once per call).
  virtual std::vector<TypedValue> AdomEntries() const = 0;

  /// Every fact, relation-major (materialized convenience).
  std::vector<Fact> AllFacts() const {
    std::vector<Fact> out;
    out.reserve(NumFacts());
    for (size_t rel = 0; rel < NumRelationsBound(); ++rel) {
      for (const Fact& f : FactsOf(static_cast<RelationId>(rel))) {
        out.push_back(f);
      }
    }
    return out;
  }
};

}  // namespace rar

#endif  // RAR_RELATIONAL_CONFIG_VIEW_H_
