#include "relational/overlay.h"

#include <algorithm>

namespace rar {

void OverlayConfiguration::Reset() {
  for (RelationId rel : touched_) {
    DeltaStore& s = stores_[rel];
    s.facts.clear();
    s.fact_set.clear();
    // clear() keeps the bucket arrays; per-key vectors are dropped, but
    // they reappear with their keys on the next AddFact of this relation.
    s.index.clear();
  }
  touched_.clear();
  journal_.clear();
  delta_adom_.clear();
  delta_adom_order_.clear();
  for (auto& [dom, values] : delta_adom_by_domain_) values.clear();
}

bool OverlayConfiguration::AddFact(const Fact& fact) {
  if (Contains(fact)) return false;
  DeltaStore& store = StoreOf(fact.relation);
  if (store.facts.empty()) touched_.push_back(fact.relation);
  int idx = static_cast<int>(store.facts.size());
  store.fact_set.insert(fact);
  store.facts.push_back(fact);
  int adom_added = 0;
  const Schema* sch = schema();
  for (int pos = 0; pos < fact.arity(); ++pos) {
    store.index[PosValueKey{pos, fact.values[pos]}].push_back(idx);
    if (sch != nullptr) {
      DomainId dom = sch->relation(fact.relation).attributes[pos].domain;
      if (!AdomContains(fact.values[pos], dom)) {
        TypedValue tv{fact.values[pos], dom};
        delta_adom_.insert(tv);
        delta_adom_by_domain_[dom].push_back(fact.values[pos]);
        delta_adom_order_.push_back(tv);
        ++adom_added;
      }
    }
  }
  journal_.push_back(JournalEntry{fact.relation, adom_added});
  return true;
}

void OverlayConfiguration::AddSeedConstant(Value value, DomainId domain) {
  if (AdomContains(value, domain)) return;
  TypedValue tv{value, domain};
  delta_adom_.insert(tv);
  delta_adom_by_domain_[domain].push_back(value);
  delta_adom_order_.push_back(tv);
}

bool OverlayConfiguration::PopFact() {
  if (journal_.empty()) return false;
  JournalEntry entry = journal_.back();
  journal_.pop_back();
  DeltaStore& store = stores_[entry.rel];
  Fact fact = std::move(store.facts.back());
  store.facts.pop_back();
  for (int pos = 0; pos < fact.arity(); ++pos) {
    auto it = store.index.find(PosValueKey{pos, fact.values[pos]});
    it->second.pop_back();  // the entry this fact pushed (LIFO)
  }
  store.fact_set.erase(fact);
  if (store.facts.empty()) {
    touched_.erase(std::find(touched_.begin(), touched_.end(), entry.rel));
  }
  for (int i = 0; i < entry.adom_added; ++i) {
    TypedValue tv = delta_adom_order_.back();
    delta_adom_order_.pop_back();
    delta_adom_.erase(tv);
    delta_adom_by_domain_[tv.domain].pop_back();
  }
  return true;
}

std::vector<Fact> OverlayConfiguration::DeltaFacts() const {
  std::vector<Fact> out;
  out.reserve(journal_.size());
  for (RelationId rel : touched_) {
    const std::vector<Fact>& facts = stores_[rel].facts;
    out.insert(out.end(), facts.begin(), facts.end());
  }
  return out;
}

bool OverlayConfiguration::Contains(const Fact& fact) const {
  if (fact.relation < stores_.size() &&
      stores_[fact.relation].fact_set.count(fact) > 0) {
    return true;
  }
  return base_->Contains(fact);
}

FactSeq OverlayConfiguration::FactsOf(RelationId rel) const {
  FactSeq seq = base_->FactsOf(rel);
  if (rel < stores_.size()) {
    const std::vector<Fact>& facts = stores_[rel].facts;
    seq.Append(facts.data(), facts.size());
  }
  return seq;
}

IndexSeq OverlayConfiguration::FactsWith(RelationId rel, int position,
                                         Value v) const {
  IndexSeq seq = base_->FactsWith(rel, position, v);
  if (rel < stores_.size()) {
    auto it = stores_[rel].index.find(PosValueKey{position, v});
    if (it != stores_[rel].index.end()) {
      seq.Append(it->second.data(), it->second.size(),
                 base_->NumFactsOf(rel));
    }
  }
  return seq;
}

bool OverlayConfiguration::AdomContains(Value value, DomainId domain) const {
  if (delta_adom_.count(TypedValue{value, domain}) > 0) return true;
  return base_->AdomContains(value, domain);
}

ValueSeq OverlayConfiguration::AdomOfDomain(DomainId domain) const {
  ValueSeq seq = base_->AdomOfDomain(domain);
  auto it = delta_adom_by_domain_.find(domain);
  if (it != delta_adom_by_domain_.end()) {
    seq.Append(it->second.data(), it->second.size());
  }
  return seq;
}

std::vector<TypedValue> OverlayConfiguration::AdomEntries() const {
  std::vector<TypedValue> out = base_->AdomEntries();
  out.insert(out.end(), delta_adom_order_.begin(), delta_adom_order_.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace rar
