// PosValueKey: the (attribute position, value) key of the per-relation
// fact indexes.
//
// Configuration and OverlayConfiguration both index facts by the value
// they carry at each position ("which facts of R have v at position p?" —
// the homomorphism engine's candidate lookup). The stream registry's
// value-gated hit waves reuse the same key shape with the position slot
// reinterpreted as a *head slot*: "which bindings of this stream carry v
// in head slot s?" (see stream/registry.h). One key + hash serves all
// three indexes so the representations cannot drift.
#ifndef RAR_RELATIONAL_POS_VALUE_H_
#define RAR_RELATIONAL_POS_VALUE_H_

#include <cstddef>

#include "relational/value.h"

namespace rar {

/// \brief Key of a per-(position, value) index entry.
struct PosValueKey {
  int position;
  Value value;
  bool operator==(const PosValueKey& o) const {
    return position == o.position && value == o.value;
  }
};

struct PosValueKeyHash {
  size_t operator()(const PosValueKey& k) const {
    return ValueHash()(k.value) * 31u + static_cast<size_t>(k.position);
  }
};

}  // namespace rar

#endif  // RAR_RELATIONAL_POS_VALUE_H_
