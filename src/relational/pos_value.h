// PosValueKey: the (attribute position, value) key of the per-relation
// fact indexes.
//
// Configuration and OverlayConfiguration both index facts by the value
// they carry at each position ("which facts of R have v at position p?" —
// the homomorphism engine's candidate lookup). The stream registry's
// value-gated hit waves reuse the same key shape with the position slot
// reinterpreted as a *head slot*: "which bindings of this stream carry v
// in head slot s?" (see stream/registry.h). One key + hash serves all
// three indexes so the representations cannot drift.
#ifndef RAR_RELATIONAL_POS_VALUE_H_
#define RAR_RELATIONAL_POS_VALUE_H_

#include <cstddef>

#include "relational/value.h"

namespace rar {

/// \brief Key of a per-(position, value) index entry.
struct PosValueKey {
  int position;
  Value value;
  bool operator==(const PosValueKey& o) const {
    return position == o.position && value == o.value;
  }
};

struct PosValueKeyHash {
  size_t operator()(const PosValueKey& k) const {
    return ValueHash()(k.value) * 31u + static_cast<size_t>(k.position);
  }
};

/// \brief Key of a *cross-relation* secondary index entry: (relation,
/// position, value). The stream registry's semijoin chase keeps one flat
/// fact index over every (relation, position) pair its narrowing plans
/// look up (see stream/registry.h), so the key carries the relation
/// explicitly instead of sharding a PosValueKey map per relation.
struct RelPosValueKey {
  uint32_t relation = 0;
  int position = 0;
  Value value;
  bool operator==(const RelPosValueKey& o) const {
    return relation == o.relation && position == o.position &&
           value == o.value;
  }
};

struct RelPosValueKeyHash {
  size_t operator()(const RelPosValueKey& k) const {
    size_t h = ValueHash()(k.value) * 31u + static_cast<size_t>(k.position);
    return h * 31u + static_cast<size_t>(k.relation);
  }
};

}  // namespace rar

#endif  // RAR_RELATIONAL_POS_VALUE_H_
