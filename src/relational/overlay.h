// OverlayConfiguration: a zero-copy base-plus-delta configuration view.
//
// The paper's truncation configurations (Thm 4.2 / Prop 4.3), generic
// responses (Prop 3.5's extension), and auxiliary production facts
// (Section 5's witness chase) are all "Conf plus a handful of facts".
// An overlay holds a borrowed `const ConfigView* base` and a small delta
// (facts + delta typed active domain + delta per-(position, value) index),
// so building such an extension costs O(|Δ|) and reading through it costs
// one extra segment per sequence — the base is never copied.
//
// Reuse discipline: one overlay per search, `Reset()` between candidates
// (clears the delta, keeps every container's capacity: the steady-state
// inner loop allocates nothing), `AddFact`/`PopFact` as a LIFO pair for
// backtracking searches. Seeds (`AddSeedConstant`) must be added before
// the first `AddFact` that a `PopFact` will undo — pops unwind the delta
// active domain in LIFO order.
//
// The base is borrowed and must (a) outlive the overlay and (b) not grow
// while the overlay's sequences are being read; the engine pins it under
// the check's stripe locks.
#ifndef RAR_RELATIONAL_OVERLAY_H_
#define RAR_RELATIONAL_OVERLAY_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "relational/config_view.h"
#include "relational/pos_value.h"

namespace rar {

class OverlayConfiguration : public ConfigView {
 public:
  explicit OverlayConfiguration(const ConfigView* base) : base_(base) {}

  const ConfigView* base() const { return base_; }

  /// Drops the delta but keeps allocated capacity (buckets, vectors).
  void Reset();

  /// Reset() and retarget onto a different base (drops any schema
  /// override).
  void Rebase(const ConfigView* base) {
    Reset();
    base_ = base;
    schema_override_ = nullptr;
  }

  /// Adds a fact to the delta; returns true when it was new to the view
  /// (absent from base and delta). Updates the delta active domain with
  /// every (value, attribute-domain) pair the view lacks.
  bool AddFact(const Fact& fact);

  /// Registers a delta seed constant (see the header comment for the
  /// ordering contract with PopFact).
  void AddSeedConstant(Value value, DomainId domain);

  /// Reads schema lookups (and schema()) through `schema` instead of the
  /// base's. For views over a *schema-extending* transform (Prop 3.4's
  /// IsBind relation): the extension must keep the base's relation ids
  /// stable, so base facts stay well-typed under the override. Survives
  /// Reset(); cleared by Rebase().
  void OverrideSchema(const Schema* schema) { schema_override_ = schema; }

  /// Undoes the most recent successful AddFact (LIFO). Returns false when
  /// the delta holds no facts.
  bool PopFact();

  /// Number of delta facts currently held.
  size_t delta_num_facts() const { return journal_.size(); }

  /// The delta facts, grouped by relation in insertion order (the
  /// containment witness searches return these as witness fact sets).
  std::vector<Fact> DeltaFacts() const;

  // ConfigView:
  const Schema* schema() const override {
    return schema_override_ != nullptr ? schema_override_ : base_->schema();
  }
  bool Contains(const Fact& fact) const override;
  size_t NumFacts() const override {
    return base_->NumFacts() + journal_.size();
  }
  size_t NumRelationsBound() const override {
    size_t n = base_->NumRelationsBound();
    return stores_.size() > n ? stores_.size() : n;
  }
  size_t NumFactsOf(RelationId rel) const override {
    return base_->NumFactsOf(rel) +
           (rel < stores_.size() ? stores_[rel].facts.size() : 0);
  }
  FactSeq FactsOf(RelationId rel) const override;
  IndexSeq FactsWith(RelationId rel, int position, Value v) const override;
  bool AdomContains(Value value, DomainId domain) const override;
  ValueSeq AdomOfDomain(DomainId domain) const override;
  std::vector<TypedValue> AdomEntries() const override;

 private:
  struct DeltaStore {
    std::vector<Fact> facts;
    std::unordered_set<Fact, FactHash> fact_set;
    /// Indices into `facts` (shifted by the base fact count on read).
    std::unordered_map<PosValueKey, std::vector<int>, PosValueKeyHash> index;
  };
  /// One AddFact's undo record.
  struct JournalEntry {
    RelationId rel;
    int adom_added;  ///< delta adom entries this fact introduced
  };

  DeltaStore& StoreOf(RelationId rel) {
    if (rel >= stores_.size()) stores_.resize(rel + 1);
    return stores_[rel];
  }

  const ConfigView* base_;
  const Schema* schema_override_ = nullptr;
  std::vector<DeltaStore> stores_;       ///< indexed by RelationId
  std::vector<RelationId> touched_;      ///< relations with delta facts
  std::vector<JournalEntry> journal_;    ///< AddFact undo log (LIFO)

  std::unordered_set<TypedValue, TypedValueHash> delta_adom_;
  std::unordered_map<DomainId, std::vector<Value>> delta_adom_by_domain_;
  std::vector<TypedValue> delta_adom_order_;  ///< insertion order (for undo)
};

}  // namespace rar

#endif  // RAR_RELATIONAL_OVERLAY_H_
