#include "relational/schema.h"

#include <string>

namespace rar {

DomainId Schema::AddDomain(std::string_view name) {
  DomainId existing = FindDomain(name);
  if (existing != kInvalidId) return existing;
  domain_names_.emplace_back(name);
  return static_cast<DomainId>(domain_names_.size() - 1);
}

DomainId Schema::FindDomain(std::string_view name) const {
  for (size_t i = 0; i < domain_names_.size(); ++i) {
    if (domain_names_[i] == name) return static_cast<DomainId>(i);
  }
  return kInvalidId;
}

Result<RelationId> Schema::AddRelation(std::string_view name,
                                       std::vector<Attribute> attributes) {
  if (FindRelation(name) != kInvalidId) {
    return Status::InvalidArgument("duplicate relation name: " +
                                   std::string(name));
  }
  for (const Attribute& attr : attributes) {
    if (attr.domain >= domain_names_.size()) {
      return Status::InvalidArgument("attribute " + attr.name +
                                     " of relation " + std::string(name) +
                                     " references an undeclared domain");
    }
  }
  relations_.push_back(Relation{std::string(name), std::move(attributes)});
  return static_cast<RelationId>(relations_.size() - 1);
}

Result<RelationId> Schema::AddRelation(std::string_view name,
                                       const std::vector<DomainId>& domains) {
  std::vector<Attribute> attrs;
  attrs.reserve(domains.size());
  for (size_t i = 0; i < domains.size(); ++i) {
    attrs.push_back(Attribute{"a" + std::to_string(i), domains[i]});
  }
  return AddRelation(name, std::move(attrs));
}

RelationId Schema::FindRelation(std::string_view name) const {
  for (size_t i = 0; i < relations_.size(); ++i) {
    if (relations_[i].name == name) return static_cast<RelationId>(i);
  }
  return kInvalidId;
}

Result<Value> Schema::FindConstant(std::string_view spelling) const {
  Interner::Id id = constants_->Lookup(spelling);
  if (id == Interner::kInvalid) {
    return Status::NotFound("constant not interned: " + std::string(spelling));
  }
  return Value::Constant(id);
}

Value Schema::MintFreshConstant(std::string_view prefix) const {
  // Probe spellings prefix#0, prefix#1, ... until this caller wins an
  // unused one (InternIfAbsent is atomic — a concurrent mint probing the
  // same candidate loses the insert and moves on to the next).
  for (uint64_t i = constants_->size();; ++i) {
    std::string candidate = std::string(prefix) + "#" + std::to_string(i);
    bool inserted = false;
    Interner::Id id = constants_->InternIfAbsent(candidate, &inserted);
    if (inserted) return Value::Constant(id);
  }
}

std::string Schema::ValueToString(Value v) const {
  if (v.is_constant()) return ConstantSpelling(v);
  return "_n" + std::to_string(v.id());
}

}  // namespace rar
