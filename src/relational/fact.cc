#include "relational/fact.h"

namespace rar {

std::string Fact::ToString(const Schema& schema) const {
  std::string out = schema.relation(relation).name;
  out += "(";
  for (int i = 0; i < arity(); ++i) {
    if (i > 0) out += ", ";
    out += schema.ValueToString(values[i]);
  }
  out += ")";
  return out;
}

}  // namespace rar
