// Per-relation configuration versions (the engine's invalidation currency).
//
// A configuration only ever grows, so two monotone counters describe every
// observable change: the number of facts of each relation, and the number
// of typed active-domain entries (facts' values plus seed constants). A
// `VersionVector` snapshots both. Derived state (cached relevance
// verdicts, certainty memos, fixpoints) records the sub-vector of versions
// it actually depends on — its *footprint* — and stays valid while that
// sub-vector is unchanged, no matter how the rest of the configuration
// grows. The old single global epoch is the degenerate footprint "all of
// it"; `global()` derives it for backward compatibility.
#ifndef RAR_RELATIONAL_VERSION_H_
#define RAR_RELATIONAL_VERSION_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace rar {

/// \brief The versions a cached artifact was computed against: one counter
/// per relation it reads, optionally the active-domain counter. Validity
/// is plain equality against a freshly built stamp (versions are monotone,
/// so equality means "nothing this artifact depends on has changed").
using VersionStamp = std::vector<uint64_t>;

/// \brief Snapshot of a configuration's full version state.
struct VersionVector {
  /// Fact count per relation, indexed by RelationId.
  std::vector<uint64_t> relations;
  /// Typed active-domain entry count (facts + seeds).
  uint64_t adom = 0;
  /// Active-domain entry count per domain, indexed by DomainId — the
  /// sharded refinement of `adom` (their sum). Derived state that depends
  /// only on *some* domains (a stream whose head and dependent-method
  /// inputs draw from one domain) stamps the sub-vector it reads, so
  /// growth of an unrelated domain invalidates nothing.
  std::vector<uint64_t> adom_domains;

  /// Derived global epoch: total growth events. Advances whenever any
  /// relation gains a fact or the active domain gains an entry — the
  /// single counter the engine exposed before versions were sharded.
  uint64_t global() const {
    uint64_t g = adom;
    for (uint64_t v : relations) g += v;
    return g;
  }

  uint64_t relation(size_t rel) const {
    return rel < relations.size() ? relations[rel] : 0;
  }

  uint64_t adom_domain(size_t dom) const {
    return dom < adom_domains.size() ? adom_domains[dom] : 0;
  }

  bool operator==(const VersionVector& o) const {
    if (adom != o.adom) return false;
    // Trailing zero entries are implicit: vectors of different lengths can
    // still describe the same state. The per-domain counters sum to `adom`,
    // so equal totals with equal per-relation counts already imply equal
    // state; still compare them for vectors built from partial mirrors.
    size_t n = std::max(relations.size(), o.relations.size());
    for (size_t i = 0; i < n; ++i) {
      if (relation(i) != o.relation(i)) return false;
    }
    size_t nd = std::max(adom_domains.size(), o.adom_domains.size());
    for (size_t i = 0; i < nd; ++i) {
      if (adom_domain(i) != o.adom_domain(i)) return false;
    }
    return true;
  }
  bool operator!=(const VersionVector& o) const { return !(*this == o); }

  /// FNV-1a fingerprint — a cheap identity for logs and coarse equality
  /// probes (collisions possible; use operator== to decide validity).
  uint64_t Fingerprint() const {
    uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](uint64_t v) { h = (h ^ v) * 1099511628211ULL; };
    mix(adom);
    // Skip trailing zeros so equal vectors of different lengths agree.
    size_t n = relations.size();
    while (n > 0 && relations[n - 1] == 0) --n;
    for (size_t i = 0; i < n; ++i) mix(relations[i]);
    return h;
  }

  std::string ToString() const {
    std::ostringstream os;
    os << "[adom=" << adom;
    for (size_t i = 0; i < adom_domains.size(); ++i) {
      os << " d" << i << "=" << adom_domains[i];
    }
    for (size_t i = 0; i < relations.size(); ++i) {
      os << " r" << i << "=" << relations[i];
    }
    os << "]";
    return os.str();
  }
};

}  // namespace rar

#endif  // RAR_RELATIONAL_VERSION_H_
