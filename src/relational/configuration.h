// Configurations: the finite set of facts an engine currently knows.
//
// Section 2: a configuration Conf is a subset of some instance I; the engine
// only ever sees configurations, and an instance is any fact set consistent
// with (i.e. containing) one. Both notions are finite typed fact sets, so a
// single class serves as configuration, instance, and witness extension.
//
// Beyond facts, a configuration carries *seed constants*: (value, domain)
// pairs known to belong to a domain without a supporting fact. These model
// the paper's standing assumption that query constants are available for
// dependent accesses, and the "set of existing constants" of CM-containment
// (Section 3).
#ifndef RAR_RELATIONAL_CONFIGURATION_H_
#define RAR_RELATIONAL_CONFIGURATION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "relational/fact.h"
#include "relational/schema.h"
#include "relational/value.h"
#include "relational/version.h"
#include "util/status.h"

namespace rar {

/// \brief A typed (value, domain) pair — one entry of the active domain.
struct TypedValue {
  Value value;
  DomainId domain = kInvalidId;

  bool operator==(const TypedValue& o) const {
    return value == o.value && domain == o.domain;
  }
  bool operator<(const TypedValue& o) const {
    if (!(value == o.value)) return value < o.value;
    return domain < o.domain;
  }
};

struct TypedValueHash {
  size_t operator()(const TypedValue& tv) const {
    return ValueHash()(tv.value) * 1000003u + tv.domain;
  }
};

/// \brief A finite set of facts over a schema, with incremental indexes and
/// active-domain bookkeeping.
///
/// Fact insertion is idempotent. The per-(relation, position, value) index
/// supports the homomorphism engine's candidate lookups; the active domain
/// (Adom) supports dependent-access well-formedness checks.
///
/// Versioning: because facts and seeds are never retracted, the per-
/// relation fact count and the active-domain entry count are monotone
/// version counters. `relation_version` / `adom_version` / `Versions`
/// expose them; the RelevanceEngine keys cached verdict validity on the
/// sub-vector a verdict's relation footprint selects.
///
/// Sharding note: relation stores live in a vector indexed by RelationId
/// and carry their own dedup sets, so growing relation R touches only
/// stores_[R] (plus the active-domain structures when a value is new).
/// After `ReserveRelations`, stores of distinct relations may be read and
/// grown concurrently under per-relation external locks — the engine's
/// striped-lock discipline relies on this.
class Configuration {
 public:
  Configuration() = default;
  explicit Configuration(const Schema* schema) : schema_(schema) {
    if (schema_ != nullptr) ReserveRelations(schema_->num_relations());
  }

  const Schema* schema() const { return schema_; }

  /// Pre-creates stores for relations [0, n): afterwards `AddFact` for any
  /// of them never reallocates the store vector, which is what makes
  /// cross-relation concurrent growth (under external per-relation locks)
  /// safe.
  void ReserveRelations(size_t n) {
    if (stores_.size() < n) stores_.resize(n);
  }

  /// Adds a fact; returns true when the fact was new. Updates Adom with
  /// every (value, attribute-domain) pair of the fact.
  bool AddFact(const Fact& fact);

  /// Adds a fact built from constant spellings (convenience for fixtures).
  Status AddFactNamed(std::string_view relation,
                      const std::vector<std::string>& constant_spellings);

  /// Registers a seed constant: `value` is known to inhabit `domain`.
  void AddSeedConstant(Value value, DomainId domain);

  bool Contains(const Fact& fact) const {
    if (fact.relation >= stores_.size()) return false;
    return stores_[fact.relation].fact_set.count(fact) > 0;
  }

  /// All facts of one relation, in insertion order.
  const std::vector<Fact>& FactsOf(RelationId rel) const;

  /// Indices (into FactsOf(rel)) of facts whose `position`-th value equals
  /// `v`. Returns an empty list when none match.
  const std::vector<int>& FactsWith(RelationId rel, int position,
                                    Value v) const;

  /// Every fact in the configuration (all relations, insertion order).
  std::vector<Fact> AllFacts() const;

  size_t NumFacts() const {
    size_t n = 0;
    for (const RelationStore& s : stores_) n += s.facts.size();
    return n;
  }

  /// Monotone version of one relation: its fact count (facts are never
  /// retracted). Changes exactly when the relation gains a fact.
  uint64_t relation_version(RelationId rel) const {
    return rel < stores_.size() ? stores_[rel].facts.size() : 0;
  }

  /// Monotone version of the typed active domain: its entry count (facts'
  /// values plus seeds). Changes exactly when a new (value, domain) pair
  /// becomes available — the quantity every reachability / dependent-
  /// access argument is monotone in.
  uint64_t adom_version() const { return adom_.size(); }

  /// Derived global epoch (total growth events); see VersionVector.
  uint64_t global_version() const { return NumFacts() + adom_.size(); }

  /// Snapshot of the full version state.
  VersionVector Versions() const {
    VersionVector v;
    v.relations.reserve(stores_.size());
    for (const RelationStore& s : stores_) {
      v.relations.push_back(s.facts.size());
    }
    v.adom = adom_.size();
    return v;
  }

  /// True when (value, domain) is in the active domain (facts or seeds).
  bool AdomContains(Value value, DomainId domain) const {
    return adom_.count(TypedValue{value, domain}) > 0;
  }

  /// All active-domain values of one domain, in first-seen order.
  const std::vector<Value>& AdomOfDomain(DomainId domain) const;

  /// The full active domain as (value, domain) pairs.
  std::vector<TypedValue> AdomEntries() const;

  /// Facts present in this configuration but not in `base`.
  std::vector<Fact> Difference(const Configuration& base) const;

  /// Copies every fact and seed of `other` into this configuration.
  void UnionWith(const Configuration& other);

  /// True when every fact and seed of this configuration is in `other`.
  bool IsSubsetOf(const Configuration& other) const;

  /// Multi-line rendering for diagnostics.
  std::string ToString() const;

 private:
  struct PosValueKey {
    int position;
    Value value;
    bool operator==(const PosValueKey& o) const {
      return position == o.position && value == o.value;
    }
  };
  struct PosValueKeyHash {
    size_t operator()(const PosValueKey& k) const {
      return ValueHash()(k.value) * 31u + static_cast<size_t>(k.position);
    }
  };
  struct RelationStore {
    std::vector<Fact> facts;
    std::unordered_set<Fact, FactHash> fact_set;  ///< per-relation dedup
    std::unordered_map<PosValueKey, std::vector<int>, PosValueKeyHash> index;
  };

  RelationStore& StoreOf(RelationId rel);

  const Schema* schema_ = nullptr;
  /// Indexed by RelationId; grown on demand (see ReserveRelations).
  std::vector<RelationStore> stores_;

  std::unordered_set<TypedValue, TypedValueHash> adom_;
  std::unordered_map<DomainId, std::vector<Value>> adom_by_domain_;
  std::vector<TypedValue> seeds_;

  static const std::vector<Fact> kNoFacts;
  static const std::vector<int> kNoIndices;
  static const std::vector<Value> kNoValues;
};

}  // namespace rar

#endif  // RAR_RELATIONAL_CONFIGURATION_H_
