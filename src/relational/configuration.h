// Configurations: the finite set of facts an engine currently knows.
//
// Section 2: a configuration Conf is a subset of some instance I; the engine
// only ever sees configurations, and an instance is any fact set consistent
// with (i.e. containing) one. Both notions are finite typed fact sets, so a
// single class serves as configuration, instance, and witness extension.
//
// Beyond facts, a configuration carries *seed constants*: (value, domain)
// pairs known to belong to a domain without a supporting fact. These model
// the paper's standing assumption that query constants are available for
// dependent accesses, and the "set of existing constants" of CM-containment
// (Section 3).
//
// Configuration implements the read-only ConfigView interface (see
// config_view.h); the deciders and the evaluation layer consume views, so
// hypothetical extensions are built as OverlayConfiguration deltas instead
// of copies.
#ifndef RAR_RELATIONAL_CONFIGURATION_H_
#define RAR_RELATIONAL_CONFIGURATION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "relational/config_view.h"
#include "relational/fact.h"
#include "relational/pos_value.h"
#include "relational/schema.h"
#include "relational/value.h"
#include "relational/version.h"
#include "util/status.h"

namespace rar {

/// \brief A finite set of facts over a schema, with incremental indexes and
/// active-domain bookkeeping.
///
/// Fact insertion is idempotent. The per-(relation, position, value) index
/// supports the homomorphism engine's candidate lookups; the active domain
/// (Adom) supports dependent-access well-formedness checks.
///
/// Versioning: because facts and seeds are never retracted, the per-
/// relation fact count and the active-domain entry count are monotone
/// version counters. `relation_version` / `adom_version` / `Versions`
/// expose them; the RelevanceEngine keys cached verdict validity on the
/// sub-vector a verdict's relation footprint selects.
///
/// Sharding note: relation stores live in a vector indexed by RelationId
/// and carry their own dedup sets, so growing relation R touches only
/// stores_[R] (plus the active-domain structures when a value is new).
/// After `ReserveRelations`, stores of distinct relations may be read and
/// grown concurrently under per-relation external locks — the engine's
/// striped-lock discipline relies on this.
class Configuration : public ConfigView {
 public:
  Configuration() = default;
  explicit Configuration(const Schema* schema) : schema_(schema) {
    if (schema_ != nullptr) ReserveRelations(schema_->num_relations());
  }

  // Copy/move are member-wise; spelled out because the running fact count
  // is an atomic (see num_facts_), which deletes the implicit versions.
  Configuration(const Configuration& o)
      : schema_(o.schema_), stores_(o.stores_),
        num_facts_(o.num_facts_.load(std::memory_order_relaxed)),
        adom_(o.adom_), adom_by_domain_(o.adom_by_domain_), seeds_(o.seeds_) {}
  Configuration& operator=(const Configuration& o) {
    if (this != &o) {
      schema_ = o.schema_;
      stores_ = o.stores_;
      num_facts_.store(o.num_facts_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      adom_ = o.adom_;
      adom_by_domain_ = o.adom_by_domain_;
      seeds_ = o.seeds_;
    }
    return *this;
  }
  Configuration(Configuration&& o) noexcept
      : schema_(o.schema_), stores_(std::move(o.stores_)),
        num_facts_(o.num_facts_.load(std::memory_order_relaxed)),
        adom_(std::move(o.adom_)),
        adom_by_domain_(std::move(o.adom_by_domain_)),
        seeds_(std::move(o.seeds_)) {}
  Configuration& operator=(Configuration&& o) noexcept {
    schema_ = o.schema_;
    stores_ = std::move(o.stores_);
    num_facts_.store(o.num_facts_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    adom_ = std::move(o.adom_);
    adom_by_domain_ = std::move(o.adom_by_domain_);
    seeds_ = std::move(o.seeds_);
    return *this;
  }

  const Schema* schema() const override { return schema_; }

  /// Pre-creates stores for relations [0, n): afterwards `AddFact` for any
  /// of them never reallocates the store vector, which is what makes
  /// cross-relation concurrent growth (under external per-relation locks)
  /// safe.
  void ReserveRelations(size_t n) {
    if (stores_.size() < n) stores_.resize(n);
  }

  /// Adds a fact; returns true when the fact was new. Updates Adom with
  /// every (value, attribute-domain) pair of the fact.
  bool AddFact(const Fact& fact);

  /// Adds a fact built from constant spellings (convenience for fixtures).
  Status AddFactNamed(std::string_view relation,
                      const std::vector<std::string>& constant_spellings);

  /// Registers a seed constant: `value` is known to inhabit `domain`.
  void AddSeedConstant(Value value, DomainId domain);

  bool Contains(const Fact& fact) const override {
    if (fact.relation >= stores_.size()) return false;
    return stores_[fact.relation].fact_set.count(fact) > 0;
  }

  /// All facts of one relation, in insertion order.
  FactSeq FactsOf(RelationId rel) const override {
    return rel < stores_.size() ? FactSeq(stores_[rel].facts) : FactSeq();
  }

  /// Indices (into FactsOf(rel)) of facts whose `position`-th value equals
  /// `v`. Returns an empty sequence when none match.
  IndexSeq FactsWith(RelationId rel, int position, Value v) const override;

  /// Cached running count: O(1) — stamped on every snapshot and version
  /// probe, so it must not walk the stores.
  size_t NumFacts() const override {
    return num_facts_.load(std::memory_order_relaxed);
  }

  size_t NumRelationsBound() const override { return stores_.size(); }

  size_t NumFactsOf(RelationId rel) const override {
    return rel < stores_.size() ? stores_[rel].facts.size() : 0;
  }

  /// Monotone version of one relation: its fact count (facts are never
  /// retracted). Changes exactly when the relation gains a fact.
  uint64_t relation_version(RelationId rel) const {
    return rel < stores_.size() ? stores_[rel].facts.size() : 0;
  }

  /// Monotone version of the typed active domain: its entry count (facts'
  /// values plus seeds). Changes exactly when a new (value, domain) pair
  /// becomes available — the quantity every reachability / dependent-
  /// access argument is monotone in.
  uint64_t adom_version() const { return adom_.size(); }

  /// Monotone version of one domain's slice of the active domain: its
  /// first-seen value count (append-only, maintained by AddFact and
  /// AddSeedConstant exactly when the typed value is new). The per-domain
  /// counters sum to `adom_version()`; growth of one domain leaves every
  /// other domain's counter untouched, which is what lets derived state
  /// stamp only the domains it reads.
  uint64_t adom_domain_version(DomainId domain) const {
    auto it = adom_by_domain_.find(domain);
    return it == adom_by_domain_.end() ? 0 : it->second.size();
  }

  /// Derived global epoch (total growth events); see VersionVector. O(1):
  /// both counts are cached.
  uint64_t global_version() const { return NumFacts() + adom_.size(); }

  /// Snapshot of the full version state.
  VersionVector Versions() const {
    VersionVector v;
    v.relations.reserve(stores_.size());
    for (const RelationStore& s : stores_) {
      v.relations.push_back(s.facts.size());
    }
    v.adom = adom_.size();
    if (schema_ != nullptr) {
      v.adom_domains.reserve(schema_->num_domains());
      for (size_t d = 0; d < schema_->num_domains(); ++d) {
        v.adom_domains.push_back(
            adom_domain_version(static_cast<DomainId>(d)));
      }
    }
    return v;
  }

  /// True when (value, domain) is in the active domain (facts or seeds).
  bool AdomContains(Value value, DomainId domain) const override {
    return adom_.count(TypedValue{value, domain}) > 0;
  }

  /// All active-domain values of one domain, in first-seen order.
  ValueSeq AdomOfDomain(DomainId domain) const override;

  /// The full active domain as (value, domain) pairs.
  std::vector<TypedValue> AdomEntries() const override;

  /// Facts present in this configuration but not in `base`.
  std::vector<Fact> Difference(const Configuration& base) const;

  /// Copies every fact and seed of `other` into this configuration.
  void UnionWith(const Configuration& other);

  /// Copies every fact of `view` plus every active-domain entry not
  /// carried by a fact (i.e. the view's seeds, possibly over-approximated
  /// for exotic views) into this configuration. The resulting active
  /// domain equals the view's.
  void UnionWithView(const ConfigView& view);

  /// True when every fact and seed of this configuration is in `other`.
  bool IsSubsetOf(const Configuration& other) const;

  /// Multi-line rendering for diagnostics.
  std::string ToString() const;

 private:
  struct RelationStore {
    std::vector<Fact> facts;
    std::unordered_set<Fact, FactHash> fact_set;  ///< per-relation dedup
    std::unordered_map<PosValueKey, std::vector<int>, PosValueKeyHash> index;
  };

  RelationStore& StoreOf(RelationId rel);

  const Schema* schema_ = nullptr;
  /// Indexed by RelationId; grown on demand (see ReserveRelations).
  std::vector<RelationStore> stores_;
  /// Running total of facts across stores (kept by AddFact). Atomic and
  /// relaxed: concurrent growth of *distinct* relations under external
  /// per-relation locks must not share an unsynchronized counter (the
  /// engine's striped-lock discipline); exactness for readers comes from
  /// their own locks, not from this ordering.
  std::atomic<size_t> num_facts_{0};

  std::unordered_set<TypedValue, TypedValueHash> adom_;
  std::unordered_map<DomainId, std::vector<Value>> adom_by_domain_;
  std::vector<TypedValue> seeds_;
};

/// Materializes any view as a standalone Configuration: same facts, same
/// typed active domain (entries not carried by facts become seeds).
Configuration MaterializeConfig(const ConfigView& view);

}  // namespace rar

#endif  // RAR_RELATIONAL_CONFIGURATION_H_
