// Facts (ground atoms): a relation id plus a tuple of values.
#ifndef RAR_RELATIONAL_FACT_H_
#define RAR_RELATIONAL_FACT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/value.h"

namespace rar {

/// \brief A ground fact R(v1, ..., vk). Values may include labelled nulls
/// inside symbolic engines; configurations proper contain constants only.
struct Fact {
  RelationId relation = kInvalidId;
  std::vector<Value> values;

  Fact() = default;
  Fact(RelationId rel, std::vector<Value> vals)
      : relation(rel), values(std::move(vals)) {}

  int arity() const { return static_cast<int>(values.size()); }

  bool operator==(const Fact& o) const {
    return relation == o.relation && values == o.values;
  }
  bool operator!=(const Fact& o) const { return !(*this == o); }
  bool operator<(const Fact& o) const {
    if (relation != o.relation) return relation < o.relation;
    return values < o.values;
  }

  /// True when every value is a constant.
  bool IsGroundConstant() const {
    for (const Value& v : values) {
      if (!v.is_constant()) return false;
    }
    return true;
  }

  /// Renders "R(a, b, _n0)" against a schema.
  std::string ToString(const Schema& schema) const;
};

struct FactHash {
  size_t operator()(const Fact& f) const {
    uint64_t h = 1469598103934665603ULL ^ f.relation;
    ValueHash vh;
    for (const Value& v : f.values) {
      h ^= vh(v);
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace rar

#endif  // RAR_RELATIONAL_FACT_H_
