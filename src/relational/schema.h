// Schemas: relations, attributes, abstract domains (Section 2).
//
// A schema declares a set of abstract domains and a set of relations whose
// attributes are typed by those domains. Domains are countably infinite and
// possibly overlapping; the paper uses them to constrain which values may be
// fed into dependent accesses. Constants are interned in a symbol table
// shared by every copy of the schema so that configurations, queries and
// engines built against the same schema agree on constant ids.
#ifndef RAR_RELATIONAL_SCHEMA_H_
#define RAR_RELATIONAL_SCHEMA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "relational/value.h"
#include "util/interner.h"
#include "util/status.h"

namespace rar {

/// Dense id of an abstract domain within a schema.
using DomainId = uint32_t;
/// Dense id of a relation within a schema.
using RelationId = uint32_t;

constexpr uint32_t kInvalidId = static_cast<uint32_t>(-1);

/// \brief One attribute of a relation: a name and an abstract domain.
struct Attribute {
  std::string name;
  DomainId domain;
};

/// \brief A relation symbol with typed attributes.
struct Relation {
  std::string name;
  std::vector<Attribute> attributes;

  int arity() const { return static_cast<int>(attributes.size()); }
};

/// \brief A database schema: domains + relations + shared constant symbols.
///
/// Schemas are value types; copies share the constant symbol table (by
/// design — a query parsed against a copy must produce the same constant ids
/// as a configuration built against the original).
class Schema {
 public:
  Schema() : constants_(std::make_shared<Interner>()) {}

  /// Declares (or looks up) an abstract domain by name.
  DomainId AddDomain(std::string_view name);

  /// Returns the id of a declared domain, or kInvalidId.
  DomainId FindDomain(std::string_view name) const;

  const std::string& domain_name(DomainId id) const {
    return domain_names_[id];
  }
  size_t num_domains() const { return domain_names_.size(); }

  /// Declares a relation; attribute domains must already exist.
  /// Fails with InvalidArgument on duplicate relation names.
  Result<RelationId> AddRelation(std::string_view name,
                                 std::vector<Attribute> attributes);

  /// Convenience: declares a relation whose attributes are auto-named
  /// a0,a1,... with the given domains.
  Result<RelationId> AddRelation(std::string_view name,
                                 const std::vector<DomainId>& domains);

  /// Returns the id of a declared relation, or kInvalidId.
  RelationId FindRelation(std::string_view name) const;

  const Relation& relation(RelationId id) const { return relations_[id]; }
  size_t num_relations() const { return relations_.size(); }

  /// Interns a constant spelling, returning its value. Constant ids are
  /// shared across copies of this schema.
  Value InternConstant(std::string_view spelling) const {
    return Value::Constant(constants_->Intern(spelling));
  }

  /// Returns the constant for `spelling` if already interned.
  Result<Value> FindConstant(std::string_view spelling) const;

  /// Spelling of a constant value (must be a constant from this schema).
  const std::string& ConstantSpelling(Value v) const {
    return constants_->Spelling(v.id());
  }

  /// Mints a constant guaranteed to be distinct from all interned ones;
  /// used when replaying symbolic witnesses ("fresh value of domain D").
  Value MintFreshConstant(std::string_view prefix) const;

  /// Renders a value ("c", "_n3") for diagnostics.
  std::string ValueToString(Value v) const;

  size_t num_constants() const { return constants_->size(); }

 private:
  std::vector<std::string> domain_names_;
  std::vector<Relation> relations_;
  std::shared_ptr<Interner> constants_;
};

}  // namespace rar

#endif  // RAR_RELATIONAL_SCHEMA_H_
