// Values: constants and labelled nulls.
//
// Section 2 of the paper works with constants drawn from countable abstract
// domains. The symbolic engines additionally need *labelled nulls* — fresh,
// pairwise-distinct placeholder values used while searching for witness
// configurations ("some new value the access could return"). A null is
// promoted to a fresh constant when a witness is replayed.
//
// A value's identity is its spelling (for constants) or its label (for
// nulls); domain membership is a property of the *position* a value sits in,
// not of the value itself, because the paper allows different abstract
// domains to overlap (Section 2, "Modeling data sources").
#ifndef RAR_RELATIONAL_VALUE_H_
#define RAR_RELATIONAL_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>

namespace rar {

/// \brief A constant or a labelled null.
///
/// Trivially copyable (8 bytes); equality and hashing are on (kind, id).
class Value {
 public:
  enum class Kind : uint8_t { kConstant = 0, kNull = 1 };

  Value() : kind_(Kind::kConstant), id_(0) {}

  static Value Constant(uint32_t id) { return Value(Kind::kConstant, id); }
  static Value Null(uint32_t label) { return Value(Kind::kNull, label); }

  Kind kind() const { return kind_; }
  bool is_constant() const { return kind_ == Kind::kConstant; }
  bool is_null() const { return kind_ == Kind::kNull; }
  /// Constant interner id (valid when is_constant()) or null label.
  uint32_t id() const { return id_; }

  bool operator==(const Value& o) const {
    return kind_ == o.kind_ && id_ == o.id_;
  }
  bool operator!=(const Value& o) const { return !(*this == o); }
  bool operator<(const Value& o) const {
    if (kind_ != o.kind_) return kind_ < o.kind_;
    return id_ < o.id_;
  }

  /// 64-bit packing used as a hash key.
  uint64_t Packed() const {
    return (static_cast<uint64_t>(kind_) << 32) | id_;
  }

 private:
  Value(Kind kind, uint32_t id) : kind_(kind), id_(id) {}

  Kind kind_;
  uint32_t id_;
};

/// \brief Hands out pairwise-distinct null labels.
///
/// Each engine instantiates its own factory so that null labels are unique
/// within one search and witnesses are self-consistent.
class NullFactory {
 public:
  NullFactory() : next_(0) {}
  explicit NullFactory(uint32_t first_label) : next_(first_label) {}

  Value Fresh() { return Value::Null(next_++); }
  uint32_t labels_used() const { return next_; }

 private:
  uint32_t next_;
};

struct ValueHash {
  size_t operator()(const Value& v) const {
    uint64_t x = v.Packed();
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};

}  // namespace rar

#endif  // RAR_RELATIONAL_VALUE_H_
