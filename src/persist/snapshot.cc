#include "persist/snapshot.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "persist/wal_format.h"

namespace rar {

namespace {

// 8 bytes: format name + version. Bumping the version invalidates old
// images (recovery falls back to full WAL replay).
constexpr char kMagic[8] = {'R', 'A', 'R', 'S', 'N', 'P', '0', '3'};

void EncodeAccess(const Schema& schema, const AccessMethodSet& acs,
                  const Access& a, BinWriter* w) {
  w->Str(acs.method(a.method).name);
  w->U32(static_cast<uint32_t>(a.binding.size()));
  for (const Value& v : a.binding) EncodeValue(schema, v, w);
}

Status DecodeAccess(const Schema& schema, const AccessMethodSet& acs,
                    BinReader* r, Access* out) {
  std::string method_name;
  RAR_RETURN_NOT_OK(r->Str(&method_name));
  AccessMethodId m = acs.Find(method_name);
  if (m == kInvalidId) {
    return Status::ParseError("snapshot references unknown access method '" +
                              method_name + "'");
  }
  out->method = m;
  uint32_t n = 0;
  RAR_RETURN_NOT_OK(r->U32(&n));
  if (n != static_cast<uint32_t>(acs.method(m).num_inputs())) {
    return Status::ParseError("snapshot access binding arity mismatch");
  }
  out->binding.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    RAR_RETURN_NOT_OK(DecodeValue(schema, r, &out->binding[i]));
  }
  return Status::OK();
}

void EncodeEvent(const Schema& schema, const StreamEvent& e, BinWriter* w) {
  w->U8(static_cast<uint8_t>(e.kind));
  w->U64(e.sequence);
  w->U32(static_cast<uint32_t>(e.binding.size()));
  for (const Value& v : e.binding) EncodeValue(schema, v, w);
}

Status DecodeEvent(const Schema& schema, BinReader* r, StreamEvent* out) {
  uint8_t kind = 0;
  RAR_RETURN_NOT_OK(r->U8(&kind));
  if (kind > static_cast<uint8_t>(StreamEventKind::kBecameIrrelevant)) {
    return Status::ParseError("snapshot stream event kind out of range");
  }
  out->kind = static_cast<StreamEventKind>(kind);
  RAR_RETURN_NOT_OK(r->U64(&out->sequence));
  uint32_t n = 0;
  RAR_RETURN_NOT_OK(r->U32(&n));
  if (n > r->remaining()) {
    return Status::ParseError("snapshot stream event binding overruns body");
  }
  out->binding.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    RAR_RETURN_NOT_OK(DecodeValue(schema, r, &out->binding[i]));
  }
  return Status::OK();
}

}  // namespace

std::string EncodeSnapshot(const Schema& schema, const AccessMethodSet& acs,
                           const SnapshotState& state) {
  std::string body;
  BinWriter w(&body);
  w.U64(state.last_sequence);

  w.U32(static_cast<uint32_t>(state.adom.size()));
  for (const auto& [domain, values] : state.adom) {
    w.Str(schema.domain_name(domain));
    w.U32(static_cast<uint32_t>(values.size()));
    for (Value v : values) EncodeValue(schema, v, &w);
  }

  w.U32(static_cast<uint32_t>(state.facts.size()));
  for (const auto& [rel, facts] : state.facts) {
    w.Str(schema.relation(rel).name);
    w.U32(static_cast<uint32_t>(facts.size()));
    for (const Fact& f : facts) {
      for (const Value& v : f.values) EncodeValue(schema, v, &w);
    }
  }

  w.U32(static_cast<uint32_t>(state.performed.size()));
  for (const Access& a : state.performed) EncodeAccess(schema, acs, a, &w);

  w.U32(static_cast<uint32_t>(state.queries.size()));
  for (const UnionQuery& q : state.queries) EncodeUnionQuery(schema, q, &w);

  w.U32(static_cast<uint32_t>(state.streams.size()));
  for (const SnapshotStreamState& s : state.streams) {
    EncodeUnionQuery(schema, s.query, &w);
    EncodeStreamOptions(s.options, &w);
    w.U32(static_cast<uint32_t>(s.fresh_pool.size()));
    for (const TypedValue& tv : s.fresh_pool) {
      w.Str(schema.domain_name(tv.domain));
      w.Str(schema.ConstantSpelling(tv.value));
    }
    w.U64(s.next_sequence);
    w.U64(s.acked_sequence);
    w.U64(s.evicted_through);
    w.U32(static_cast<uint32_t>(s.retained_events.size()));
    for (const StreamEvent& e : s.retained_events) EncodeEvent(schema, e, &w);
  }

  w.U32(static_cast<uint32_t>(state.sessions.size()));
  for (const SnapshotSessionState& s : state.sessions) {
    w.U64(s.id);
    w.U64(s.nonce);
    w.U32(static_cast<uint32_t>(s.query_regs.size()));
    for (uint32_t idx : s.query_regs) w.U32(idx);
    w.U32(static_cast<uint32_t>(s.streams.size()));
    for (uint32_t sid : s.streams) w.U32(sid);
    w.U64(s.dedup_watermark);
    w.U32(static_cast<uint32_t>(s.dedup.size()));
    for (const SnapshotSessionState::DedupEntry& e : s.dedup) {
      w.U64(e.request_id);
      w.U8(e.type);
      w.Str(e.response_payload);
    }
  }

  std::string out;
  out.append(kMagic, sizeof(kMagic));
  BinWriter h(&out);
  h.U32(static_cast<uint32_t>(body.size()));
  h.U32(Crc32(body.data(), body.size()));
  out.append(body);
  return out;
}

Status DecodeSnapshot(const Schema& schema, const AccessMethodSet& acs,
                      std::string_view data, SnapshotState* out) {
  if (data.size() < sizeof(kMagic) + 8 ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("not a snapshot file (bad magic)");
  }
  std::string_view header = data.substr(sizeof(kMagic), 8);
  uint32_t len = 0, crc = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(header[i])) << (8 * i);
    crc |= static_cast<uint32_t>(static_cast<uint8_t>(header[4 + i]))
           << (8 * i);
  }
  std::string_view body = data.substr(sizeof(kMagic) + 8);
  if (body.size() != len) {
    return Status::ParseError("snapshot body length mismatch");
  }
  if (Crc32(body.data(), body.size()) != crc) {
    return Status::ParseError("snapshot body CRC mismatch");
  }

  BinReader r(body);
  RAR_RETURN_NOT_OK(r.U64(&out->last_sequence));

  uint32_t num_domains = 0;
  RAR_RETURN_NOT_OK(r.U32(&num_domains));
  out->adom.clear();
  out->adom.reserve(num_domains);
  for (uint32_t d = 0; d < num_domains; ++d) {
    std::string name;
    RAR_RETURN_NOT_OK(r.Str(&name));
    DomainId domain = schema.FindDomain(name);
    if (domain == kInvalidId) {
      return Status::ParseError("snapshot references unknown domain '" + name +
                                "'");
    }
    uint32_t count = 0;
    RAR_RETURN_NOT_OK(r.U32(&count));
    if (count > r.remaining()) {
      return Status::ParseError("snapshot adom list overruns body");
    }
    std::vector<Value> values(count);
    for (uint32_t i = 0; i < count; ++i) {
      RAR_RETURN_NOT_OK(DecodeValue(schema, &r, &values[i]));
    }
    out->adom.emplace_back(domain, std::move(values));
  }

  uint32_t num_relations = 0;
  RAR_RETURN_NOT_OK(r.U32(&num_relations));
  out->facts.clear();
  out->facts.reserve(num_relations);
  for (uint32_t ri = 0; ri < num_relations; ++ri) {
    std::string name;
    RAR_RETURN_NOT_OK(r.Str(&name));
    RelationId rel = schema.FindRelation(name);
    if (rel == kInvalidId) {
      return Status::ParseError("snapshot references unknown relation '" +
                                name + "'");
    }
    const int arity = schema.relation(rel).arity();
    uint32_t count = 0;
    RAR_RETURN_NOT_OK(r.U32(&count));
    if (count > r.remaining()) {
      return Status::ParseError("snapshot fact list overruns body");
    }
    std::vector<Fact> facts(count);
    for (uint32_t i = 0; i < count; ++i) {
      facts[i].relation = rel;
      facts[i].values.resize(arity);
      for (int p = 0; p < arity; ++p) {
        RAR_RETURN_NOT_OK(DecodeValue(schema, &r, &facts[i].values[p]));
      }
    }
    out->facts.emplace_back(rel, std::move(facts));
  }

  uint32_t num_performed = 0;
  RAR_RETURN_NOT_OK(r.U32(&num_performed));
  if (num_performed > r.remaining()) {
    return Status::ParseError("snapshot performed list overruns body");
  }
  out->performed.assign(num_performed, Access{});
  for (uint32_t i = 0; i < num_performed; ++i) {
    RAR_RETURN_NOT_OK(DecodeAccess(schema, acs, &r, &out->performed[i]));
  }

  uint32_t num_queries = 0;
  RAR_RETURN_NOT_OK(r.U32(&num_queries));
  if (num_queries > r.remaining()) {
    return Status::ParseError("snapshot query list overruns body");
  }
  out->queries.assign(num_queries, UnionQuery{});
  for (uint32_t i = 0; i < num_queries; ++i) {
    RAR_RETURN_NOT_OK(DecodeUnionQuery(schema, &r, &out->queries[i]));
  }

  uint32_t num_streams = 0;
  RAR_RETURN_NOT_OK(r.U32(&num_streams));
  if (num_streams > r.remaining()) {
    return Status::ParseError("snapshot stream list overruns body");
  }
  out->streams.assign(num_streams, SnapshotStreamState{});
  for (uint32_t i = 0; i < num_streams; ++i) {
    SnapshotStreamState& s = out->streams[i];
    RAR_RETURN_NOT_OK(DecodeUnionQuery(schema, &r, &s.query));
    RAR_RETURN_NOT_OK(DecodeStreamOptions(&r, &s.options));
    uint32_t fresh = 0;
    RAR_RETURN_NOT_OK(r.U32(&fresh));
    if (fresh > r.remaining()) {
      return Status::ParseError("snapshot fresh pool overruns body");
    }
    s.fresh_pool.resize(fresh);
    for (uint32_t f = 0; f < fresh; ++f) {
      std::string domain_name, spelling;
      RAR_RETURN_NOT_OK(r.Str(&domain_name));
      RAR_RETURN_NOT_OK(r.Str(&spelling));
      DomainId domain = schema.FindDomain(domain_name);
      if (domain == kInvalidId) {
        return Status::ParseError("snapshot fresh pool unknown domain '" +
                                  domain_name + "'");
      }
      s.fresh_pool[f] =
          TypedValue{schema.InternConstant(spelling), domain};
    }
    RAR_RETURN_NOT_OK(r.U64(&s.next_sequence));
    RAR_RETURN_NOT_OK(r.U64(&s.acked_sequence));
    RAR_RETURN_NOT_OK(r.U64(&s.evicted_through));
    uint32_t retained = 0;
    RAR_RETURN_NOT_OK(r.U32(&retained));
    if (retained > r.remaining()) {
      return Status::ParseError("snapshot retained events overrun body");
    }
    s.retained_events.resize(retained);
    for (uint32_t e = 0; e < retained; ++e) {
      RAR_RETURN_NOT_OK(DecodeEvent(schema, &r, &s.retained_events[e]));
    }
  }

  uint32_t num_sessions = 0;
  RAR_RETURN_NOT_OK(r.U32(&num_sessions));
  if (num_sessions > r.remaining()) {
    return Status::ParseError("snapshot session list overruns body");
  }
  out->sessions.assign(num_sessions, SnapshotSessionState{});
  for (uint32_t i = 0; i < num_sessions; ++i) {
    SnapshotSessionState& s = out->sessions[i];
    RAR_RETURN_NOT_OK(r.U64(&s.id));
    RAR_RETURN_NOT_OK(r.U64(&s.nonce));
    uint32_t nq = 0;
    RAR_RETURN_NOT_OK(r.U32(&nq));
    if (nq > r.remaining()) {
      return Status::ParseError("snapshot session query table overruns body");
    }
    s.query_regs.resize(nq);
    for (uint32_t q = 0; q < nq; ++q) {
      RAR_RETURN_NOT_OK(r.U32(&s.query_regs[q]));
    }
    uint32_t ns = 0;
    RAR_RETURN_NOT_OK(r.U32(&ns));
    if (ns > r.remaining()) {
      return Status::ParseError("snapshot session stream table overruns body");
    }
    s.streams.resize(ns);
    for (uint32_t t = 0; t < ns; ++t) {
      RAR_RETURN_NOT_OK(r.U32(&s.streams[t]));
    }
    RAR_RETURN_NOT_OK(r.U64(&s.dedup_watermark));
    uint32_t nd = 0;
    RAR_RETURN_NOT_OK(r.U32(&nd));
    if (nd > r.remaining()) {
      return Status::ParseError("snapshot dedup window overruns body");
    }
    s.dedup.resize(nd);
    for (uint32_t d = 0; d < nd; ++d) {
      RAR_RETURN_NOT_OK(r.U64(&s.dedup[d].request_id));
      RAR_RETURN_NOT_OK(r.U8(&s.dedup[d].type));
      RAR_RETURN_NOT_OK(r.Str(&s.dedup[d].response_payload));
    }
  }

  if (!r.AtEnd()) {
    return Status::ParseError("snapshot body has trailing bytes");
  }
  return Status::OK();
}

std::string SnapshotFileName(uint64_t last_sequence) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "snapshot-%020" PRIu64 ".snap",
                last_sequence);
  return buf;
}

bool ParseSnapshotFileName(const std::string& name, uint64_t* last_sequence) {
  if (name.size() < 15 || name.compare(0, 9, "snapshot-") != 0 ||
      name.compare(name.size() - 5, 5, ".snap") != 0) {
    return false;
  }
  uint64_t seq = 0;
  for (size_t i = 9; i < name.size() - 5; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    seq = seq * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *last_sequence = seq;
  return true;
}

Status WriteSnapshotFile(PersistEnv* env, const std::string& dir,
                         const Schema& schema, const AccessMethodSet& acs,
                         const SnapshotState& state, uint64_t* bytes_written) {
  std::string image = EncodeSnapshot(schema, acs, state);
  if (bytes_written != nullptr) *bytes_written = image.size();
  return AtomicWriteFile(env, dir + "/" + SnapshotFileName(state.last_sequence),
                         image);
}

Status LoadLatestSnapshot(PersistEnv* env, const std::string& dir,
                          const Schema& schema, const AccessMethodSet& acs,
                          SnapshotState* out, bool* found) {
  *found = false;
  RAR_ASSIGN_OR_RETURN(std::vector<std::string> names, env->ListDir(dir));
  std::vector<std::pair<uint64_t, std::string>> candidates;
  for (const std::string& name : names) {
    uint64_t seq = 0;
    if (ParseSnapshotFileName(name, &seq)) candidates.emplace_back(seq, name);
  }
  // Newest first; a corrupt image degrades to the previous one plus a
  // longer WAL replay.
  std::sort(candidates.rbegin(), candidates.rend());
  for (const auto& [seq, name] : candidates) {
    std::string data;
    Status read = ReadFileFully(env, dir + "/" + name, &data);
    if (!read.ok()) continue;
    SnapshotState state;
    if (!DecodeSnapshot(schema, acs, data, &state).ok()) continue;
    *out = std::move(state);
    *found = true;
    return Status::OK();
  }
  return Status::OK();
}

}  // namespace rar
