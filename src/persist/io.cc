#include "persist/io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rar {

namespace {

std::string ErrnoMessage(const std::string& op, const std::string& path) {
  return op + " " + path + ": " + std::strerror(errno);
}

std::string Basename(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const void* data, size_t n) override {
    const char* p = static_cast<const char*>(data);
    while (n > 0) {
      ssize_t w = ::write(fd_, p, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(ErrnoMessage("write", path_));
      }
      p += w;
      n -= static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return Status::Internal(ErrnoMessage("fsync", path_));
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) return Status::Internal(ErrnoMessage("close", path_));
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixReadableFile : public ReadableFile {
 public:
  PosixReadableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixReadableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Result<size_t> ReadAt(uint64_t offset, void* buf, size_t n) override {
    while (true) {
      ssize_t r = ::pread(fd_, buf, n, static_cast<off_t>(offset));
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(ErrnoMessage("pread", path_));
      }
      return static_cast<size_t>(r);
    }
  }

  Result<uint64_t> Size() override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return Status::Internal(ErrnoMessage("fstat", path_));
    }
    return static_cast<uint64_t>(st.st_size);
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv : public PersistEnv {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool append) override {
    int flags = O_WRONLY | O_CREAT | O_CLOEXEC;
    flags |= append ? O_APPEND : O_TRUNC;
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return Status::Internal(ErrnoMessage("open", path));
    return {std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path))};
  }

  Result<std::unique_ptr<ReadableFile>> NewReadableFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      if (errno == ENOENT) return Status::NotFound(ErrnoMessage("open", path));
      return Status::Internal(ErrnoMessage("open", path));
    }
    return {std::unique_ptr<ReadableFile>(new PosixReadableFile(fd, path))};
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return Status::NotFound(ErrnoMessage("opendir", dir));
    std::vector<std::string> names;
    while (struct dirent* e = ::readdir(d)) {
      std::string name = e->d_name;
      if (name != "." && name != "..") names.push_back(std::move(name));
    }
    ::closedir(d);
    return names;
  }

  Status CreateDir(const std::string& dir) override {
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::Internal(ErrnoMessage("mkdir", dir));
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Status::Internal(ErrnoMessage("unlink", path));
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::Internal(ErrnoMessage("rename", from + " -> " + to));
    }
    return Status::OK();
  }

  Status Truncate(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return Status::Internal(ErrnoMessage("truncate", path));
    }
    return Status::OK();
  }

  Result<bool> FileExists(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) == 0) return true;
    if (errno == ENOENT) return false;
    return Status::Internal(ErrnoMessage("stat", path));
  }

  Status SyncDir(const std::string& dir) override {
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return Status::Internal(ErrnoMessage("open dir", dir));
    int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) return Status::Internal(ErrnoMessage("fsync dir", dir));
    return Status::OK();
  }
};

/// Write side of the fault shim: counts bytes ever appended through this
/// env to the matching file and fails (after a partial write) once the
/// budget is exhausted — the surviving prefix is the torn tail.
class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(std::unique_ptr<WritableFile> base, FaultPlan plan)
      : base_(std::move(base)), plan_(std::move(plan)) {}

  Status Append(const void* data, size_t n) override {
    if (plan_.fail_appends_after_bytes >= 0) {
      int64_t budget = plan_.fail_appends_after_bytes - written_;
      if (budget <= 0) {
        return Status::Internal("fault injection: write budget exhausted");
      }
      if (static_cast<int64_t>(n) > budget) {
        // Torn write: part of the record reaches the disk, then the
        // "crash" — exactly what a real power cut leaves behind.
        Status s = base_->Append(data, static_cast<size_t>(budget));
        written_ += budget;
        if (!s.ok()) return s;
        return Status::Internal("fault injection: torn write");
      }
    }
    Status s = base_->Append(data, n);
    if (s.ok()) written_ += static_cast<int64_t>(n);
    return s;
  }

  Status Sync() override { return base_->Sync(); }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultPlan plan_;
  int64_t written_ = 0;
};

class FaultReadableFile : public ReadableFile {
 public:
  FaultReadableFile(std::unique_ptr<ReadableFile> base, FaultPlan plan)
      : base_(std::move(base)), plan_(std::move(plan)) {}

  Result<size_t> ReadAt(uint64_t offset, void* buf, size_t n) override {
    RAR_ASSIGN_OR_RETURN(uint64_t size, Size());
    if (offset >= size) return size_t{0};
    if (n > size - offset) n = static_cast<size_t>(size - offset);
    if (plan_.max_read_chunk > 0 && n > plan_.max_read_chunk) {
      n = plan_.max_read_chunk;
    }
    RAR_ASSIGN_OR_RETURN(size_t got, base_->ReadAt(offset, buf, n));
    if (plan_.flip_byte_at >= 0) {
      uint64_t at = static_cast<uint64_t>(plan_.flip_byte_at);
      if (at >= offset && at < offset + got) {
        static_cast<uint8_t*>(buf)[at - offset] ^= plan_.flip_mask;
      }
    }
    return got;
  }

  Result<uint64_t> Size() override {
    RAR_ASSIGN_OR_RETURN(uint64_t size, base_->Size());
    if (plan_.visible_size_cap >= 0 &&
        size > static_cast<uint64_t>(plan_.visible_size_cap)) {
      size = static_cast<uint64_t>(plan_.visible_size_cap);
    }
    return size;
  }

 private:
  std::unique_ptr<ReadableFile> base_;
  FaultPlan plan_;
};

}  // namespace

PersistEnv* GetPosixEnv() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

Status ReadFileFully(PersistEnv* env, const std::string& path,
                     std::string* out) {
  RAR_ASSIGN_OR_RETURN(auto file, env->NewReadableFile(path));
  RAR_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  out->clear();
  out->resize(static_cast<size_t>(size));
  uint64_t off = 0;
  while (off < size) {
    RAR_ASSIGN_OR_RETURN(
        size_t got,
        file->ReadAt(off, &(*out)[static_cast<size_t>(off)],
                     static_cast<size_t>(size - off)));
    if (got == 0) {
      // The file shrank under us (or a size cap is in play): the bytes we
      // have are the bytes there are.
      out->resize(static_cast<size_t>(off));
      break;
    }
    off += got;
  }
  return Status::OK();
}

Status AtomicWriteFile(PersistEnv* env, const std::string& path,
                       const std::string& data) {
  const std::string tmp = path + ".tmp";
  RAR_ASSIGN_OR_RETURN(auto file, env->NewWritableFile(tmp, /*append=*/false));
  RAR_RETURN_NOT_OK(file->Append(data.data(), data.size()));
  RAR_RETURN_NOT_OK(file->Sync());
  RAR_RETURN_NOT_OK(file->Close());
  RAR_RETURN_NOT_OK(env->RenameFile(tmp, path));
  size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) {
    RAR_RETURN_NOT_OK(env->SyncDir(path.substr(0, slash)));
  }
  return Status::OK();
}

const FaultPlan* FaultInjectingEnv::MatchPlan(const std::string& path) const {
  const std::string base = Basename(path);
  for (const FaultPlan& p : plans_) {
    if (p.path_substring.empty() ||
        base.find(p.path_substring) != std::string::npos) {
      return &p;
    }
  }
  return nullptr;
}

Result<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewWritableFile(
    const std::string& path, bool append) {
  RAR_ASSIGN_OR_RETURN(auto base, base_->NewWritableFile(path, append));
  const FaultPlan* plan = MatchPlan(path);
  if (plan == nullptr) return std::move(base);
  return {std::unique_ptr<WritableFile>(
      new FaultWritableFile(std::move(base), *plan))};
}

Result<std::unique_ptr<ReadableFile>> FaultInjectingEnv::NewReadableFile(
    const std::string& path) {
  RAR_ASSIGN_OR_RETURN(auto base, base_->NewReadableFile(path));
  const FaultPlan* plan = MatchPlan(path);
  if (plan == nullptr) return std::move(base);
  return {std::unique_ptr<ReadableFile>(
      new FaultReadableFile(std::move(base), *plan))};
}

}  // namespace rar
