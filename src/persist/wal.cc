#include "persist/wal.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace rar {

std::string WalSegmentName(uint64_t first_sequence) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%020" PRIu64 ".log", first_sequence);
  return buf;
}

bool ParseWalSegmentName(const std::string& name, uint64_t* first_sequence) {
  if (name.size() < 9 || name.compare(0, 4, "wal-") != 0 ||
      name.compare(name.size() - 4, 4, ".log") != 0) {
    return false;
  }
  uint64_t seq = 0;
  for (size_t i = 4; i < name.size() - 4; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    seq = seq * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *first_sequence = seq;
  return true;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(
    PersistEnv* env, const std::string& dir, uint64_t next_sequence,
    const std::string& segment_path, WalWriterOptions options) {
  std::unique_ptr<WalWriter> w(
      new WalWriter(env, dir, next_sequence, options));
  std::lock_guard<std::mutex> lock(w->mu_);
  if (segment_path.empty()) {
    RAR_RETURN_NOT_OK(w->OpenSegmentLocked(next_sequence));
  } else {
    RAR_ASSIGN_OR_RETURN(w->file_,
                         env->NewWritableFile(segment_path, /*append=*/true));
    w->segment_path_ = segment_path;
  }
  return std::move(w);
}

Status WalWriter::OpenSegmentLocked(uint64_t first_sequence) {
  segment_path_ = dir_ + "/" + WalSegmentName(first_sequence);
  RAR_ASSIGN_OR_RETURN(file_,
                       env_->NewWritableFile(segment_path_, /*append=*/true));
  // Make the segment's directory entry crash-durable before any record
  // claims durability inside it.
  RAR_RETURN_NOT_OK(env_->SyncDir(dir_));
  return Status::OK();
}

uint64_t WalWriter::Append(WalRecordType type, std::string_view payload) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t seq = next_sequence_++;
  size_t before = pending_.size();
  EncodeFrame(seq, type, payload, &pending_);
  counters_.records += 1;
  counters_.bytes += pending_.size() - before;
  return seq;
}

Status WalWriter::WaitDurable(uint64_t sequence) {
  ScopedTimer commit_timer(options_.commit_ns);
  std::unique_lock<std::mutex> lock(mu_);
  if (options_.fsync_policy == FsyncPolicy::kAlways) {
    // Per-commit fsync: no leader batching. The mutex is held across the
    // write+fsync, so commits serialize and each one that is not already
    // durable pays its own fsync.
    if (!io_status_.ok()) return io_status_;
    if (durable_sequence_ >= sequence) return Status::OK();
    std::string batch = std::move(pending_);
    pending_.clear();
    const uint64_t batch_end = next_sequence_ - 1;
    counters_.commit_batches += 1;
    Status s;
    if (!batch.empty()) s = file_->Append(batch.data(), batch.size());
    if (s.ok()) {
      ScopedTimer fsync_timer(options_.fsync_ns);
      s = file_->Sync();
    }
    if (!s.ok()) {
      io_status_ = s;
      return s;
    }
    counters_.fsyncs += 1;
    durable_sequence_ = std::max(durable_sequence_, batch_end);
    return Status::OK();
  }
  bool led = false;
  while (true) {
    if (!io_status_.ok()) return io_status_;
    if (durable_sequence_ >= sequence) break;
    if (leader_active_) {
      // A leader is mid-fsync; its commit will cover us or we retry.
      counters_.commit_waiters += 1;
      cv_.wait(lock);
      continue;
    }
    // Become the commit leader: everything buffered so far rides along.
    leader_active_ = true;
    led = true;
    std::string batch = std::move(pending_);
    pending_.clear();
    uint64_t batch_end = next_sequence_ - 1;
    counters_.commit_batches += 1;
    lock.unlock();

    Status s;
    if (!batch.empty()) s = file_->Append(batch.data(), batch.size());
    if (s.ok() && options_.fsync_policy != FsyncPolicy::kNone) {
      ScopedTimer fsync_timer(options_.fsync_ns);
      s = file_->Sync();
    }

    lock.lock();
    leader_active_ = false;
    if (s.ok()) {
      if (options_.fsync_policy != FsyncPolicy::kNone) counters_.fsyncs += 1;
      durable_sequence_ = std::max(durable_sequence_, batch_end);
    } else {
      io_status_ = s;
    }
    cv_.notify_all();
  }
  (void)led;
  return Status::OK();
}

Status WalWriter::Flush() {
  uint64_t last;
  {
    std::lock_guard<std::mutex> lock(mu_);
    last = next_sequence_ - 1;
  }
  return WaitDurable(last);
}

Status WalWriter::Rotate() {
  RAR_RETURN_NOT_OK(Flush());
  std::lock_guard<std::mutex> lock(mu_);
  if (!io_status_.ok()) return io_status_;
  RAR_RETURN_NOT_OK(file_->Sync());
  RAR_RETURN_NOT_OK(file_->Close());
  return OpenSegmentLocked(next_sequence_);
}

uint64_t WalWriter::last_sequence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_sequence_ - 1;
}

std::string WalWriter::current_segment_path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segment_path_;
}

WalWriterCounters WalWriter::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

Result<WalReadResult> ReadWal(PersistEnv* env, const std::string& dir,
                              uint64_t after_sequence) {
  WalReadResult result;
  RAR_ASSIGN_OR_RETURN(std::vector<std::string> names, env->ListDir(dir));
  std::vector<std::pair<uint64_t, std::string>> segments;
  for (const std::string& name : names) {
    uint64_t first;
    if (ParseWalSegmentName(name, &first)) segments.emplace_back(first, name);
  }
  std::sort(segments.begin(), segments.end());

  uint64_t expected = after_sequence + 1;
  bool stopped = false;
  for (const auto& [first, name] : segments) {
    const std::string path = dir + "/" + name;
    std::string data;
    RAR_RETURN_NOT_OK(ReadFileFully(env, path, &data));
    if (stopped) {
      // A crash tears only the *last* appended segment, so bytes in any
      // segment past a stop point mean the log is damaged mid-history.
      if (!data.empty() && !result.damaged) {
        result.damaged = true;
        result.damage = "bytes present in segment " + name +
                        " past a torn/corrupt tail";
      }
      continue;
    }
    size_t offset = 0;
    size_t record_start = 0;
    WalRecord rec;
    while (record_start = offset,
           DecodeFrame(data, &offset, &rec) == FrameResult::kRecord) {
      if (rec.sequence < expected) continue;  // covered by the snapshot
      if (rec.sequence != expected) {
        // Intact frames that skip sequences mean records are *missing*
        // (a snapshot that covered them is gone or unreadable, or
        // segments were deleted) — not a tail tear. Report it instead
        // of silently dropping everything from here on.
        result.damaged = true;
        result.damage = "sequence gap in segment " + name + ": expected " +
                        std::to_string(expected) + ", found " +
                        std::to_string(rec.sequence);
        offset = record_start;
        stopped = true;
        break;
      }
      result.records.push_back(std::move(rec));
      rec = WalRecord{};
      ++expected;
    }
    if (offset < data.size() && !result.damaged) {
      // Bytes remain past the last intact frame: a torn or corrupt tail.
      result.truncated_tails += 1;
      stopped = true;
    }
    result.last_segment_path = path;
    result.last_segment_valid_bytes = offset;
  }
  return result;
}

}  // namespace rar
