// WAL frame format and payload codecs.
//
// Every durable record is one frame:
//
//   [u32 length][u32 crc32][u64 sequence][u8 type][payload...]
//
// `length` covers sequence + type + payload; `crc32` (polynomial
// 0xEDB88320, i.e. zlib's) covers the same bytes. All integers are
// little-endian fixed-width. A reader that hits a frame whose length
// overruns the file, or whose CRC fails, treats everything from that
// frame on as a torn tail: replay stops cleanly at the last intact
// record. Sequences are assigned monotonically at the engine's apply
// point, so "last intact record" is a well-defined prefix of history.
//
// Payloads reference schema objects by *name* (relation / domain /
// access-method names, constant spellings) — never by dense id — so a
// log replays correctly into any engine built over an identical schema,
// regardless of interner state.
#ifndef RAR_PERSIST_WAL_FORMAT_H_
#define RAR_PERSIST_WAL_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "access/access_method.h"
#include "query/query.h"
#include "relational/schema.h"
#include "relational/value.h"
#include "stream/stream.h"
#include "util/status.h"

namespace rar {

/// CRC-32 (reflected, polynomial 0xEDB88320) of `data`.
uint32_t Crc32(const void* data, size_t n);

/// \brief Appends fixed-width little-endian primitives to a string.
class BinWriter {
 public:
  explicit BinWriter(std::string* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) out_->push_back(static_cast<char>(v >> (8 * i)));
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) out_->push_back(static_cast<char>(v >> (8 * i)));
  }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_->append(s.data(), s.size());
  }

 private:
  std::string* out_;
};

/// \brief Bounds-checked reader over a byte span. Every getter returns a
/// ParseError instead of reading past the end, so corrupt payloads are
/// rejected, never over-read.
class BinReader {
 public:
  explicit BinReader(std::string_view data) : data_(data) {}

  Status U8(uint8_t* v);
  Status U32(uint32_t* v);
  Status U64(uint64_t* v);
  Status Str(std::string* v);
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// \brief Durable record kinds. Values are on-disk; never renumber.
enum class WalRecordType : uint8_t {
  kApply = 1,           ///< one ApplyResponse (access + response facts)
  kQueryRegister = 2,   ///< a direct RegisterQuery
  kStreamRegister = 3,  ///< a stream registration (query+options+fresh pool)
  kStreamCursor = 4,    ///< a subscriber acknowledgement (stream, sequence)
  // Serving-layer records (src/server/ over a durable session): the
  // session identity + per-session dedup state must survive a crash, or a
  // client retrying a request whose response was lost could double-apply
  // against the recovered engine.
  kSessionOpen = 5,    ///< a serving session opened: {session_id, nonce}
  kSessionRetire = 6,  ///< a serving session retired: {session_id}
  /// A mutation tagged with its originating {session_id, request_id} so
  /// replay rebuilds the dedup window. Payload = tag + the untagged
  /// record's payload.
  kApplyTagged = 7,
  kQueryRegisterTagged = 8,
  kStreamRegisterTagged = 9,
};

struct WalRecord {
  uint64_t sequence = 0;
  WalRecordType type = WalRecordType::kApply;
  std::string payload;
};

/// Appends one framed record to `out`.
void EncodeFrame(uint64_t sequence, WalRecordType type,
                 std::string_view payload, std::string* out);

enum class FrameResult {
  kRecord,  ///< a record was decoded; *offset advanced past it
  kEnd,     ///< clean end, torn tail, or CRC failure — stop reading
};

/// Decodes the frame at `*offset`. Never fails: anything that is not a
/// complete, CRC-clean frame is kEnd (the torn-tail contract).
FrameResult DecodeFrame(std::string_view data, size_t* offset, WalRecord* out);

// ---------------------------------------------------------------------------
// Payload codecs. Encoders assume in-memory objects are valid (they came
// from a live engine); decoders validate everything (they read disk).

void EncodeValue(const Schema& schema, Value v, BinWriter* w);
Status DecodeValue(const Schema& schema, BinReader* r, Value* out);

void EncodeUnionQuery(const Schema& schema, const UnionQuery& q, BinWriter* w);
Status DecodeUnionQuery(const Schema& schema, BinReader* r, UnionQuery* out);

void EncodeStreamOptions(const StreamOptions& o, BinWriter* w);
Status DecodeStreamOptions(BinReader* r, StreamOptions* out);

/// kApply payload: method name, binding values, response facts.
std::string EncodeApplyPayload(const Schema& schema, const AccessMethodSet& acs,
                               const Access& access,
                               const std::vector<Fact>& response);
Status DecodeApplyPayload(const Schema& schema, const AccessMethodSet& acs,
                          std::string_view payload, Access* access,
                          std::vector<Fact>* response);

/// kQueryRegister payload: the query.
std::string EncodeQueryRegisterPayload(const Schema& schema,
                                       const UnionQuery& q);
Status DecodeQueryRegisterPayload(const Schema& schema,
                                  std::string_view payload, UnionQuery* out);

/// kStreamRegister payload: query + options + the fresh-constant pool the
/// original registration minted (one (domain, spelling) pair per head slot
/// class, in slot-class order). Replay pre-seeds the instantiator with
/// these so recovered bindings use the *same* check constants.
struct StreamRegisterPayload {
  UnionQuery query;
  StreamOptions options;
  std::vector<std::pair<DomainId, std::string>> fresh_pool;
};
std::string EncodeStreamRegisterPayload(const Schema& schema,
                                        const StreamRegisterPayload& p);
Status DecodeStreamRegisterPayload(const Schema& schema,
                                   std::string_view payload,
                                   StreamRegisterPayload* out);

/// kStreamCursor payload: stream id + acknowledged sequence.
std::string EncodeStreamCursorPayload(uint32_t stream_id, uint64_t acked);
Status DecodeStreamCursorPayload(std::string_view payload, uint32_t* stream_id,
                                 uint64_t* acked);

/// kSessionOpen payload: session id + nonce.
std::string EncodeSessionOpenPayload(uint64_t session_id, uint64_t nonce);
Status DecodeSessionOpenPayload(std::string_view payload, uint64_t* session_id,
                                uint64_t* nonce);

/// kSessionRetire payload: session id.
std::string EncodeSessionRetirePayload(uint64_t session_id);
Status DecodeSessionRetirePayload(std::string_view payload,
                                  uint64_t* session_id);

/// k*Tagged payloads: a 16-byte {session_id, request_id} tag followed by
/// the untagged record's payload verbatim. Split here so each tagged
/// record reuses the existing payload codec for its body.
std::string EncodeTaggedPayload(uint64_t session_id, uint64_t request_id,
                                std::string_view inner);
Status SplitTaggedPayload(std::string_view payload, uint64_t* session_id,
                          uint64_t* request_id, std::string_view* inner);

}  // namespace rar

#endif  // RAR_PERSIST_WAL_FORMAT_H_
