// DedupWindow: a bounded per-session cache of completed request outcomes,
// the server half of the "at-least-once delivery, exactly-once effect"
// contract.
//
// A client that never saw a response cannot know whether its mutation
// landed, so it retries the *same* request id. The window answers the
// retry from the cached response without touching the engine — the
// mutation's effect happens exactly once even though the request arrived
// twice. Eviction is FIFO by completion order; `completed_through()`
// tracks the highest id ever evicted, so a duplicate that is both missing
// from the window *and* at-or-below the watermark is provably a stale
// replay (its original completed long ago) and must be rejected rather
// than re-applied.
//
// Soundness of the bound: channels are single-in-flight per session, so a
// live retry always targets the most recently completed (or never
// completed) id — a window of one entry already covers it. A larger
// window additionally absorbs reordered duplicates a lossy transport
// replays from further back. The unsound alternative — treating an
// evicted id as fresh — would double-apply; kStale exists so that path is
// closed.
//
// Entries store the encoded response payload plus its message type, so
// the hit path can also verify the duplicate asks for the same operation.
#ifndef RAR_PERSIST_DEDUP_H_
#define RAR_PERSIST_DEDUP_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

namespace rar {

class DedupWindow {
 public:
  /// \brief One cached outcome.
  struct Entry {
    uint8_t type = 0;  ///< wire MessageType byte of the original request
    std::string response_payload;
  };

  enum class Verdict {
    kFresh,  ///< never seen: execute, then Record
    kHit,    ///< cached: answer from *entry, do not execute
    kStale,  ///< evicted long ago: reject, never re-execute
  };

  explicit DedupWindow(size_t capacity = 256) : capacity_(capacity) {}

  /// Classifies `request_id`; on kHit `*entry` points at the cached
  /// outcome (valid until the next Record).
  Verdict Probe(uint64_t request_id, const Entry** entry) const {
    auto it = entries_.find(request_id);
    if (it != entries_.end()) {
      if (entry != nullptr) *entry = &it->second;
      return Verdict::kHit;
    }
    if (request_id <= evicted_watermark_ && evicted_watermark_ != 0) {
      return Verdict::kStale;
    }
    return Verdict::kFresh;
  }

  /// Records a completed request's outcome (call only after kFresh).
  void Record(uint64_t request_id, uint8_t type, std::string response) {
    if (capacity_ == 0) return;
    auto [it, inserted] =
        entries_.emplace(request_id, Entry{type, std::move(response)});
    if (!inserted) return;
    order_.push_back(request_id);
    while (order_.size() > capacity_) {
      const uint64_t evicted = order_.front();
      order_.pop_front();
      entries_.erase(evicted);
      if (evicted > evicted_watermark_) evicted_watermark_ = evicted;
    }
  }

  size_t size() const { return order_.size(); }
  size_t capacity() const { return capacity_; }
  /// Highest request id ever evicted (0 = nothing evicted yet).
  uint64_t evicted_watermark() const { return evicted_watermark_; }

  /// Entries oldest-first, for snapshot serialization.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (uint64_t id : order_) {
      auto it = entries_.find(id);
      fn(id, it->second);
    }
  }

  /// Snapshot restore: re-seeds the watermark before entries re-Record.
  void RestoreWatermark(uint64_t watermark) { evicted_watermark_ = watermark; }

 private:
  size_t capacity_;
  std::unordered_map<uint64_t, Entry> entries_;
  std::deque<uint64_t> order_;  ///< completion order, for FIFO eviction
  uint64_t evicted_watermark_ = 0;
};

}  // namespace rar

#endif  // RAR_PERSIST_DEDUP_H_
