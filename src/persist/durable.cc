#include "persist/durable.h"

#include <algorithm>
#include <utility>

#include "persist/wal_format.h"

namespace rar {

namespace {

std::string Basename(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

// Wire request-type bytes the tagged WAL records correspond to. These
// mirror server/protocol.h's MessageType (wire-stable, never renumbered);
// they are duplicated here so the persist layer does not depend on the
// serving layer it backs.
constexpr uint8_t kWireRegisterQueryByte = 2;
constexpr uint8_t kWireRegisterStreamByte = 3;
constexpr uint8_t kWireApplyByte = 4;

std::string EncodeCachedApplyResult(uint32_t facts_added,
                                    uint64_t wal_sequence) {
  // Byte-identical to the wire's EncodeApplyResult, so the server can
  // serve a cached outcome verbatim as the kApplyOk payload.
  std::string out;
  BinWriter w(&out);
  w.U32(facts_added);
  w.U64(wal_sequence);
  return out;
}

std::string EncodeCachedHandle(uint32_t handle) {
  // Byte-identical to the wire's register response payload (u32 handle).
  std::string out;
  BinWriter w(&out);
  w.U32(handle);
  return out;
}

}  // namespace

Result<std::unique_ptr<DurableSession>> DurableSession::Open(
    const Schema& schema, const AccessMethodSet& acs,
    const Configuration& bootstrap, const std::string& dir,
    PersistOptions options, EngineOptions engine_options) {
  PersistEnv* env = options.env != nullptr ? options.env : GetPosixEnv();
  RAR_RETURN_NOT_OK(env->CreateDir(dir));
  std::unique_ptr<DurableSession> s(
      new DurableSession(schema, acs, env, dir, options));

  // A crash inside AtomicWriteFile (between creating `*.tmp` and the
  // rename) strands a temp file no other path ever matches; sweep them
  // here so they cannot accumulate across crash cycles.
  {
    RAR_ASSIGN_OR_RETURN(std::vector<std::string> names, env->ListDir(dir));
    bool removed = false;
    for (const std::string& name : names) {
      if (name.size() > 4 &&
          name.compare(name.size() - 4, 4, ".tmp") == 0) {
        RAR_RETURN_NOT_OK(env->RemoveFile(dir + "/" + name));
        removed = true;
      }
    }
    if (removed) RAR_RETURN_NOT_OK(env->SyncDir(dir));
  }

  SnapshotState snap;
  bool have_snapshot = false;
  RAR_RETURN_NOT_OK(
      LoadLatestSnapshot(env, dir, schema, acs, &snap, &have_snapshot));

  // Rebuild the configuration in version-exact order: every active-domain
  // value as a seed first (fixing each domain's first-seen order), then
  // the facts in insertion order. The resulting VersionVector equals the
  // snapshotted engine's.
  Configuration conf(&schema);
  if (have_snapshot) {
    for (const auto& [domain, values] : snap.adom) {
      for (Value v : values) conf.AddSeedConstant(v, domain);
    }
    for (const auto& [rel, facts] : snap.facts) {
      for (const Fact& f : facts) conf.AddFact(f);
    }
  } else {
    conf = bootstrap;
  }
  s->engine_ = std::make_unique<RelevanceEngine>(schema, acs, std::move(conf),
                                                 engine_options);
  s->registry_ = std::make_unique<RelevanceStreamRegistry>(s->engine_.get());
  if (have_snapshot) {
    s->engine_->RestorePerformed(snap.performed);
    for (const UnionQuery& q : snap.queries) {
      RAR_ASSIGN_OR_RETURN(QueryId qid, s->engine_->RegisterQuery(q));
      s->direct_queries_.push_back(q);
      s->direct_qids_.push_back(qid);
    }
    for (SnapshotStreamState& st : snap.streams) {
      StreamRecoveryInfo info;
      info.fresh_pool = std::move(st.fresh_pool);
      info.quiet = true;
      info.next_sequence = st.next_sequence;
      info.acked_sequence = st.acked_sequence;
      info.evicted_through = st.evicted_through;
      info.retained_events = std::move(st.retained_events);
      RAR_ASSIGN_OR_RETURN(
          StreamId sid,
          s->registry_->RegisterRecovered(st.query, st.options, info));
      (void)sid;  // ids are dense registration order, restored exactly
    }
    for (SnapshotSessionState& ss : snap.sessions) {
      DurableServerSession ds;
      ds.nonce = ss.nonce;
      ds.query_regs = std::move(ss.query_regs);
      ds.streams.assign(ss.streams.begin(), ss.streams.end());
      ds.dedup = DedupWindow(options.dedup_window);
      ds.dedup.RestoreWatermark(ss.dedup_watermark);
      for (SnapshotSessionState::DedupEntry& e : ss.dedup) {
        ds.dedup.Record(e.request_id, e.type, std::move(e.response_payload));
      }
      s->server_sessions_.emplace(ss.id, std::move(ds));
    }
    s->recovery_.from_snapshot = true;
    s->recovery_.snapshot_sequence = snap.last_sequence;
  }

  // Replay the log tail. The hook is not attached yet, so replayed applies
  // are not re-logged; the registry *is* attached, so stream events
  // regenerate in original order.
  RAR_ASSIGN_OR_RETURN(WalReadResult log,
                       ReadWal(env, dir, have_snapshot ? snap.last_sequence
                                                       : 0));
  if (log.damaged) {
    // The log holds real records replay cannot bridge to (typically: the
    // snapshot that covered the missing prefix is gone or unreadable).
    // Truncating here would silently destroy durable data — refuse.
    return Status::Internal(
        "WAL recovery refused for " + dir + ": " + log.damage +
        (have_snapshot
             ? ""
             : "; no readable snapshot covers the missing records"));
  }
  for (const WalRecord& rec : log.records) {
    RAR_RETURN_NOT_OK(s->ReplayRecord(rec));
  }
  s->recovery_.replayed_records = log.records.size();
  s->recovery_.truncated_tails = log.truncated_tails;

  const uint64_t next_sequence =
      (log.records.empty() ? (have_snapshot ? snap.last_sequence : 0)
                           : log.records.back().sequence) +
      1;

  if (!log.last_segment_path.empty()) {
    // Cut the torn tail so the writer appends after the last intact
    // record, and drop stray segments past the one replay stopped in
    // (after a sequence gap everything beyond is untrusted; zero-padded
    // names sort by sequence).
    RAR_RETURN_NOT_OK(
        env->Truncate(log.last_segment_path, log.last_segment_valid_bytes));
    const std::string last_name = Basename(log.last_segment_path);
    RAR_ASSIGN_OR_RETURN(std::vector<std::string> names, env->ListDir(dir));
    bool removed = false;
    for (const std::string& name : names) {
      uint64_t first = 0;
      if (ParseWalSegmentName(name, &first) && name > last_name) {
        RAR_RETURN_NOT_OK(env->RemoveFile(dir + "/" + name));
        removed = true;
      }
    }
    if (removed) RAR_RETURN_NOT_OK(env->SyncDir(dir));
  }

  WalWriterOptions wopts;
  wopts.fsync_policy = options.fsync_policy;
  wopts.fsync_ns = &s->engine_->obs().wal_fsync_ns;
  wopts.commit_ns = &s->engine_->obs().wal_commit_ns;
  RAR_ASSIGN_OR_RETURN(s->wal_, WalWriter::Open(env, dir, next_sequence,
                                                log.last_segment_path, wopts));

  s->engine_->SetPersistHook(s.get());
  s->engine_->AddApplyListener(s.get());
  return s;
}

DurableSession::~DurableSession() {
  if (engine_ != nullptr) {
    engine_->SetPersistHook(nullptr);
    engine_->RemoveApplyListener(this);
  }
  if (wal_ != nullptr) {
    (void)wal_->Flush();  // best effort; Close()/Flush() report errors
  }
}

Status DurableSession::ReplayRecord(const WalRecord& rec) {
  switch (rec.type) {
    case WalRecordType::kApply: {
      Access access;
      std::vector<Fact> response;
      RAR_RETURN_NOT_OK(DecodeApplyPayload(*schema_, *acs_, rec.payload,
                                           &access, &response));
      RAR_ASSIGN_OR_RETURN(int added, engine_->ApplyResponse(access, response));
      recovery_.replayed_facts += static_cast<uint64_t>(added);
      return Status::OK();
    }
    case WalRecordType::kQueryRegister: {
      UnionQuery q;
      RAR_RETURN_NOT_OK(DecodeQueryRegisterPayload(*schema_, rec.payload, &q));
      RAR_ASSIGN_OR_RETURN(QueryId qid, engine_->RegisterQuery(q));
      direct_queries_.push_back(std::move(q));
      direct_qids_.push_back(qid);
      return Status::OK();
    }
    case WalRecordType::kStreamRegister: {
      StreamRegisterPayload p;
      RAR_RETURN_NOT_OK(
          DecodeStreamRegisterPayload(*schema_, rec.payload, &p));
      StreamRecoveryInfo info;  // !quiet: events regenerate from sequence 1
      info.fresh_pool.reserve(p.fresh_pool.size());
      for (const auto& [domain, spelling] : p.fresh_pool) {
        info.fresh_pool.push_back(
            TypedValue{schema_->InternConstant(spelling), domain});
      }
      RAR_ASSIGN_OR_RETURN(
          StreamId id, registry_->RegisterRecovered(p.query, p.options, info));
      (void)id;
      return Status::OK();
    }
    case WalRecordType::kStreamCursor: {
      uint32_t sid = 0;
      uint64_t acked = 0;
      RAR_RETURN_NOT_OK(DecodeStreamCursorPayload(rec.payload, &sid, &acked));
      return registry_->Acknowledge(sid, acked);
    }
    case WalRecordType::kSessionOpen: {
      uint64_t id = 0, nonce = 0;
      RAR_RETURN_NOT_OK(DecodeSessionOpenPayload(rec.payload, &id, &nonce));
      DurableServerSession ds;
      ds.nonce = nonce;
      ds.dedup = DedupWindow(options_.dedup_window);
      server_sessions_[id] = std::move(ds);
      return Status::OK();
    }
    case WalRecordType::kSessionRetire: {
      uint64_t id = 0;
      RAR_RETURN_NOT_OK(DecodeSessionRetirePayload(rec.payload, &id));
      server_sessions_.erase(id);
      return Status::OK();
    }
    case WalRecordType::kApplyTagged: {
      uint64_t session_id = 0, request_id = 0;
      std::string_view inner;
      RAR_RETURN_NOT_OK(
          SplitTaggedPayload(rec.payload, &session_id, &request_id, &inner));
      Access access;
      std::vector<Fact> response;
      RAR_RETURN_NOT_OK(
          DecodeApplyPayload(*schema_, *acs_, inner, &access, &response));
      RAR_ASSIGN_OR_RETURN(int added, engine_->ApplyResponse(access, response));
      recovery_.replayed_facts += static_cast<uint64_t>(added);
      auto it = server_sessions_.find(session_id);
      if (it != server_sessions_.end()) {
        // Re-record the outcome exactly as the original served it, so a
        // retry that straddles the crash still answers from the window.
        it->second.dedup.Record(
            request_id, kWireApplyByte,
            EncodeCachedApplyResult(static_cast<uint32_t>(added),
                                    rec.sequence));
      }
      return Status::OK();
    }
    case WalRecordType::kQueryRegisterTagged: {
      uint64_t session_id = 0, request_id = 0;
      std::string_view inner;
      RAR_RETURN_NOT_OK(
          SplitTaggedPayload(rec.payload, &session_id, &request_id, &inner));
      UnionQuery q;
      RAR_RETURN_NOT_OK(DecodeQueryRegisterPayload(*schema_, inner, &q));
      RAR_ASSIGN_OR_RETURN(QueryId qid, engine_->RegisterQuery(q));
      direct_queries_.push_back(std::move(q));
      direct_qids_.push_back(qid);
      auto it = server_sessions_.find(session_id);
      if (it != server_sessions_.end()) {
        const uint32_t handle =
            static_cast<uint32_t>(it->second.query_regs.size());
        it->second.query_regs.push_back(
            static_cast<uint32_t>(direct_qids_.size() - 1));
        it->second.dedup.Record(request_id, kWireRegisterQueryByte,
                                EncodeCachedHandle(handle));
      }
      return Status::OK();
    }
    case WalRecordType::kStreamRegisterTagged: {
      uint64_t session_id = 0, request_id = 0;
      std::string_view inner;
      RAR_RETURN_NOT_OK(
          SplitTaggedPayload(rec.payload, &session_id, &request_id, &inner));
      StreamRegisterPayload p;
      RAR_RETURN_NOT_OK(DecodeStreamRegisterPayload(*schema_, inner, &p));
      StreamRecoveryInfo info;  // !quiet: events regenerate from sequence 1
      info.fresh_pool.reserve(p.fresh_pool.size());
      for (const auto& [domain, spelling] : p.fresh_pool) {
        info.fresh_pool.push_back(
            TypedValue{schema_->InternConstant(spelling), domain});
      }
      RAR_ASSIGN_OR_RETURN(
          StreamId id, registry_->RegisterRecovered(p.query, p.options, info));
      auto it = server_sessions_.find(session_id);
      if (it != server_sessions_.end()) {
        const uint32_t handle = static_cast<uint32_t>(it->second.streams.size());
        it->second.streams.push_back(id);
        it->second.dedup.Record(request_id, kWireRegisterStreamByte,
                                EncodeCachedHandle(handle));
      }
      return Status::OK();
    }
  }
  return Status::ParseError("unknown WAL record type");
}

Result<int> DurableSession::Apply(const Access& access,
                                  const std::vector<Fact>& response) {
  std::lock_guard<std::mutex> lock(session_mu_);
  // The engine calls back into LogApply inside its critical section and
  // WaitDurable before notifying listeners (see PersistHook in engine.h).
  RAR_ASSIGN_OR_RETURN(int added, engine_->ApplyResponse(access, response));
  records_since_snapshot_ += 1;
  RAR_RETURN_NOT_OK(MaybeAutoSnapshotLocked());
  return added;
}

Result<QueryId> DurableSession::RegisterQuery(const UnionQuery& query) {
  std::lock_guard<std::mutex> lock(session_mu_);
  // Mutate first, log on success: the WAL then holds only registrations
  // replay can repeat verbatim. A crash between the two loses a
  // registration the caller was never told succeeded.
  RAR_ASSIGN_OR_RETURN(QueryId qid, engine_->RegisterQuery(query));
  uint64_t seq = wal_->Append(WalRecordType::kQueryRegister,
                              EncodeQueryRegisterPayload(*schema_, query));
  RAR_RETURN_NOT_OK(wal_->WaitDurable(seq));
  direct_queries_.push_back(query);
  direct_qids_.push_back(qid);
  records_since_snapshot_ += 1;
  return qid;
}

Result<StreamId> DurableSession::RegisterStream(const UnionQuery& query,
                                                StreamOptions options) {
  std::lock_guard<std::mutex> lock(session_mu_);
  options.retain_events = true;  // persisted cursors need retained events
  RAR_ASSIGN_OR_RETURN(StreamId id, registry_->Register(query, options));
  RAR_ASSIGN_OR_RETURN(RelevanceStreamRegistry::StreamPersistState ps,
                       registry_->DumpPersistState(id));
  StreamRegisterPayload p;
  p.query = query;
  p.options = options;
  p.fresh_pool.reserve(ps.fresh_pool.size());
  for (const TypedValue& tv : ps.fresh_pool) {
    p.fresh_pool.emplace_back(tv.domain, schema_->ConstantSpelling(tv.value));
  }
  uint64_t seq = wal_->Append(WalRecordType::kStreamRegister,
                              EncodeStreamRegisterPayload(*schema_, p));
  RAR_RETURN_NOT_OK(wal_->WaitDurable(seq));
  records_since_snapshot_ += 1;
  return id;
}

Status DurableSession::Acknowledge(StreamId id, uint64_t upto) {
  std::lock_guard<std::mutex> lock(session_mu_);
  RAR_RETURN_NOT_OK(registry_->Acknowledge(id, upto));
  uint64_t seq = wal_->Append(WalRecordType::kStreamCursor,
                              EncodeStreamCursorPayload(id, upto));
  RAR_RETURN_NOT_OK(wal_->WaitDurable(seq));
  records_since_snapshot_ += 1;
  return Status::OK();
}

Status DurableSession::Flush() {
  std::lock_guard<std::mutex> lock(session_mu_);
  return wal_->Flush();
}

Status DurableSession::OpenServerSession(uint64_t session_id, uint64_t nonce) {
  std::lock_guard<std::mutex> lock(session_mu_);
  uint64_t seq = wal_->Append(WalRecordType::kSessionOpen,
                              EncodeSessionOpenPayload(session_id, nonce));
  RAR_RETURN_NOT_OK(wal_->WaitDurable(seq));
  DurableServerSession ds;
  ds.nonce = nonce;
  ds.dedup = DedupWindow(options_.dedup_window);
  server_sessions_[session_id] = std::move(ds);
  records_since_snapshot_ += 1;
  return Status::OK();
}

Status DurableSession::RetireServerSession(uint64_t session_id) {
  std::lock_guard<std::mutex> lock(session_mu_);
  if (server_sessions_.erase(session_id) == 0) return Status::OK();
  uint64_t seq = wal_->Append(WalRecordType::kSessionRetire,
                              EncodeSessionRetirePayload(session_id));
  RAR_RETURN_NOT_OK(wal_->WaitDurable(seq));
  records_since_snapshot_ += 1;
  return Status::OK();
}

std::vector<DurableSession::RecoveredServerSession>
DurableSession::server_sessions() const {
  std::lock_guard<std::mutex> lock(session_mu_);
  std::vector<RecoveredServerSession> out;
  out.reserve(server_sessions_.size());
  for (const auto& [id, s] : server_sessions_) {
    RecoveredServerSession r;
    r.id = id;
    r.nonce = s.nonce;
    r.query_regs = s.query_regs;
    r.streams = s.streams;
    out.push_back(std::move(r));
  }
  return out;
}

Result<DurableSession::TaggedOutcome> DurableSession::ApplyTagged(
    uint64_t session_id, uint64_t request_id, const Access& access,
    const std::vector<Fact>& response) {
  std::lock_guard<std::mutex> lock(session_mu_);
  auto it = server_sessions_.find(session_id);
  if (it == server_sessions_.end()) {
    return Status::FailedPrecondition("unknown durable serving session " +
                                      std::to_string(session_id));
  }
  DedupWindow& win = it->second.dedup;
  const DedupWindow::Entry* cached = nullptr;
  switch (win.Probe(request_id, &cached)) {
    case DedupWindow::Verdict::kHit: {
      TaggedOutcome o;
      o.kind = TaggedOutcome::Kind::kHit;
      o.type = cached->type;
      o.response = cached->response_payload;
      return o;
    }
    case DedupWindow::Verdict::kStale: {
      TaggedOutcome o;
      o.kind = TaggedOutcome::Kind::kStale;
      return o;
    }
    case DedupWindow::Verdict::kFresh:
      break;
  }
  // The engine calls back into LogApply inside its critical section (same
  // thread); the tag rides this stack slot so the WAL record carries it.
  const std::pair<uint64_t, uint64_t> tag{session_id, request_id};
  pending_apply_tag_ = &tag;
  Result<int> added = engine_->ApplyResponse(access, response);
  pending_apply_tag_ = nullptr;
  RAR_RETURN_NOT_OK(added.status());
  TaggedOutcome o;
  o.kind = TaggedOutcome::Kind::kFresh;
  o.type = kWireApplyByte;
  o.facts_added = *added;
  o.response = EncodeCachedApplyResult(static_cast<uint32_t>(*added),
                                       wal_->last_sequence());
  win.Record(request_id, kWireApplyByte, o.response);
  records_since_snapshot_ += 1;
  RAR_RETURN_NOT_OK(MaybeAutoSnapshotLocked());
  return o;
}

Result<DurableSession::TaggedOutcome> DurableSession::RegisterQueryTagged(
    uint64_t session_id, uint64_t request_id, const UnionQuery& query) {
  std::lock_guard<std::mutex> lock(session_mu_);
  auto it = server_sessions_.find(session_id);
  if (it == server_sessions_.end()) {
    return Status::FailedPrecondition("unknown durable serving session " +
                                      std::to_string(session_id));
  }
  DedupWindow& win = it->second.dedup;
  const DedupWindow::Entry* cached = nullptr;
  switch (win.Probe(request_id, &cached)) {
    case DedupWindow::Verdict::kHit: {
      TaggedOutcome o;
      o.kind = TaggedOutcome::Kind::kHit;
      o.type = cached->type;
      o.response = cached->response_payload;
      return o;
    }
    case DedupWindow::Verdict::kStale: {
      TaggedOutcome o;
      o.kind = TaggedOutcome::Kind::kStale;
      return o;
    }
    case DedupWindow::Verdict::kFresh:
      break;
  }
  RAR_ASSIGN_OR_RETURN(QueryId qid, engine_->RegisterQuery(query));
  uint64_t seq = wal_->Append(
      WalRecordType::kQueryRegisterTagged,
      EncodeTaggedPayload(session_id, request_id,
                          EncodeQueryRegisterPayload(*schema_, query)));
  RAR_RETURN_NOT_OK(wal_->WaitDurable(seq));
  direct_queries_.push_back(query);
  direct_qids_.push_back(qid);
  TaggedOutcome o;
  o.kind = TaggedOutcome::Kind::kFresh;
  o.type = kWireRegisterQueryByte;
  o.query_id = qid;
  o.handle = static_cast<uint32_t>(it->second.query_regs.size());
  it->second.query_regs.push_back(
      static_cast<uint32_t>(direct_qids_.size() - 1));
  o.response = EncodeCachedHandle(o.handle);
  win.Record(request_id, kWireRegisterQueryByte, o.response);
  records_since_snapshot_ += 1;
  return o;
}

Result<DurableSession::TaggedOutcome> DurableSession::RegisterStreamTagged(
    uint64_t session_id, uint64_t request_id, const UnionQuery& query,
    StreamOptions options) {
  std::lock_guard<std::mutex> lock(session_mu_);
  auto it = server_sessions_.find(session_id);
  if (it == server_sessions_.end()) {
    return Status::FailedPrecondition("unknown durable serving session " +
                                      std::to_string(session_id));
  }
  DedupWindow& win = it->second.dedup;
  const DedupWindow::Entry* cached = nullptr;
  switch (win.Probe(request_id, &cached)) {
    case DedupWindow::Verdict::kHit: {
      TaggedOutcome o;
      o.kind = TaggedOutcome::Kind::kHit;
      o.type = cached->type;
      o.response = cached->response_payload;
      return o;
    }
    case DedupWindow::Verdict::kStale: {
      TaggedOutcome o;
      o.kind = TaggedOutcome::Kind::kStale;
      return o;
    }
    case DedupWindow::Verdict::kFresh:
      break;
  }
  options.retain_events = true;  // persisted cursors need retained events
  RAR_ASSIGN_OR_RETURN(StreamId id, registry_->Register(query, options));
  RAR_ASSIGN_OR_RETURN(RelevanceStreamRegistry::StreamPersistState ps,
                       registry_->DumpPersistState(id));
  StreamRegisterPayload p;
  p.query = query;
  p.options = options;
  p.fresh_pool.reserve(ps.fresh_pool.size());
  for (const TypedValue& tv : ps.fresh_pool) {
    p.fresh_pool.emplace_back(tv.domain, schema_->ConstantSpelling(tv.value));
  }
  uint64_t seq = wal_->Append(
      WalRecordType::kStreamRegisterTagged,
      EncodeTaggedPayload(session_id, request_id,
                          EncodeStreamRegisterPayload(*schema_, p)));
  RAR_RETURN_NOT_OK(wal_->WaitDurable(seq));
  TaggedOutcome o;
  o.kind = TaggedOutcome::Kind::kFresh;
  o.type = kWireRegisterStreamByte;
  o.stream_id = id;
  o.handle = static_cast<uint32_t>(it->second.streams.size());
  it->second.streams.push_back(id);
  o.response = EncodeCachedHandle(o.handle);
  win.Record(request_id, kWireRegisterStreamByte, o.response);
  records_since_snapshot_ += 1;
  return o;
}

Status DurableSession::WriteSnapshot() {
  std::lock_guard<std::mutex> lock(session_mu_);
  return WriteSnapshotLocked();
}

Status DurableSession::WriteSnapshotLocked() {
  // Everything logged must be durable before the snapshot claims to cover
  // it (the snapshot's last_sequence authorizes segment deletion).
  RAR_RETURN_NOT_OK(wal_->Flush());
  SnapshotState st;
  st.last_sequence = wal_->last_sequence();
  Configuration conf = engine_->SnapshotConfig();
  for (size_t d = 0; d < schema_->num_domains(); ++d) {
    std::vector<Value> values =
        conf.AdomOfDomain(static_cast<DomainId>(d)).ToVector();
    if (!values.empty()) {
      st.adom.emplace_back(static_cast<DomainId>(d), std::move(values));
    }
  }
  for (size_t r = 0; r < schema_->num_relations(); ++r) {
    std::vector<Fact> facts =
        conf.FactsOf(static_cast<RelationId>(r)).ToVector();
    if (!facts.empty()) {
      st.facts.emplace_back(static_cast<RelationId>(r), std::move(facts));
    }
  }
  st.performed = engine_->PerformedAccesses();
  st.queries = direct_queries_;
  const size_t n = registry_->num_streams();
  st.streams.reserve(n);
  for (StreamId id = 0; id < n; ++id) {
    RAR_ASSIGN_OR_RETURN(RelevanceStreamRegistry::StreamPersistState ps,
                         registry_->DumpPersistState(id));
    SnapshotStreamState ss;
    ss.query = std::move(ps.query);
    ss.options = ps.options;
    ss.fresh_pool = std::move(ps.fresh_pool);
    ss.next_sequence = ps.next_sequence;
    ss.acked_sequence = ps.acked_sequence;
    ss.evicted_through = ps.evicted_through;
    ss.retained_events = std::move(ps.retained_events);
    st.streams.push_back(std::move(ss));
  }
  st.sessions.reserve(server_sessions_.size());
  for (const auto& [id, sess] : server_sessions_) {
    SnapshotSessionState ss;
    ss.id = id;
    ss.nonce = sess.nonce;
    ss.query_regs = sess.query_regs;
    ss.streams.assign(sess.streams.begin(), sess.streams.end());
    ss.dedup_watermark = sess.dedup.evicted_watermark();
    sess.dedup.ForEach([&ss](uint64_t rid, const DedupWindow::Entry& e) {
      ss.dedup.push_back({rid, e.type, e.response_payload});
    });
    st.sessions.push_back(std::move(ss));
  }
  uint64_t bytes = 0;
  RAR_RETURN_NOT_OK(
      WriteSnapshotFile(env_, dir_, *schema_, *acs_, st, &bytes));
  snapshots_written_ += 1;
  snapshot_bytes_ += bytes;

  // Seal the log at the snapshot boundary, then clean up — keeping a
  // one-deep fallback chain: the previous snapshot survives, along with
  // every WAL segment holding records past it, so recovery from a
  // corrupt newest image degrades to the older image plus a longer
  // replay instead of data loss. Only state the fallback also covers is
  // deleted. A crash mid-cleanup is safe: load walks snapshots
  // newest-first and replay skips covered records.
  RAR_RETURN_NOT_OK(wal_->Rotate());
  RAR_ASSIGN_OR_RETURN(std::vector<std::string> names, env_->ListDir(dir_));
  uint64_t prev_covered = 0;  // newest older snapshot = the fallback image
  for (const std::string& name : names) {
    uint64_t covered = 0;
    if (ParseSnapshotFileName(name, &covered) &&
        covered < st.last_sequence && covered > prev_covered) {
      prev_covered = covered;
    }
  }
  std::vector<std::pair<uint64_t, std::string>> segments;
  for (const std::string& name : names) {
    uint64_t first = 0;
    if (ParseWalSegmentName(name, &first)) segments.emplace_back(first, name);
  }
  std::sort(segments.begin(), segments.end());
  bool removed = false;
  // A segment ends where the next one starts, so it is deletable once
  // the next segment's first sequence is <= prev_covered+1: every record
  // in it is then covered by the fallback image too. With no previous
  // snapshot (prev_covered == 0) nothing qualifies — the full log *is*
  // the fallback. The just-rotated segment is last and never deletable.
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i + 1].first <= prev_covered + 1) {
      RAR_RETURN_NOT_OK(env_->RemoveFile(dir_ + "/" + segments[i].second));
      removed = true;
    }
  }
  for (const std::string& name : names) {
    uint64_t covered = 0;
    if (ParseSnapshotFileName(name, &covered) && covered < prev_covered) {
      RAR_RETURN_NOT_OK(env_->RemoveFile(dir_ + "/" + name));
      removed = true;
    }
  }
  if (removed) RAR_RETURN_NOT_OK(env_->SyncDir(dir_));
  records_since_snapshot_ = 0;
  return Status::OK();
}

Status DurableSession::MaybeAutoSnapshotLocked() {
  if (options_.snapshot_every_records == 0 ||
      records_since_snapshot_ < options_.snapshot_every_records) {
    return Status::OK();
  }
  return WriteSnapshotLocked();
}

uint64_t DurableSession::LogApply(const Access& access,
                                  const std::vector<Fact>& response) {
  std::string payload = EncodeApplyPayload(*schema_, *acs_, access, response);
  if (pending_apply_tag_ != nullptr) {
    return wal_->Append(
        WalRecordType::kApplyTagged,
        EncodeTaggedPayload(pending_apply_tag_->first,
                            pending_apply_tag_->second, payload));
  }
  return wal_->Append(WalRecordType::kApply, payload);
}

Status DurableSession::WaitDurable(uint64_t sequence) {
  return wal_->WaitDurable(sequence);
}

void DurableSession::ContributeStats(EngineStats* stats) const {
  WalWriterCounters c = wal_->counters();
  stats->wal_records += c.records;
  stats->wal_bytes += c.bytes;
  stats->wal_fsyncs += c.fsyncs;
  stats->wal_commit_batches += c.commit_batches;
  stats->wal_commit_waiters += c.commit_waiters;
  std::lock_guard<std::mutex> lock(session_mu_);
  stats->snapshots_written += snapshots_written_;
  stats->snapshot_bytes += snapshot_bytes_;
  stats->replay_records += recovery_.replayed_records;
  stats->replay_facts += recovery_.replayed_facts;
  stats->wal_truncated_tails += recovery_.truncated_tails;
}

}  // namespace rar
