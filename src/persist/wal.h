// Write-ahead log: segment files of framed records, group-commit fsync.
//
// A log directory holds segments `wal-<firstseq>.log` (zero-padded, so
// name order is sequence order). The writer appends frames to the newest
// segment; `Rotate` seals it and starts the next (the snapshot protocol
// rotates so every pre-snapshot segment can be deleted whole). Records
// are assigned sequences at Append time — under the engine's apply locks,
// so WAL order is consistent with every engine serialization — and become
// durable in batches: the first WaitDurable caller becomes the commit
// leader, writes everything buffered, fsyncs once, and wakes the group.
//
// The reader tolerates exactly the failures the format is built for: a
// final frame cut short, CRC-corrupted, or length-overrunning is a torn
// tail — replay stops at the last intact record and the writer truncates
// the garbage before appending again. It never poisons replay.
#ifndef RAR_PERSIST_WAL_H_
#define RAR_PERSIST_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "persist/io.h"
#include "persist/wal_format.h"
#include "util/status.h"

namespace rar {

/// When appended records reach stable storage.
enum class FsyncPolicy : uint8_t {
  kNone,  ///< OS write only; a machine crash can lose the tail
  /// Every WaitDurable whose sequence is not yet durable performs its
  /// own write+fsync under the writer mutex — no leader batching, one
  /// fsync per commit (simplest, slowest).
  kAlways,
  kGroupCommit,  ///< leader batches concurrent commits into one fsync
};

struct WalWriterOptions {
  FsyncPolicy fsync_policy = FsyncPolicy::kGroupCommit;
  /// Optional latency sinks (owned by the engine's observability).
  Histogram* fsync_ns = nullptr;   ///< each physical fsync
  Histogram* commit_ns = nullptr;  ///< each WaitDurable, end to end
};

/// Monotone totals, snapshotted under the writer mutex.
struct WalWriterCounters {
  uint64_t records = 0;
  uint64_t bytes = 0;
  uint64_t fsyncs = 0;
  uint64_t commit_batches = 0;  ///< leader rounds (writes+fsyncs amortized)
  uint64_t commit_waiters = 0;  ///< WaitDurable calls satisfied by a leader
};

class WalWriter {
 public:
  /// Opens a writer appending to `segment_path` (must exist; pass the
  /// reader's last segment after truncating its torn tail), or starts a
  /// fresh segment `wal-<next_sequence>.log` when `segment_path` is empty.
  static Result<std::unique_ptr<WalWriter>> Open(PersistEnv* env,
                                                 const std::string& dir,
                                                 uint64_t next_sequence,
                                                 const std::string& segment_path,
                                                 WalWriterOptions options);

  /// Assigns the next sequence to a framed record and buffers it. Never
  /// blocks on I/O — durability is WaitDurable's job. Thread-safe.
  uint64_t Append(WalRecordType type, std::string_view payload);

  /// Blocks until every record with sequence <= `sequence` is durable
  /// under the configured policy. Returns the sticky I/O error if the
  /// log has failed.
  Status WaitDurable(uint64_t sequence);

  /// Makes everything appended so far durable.
  Status Flush();

  /// Seals the current segment (flushing it) and starts
  /// `wal-<next-sequence>.log`. Callers must ensure no concurrent Append.
  Status Rotate();

  uint64_t last_sequence() const;
  std::string current_segment_path() const;
  WalWriterCounters counters() const;

 private:
  WalWriter(PersistEnv* env, std::string dir, uint64_t next_sequence,
            WalWriterOptions options)
      : env_(env), dir_(std::move(dir)), options_(options),
        next_sequence_(next_sequence), durable_sequence_(next_sequence - 1) {}

  Status OpenSegmentLocked(uint64_t first_sequence);

  PersistEnv* env_;
  const std::string dir_;
  const WalWriterOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unique_ptr<WritableFile> file_;
  std::string segment_path_;
  std::string pending_;  ///< encoded frames not yet handed to the OS
  uint64_t next_sequence_;
  uint64_t durable_sequence_;
  bool leader_active_ = false;
  Status io_status_;  ///< sticky: a failed log never claims durability again
  WalWriterCounters counters_;
};

/// \brief Everything replay needs from a log directory.
struct WalReadResult {
  /// Intact records with sequence > `after_sequence`, contiguous and
  /// ascending. Reading stops at the first torn/corrupt frame or
  /// sequence gap.
  std::vector<WalRecord> records;
  /// Torn or corrupt tails encountered (0 or 1 per read in practice).
  uint64_t truncated_tails = 0;
  /// Last segment visited, and the byte offset of its intact prefix —
  /// the writer truncates to this before appending.
  std::string last_segment_path;
  uint64_t last_segment_valid_bytes = 0;
  /// Set when the log is damaged beyond a terminal torn tail: intact
  /// frames skip sequence numbers (records are *missing*, e.g. the
  /// snapshot that covered them is unreadable), or bytes exist in
  /// segments past a tear. Truncating through that would destroy real
  /// data — recovery must fail loudly instead.
  bool damaged = false;
  std::string damage;  ///< human-readable description when `damaged`
};

/// Reads every `wal-*.log` under `dir` in sequence order, skipping
/// records at or below `after_sequence` (already covered by a snapshot).
Result<WalReadResult> ReadWal(PersistEnv* env, const std::string& dir,
                              uint64_t after_sequence);

/// Segment name for a first sequence ("wal-00000000000000000042.log").
std::string WalSegmentName(uint64_t first_sequence);

/// Parses a segment name; returns false for non-WAL files.
bool ParseWalSegmentName(const std::string& name, uint64_t* first_sequence);

}  // namespace rar

#endif  // RAR_PERSIST_WAL_H_
