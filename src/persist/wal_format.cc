#include "persist/wal_format.h"

#include <cstring>

namespace rar {

namespace {

const uint32_t* Crc32Table() {
  static uint32_t table[256];
  static bool built = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      table[i] = c;
    }
    return true;
  }();
  (void)built;
  return table;
}

constexpr size_t kFrameHeader = 8;  // u32 length + u32 crc
constexpr size_t kFrameBodyMin = 9;  // u64 sequence + u8 type

uint32_t LoadU32(const char* p) {
  // Explicit little-endian, matching BinWriter::U32 — a native memcpy
  // would misparse every frame on a big-endian host and read the whole
  // log as a torn tail.
  const uint8_t* b = reinterpret_cast<const uint8_t*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

}  // namespace

uint32_t Crc32(const void* data, size_t n) {
  const uint32_t* table = Crc32Table();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

Status BinReader::U8(uint8_t* v) {
  if (remaining() < 1) return Status::ParseError("payload truncated (u8)");
  *v = static_cast<uint8_t>(data_[pos_++]);
  return Status::OK();
}

Status BinReader::U32(uint32_t* v) {
  if (remaining() < 4) return Status::ParseError("payload truncated (u32)");
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 4;
  *v = out;
  return Status::OK();
}

Status BinReader::U64(uint64_t* v) {
  if (remaining() < 8) return Status::ParseError("payload truncated (u64)");
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 8;
  *v = out;
  return Status::OK();
}

Status BinReader::Str(std::string* v) {
  uint32_t n;
  RAR_RETURN_NOT_OK(U32(&n));
  if (remaining() < n) return Status::ParseError("payload truncated (str)");
  v->assign(data_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

void EncodeFrame(uint64_t sequence, WalRecordType type,
                 std::string_view payload, std::string* out) {
  std::string body;
  body.reserve(kFrameBodyMin + payload.size());
  BinWriter w(&body);
  w.U64(sequence);
  w.U8(static_cast<uint8_t>(type));
  body.append(payload.data(), payload.size());

  BinWriter head(out);
  head.U32(static_cast<uint32_t>(body.size()));
  head.U32(Crc32(body.data(), body.size()));
  out->append(body);
}

FrameResult DecodeFrame(std::string_view data, size_t* offset,
                        WalRecord* out) {
  size_t off = *offset;
  if (data.size() - off < kFrameHeader) return FrameResult::kEnd;
  uint32_t length = LoadU32(data.data() + off);
  uint32_t crc = LoadU32(data.data() + off + 4);
  if (length < kFrameBodyMin) return FrameResult::kEnd;
  if (data.size() - off - kFrameHeader < length) return FrameResult::kEnd;
  const char* body = data.data() + off + kFrameHeader;
  if (Crc32(body, length) != crc) return FrameResult::kEnd;

  BinReader r(std::string_view(body, length));
  uint8_t type;
  Status s = r.U64(&out->sequence);
  if (s.ok()) s = r.U8(&type);
  if (!s.ok()) return FrameResult::kEnd;
  out->type = static_cast<WalRecordType>(type);
  out->payload.assign(body + kFrameBodyMin, length - kFrameBodyMin);
  *offset = off + kFrameHeader + length;
  return FrameResult::kRecord;
}

// ---------------------------------------------------------------------------
// Values

namespace {
constexpr uint8_t kValueConstant = 0;
constexpr uint8_t kValueNull = 1;
}  // namespace

void EncodeValue(const Schema& schema, Value v, BinWriter* w) {
  if (v.is_constant()) {
    w->U8(kValueConstant);
    w->Str(schema.ConstantSpelling(v));
  } else {
    w->U8(kValueNull);
    w->U32(v.id());
  }
}

Status DecodeValue(const Schema& schema, BinReader* r, Value* out) {
  uint8_t kind;
  RAR_RETURN_NOT_OK(r->U8(&kind));
  if (kind == kValueConstant) {
    std::string spelling;
    RAR_RETURN_NOT_OK(r->Str(&spelling));
    *out = schema.InternConstant(spelling);
    return Status::OK();
  }
  if (kind == kValueNull) {
    uint32_t label;
    RAR_RETURN_NOT_OK(r->U32(&label));
    *out = Value::Null(label);
    return Status::OK();
  }
  return Status::ParseError("unknown value kind tag");
}

// ---------------------------------------------------------------------------
// Queries

void EncodeUnionQuery(const Schema& schema, const UnionQuery& q,
                      BinWriter* w) {
  w->U32(static_cast<uint32_t>(q.disjuncts.size()));
  for (const ConjunctiveQuery& cq : q.disjuncts) {
    w->U32(static_cast<uint32_t>(cq.var_names.size()));
    for (size_t i = 0; i < cq.var_names.size(); ++i) {
      w->Str(cq.var_names[i]);
      DomainId dom = cq.var_domains[i];
      w->Str(dom == kInvalidId ? std::string_view()
                               : std::string_view(schema.domain_name(dom)));
    }
    w->U32(static_cast<uint32_t>(cq.head.size()));
    for (VarId v : cq.head) w->U32(v);
    w->U32(static_cast<uint32_t>(cq.atoms.size()));
    for (const Atom& a : cq.atoms) {
      w->Str(schema.relation(a.relation).name);
      w->U32(static_cast<uint32_t>(a.terms.size()));
      for (const Term& t : a.terms) {
        if (t.is_const()) {
          w->U8(1);
          EncodeValue(schema, t.constant, w);
        } else {
          w->U8(0);
          w->U32(t.var);
        }
      }
    }
  }
}

Status DecodeUnionQuery(const Schema& schema, BinReader* r, UnionQuery* out) {
  out->disjuncts.clear();
  uint32_t ndisj;
  RAR_RETURN_NOT_OK(r->U32(&ndisj));
  for (uint32_t d = 0; d < ndisj; ++d) {
    ConjunctiveQuery cq;
    uint32_t nvars;
    RAR_RETURN_NOT_OK(r->U32(&nvars));
    for (uint32_t i = 0; i < nvars; ++i) {
      std::string name, dom_name;
      RAR_RETURN_NOT_OK(r->Str(&name));
      RAR_RETURN_NOT_OK(r->Str(&dom_name));
      DomainId dom = kInvalidId;
      if (!dom_name.empty()) {
        dom = schema.FindDomain(dom_name);
        if (dom == kInvalidId) {
          return Status::ParseError("query references unknown domain '" +
                                    dom_name + "'");
        }
      }
      cq.AddVar(std::move(name), dom);
    }
    uint32_t nhead;
    RAR_RETURN_NOT_OK(r->U32(&nhead));
    for (uint32_t i = 0; i < nhead; ++i) {
      uint32_t v;
      RAR_RETURN_NOT_OK(r->U32(&v));
      if (v >= nvars) return Status::ParseError("query head var out of range");
      cq.head.push_back(static_cast<VarId>(v));
    }
    uint32_t natoms;
    RAR_RETURN_NOT_OK(r->U32(&natoms));
    for (uint32_t i = 0; i < natoms; ++i) {
      Atom atom;
      std::string rel_name;
      RAR_RETURN_NOT_OK(r->Str(&rel_name));
      atom.relation = schema.FindRelation(rel_name);
      if (atom.relation == kInvalidId) {
        return Status::ParseError("query references unknown relation '" +
                                  rel_name + "'");
      }
      uint32_t nterms;
      RAR_RETURN_NOT_OK(r->U32(&nterms));
      for (uint32_t t = 0; t < nterms; ++t) {
        uint8_t kind;
        RAR_RETURN_NOT_OK(r->U8(&kind));
        if (kind == 1) {
          Value v;
          RAR_RETURN_NOT_OK(DecodeValue(schema, r, &v));
          atom.terms.push_back(Term::MakeConst(v));
        } else if (kind == 0) {
          uint32_t v;
          RAR_RETURN_NOT_OK(r->U32(&v));
          if (v >= nvars) {
            return Status::ParseError("query atom var out of range");
          }
          atom.terms.push_back(Term::MakeVar(static_cast<VarId>(v)));
        } else {
          return Status::ParseError("unknown term kind tag");
        }
      }
      cq.atoms.push_back(std::move(atom));
    }
    out->disjuncts.push_back(std::move(cq));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Stream options

void EncodeStreamOptions(const StreamOptions& o, BinWriter* w) {
  uint8_t flags = 0;
  if (o.use_immediate) flags |= 1u << 0;
  if (o.use_long_term) flags |= 1u << 1;
  if (o.conservative_on_unknown) flags |= 1u << 2;
  if (o.force_full_recheck) flags |= 1u << 3;
  if (o.retain_events) flags |= 1u << 4;
  w->U8(flags);
  w->U64(static_cast<uint64_t>(o.parallel_threshold));
  w->U64(o.retain_cap);
}

Status DecodeStreamOptions(BinReader* r, StreamOptions* out) {
  uint8_t flags;
  uint64_t threshold, retain_cap;
  RAR_RETURN_NOT_OK(r->U8(&flags));
  RAR_RETURN_NOT_OK(r->U64(&threshold));
  RAR_RETURN_NOT_OK(r->U64(&retain_cap));
  out->use_immediate = (flags & (1u << 0)) != 0;
  out->use_long_term = (flags & (1u << 1)) != 0;
  out->conservative_on_unknown = (flags & (1u << 2)) != 0;
  out->force_full_recheck = (flags & (1u << 3)) != 0;
  out->retain_events = (flags & (1u << 4)) != 0;
  out->parallel_threshold = static_cast<size_t>(threshold);
  out->retain_cap = retain_cap;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Record payloads

std::string EncodeApplyPayload(const Schema& schema, const AccessMethodSet& acs,
                               const Access& access,
                               const std::vector<Fact>& response) {
  std::string out;
  BinWriter w(&out);
  w.Str(acs.method(access.method).name);
  w.U32(static_cast<uint32_t>(access.binding.size()));
  for (Value v : access.binding) EncodeValue(schema, v, &w);
  w.U32(static_cast<uint32_t>(response.size()));
  for (const Fact& f : response) {
    w.U32(static_cast<uint32_t>(f.values.size()));
    for (Value v : f.values) EncodeValue(schema, v, &w);
  }
  return out;
}

Status DecodeApplyPayload(const Schema& schema, const AccessMethodSet& acs,
                          std::string_view payload, Access* access,
                          std::vector<Fact>* response) {
  BinReader r(payload);
  std::string method_name;
  RAR_RETURN_NOT_OK(r.Str(&method_name));
  AccessMethodId mid = acs.Find(method_name);
  if (mid == kInvalidId) {
    return Status::ParseError("apply record references unknown method '" +
                              method_name + "'");
  }
  access->method = mid;
  access->binding.clear();
  uint32_t nbind;
  RAR_RETURN_NOT_OK(r.U32(&nbind));
  for (uint32_t i = 0; i < nbind; ++i) {
    Value v;
    RAR_RETURN_NOT_OK(DecodeValue(schema, &r, &v));
    access->binding.push_back(v);
  }
  const RelationId rel = acs.method(mid).relation;
  response->clear();
  uint32_t nfacts;
  RAR_RETURN_NOT_OK(r.U32(&nfacts));
  for (uint32_t i = 0; i < nfacts; ++i) {
    uint32_t nvals;
    RAR_RETURN_NOT_OK(r.U32(&nvals));
    std::vector<Value> vals;
    vals.reserve(nvals);
    for (uint32_t j = 0; j < nvals; ++j) {
      Value v;
      RAR_RETURN_NOT_OK(DecodeValue(schema, &r, &v));
      vals.push_back(v);
    }
    response->emplace_back(rel, std::move(vals));
  }
  return Status::OK();
}

std::string EncodeQueryRegisterPayload(const Schema& schema,
                                       const UnionQuery& q) {
  std::string out;
  BinWriter w(&out);
  EncodeUnionQuery(schema, q, &w);
  return out;
}

Status DecodeQueryRegisterPayload(const Schema& schema,
                                  std::string_view payload, UnionQuery* out) {
  BinReader r(payload);
  return DecodeUnionQuery(schema, &r, out);
}

std::string EncodeStreamRegisterPayload(const Schema& schema,
                                        const StreamRegisterPayload& p) {
  std::string out;
  BinWriter w(&out);
  EncodeUnionQuery(schema, p.query, &w);
  EncodeStreamOptions(p.options, &w);
  w.U32(static_cast<uint32_t>(p.fresh_pool.size()));
  for (const auto& [dom, spelling] : p.fresh_pool) {
    w.Str(schema.domain_name(dom));
    w.Str(spelling);
  }
  return out;
}

Status DecodeStreamRegisterPayload(const Schema& schema,
                                   std::string_view payload,
                                   StreamRegisterPayload* out) {
  BinReader r(payload);
  RAR_RETURN_NOT_OK(DecodeUnionQuery(schema, &r, &out->query));
  RAR_RETURN_NOT_OK(DecodeStreamOptions(&r, &out->options));
  out->fresh_pool.clear();
  uint32_t n;
  RAR_RETURN_NOT_OK(r.U32(&n));
  for (uint32_t i = 0; i < n; ++i) {
    std::string dom_name, spelling;
    RAR_RETURN_NOT_OK(r.Str(&dom_name));
    RAR_RETURN_NOT_OK(r.Str(&spelling));
    DomainId dom = schema.FindDomain(dom_name);
    if (dom == kInvalidId) {
      return Status::ParseError("fresh pool references unknown domain '" +
                                dom_name + "'");
    }
    out->fresh_pool.emplace_back(dom, std::move(spelling));
  }
  return Status::OK();
}

std::string EncodeStreamCursorPayload(uint32_t stream_id, uint64_t acked) {
  std::string out;
  BinWriter w(&out);
  w.U32(stream_id);
  w.U64(acked);
  return out;
}

Status DecodeStreamCursorPayload(std::string_view payload, uint32_t* stream_id,
                                 uint64_t* acked) {
  BinReader r(payload);
  RAR_RETURN_NOT_OK(r.U32(stream_id));
  RAR_RETURN_NOT_OK(r.U64(acked));
  return Status::OK();
}

std::string EncodeSessionOpenPayload(uint64_t session_id, uint64_t nonce) {
  std::string out;
  BinWriter w(&out);
  w.U64(session_id);
  w.U64(nonce);
  return out;
}

Status DecodeSessionOpenPayload(std::string_view payload, uint64_t* session_id,
                                uint64_t* nonce) {
  BinReader r(payload);
  RAR_RETURN_NOT_OK(r.U64(session_id));
  RAR_RETURN_NOT_OK(r.U64(nonce));
  return Status::OK();
}

std::string EncodeSessionRetirePayload(uint64_t session_id) {
  std::string out;
  BinWriter w(&out);
  w.U64(session_id);
  return out;
}

Status DecodeSessionRetirePayload(std::string_view payload,
                                  uint64_t* session_id) {
  BinReader r(payload);
  RAR_RETURN_NOT_OK(r.U64(session_id));
  return Status::OK();
}

std::string EncodeTaggedPayload(uint64_t session_id, uint64_t request_id,
                                std::string_view inner) {
  std::string out;
  BinWriter w(&out);
  w.U64(session_id);
  w.U64(request_id);
  out.append(inner.data(), inner.size());
  return out;
}

Status SplitTaggedPayload(std::string_view payload, uint64_t* session_id,
                          uint64_t* request_id, std::string_view* inner) {
  BinReader r(payload);
  RAR_RETURN_NOT_OK(r.U64(session_id));
  RAR_RETURN_NOT_OK(r.U64(request_id));
  *inner = payload.substr(16);
  return Status::OK();
}

}  // namespace rar
