// Snapshots: a point-in-time durable image of a session's state.
//
// A snapshot captures everything `RecoverEngine` needs to rebuild a
// session without replaying history from sequence 1: the configuration
// (typed active domain in per-domain first-seen order, then per-relation
// fact lists in insertion order — restoring in that order reproduces the
// exact VersionVector), the frontier's performed-access set, the direct
// queries in registration order, and each stream's durable state (query,
// options, fresh pool, cursors, retained events). `last_sequence` is the
// highest WAL sequence the image covers; recovery replays only records
// after it, and the writer may delete WAL segments whose records are all
// covered once the snapshot is durably renamed into place.
//
// On disk: [8-byte magic][u32 body length][u32 crc32(body)][body],
// written via AtomicWriteFile (tmp + fsync + rename + dir fsync), so a
// crash mid-write leaves no partial snapshot under the real name. Loading
// walks snapshots newest-first and takes the first one that passes magic,
// length and CRC — a corrupted newest image degrades to the previous one
// plus a longer WAL replay, never to a failed recovery.
#ifndef RAR_PERSIST_SNAPSHOT_H_
#define RAR_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "access/access_method.h"
#include "persist/io.h"
#include "query/query.h"
#include "relational/fact.h"
#include "relational/schema.h"
#include "stream/stream.h"
#include "util/status.h"

namespace rar {

/// \brief One stream's durable state inside a snapshot.
struct SnapshotStreamState {
  UnionQuery query;
  StreamOptions options;
  /// The registration's fresh pool in slot-class order (see
  /// HeadInstantiator::fresh_constants).
  std::vector<TypedValue> fresh_pool;
  uint64_t next_sequence = 1;
  uint64_t acked_sequence = 0;
  uint64_t evicted_through = 0;  ///< retention-cap horizon (0 = none)
  std::vector<StreamEvent> retained_events;
};

/// \brief One serving session's durable state inside a snapshot: its
/// token, its wire-handle tables (query handles as direct-registration
/// indices, stream handles as StreamIds — both stable across recovery),
/// and its request-dedup window so a retry that straddles a crash still
/// answers from cache instead of re-applying.
struct SnapshotSessionState {
  uint64_t id = 0;
  uint64_t nonce = 0;
  std::vector<uint32_t> query_regs;  ///< handle -> direct-registration index
  std::vector<uint32_t> streams;     ///< handle -> StreamId
  uint64_t dedup_watermark = 0;      ///< highest request id ever evicted
  struct DedupEntry {
    uint64_t request_id = 0;
    uint8_t type = 0;  ///< wire MessageType byte of the original request
    std::string response_payload;
  };
  std::vector<DedupEntry> dedup;  ///< oldest-first completion order
};

/// \brief The decoded image of one snapshot file.
struct SnapshotState {
  /// Highest WAL sequence covered; replay resumes after it.
  uint64_t last_sequence = 0;
  /// Per domain (DomainId order): active-domain values in first-seen
  /// order. Restoring each as a seed constant, domain by domain, before
  /// any fact reproduces the per-domain Adom versions exactly.
  std::vector<std::pair<DomainId, std::vector<Value>>> adom;
  /// Per relation (RelationId order): facts in insertion order.
  std::vector<std::pair<RelationId, std::vector<Fact>>> facts;
  /// The frontier's performed accesses (order-insensitive).
  std::vector<Access> performed;
  /// Direct queries in registration order (replay re-registers them so
  /// QueryIds line up).
  std::vector<UnionQuery> queries;
  /// Streams in StreamId order.
  std::vector<SnapshotStreamState> streams;
  /// Live serving sessions (empty when no SessionServer fronts the
  /// session, or none are open).
  std::vector<SnapshotSessionState> sessions;
};

/// Serializes a snapshot body (magic + CRC framing included).
std::string EncodeSnapshot(const Schema& schema, const AccessMethodSet& acs,
                           const SnapshotState& state);

/// Decodes and validates a snapshot file image (magic, length, CRC, then
/// every name and value against `schema`/`acs`).
Status DecodeSnapshot(const Schema& schema, const AccessMethodSet& acs,
                      std::string_view data, SnapshotState* out);

/// The canonical file name: snapshot-<sequence, zero-padded>.snap.
std::string SnapshotFileName(uint64_t last_sequence);

/// Parses a snapshot file name; returns false for other files.
bool ParseSnapshotFileName(const std::string& name, uint64_t* last_sequence);

/// Atomically writes `state` into `dir` and fsyncs the directory.
Status WriteSnapshotFile(PersistEnv* env, const std::string& dir,
                         const Schema& schema, const AccessMethodSet& acs,
                         const SnapshotState& state, uint64_t* bytes_written);

/// Loads the newest readable snapshot in `dir` into `out`; `*found` is
/// false when the directory holds no usable snapshot (fresh start).
/// Corrupt candidates are skipped, newest-first.
Status LoadLatestSnapshot(PersistEnv* env, const std::string& dir,
                          const Schema& schema, const AccessMethodSet& acs,
                          SnapshotState* out, bool* found);

}  // namespace rar

#endif  // RAR_PERSIST_SNAPSHOT_H_
