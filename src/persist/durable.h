// DurableSession: a crash-recoverable engine + stream registry.
//
// The session owns a RelevanceEngine and its RelevanceStreamRegistry and
// funnels every mutating operation — ApplyResponse, direct query
// registration, stream registration, subscriber acknowledgements — through
// one mutex and the WAL. Applies are logged *inside* the engine's apply
// critical section (PersistHook::LogApply, see engine.h) and made durable
// before any listener observes them; the other operations are serialized
// by the session mutex, so WAL sequence order equals execution order and
// sequential replay is deterministic.
//
// `Open` is also recovery: it loads the newest readable snapshot (if
// any), rebuilds the configuration in version-exact order, re-registers
// direct queries and streams, truncates the WAL's torn tail, replays the
// records past the snapshot, and only then attaches the hook and opens
// the log for appending. A session recovered from `dir` is
// VersionVector-identical to the crashed one and its streams resume from
// their persisted cursors (`PollAfter(acked)` is gap-free).
//
// Contract: after Open, drive all mutations through the session — calling
// `engine().ApplyResponse` directly would still be logged (the hook is
// attached) but would race the session's snapshot bookkeeping.
#ifndef RAR_PERSIST_DURABLE_H_
#define RAR_PERSIST_DURABLE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "persist/dedup.h"
#include "persist/io.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "stream/registry.h"
#include "util/status.h"

namespace rar {

/// \brief Durability knobs of one session.
struct PersistOptions {
  FsyncPolicy fsync_policy = FsyncPolicy::kGroupCommit;
  /// Write a snapshot (and truncate covered WAL segments) automatically
  /// after this many WAL records since the last one. 0 = only explicit
  /// WriteSnapshot calls.
  uint64_t snapshot_every_records = 0;
  /// Filesystem to run against; nullptr = the real PosixEnv. Fault tests
  /// pass a FaultInjectingEnv.
  PersistEnv* env = nullptr;
  /// Capacity of each serving session's request-dedup window (see
  /// persist/dedup.h); entries beyond it evict FIFO into the stale
  /// watermark. Only meaningful when a SessionServer fronts the session.
  size_t dedup_window = 256;
};

/// \brief What Open's recovery pass found and did.
struct RecoveryInfo {
  bool from_snapshot = false;
  uint64_t snapshot_sequence = 0;  ///< last WAL seq the snapshot covered
  uint64_t replayed_records = 0;
  uint64_t replayed_facts = 0;   ///< facts re-absorbed by replayed applies
  uint64_t truncated_tails = 0;  ///< torn/corrupt WAL tails dropped
};

class DurableSession : public PersistHook, public ApplyListener {
 public:
  /// Opens (or recovers) the session persisted under `dir`. `bootstrap`
  /// is the first-boot configuration; it must be passed identically on
  /// every Open — it is not logged, it is the replay origin until the
  /// first snapshot subsumes it. `schema` and `acs` must outlive the
  /// session and match what the directory was written with.
  static Result<std::unique_ptr<DurableSession>> Open(
      const Schema& schema, const AccessMethodSet& acs,
      const Configuration& bootstrap, const std::string& dir,
      PersistOptions options = {}, EngineOptions engine_options = {});

  ~DurableSession() override;

  DurableSession(const DurableSession&) = delete;
  DurableSession& operator=(const DurableSession&) = delete;

  RelevanceEngine& engine() { return *engine_; }
  const RelevanceEngine& engine() const { return *engine_; }
  RelevanceStreamRegistry& streams() { return *registry_; }
  const RecoveryInfo& recovery() const { return recovery_; }

  /// Logged, durable ApplyResponse. Returns the number of new facts.
  Result<int> Apply(const Access& access, const std::vector<Fact>& response);

  /// Logged direct query registration. Engine QueryIds are stable across
  /// WAL replay but can shift across a snapshot restore (streams register
  /// their binding queries too); `direct_query_ids()` maps registration
  /// order to the current engine id either way.
  Result<QueryId> RegisterQuery(const UnionQuery& query);
  const std::vector<QueryId>& direct_query_ids() const {
    return direct_qids_;
  }

  /// Logged stream registration. Forces StreamOptions::retain_events so
  /// the persisted cursor always has events to resume into.
  Result<StreamId> RegisterStream(const UnionQuery& query,
                                  StreamOptions options = {});

  // Reads pass straight through to the registry.
  StreamDelta Poll(StreamId id) { return registry_->Poll(id); }
  Result<StreamDelta> PollAfter(StreamId id, uint64_t cursor) {
    return registry_->PollAfter(id, cursor);
  }

  /// Logged, durable subscriber acknowledgement: the cursor survives a
  /// crash, so a restarted subscriber resumes with PollAfter(acked).
  Status Acknowledge(StreamId id, uint64_t upto);

  /// Makes everything logged so far durable (graceful-shutdown flush).
  Status Flush();

  // ---- serving-session registry -----------------------------------------
  // A SessionServer over this durable session persists its token table,
  // per-session handle tables and request-dedup windows here, so that a
  // client whose response was lost can retry the same request id across a
  // server crash without double-applying (at-least-once delivery,
  // exactly-once effect).

  /// \brief What a tagged (deduped) mutation did.
  struct TaggedOutcome {
    enum class Kind {
      kFresh,  ///< executed now; response is the new outcome
      kHit,    ///< answered from the dedup window; engine untouched
      kStale,  ///< evicted from the window long ago; must be rejected
    };
    Kind kind = Kind::kFresh;
    uint8_t type = 0;      ///< wire type byte of the original request
    std::string response;  ///< encoded response payload (kFresh / kHit)
    int facts_added = 0;   ///< kFresh applies
    uint32_t handle = 0;   ///< kFresh registrations: the session handle
    QueryId query_id = 0;  ///< kFresh query registrations
    StreamId stream_id = 0;  ///< kFresh stream registrations
  };

  /// \brief One recovered serving session (for re-seeding a server's
  /// token and handle tables after Open).
  struct RecoveredServerSession {
    uint64_t id = 0;
    uint64_t nonce = 0;
    std::vector<uint32_t> query_regs;  ///< handle -> direct-reg. index
    std::vector<StreamId> streams;     ///< handle -> StreamId
  };

  /// Logs + persists a serving session's identity (WAL kSessionOpen).
  Status OpenServerSession(uint64_t session_id, uint64_t nonce);
  /// Logs the retirement (Goodbye or idle reap); drops its dedup state.
  Status RetireServerSession(uint64_t session_id);
  /// Live serving sessions, for post-recovery seeding.
  std::vector<RecoveredServerSession> server_sessions() const;

  /// Exactly-once apply: probes the session's dedup window first; fresh
  /// requests run through the engine + WAL (tagged, so crash replay
  /// re-records the outcome) and cache their encoded ApplyResult payload.
  Result<TaggedOutcome> ApplyTagged(uint64_t session_id, uint64_t request_id,
                                    const Access& access,
                                    const std::vector<Fact>& response);
  /// Deduped registrations: a retried registration answers the original
  /// handle instead of minting a duplicate query/stream.
  Result<TaggedOutcome> RegisterQueryTagged(uint64_t session_id,
                                            uint64_t request_id,
                                            const UnionQuery& query);
  Result<TaggedOutcome> RegisterStreamTagged(uint64_t session_id,
                                             uint64_t request_id,
                                             const UnionQuery& query,
                                             StreamOptions options);

  /// Writes a snapshot now and prunes durable state down to a one-deep
  /// fallback chain: the new image, the previous image, and the WAL
  /// segments holding records past the previous image. A corrupt newest
  /// snapshot therefore always degrades to the previous one plus a
  /// longer replay, never to data loss.
  Status WriteSnapshot();

  /// Highest WAL sequence assigned so far.
  uint64_t last_sequence() const { return wal_->last_sequence(); }

  // PersistHook (called by the engine's apply path):
  uint64_t LogApply(const Access& access,
                    const std::vector<Fact>& response) override;
  Status WaitDurable(uint64_t sequence) override;

  // ApplyListener (stats only; apply maintenance lives in the registry):
  void OnApply(const ApplyEvent& event) override { (void)event; }
  void ContributeStats(EngineStats* stats) const override;

 private:
  DurableSession(const Schema& schema, const AccessMethodSet& acs,
                 PersistEnv* env, std::string dir, PersistOptions options)
      : schema_(&schema), acs_(&acs), env_(env), dir_(std::move(dir)),
        options_(options) {}

  /// \brief A serving session's durable state (under session_mu_).
  struct DurableServerSession {
    uint64_t nonce = 0;
    std::vector<uint32_t> query_regs;  ///< handle -> direct-reg. index
    std::vector<StreamId> streams;     ///< handle -> StreamId
    DedupWindow dedup;
  };

  Status ReplayRecord(const WalRecord& rec);
  Status WriteSnapshotLocked();
  Status MaybeAutoSnapshotLocked();

  const Schema* schema_;
  const AccessMethodSet* acs_;
  PersistEnv* env_;
  const std::string dir_;
  const PersistOptions options_;

  std::unique_ptr<RelevanceEngine> engine_;
  std::unique_ptr<RelevanceStreamRegistry> registry_;
  std::unique_ptr<WalWriter> wal_;

  /// Serializes every mutating operation (WAL order = execution order).
  mutable std::mutex session_mu_;
  std::vector<UnionQuery> direct_queries_;  ///< registration order
  std::vector<QueryId> direct_qids_;
  std::unordered_map<uint64_t, DurableServerSession> server_sessions_;
  /// {session_id, request_id} of the tagged apply in flight (stack slot of
  /// ApplyTagged, read by LogApply inside the engine's critical section on
  /// the same thread); nullptr for untagged applies.
  const std::pair<uint64_t, uint64_t>* pending_apply_tag_ = nullptr;
  RecoveryInfo recovery_;
  uint64_t records_since_snapshot_ = 0;
  uint64_t snapshots_written_ = 0;
  uint64_t snapshot_bytes_ = 0;
};

}  // namespace rar

#endif  // RAR_PERSIST_DURABLE_H_
