// Persistence I/O: a minimal file abstraction with a fault-injecting shim.
//
// The WAL and snapshot layers never touch the filesystem directly; they go
// through PersistEnv, which hands out WritableFile / ReadableFile handles.
// PosixEnv is the real thing (fd-based, so Sync() is a true fsync).
// FaultInjectingEnv wraps another env and injects the failures the on-disk
// format claims to survive: torn tail writes (fail after N bytes), short
// reads, single-byte bit flips, and a visible-size cap that simulates a
// crash at an arbitrary byte of an otherwise intact file. Recovery tests
// drive every one of these against real recovery paths.
#ifndef RAR_PERSIST_IO_H_
#define RAR_PERSIST_IO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace rar {

/// \brief Append-only writable file. Append buffers nothing: bytes reach
/// the OS before it returns (durability still requires Sync).
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const void* data, size_t n) = 0;
  /// Flushes OS buffers to stable storage (fsync).
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// \brief Random-access readable file.
class ReadableFile {
 public:
  virtual ~ReadableFile() = default;
  /// Reads up to `n` bytes at `offset`; returns the count actually read
  /// (0 at EOF). May return fewer than `n` even before EOF — callers must
  /// loop (the fault shim exercises exactly this).
  virtual Result<size_t> ReadAt(uint64_t offset, void* buf, size_t n) = 0;
  virtual Result<uint64_t> Size() = 0;
};

/// \brief Filesystem facade the persistence layer runs against.
class PersistEnv {
 public:
  virtual ~PersistEnv() = default;
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool append) = 0;
  virtual Result<std::unique_ptr<ReadableFile>> NewReadableFile(
      const std::string& path) = 0;
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;
  virtual Status CreateDir(const std::string& dir) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;
  virtual Result<bool> FileExists(const std::string& path) = 0;
  /// fsyncs the directory entry itself (needed after create/rename so the
  /// name survives a crash, not just the bytes).
  virtual Status SyncDir(const std::string& dir) = 0;
};

/// The real, fd-backed environment (process-wide singleton).
PersistEnv* GetPosixEnv();

/// Reads an entire file through `env` into `out`, looping over short
/// reads. Used by snapshot load and the WAL reader.
Status ReadFileFully(PersistEnv* env, const std::string& path,
                     std::string* out);

/// Writes `data` to `path` atomically: tmp file + fsync + rename + dir
/// fsync. A crash leaves either the old file or the complete new one.
Status AtomicWriteFile(PersistEnv* env, const std::string& path,
                       const std::string& data);

/// \brief One injected fault schedule, applied to files whose basename
/// contains `path_substring` (empty = every file).
struct FaultPlan {
  std::string path_substring;
  /// Write side: writes succeed for the first N bytes of the file's
  /// lifetime under this env, then fail — the classic torn tail. -1 = off.
  int64_t fail_appends_after_bytes = -1;
  /// Read side: XOR this mask into the byte at this file offset. -1 = off.
  int64_t flip_byte_at = -1;
  uint8_t flip_mask = 0x01;
  /// Read side: cap every ReadAt to at most this many bytes (short
  /// reads; readers must loop). 0 = off.
  size_t max_read_chunk = 0;
  /// Read side: pretend the file ends here — a crash at byte N of an
  /// otherwise intact file. -1 = off.
  int64_t visible_size_cap = -1;
};

/// \brief PersistEnv decorator that applies FaultPlans to matching files.
/// Not thread-safe for plan mutation; install plans before handing the
/// env to a session.
class FaultInjectingEnv : public PersistEnv {
 public:
  explicit FaultInjectingEnv(PersistEnv* base) : base_(base) {}

  void AddPlan(FaultPlan plan) { plans_.push_back(std::move(plan)); }
  void ClearPlans() { plans_.clear(); }

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool append) override;
  Result<std::unique_ptr<ReadableFile>> NewReadableFile(
      const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    return base_->ListDir(dir);
  }
  Status CreateDir(const std::string& dir) override {
    return base_->CreateDir(dir);
  }
  Status RemoveFile(const std::string& path) override {
    return base_->RemoveFile(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return base_->RenameFile(from, to);
  }
  Status Truncate(const std::string& path, uint64_t size) override {
    return base_->Truncate(path, size);
  }
  Result<bool> FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Status SyncDir(const std::string& dir) override {
    return base_->SyncDir(dir);
  }

 private:
  const FaultPlan* MatchPlan(const std::string& path) const;

  PersistEnv* base_;
  std::vector<FaultPlan> plans_;
};

}  // namespace rar

#endif  // RAR_PERSIST_IO_H_
