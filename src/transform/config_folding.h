// Proposition 3.6 (the config-containment -> CM-containment direction):
// "the reduction the other way requires us to code the configuration in
// the contained query".
//
// Calì–Martinenghi containment starts from a set of *constants* rather
// than a configuration of ground facts. Folding replaces the configuration
// by (a) a facts-free configuration carrying the same typed constants as
// seeds and (b) the contained query conjoined with C, the conjunction of
// all ground facts:  Q1 ⊑_{ACS,Conf} Q2  iff  (Q1 ∧ C) ⊑_{ACS,seeds} Q2.
//
// Scope: every relation holding configuration facts must have an access
// method (the paper removes method-less relations with a separate monadic
// projection device; see DESIGN.md). Folding fails with InvalidArgument
// otherwise.
#ifndef RAR_TRANSFORM_CONFIG_FOLDING_H_
#define RAR_TRANSFORM_CONFIG_FOLDING_H_

#include "access/access_method.h"
#include "query/query.h"
#include "relational/configuration.h"
#include "util/status.h"

namespace rar {

/// \brief A folded containment instance (same schema and methods).
struct FoldedContainment {
  Configuration conf;  ///< facts-free; original active domain as seeds
  UnionQuery q1;       ///< every disjunct conjoined with C
};

Result<FoldedContainment> FoldConfigurationIntoQuery(
    const Schema& schema, const AccessMethodSet& acs,
    const Configuration& conf, const UnionQuery& q1);

}  // namespace rar

#endif  // RAR_TRANSFORM_CONFIG_FOLDING_H_
