// Proposition 3.4: LTR of a Boolean access reduces to the complement of
// query containment under access limitations.
//
// Given Q, Conf and an access (AcM, Bind) with R = Rel(AcM), the reduction
//   * adds a fresh relation IsBind with the arity and domains of Bind and
//     no access methods,
//   * adds the single fact IsBind(Bind) to the configuration,
//   * rewrites Q into Q' by replacing every occurrence of
//     R(i1..ik, o1..op) with R(i1..ik, o1..op) ∨ IsBind(i1..ik).
// Then (AcM, Bind) is LTR for Q at Conf  iff  Q' ̸⊑_{ACS,Conf'} Q.
//
// On UCQs the per-atom disjunction expands each disjunct with m occurrences
// of R into 2^m disjuncts (choose, per occurrence, the original atom or its
// IsBind replacement).
#ifndef RAR_TRANSFORM_LTR_TO_CONTAINMENT_H_
#define RAR_TRANSFORM_LTR_TO_CONTAINMENT_H_

#include <memory>

#include "access/access_method.h"
#include "query/query.h"
#include "relational/configuration.h"
#include "util/status.h"

namespace rar {

/// \brief The output of the Prop 3.4 reduction: a containment instance
/// whose *non*-containment is equivalent to the LTR question.
///
/// The extended schema is held by shared_ptr so that the access-method set
/// and configuration (which point into it) stay valid when the instance is
/// moved around.
struct LtrToContainmentInstance {
  std::shared_ptr<Schema> schema;  ///< extended with IsBind
  AccessMethodSet acs;     ///< original methods rebased onto the new schema
  /// Original configuration + IsBind(Bind) — materialized only when
  /// `materialize_conf` was set; otherwise empty (the caller overlays
  /// `isbind_fact` onto the live configuration instead).
  Configuration conf;
  Fact isbind_fact;        ///< IsBind(Bind) over the extended schema
  UnionQuery q_rewritten;  ///< Q' (the candidate contained query)
  UnionQuery q_original;   ///< Q over the extended schema (same ids)
};

/// Builds the Prop 3.4 instance. The access must be well-formed at `conf`.
/// With `materialize_conf` false the O(|Conf|) copy into `instance.conf`
/// is skipped — the zero-copy route for callers (the UCQ LTR decider)
/// that evaluate over an OverlayConfiguration with an OverrideSchema
/// instead (relation ids are stable across the extension, so the live
/// configuration reads correctly under the extended schema).
Result<LtrToContainmentInstance> BuildLtrToContainment(
    const Schema& schema, const AccessMethodSet& acs,
    const ConfigView& conf, const Access& access, const UnionQuery& query,
    bool materialize_conf = true);

}  // namespace rar

#endif  // RAR_TRANSFORM_LTR_TO_CONTAINMENT_H_
