#include "transform/config_folding.h"

namespace rar {

Result<FoldedContainment> FoldConfigurationIntoQuery(
    const Schema& schema, const AccessMethodSet& acs,
    const Configuration& conf, const UnionQuery& q1) {
  FoldedContainment out;
  std::vector<Fact> facts = conf.AllFacts();
  for (const Fact& f : facts) {
    if (!acs.HasMethod(f.relation)) {
      return Status::InvalidArgument(
          "folding requires every fact-bearing relation to have an access "
          "method (relation " + schema.relation(f.relation).name + ")");
    }
    if (!f.IsGroundConstant()) {
      return Status::InvalidArgument("configuration facts must be ground");
    }
  }

  out.conf = Configuration(&schema);
  for (const TypedValue& tv : conf.AdomEntries()) {
    out.conf.AddSeedConstant(tv.value, tv.domain);
  }

  out.q1 = q1;
  for (ConjunctiveQuery& d : out.q1.disjuncts) {
    for (const Fact& f : facts) {
      Atom atom;
      atom.relation = f.relation;
      for (const Value& v : f.values) {
        atom.terms.push_back(Term::MakeConst(v));
      }
      d.atoms.push_back(std::move(atom));
    }
    RAR_RETURN_NOT_OK(d.Validate(schema));
  }
  return out;
}

}  // namespace rar
