#include "transform/ltr_to_containment.h"

#include <string>

#include "transform/schema_tools.h"
#include "util/combinatorics.h"

namespace rar {

Result<LtrToContainmentInstance> BuildLtrToContainment(
    const Schema& schema, const AccessMethodSet& acs,
    const ConfigView& conf, const Access& access,
    const UnionQuery& query, bool materialize_conf) {
  RAR_RETURN_NOT_OK(CheckWellFormed(conf, acs, access));
  if (!query.IsBoolean()) {
    return Status::InvalidArgument("Prop 3.4 reduction needs a Boolean query");
  }
  const AccessMethod& m = acs.method(access.method);

  LtrToContainmentInstance out;
  // Copy-extend the schema (shares the constant table; relation ids are
  // stable, so queries built against the original stay valid).
  out.schema = std::make_shared<Schema>(schema);

  // IsBind: arity/domains of the method's input attributes, no methods.
  std::vector<Attribute> attrs;
  const Relation& rel = schema.relation(m.relation);
  for (int pos : m.input_positions) {
    attrs.push_back(Attribute{"b" + std::to_string(pos),
                              rel.attributes[pos].domain});
  }
  std::string isbind_name = "IsBind_" + m.name;
  RAR_ASSIGN_OR_RETURN(RelationId isbind,
                       out.schema->AddRelation(isbind_name, std::move(attrs)));

  RAR_ASSIGN_OR_RETURN(out.acs, RebindMethods(*out.schema, acs));

  // Rebase the configuration onto the extended schema before adding the
  // IsBind fact (fact insertion consults the schema for attribute
  // domains). Zero-copy callers skip the rebase and overlay isbind_fact
  // onto the live configuration themselves.
  out.isbind_fact = Fact(isbind, access.binding);
  out.conf = Configuration(out.schema.get());
  if (materialize_conf) out.conf.UnionWithView(conf);
  if (materialize_conf) out.conf.AddFact(out.isbind_fact);

  // Rewrite each disjunct: per occurrence of R, choose the original atom or
  // its IsBind(i1..ik) replacement.
  out.q_original = query;
  for (const ConjunctiveQuery& d : query.disjuncts) {
    std::vector<int> r_occurrences;
    for (int i = 0; i < d.num_atoms(); ++i) {
      if (d.atoms[i].relation == m.relation) r_occurrences.push_back(i);
    }
    const int k = static_cast<int>(r_occurrences.size());
    if (k > 20) {
      return Status::InvalidArgument(
          "too many occurrences of the accessed relation (2^k blowup)");
    }
    ForEachSubset(k, [&](uint64_t mask) {
      ConjunctiveQuery rewritten = d;
      for (int j = 0; j < k; ++j) {
        if (!(mask & (uint64_t{1} << j))) continue;
        // Replace this occurrence with IsBind over its input terms.
        Atom& atom = rewritten.atoms[r_occurrences[j]];
        Atom replacement;
        replacement.relation = isbind;
        for (int pos : m.input_positions) {
          replacement.terms.push_back(atom.terms[pos]);
        }
        atom = std::move(replacement);
      }
      out.q_rewritten.disjuncts.push_back(std::move(rewritten));
      return false;
    });
  }
  RAR_RETURN_NOT_OK(out.q_rewritten.Validate(*out.schema));
  RAR_RETURN_NOT_OK(out.q_original.Validate(*out.schema));
  return out;
}

}  // namespace rar
