#include "transform/containment_to_ltr.h"

#include <string>

#include "transform/schema_tools.h"

namespace rar {

namespace {

// Appends `src`'s atoms to `dst`, remapping src variables into dst's table
// (fresh names to avoid collisions). Returns the variable remap.
std::vector<VarId> MergeInto(ConjunctiveQuery* dst,
                             const ConjunctiveQuery& src,
                             const std::string& suffix) {
  std::vector<VarId> remap(src.num_vars());
  for (int v = 0; v < src.num_vars(); ++v) {
    remap[v] = dst->AddVar(src.var_names[v] + suffix, src.var_domains[v]);
  }
  for (const Atom& atom : src.atoms) {
    Atom copy = atom;
    for (Term& t : copy.terms) {
      if (t.is_var()) t.var = remap[t.var];
    }
    dst->atoms.push_back(std::move(copy));
  }
  return remap;
}

}  // namespace

Result<ContainmentToLtrInstance> BuildContainmentToLtrPQ(
    const Schema& schema, const AccessMethodSet& acs,
    const Configuration& conf, const UnionQuery& q1, const UnionQuery& q2) {
  if (!q1.IsBoolean() || !q2.IsBoolean()) {
    return Status::InvalidArgument("Prop 3.3 needs Boolean queries");
  }
  ContainmentToLtrInstance out;
  out.schema = std::make_shared<Schema>(schema);
  DomainId da = out.schema->AddDomain("DomA_p33");
  RAR_ASSIGN_OR_RETURN(RelationId a_rel,
                       out.schema->AddRelation("A_p33",
                                               std::vector<DomainId>{da}));
  RAR_ASSIGN_OR_RETURN(out.acs, RebindMethods(*out.schema, acs));
  RAR_ASSIGN_OR_RETURN(AccessMethodId a_method,
                       out.acs.Add("a_check_p33", a_rel, {0},
                                   /*dependent=*/true));

  Value c = out.schema->MintFreshConstant("c_p33");
  out.conf = Configuration(out.schema.get());
  out.conf.UnionWith(conf);
  out.conf.AddSeedConstant(c, da);
  out.access = Access{a_method, {c}};

  // Q' = ((∃x A(x)) ∨ Q2) ∧ Q1, expanded to a UCQ.
  for (const ConjunctiveQuery& d1 : q1.disjuncts) {
    {
      ConjunctiveQuery merged;
      VarId x = merged.AddVar("XA_p33", da);
      merged.atoms.push_back(Atom{a_rel, {Term::MakeVar(x)}});
      MergeInto(&merged, d1, "_q1");
      RAR_RETURN_NOT_OK(merged.Validate(*out.schema));
      out.query.disjuncts.push_back(std::move(merged));
    }
    for (const ConjunctiveQuery& d2 : q2.disjuncts) {
      ConjunctiveQuery merged;
      MergeInto(&merged, d2, "_q2");
      MergeInto(&merged, d1, "_q1");
      RAR_RETURN_NOT_OK(merged.Validate(*out.schema));
      out.query.disjuncts.push_back(std::move(merged));
    }
  }
  return out;
}

Result<ContainmentToLtrInstance> BuildContainmentToLtrCQ(
    const Schema& schema, const AccessMethodSet& acs,
    const Configuration& conf, const ConjunctiveQuery& q1,
    const ConjunctiveQuery& q2) {
  if (!q1.IsBoolean() || !q2.IsBoolean()) {
    return Status::InvalidArgument("Prop 3.3 needs Boolean queries");
  }
  ContainmentToLtrInstance out;
  out.schema = std::make_shared<Schema>();
  Schema& s = *out.schema;

  // Copy domains, then lift every relation with a trailing tag attribute.
  for (DomainId d = 0; d < schema.num_domains(); ++d) {
    s.AddDomain(schema.domain_name(d));
  }
  DomainId tag = s.AddDomain("Tag_p33");
  for (RelationId rel = 0; rel < schema.num_relations(); ++rel) {
    const Relation& r = schema.relation(rel);
    std::vector<Attribute> attrs = r.attributes;
    attrs.push_back(Attribute{"tag", tag});
    RAR_ASSIGN_OR_RETURN(RelationId lifted,
                         s.AddRelation(r.name, std::move(attrs)));
    if (lifted != rel) return Status::Internal("relation ids not preserved");
  }
  RAR_ASSIGN_OR_RETURN(RelationId or_rel,
                       s.AddRelation("Or_p33",
                                     std::vector<DomainId>{tag, tag}));
  RAR_ASSIGN_OR_RETURN(RelationId p_rel,
                       s.AddRelation("P_p33", std::vector<DomainId>{tag}));
  RAR_ASSIGN_OR_RETURN(RelationId a_rel,
                       s.AddRelation("A_p33", std::vector<DomainId>{tag}));

  // Methods keep their input positions (the tag place is appended as an
  // output); A gets the Boolean access.
  out.acs = AccessMethodSet(out.schema.get());
  for (AccessMethodId mid = 0; mid < acs.size(); ++mid) {
    const AccessMethod& m = acs.method(mid);
    RAR_RETURN_NOT_OK(
        out.acs.Add(m.name, m.relation, m.input_positions, m.dependent)
            .status());
  }
  RAR_ASSIGN_OR_RETURN(AccessMethodId a_method,
                       out.acs.Add("a_check_p33", a_rel, {0},
                                   /*dependent=*/true));

  Value zero = s.InternConstant("tag0_p33");
  Value one = s.InternConstant("tag1_p33");

  out.conf = Configuration(out.schema.get());
  // Existing facts, tagged 1; seeds carried over.
  for (const Fact& f : conf.AllFacts()) {
    Fact lifted = f;
    lifted.values.push_back(one);
    out.conf.AddFact(lifted);
  }
  for (const TypedValue& tv : conf.AdomEntries()) {
    out.conf.AddSeedConstant(tv.value, tv.domain);
  }
  // Or truth-support, P(1), A(0).
  out.conf.AddFact(Fact(or_rel, {one, zero}));
  out.conf.AddFact(Fact(or_rel, {zero, one}));
  out.conf.AddFact(Fact(or_rel, {one, one}));
  out.conf.AddFact(Fact(p_rel, {one}));
  out.conf.AddFact(Fact(a_rel, {zero}));

  // 0-tagged escape-hatch facts: the frozen image of q2 under per-domain
  // default constants (a generalization of the paper's one-padding-fact-
  // per-relation that also handles constants inside q2).
  {
    std::vector<Value> defaults(s.num_domains());
    for (DomainId d = 0; d < s.num_domains(); ++d) {
      defaults[d] = s.InternConstant("dflt_" + s.domain_name(d));
    }
    std::vector<Value> assignment(q2.num_vars());
    for (int v = 0; v < q2.num_vars(); ++v) {
      DomainId d = q2.var_domains[v];
      assignment[v] = defaults[d == kInvalidId ? 0 : d];
    }
    for (Fact f : GroundAtoms(q2, assignment)) {
      f.values.push_back(zero);
      out.conf.AddFact(f);
    }
  }

  // Q'' = A(b1) ∧ Q''2(b2) ∧ Or(b1,b2) ∧ Q''1(b) ∧ P(b).
  ConjunctiveQuery q;
  VarId b1 = q.AddVar("B1_p33", tag);
  VarId b2 = q.AddVar("B2_p33", tag);
  VarId b = q.AddVar("B_p33", tag);
  q.atoms.push_back(Atom{a_rel, {Term::MakeVar(b1)}});
  {
    std::vector<VarId> remap = MergeInto(&q, q2, "_q2");
    (void)remap;
    // Tag every q2 atom with b2 (they were appended after the A atom).
    for (size_t i = 1; i < q.atoms.size(); ++i) {
      q.atoms[i].terms.push_back(Term::MakeVar(b2));
    }
  }
  q.atoms.push_back(
      Atom{or_rel, {Term::MakeVar(b1), Term::MakeVar(b2)}});
  {
    size_t before = q.atoms.size();
    MergeInto(&q, q1, "_q1");
    for (size_t i = before; i < q.atoms.size(); ++i) {
      q.atoms[i].terms.push_back(Term::MakeVar(b));
    }
  }
  q.atoms.push_back(Atom{p_rel, {Term::MakeVar(b)}});
  RAR_RETURN_NOT_OK(q.Validate(s));
  out.query.disjuncts.push_back(std::move(q));

  out.access = Access{a_method, {one}};
  return out;
}

}  // namespace rar
