#include "transform/schema_tools.h"

namespace rar {

Result<AccessMethodSet> RebindMethods(const Schema& schema,
                                      const AccessMethodSet& acs) {
  AccessMethodSet out(&schema);
  for (AccessMethodId mid = 0; mid < acs.size(); ++mid) {
    const AccessMethod& m = acs.method(mid);
    if (m.relation >= schema.num_relations()) {
      return Status::InvalidArgument(
          "method references a relation missing from the extended schema");
    }
    RAR_ASSIGN_OR_RETURN(AccessMethodId copied,
                         out.Add(m.name, m.relation, m.input_positions,
                                 m.dependent));
    if (copied != mid) {
      return Status::Internal("method ids not preserved by rebinding");
    }
  }
  return out;
}

}  // namespace rar
