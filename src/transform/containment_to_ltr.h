// Proposition 3.3: containment under access limitations reduces to the
// complement of long-term relevance.
//
// PQ version: extend the schema with a fresh unary relation A carrying a
// Boolean dependent access method, seed a fresh constant c, and set
//     Q' = ((∃x A(x)) ∨ Q2) ∧ Q1.
// Then Q1 ⊑_{ACS,Conf} Q2  iff  A(c)? is NOT long-term relevant for Q'.
//
// CQ version ("coding Boolean operations in relations"): additionally give
// every relation an extra place over a fresh tag domain, add fixed lookup
// relations Or(1,0)/(0,1)/(1,1) and P(1), tag existing facts with 1, pad
// every relation with an all-defaults fact tagged 0, put A(0) in the
// configuration, and set
//     Q'' = ∃b1 ∃b2 ∃b  A(b1) ∧ Q''2(b2) ∧ Or(b1, b2) ∧ Q''1(b) ∧ P(b),
// a single conjunctive query. Then A(1)? is LTR for Q'' iff it is LTR for
// Q' — so containment of conjunctive queries reduces to (non-)relevance of
// a Boolean access for a conjunctive query.
#ifndef RAR_TRANSFORM_CONTAINMENT_TO_LTR_H_
#define RAR_TRANSFORM_CONTAINMENT_TO_LTR_H_

#include <memory>

#include "access/access_method.h"
#include "query/query.h"
#include "relational/configuration.h"
#include "util/status.h"

namespace rar {

/// \brief Output of the Prop 3.3 reductions: an LTR instance whose answer
/// is the *negation* of the containment question.
struct ContainmentToLtrInstance {
  std::shared_ptr<Schema> schema;
  AccessMethodSet acs;
  Configuration conf;
  UnionQuery query;  ///< Q' (PQ version) or Q'' (CQ version)
  Access access;     ///< A(c)? resp. A(1)?
};

/// The PQ version of Prop 3.3 (queries as Boolean UCQs; the rewritten
/// query is the UCQ expansion of ((∃x A(x)) ∨ Q2) ∧ Q1).
Result<ContainmentToLtrInstance> BuildContainmentToLtrPQ(
    const Schema& schema, const AccessMethodSet& acs,
    const Configuration& conf, const UnionQuery& q1, const UnionQuery& q2);

/// The CQ version of Prop 3.3 (q1 and q2 must be single conjunctive
/// queries; the rewritten query is one CQ).
Result<ContainmentToLtrInstance> BuildContainmentToLtrCQ(
    const Schema& schema, const AccessMethodSet& acs,
    const Configuration& conf, const ConjunctiveQuery& q1,
    const ConjunctiveQuery& q2);

}  // namespace rar

#endif  // RAR_TRANSFORM_CONTAINMENT_TO_LTR_H_
