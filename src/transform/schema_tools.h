// Schema/ACS extension helpers shared by the Section 3 reductions.
//
// The reductions of Propositions 3.3, 3.4 and 3.6 all extend a problem
// instance with fresh relations, rebased access-method sets and rewritten
// configurations. Relation and domain ids are append-only in rar::Schema,
// so an extended schema keeps every existing id valid — these helpers
// exploit that to keep the reductions purely additive.
#ifndef RAR_TRANSFORM_SCHEMA_TOOLS_H_
#define RAR_TRANSFORM_SCHEMA_TOOLS_H_

#include "access/access_method.h"
#include "relational/schema.h"
#include "util/status.h"

namespace rar {

/// Copies every method of `acs` into a new set bound to `schema` (which
/// must be an extension of the schema `acs` was built against: same
/// relation ids). Method ids are preserved.
Result<AccessMethodSet> RebindMethods(const Schema& schema,
                                      const AccessMethodSet& acs);

}  // namespace rar

#endif  // RAR_TRANSFORM_SCHEMA_TOOLS_H_
