#include "reference/brute_force.h"

#include <algorithm>
#include <functional>
#include <string>
#include <unordered_set>

#include "access/path.h"
#include "query/eval.h"
#include "relational/overlay.h"
#include "util/combinatorics.h"

namespace rar {

namespace {

// Canonical state key for configuration dedup: sorted fact encodings.
std::string ConfigKey(const ConfigView& conf) {
  std::vector<Fact> facts = conf.AllFacts();
  std::sort(facts.begin(), facts.end());
  std::string key;
  for (const Fact& f : facts) {
    key += std::to_string(f.relation);
    key += '(';
    for (const Value& v : f.values) {
      key += std::to_string(v.Packed());
      key += ',';
    }
    key += ')';
  }
  return key;
}

}  // namespace

BoundedUniverse::BoundedUniverse(const ConfigView& conf,
                                 const AccessMethodSet& acs,
                                 int extra_constants_per_domain,
                                 const std::vector<TypedValue>& extra_values)
    : schema_(acs.schema()), acs_(&acs) {
  values_by_domain_.resize(schema_->num_domains());
  for (DomainId d = 0; d < schema_->num_domains(); ++d) {
    values_by_domain_[d] = conf.AdomOfDomain(d).ToVector();
    for (int i = 0; i < extra_constants_per_domain; ++i) {
      values_by_domain_[d].push_back(
          schema_->MintFreshConstant("u_" + schema_->domain_name(d)));
    }
  }
  for (const TypedValue& tv : extra_values) {
    if (tv.domain >= values_by_domain_.size()) continue;
    auto& values = values_by_domain_[tv.domain];
    bool present = false;
    for (const Value& v : values) present |= (v == tv.value);
    if (!present) values.push_back(tv.value);
  }
}

namespace {

// Typed binding values of an access (for universe extension).
std::vector<TypedValue> BindingValues(const AccessMethodSet& acs,
                                      const Access& access) {
  const AccessMethod& m = acs.method(access.method);
  const Relation& rel = acs.schema()->relation(m.relation);
  std::vector<TypedValue> out;
  for (int i = 0; i < m.num_inputs(); ++i) {
    out.push_back(TypedValue{access.binding[i],
                             rel.attributes[m.input_positions[i]].domain});
  }
  return out;
}

}  // namespace

const std::vector<Value>& BoundedUniverse::ValuesOf(DomainId domain) const {
  return values_by_domain_[domain];
}

std::vector<Fact> BoundedUniverse::AllFactsOf(RelationId rel) const {
  const Relation& r = schema_->relation(rel);
  std::vector<int> sizes;
  sizes.reserve(r.arity());
  for (const Attribute& attr : r.attributes) {
    sizes.push_back(static_cast<int>(values_by_domain_[attr.domain].size()));
  }
  std::vector<Fact> out;
  ForEachProduct(sizes, [&](const std::vector<int>& choice) {
    Fact f;
    f.relation = rel;
    f.values.reserve(choice.size());
    for (size_t i = 0; i < choice.size(); ++i) {
      f.values.push_back(
          values_by_domain_[r.attributes[i].domain][choice[i]]);
    }
    out.push_back(std::move(f));
    return false;
  });
  return out;
}

std::vector<Fact> BoundedUniverse::FactsMatching(const Access& access) const {
  const AccessMethod& m = acs_->method(access.method);
  const Relation& r = schema_->relation(m.relation);
  // Free positions range over the universe; input positions are pinned.
  std::vector<int> free_positions;
  std::vector<int> sizes;
  for (int pos = 0; pos < r.arity(); ++pos) {
    if (!m.IsInputPosition(pos)) {
      free_positions.push_back(pos);
      sizes.push_back(
          static_cast<int>(values_by_domain_[r.attributes[pos].domain].size()));
    }
  }
  std::vector<Fact> out;
  ForEachProduct(sizes, [&](const std::vector<int>& choice) {
    Fact f;
    f.relation = m.relation;
    f.values.assign(r.arity(), Value());
    for (int i = 0; i < m.num_inputs(); ++i) {
      f.values[m.input_positions[i]] = access.binding[i];
    }
    for (size_t i = 0; i < free_positions.size(); ++i) {
      int pos = free_positions[i];
      f.values[pos] = values_by_domain_[r.attributes[pos].domain][choice[i]];
    }
    out.push_back(std::move(f));
    return false;
  });
  return out;
}

bool BruteForceIR(const ConfigView& conf, const AccessMethodSet& acs,
                  const Access& access, const UnionQuery& query,
                  const BruteForceOptions& options) {
  if (!CheckWellFormed(conf, acs, access).ok()) return false;
  BoundedUniverse universe(conf, acs, options.extra_constants_per_domain,
                           BindingValues(acs, access));
  std::set<std::vector<Value>> before = CertainAnswers(query, conf);
  OverlayConfiguration after(&conf);
  for (const Fact& f : universe.FactsMatching(access)) after.AddFact(f);
  std::set<std::vector<Value>> after_answers = CertainAnswers(query, after);
  for (const std::vector<Value>& t : after_answers) {
    if (before.count(t) == 0) return true;
  }
  return false;
}

namespace {

// Depth-first search over continuation paths for BruteForceLTR. The
// evolving configuration is one overlay over the start configuration,
// extended and retracted (AddFact/PopFact) in lockstep with the path; the
// truncation replays into a second scratch overlay — the base is never
// copied.
class LtrSearch {
 public:
  LtrSearch(const ConfigView& conf, const AccessMethodSet& acs,
            const UnionQuery& query, const BoundedUniverse& universe,
            const BruteForceOptions& options)
      : acs_(acs), query_(query), universe_(universe), options_(options),
        trunc_(&conf) {}

  // `path` must already contain the first access step, and `config` must
  // overlay the same base configuration the path starts from.
  bool Search(AccessPath* path, OverlayConfiguration* config) {
    nodes_ = 0;
    return Dfs(path, config, 0);
  }

 private:
  bool Dfs(AccessPath* path, OverlayConfiguration* config, int depth) {
    if (options_.node_budget > 0 && ++nodes_ > options_.node_budget) {
      return false;
    }
    if (EvalBool(query_, *config)) {
      // Witness iff the query fails after the truncated path. Extensions
      // cannot succeed once the truncation satisfies the query (the
      // truncated configuration only grows), so stop either way.
      Status st = path->ReplayTruncationInto(&trunc_);
      return st.ok() && !EvalBool(query_, trunc_);
    }
    if (depth >= options_.max_steps) return false;

    const Schema& schema = *acs_.schema();
    for (AccessMethodId mid = 0; mid < acs_.size(); ++mid) {
      const AccessMethod& m = acs_.method(mid);
      const Relation& rel = schema.relation(m.relation);
      // Candidate bindings: typed active domain for dependent methods,
      // whole universe for independent ones. Materialized: the overlay
      // grows inside the loop, which would invalidate borrowed slices.
      std::vector<int> sizes;
      std::vector<std::vector<Value>> candidates;
      for (int pos : m.input_positions) {
        DomainId dom = rel.attributes[pos].domain;
        candidates.push_back(m.dependent ? config->AdomOfDomain(dom).ToVector()
                                         : universe_.ValuesOf(dom));
        sizes.push_back(static_cast<int>(candidates.back().size()));
      }
      bool found = ForEachProduct(sizes, [&](const std::vector<int>& choice) {
        Access access;
        access.method = mid;
        for (size_t i = 0; i < choice.size(); ++i) {
          access.binding.push_back(candidates[i][choice[i]]);
        }
        for (const Fact& f : universe_.FactsMatching(access)) {
          if (config->Contains(f)) continue;
          config->AddFact(f);
          path->Append(AccessStep{access, {f}});
          bool ok = Dfs(path, config, depth + 1);
          path->PopBack();
          config->PopFact();
          if (ok) return true;
        }
        return false;
      });
      if (found) return true;
    }
    return false;
  }

  const AccessMethodSet& acs_;
  const UnionQuery& query_;
  const BoundedUniverse& universe_;
  const BruteForceOptions& options_;
  OverlayConfiguration trunc_;
  long nodes_ = 0;
};

}  // namespace

bool BruteForceLTR(const ConfigView& conf, const AccessMethodSet& acs,
                   const Access& access, const UnionQuery& query,
                   const BruteForceOptions& options) {
  if (!CheckWellFormed(conf, acs, access).ok()) return false;
  BoundedUniverse universe(conf, acs, options.extra_constants_per_domain,
                           BindingValues(acs, access));
  std::vector<Fact> matching = universe.FactsMatching(access);

  // Enumerate non-empty first responses up to the size bound; one overlay
  // serves every subset (Reset between candidates).
  const int n = static_cast<int>(matching.size());
  if (n > 62) return false;  // guarded by test sizing
  LtrSearch search(conf, acs, query, universe, options);
  OverlayConfiguration config(&conf);
  return ForEachSubset(n, [&](uint64_t mask) {
    int bits = __builtin_popcountll(mask);
    if (bits == 0 || bits > options.max_first_response) return false;
    std::vector<Fact> response;
    config.Reset();
    for (int i = 0; i < n; ++i) {
      if (mask & (uint64_t{1} << i)) {
        response.push_back(matching[i]);
        config.AddFact(matching[i]);
      }
    }
    AccessPath path(&conf, &acs);
    path.Append(AccessStep{access, response});
    return search.Search(&path, &config);
  });
}

bool BruteForceNotContained(const ConfigView& conf,
                            const AccessMethodSet& acs, const UnionQuery& q1,
                            const UnionQuery& q2,
                            const BruteForceOptions& options) {
  std::vector<TypedValue> query_constants = QueryConstants(q1, *acs.schema());
  for (const TypedValue& tv : QueryConstants(q2, *acs.schema())) {
    query_constants.push_back(tv);
  }
  BoundedUniverse universe(conf, acs, options.extra_constants_per_domain,
                           query_constants);
  const Schema& schema = *acs.schema();

  std::unordered_set<std::string> visited;
  long nodes = 0;

  // One overlay over the start configuration, extended and retracted in
  // lockstep with the DFS (the base is never copied).
  OverlayConfiguration config(&conf);
  std::function<bool(int)> dfs = [&](int depth) -> bool {
    if (options.node_budget > 0 && ++nodes > options.node_budget) {
      return false;
    }
    if (!visited.insert(ConfigKey(config)).second) return false;
    if (EvalBool(q1, config) && !EvalBool(q2, config)) return true;
    if (depth >= options.max_steps) return false;

    for (AccessMethodId mid = 0; mid < acs.size(); ++mid) {
      const AccessMethod& m = acs.method(mid);
      const Relation& rel = schema.relation(m.relation);
      // Materialized: the overlay grows inside the loop.
      std::vector<int> sizes;
      std::vector<std::vector<Value>> candidates;
      for (int pos : m.input_positions) {
        DomainId dom = rel.attributes[pos].domain;
        candidates.push_back(m.dependent ? config.AdomOfDomain(dom).ToVector()
                                         : universe.ValuesOf(dom));
        sizes.push_back(static_cast<int>(candidates.back().size()));
      }
      bool found = ForEachProduct(sizes, [&](const std::vector<int>& choice) {
        Access access;
        access.method = mid;
        for (size_t i = 0; i < choice.size(); ++i) {
          access.binding.push_back(candidates[i][choice[i]]);
        }
        for (const Fact& f : universe.FactsMatching(access)) {
          if (config.Contains(f)) continue;
          config.AddFact(f);
          bool ok = dfs(depth + 1);
          config.PopFact();
          if (ok) return true;
        }
        return false;
      });
      if (found) return true;
    }
    return false;
  };
  return dfs(0);
}

bool BruteForceIsCritical(const Schema& schema, const UnionQuery& q,
                          const Fact& t,
                          const std::vector<Value>& domain_values,
                          long node_budget) {
  // Build every fact of t's relation over the value set.
  const Relation& rel = schema.relation(t.relation);
  std::vector<int> sizes(rel.arity(),
                         static_cast<int>(domain_values.size()));
  std::vector<Fact> others;
  ForEachProduct(sizes, [&](const std::vector<int>& choice) {
    Fact f;
    f.relation = t.relation;
    for (int c : choice) f.values.push_back(domain_values[c]);
    if (!(f == t)) others.push_back(std::move(f));
    return false;
  });

  const int n = static_cast<int>(others.size());
  if (n > 62) return false;  // guarded by test sizing
  long nodes = 0;
  return ForEachSubset(n, [&](uint64_t mask) {
    if (node_budget > 0 && ++nodes > node_budget) return false;
    Configuration without(&schema);
    for (int i = 0; i < n; ++i) {
      if (mask & (uint64_t{1} << i)) without.AddFact(others[i]);
    }
    if (EvalBool(q, without)) return false;  // monotone: adding t keeps true
    OverlayConfiguration with(&without);
    with.AddFact(t);
    return EvalBool(q, with);
  });
}

}  // namespace rar
