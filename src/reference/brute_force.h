// Brute-force reference deciders implementing the raw Section 2 semantics.
//
// These engines enumerate instances, responses and access paths over a
// bounded universe (active domain + a few pre-minted fresh constants per
// abstract domain) and decide IR / LTR / containment directly from the
// definitions. They are exponential and only usable on tiny inputs — which
// is exactly their job: they are the ground truth the symbolic engines are
// cross-validated against in the test suite.
//
// Soundness of the bounds: every witness the symbolic theory guarantees
// (Prop 4.1's single fresh constant, the pruned paths of Section 4, the
// tree-like models of Section 5) fits in a universe with enough fresh
// constants and a long enough path; tests size the options accordingly.
#ifndef RAR_REFERENCE_BRUTE_FORCE_H_
#define RAR_REFERENCE_BRUTE_FORCE_H_

#include <vector>

#include "access/access_method.h"
#include "query/query.h"
#include "relational/config_view.h"
#include "relational/configuration.h"

namespace rar {

/// Search bounds for the brute-force deciders.
struct BruteForceOptions {
  /// Fresh constants minted per abstract domain, beyond the active domain.
  int extra_constants_per_domain = 2;
  /// Maximum number of accesses explored after the first one (LTR) or in
  /// total (containment), each contributing at most one new fact.
  int max_steps = 4;
  /// Maximum size of the first access's response explored for LTR.
  int max_first_response = 2;
  /// Hard cap on search nodes (safety valve; 0 = unlimited).
  long node_budget = 2000000;
};

/// \brief A bounded universe: per-domain candidate values and the facts
/// constructible from them.
class BoundedUniverse {
 public:
  /// Builds the universe for `conf`: active-domain values per domain plus
  /// `extra` fresh constants per domain that occurs in the schema, plus any
  /// `extra_values` (e.g. access-binding constants and query constants that
  /// are not in the configuration — instances may contain them anywhere).
  BoundedUniverse(const ConfigView& conf, const AccessMethodSet& acs,
                  int extra_constants_per_domain,
                  const std::vector<TypedValue>& extra_values = {});

  /// Candidate values of one domain.
  const std::vector<Value>& ValuesOf(DomainId domain) const;

  /// Every fact over `rel` constructible from the universe.
  std::vector<Fact> AllFactsOf(RelationId rel) const;

  /// Every universe fact matching `access` (same relation, binding agrees).
  std::vector<Fact> FactsMatching(const Access& access) const;

  const Schema& schema() const { return *schema_; }

 private:
  const Schema* schema_;
  const AccessMethodSet* acs_;
  std::vector<std::vector<Value>> values_by_domain_;
};

/// Immediate relevance by definition: Q is not certain at `conf`, and some
/// sound response to `access` makes a new tuple certain. Exploits
/// monotonicity: the maximal universe response decides.
bool BruteForceIR(const ConfigView& conf, const AccessMethodSet& acs,
                  const Access& access, const UnionQuery& query,
                  const BruteForceOptions& options = {});

/// Long-term relevance by definition: exhaustive search over paths that
/// start with `access` (first response: subsets of matching universe facts
/// up to options.max_first_response; later steps: single-fact responses to
/// well-formed accesses), accepting when the query holds after the path but
/// not after its truncation.
bool BruteForceLTR(const ConfigView& conf, const AccessMethodSet& acs,
                   const Access& access, const UnionQuery& query,
                   const BruteForceOptions& options = {});

/// Non-containment by definition: BFS over configurations reachable from
/// `conf` (single-fact responses), accepting when q1 holds and q2 does not.
bool BruteForceNotContained(const ConfigView& conf,
                            const AccessMethodSet& acs, const UnionQuery& q1,
                            const UnionQuery& q2,
                            const BruteForceOptions& options = {});

/// Containment by definition (negation of the above).
inline bool BruteForceContained(const ConfigView& conf,
                                const AccessMethodSet& acs,
                                const UnionQuery& q1, const UnionQuery& q2,
                                const BruteForceOptions& options = {}) {
  return !BruteForceNotContained(conf, acs, q1, q2, options);
}

/// Critical tuples (Miklau–Suciu, used by Prop 4.5): `t` is critical for
/// Boolean query `q` over the finite set `domain_values` iff deleting `t`
/// from some instance over those values changes the query's truth value.
/// Exhaustive over instances of the single relation `t.relation`.
bool BruteForceIsCritical(const Schema& schema, const UnionQuery& q,
                          const Fact& t,
                          const std::vector<Value>& domain_values,
                          long node_budget = 2000000);

}  // namespace rar

#endif  // RAR_REFERENCE_BRUTE_FORCE_H_
