// T1-LTR-indep: long-term relevance with independent accesses (Σ2P), and
// the Prop 4.3 single-occurrence fast path as an ablation.
//
// The star family keeps the accessed relation single-occurrence so both
// engines apply: the general engine's assignment enumeration grows with
// the variable/atom count, while the fast path stays a single evaluation.
#include <benchmark/benchmark.h>

#include "relevance/ltr_independent.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace {

// The ablation uses *negative* instances (query already certain): a "not
// relevant" answer forces the Σ2P engine to exhaust its assignment space,
// while the fast path needs a single evaluation. Positive instances are
// found quickly by both (first fresh assignment wins).
rar::StarFamily SatisfiedStar(int rays, int constants) {
  rar::StarFamily family = rar::MakeStarFamily(rays, constants);
  const rar::Schema& schema = *family.scenario.schema;
  rar::Value s0 = schema.InternConstant("s0");
  rar::Value s1 = schema.InternConstant("s1");
  family.scenario.conf.AddFact(rar::Fact(0, {s0, s1}));  // Hub(s0, s1)
  for (int i = 0; i < rays; ++i) {
    family.scenario.conf.AddFact(
        rar::Fact(static_cast<rar::RelationId>(1 + i), {s1}));
  }
  return family;
}

void BM_LTR_Independent_General(benchmark::State& state) {
  const int rays = static_cast<int>(state.range(0));
  rar::StarFamily family = SatisfiedStar(rays, 24);
  for (auto _ : state) {
    bool ltr = rar::IsLongTermRelevantIndependent(
        family.scenario.conf, family.scenario.acs, family.probe,
        family.query);
    benchmark::DoNotOptimize(ltr);
  }
  state.SetLabel("rays " + std::to_string(rays) + ", general engine");
}
BENCHMARK(BM_LTR_Independent_General)->DenseRange(2, 12, 2);

void BM_LTR_Independent_FastPath(benchmark::State& state) {
  const int rays = static_cast<int>(state.range(0));
  rar::StarFamily family = SatisfiedStar(rays, 24);
  const rar::ConjunctiveQuery& cq = family.query.disjuncts[0];
  for (auto _ : state) {
    auto ltr = rar::LtrSingleOccurrenceFastPath(
        family.scenario.conf, family.scenario.acs, family.probe, cq);
    benchmark::DoNotOptimize(ltr);
  }
  state.SetLabel("rays " + std::to_string(rays) + ", Prop 4.3 fast path");
}
BENCHMARK(BM_LTR_Independent_FastPath)->DenseRange(2, 12, 2);

void BM_LTR_Independent_RepeatedRelation(benchmark::State& state) {
  // Repeated accessed relation: only the Σ2P engine applies; query size
  // sweep over chains of R atoms.
  const int len = static_cast<int>(state.range(0));
  rar::Rng rng(5);
  rar::ChainFamily family = rar::MakeChainFamily(len);
  // Replace the dependent method with an independent one for this regime.
  rar::AccessMethodSet indep(family.scenario.schema.get());
  (void)*indep.Add("r_any", 0, {0}, /*dependent=*/false);
  rar::Access probe{0, {family.scenario.schema->InternConstant("c1")}};
  for (auto _ : state) {
    bool ltr = rar::IsLongTermRelevantIndependent(
        family.scenario.conf, indep, probe, family.contained);
    benchmark::DoNotOptimize(ltr);
  }
  state.SetLabel("chain length " + std::to_string(len));
}
BENCHMARK(BM_LTR_Independent_RepeatedRelation)->DenseRange(2, 7);

}  // namespace

BENCHMARK_MAIN();
