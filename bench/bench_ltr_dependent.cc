// T1-LTR-dep-CQ: long-term relevance with dependent accesses, Boolean
// access (NEXPTIME-complete), via the Prop 3.5 subset algorithm with the
// containment oracle.
//
// Sweeps: (a) witness-chain length (oracle work grows with the production
// chain), (b) number of access-compatible subgoals (2^k oracle calls).
#include <benchmark/benchmark.h>

#include "relevance/ltr_dependent.h"
#include "workload/generators.h"

namespace {

void BM_LtrDependent_ChainLength(benchmark::State& state) {
  const int len = static_cast<int>(state.range(0));
  rar::ChainFamily family = rar::MakeChainFamily(len);
  // A Boolean access on R: does the chain edge (c0, c1) exist?
  rar::AccessMethodSet acs = family.scenario.acs;
  rar::AccessMethodId r_bool =
      *acs.Add("r_bool", 0, {0, 1}, /*dependent=*/true);
  rar::Access probe{r_bool,
                    {family.scenario.schema->InternConstant("c0"),
                     family.scenario.schema->InternConstant("c1")}};
  rar::ContainmentOptions opts;
  opts.max_aux_facts = len + 2;
  for (auto _ : state) {
    auto ltr = rar::IsLongTermRelevantDependentCQ(
        family.scenario.conf, acs, probe, family.contained.disjuncts[0],
        opts);
    benchmark::DoNotOptimize(ltr.ok());
  }
  state.SetLabel("chain length " + std::to_string(len));
}
BENCHMARK(BM_LtrDependent_ChainLength)->DenseRange(1, 6);

void BM_LtrDependent_CompatibleSubgoals(benchmark::State& state) {
  // Query with k atoms over the accessed relation sharing the binding:
  // the Prop 3.5 algorithm enumerates 2^k - 1 guesses.
  const int k = static_cast<int>(state.range(0));
  rar::ChainFamily family = rar::MakeChainFamily(1);
  const rar::Schema& schema = *family.scenario.schema;
  rar::AccessMethodSet acs = family.scenario.acs;
  rar::AccessMethodId r_bool =
      *acs.Add("r_bool", 0, {0, 1}, /*dependent=*/true);
  rar::Value c0 = schema.InternConstant("c0");
  rar::Value c1 = schema.InternConstant("c1");

  rar::ConjunctiveQuery q;
  rar::DomainId d = 0;
  for (int i = 0; i < k; ++i) {
    rar::VarId v = q.AddVar("V" + std::to_string(i), d);
    // R(c0, Vi): compatible with the binding (c0, c1) on the constant.
    q.atoms.push_back(
        rar::Atom{0, {rar::Term::MakeConst(c0), rar::Term::MakeVar(v)}});
  }
  (void)q.Validate(schema);
  rar::Access probe{r_bool, {c0, c1}};
  rar::ContainmentOptions opts;
  opts.max_aux_facts = 3;
  for (auto _ : state) {
    auto ltr = rar::IsLongTermRelevantDependentCQ(family.scenario.conf, acs,
                                                  probe, q, opts);
    benchmark::DoNotOptimize(ltr.ok());
  }
  state.SetLabel(std::to_string(k) + " compatible subgoals (2^k guesses)");
}
BENCHMARK(BM_LtrDependent_CompatibleSubgoals)->DenseRange(1, 6);

void BM_LtrDependent_GeneralAccessExtension(benchmark::State& state) {
  // The non-Boolean extension (truncation cut + achievability): chain
  // length sweep.
  const int len = static_cast<int>(state.range(0));
  rar::ChainFamily family = rar::MakeChainFamily(len);
  rar::Access probe{0, {family.scenario.schema->InternConstant("c1")}};
  rar::ContainmentOptions opts;
  opts.max_aux_facts = len + 2;
  for (auto _ : state) {
    auto ltr = rar::IsLongTermRelevantDependentGeneral(
        family.scenario.conf, family.scenario.acs, probe, family.contained,
        opts);
    benchmark::DoNotOptimize(ltr.ok());
  }
  state.SetLabel("general access, chain " + std::to_string(len));
}
BENCHMARK(BM_LtrDependent_GeneralAccessExtension)->DenseRange(1, 6);

}  // namespace

BENCHMARK_MAIN();
