// REDUCTIONS: the Section 3 reductions are polynomial-time — their build
// cost must scale polynomially (near-linearly) in the input size, in
// contrast to the decision procedures they connect.
#include <benchmark/benchmark.h>

#include "transform/config_folding.h"
#include "transform/containment_to_ltr.h"
#include "transform/ltr_to_containment.h"
#include "workload/generators.h"

namespace {

void BM_Reduction_Prop34Build(benchmark::State& state) {
  const int len = static_cast<int>(state.range(0));
  rar::ChainFamily family = rar::MakeChainFamily(len);
  rar::AccessMethodSet acs = family.scenario.acs;
  rar::AccessMethodId r_bool =
      *acs.Add("r_bool", 0, {0, 1}, /*dependent=*/true);
  rar::Access probe{r_bool,
                    {family.scenario.schema->InternConstant("c0"),
                     family.scenario.schema->InternConstant("c1")}};
  for (auto _ : state) {
    auto inst = rar::BuildLtrToContainment(*family.scenario.schema, acs,
                                           family.scenario.conf, probe,
                                           family.contained);
    benchmark::DoNotOptimize(inst.ok());
  }
  state.SetLabel("Prop 3.4 build, chain " + std::to_string(len));
}
BENCHMARK(BM_Reduction_Prop34Build)->DenseRange(2, 16, 2);

void BM_Reduction_Prop33PQBuild(benchmark::State& state) {
  const int len = static_cast<int>(state.range(0));
  rar::ChainFamily family = rar::MakeChainFamily(len);
  for (auto _ : state) {
    auto inst = rar::BuildContainmentToLtrPQ(
        *family.scenario.schema, family.scenario.acs, family.scenario.conf,
        family.contained, family.container);
    benchmark::DoNotOptimize(inst.ok());
  }
  state.SetLabel("Prop 3.3 (PQ) build, chain " + std::to_string(len));
}
BENCHMARK(BM_Reduction_Prop33PQBuild)->DenseRange(2, 16, 2);

void BM_Reduction_Prop33CQBuild(benchmark::State& state) {
  const int len = static_cast<int>(state.range(0));
  rar::ChainFamily family = rar::MakeChainFamily(len);
  for (auto _ : state) {
    auto inst = rar::BuildContainmentToLtrCQ(
        *family.scenario.schema, family.scenario.acs, family.scenario.conf,
        family.contained.disjuncts[0], family.container.disjuncts[0]);
    benchmark::DoNotOptimize(inst.ok());
  }
  state.SetLabel("Prop 3.3 (CQ coding) build, chain " + std::to_string(len));
}
BENCHMARK(BM_Reduction_Prop33CQBuild)->DenseRange(2, 16, 2);

void BM_Reduction_Prop36Fold(benchmark::State& state) {
  const int facts = static_cast<int>(state.range(0));
  rar::ChainFamily family = rar::MakeChainFamily(3);
  // Grow the configuration.
  rar::Configuration conf = family.scenario.conf;
  const rar::Schema& schema = *family.scenario.schema;
  for (int i = 0; i < facts; ++i) {
    conf.AddFact(rar::Fact(
        0, {schema.InternConstant("f" + std::to_string(i)),
            schema.InternConstant("f" + std::to_string(i + 1))}));
  }
  for (auto _ : state) {
    auto folded = rar::FoldConfigurationIntoQuery(
        schema, family.scenario.acs, conf, family.contained);
    benchmark::DoNotOptimize(folded.ok());
  }
  state.SetLabel("Prop 3.6 fold, " + std::to_string(facts) + " facts");
}
BENCHMARK(BM_Reduction_Prop36Fold)->RangeMultiplier(2)->Range(4, 64);

}  // namespace

BENCHMARK_MAIN();
