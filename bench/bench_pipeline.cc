// Pipelined mediation vs the serialized baseline.
//
// Both loops run the same multi-relation deep-web scenario through the
// same sharded engine; the only difference is MediatorOptions::pipelined —
// the serialized loop performs check(i) -> execute(i) -> apply(i) strictly
// in order, while the pipelined loop executes access i against the source
// and applies its response on a background worker underneath the ranking
// and relevance checks for access i+1.
//
// The workload is an *exploration stream*: each group's query needs a
// B-fact ending in a sink constant the source never produces, so the
// mediator performs every long-term-relevant access to fixpoint (LTR stays
// true — a sound source could still return the missing tuple). That is the
// regime pipelining targets: every relevant access gets performed
// eventually, so checking one response behind costs nothing, and the
// simulated source round-trip (deep-web accesses are network calls) plus
// the apply is hidden behind the next round's ranking + checks. Responses
// fan out to fresh constants, so applies also carry real work: active-
// domain growth and incremental frontier extension.
//
// Counters: `invalidations_avoided` (cross-epoch cache hits a global-epoch
// scheme would have lost), `stale_invalidations`, `overlapped_applies`.
// The crawl pair runs the same pipeline shape on the exhaustive baseline
// (every access performed, relevance unchecked).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "sim/deep_web.h"
#include "workload/generators.h"

namespace {

using rar::Access;
using rar::Configuration;
using rar::ConjunctiveQuery;
using rar::DeepWebSource;
using rar::EngineStats;
using rar::Fact;
using rar::MediatorOptions;
using rar::Mediator;
using rar::MultiRelationFamily;
using rar::Scenario;
using rar::Term;
using rar::UnionQuery;
using rar::Value;
using rar::VarId;

/// Simulated source round-trip; what the pipeline hides behind checks.
constexpr int kSourceLatencyUs = 200;

struct PipelineWorkload {
  MultiRelationFamily family;
  std::vector<UnionQuery> exploration_queries;
};

// Deepens the family's hidden instance with fresh-constant fan-outs (fat
// responses, Adom growth on apply) and replaces each group's query with an
// exploration query anchored on a sink constant no source fact ends with.
PipelineWorkload MakeWorkload(int groups, int values_per_group, int fanout) {
  PipelineWorkload w;
  w.family = rar::MakeMultiRelationFamily(groups, values_per_group);
  Scenario& s = w.family.scenario;
  for (int g = 0; g < groups; ++g) {
    const std::string tag = std::to_string(g);
    rar::RelationId rel_a = w.family.group_relations[g][0];
    rar::RelationId rel_b = w.family.group_relations[g][1];
    rar::DomainId dom = s.schema->relation(rel_a).attributes[0].domain;
    for (int i = 0; i < values_per_group; ++i) {
      Value ci = s.schema->InternConstant("c" + tag + "_" + std::to_string(i));
      for (int j = 0; j < fanout; ++j) {
        Value fresh = s.schema->InternConstant(
            "f" + tag + "_" + std::to_string(i) + "_" + std::to_string(j));
        w.family.hidden.AddFact(Fact(rel_a, {ci, fresh}));
      }
    }
    // Sink: seeded (so the query validates and is checkable) but never the
    // tail of any B-fact — the query stays uncertain, yet every access
    // stays long-term relevant (a sound source could return the tuple).
    Value sink = s.schema->InternConstant("sink" + tag);
    s.conf.AddSeedConstant(sink, dom);
    ConjunctiveQuery cq;
    VarId x = cq.AddVar("X", dom);
    VarId y = cq.AddVar("Y", dom);
    cq.atoms.push_back(rar::Atom{rel_a, {Term::MakeVar(x), Term::MakeVar(y)}});
    cq.atoms.push_back(rar::Atom{rel_b, {Term::MakeVar(y),
                                         Term::MakeConst(sink)}});
    (void)cq.Validate(*s.schema);
    UnionQuery q;
    q.disjuncts.push_back(std::move(cq));
    w.exploration_queries.push_back(std::move(q));
  }
  return w;
}

// Drives the relevance-guided mediator over the exploration stream of the
// first `num_queries` groups.
void RunMediation(benchmark::State& state, bool pipelined, bool footprint) {
  PipelineWorkload w = MakeWorkload(/*groups=*/3, /*values_per_group=*/3,
                                    /*fanout=*/3);
  const Scenario& s = w.family.scenario;
  constexpr int kQueries = 2;
  long performed = 0;
  EngineStats last;
  for (auto _ : state) {
    for (int g = 0; g < kQueries; ++g) {
      state.PauseTiming();
      DeepWebSource source(s.schema.get(), &s.acs, w.family.hidden);
      Mediator mediator(*s.schema, s.acs);
      MediatorOptions options;
      options.pipelined = pipelined;
      options.engine.footprint_invalidation = footprint;
      options.policy.latency_us = kSourceLatencyUs;
      options.max_rounds = 512;
      state.ResumeTiming();
      auto outcome = mediator.AnswerBoolean(w.exploration_queries[g], s.conf,
                                            &source, options);
      if (outcome.ok()) {
        performed += outcome->accesses_performed;
        last = outcome->engine;
      }
      benchmark::DoNotOptimize(outcome);
    }
  }
  state.SetItemsProcessed(performed);
  state.counters["invalidations_avoided"] =
      static_cast<double>(last.cross_epoch_hits);
  state.counters["stale_invalidations"] =
      static_cast<double>(last.stale_invalidations);
  state.counters["overlapped_applies"] =
      static_cast<double>(last.overlapped_applies);
  state.counters["hit_rate"] = last.cache_hit_rate();
  state.SetLabel(std::string(pipelined ? "pipelined" : "serialized") +
                 ", " + (footprint ? "footprint stamps" : "global epoch"));
}

void BM_Mediator_Serialized(benchmark::State& state) {
  RunMediation(state, /*pipelined=*/false, /*footprint=*/true);
}
BENCHMARK(BM_Mediator_Serialized)->Unit(benchmark::kMillisecond);

void BM_Mediator_Pipelined(benchmark::State& state) {
  RunMediation(state, /*pipelined=*/true, /*footprint=*/true);
}
BENCHMARK(BM_Mediator_Pipelined)->Unit(benchmark::kMillisecond);

// The pre-sharding baseline: serialized loop *and* global-epoch
// invalidation — what the engine did before per-relation versions.
void BM_Mediator_GlobalEpochBaseline(benchmark::State& state) {
  RunMediation(state, /*pipelined=*/false, /*footprint=*/false);
}
BENCHMARK(BM_Mediator_GlobalEpochBaseline)->Unit(benchmark::kMillisecond);

void RunCrawl(benchmark::State& state, bool pipelined) {
  PipelineWorkload w = MakeWorkload(/*groups=*/2, /*values_per_group=*/3,
                                    /*fanout=*/2);
  const Scenario& s = w.family.scenario;
  long performed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    DeepWebSource source(s.schema.get(), &s.acs, w.family.hidden);
    Mediator mediator(*s.schema, s.acs);
    MediatorOptions options;
    options.pipelined = pipelined;
    options.policy.latency_us = kSourceLatencyUs;
    options.max_rounds = 512;
    state.ResumeTiming();
    auto outcome = mediator.ExhaustiveCrawl(w.exploration_queries[0], s.conf,
                                            &source, options);
    if (outcome.ok()) performed += outcome->accesses_performed;
    benchmark::DoNotOptimize(outcome);
  }
  state.SetItemsProcessed(performed);
  state.SetLabel(pipelined ? "pipelined crawl" : "serialized crawl");
}

void BM_Crawl_Serialized(benchmark::State& state) {
  RunCrawl(state, /*pipelined=*/false);
}
BENCHMARK(BM_Crawl_Serialized)->Unit(benchmark::kMillisecond);

void BM_Crawl_Pipelined(benchmark::State& state) {
  RunCrawl(state, /*pipelined=*/true);
}
BENCHMARK(BM_Crawl_Pipelined)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
