// TABLE1: the headline harness — regenerates the shape of the paper's
// Table 1 ("Summary of combined complexity results").
//
// For every cell of the matrix (access regime x problem) it runs a
// representative scaling family through the corresponding engine, measures
// wall-clock growth, and prints the measured decisions next to the paper's
// complexity class. Absolute times are machine-dependent; what must hold
// is the *shape*: the dependent-access problems blow up with the witness
// size, the independent ones stay moderate, reductions stay polynomial,
// and the data-complexity sweeps stay flat (see bench_data_complexity).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "containment/access_containment.h"
#include "hardness/encode_nexptime.h"
#include "hardness/encode_pspace.h"
#include "hardness/tiling.h"
#include "relevance/criticality.h"
#include "relevance/immediate.h"
#include "relevance/ltr_dependent.h"
#include "relevance/ltr_independent.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace {

using Clock = std::chrono::steady_clock;

double MeasureMs(const std::function<void()>& fn) {
  auto start = Clock::now();
  fn();
  auto end = Clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

struct Row {
  std::string cell;
  std::string paper_class;
  std::string family;
  std::vector<double> times_ms;
  std::vector<std::string> sizes;
  std::string decisions;
};

void Print(const Row& r) {
  std::printf("%-28s %-22s %-30s", r.cell.c_str(), r.paper_class.c_str(),
              r.family.c_str());
  for (size_t i = 0; i < r.times_ms.size(); ++i) {
    std::printf(" %s=%.2fms", r.sizes[i].c_str(), r.times_ms[i]);
  }
  std::printf("  [%s]\n", r.decisions.c_str());
}

}  // namespace

int main() {
  std::printf("=== Table 1 (paper) regenerated as scaling experiments ===\n");
  std::printf("%-28s %-22s %-30s %s\n", "cell", "paper class",
              "family", "measured");
  std::printf("%s\n", std::string(110, '-').c_str());

  using namespace rar;

  // ---- IR (all regimes share the procedure): DP-complete.
  {
    Row row{"IR (indep & dep, CQ/PQ)", "DP-complete", "k-clique, k=2..5",
            {}, {}, ""};
    Rng rng(1);
    for (int k = 2; k <= 5; ++k) {
      CliqueFamily fam = MakeCliqueFamily(&rng, k, 10, 0.5);
      bool ir = false;
      row.times_ms.push_back(MeasureMs([&] {
        ir = IsImmediatelyRelevant(fam.scenario.conf, fam.scenario.acs,
                                   fam.probe, fam.query);
      }));
      row.sizes.push_back("k" + std::to_string(k));
      row.decisions += ir ? "R" : ".";
    }
    Print(row);
  }

  // ---- LTR, independent accesses: Σ2P-complete (criticality family).
  {
    Row row{"LTR indep (CQs & PQs)", "Sigma2P-complete",
            "critical-tuple, |Q| grows", {}, {}, ""};
    Schema schema;
    DomainId d = schema.AddDomain("D");
    RelationId r = *schema.AddRelation("R", std::vector<DomainId>{d, d});
    std::vector<Value> dom;
    for (int i = 0; i < 3; ++i) {
      dom.push_back(schema.InternConstant("d" + std::to_string(i)));
    }
    for (int len = 2; len <= 5; ++len) {
      // Query: an R-chain of `len` atoms; tuple: a chain edge.
      ConjunctiveQuery chain;
      std::vector<VarId> xs;
      for (int i = 0; i <= len; ++i) {
        xs.push_back(chain.AddVar("X" + std::to_string(i), d));
      }
      for (int i = 0; i < len; ++i) {
        chain.atoms.push_back(Atom{
            r, {Term::MakeVar(xs[i]), Term::MakeVar(xs[i + 1])}});
      }
      (void)chain.Validate(schema);
      UnionQuery q;
      q.disjuncts.push_back(chain);
      Fact t(r, {dom[0], dom[1]});
      bool critical = false;
      row.times_ms.push_back(MeasureMs([&] {
        auto res = IsCriticalViaLTR(schema, q, t, dom);
        critical = res.ok() && *res;
      }));
      row.sizes.push_back("|Q|" + std::to_string(len));
      row.decisions += critical ? "R" : ".";
    }
    Print(row);
  }

  // ---- LTR, dependent accesses, CQs: NEXPTIME-complete.
  {
    Row row{"LTR dep (CQs, Bool acc)", "NEXPTIME-complete",
            "chain production, L=1..5", {}, {}, ""};
    for (int len = 1; len <= 5; ++len) {
      ChainFamily fam = MakeChainFamily(len);
      AccessMethodSet acs = fam.scenario.acs;
      AccessMethodId r_bool = *acs.Add("r_bool", 0, {0, 1}, true);
      Access probe{r_bool, {fam.scenario.schema->InternConstant("c0"),
                            fam.scenario.schema->InternConstant("c1")}};
      ContainmentOptions opts;
      opts.max_aux_facts = len + 2;
      bool ltr = false;
      row.times_ms.push_back(MeasureMs([&] {
        auto res = IsLongTermRelevantDependentCQ(
            fam.scenario.conf, acs, probe, fam.contained.disjuncts[0], opts);
        ltr = res.ok() && *res;
      }));
      row.sizes.push_back("L" + std::to_string(len));
      row.decisions += ltr ? "R" : ".";
    }
    Print(row);
  }

  // ---- LTR, dependent accesses, PQs: 2NEXPTIME-complete (via Prop 3.4).
  {
    Row row{"LTR dep (PQs, Bool acc)", "2NEXPTIME-complete",
            "looped-chain union, 1..4 disj", {}, {}, ""};
    for (int k = 1; k <= 4; ++k) {
      ChainFamily base = MakeChainFamily(2);
      UnionQuery q;
      for (int i = 1; i <= k; ++i) {
        ChainFamily sub = MakeChainFamily(i + 1);
        ConjunctiveQuery dq = sub.contained.disjuncts[0];
        VarId z = dq.AddVar("Z", 0);
        dq.atoms.push_back(Atom{0, {Term::MakeVar(z), Term::MakeVar(z)}});
        q.disjuncts.push_back(std::move(dq));
        (void)q.disjuncts.back().Validate(*base.scenario.schema);
      }
      AccessMethodSet acs = base.scenario.acs;
      AccessMethodId r_bool = *acs.Add("r_bool", 0, {0, 1}, true);
      Access probe{r_bool, {base.scenario.schema->InternConstant("c1"),
                            base.scenario.schema->InternConstant("c1")}};
      ContainmentOptions opts;
      opts.max_aux_facts = k + 2;
      bool ltr = false;
      row.times_ms.push_back(MeasureMs([&] {
        auto res = IsLongTermRelevantDependentUCQ(base.scenario.conf, acs,
                                                  probe, q, opts);
        ltr = res.ok() && *res;
      }));
      row.sizes.push_back("u" + std::to_string(k));
      row.decisions += ltr ? "R" : ".";
    }
    Print(row);
  }

  // ---- Containment, independent accesses: Pi2P-complete.
  {
    Row row{"Containment indep", "Pi2P-complete",
            "fresh-freeze, |Q2| grows", {}, {}, ""};
    Schema schema;
    DomainId d = schema.AddDomain("D");
    RelationId e = *schema.AddRelation("E", std::vector<DomainId>{d, d});
    AccessMethodSet acs(&schema);
    (void)*acs.Add("e_any", e, {0}, /*dependent=*/false);
    Configuration conf(&schema);
    for (int len = 1; len <= 6; ++len) {
      ConjunctiveQuery q1;
      VarId a = q1.AddVar("A", d);
      VarId b = q1.AddVar("B", d);
      q1.atoms.push_back(Atom{e, {Term::MakeVar(a), Term::MakeVar(b)}});
      (void)q1.Validate(schema);
      ConjunctiveQuery q2;
      std::vector<VarId> zs;
      for (int i = 0; i <= len; ++i) {
        zs.push_back(q2.AddVar("Z" + std::to_string(i), d));
      }
      for (int i = 0; i < len; ++i) {
        q2.atoms.push_back(
            Atom{e, {Term::MakeVar(zs[i]), Term::MakeVar(zs[i + 1])}});
      }
      (void)q2.Validate(schema);
      ContainmentEngine engine(schema, acs);
      bool contained = false;
      row.times_ms.push_back(MeasureMs([&] {
        auto res = engine.Contained(q1, q2, conf);
        contained = res.ok() && res->contained;
      }));
      row.sizes.push_back("|Q2|" + std::to_string(len));
      row.decisions += contained ? "C" : ".";
    }
    Print(row);
  }

  // ---- Containment, dependent accesses, CQs: coNEXPTIME-complete
  // (Theorem 5.1 tiling instances).
  {
    Row row{"Containment dep (CQs)", "coNEXPTIME-complete",
            "Thm 5.1 tiling, 2x2", {}, {}, ""};
    {
      TilingInstance inst = tilings::Checkerboard();
      inst.initial_tiles = {0, 1};
      auto enc = EncodeNexptimeTiling(inst, 1);
      ContainmentEngine engine(*enc->schema, enc->acs);
      ContainmentOptions opts;
      opts.max_aux_facts = 4;
      bool contained = true;
      row.times_ms.push_back(MeasureMs([&] {
        auto res = engine.Contained(enc->contained, enc->container,
                                    enc->conf, opts);
        contained = res.ok() && res->contained;
      }));
      row.sizes.push_back("solvable");
      row.decisions += contained ? "C" : "W";  // W: witness (= a tiling!)
    }
    {
      TilingInstance inst = tilings::VerticallyBlocked();
      inst.initial_tiles = {0, 1};
      auto enc = EncodeNexptimeTiling(inst, 1);
      ContainmentEngine engine(*enc->schema, enc->acs);
      ContainmentOptions opts;
      opts.max_aux_facts = 4;
      bool contained = false;
      row.times_ms.push_back(MeasureMs([&] {
        auto res = engine.Contained(enc->contained, enc->container,
                                    enc->conf, opts);
        contained = res.ok() && res->contained;
      }));
      row.sizes.push_back("unsolvable");
      row.decisions += contained ? "C" : "W";
    }
    Print(row);
  }

  // ---- Containment, dependent accesses, PQs: co2NEXPTIME-complete.
  // Every disjunct carries a self-loop conjunct, so each one is contained
  // in R(X,X) and the engine must exhaust all of them.
  {
    Row row{"Containment dep (PQs)", "co2NEXPTIME-complete",
            "looped-chain unions, 1..4 disj", {}, {}, ""};
    ChainFamily base = MakeChainFamily(2);
    ContainmentEngine engine(*base.scenario.schema, base.scenario.acs);
    for (int k = 1; k <= 4; ++k) {
      UnionQuery q1;
      for (int i = 1; i <= k; ++i) {
        ChainFamily sub = MakeChainFamily(i + 1);
        ConjunctiveQuery dq = sub.contained.disjuncts[0];
        VarId z = dq.AddVar("Z", 0);
        dq.atoms.push_back(Atom{0, {Term::MakeVar(z), Term::MakeVar(z)}});
        q1.disjuncts.push_back(std::move(dq));
        (void)q1.disjuncts.back().Validate(*base.scenario.schema);
      }
      ContainmentOptions opts;
      opts.max_aux_facts = k + 3;
      bool contained = false;
      row.times_ms.push_back(MeasureMs([&] {
        auto res = engine.Contained(q1, base.container, base.scenario.conf,
                                    opts);
        contained = res.ok() && res->contained;
      }));
      row.sizes.push_back("u" + std::to_string(k));
      row.decisions += contained ? "C" : "W";
    }
    Print(row);
  }

  // ---- Small arity (Thm 6.1 / Prop 6.2): PSPACE regime.
  {
    Row row{"Small arity (binary)", "PSPACE (ub), hard a=3",
            "Prop 6.2 corridor, width 2..4", {}, {}, ""};
    for (int width = 2; width <= 4; ++width) {
      TilingInstance inst = tilings::Checkerboard();
      std::vector<int> init, fin;
      for (int i = 0; i < width; ++i) {
        init.push_back(i % 2);
        fin.push_back((i + 1) % 2);
      }
      auto enc = EncodePspaceTiling(inst, init, fin);
      ContainmentEngine engine(*enc->schema, enc->acs);
      ContainmentOptions opts;
      opts.max_aux_facts = width + 2;
      bool contained = true;
      row.times_ms.push_back(MeasureMs([&] {
        auto res = engine.Contained(enc->contained, enc->container,
                                    enc->conf, opts);
        contained = res.ok() && res->contained;
      }));
      row.sizes.push_back("w" + std::to_string(width));
      row.decisions += contained ? "C" : "W";
    }
    Print(row);
  }

  std::printf("%s\n", std::string(110, '-').c_str());
  std::printf("decisions: R = relevant, . = not relevant / contained, "
              "C = contained, W = witness found (not contained)\n");
  std::printf("See EXPERIMENTS.md for the paper-vs-measured discussion and "
              "the remaining benches for per-cell sweeps.\n");
  return 0;
}
