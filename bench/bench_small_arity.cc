// SMALL-ARITY (Theorem 6.1 / Prop 6.2): containment with binary relations
// only — the regime where the paper proves a PSPACE upper bound against
// coNEXPTIME for unrestricted arity.
//
// Sweeps the corridor width of the Prop 6.2 encoding for a reachable and
// an unreachable final row. The witness search on these binary chains
// explores row-paths whose state is one frontier value — the practical
// reflection of the small-arity collapse.
#include <benchmark/benchmark.h>

#include "containment/access_containment.h"
#include "hardness/encode_pspace.h"
#include "hardness/tiling.h"

namespace {

std::vector<int> AlternatingRow(int width, int first) {
  std::vector<int> row;
  for (int i = 0; i < width; ++i) row.push_back((first + i) % 2);
  return row;
}

void BM_SmallArity_Reachable(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  rar::TilingInstance inst = rar::tilings::Checkerboard();
  auto enc = rar::EncodePspaceTiling(inst, AlternatingRow(width, 0),
                                     AlternatingRow(width, 1));
  if (!enc.ok()) {
    state.SkipWithError(enc.status().ToString().c_str());
    return;
  }
  rar::ContainmentEngine engine(*enc->schema, enc->acs);
  rar::ContainmentOptions opts;
  opts.max_aux_facts = width + 2;
  for (auto _ : state) {
    auto dec = engine.Contained(enc->contained, enc->container, enc->conf,
                                opts);
    benchmark::DoNotOptimize(dec.ok() && !dec->contained);
  }
  state.SetLabel("width " + std::to_string(width) + " (reachable)");
}
BENCHMARK(BM_SmallArity_Reachable)->DenseRange(2, 5);

void BM_SmallArity_Unreachable(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  rar::TilingInstance inst = rar::tilings::VerticallyBlocked();
  auto enc = rar::EncodePspaceTiling(inst, AlternatingRow(width, 0),
                                     AlternatingRow(width, 1));
  if (!enc.ok()) {
    state.SkipWithError(enc.status().ToString().c_str());
    return;
  }
  rar::ContainmentEngine engine(*enc->schema, enc->acs);
  rar::ContainmentOptions opts;
  opts.max_aux_facts = width + 2;
  for (auto _ : state) {
    auto dec = engine.Contained(enc->contained, enc->container, enc->conf,
                                opts);
    benchmark::DoNotOptimize(dec.ok() && dec->contained);
  }
  state.SetLabel("width " + std::to_string(width) + " (unreachable)");
}
// Exhausting the witness space costs ~40x per unit of width (8ms, 0.35s,
// ~17s at width 4 on the reference machine); capped at 3 for the suite.
BENCHMARK(BM_SmallArity_Unreachable)->DenseRange(2, 3);

}  // namespace

BENCHMARK_MAIN();
