// T1-CONT-dep-CQ: conjunctive-query containment under dependent access
// limitations (coNEXPTIME-complete).
//
// Two families: (a) the chain-production family, where refuting
// containment needs a witness chain whose length is the swept parameter —
// the engine's auxiliary-production work grows with it; (b) the Theorem
// 5.1 tiling encodings at n = 1 (2x2 corridor) for solvable and
// unsolvable instances — the adversarial case where the engine literally
// searches for a tiling.
#include <benchmark/benchmark.h>

#include "containment/access_containment.h"
#include "hardness/encode_nexptime.h"
#include "hardness/tiling.h"
#include "workload/generators.h"

namespace {

void BM_Containment_ChainProduction(benchmark::State& state) {
  const int len = static_cast<int>(state.range(0));
  rar::ChainFamily family = rar::MakeChainFamily(len);
  rar::ContainmentEngine engine(*family.scenario.schema,
                                family.scenario.acs);
  rar::ContainmentOptions opts;
  opts.max_aux_facts = len + 2;
  long witnesses = 0;
  for (auto _ : state) {
    auto dec = engine.Contained(family.contained, family.container,
                                family.scenario.conf, opts);
    if (!dec.ok()) {
      state.SkipWithError(dec.status().ToString().c_str());
      return;
    }
    witnesses += dec->contained ? 0 : 1;
    benchmark::DoNotOptimize(dec->contained);
  }
  state.SetLabel("chain length " + std::to_string(len) +
                 (witnesses ? " (refuted)" : " (contained)"));
}
BENCHMARK(BM_Containment_ChainProduction)->DenseRange(1, 8);

void BM_Containment_TilingSolvable(benchmark::State& state) {
  rar::TilingInstance inst = rar::tilings::Checkerboard();
  inst.initial_tiles = {0, 1};
  auto enc = rar::EncodeNexptimeTiling(inst, 1);
  if (!enc.ok()) {
    state.SkipWithError(enc.status().ToString().c_str());
    return;
  }
  rar::ContainmentEngine engine(*enc->schema, enc->acs);
  rar::ContainmentOptions opts;
  opts.max_aux_facts = 4;
  for (auto _ : state) {
    auto dec = engine.Contained(enc->contained, enc->container, enc->conf,
                                opts);
    benchmark::DoNotOptimize(dec.ok() && dec->contained);
  }
  state.SetLabel("Thm 5.1, 2x2 solvable -> not contained");
}
BENCHMARK(BM_Containment_TilingSolvable);

void BM_Containment_TilingUnsolvable(benchmark::State& state) {
  rar::TilingInstance inst = rar::tilings::VerticallyBlocked();
  inst.initial_tiles = {0, 1};
  auto enc = rar::EncodeNexptimeTiling(inst, 1);
  if (!enc.ok()) {
    state.SkipWithError(enc.status().ToString().c_str());
    return;
  }
  rar::ContainmentEngine engine(*enc->schema, enc->acs);
  rar::ContainmentOptions opts;
  opts.max_aux_facts = 4;
  for (auto _ : state) {
    auto dec = engine.Contained(enc->contained, enc->container, enc->conf,
                                opts);
    benchmark::DoNotOptimize(dec.ok() && dec->contained);
  }
  state.SetLabel("Thm 5.1, 2x2 unsolvable -> contained (exhaustive)");
}
BENCHMARK(BM_Containment_TilingUnsolvable);

void BM_Containment_TilingAuxBudget(benchmark::State& state) {
  // Ablation: the cost of exhausting larger auxiliary budgets on an
  // unsolvable instance (the coNEXPTIME side: proving containment means
  // exhausting the witness space).
  const int budget = static_cast<int>(state.range(0));
  rar::TilingInstance inst = rar::tilings::VerticallyBlocked();
  inst.initial_tiles = {0, 1};
  auto enc = rar::EncodeNexptimeTiling(inst, 1);
  if (!enc.ok()) {
    state.SkipWithError(enc.status().ToString().c_str());
    return;
  }
  rar::ContainmentEngine engine(*enc->schema, enc->acs);
  rar::ContainmentOptions opts;
  opts.max_aux_facts = budget;
  for (auto _ : state) {
    auto dec = engine.Contained(enc->contained, enc->container, enc->conf,
                                opts);
    benchmark::DoNotOptimize(dec.ok());
  }
  state.SetLabel("aux budget " + std::to_string(budget));
}
// Each unit of budget multiplies the exhausted space by ~4-5x (0.09s,
// 0.35s, 1.4s, 6.5s, ~32s on the reference machine); capped at 5 to keep
// the suite runnable.
BENCHMARK(BM_Containment_TilingAuxBudget)->DenseRange(2, 5);

}  // namespace

BENCHMARK_MAIN();
