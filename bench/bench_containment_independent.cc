// T1-CONT-indep: containment with independent accesses (Π2P-complete).
//
// The engine's independent fast path enumerates homomorphisms of the
// fixed-relation part into the configuration and freezes the rest; cost
// grows with the configuration (candidate homomorphisms) and the container
// size (the coNP check per candidate).
#include <benchmark/benchmark.h>

#include "containment/access_containment.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace {

// Scenario: accessible binary E, fixed unary Fixed (no method); q1 asks
// for an E-edge anchored in Fixed; q2 sweeps a chain pattern.
struct IndepSetup {
  rar::Scenario scenario;
  rar::UnionQuery q1;
  rar::UnionQuery q2;
};

IndepSetup MakeIndepSetup(int conf_size, int chain_len) {
  IndepSetup s;
  s.scenario.schema = std::make_shared<rar::Schema>();
  rar::Schema& schema = *s.scenario.schema;
  rar::DomainId d = schema.AddDomain("D");
  rar::RelationId e =
      *schema.AddRelation("E", std::vector<rar::DomainId>{d, d});
  rar::RelationId fixed =
      *schema.AddRelation("Fixed", std::vector<rar::DomainId>{d});
  s.scenario.acs = rar::AccessMethodSet(s.scenario.schema.get());
  (void)*s.scenario.acs.Add("e_any", e, {0}, /*dependent=*/false);

  s.scenario.conf = rar::Configuration(s.scenario.schema.get());
  for (int i = 0; i < conf_size; ++i) {
    rar::Value v = schema.InternConstant("v" + std::to_string(i));
    s.scenario.conf.AddFact(rar::Fact(fixed, {v}));
  }

  rar::ConjunctiveQuery q1;
  rar::VarId x = q1.AddVar("X", d);
  rar::VarId y = q1.AddVar("Y", d);
  q1.atoms.push_back(rar::Atom{fixed, {rar::Term::MakeVar(x)}});
  q1.atoms.push_back(
      rar::Atom{e, {rar::Term::MakeVar(x), rar::Term::MakeVar(y)}});
  (void)q1.Validate(schema);
  s.q1.disjuncts.push_back(std::move(q1));

  rar::ConjunctiveQuery q2;
  std::vector<rar::VarId> zs;
  for (int i = 0; i <= chain_len; ++i) {
    zs.push_back(q2.AddVar("Z" + std::to_string(i), d));
  }
  for (int i = 0; i < chain_len; ++i) {
    q2.atoms.push_back(rar::Atom{
        e, {rar::Term::MakeVar(zs[i]), rar::Term::MakeVar(zs[i + 1])}});
  }
  (void)q2.Validate(schema);
  s.q2.disjuncts.push_back(std::move(q2));
  return s;
}

void BM_IndependentContainment_ConfSweep(benchmark::State& state) {
  const int conf_size = static_cast<int>(state.range(0));
  IndepSetup s = MakeIndepSetup(conf_size, 2);
  rar::ContainmentEngine engine(*s.scenario.schema, s.scenario.acs);
  for (auto _ : state) {
    auto dec = engine.Contained(s.q1, s.q2, s.scenario.conf);
    benchmark::DoNotOptimize(dec.ok());
  }
  state.SetLabel("conf size " + std::to_string(conf_size));
}
BENCHMARK(BM_IndependentContainment_ConfSweep)->RangeMultiplier(2)->Range(2, 64);

void BM_IndependentContainment_ContainerSweep(benchmark::State& state) {
  const int chain_len = static_cast<int>(state.range(0));
  IndepSetup s = MakeIndepSetup(8, chain_len);
  rar::ContainmentEngine engine(*s.scenario.schema, s.scenario.acs);
  for (auto _ : state) {
    auto dec = engine.Contained(s.q1, s.q2, s.scenario.conf);
    benchmark::DoNotOptimize(dec.ok());
  }
  state.SetLabel("container chain " + std::to_string(chain_len));
}
BENCHMARK(BM_IndependentContainment_ContainerSweep)->DenseRange(1, 6);

}  // namespace

BENCHMARK_MAIN();
