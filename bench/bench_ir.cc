// T1-IR: immediate relevance, combined complexity (DP-complete).
//
// Families: k-clique patterns over random graphs (hard homomorphism
// instances — the NP part of the DP check), and Prop 4.1 DP-hardness
// instances built from clique query/instance pairs. Growth with the clique
// size k should be super-polynomial (the paper's DP lower bound), while
// growth with the configuration alone is polynomial (see
// bench_data_complexity).
#include <benchmark/benchmark.h>

#include "hardness/encode_dp.h"
#include "relevance/immediate.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace {

void BM_IR_CliqueQuery(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  rar::Rng rng(1234);
  rar::CliqueFamily family = rar::MakeCliqueFamily(&rng, k, 12, 0.4);
  for (auto _ : state) {
    bool ir = rar::IsImmediatelyRelevant(family.scenario.conf,
                                         family.scenario.acs, family.probe,
                                         family.query);
    benchmark::DoNotOptimize(ir);
  }
  state.SetLabel("clique size " + std::to_string(k));
}
BENCHMARK(BM_IR_CliqueQuery)->DenseRange(2, 6);

void BM_IR_DpEncoding(benchmark::State& state) {
  // DP coding of two clique problems of growing size.
  const int k = static_cast<int>(state.range(0));
  rar::Rng rng(99);
  rar::Schema base;
  rar::DomainId d = base.AddDomain("D");
  rar::RelationId e1 =
      *base.AddRelation("E1", std::vector<rar::DomainId>{d, d});
  rar::RelationId e2 =
      *base.AddRelation("E2", std::vector<rar::DomainId>{d, d});

  auto make_clique = [&](rar::RelationId rel, int size) {
    rar::ConjunctiveQuery q;
    std::vector<rar::VarId> vs;
    for (int i = 0; i < size; ++i) {
      vs.push_back(q.AddVar("V" + std::to_string(i), d));
    }
    for (int i = 0; i < size; ++i) {
      for (int j = 0; j < size; ++j) {
        if (i != j) {
          q.atoms.push_back(rar::Atom{
              rel, {rar::Term::MakeVar(vs[i]), rar::Term::MakeVar(vs[j])}});
        }
      }
    }
    (void)q.Validate(base);
    return q;
  };
  auto make_graph = [&](rar::RelationId rel, int nodes, double p) {
    std::vector<rar::Fact> facts;
    std::vector<rar::Value> vals;
    for (int i = 0; i < nodes; ++i) {
      vals.push_back(base.InternConstant("g" + std::to_string(rel) + "_" +
                                         std::to_string(i)));
    }
    for (int i = 0; i < nodes; ++i) {
      for (int j = 0; j < nodes; ++j) {
        if (i != j && rng.Chance(p)) {
          facts.push_back(rar::Fact(rel, {vals[i], vals[j]}));
        }
      }
    }
    return facts;
  };

  rar::ConjunctiveQuery q1 = make_clique(e1, k);
  rar::ConjunctiveQuery q2 = make_clique(e2, k);
  std::vector<rar::Fact> i1 = make_graph(e1, 8, 0.3);
  std::vector<rar::Fact> i2 = make_graph(e2, 8, 0.8);
  auto enc = rar::EncodeDpHardness(base, q1, i1, q2, i2);
  if (!enc.ok()) {
    state.SkipWithError(enc.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    bool ir = rar::IsImmediatelyRelevant(enc->conf, enc->acs, enc->access,
                                         enc->query);
    benchmark::DoNotOptimize(ir);
  }
  state.SetLabel("DP coding, clique size " + std::to_string(k));
}
BENCHMARK(BM_IR_DpEncoding)->DenseRange(2, 5);

}  // namespace

BENCHMARK_MAIN();
